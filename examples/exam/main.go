// Exam runs a scenario from the shipped library end to end with the
// autopilot trainee and prints the instructor's status window (Fig. 5)
// while it progresses. The default scenario is the licensing exam of
// Fig. 8/9: drive to the test ground, lift the cargo from the white
// circle, carry it along the bar trajectory and back, and set it down —
// with the live score and alarm lamps. Pick any other library entry with
// -scenario (windy-lift, night-precision, ...).
package main

import (
	"flag"
	"fmt"
	"log"

	"codsim/internal/crane"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/instructor"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
	"codsim/internal/trace"
)

func main() {
	name := flag.String("scenario", "classic-exam", "library scenario to run")
	flag.Parse()
	if err := run(*name); err != nil {
		log.Fatal(err)
	}
}

func run(name string) error {
	spec, err := scenario.ByName(name)
	if err != nil {
		return err
	}
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		return err
	}
	// One rig and one autopilot per declared crane, all over one shared
	// cargo world — a single-crane spec declares exactly one.
	decls := spec.CraneDecls()
	world := dynamics.NewWorld()
	models := make([]*dynamics.Model, len(decls))
	pilots := make([]*trace.Autopilot, len(decls))
	for c, d := range decls {
		models[c], err = dynamics.NewCrane(dynamics.DefaultConfig(), ter, world, d.Start, d.StartYaw, c)
		if err != nil {
			return err
		}
		pilots[c] = trace.ForCrane(spec, c)
	}
	spec.Install(ter, models...)

	craneSpec := crane.DefaultSpec()
	eng, err := scenario.NewEngineSpec(spec, craneSpec)
	if err != nil {
		return err
	}
	eng.Start()
	mon := instructor.NewMonitor(craneSpec)

	fmt.Printf("=== %s ===\n", spec.Title)
	const dt = 1.0 / 60
	nextWindow := 0.0
	states := make([]fom.CraneState, len(models))
	for simT := 0.0; simT < 900; simT += dt {
		scen := eng.State()
		for _, m := range models {
			mon.ObserveCrane(m.State(), dt)
		}
		mon.ObserveScenario(scen)

		if simT >= nextWindow {
			fmt.Printf("--- t = %.0f s ---\n", simT)
			fmt.Print(mon.StatusWindow(eng.ExtraAlarms()))
			nextWindow += 15
		}
		if scen.Phase == fom.PhaseComplete || scen.Phase == fom.PhaseFailed {
			fmt.Printf("\n=== %s %s: score %.1f, %d collisions, %.0f s ===\n",
				spec.Title, scen.Phase, scen.Score, scen.Collisions, scen.Elapsed)
			fmt.Println("\nmisconduct log:")
			for _, ev := range mon.AlarmLog() {
				fmt.Printf("  t=%6.1f  crane %d  alarm bits %06b\n", ev.At, ev.Crane, ev.Raised)
			}
			return nil
		}

		for c, m := range models {
			in := pilots[c].Control(m.State(), eng.StateFor(c), dt)
			in.CraneID = int64(c)
			m.Step(in, dt)
		}
		for c, m := range models {
			states[c] = m.State()
		}
		eng.StepAll(states, dt)
	}
	return fmt.Errorf("scenario did not finish within 900 simulated seconds")
}
