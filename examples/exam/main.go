// Exam runs the licensing scenario of Fig. 8/9 end to end with the
// autopilot trainee and prints the instructor's status window (Fig. 5)
// while the exam progresses: drive to the test ground, lift the cargo from
// the white circle, carry it along the bar trajectory and back, and set it
// down — with the live score and alarm lamps.
package main

import (
	"fmt"
	"log"

	"codsim/internal/crane"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/instructor"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
	"codsim/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		return err
	}
	course := scenario.DefaultCourse()
	model, err := dynamics.New(dynamics.DefaultConfig(), ter, course.Start, course.StartYaw)
	if err != nil {
		return err
	}
	cargoPos := course.Circle
	cargoPos.Y = ter.HeightAt(cargoPos.X, cargoPos.Z) + 0.6
	model.PlaceCargo(cargoPos, course.CargoMass)

	spec := crane.DefaultSpec()
	eng := scenario.NewEngine(course, spec, scenario.DefaultScore())
	eng.Start()
	ap := trace.NewAutopilot(course)
	mon := instructor.NewMonitor(spec)

	const dt = 1.0 / 60
	nextWindow := 0.0
	for simT := 0.0; simT < 600; simT += dt {
		st := model.State()
		scen := eng.State()
		mon.ObserveCrane(st, dt)
		mon.ObserveScenario(scen)

		if simT >= nextWindow {
			fmt.Printf("--- t = %.0f s ---\n", simT)
			fmt.Print(mon.StatusWindow(eng.ExtraAlarms()))
			nextWindow += 15
		}
		if scen.Phase == fom.PhaseComplete || scen.Phase == fom.PhaseFailed {
			fmt.Printf("\n=== EXAM %s: score %.1f, %d collisions, %.0f s ===\n",
				scen.Phase, scen.Score, scen.Collisions, scen.Elapsed)
			fmt.Println("\nmisconduct log:")
			for _, ev := range mon.AlarmLog() {
				fmt.Printf("  t=%6.1f  alarm bits %06b\n", ev.At, ev.Raised)
			}
			return nil
		}

		in := ap.Control(st, scen, dt)
		model.Step(in, dt)
		eng.Step(model.State(), dt)
	}
	return fmt.Errorf("exam did not finish within 600 simulated seconds")
}
