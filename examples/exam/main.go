// Exam runs a scenario from the shipped library end to end with the
// autopilot trainee and prints the instructor's status window (Fig. 5)
// while it progresses. The default scenario is the licensing exam of
// Fig. 8/9: drive to the test ground, lift the cargo from the white
// circle, carry it along the bar trajectory and back, and set it down —
// with the live score and alarm lamps. Pick any other library entry with
// -scenario (windy-lift, night-precision, ...).
package main

import (
	"flag"
	"fmt"
	"log"

	"codsim/internal/crane"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/instructor"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
	"codsim/internal/trace"
)

func main() {
	name := flag.String("scenario", "classic-exam", "library scenario to run")
	flag.Parse()
	if err := run(*name); err != nil {
		log.Fatal(err)
	}
}

func run(name string) error {
	spec, err := scenario.ByName(name)
	if err != nil {
		return err
	}
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		return err
	}
	model, err := dynamics.New(dynamics.DefaultConfig(), ter, spec.Course.Start, spec.Course.StartYaw)
	if err != nil {
		return err
	}
	spec.Install(model, ter)

	craneSpec := crane.DefaultSpec()
	eng, err := scenario.NewEngineSpec(spec, craneSpec)
	if err != nil {
		return err
	}
	eng.Start()
	ap := trace.New(spec)
	mon := instructor.NewMonitor(craneSpec)

	fmt.Printf("=== %s ===\n", spec.Title)
	const dt = 1.0 / 60
	nextWindow := 0.0
	for simT := 0.0; simT < 900; simT += dt {
		st := model.State()
		scen := eng.State()
		mon.ObserveCrane(st, dt)
		mon.ObserveScenario(scen)

		if simT >= nextWindow {
			fmt.Printf("--- t = %.0f s ---\n", simT)
			fmt.Print(mon.StatusWindow(eng.ExtraAlarms()))
			nextWindow += 15
		}
		if scen.Phase == fom.PhaseComplete || scen.Phase == fom.PhaseFailed {
			fmt.Printf("\n=== %s %s: score %.1f, %d collisions, %.0f s ===\n",
				spec.Title, scen.Phase, scen.Score, scen.Collisions, scen.Elapsed)
			fmt.Println("\nmisconduct log:")
			for _, ev := range mon.AlarmLog() {
				fmt.Printf("  t=%6.1f  alarm bits %06b\n", ev.At, ev.Raised)
			}
			return nil
		}

		in := ap.Control(st, scen, dt)
		model.Step(in, dt)
		eng.Step(model.State(), dt)
	}
	return fmt.Errorf("scenario did not finish within 900 simulated seconds")
}
