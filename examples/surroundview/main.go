// Surroundview reproduces the paper's §4 measurement setup: three display
// computers render the 3235-polygon training scene through the frame-sync
// barrier of the synchronization server (the fourth computer), producing a
// 120° surround view. The example prints the achieved synchronized frame
// rate next to the free-running rate of a single display — the gap is the
// synchronization overhead the paper reports (their hardware: 16 fps).
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"codsim/cod"
	"codsim/internal/displaysync"
	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/metrics"
	"codsim/internal/render"
	"codsim/internal/terrain"
)

const (
	polygons = 3235
	width    = 640
	height   = 480
	frames   = 90
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildRig(camIdx, camCount int) (*render.SceneBuilder, *render.Renderer, render.Camera, error) {
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		return nil, nil, render.Camera{}, err
	}
	builder, err := render.NewSceneBuilder(ter, nil, polygons)
	if err != nil {
		return nil, nil, render.Camera{}, err
	}
	rend, err := render.NewRenderer(width, height)
	if err != nil {
		return nil, nil, render.Camera{}, err
	}
	eye := mathx.V3(100, 4, 106)
	cams := render.SurroundCameras(eye, 0, camCount, mathx.Rad(40), float64(width)/float64(height))
	return builder, rend, cams[camIdx], nil
}

func craneState(frame uint32) fom.CraneState {
	return fom.CraneState{
		Position:  mathx.V3(100, 0, 100),
		BoomSwing: mathx.Rad(float64(frame%90) - 45),
		BoomLuff:  mathx.Rad(45),
		BoomLen:   14,
		CableLen:  6,
		HookPos:   mathx.V3(100, 6, 90),
		CargoPos:  mathx.V3(100, 1, 90),
		Stability: 1,
	}
}

func run() error {
	// --- Free-running single display (no synchronization). ---
	builder, rend, cam, err := buildRig(0, 1)
	if err != nil {
		return err
	}
	var freeTracker metrics.FrameTracker
	for f := 0; f < frames; f++ {
		start := time.Now()
		rend.Render(builder.Frame(craneState(uint32(f))), cam)
		freeTracker.TickInterval(time.Since(start))
	}
	fmt.Printf("free-running 1 display : %6.1f fps (%d polygons)\n",
		freeTracker.FPS(), builder.PolygonCount())

	// --- Three displays + synchronization server over the CB. ---
	fed := cod.NewFederation()
	defer fed.Close()
	server, err := fed.Node("sync-server")
	if err != nil {
		return err
	}
	srv, err := displaysync.NewServer(server.Backbone(), "sync", displaysync.ServerConfig{
		Expected: []string{"display-1", "display-2", "display-3"},
	})
	if err != nil {
		return err
	}
	srv.Start()
	defer srv.Stop()

	// Build every display rig first, then launch the render loops
	// together, so startup cost does not skew the frame accounting.
	type displayRig struct {
		client  *displaysync.Display
		builder *render.SceneBuilder
		rend    *render.Renderer
		cam     render.Camera
	}
	rigs := make([]*displayRig, 3)
	for i := range rigs {
		node, err := fed.Node(fmt.Sprintf("display-pc-%d", i+1))
		if err != nil {
			return err
		}
		client, err := displaysync.NewDisplay(node.Backbone(), fmt.Sprintf("display-%d", i+1))
		if err != nil {
			return err
		}
		b, r, c, err := buildRig(i, 3)
		if err != nil {
			return err
		}
		rigs[i] = &displayRig{client: client, builder: b, rend: r, cam: c}
	}
	for i, rg := range rigs {
		if !rg.client.WaitServer(10 * time.Second) {
			return fmt.Errorf("display %d never linked to the sync server", i+1)
		}
	}

	var wg sync.WaitGroup
	fpsCh := make(chan float64, 3)
	for i, rg := range rigs {
		wg.Add(1)
		go func(i int, rg *displayRig) {
			defer wg.Done()
			err := rg.client.RunFrames(frames, 30*time.Second, func(frame uint32) {
				rg.rend.Render(rg.builder.Frame(craneState(frame)), rg.cam)
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "display %d: %v\n", i+1, err)
				fpsCh <- 0
				return
			}
			fpsCh <- rg.client.FPS()
		}(i, rg)
	}
	wg.Wait()
	close(fpsCh)

	var total float64
	var n int
	for fps := range fpsCh {
		n++
		fmt.Printf("synced display %d       : %6.1f fps\n", n, fps)
		total += fps
	}
	mean := total / float64(n)
	fmt.Printf("synced surround view   : %6.1f fps mean across %d displays\n", mean, n)
	fmt.Printf("sync overhead          : %6.1f %%\n", (1-mean/freeTracker.FPS())*100)
	fmt.Println("\npaper reference (2001, TNT2 M64 ×3 + sync server): 16 fps @ 3235 polygons")
	return nil
}
