// Faultinjection demonstrates the instructor's trouble-shooting training
// (§3.3): while the full federation runs, the instructor "clicks" an
// instrument on the Dashboard window (Fig. 6); the command crosses the
// Communication Backbone to the dashboard computer and forces the mockup's
// needle to a bogus value — the trainee must notice the implausible
// reading. Clearing the fault restores live display.
package main

import (
	"fmt"
	"log"
	"time"

	"codsim/internal/dashboard"
	"codsim/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := sim.New(sim.Config{
		TimeScale: 4,
		Width:     160,
		Height:    120,
		Polygons:  800,
		Autopilot: true,
		AutoStart: true,
	})
	if err != nil {
		return err
	}
	if err := cluster.Start(); err != nil {
		return err
	}
	defer cluster.Stop()

	// Let the trainee get going (engine on, driving).
	time.Sleep(2 * time.Second)
	if err := cluster.Err(); err != nil {
		return err
	}

	fmt.Println("=== live dashboard (mockup, dashboard-pc) ===")
	printPanel(cluster.Panel())

	fmt.Println("\ninstructor clicks the RPM gauge: inject 2950 rpm ...")
	if err := cluster.InjectFault(dashboard.InstrRPM, 2950); err != nil {
		return err
	}
	if !waitFor(func() bool { return cluster.Panel().Instrument(dashboard.InstrRPM).Faulted() }) {
		return fmt.Errorf("fault never reached the dashboard computer")
	}
	fmt.Println("\n=== dashboard with injected fault (trainee's view) ===")
	printPanel(cluster.Panel())
	fmt.Println("\n=== instructor's mirror window (fault marked *) ===")
	fmt.Print(cluster.Monitor().DashboardWindow())

	fmt.Println("\ninstructor clears the fault ...")
	if err := cluster.ClearFault(dashboard.InstrRPM); err != nil {
		return err
	}
	if !waitFor(func() bool { return !cluster.Panel().Instrument(dashboard.InstrRPM).Faulted() }) {
		return fmt.Errorf("fault never cleared")
	}
	fmt.Println("=== dashboard restored ===")
	printPanel(cluster.Panel())
	return nil
}

func waitFor(cond func() bool) bool {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
	return true
}

func printPanel(p *dashboard.Panel) {
	for _, g := range p.Snapshot() {
		mark := ""
		if g.Faulted {
			mark = "  << FAULT INJECTED"
		}
		fmt.Printf("  %-13s %9.1f %-5s%s\n", g.Name, g.Value, g.Unit, mark)
	}
}
