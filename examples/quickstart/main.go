// Quickstart: the smallest COD program, on the public cod SDK. Two
// desktop computers on an in-memory LAN; a publisher LP on one, a
// subscriber LP on the other. The Communication Backbone discovers the
// match through broadcast (§2.3), builds the virtual channel, and routes
// ten typed updates — no sockets, no attribute maps, no internal imports.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"codsim/cod"
)

// CraneState is the object class the two LPs exchange: a plain struct,
// mapped to the backbone's attribute sets by the SDK's codec.
type CraneState struct {
	BoomAngle float64
	Frame     int
}

func main() {
	// One federation = one simulator instance: its nodes share a LAN and
	// a single Close tears everything down.
	fed := cod.NewFederation()
	defer fed.Close()

	// Computer 1 runs the dynamics LP, a publisher of CraneState.
	pc1, err := fed.Node("dynamics-pc")
	if err != nil {
		log.Fatal(err)
	}
	pub, err := cod.Publish[CraneState](pc1, "dynamics", "CraneState")
	if err != nil {
		log.Fatal(err)
	}

	// Computer 2 runs a display LP, a subscriber of the same class.
	pc2, err := fed.Node("display-pc")
	if err != nil {
		log.Fatal(err)
	}
	// Every subscription declares its delivery policy explicitly:
	// LatestValue says a saturated mailbox conflates to the newest state,
	// the right contract for periodic crane state.
	sub, err := cod.Subscribe[CraneState](pc2, "visual", "CraneState", cod.WithQueue(32), cod.LatestValue())
	if err != nil {
		log.Fatal(err)
	}

	// The subscriber's CB broadcasts SUBSCRIPTION until the publisher's CB
	// acknowledges and the virtual channel comes up.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sub.WaitMatched(ctx); err != nil {
		log.Fatalf("virtual channel was never established: %v", err)
	}
	fmt.Println("virtual channel established between dynamics-pc and display-pc")

	// Push ten typed updates; pull them on the other side.
	for i := 1; i <= 10; i++ {
		st := CraneState{BoomAngle: float64(i) * 1.5, Frame: i}
		if err := pub.Update(float64(i), st); err != nil {
			log.Fatal(err)
		}
	}
	for i := 1; i <= 10; i++ {
		r, err := sub.Next(ctx)
		if err != nil {
			log.Fatalf("reflection lost: %v", err)
		}
		fmt.Printf("  reflect #%d from %s/%s: t=%.0f boom=%.1f\n",
			i, r.PubNode, r.PubLP, r.Time, r.Value.BoomAngle)
	}
	fmt.Println("done — 10 typed updates routed through the Communication Backbone")
}
