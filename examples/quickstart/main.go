// Quickstart: the smallest COD program. Two desktop computers on an
// in-memory LAN; a publisher LP on one, a subscriber LP on the other. The
// Communication Backbone discovers the match through broadcast (§2.3),
// builds the virtual channel, and routes ten updates.
package main

import (
	"fmt"
	"log"
	"time"

	"codsim/internal/cb"
	"codsim/internal/transport"
	"codsim/internal/wire"
)

func main() {
	lan := transport.NewMemLAN()

	// Computer 1 runs the dynamics LP, a publisher of CraneState.
	pc1, err := cb.New(lan, "dynamics-pc", cb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer pc1.Close()
	pub, err := pc1.PublishObjectClass("dynamics", "CraneState")
	if err != nil {
		log.Fatal(err)
	}

	// Computer 2 runs a display LP, a subscriber of the same class.
	pc2, err := cb.New(lan, "display-pc", cb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer pc2.Close()
	sub, err := pc2.SubscribeObjectClass("visual", "CraneState", cb.WithQueue(32))
	if err != nil {
		log.Fatal(err)
	}

	// The subscriber's CB broadcasts SUBSCRIPTION until the publisher's CB
	// acknowledges and the virtual channel comes up.
	if !sub.WaitMatched(5 * time.Second) {
		log.Fatal("virtual channel was never established")
	}
	fmt.Println("virtual channel established between dynamics-pc and display-pc")

	// Push ten updates; pull them on the other side.
	for i := 1; i <= 10; i++ {
		attrs := wire.AttrSet{}
		attrs.PutFloat64(1, float64(i)*1.5) // e.g. a boom angle
		if err := pub.Update(float64(i), attrs); err != nil {
			log.Fatal(err)
		}
	}
	for i := 1; i <= 10; i++ {
		r, ok := sub.Next(5 * time.Second)
		if !ok {
			log.Fatal("reflection lost")
		}
		v, _ := r.Attrs.Float64(1)
		fmt.Printf("  reflect #%d from %s/%s: t=%.0f value=%.1f\n",
			i, r.PubNode, r.PubLP, r.Time, v)
	}
	fmt.Println("done — 10 updates routed through the Communication Backbone")
}
