// Campaign generates a seeded procedural training campaign and flies it
// headless: the gen package samples scenario candidates from the proven
// library envelopes, certifies each with the completability oracle (a
// static reachability check, then an expert-autopilot dry-run), and the
// certified stream feeds sim.RunBatch. The same seed always reproduces
// the same campaign — rejected candidates are resampled under the seed
// stream, so the oracle never costs determinism.
//
// cmd/codbatch wraps this flow as `codbatch -campaign seed:count`, there
// dispatched through the dist coordinator instead of run in-process.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"codsim/internal/scenario"
	"codsim/internal/scenario/gen"
	"codsim/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed  = 2001 // change it and the whole campaign changes — reproducibly
		count = 10
	)
	params := gen.DefaultParams()
	fmt.Printf("campaign %s\n", gen.Key(seed, count, params))

	// Stream certified scenarios: candidate k is Generate(SubSeed(seed,k),
	// params); the default oracle flies each candidate headless and vetoes
	// the uncompletable, which are resampled from the same stream.
	stream := gen.NewStream(seed, params)
	specs := make([]scenario.Spec, 0, count)
	for len(specs) < count {
		spec, cand, err := stream.Next(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("  #%-3d cand %-3d %-12s %d crane(s), %d cargo(s)\n",
			len(specs), cand, spec.Name, spec.CraneCount(), len(spec.Cargos))
		specs = append(specs, spec)
	}
	st := stream.Stats()
	fmt.Printf("certified %d of %d candidates (%d static + %d oracle rejects resampled)\n\n",
		st.Emitted, st.Candidates, st.StaticRejects, st.OracleRejects)

	// Fly the certified campaign — every run must pass, since the oracle
	// already proved each spec with the same expert coupling.
	results := sim.RunBatch(context.Background(), specs, sim.BatchConfig{Headless: true})
	sim.WriteBatchReport(os.Stdout, results)
	for _, r := range results {
		if !r.Passed {
			return fmt.Errorf("certified scenario %s did not pass", r.Scenario)
		}
	}
	return nil
}
