// Dynamicjoin demonstrates the §2.3 claim: "an LP (an extra display, for
// example) can be dynamically added to the system without restarting the
// entire system." Two displays run the synchronized surround view; mid-run
// a third display node attaches to the LAN, its CB discovers the running
// federation through the broadcast protocol, and the synchronization
// server admits it into the frame barrier — while frames keep flowing.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"codsim/internal/cb"
	"codsim/internal/displaysync"
	"codsim/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lan := transport.NewMemLAN()

	serverBB, err := cb.New(lan, "sync-server", cb.Config{})
	if err != nil {
		return err
	}
	defer serverBB.Close()
	srv, err := displaysync.NewServer(serverBB, "sync", displaysync.ServerConfig{
		Expected: []string{"display-1", "display-2"},
	})
	if err != nil {
		return err
	}
	srv.Start()
	defer srv.Stop()

	newDisplay := func(i int) (*displaysync.Display, error) {
		bb, err := cb.New(lan, fmt.Sprintf("display-pc-%d", i), cb.Config{})
		if err != nil {
			return nil, err
		}
		d, err := displaysync.NewDisplay(bb, fmt.Sprintf("display-%d", i))
		if err != nil {
			return nil, err
		}
		if !d.WaitServer(5 * time.Second) {
			return nil, fmt.Errorf("display-%d never linked", i)
		}
		return d, nil
	}

	// The original pair starts rendering.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 1; i <= 2; i++ {
		d, err := newDisplay(i)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, d *displaysync.Display) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := d.RunFrames(1, 5*time.Second, func(uint32) {
					time.Sleep(2 * time.Millisecond) // simulated render work
				}); err != nil {
					return
				}
			}
		}(i, d)
	}

	time.Sleep(300 * time.Millisecond)
	fmt.Printf("running: displays=%v, server at frame %d\n", srv.Displays(), srv.Frame())

	// Hot-add the third display: no restart, no reconfiguration.
	fmt.Println("attaching display-3 to the running system...")
	d3, err := newDisplay(3)
	if err != nil {
		return err
	}
	if err := d3.RunFrames(50, 5*time.Second, func(uint32) {
		time.Sleep(2 * time.Millisecond)
	}); err != nil {
		return err
	}

	fmt.Printf("after join: displays=%v, server at frame %d\n", srv.Displays(), srv.Frame())
	fmt.Printf("display-3 rendered %d synchronized frames at %.1f fps\n", d3.Frame(), d3.FPS())

	close(stop)
	wg.Wait()
	fmt.Println("done — the federation never restarted")
	return nil
}
