// Dynamicjoin demonstrates the §2.3 claim: "an LP (an extra display, for
// example) can be dynamically added to the system without restarting the
// entire system." Two displays run the synchronized surround view; mid-run
// a third display node joins the federation, its CB discovers the running
// system through the broadcast protocol, and the synchronization server
// admits it into the frame barrier — while frames keep flowing.
//
// Nodes come from the cod SDK; the displaysync module (an internal
// simulator component) plugs into a node through its Backbone handle.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"codsim/cod"
	"codsim/internal/displaysync"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fed := cod.NewFederation()
	defer fed.Close()

	server, err := fed.Node("sync-server")
	if err != nil {
		return err
	}
	srv, err := displaysync.NewServer(server.Backbone(), "sync", displaysync.ServerConfig{
		Expected: []string{"display-1", "display-2"},
	})
	if err != nil {
		return err
	}
	srv.Start()
	defer srv.Stop()

	newDisplay := func(i int) (*displaysync.Display, error) {
		node, err := fed.Node(fmt.Sprintf("display-pc-%d", i))
		if err != nil {
			return nil, err
		}
		d, err := displaysync.NewDisplay(node.Backbone(), fmt.Sprintf("display-%d", i))
		if err != nil {
			return nil, err
		}
		if !d.WaitServer(5 * time.Second) {
			return nil, fmt.Errorf("display-%d never linked", i)
		}
		return d, nil
	}

	// The original pair starts rendering.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 1; i <= 2; i++ {
		d, err := newDisplay(i)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, d *displaysync.Display) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := d.RunFrames(1, 5*time.Second, func(uint32) {
					time.Sleep(2 * time.Millisecond) // simulated render work
				}); err != nil {
					return
				}
			}
		}(i, d)
	}

	time.Sleep(300 * time.Millisecond)
	fmt.Printf("running: displays=%v, server at frame %d\n", srv.Displays(), srv.Frame())

	// Hot-add the third display: no restart, no reconfiguration.
	fmt.Println("attaching display-3 to the running system...")
	d3, err := newDisplay(3)
	if err != nil {
		return err
	}
	if err := d3.RunFrames(50, 5*time.Second, func(uint32) {
		time.Sleep(2 * time.Millisecond)
	}); err != nil {
		return err
	}

	fmt.Printf("after join: displays=%v, server at frame %d\n", srv.Displays(), srv.Frame())
	fmt.Printf("display-3 rendered %d synchronized frames at %.1f fps\n", d3.Frame(), d3.FPS())

	close(stop)
	wg.Wait()
	fmt.Println("done — the federation never restarted")
	return nil
}
