// Distributed runs the quickstart exchange over real UDP and TCP sockets
// on the loopback device — the same code path a multi-machine deployment
// would use, with each "computer" of the paper's rack owning one UDP port
// of the segment. Compare examples/quickstart, which uses the in-memory
// LAN; the only difference is the transport option.
//
// For a true multi-process run, see cmd/codnode.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"codsim/cod"
)

// CraneState mirrors the dynamics module's state vector as a typed class.
type CraneState struct {
	X, Y, Z   float64
	BoomLuff  float64
	BoomLen   float64
	CableLen  float64
	Stability float64
	EngineOn  bool
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 16-slot segment on loopback: ports 39900..39915. Both nodes name
	// the same segment, exactly as two processes on two machines would.
	fed := cod.NewFederation(cod.WithUDP("127.0.0.1:39900"))
	defer fed.Close()

	dyn, err := fed.Node("dynamics-pc")
	if err != nil {
		return err
	}
	disp, err := fed.Node("display-pc")
	if err != nil {
		return err
	}

	pub, err := cod.Publish[CraneState](dyn, "dynamics", "CraneState")
	if err != nil {
		return err
	}
	// The explicit LatestValue policy declares the saturation contract:
	// a stalled display conflates to the newest crane state per channel.
	sub, err := cod.Subscribe[CraneState](disp, "visual", "CraneState", cod.WithQueue(64), cod.LatestValue())
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sub.WaitMatched(ctx); err != nil {
		return fmt.Errorf("no virtual channel over real sockets: %w", err)
	}
	fmt.Println("virtual channel up over UDP discovery + TCP stream")

	const n = 30
	start := time.Now()
	for i := 0; i < n; i++ {
		st := CraneState{
			X: float64(i), BoomLuff: 0.5, BoomLen: 12, CableLen: 4, Stability: 1,
		}
		if err := pub.Update(float64(i), st); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		r, err := sub.Next(ctx)
		if err != nil {
			return fmt.Errorf("reflection %d lost: %w", i, err)
		}
		if i == 0 || i == n-1 {
			fmt.Printf("  reflect t=%.0f position.X=%.0f\n", r.Time, r.Value.X)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d full CraneState updates in %v (%.0f msg/s) over loopback TCP\n",
		n, elapsed.Round(time.Microsecond), float64(n)/elapsed.Seconds())
	return nil
}
