// Distributed runs the quickstart exchange over real UDP and TCP sockets on
// the loopback device — the same code path a multi-machine deployment would
// use, with each "computer" of the paper's rack owning one UDP port of the
// segment. Compare examples/quickstart, which uses the in-memory LAN.
//
// For a true multi-process run, see cmd/codnode.
package main

import (
	"fmt"
	"log"
	"time"

	"codsim/internal/cb"
	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 16-slot segment on loopback: ports 39900..39915.
	lan, err := transport.NewUDPLAN("127.0.0.1", 39900, 16)
	if err != nil {
		return err
	}

	dyn, err := cb.New(lan, "dynamics-pc", cb.Config{})
	if err != nil {
		return err
	}
	defer dyn.Close()
	disp, err := cb.New(lan, "display-pc", cb.Config{})
	if err != nil {
		return err
	}
	defer disp.Close()

	pub, err := dyn.PublishObjectClass("dynamics", fom.ClassCraneState)
	if err != nil {
		return err
	}
	sub, err := disp.SubscribeObjectClass("visual", fom.ClassCraneState, cb.WithQueue(64))
	if err != nil {
		return err
	}
	if !sub.WaitMatched(5 * time.Second) {
		return fmt.Errorf("no virtual channel over real sockets")
	}
	fmt.Println("virtual channel up over UDP discovery + TCP stream")

	const n = 30
	start := time.Now()
	for i := 0; i < n; i++ {
		st := fom.CraneState{
			Position: mathx.V3(float64(i), 0, 0),
			BoomLuff: 0.5, BoomLen: 12, CableLen: 4,
			Stability: 1,
		}
		if err := pub.Update(float64(i), st.Encode()); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		r, ok := sub.Next(5 * time.Second)
		if !ok {
			return fmt.Errorf("reflection %d lost", i)
		}
		st, err := fom.DecodeCraneState(r.Attrs)
		if err != nil {
			return err
		}
		if i == 0 || i == n-1 {
			fmt.Printf("  reflect t=%.0f position.X=%.0f\n", r.Time, st.Position.X)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d full CraneState updates in %v (%.0f msg/s) over loopback TCP\n",
		n, elapsed.Round(time.Microsecond), float64(n)/elapsed.Seconds())
	return nil
}
