package dynamics

import (
	"math"
	"sync"

	"codsim/internal/mathx"
)

// World is the cargo state shared by every rig working one site: the
// resting pickup sites and the loads currently on hooks. A single-crane
// Model owns a private World (dynamics.New builds one), so the classic
// API is unchanged; a multi-crane scenario builds one World and attaches
// every carrier's Model to it with NewCrane.
//
// Multi-hook cargo is the tandem-lift primitive: a unit registered with
// hooks = 2 stays on the ground until two rigs have latched it, then the
// load splits evenly between the cables and the carried position is the
// mean of the holding hooks. One holder releasing mid-carry grounds the
// cargo again while the other stays latched.
//
// Step-time operations (latch, release, hook tracking, nearest-site
// queries) are safe for concurrent use — each rig ticks on its own LP.
// Setup operations (Reset, AddCargo) are not: install the scenario
// before the federation starts stepping.
type World struct {
	mu      sync.Mutex
	resting []*cargoUnit // grounded units, in registration/drop order
	carried []*cargoUnit // fully held units, off the ground
	nextID  int64
}

// cargoUnit is one liftable load, grounded or carried.
type cargoUnit struct {
	id      int64
	pos     mathx.Vec3 // resting position, or carried position once lifted
	mass    float64    // kg, total
	hooks   int        // hooks needed to carry the unit (>= 1)
	holders []holderRef
	carried bool
}

// holderRef is one rig latched onto a unit, with its last reported hook
// position (holders tick on different goroutines, so the unit caches the
// positions instead of reaching into foreign models).
type holderRef struct {
	m    *Model
	hook mathx.Vec3
}

// NewWorld returns an empty shared cargo world.
func NewWorld() *World { return &World{} }

// Reset drops every registered unit and detaches any holders. Setup-time
// only: do not call while rigs are stepping.
func (w *World) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, list := range [][]*cargoUnit{w.resting, w.carried} {
		for _, u := range list {
			for _, h := range u.holders {
				h.m.detachCargo()
			}
		}
	}
	w.resting = w.resting[:0]
	w.carried = w.carried[:0]
	w.nextID = 0
}

// AddCargo registers one resting single-hook cargo and returns its stable
// ID (the registration order: 0, 1, ...).
func (w *World) AddCargo(pos mathx.Vec3, mass float64) int64 {
	return w.AddCargoHooks(pos, mass, 1)
}

// AddCargoHooks registers a resting cargo that needs `hooks` latched rigs
// before it leaves the ground (tandem lifts). hooks < 1 means 1.
func (w *World) AddCargoHooks(pos mathx.Vec3, mass float64, hooks int) int64 {
	if hooks < 1 {
		hooks = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	u := &cargoUnit{id: w.nextID, pos: pos, mass: mass, hooks: hooks}
	w.nextID++
	w.resting = append(w.resting, u)
	return u.id
}

// latch tries to hook rig m onto the nearest grounded unit with a free
// hook slot within latchDist of hookPos. On success the rig joins the
// holders; a unit reaching its hook count lifts off (removed from the
// resting list, load carried). Ties go to the later-registered unit,
// matching the classic single-site scan.
func (w *World) latch(m *Model, hookPos mathx.Vec3, latchDist float64) (*cargoUnit, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	best, bestD := -1, latchDist
	for i, u := range w.resting {
		if len(u.holders) >= u.hooks {
			continue
		}
		if d := hookPos.Dist(u.pos.Add(mathx.V3(0, 0.6, 0))); d <= bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return nil, false
	}
	u := w.resting[best]
	u.holders = append(u.holders, holderRef{m: m, hook: hookPos})
	if len(u.holders) == u.hooks {
		u.carried = true
		w.resting = append(w.resting[:best], w.resting[best+1:]...)
		w.carried = append(w.carried, u)
	}
	return u, true
}

// release unhooks rig m from unit u. A carried unit drops to the ground
// below its current position (groundY supplies the terrain height there)
// and becomes a pickup site again at the end of the resting order; a
// still-grounded unit just loses one holder. Returns the unit's resting
// position after the release.
func (w *World) release(m *Model, u *cargoUnit, groundY func(x, z float64) float64) mathx.Vec3 {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, h := range u.holders {
		if h.m == m {
			u.holders = append(u.holders[:i], u.holders[i+1:]...)
			break
		}
	}
	if u.carried {
		u.carried = false
		u.pos.Y = groundY(u.pos.X, u.pos.Z) + 0.5
		for i, c := range w.carried {
			if c == u {
				w.carried = append(w.carried[:i], w.carried[i+1:]...)
				break
			}
		}
		w.resting = append(w.resting, u)
	}
	return u.pos
}

// isCarrying reports whether rig m's latched unit is fully held (off the
// ground). False while a tandem cargo still waits for its partner hooks.
func (w *World) isCarrying(m *Model, u *cargoUnit) bool {
	if u == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return u.carried
}

// trackHook records rig m's hook position on its latched unit and returns
// the unit's current position: the mean of the holding hooks minus the
// sling offset while carried, or the fixed resting spot while the unit
// still waits on the ground for its remaining hooks.
func (w *World) trackHook(m *Model, u *cargoUnit, hookPos mathx.Vec3) mathx.Vec3 {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range u.holders {
		if u.holders[i].m == m {
			u.holders[i].hook = hookPos
			break
		}
	}
	if !u.carried {
		return u.pos
	}
	var sum mathx.Vec3
	for _, h := range u.holders {
		sum = sum.Add(h.hook)
	}
	u.pos = sum.Scale(1 / float64(len(u.holders))).Sub(mathx.V3(0, 0.6, 0))
	return u.pos
}

// nearestRestingPos returns the grounded unit nearest to hookPos, or the
// fallback when nothing rests (mirrors the classic published-cargo rule:
// while no cargo hangs on the hook, the displays show the closest pickup).
func (w *World) nearestRestingPos(hookPos, fallback mathx.Vec3) mathx.Vec3 {
	w.mu.Lock()
	defer w.mu.Unlock()
	best := fallback
	bestD := math.Inf(1)
	for _, u := range w.resting {
		if d := hookPos.Dist(u.pos); d < bestD {
			best, bestD = u.pos, d
		}
	}
	return best
}
