package dynamics

import (
	"math"
	"testing"

	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/terrain"
)

const dt = 1.0 / 60

func flatTerrain(t testing.TB) *terrain.Map {
	t.Helper()
	hs := make([]float64, 101*101)
	m, err := terrain.New(101, 101, 2, hs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newModel(t testing.TB) *Model {
	t.Helper()
	m, err := New(DefaultConfig(), flatTerrain(t), mathx.V3(100, 0, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func drive(m *Model, in fom.ControlInput, seconds float64) {
	steps := int(seconds / dt)
	for i := 0; i < steps; i++ {
		m.Step(in, dt)
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero mass", func(c *Config) { c.Mass = 0 }},
		{"zero wheelbase", func(c *Config) { c.Wheelbase = 0 }},
		{"bad luff range", func(c *Config) { c.LuffMin = c.LuffMax }},
		{"bad boom range", func(c *Config) { c.BoomLenMin = c.BoomLenMax }},
		{"bad cable range", func(c *Config) { c.CableMin = c.CableMax }},
		{"zero hook mass", func(c *Config) { c.HookMass = 0 }},
		{"zero tip moment", func(c *Config) { c.TipMomentMax = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if _, err := New(DefaultConfig(), nil, mathx.Vec3{}, 0); err == nil {
		t.Error("nil terrain accepted")
	}
}

func TestEngineEvents(t *testing.T) {
	m := newModel(t)
	ev := m.Step(fom.ControlInput{Ignition: true}, dt)
	if len(ev) != 1 || ev[0] != EventEngineStarted {
		t.Errorf("events = %v, want [EngineStarted]", ev)
	}
	// No repeat while held on.
	if ev := m.Step(fom.ControlInput{Ignition: true}, dt); len(ev) != 0 {
		t.Errorf("repeat events = %v", ev)
	}
	ev = m.Step(fom.ControlInput{Ignition: false}, dt)
	if len(ev) != 1 || ev[0] != EventEngineStopped {
		t.Errorf("events = %v, want [EngineStopped]", ev)
	}
	if m.State().EngineRPM != 0 {
		t.Errorf("rpm = %v after stop", m.State().EngineRPM)
	}
}

func TestDriveForward(t *testing.T) {
	m := newModel(t)
	in := fom.ControlInput{Ignition: true, Gear: 1, Throttle: 1}
	drive(m, in, 10)
	st := m.State()
	if st.Speed <= 1 {
		t.Fatalf("speed = %v after 10 s full throttle", st.Speed)
	}
	if st.Speed > DefaultConfig().MaxSpeed+1e-9 {
		t.Errorf("speed %v exceeds MaxSpeed", st.Speed)
	}
	// Heading 0 drives toward -Z.
	if st.Position.Z >= 100 {
		t.Errorf("position.Z = %v, expected to decrease", st.Position.Z)
	}
	if math.Abs(st.Position.X-100) > 0.5 {
		t.Errorf("position.X drifted to %v with zero steering", st.Position.X)
	}
	if st.EngineRPM <= DefaultConfig().IdleRPM {
		t.Errorf("rpm = %v at full throttle", st.EngineRPM)
	}
}

func TestNoDriveWithoutEngine(t *testing.T) {
	m := newModel(t)
	drive(m, fom.ControlInput{Gear: 1, Throttle: 1}, 2) // ignition off
	if st := m.State(); math.Abs(st.Speed) > 1e-9 {
		t.Errorf("speed = %v with engine off", st.Speed)
	}
}

func TestBrakeStopsVehicle(t *testing.T) {
	m := newModel(t)
	drive(m, fom.ControlInput{Ignition: true, Gear: 1, Throttle: 1}, 6)
	if m.State().Speed < 2 {
		t.Fatal("did not get up to speed")
	}
	drive(m, fom.ControlInput{Ignition: true, Brake: 1}, 6)
	if st := m.State(); math.Abs(st.Speed) > 0.01 {
		t.Errorf("speed = %v after full brake", st.Speed)
	}
}

func TestReverseGear(t *testing.T) {
	m := newModel(t)
	drive(m, fom.ControlInput{Ignition: true, Gear: 2, Throttle: 0.8}, 5)
	st := m.State()
	if st.Speed >= 0 {
		t.Errorf("speed = %v in reverse", st.Speed)
	}
	if st.Speed < -DefaultConfig().MaxReverse-1e-9 {
		t.Errorf("reverse speed %v exceeds limit", st.Speed)
	}
	if st.Position.Z <= 100 {
		t.Errorf("position.Z = %v, expected to increase in reverse", st.Position.Z)
	}
}

func TestSteeringTurns(t *testing.T) {
	m := newModel(t)
	in := fom.ControlInput{Ignition: true, Gear: 1, Throttle: 0.5, Steering: 1}
	drive(m, in, 5)
	if h := m.State().Heading; h <= 0.05 {
		t.Errorf("heading = %v after right turn", h)
	}
	// Steering does nothing when stationary.
	m2 := newModel(t)
	drive(m2, fom.ControlInput{Ignition: true, Steering: 1}, 2)
	if h := m2.State().Heading; math.Abs(h) > 1e-9 {
		t.Errorf("heading = %v while parked", h)
	}
}

func TestBoomAxesRespectLimits(t *testing.T) {
	m := newModel(t)
	cfg := DefaultConfig()
	// Raise and extend everything to the stops.
	in := fom.ControlInput{Ignition: true, BoomJoyY: 1, HoistJoyX: 1, HoistJoyY: 1}
	drive(m, in, 40)
	st := m.State()
	if math.Abs(st.BoomLuff-cfg.LuffMax) > 1e-6 {
		t.Errorf("luff = %v, want max %v", st.BoomLuff, cfg.LuffMax)
	}
	if math.Abs(st.BoomLen-cfg.BoomLenMax) > 1e-6 {
		t.Errorf("boomLen = %v, want max %v", st.BoomLen, cfg.BoomLenMax)
	}
	if math.Abs(st.CableLen-cfg.CableMax) > 1e-6 {
		t.Errorf("cableLen = %v, want max %v", st.CableLen, cfg.CableMax)
	}
	// And back down to the lower stops.
	in = fom.ControlInput{Ignition: true, BoomJoyY: -1, HoistJoyX: -1, HoistJoyY: -1}
	drive(m, in, 60)
	st = m.State()
	if math.Abs(st.BoomLuff-cfg.LuffMin) > 1e-6 {
		t.Errorf("luff = %v, want min %v", st.BoomLuff, cfg.LuffMin)
	}
	if math.Abs(st.BoomLen-cfg.BoomLenMin) > 1e-6 {
		t.Errorf("boomLen = %v, want min", st.BoomLen)
	}
	if math.Abs(st.CableLen-cfg.CableMin) > 1e-6 {
		t.Errorf("cableLen = %v, want min", st.CableLen)
	}
}

func TestBoomNeedsEngine(t *testing.T) {
	m := newModel(t)
	before := m.State().BoomSwing
	drive(m, fom.ControlInput{BoomJoyX: 1}, 3) // engine off
	if got := m.State().BoomSwing; math.Abs(got-before) > 1e-9 {
		t.Errorf("swing moved %v with engine off", got-before)
	}
}

func TestBoomSwing(t *testing.T) {
	m := newModel(t)
	drive(m, fom.ControlInput{Ignition: true, BoomJoyX: 1}, 2)
	if got := m.State().BoomSwing; got <= 0.05 {
		t.Errorf("swing = %v after 2 s full slew", got)
	}
}

func TestBoomTipGeometry(t *testing.T) {
	m := newModel(t)
	cfg := DefaultConfig()
	tip := m.BoomTip()
	// At swing 0 the boom points forward (-Z) and elevates by luffMin.
	wantY := cfg.BoomPivot.Y + cfg.BoomLenMin*math.Sin(cfg.LuffMin)
	if math.Abs(tip.Y-wantY) > 1e-9 {
		t.Errorf("tip.Y = %v, want %v", tip.Y, wantY)
	}
	if tip.Z >= 100 {
		t.Errorf("tip.Z = %v, want in front of carrier (< 100)", tip.Z)
	}
	if math.Abs(tip.X-100) > 1e-9 {
		t.Errorf("tip.X = %v, want centered", tip.X)
	}
}

// TestBoomTracksHeading pins the frame convention: with the boom centered,
// the boom tip must lie along the direction of travel for any heading.
func TestBoomTracksHeading(t *testing.T) {
	for _, heading := range []float64{0, math.Pi / 2, math.Pi, -math.Pi / 3} {
		m, err := New(DefaultConfig(), flatTerrain(t), mathx.V3(100, 0, 100), heading)
		if err != nil {
			t.Fatal(err)
		}
		fwd := mathx.V3(math.Sin(heading), 0, -math.Cos(heading))
		tip := m.BoomTip()
		horiz := mathx.V3(tip.X-100, 0, tip.Z-100).Normalize()
		if horiz.Dot(fwd) < 0.99 {
			t.Errorf("heading %v: boom tip toward %v, travel direction %v", heading, horiz, fwd)
		}
	}
}

// TestHookPendulumPeriod verifies the inertia oscillation has the physical
// pendulum period T = 2π√(L/g) within tolerance.
func TestHookPendulumPeriod(t *testing.T) {
	m := newModel(t)
	m.cfg.CableDrag = 0.01 // nearly undamped for the measurement
	// Displace the hook and let it swing.
	tip := m.BoomTip()
	L := m.cableLen
	m.hookPos = tip.Add(mathx.V3(math.Sin(0.15)*L, -math.Cos(0.15)*L, 0))
	m.hookVel = mathx.Vec3{}

	// Track zero crossings of the X displacement relative to the tip.
	var crossings []float64
	prev := m.hookPos.X - tip.X
	in := fom.ControlInput{}
	for step := 0; step < 60*20; step++ {
		m.Step(in, dt)
		cur := m.hookPos.X - m.BoomTip().X
		if prev > 0 && cur <= 0 || prev < 0 && cur >= 0 {
			crossings = append(crossings, m.Time())
		}
		prev = cur
	}
	if len(crossings) < 4 {
		t.Fatalf("only %d zero crossings; pendulum not oscillating", len(crossings))
	}
	period := 2 * (crossings[len(crossings)-1] - crossings[0]) / float64(len(crossings)-1)
	want := 2 * math.Pi * math.Sqrt(L/Gravity)
	if math.Abs(period-want) > want*0.1 {
		t.Errorf("period = %v, want %v ±10%%", period, want)
	}
}

// TestHookOscillationDecays verifies the §3.6 behaviour: after the boom
// stops, the hook oscillates with decreasing amplitude until a full stop.
func TestHookOscillationDecays(t *testing.T) {
	m := newModel(t)
	// Raise the boom high so the hook hangs free of the ground, then slew
	// hard and stop.
	drive(m, fom.ControlInput{Ignition: true, BoomJoyY: 1}, 5)
	drive(m, fom.ControlInput{Ignition: true, BoomJoyX: 1}, 2)
	drive(m, fom.ControlInput{Ignition: true}, 1) // joystick released

	amplitude := func(win int) float64 {
		maxAmp := 0.0
		for i := 0; i < win; i++ {
			m.Step(fom.ControlInput{Ignition: true}, dt)
			tip := m.BoomTip()
			lateral := math.Hypot(m.hookPos.X-tip.X, m.hookPos.Z-tip.Z)
			if lateral > maxAmp {
				maxAmp = lateral
			}
		}
		return maxAmp
	}
	early := amplitude(60 * 4)
	late := amplitude(60 * 16)
	if early < 0.05 {
		t.Fatalf("early amplitude %v: boom motion did not excite the hook", early)
	}
	if late > early*0.7 {
		t.Errorf("amplitude %v -> %v: oscillation not decaying", early, late)
	}
}

func TestHeavierCargoDampsSlower(t *testing.T) {
	run := func(mass float64) float64 {
		m := newModel(t)
		if mass > 0 {
			m.cargoHeld = true
			m.cargoMass = mass
		}
		tip := m.BoomTip()
		m.hookPos = tip.Add(mathx.V3(1.5, -m.cableLen+0.3, 0))
		for i := 0; i < 60*10; i++ {
			m.Step(fom.ControlInput{}, dt)
		}
		tip = m.BoomTip()
		return math.Hypot(m.hookPos.X-tip.X, m.hookPos.Z-tip.Z)
	}
	light := run(0)
	heavy := run(3000)
	if heavy <= light {
		t.Errorf("heavy cargo residual %v <= light %v: mass should slow damping", heavy, light)
	}
}

func TestCargoLatchRelease(t *testing.T) {
	m := newModel(t)
	// Put cargo directly under the hook's rest position.
	rest := m.hookPos
	m.PlaceCargo(rest.Sub(mathx.V3(0, 0.6, 0)), 1200)

	ev := m.Step(fom.ControlInput{Ignition: true, HookLatch: true}, dt)
	found := false
	for _, e := range ev {
		if e == EventCargoLatched {
			found = true
		}
	}
	if !found {
		t.Fatalf("events = %v, want CargoLatched", ev)
	}
	st := m.State()
	if !st.CargoHeld || st.CargoMass != 1200 {
		t.Errorf("state = held:%v mass:%v", st.CargoHeld, st.CargoMass)
	}

	// Carried cargo follows the hook.
	drive(m, fom.ControlInput{Ignition: true, HookLatch: true, HoistJoyY: -0.5}, 2)
	st = m.State()
	if st.CargoPos.Dist(st.HookPos) > 1 {
		t.Errorf("cargo %v strayed from hook %v", st.CargoPos, st.HookPos)
	}

	ev = m.Step(fom.ControlInput{Ignition: true, HookLatch: false}, dt)
	found = false
	for _, e := range ev {
		if e == EventCargoReleased {
			found = true
		}
	}
	if !found {
		t.Fatalf("events = %v, want CargoReleased", ev)
	}
	if m.State().CargoHeld {
		t.Error("cargo still held after release")
	}
}

func TestLatchOutOfRangeFails(t *testing.T) {
	m := newModel(t)
	m.PlaceCargo(mathx.V3(50, 0, 50), 1000) // far away
	ev := m.Step(fom.ControlInput{Ignition: true, HookLatch: true}, dt)
	for _, e := range ev {
		if e == EventCargoLatched {
			t.Fatal("latched cargo 70 m away")
		}
	}
	if m.State().CargoHeld {
		t.Error("cargo held")
	}
}

func TestStabilityMarginDropsWithReach(t *testing.T) {
	m := newModel(t)
	m.cargoHeld = true
	m.cargoMass = 5000
	stowed := m.Stability()
	// Extend and lower the boom: longer lever arm, lower margin.
	drive(m, fom.ControlInput{Ignition: true, HoistJoyX: 1}, 20)
	drive(m, fom.ControlInput{Ignition: true, HoistJoyY: 1}, 8)
	// Settle the hook under the extended tip.
	drive(m, fom.ControlInput{Ignition: true}, 8)
	extended := m.Stability()
	if extended >= stowed {
		t.Errorf("stability %v -> %v: should drop with reach", stowed, extended)
	}
	if extended < 0 || extended > 1 || stowed < 0 || stowed > 1 {
		t.Errorf("stability out of [0,1]: %v, %v", stowed, extended)
	}
}

func TestTerrainFollowingOnSlope(t *testing.T) {
	// A ramp rising along +X; vehicle heading +X must pitch up.
	w, h := 60, 60
	hs := make([]float64, w*h)
	for iz := 0; iz < h; iz++ {
		for ix := 0; ix < w; ix++ {
			hs[iz*w+ix] = 0.15 * float64(ix) * 2
		}
	}
	ter, err := terrain.New(w, h, 2, hs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(), ter, mathx.V3(60, 0, 60), math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	// Hold the brake while the posture settles so gravity cannot roll the
	// truck off the reference point.
	drive(m, fom.ControlInput{Ignition: true, Brake: 1}, 2)
	st := m.State()
	wantPitch := math.Atan(0.15)
	if math.Abs(st.Pitch-wantPitch) > 0.02 {
		t.Errorf("pitch = %v, want %v", st.Pitch, wantPitch)
	}
	if math.Abs(st.Position.Y-ter.HeightAt(st.Position.X, st.Position.Z)) > 1e-9 {
		t.Errorf("height = %v, want terrain %v", st.Position.Y, ter.HeightAt(st.Position.X, st.Position.Z))
	}
	if math.Abs(st.Speed) > 1e-9 {
		t.Errorf("speed = %v while braked", st.Speed)
	}
	// Releasing the brake on the uphill slope lets the truck roll back.
	drive(m, fom.ControlInput{Ignition: true, Gear: 0}, 3)
	if m.State().Speed >= -0.01 {
		t.Errorf("speed = %v: should roll back on uphill slope", m.State().Speed)
	}
}

func TestMotionCueVibration(t *testing.T) {
	m := newModel(t)
	cue := m.MotionCue(1)
	if cue.Vibration != 0 {
		t.Errorf("vibration = %v with engine off", cue.Vibration)
	}
	drive(m, fom.ControlInput{Ignition: true}, 1)
	idle := m.MotionCue(2).Vibration
	if idle <= 0 {
		t.Error("no vibration at idle")
	}
	drive(m, fom.ControlInput{Ignition: true, Throttle: 1, Gear: 1}, 2)
	full := m.MotionCue(3).Vibration
	if full <= idle {
		t.Errorf("vibration idle %v -> full %v: should increase with rpm", idle, full)
	}
	if full > 1 {
		t.Errorf("vibration %v > 1", full)
	}
	// Gravity shows up in the specific force when parked on flat ground.
	m2 := newModel(t)
	sf := m2.MotionCue(0).SpecificForce
	if math.Abs(sf.Y+Gravity) > 0.2 {
		t.Errorf("specific force Y = %v, want ≈ -g", sf.Y)
	}
}

func TestStateRoundTripsThroughFOM(t *testing.T) {
	m := newModel(t)
	drive(m, fom.ControlInput{Ignition: true, Gear: 1, Throttle: 0.5, BoomJoyX: 0.3}, 2)
	st := m.State()
	dec, err := fom.DecodeCraneState(st.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec != st {
		t.Error("CraneState does not survive FOM round trip")
	}
}

func BenchmarkDynamicsStep(b *testing.B) {
	hs := make([]float64, 101*101)
	ter, err := terrain.New(101, 101, 2, hs)
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(DefaultConfig(), ter, mathx.V3(100, 0, 100), 0)
	if err != nil {
		b.Fatal(err)
	}
	in := fom.ControlInput{Ignition: true, Gear: 1, Throttle: 0.7, Steering: 0.2, BoomJoyX: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Step(in, dt)
	}
}
