// Package dynamics implements the dynamic module of §3.6: the physics that
// makes the simulator "high fidelity". It integrates, at a fixed step,
//
//   - the carrier (truck) dynamics: engine, gas and brake pedals, steering,
//     slope resistance, and terrain following of the ground posture;
//   - the derrick boom kinematics: rate-limited swing (slew), luff (raise),
//     telescope and hoist axes driven by the two joysticks;
//   - the inertia oscillation of the lift hook: the plumb cable is a
//     pendulum with a moving pivot (the boom tip), so boom motion swings
//     the hook, and after the boom stops the hook keeps oscillating until
//     drag brings it to rest — exactly the behaviour the paper calls out;
//   - the tip-over stability margin, since a mobile crane's high center of
//     gravity makes both driving and lifting hazardous.
//
// The module also produces the motion cues (specific force and angular
// rates) consumed by the Stewart-platform controller (§3.4).
package dynamics

import (
	"fmt"
	"math"

	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/terrain"
)

// Gravity is the gravitational acceleration used throughout (m/s²).
const Gravity = 9.81

// Config holds the physical parameters of the simulated mobile crane. Use
// DefaultConfig as the base; all values are SI.
type Config struct {
	// Carrier.
	Mass           float64 // kg, carrier + superstructure
	Wheelbase      float64 // m
	Track          float64 // m
	MaxEngineForce float64 // N at full throttle
	MaxBrakeForce  float64 // N at full brake
	MaxSpeed       float64 // m/s forward
	MaxReverse     float64 // m/s backward
	MaxSteer       float64 // rad, wheel angle at full lock
	RollResist     float64 // N/(m/s) rolling + drivetrain resistance
	IdleRPM        float64
	MaxRPM         float64

	// Boom geometry and actuation.
	BoomPivot  mathx.Vec3 // boom foot in carrier frame (origin at ground center)
	SwingRate  float64    // rad/s at full joystick
	LuffRate   float64    // rad/s
	TeleRate   float64    // m/s
	HoistRate  float64    // m/s
	LuffMin    float64    // rad
	LuffMax    float64    // rad
	BoomLenMin float64    // m
	BoomLenMax float64    // m
	CableMin   float64    // m
	CableMax   float64    // m
	ControlLag float64    // s, first-order actuator lag

	// Suspended load.
	HookMass  float64 // kg
	CableDrag float64 // 1/s, linear velocity damping at hook mass
	LatchDist float64 // m, max hook-to-cargo distance for latching
	// WindResponse couples the hook to the site wind (SetWind): the
	// fraction per second by which the hook's velocity relaxes toward the
	// wind velocity, before the suspended-mass derate. 0 disables wind.
	WindResponse float64 // 1/s

	// Stability.
	TipMomentMax float64 // N·m, load moment that fully consumes the margin
}

// DefaultConfig returns parameters approximating a 25-tonne telescopic
// truck crane.
func DefaultConfig() Config {
	return Config{
		Mass:           24000,
		Wheelbase:      4.2,
		Track:          2.5,
		MaxEngineForce: 65000,
		MaxBrakeForce:  90000,
		MaxSpeed:       13.9, // ~50 km/h
		MaxReverse:     4.2,
		MaxSteer:       mathx.Rad(35),
		RollResist:     2600,
		IdleRPM:        650,
		MaxRPM:         2400,

		BoomPivot:  mathx.V3(0, 2.4, 1.0),
		SwingRate:  mathx.Rad(18),
		LuffRate:   mathx.Rad(9),
		TeleRate:   0.9,
		HoistRate:  1.4,
		LuffMin:    mathx.Rad(12),
		LuffMax:    mathx.Rad(80),
		BoomLenMin: 10.2,
		BoomLenMax: 26.0,
		CableMin:   1.0,
		CableMax:   28.0,
		ControlLag: 0.35,

		HookMass:     250,
		CableDrag:    0.28,
		LatchDist:    1.6,
		WindResponse: 0.35,

		TipMomentMax: 9.0e5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Mass <= 0:
		return fmt.Errorf("dynamics: Mass %v", c.Mass)
	case c.Wheelbase <= 0 || c.Track <= 0:
		return fmt.Errorf("dynamics: footprint %vx%v", c.Wheelbase, c.Track)
	case c.LuffMin >= c.LuffMax:
		return fmt.Errorf("dynamics: luff range [%v,%v]", c.LuffMin, c.LuffMax)
	case c.BoomLenMin >= c.BoomLenMax:
		return fmt.Errorf("dynamics: boom range [%v,%v]", c.BoomLenMin, c.BoomLenMax)
	case c.CableMin >= c.CableMax:
		return fmt.Errorf("dynamics: cable range [%v,%v]", c.CableMin, c.CableMax)
	case c.HookMass <= 0:
		return fmt.Errorf("dynamics: HookMass %v", c.HookMass)
	case c.TipMomentMax <= 0:
		return fmt.Errorf("dynamics: TipMomentMax %v", c.TipMomentMax)
	}
	return nil
}

// Event is a discrete occurrence surfaced by Step for the audio and
// scenario modules.
type Event int

// Events. Values start at 1; 0 is invalid.
const (
	EventEngineStarted Event = iota + 1
	EventEngineStopped
	EventCargoLatched
	EventCargoReleased
)

// Model integrates the crane. Not safe for concurrent use: it belongs to
// the dynamics LP's tick loop.
type Model struct {
	cfg Config
	ter *terrain.Map

	// Carrier.
	pos      mathx.Vec3
	heading  float64
	speed    float64
	pitch    float64
	roll     float64
	prevYawR float64
	accelFwd float64
	engineOn bool
	rpm      float64

	// Boom axes: position + actual (lagged) rate.
	swing, swingV  float64
	luff, luffV    float64
	boomLen, lenV  float64
	cableLen, cabV float64
	prevTip        mathx.Vec3
	prevTipVel     mathx.Vec3
	havePrevTip    bool

	// Suspended load.
	hookPos   mathx.Vec3
	hookVel   mathx.Vec3
	cargoHeld bool
	cargoMass float64    // this rig's share of the latched load (kg)
	cargoPos  mathx.Vec3 // carried or last-touched resting position
	latchArm  bool       // debounced latch input edge

	// Cargo lives in the (possibly shared) World: the latch grabs the
	// nearest grounded unit within LatchDist; releasing drops the cargo
	// back as a new unit where it lands. Units keep the stable ID they
	// were registered with (their position in the AddCargo sequence), so
	// the scenario engine can tell which load is on which hook. cargoRef
	// is this rig's latched unit (nil when the hook is empty); only this
	// rig's goroutine touches it.
	world    *World
	cargoRef *cargoUnit
	craneID  int64

	wind Wind

	events []Event
	t      float64
}

// New creates a single-crane model resting at start on the given terrain,
// heading along -Z, with boom stowed and cable short. The model owns a
// private cargo World; use NewCrane to place several rigs on one site.
func New(cfg Config, ter *terrain.Map, start mathx.Vec3, heading float64) (*Model, error) {
	return NewCrane(cfg, ter, NewWorld(), start, heading, 0)
}

// NewCrane creates one rig of a (possibly multi-carrier) site: the model
// rests at start on the terrain and latches cargo out of the shared
// world. craneID tags the published CraneState so federation consumers
// can tell the carriers apart; single-crane setups use 0.
func NewCrane(cfg Config, ter *terrain.Map, w *World, start mathx.Vec3, heading float64, craneID int) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ter == nil {
		return nil, fmt.Errorf("dynamics: nil terrain")
	}
	if w == nil {
		return nil, fmt.Errorf("dynamics: nil world")
	}
	m := &Model{
		cfg:      cfg,
		ter:      ter,
		world:    w,
		craneID:  int64(craneID),
		pos:      start,
		heading:  heading,
		luff:     cfg.LuffMin,
		boomLen:  cfg.BoomLenMin,
		cableLen: 4.0,
	}
	m.pos.Y = ter.HeightAt(start.X, start.Z)
	m.pitch, m.roll = ter.Posture(m.pos.X, m.pos.Z, m.heading, cfg.Wheelbase, cfg.Track)
	tip := m.BoomTip()
	m.hookPos = tip.Sub(mathx.V3(0, m.cableLen, 0))
	m.cargoPos = m.hookPos
	return m, nil
}

// World returns the model's cargo world (shared across rigs in
// multi-crane setups).
func (m *Model) World() *World { return m.world }

// CraneID returns the rig's carrier index.
func (m *Model) CraneID() int64 { return m.craneID }

// detachCargo clears the rig's held-load bookkeeping (World.Reset calls
// it when the site layout is replaced under a latched hook).
func (m *Model) detachCargo() {
	m.cargoHeld = false
	m.cargoMass = 0
	m.cargoRef = nil
}

// PlaceCargo registers a single cargo of the given mass resting at pos,
// replacing any previously registered units in the world; the hook
// latches onto it when the operator closes the latch nearby. Use AddCargo
// to register further cargos for multi-lift scenarios.
func (m *Model) PlaceCargo(pos mathx.Vec3, mass float64) {
	m.world.Reset()
	m.AddCargo(pos, mass)
}

// AddCargo registers one more resting cargo unit in the world. The latch
// always grabs the nearest unit within the latch distance. Units are
// identified by their registration order (0, 1, ...), matching the
// scenario cargo-set index when the layout is installed in spec order.
func (m *Model) AddCargo(pos mathx.Vec3, mass float64) {
	m.world.AddCargo(pos, mass)
	if !m.cargoHeld {
		m.cargoPos = m.world.nearestRestingPos(m.hookPos, m.cargoPos)
	}
}

// CarrierRot returns the carrier body rotation mapping body axes (forward
// -Z, right +X, up +Y) to world space. Heading is compass-like — 0 faces
// -Z, π/2 faces +X — which is a rotation of -heading about +Y. Pitch is
// nose-up positive; roll is left-side-up positive, a rotation of -roll
// about +Z in the body frame.
func (m *Model) CarrierRot() mathx.Quat {
	return mathx.QuatEuler(-m.heading, m.pitch, -m.roll)
}

// BoomTip returns the boom tip position in world space.
func (m *Model) BoomTip() mathx.Vec3 {
	// Boom direction in carrier frame: at swing 0 the boom points forward
	// (-Z), luff elevates toward +Y.
	sinS, cosS := math.Sincos(m.swing)
	sinL, cosL := math.Sincos(m.luff)
	dir := mathx.V3(sinS*cosL, sinL, -cosS*cosL)
	local := m.cfg.BoomPivot.Add(dir.Scale(m.boomLen))
	return m.pos.Add(m.CarrierRot().Rotate(local))
}

// Step advances the model by dt seconds under the given operator input and
// returns the discrete events raised during the step.
func (m *Model) Step(in fom.ControlInput, dt float64) []Event {
	if dt <= 0 {
		return nil
	}
	m.events = m.events[:0]
	m.t += dt

	m.stepEngine(in)
	m.stepCarrier(in, dt)
	m.stepBoom(in, dt)
	m.stepPendulum(dt)
	m.stepLatch(in)

	return append([]Event(nil), m.events...)
}

func (m *Model) stepEngine(in fom.ControlInput) {
	if in.Ignition && !m.engineOn {
		m.engineOn = true
		m.events = append(m.events, EventEngineStarted)
	}
	if !in.Ignition && m.engineOn {
		m.engineOn = false
		m.events = append(m.events, EventEngineStopped)
	}
	if m.engineOn {
		m.rpm = m.cfg.IdleRPM + mathx.Clamp(in.Throttle, 0, 1)*(m.cfg.MaxRPM-m.cfg.IdleRPM)
	} else {
		m.rpm = 0
	}
}

func (m *Model) stepCarrier(in fom.ControlInput, dt float64) {
	cfg := m.cfg
	var drive float64
	if m.engineOn {
		switch in.Gear {
		case 1:
			drive = mathx.Clamp(in.Throttle, 0, 1) * cfg.MaxEngineForce
		case 2:
			drive = -mathx.Clamp(in.Throttle, 0, 1) * cfg.MaxEngineForce * 0.6
		}
	}
	// Forces along the forward axis.
	brake := mathx.Clamp(in.Brake, 0, 1) * cfg.MaxBrakeForce
	slope := -cfg.Mass * Gravity * math.Sin(m.pitch) // uphill pitch slows forward motion
	resist := cfg.RollResist * m.speed
	force := drive + slope - resist
	// Brake always opposes motion and can hold the vehicle.
	if m.speed > 0 {
		force -= brake
	} else if m.speed < 0 {
		force += brake
	} else if math.Abs(force) < brake {
		force = 0
	}
	prevSpeed := m.speed
	m.speed += force / cfg.Mass * dt
	// Brake must not reverse the motion direction within a step.
	if brake > 0 && prevSpeed != 0 && m.speed*prevSpeed < 0 {
		m.speed = 0
	}
	m.speed = mathx.Clamp(m.speed, -cfg.MaxReverse, cfg.MaxSpeed)
	m.accelFwd = (m.speed - prevSpeed) / dt

	// Steering (bicycle model). Sign: positive steering turns right
	// (heading increases with forward motion).
	steer := mathx.Clamp(in.Steering, -1, 1) * cfg.MaxSteer
	yawRate := 0.0
	if math.Abs(m.speed) > 1e-6 {
		yawRate = m.speed / cfg.Wheelbase * math.Tan(steer)
	}
	m.prevYawR = yawRate
	m.heading = mathx.WrapAngle(m.heading + yawRate*dt)

	// Advance over the ground; the forward axis at heading 0 is -Z.
	sinH, cosH := math.Sincos(m.heading)
	fwd := mathx.V3(sinH, 0, -cosH)
	m.pos = m.pos.Add(fwd.Scale(m.speed * dt))
	m.pos.Y = m.ter.HeightAt(m.pos.X, m.pos.Z)

	// Terrain following with a small settling lag so grid cell borders do
	// not kick the cab (§3.6).
	tp, tr := m.ter.Posture(m.pos.X, m.pos.Z, m.heading, cfg.Wheelbase, cfg.Track)
	blend := mathx.Clamp(dt/0.15, 0, 1)
	m.pitch += (tp - m.pitch) * blend
	m.roll += (tr - m.roll) * blend
}

// stepBoom integrates the four boom axes with first-order actuator lag and
// hard position limits.
func (m *Model) stepBoom(in fom.ControlInput, dt float64) {
	cfg := m.cfg
	lag := mathx.Clamp(dt/math.Max(cfg.ControlLag, 1e-3), 0, 1)
	operational := m.engineOn // boom hydraulics need the engine

	target := func(axis float64, maxRate float64) float64 {
		if !operational {
			return 0
		}
		return mathx.Clamp(axis, -1, 1) * maxRate
	}
	m.swingV += (target(in.BoomJoyX, cfg.SwingRate) - m.swingV) * lag
	m.luffV += (target(in.BoomJoyY, cfg.LuffRate) - m.luffV) * lag
	m.lenV += (target(in.HoistJoyX, cfg.TeleRate) - m.lenV) * lag
	m.cabV += (target(in.HoistJoyY, cfg.HoistRate) - m.cabV) * lag

	m.swing = mathx.WrapAngle(m.swing + m.swingV*dt)
	m.luff += m.luffV * dt
	if m.luff <= cfg.LuffMin {
		m.luff, m.luffV = cfg.LuffMin, 0
	} else if m.luff >= cfg.LuffMax {
		m.luff, m.luffV = cfg.LuffMax, 0
	}
	m.boomLen += m.lenV * dt
	if m.boomLen <= cfg.BoomLenMin {
		m.boomLen, m.lenV = cfg.BoomLenMin, 0
	} else if m.boomLen >= cfg.BoomLenMax {
		m.boomLen, m.lenV = cfg.BoomLenMax, 0
	}
	m.cableLen += m.cabV * dt
	if m.cableLen <= cfg.CableMin {
		m.cableLen, m.cabV = cfg.CableMin, 0
	} else if m.cableLen >= cfg.CableMax {
		m.cableLen, m.cabV = cfg.CableMax, 0
	}
}

// stepPendulum integrates the hook as a particle on an inextensible cable
// hanging from the moving boom tip: gravity plus linear drag, then a
// position-based projection onto the cable-length constraint. This yields
// the paper's inertia oscillation — the cable "is oscillated until a full
// stop" after the boom halts — without a stiff spring.
func (m *Model) stepPendulum(dt float64) {
	tip := m.BoomTip()
	if !m.havePrevTip {
		m.prevTip = tip
		m.havePrevTip = true
	}
	tipVel := tip.Sub(m.prevTip).Scale(1 / dt)
	m.prevTip = tip
	m.prevTipVel = tipVel

	// Heavier suspended loads are damped relatively less.
	massFactor := (m.cfg.HookMass + m.cargoMass) / m.cfg.HookMass
	drag := m.cfg.CableDrag / massFactor

	m.hookVel.Y -= Gravity * dt
	m.hookVel = m.hookVel.Sub(m.hookVel.Scale(drag * dt))

	// Site wind: aerodynamic drag relaxes the hook velocity toward the
	// wind velocity. Heavier suspended loads respond relatively less.
	if m.cfg.WindResponse > 0 && !m.wind.IsZero() {
		rel := m.wind.VelocityAt(m.t).Sub(m.hookVel)
		m.hookVel = m.hookVel.Add(rel.Scale(m.cfg.WindResponse / massFactor * dt))
	}

	m.hookPos = m.hookPos.Add(m.hookVel.Scale(dt))

	// Cable constraint: the hook may not be farther than cableLen from
	// the tip. A taut cable removes outward radial velocity (relative to
	// the moving pivot).
	delta := m.hookPos.Sub(tip)
	dist := delta.Len()
	if dist > m.cableLen {
		dir := delta.Scale(1 / dist)
		m.hookPos = tip.Add(dir.Scale(m.cableLen))
		rel := m.hookVel.Sub(tipVel)
		if out := rel.Dot(dir); out > 0 {
			m.hookVel = m.hookVel.Sub(dir.Scale(out))
		}
	}

	// Ground: the hook (and carried cargo) cannot sink into the terrain.
	// A latched tandem cargo still waiting for its partner hooks rests on
	// the ground, so it grants no hanging clearance.
	carrying := m.world.isCarrying(m, m.cargoRef)
	minY := m.ter.HeightAt(m.hookPos.X, m.hookPos.Z) + 0.15
	if carrying {
		minY += 0.6 // carried cargo hangs below the hook
	}
	if m.hookPos.Y < minY {
		m.hookPos.Y = minY
		if m.hookVel.Y < 0 {
			m.hookVel.Y = 0
		}
		// Ground friction kills lateral sliding quickly.
		m.hookVel.X *= 0.7
		m.hookVel.Z *= 0.7
	}

	if m.cargoRef != nil {
		m.cargoPos = m.world.trackHook(m, m.cargoRef, m.hookPos)
	} else {
		m.cargoPos = m.world.nearestRestingPos(m.hookPos, m.cargoPos)
	}
}

// stepLatch handles cargo pickup and release on latch edges. The load
// the rig feels is its share of the unit's mass — half a tandem beam,
// the whole of an ordinary crate.
func (m *Model) stepLatch(in fom.ControlInput) {
	if in.HookLatch && !m.latchArm {
		m.latchArm = true
		if !m.cargoHeld {
			if u, ok := m.world.latch(m, m.hookPos, m.cfg.LatchDist); ok {
				m.cargoHeld = true
				m.cargoRef = u
				m.cargoMass = u.mass / float64(u.hooks)
				m.cargoPos = u.pos
				m.events = append(m.events, EventCargoLatched)
			}
		}
	}
	if !in.HookLatch && m.latchArm {
		m.latchArm = false
		if m.cargoHeld {
			// A carried unit drops to the ground below its release point
			// and becomes a pickup site again, keeping its identity; a
			// grounded tandem unit just loses this rig's hook.
			m.cargoPos = m.world.release(m, m.cargoRef, m.ter.HeightAt)
			m.cargoHeld = false
			m.cargoRef = nil
			m.cargoMass = 0
			m.events = append(m.events, EventCargoReleased)
		}
	}
}

// Stability returns the tip-over margin in [0,1]: 1 fully stable, 0 at the
// tipping limit. It combines the suspended load moment about the carrier
// with a penalty for ground tilt.
func (m *Model) Stability() float64 {
	load := (m.cfg.HookMass + m.cargoMass) * Gravity
	// Horizontal lever arm of the suspended load from the carrier center.
	arm := math.Hypot(m.hookPos.X-m.pos.X, m.hookPos.Z-m.pos.Z)
	moment := load * arm
	margin := 1 - moment/m.cfg.TipMomentMax
	// Tilt penalty: 15° of combined tilt wipes out half the margin.
	tilt := math.Hypot(m.pitch, m.roll)
	margin -= tilt / mathx.Rad(30)
	return mathx.Clamp(margin, 0, 1)
}

// State exports the authoritative crane state for publication. CargoHeld
// reports the latch (a tandem cargo may still rest on the ground while
// latched, waiting for its partner hooks); CargoMass is this rig's share
// of the load.
func (m *Model) State() fom.CraneState {
	heldID := int64(-1)
	if m.cargoRef != nil {
		heldID = m.cargoRef.id
	}
	return fom.CraneState{
		Position:  m.pos,
		Heading:   m.heading,
		Pitch:     m.pitch,
		Roll:      m.roll,
		Speed:     m.speed,
		BoomSwing: m.swing,
		BoomLuff:  m.luff,
		BoomLen:   m.boomLen,
		CableLen:  m.cableLen,
		HookPos:   m.hookPos,
		HookVel:   m.hookVel,
		CargoMass: m.cargoMass,
		CargoHeld: m.cargoHeld,
		EngineRPM: m.rpm,
		EngineOn:  m.engineOn,
		Stability: m.Stability(),
		CargoPos:  m.cargoPos,
		CargoID:   heldID,
		CraneID:   m.craneID,
	}
}

// MotionCue exports the cab's inertial cues for the motion platform (§3.4).
func (m *Model) MotionCue(frame uint32) fom.MotionCue {
	// Specific force in the cab frame: forward acceleration plus the
	// gravity components induced by the terrain posture.
	sf := mathx.V3(
		Gravity*math.Sin(m.roll),
		-Gravity*math.Cos(m.pitch)*math.Cos(m.roll),
		-m.accelFwd+Gravity*math.Sin(m.pitch),
	)
	vib := 0.0
	if m.engineOn {
		vib = 0.15 + 0.45*(m.rpm-m.cfg.IdleRPM)/math.Max(m.cfg.MaxRPM-m.cfg.IdleRPM, 1)
	}
	return fom.MotionCue{
		SpecificForce: sf,
		AngularRate:   mathx.V3(0, 0, m.prevYawR),
		Vibration:     mathx.Clamp(vib, 0, 1),
		Frame:         frame,
		CraneID:       m.craneID,
	}
}

// Time returns the model's accumulated simulation time.
func (m *Model) Time() float64 { return m.t }
