package dynamics

import (
	"math"

	"codsim/internal/mathx"
)

// Wind is a deterministic site wind disturbance: a steady mean flow plus
// periodic gusting, applied as aerodynamic drag on the suspended load. The
// model is intentionally simple — the point is the training effect (the
// hook drifts downwind and keeps swinging), not micro-meteorology — and it
// is fully repeatable, so a scenario run scores the same every time.
type Wind struct {
	// Mean is the steady wind velocity in world space (m/s). Y is ignored.
	Mean mathx.Vec3
	// Gust is the peak extra speed (m/s) superimposed along and across the
	// mean direction.
	Gust float64
	// Period is the gust cycle length in seconds (default 8 when gusting).
	Period float64
}

// IsZero reports whether the wind carries no disturbance at all.
func (w Wind) IsZero() bool {
	return w.Mean.X == 0 && w.Mean.Z == 0 && w.Gust == 0
}

// VelocityAt returns the wind velocity at simulation time t. Gusts combine
// two incommensurate sinusoids so the pattern does not feel like a
// metronome, yet stays deterministic.
func (w Wind) VelocityAt(t float64) mathx.Vec3 {
	v := mathx.V3(w.Mean.X, 0, w.Mean.Z)
	if w.Gust == 0 {
		return v
	}
	period := w.Period
	if period <= 0 {
		period = 8
	}
	along := math.Sin(2 * math.Pi * t / period)
	across := math.Sin(2*math.Pi*t/(period*1.73) + 1.1)
	dir := v
	if l := dir.Len(); l > 1e-9 {
		dir = dir.Scale(1 / l)
	} else {
		dir = mathx.V3(1, 0, 0)
	}
	side := mathx.V3(-dir.Z, 0, dir.X)
	return v.Add(dir.Scale(w.Gust * 0.7 * along)).Add(side.Scale(w.Gust * 0.5 * across))
}

// SetWind installs the wind disturbance; the zero value disables it.
func (m *Model) SetWind(w Wind) { m.wind = w }

// Wind returns the installed wind disturbance.
func (m *Model) Wind() Wind { return m.wind }
