package fom

import (
	"codsim/internal/mathx"
	"codsim/internal/wire"
)

// Attribute handles of ClassControlInput.
const (
	CIAttrSteering  wire.AttrID = 1  // [-1, 1], left negative
	CIAttrThrottle  wire.AttrID = 2  // [0, 1] gas pedal
	CIAttrBrake     wire.AttrID = 3  // [0, 1] brake pedal
	CIAttrBoomJoyX  wire.AttrID = 4  // joystick 1 X: boom swing rate [-1, 1]
	CIAttrBoomJoyY  wire.AttrID = 5  // joystick 1 Y: boom luff rate [-1, 1]
	CIAttrHoistJoyX wire.AttrID = 6  // joystick 2 X: boom telescope rate [-1, 1]
	CIAttrHoistJoyY wire.AttrID = 7  // joystick 2 Y: hoist cable rate [-1, 1]
	CIAttrIgnition  wire.AttrID = 8  // engine master switch
	CIAttrGear      wire.AttrID = 9  // 0 neutral, 1 forward, 2 reverse
	CIAttrHookLatch wire.AttrID = 10 // cargo hook latch engaged
	CIAttrCraneID   wire.AttrID = 11 // addressed carrier; absent = crane 0
)

// ControlInput is the dashboard module's sampled operator input (§3.2):
// steering wheel, gas pedal, brake, and the two joysticks that control the
// derrick boom and the plumb cable.
type ControlInput struct {
	Steering  float64
	Throttle  float64
	Brake     float64
	BoomJoyX  float64 // swing (slew) command
	BoomJoyY  float64 // luff (raise/lower) command
	HoistJoyX float64 // telescope command
	HoistJoyY float64 // hoist (cable up/down) command
	Ignition  bool
	Gear      uint32
	HookLatch bool
	// CraneID addresses the carrier this input drives in a multi-crane
	// federation. Absent on the wire means crane 0 — the legacy
	// single-crane rule, so recordings and peers from older builds keep
	// working unchanged.
	CraneID int64
}

// Encode packs the struct into an attribute set.
func (c ControlInput) Encode() wire.AttrSet {
	a := wire.NewAttrSet(10)
	a.PutFloat64(CIAttrSteering, c.Steering)
	a.PutFloat64(CIAttrThrottle, c.Throttle)
	a.PutFloat64(CIAttrBrake, c.Brake)
	a.PutFloat64(CIAttrBoomJoyX, c.BoomJoyX)
	a.PutFloat64(CIAttrBoomJoyY, c.BoomJoyY)
	a.PutFloat64(CIAttrHoistJoyX, c.HoistJoyX)
	a.PutFloat64(CIAttrHoistJoyY, c.HoistJoyY)
	a.PutBool(CIAttrIgnition, c.Ignition)
	a.PutUint32(CIAttrGear, c.Gear)
	a.PutBool(CIAttrHookLatch, c.HookLatch)
	a.PutInt64(CIAttrCraneID, c.CraneID)
	return a
}

// DecodeControlInput unpacks an attribute set produced by Encode.
func DecodeControlInput(a wire.AttrSet) (ControlInput, error) {
	var c ControlInput
	var ok bool
	if c.Steering, ok = a.Float64(CIAttrSteering); !ok {
		return c, missing(ClassControlInput, CIAttrSteering)
	}
	if c.Throttle, ok = a.Float64(CIAttrThrottle); !ok {
		return c, missing(ClassControlInput, CIAttrThrottle)
	}
	if c.Brake, ok = a.Float64(CIAttrBrake); !ok {
		return c, missing(ClassControlInput, CIAttrBrake)
	}
	if c.BoomJoyX, ok = a.Float64(CIAttrBoomJoyX); !ok {
		return c, missing(ClassControlInput, CIAttrBoomJoyX)
	}
	if c.BoomJoyY, ok = a.Float64(CIAttrBoomJoyY); !ok {
		return c, missing(ClassControlInput, CIAttrBoomJoyY)
	}
	if c.HoistJoyX, ok = a.Float64(CIAttrHoistJoyX); !ok {
		return c, missing(ClassControlInput, CIAttrHoistJoyX)
	}
	if c.HoistJoyY, ok = a.Float64(CIAttrHoistJoyY); !ok {
		return c, missing(ClassControlInput, CIAttrHoistJoyY)
	}
	if c.Ignition, ok = a.Bool(CIAttrIgnition); !ok {
		return c, missing(ClassControlInput, CIAttrIgnition)
	}
	if c.Gear, ok = a.Uint32(CIAttrGear); !ok {
		return c, missing(ClassControlInput, CIAttrGear)
	}
	if c.HookLatch, ok = a.Bool(CIAttrHookLatch); !ok {
		return c, missing(ClassControlInput, CIAttrHookLatch)
	}
	// CraneID was added with the multi-crane FOM revision; absent means
	// crane 0 so single-crane publishers keep decoding.
	if c.CraneID, ok = a.Int64(CIAttrCraneID); !ok {
		c.CraneID = 0
	}
	return c, nil
}

// Attribute handles of ClassCraneState.
const (
	CSAttrPosition  wire.AttrID = 1  // carrier position (m)
	CSAttrHeading   wire.AttrID = 2  // carrier yaw (rad)
	CSAttrPitch     wire.AttrID = 3  // carrier pitch from terrain (rad)
	CSAttrRoll      wire.AttrID = 4  // carrier roll from terrain (rad)
	CSAttrSpeed     wire.AttrID = 5  // carrier speed (m/s, signed)
	CSAttrBoomSwing wire.AttrID = 6  // boom slew angle rel. carrier (rad)
	CSAttrBoomLuff  wire.AttrID = 7  // boom elevation angle (rad)
	CSAttrBoomLen   wire.AttrID = 8  // boom extension length (m)
	CSAttrCableLen  wire.AttrID = 9  // plumb-cable paid-out length (m)
	CSAttrHookPos   wire.AttrID = 10 // hook world position (m)
	CSAttrHookVel   wire.AttrID = 11 // hook world velocity (m/s)
	CSAttrCargoMass wire.AttrID = 12 // suspended load (kg), 0 = none
	CSAttrCargoHeld wire.AttrID = 13 // cargo latched to hook
	CSAttrEngineRPM wire.AttrID = 14 // engine speed
	CSAttrEngineOn  wire.AttrID = 15 // engine running
	CSAttrStability wire.AttrID = 16 // tip-over margin [0,1], 1 = fully stable
	CSAttrCargoPos  wire.AttrID = 17 // cargo world position (m)
	CSAttrCargoID   wire.AttrID = 18 // held cargo's scenario index; -1 = none
	CSAttrCraneID   wire.AttrID = 19 // publishing carrier; absent = crane 0
)

// CraneState is the dynamics module's authoritative crane state (§3.6),
// broadcast to the displays, motion platform, instructor and scenario LPs.
type CraneState struct {
	Position  mathx.Vec3
	Heading   float64
	Pitch     float64
	Roll      float64
	Speed     float64
	BoomSwing float64
	BoomLuff  float64
	BoomLen   float64
	CableLen  float64
	HookPos   mathx.Vec3
	HookVel   mathx.Vec3
	CargoMass float64
	CargoHeld bool
	EngineRPM float64
	EngineOn  bool
	Stability float64
	CargoPos  mathx.Vec3
	// CargoID identifies the held cargo by its scenario cargo-set index;
	// -1 while nothing is held, and on telemetry from builds predating
	// the attribute (the scenario engine treats -1 as "unknown").
	CargoID int64
	// CraneID identifies the publishing carrier in a multi-crane
	// federation (index into scenario.Spec.Cranes). Absent on the wire
	// means crane 0 — the legacy single-crane rule.
	CraneID int64
}

// Encode packs the struct into an attribute set.
func (s CraneState) Encode() wire.AttrSet {
	a := wire.NewAttrSet(17)
	a.PutVec3(CSAttrPosition, s.Position.X, s.Position.Y, s.Position.Z)
	a.PutFloat64(CSAttrHeading, s.Heading)
	a.PutFloat64(CSAttrPitch, s.Pitch)
	a.PutFloat64(CSAttrRoll, s.Roll)
	a.PutFloat64(CSAttrSpeed, s.Speed)
	a.PutFloat64(CSAttrBoomSwing, s.BoomSwing)
	a.PutFloat64(CSAttrBoomLuff, s.BoomLuff)
	a.PutFloat64(CSAttrBoomLen, s.BoomLen)
	a.PutFloat64(CSAttrCableLen, s.CableLen)
	a.PutVec3(CSAttrHookPos, s.HookPos.X, s.HookPos.Y, s.HookPos.Z)
	a.PutVec3(CSAttrHookVel, s.HookVel.X, s.HookVel.Y, s.HookVel.Z)
	a.PutFloat64(CSAttrCargoMass, s.CargoMass)
	a.PutBool(CSAttrCargoHeld, s.CargoHeld)
	a.PutFloat64(CSAttrEngineRPM, s.EngineRPM)
	a.PutBool(CSAttrEngineOn, s.EngineOn)
	a.PutFloat64(CSAttrStability, s.Stability)
	a.PutVec3(CSAttrCargoPos, s.CargoPos.X, s.CargoPos.Y, s.CargoPos.Z)
	a.PutInt64(CSAttrCargoID, s.CargoID)
	a.PutInt64(CSAttrCraneID, s.CraneID)
	return a
}

// DecodeCraneState unpacks an attribute set produced by Encode.
func DecodeCraneState(a wire.AttrSet) (CraneState, error) {
	var s CraneState
	var ok bool
	if s.Position.X, s.Position.Y, s.Position.Z, ok = a.Vec3(CSAttrPosition); !ok {
		return s, missing(ClassCraneState, CSAttrPosition)
	}
	if s.Heading, ok = a.Float64(CSAttrHeading); !ok {
		return s, missing(ClassCraneState, CSAttrHeading)
	}
	if s.Pitch, ok = a.Float64(CSAttrPitch); !ok {
		return s, missing(ClassCraneState, CSAttrPitch)
	}
	if s.Roll, ok = a.Float64(CSAttrRoll); !ok {
		return s, missing(ClassCraneState, CSAttrRoll)
	}
	if s.Speed, ok = a.Float64(CSAttrSpeed); !ok {
		return s, missing(ClassCraneState, CSAttrSpeed)
	}
	if s.BoomSwing, ok = a.Float64(CSAttrBoomSwing); !ok {
		return s, missing(ClassCraneState, CSAttrBoomSwing)
	}
	if s.BoomLuff, ok = a.Float64(CSAttrBoomLuff); !ok {
		return s, missing(ClassCraneState, CSAttrBoomLuff)
	}
	if s.BoomLen, ok = a.Float64(CSAttrBoomLen); !ok {
		return s, missing(ClassCraneState, CSAttrBoomLen)
	}
	if s.CableLen, ok = a.Float64(CSAttrCableLen); !ok {
		return s, missing(ClassCraneState, CSAttrCableLen)
	}
	if s.HookPos.X, s.HookPos.Y, s.HookPos.Z, ok = a.Vec3(CSAttrHookPos); !ok {
		return s, missing(ClassCraneState, CSAttrHookPos)
	}
	if s.HookVel.X, s.HookVel.Y, s.HookVel.Z, ok = a.Vec3(CSAttrHookVel); !ok {
		return s, missing(ClassCraneState, CSAttrHookVel)
	}
	if s.CargoMass, ok = a.Float64(CSAttrCargoMass); !ok {
		return s, missing(ClassCraneState, CSAttrCargoMass)
	}
	if s.CargoHeld, ok = a.Bool(CSAttrCargoHeld); !ok {
		return s, missing(ClassCraneState, CSAttrCargoHeld)
	}
	if s.EngineRPM, ok = a.Float64(CSAttrEngineRPM); !ok {
		return s, missing(ClassCraneState, CSAttrEngineRPM)
	}
	if s.EngineOn, ok = a.Bool(CSAttrEngineOn); !ok {
		return s, missing(ClassCraneState, CSAttrEngineOn)
	}
	if s.Stability, ok = a.Float64(CSAttrStability); !ok {
		return s, missing(ClassCraneState, CSAttrStability)
	}
	if s.CargoPos.X, s.CargoPos.Y, s.CargoPos.Z, ok = a.Vec3(CSAttrCargoPos); !ok {
		return s, missing(ClassCraneState, CSAttrCargoPos)
	}
	// CargoID was added after the first FOM revision; absent means -1
	// (none/unknown) so recordings made by older builds still decode.
	if s.CargoID, ok = a.Int64(CSAttrCargoID); !ok {
		s.CargoID = -1
	}
	// CraneID was added with the multi-crane FOM revision; absent means
	// crane 0 (the legacy single-crane publisher).
	if s.CraneID, ok = a.Int64(CSAttrCraneID); !ok {
		s.CraneID = 0
	}
	return s, nil
}
