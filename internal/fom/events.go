package fom

import (
	"codsim/internal/mathx"
	"codsim/internal/wire"
)

// Attribute handles of ClassMotionCue.
const (
	MCAttrSpecificForce wire.AttrID = 1 // cab specific force (m/s²)
	MCAttrAngularRate   wire.AttrID = 2 // cab angular rates (rad/s): roll,pitch,yaw
	MCAttrVibration     wire.AttrID = 3 // engine vibration intensity [0,1]
	MCAttrFrame         wire.AttrID = 4 // visual frame index the cue belongs to
	MCAttrCraneID       wire.AttrID = 5 // cueing carrier; absent = crane 0
)

// MotionCue carries the cab's inertial cues from the dynamics module to the
// motion-platform controller (§3.4). The frame index lets the controller
// keep the platform interpolation synchronized with the visual display.
type MotionCue struct {
	SpecificForce mathx.Vec3 // felt acceleration incl. gravity tilt, m/s²
	AngularRate   mathx.Vec3 // X=roll rate, Y=pitch rate, Z=yaw rate, rad/s
	Vibration     float64    // engine vibration intensity [0,1]
	Frame         uint32
	// CraneID identifies the cueing carrier in a multi-crane federation;
	// absent on the wire means crane 0 (the legacy single-cab rule).
	CraneID int64
}

// Encode packs the struct into an attribute set.
func (m MotionCue) Encode() wire.AttrSet {
	a := wire.NewAttrSet(4)
	a.PutVec3(MCAttrSpecificForce, m.SpecificForce.X, m.SpecificForce.Y, m.SpecificForce.Z)
	a.PutVec3(MCAttrAngularRate, m.AngularRate.X, m.AngularRate.Y, m.AngularRate.Z)
	a.PutFloat64(MCAttrVibration, m.Vibration)
	a.PutUint32(MCAttrFrame, m.Frame)
	a.PutInt64(MCAttrCraneID, m.CraneID)
	return a
}

// DecodeMotionCue unpacks an attribute set produced by Encode.
func DecodeMotionCue(a wire.AttrSet) (MotionCue, error) {
	var m MotionCue
	var ok bool
	if m.SpecificForce.X, m.SpecificForce.Y, m.SpecificForce.Z, ok = a.Vec3(MCAttrSpecificForce); !ok {
		return m, missing(ClassMotionCue, MCAttrSpecificForce)
	}
	if m.AngularRate.X, m.AngularRate.Y, m.AngularRate.Z, ok = a.Vec3(MCAttrAngularRate); !ok {
		return m, missing(ClassMotionCue, MCAttrAngularRate)
	}
	if m.Vibration, ok = a.Float64(MCAttrVibration); !ok {
		return m, missing(ClassMotionCue, MCAttrVibration)
	}
	if m.Frame, ok = a.Uint32(MCAttrFrame); !ok {
		return m, missing(ClassMotionCue, MCAttrFrame)
	}
	// CraneID was added with the multi-crane FOM revision; absent means
	// crane 0.
	if m.CraneID, ok = a.Int64(MCAttrCraneID); !ok {
		m.CraneID = 0
	}
	return m, nil
}

// Sound identifies one audio asset of the audio module (§3.7).
type Sound uint32

// Sound identifiers. Values start at 1; 0 is invalid.
const (
	SoundEngineStart Sound = iota + 1
	SoundEngineLoop
	SoundEngineStop
	SoundCollision
	SoundAlarm
	SoundHoistMotor
	SoundBackground
)

// Attribute handles of ClassAudioEvent.
const (
	AEAttrSound    wire.AttrID = 1 // Sound identifier
	AEAttrGain     wire.AttrID = 2 // [0,1]
	AEAttrPosition wire.AttrID = 3 // world position for attenuation
	AEAttrLoop     wire.AttrID = 4 // start a loop (true) or one-shot
	AEAttrStop     wire.AttrID = 5 // stop the loop of this sound
)

// AudioEvent asks the audio module to start or stop a sound.
type AudioEvent struct {
	Sound    Sound
	Gain     float64
	Position mathx.Vec3
	Loop     bool
	Stop     bool
}

// Encode packs the struct into an attribute set.
func (e AudioEvent) Encode() wire.AttrSet {
	a := wire.NewAttrSet(5)
	a.PutUint32(AEAttrSound, uint32(e.Sound))
	a.PutFloat64(AEAttrGain, e.Gain)
	a.PutVec3(AEAttrPosition, e.Position.X, e.Position.Y, e.Position.Z)
	a.PutBool(AEAttrLoop, e.Loop)
	a.PutBool(AEAttrStop, e.Stop)
	return a
}

// DecodeAudioEvent unpacks an attribute set produced by Encode.
func DecodeAudioEvent(a wire.AttrSet) (AudioEvent, error) {
	var e AudioEvent
	var ok bool
	var s uint32
	if s, ok = a.Uint32(AEAttrSound); !ok {
		return e, missing(ClassAudioEvent, AEAttrSound)
	}
	e.Sound = Sound(s)
	if e.Gain, ok = a.Float64(AEAttrGain); !ok {
		return e, missing(ClassAudioEvent, AEAttrGain)
	}
	if e.Position.X, e.Position.Y, e.Position.Z, ok = a.Vec3(AEAttrPosition); !ok {
		return e, missing(ClassAudioEvent, AEAttrPosition)
	}
	if e.Loop, ok = a.Bool(AEAttrLoop); !ok {
		return e, missing(ClassAudioEvent, AEAttrLoop)
	}
	if e.Stop, ok = a.Bool(AEAttrStop); !ok {
		return e, missing(ClassAudioEvent, AEAttrStop)
	}
	return e, nil
}

// Phase enumerates the scenario state machine of §3.5: drive to the test
// ground, then the licensing trajectory of Fig. 9.
type Phase uint32

// Scenario phases. Values start at 1; 0 is invalid.
const (
	PhaseIdle     Phase = iota + 1 // engine off, waiting for start
	PhaseDriving                   // drive from start point to test ground
	PhaseLifting                   // lift the cargo from the white circle
	PhaseTraverse                  // carry the cargo along the bar course
	PhaseReturn                    // bring the cargo back to the circle
	PhaseComplete                  // exam passed
	PhaseFailed                    // exam failed
)

var phaseNames = map[Phase]string{
	PhaseIdle:     "idle",
	PhaseDriving:  "driving",
	PhaseLifting:  "lifting",
	PhaseTraverse: "traverse",
	PhaseReturn:   "return",
	PhaseComplete: "complete",
	PhaseFailed:   "failed",
}

// String returns the lowercase phase name.
func (p Phase) String() string {
	if s, ok := phaseNames[p]; ok {
		return s
	}
	return "unknown"
}

// Attribute handles of ClassScenarioState.
const (
	SSAttrPhase      wire.AttrID = 1
	SSAttrScore      wire.AttrID = 2 // current exam score
	SSAttrElapsed    wire.AttrID = 3 // seconds since scenario start
	SSAttrCollisions wire.AttrID = 4 // bar collisions so far
	SSAttrWaypoint   wire.AttrID = 5 // next waypoint index in the course
	SSAttrMessage    wire.AttrID = 6 // operator-facing status text
	SSAttrPhaseIndex wire.AttrID = 7 // index into the scenario's phase graph
	SSAttrCraneID    wire.AttrID = 8 // crane the state refers to; absent = 0
)

// ScenarioState is the scenario module's published training state (§3.5).
type ScenarioState struct {
	Phase      Phase
	Score      float64
	Elapsed    float64
	Collisions uint32
	Waypoint   uint32
	Message    string
	// PhaseIndex locates the active node of the scenario's phase graph
	// (scenario.Spec.Phases). Phase is the coarse classification of that
	// node; PhaseIndex disambiguates scenarios with several phases of the
	// same kind (two lifts, two traverses). Meaningless while Phase is
	// idle, complete or failed. PhaseIndexUnknown marks telemetry from
	// builds predating the attribute — consumers fall back to the coarse
	// Phase then.
	PhaseIndex uint32
	// CraneID names the crane whose cursor this state describes: in a
	// multi-crane scenario the engine publishes one ScenarioState per
	// declared crane, each carrying that crane's PhaseIndex, Waypoint and
	// Message (Score, Elapsed and Collisions are shared by the whole
	// scenario). Absent on the wire means crane 0 — the legacy
	// single-crane rule, so older publishers and recordings keep working.
	CraneID int64
}

// PhaseIndexUnknown is the PhaseIndex sentinel for telemetry that carries
// no phase-graph index (older publishers).
const PhaseIndexUnknown = ^uint32(0)

// Encode packs the struct into an attribute set.
func (s ScenarioState) Encode() wire.AttrSet {
	a := wire.NewAttrSet(7)
	a.PutUint32(SSAttrPhase, uint32(s.Phase))
	a.PutFloat64(SSAttrScore, s.Score)
	a.PutFloat64(SSAttrElapsed, s.Elapsed)
	a.PutUint32(SSAttrCollisions, s.Collisions)
	a.PutUint32(SSAttrWaypoint, s.Waypoint)
	a.PutString(SSAttrMessage, s.Message)
	a.PutUint32(SSAttrPhaseIndex, s.PhaseIndex)
	a.PutInt64(SSAttrCraneID, s.CraneID)
	return a
}

// DecodeScenarioState unpacks an attribute set produced by Encode.
func DecodeScenarioState(a wire.AttrSet) (ScenarioState, error) {
	var s ScenarioState
	var ok bool
	var p uint32
	if p, ok = a.Uint32(SSAttrPhase); !ok {
		return s, missing(ClassScenarioState, SSAttrPhase)
	}
	s.Phase = Phase(p)
	if s.Score, ok = a.Float64(SSAttrScore); !ok {
		return s, missing(ClassScenarioState, SSAttrScore)
	}
	if s.Elapsed, ok = a.Float64(SSAttrElapsed); !ok {
		return s, missing(ClassScenarioState, SSAttrElapsed)
	}
	if s.Collisions, ok = a.Uint32(SSAttrCollisions); !ok {
		return s, missing(ClassScenarioState, SSAttrCollisions)
	}
	if s.Waypoint, ok = a.Uint32(SSAttrWaypoint); !ok {
		return s, missing(ClassScenarioState, SSAttrWaypoint)
	}
	if s.Message, ok = a.String(SSAttrMessage); !ok {
		return s, missing(ClassScenarioState, SSAttrMessage)
	}
	// PhaseIndex was added after the first FOM revision; absent means
	// PhaseIndexUnknown so recordings and peers from older builds still
	// decode without masquerading as phase 0.
	if s.PhaseIndex, ok = a.Uint32(SSAttrPhaseIndex); !ok {
		s.PhaseIndex = PhaseIndexUnknown
	}
	// CraneID was added with the multi-crane FOM revision; absent means
	// crane 0 (single-crane scenarios publish exactly one state).
	if s.CraneID, ok = a.Int64(SSAttrCraneID); !ok {
		s.CraneID = 0
	}
	return s, nil
}

// InstructorOp enumerates instructor commands (§3.3): scenario control and
// the dashboard trouble-shooting fault injection.
type InstructorOp uint32

// Instructor operations. Values start at 1; 0 is invalid.
const (
	OpStartScenario InstructorOp = iota + 1
	OpResetScenario
	OpInjectFault // force an instrument to a value (click on the mirror)
	OpClearFault
)

// Attribute handles of ClassInstructorCmd.
const (
	ICAttrOp         wire.AttrID = 1
	ICAttrInstrument wire.AttrID = 2 // dashboard instrument name
	ICAttrValue      wire.AttrID = 3 // injected value
)

// InstructorCmd is one instructor action sent to the dashboard or scenario
// modules.
type InstructorCmd struct {
	Op         InstructorOp
	Instrument string
	Value      float64
}

// Encode packs the struct into an attribute set.
func (c InstructorCmd) Encode() wire.AttrSet {
	a := wire.NewAttrSet(3)
	a.PutUint32(ICAttrOp, uint32(c.Op))
	a.PutString(ICAttrInstrument, c.Instrument)
	a.PutFloat64(ICAttrValue, c.Value)
	return a
}

// DecodeInstructorCmd unpacks an attribute set produced by Encode.
func DecodeInstructorCmd(a wire.AttrSet) (InstructorCmd, error) {
	var c InstructorCmd
	var ok bool
	var op uint32
	if op, ok = a.Uint32(ICAttrOp); !ok {
		return c, missing(ClassInstructorCmd, ICAttrOp)
	}
	c.Op = InstructorOp(op)
	if c.Instrument, ok = a.String(ICAttrInstrument); !ok {
		return c, missing(ClassInstructorCmd, ICAttrInstrument)
	}
	if c.Value, ok = a.Float64(ICAttrValue); !ok {
		return c, missing(ClassInstructorCmd, ICAttrValue)
	}
	return c, nil
}

// Alarm is the bitmask shown on the status window (Fig. 5): each bit is one
// alarm lamp signalling a misconduct of the operator.
type Alarm uint32

// Alarm bits.
const (
	AlarmSwingZone Alarm = 1 << iota // derrick boom overshot the safety zone
	AlarmLuffLimit                   // boom raised/lowered past its limit
	AlarmOverload                    // load moment over the load chart
	AlarmTipover                     // stability margin critically low
	AlarmCollision                   // hook/cargo collision occurred
	AlarmOverspeed                   // carrier driven too fast
)

// Has reports whether all bits of q are set in a.
func (a Alarm) Has(q Alarm) bool { return a&q == q }

// Attribute handles of ClassStatusReport.
const (
	SRAttrSwingDeg wire.AttrID = 1 // boom swing angle (degrees)
	SRAttrLuffDeg  wire.AttrID = 2 // boom raise angle (degrees)
	SRAttrCableLen wire.AttrID = 3 // plumb-cable length (m)
	SRAttrBoomLen  wire.AttrID = 4 // boom elongation (m)
	SRAttrAlarms   wire.AttrID = 5 // Alarm bitmask
	SRAttrScore    wire.AttrID = 6 // live exam score
)

// StatusReport is the digest behind the instructor's status window (Fig. 5):
// the four sub-window dials, the alarm lamps, and the live score.
type StatusReport struct {
	SwingDeg float64
	LuffDeg  float64
	CableLen float64
	BoomLen  float64
	Alarms   Alarm
	Score    float64
}

// Encode packs the struct into an attribute set.
func (r StatusReport) Encode() wire.AttrSet {
	a := wire.NewAttrSet(6)
	a.PutFloat64(SRAttrSwingDeg, r.SwingDeg)
	a.PutFloat64(SRAttrLuffDeg, r.LuffDeg)
	a.PutFloat64(SRAttrCableLen, r.CableLen)
	a.PutFloat64(SRAttrBoomLen, r.BoomLen)
	a.PutUint32(SRAttrAlarms, uint32(r.Alarms))
	a.PutFloat64(SRAttrScore, r.Score)
	return a
}

// DecodeStatusReport unpacks an attribute set produced by Encode.
func DecodeStatusReport(a wire.AttrSet) (StatusReport, error) {
	var r StatusReport
	var ok bool
	if r.SwingDeg, ok = a.Float64(SRAttrSwingDeg); !ok {
		return r, missing(ClassStatusReport, SRAttrSwingDeg)
	}
	if r.LuffDeg, ok = a.Float64(SRAttrLuffDeg); !ok {
		return r, missing(ClassStatusReport, SRAttrLuffDeg)
	}
	if r.CableLen, ok = a.Float64(SRAttrCableLen); !ok {
		return r, missing(ClassStatusReport, SRAttrCableLen)
	}
	if r.BoomLen, ok = a.Float64(SRAttrBoomLen); !ok {
		return r, missing(ClassStatusReport, SRAttrBoomLen)
	}
	var al uint32
	if al, ok = a.Uint32(SRAttrAlarms); !ok {
		return r, missing(ClassStatusReport, SRAttrAlarms)
	}
	r.Alarms = Alarm(al)
	if r.Score, ok = a.Float64(SRAttrScore); !ok {
		return r, missing(ClassStatusReport, SRAttrScore)
	}
	return r, nil
}

// Attribute handles of ClassFrameReady and ClassFrameSwap.
const (
	FSAttrFrame  wire.AttrID = 1 // frame index
	FSAttrRender wire.AttrID = 2 // render time of the frame (seconds)
)

// FrameMark is the payload of the display synchronization barrier (§4):
// each display publishes FrameReady{n} when frame n has rendered; the sync
// server publishes FrameSwap{n} when all displays have reported.
type FrameMark struct {
	Frame      uint32
	RenderTime float64
}

// Encode packs the struct into an attribute set.
func (m FrameMark) Encode() wire.AttrSet {
	a := wire.NewAttrSet(2)
	a.PutUint32(FSAttrFrame, m.Frame)
	a.PutFloat64(FSAttrRender, m.RenderTime)
	return a
}

// DecodeFrameMark unpacks an attribute set produced by Encode.
func DecodeFrameMark(a wire.AttrSet) (FrameMark, error) {
	var m FrameMark
	var ok bool
	if m.Frame, ok = a.Uint32(FSAttrFrame); !ok {
		return m, missing(ClassFrameReady, FSAttrFrame)
	}
	if m.RenderTime, ok = a.Float64(FSAttrRender); !ok {
		return m, missing(ClassFrameReady, FSAttrRender)
	}
	return m, nil
}
