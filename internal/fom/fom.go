// Package fom defines the Federation Object Model of the mobile crane
// simulator: the object classes exchanged between the seven Logical
// Processes over the Communication Backbone, together with typed
// encode/decode helpers for their attribute sets.
//
// The paper adopts HLA's Publish/Subscribe Object Class services (§2.3);
// this package is the simulator's equivalent of the HLA FOM document: it
// fixes class names and attribute handles so independently developed LPs
// agree on the wire content.
//
// Classes and their producers/consumers (Fig. 3):
//
//	ControlInput   dashboard → dynamics, instructor
//	CraneState     dynamics  → visual displays, motion, instructor, scenario, audio
//	MotionCue      dynamics  → motion platform controller
//	AudioEvent     dynamics, scenario → audio
//	ScenarioState  scenario  → instructor, visual displays
//	InstructorCmd  instructor → dashboard, scenario
//	StatusReport   instructor-side digest (status window, Fig. 5)
//	FrameReady     display n → synchronization server (§4)
//	FrameSwap      synchronization server → displays (§4)
package fom

import (
	"errors"
	"fmt"

	"codsim/internal/wire"
)

// Object-class names.
const (
	ClassControlInput  = "ControlInput"
	ClassCraneState    = "CraneState"
	ClassMotionCue     = "MotionCue"
	ClassAudioEvent    = "AudioEvent"
	ClassScenarioState = "ScenarioState"
	ClassInstructorCmd = "InstructorCmd"
	ClassStatusReport  = "StatusReport"
	ClassFrameReady    = "FrameReady"
	ClassFrameSwap     = "FrameSwap"
)

// ErrMissingAttr reports an attribute set that lacks a required attribute
// or carries it with the wrong width.
var ErrMissingAttr = errors.New("fom: missing or malformed attribute")

func missing(class string, id wire.AttrID) error {
	return fmt.Errorf("%w: %s attr %d", ErrMissingAttr, class, id)
}
