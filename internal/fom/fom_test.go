package fom

import (
	"errors"
	"testing"

	"codsim/internal/mathx"
	"codsim/internal/wire"
)

func TestControlInputRoundTrip(t *testing.T) {
	in := ControlInput{
		Steering:  -0.5,
		Throttle:  0.8,
		Brake:     0.1,
		BoomJoyX:  0.25,
		BoomJoyY:  -0.75,
		HoistJoyX: 1,
		HoistJoyY: -1,
		Ignition:  true,
		Gear:      2,
		HookLatch: true,
	}
	got, err := DecodeControlInput(in.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != in {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, in)
	}
}

func TestCraneStateRoundTrip(t *testing.T) {
	in := CraneState{
		Position:  mathx.V3(10, 0.5, -20),
		Heading:   1.1,
		Pitch:     0.05,
		Roll:      -0.02,
		Speed:     3.6,
		BoomSwing: 0.7,
		BoomLuff:  0.9,
		BoomLen:   14.5,
		CableLen:  6.25,
		HookPos:   mathx.V3(12, 8, -21),
		HookVel:   mathx.V3(0.1, -0.2, 0.3),
		CargoMass: 1500,
		CargoHeld: true,
		EngineRPM: 1800,
		EngineOn:  true,
		Stability: 0.85,
		CargoPos:  mathx.V3(12, 6, -21),
	}
	got, err := DecodeCraneState(in.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != in {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, in)
	}
}

func TestMotionCueRoundTrip(t *testing.T) {
	in := MotionCue{
		SpecificForce: mathx.V3(0.2, -9.81, 1.0),
		AngularRate:   mathx.V3(0.01, 0.02, -0.03),
		Vibration:     0.35,
		Frame:         991,
	}
	got, err := DecodeMotionCue(in.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != in {
		t.Errorf("round trip mismatch: %+v vs %+v", got, in)
	}
}

func TestAudioEventRoundTrip(t *testing.T) {
	in := AudioEvent{
		Sound:    SoundCollision,
		Gain:     0.9,
		Position: mathx.V3(1, 2, 3),
		Loop:     false,
		Stop:     false,
	}
	got, err := DecodeAudioEvent(in.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != in {
		t.Errorf("round trip mismatch: %+v vs %+v", got, in)
	}
}

func TestScenarioStateRoundTrip(t *testing.T) {
	in := ScenarioState{
		Phase:      PhaseTraverse,
		Score:      87.5,
		Elapsed:    123.4,
		Collisions: 2,
		Waypoint:   5,
		Message:    "carry the cargo along the bars",
	}
	got, err := DecodeScenarioState(in.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != in {
		t.Errorf("round trip mismatch: %+v vs %+v", got, in)
	}
}

func TestInstructorCmdRoundTrip(t *testing.T) {
	in := InstructorCmd{Op: OpInjectFault, Instrument: "fuel-gauge", Value: 0}
	got, err := DecodeInstructorCmd(in.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != in {
		t.Errorf("round trip mismatch: %+v vs %+v", got, in)
	}
}

func TestStatusReportRoundTrip(t *testing.T) {
	in := StatusReport{
		SwingDeg: 45.5,
		LuffDeg:  60.1,
		CableLen: 7.3,
		BoomLen:  18.0,
		Alarms:   AlarmSwingZone | AlarmOverload,
		Score:    92,
	}
	got, err := DecodeStatusReport(in.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != in {
		t.Errorf("round trip mismatch: %+v vs %+v", got, in)
	}
}

func TestFrameMarkRoundTrip(t *testing.T) {
	in := FrameMark{Frame: 12345, RenderTime: 0.0625}
	got, err := DecodeFrameMark(in.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != in {
		t.Errorf("round trip mismatch: %+v vs %+v", got, in)
	}
}

func TestDecodeMissingAttr(t *testing.T) {
	// Removing any required attribute from a full set must produce
	// ErrMissingAttr. CargoID and CraneID were added after the first FOM
	// revision and decode leniently (absent → -1 and crane 0) so older
	// recordings still load.
	full := CraneState{}.Encode()
	for id := range full.All() {
		if id == CSAttrCargoID || id == CSAttrCraneID {
			continue
		}
		broken := full.Clone()
		broken.Delete(id)
		if _, err := DecodeCraneState(broken); !errors.Is(err, ErrMissingAttr) {
			t.Errorf("attr %d removed: err = %v, want ErrMissingAttr", id, err)
		}
	}
	noID := full.Clone()
	noID.Delete(CSAttrCargoID)
	if st, err := DecodeCraneState(noID); err != nil || st.CargoID != -1 {
		t.Errorf("CargoID absent: st.CargoID=%d err=%v, want -1,<nil>", st.CargoID, err)
	}
	noCrane := full.Clone()
	noCrane.Delete(CSAttrCraneID)
	if st, err := DecodeCraneState(noCrane); err != nil || st.CraneID != 0 {
		t.Errorf("CraneID absent: st.CraneID=%d err=%v, want 0,<nil>", st.CraneID, err)
	}
	if _, err := DecodeControlInput(wire.AttrSet{}); !errors.Is(err, ErrMissingAttr) {
		t.Errorf("empty set: %v", err)
	}
	if _, err := DecodeMotionCue(wire.AttrSet{}); !errors.Is(err, ErrMissingAttr) {
		t.Errorf("empty set: %v", err)
	}
	if _, err := DecodeAudioEvent(wire.AttrSet{}); !errors.Is(err, ErrMissingAttr) {
		t.Errorf("empty set: %v", err)
	}
	if _, err := DecodeScenarioState(wire.AttrSet{}); !errors.Is(err, ErrMissingAttr) {
		t.Errorf("empty set: %v", err)
	}
	if _, err := DecodeInstructorCmd(wire.AttrSet{}); !errors.Is(err, ErrMissingAttr) {
		t.Errorf("empty set: %v", err)
	}
	if _, err := DecodeStatusReport(wire.AttrSet{}); !errors.Is(err, ErrMissingAttr) {
		t.Errorf("empty set: %v", err)
	}
	if _, err := DecodeFrameMark(wire.AttrSet{}); !errors.Is(err, ErrMissingAttr) {
		t.Errorf("empty set: %v", err)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseDriving.String() != "driving" {
		t.Errorf("PhaseDriving = %q", PhaseDriving.String())
	}
	if Phase(99).String() != "unknown" {
		t.Errorf("unknown phase = %q", Phase(99).String())
	}
}

func TestAlarmHas(t *testing.T) {
	a := AlarmSwingZone | AlarmTipover
	if !a.Has(AlarmSwingZone) || !a.Has(AlarmTipover) {
		t.Error("Has missed set bits")
	}
	if a.Has(AlarmOverload) {
		t.Error("Has reported unset bit")
	}
	if !a.Has(AlarmSwingZone | AlarmTipover) {
		t.Error("Has failed on multi-bit query")
	}
	if a.Has(AlarmSwingZone | AlarmOverload) {
		t.Error("Has passed on partially-set multi-bit query")
	}
}

func TestEncodedSetsSurviveWire(t *testing.T) {
	// FOM attribute sets must survive a full wire round trip.
	state := CraneState{Position: mathx.V3(1, 2, 3), Stability: 1}
	f := wire.Frame{Kind: wire.KindUpdateAttrs, Class: ClassCraneState, Attrs: state.Encode()}
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCraneState(got.Attrs)
	if err != nil {
		t.Fatal(err)
	}
	if dec != state {
		t.Errorf("wire round trip mismatch: %+v vs %+v", dec, state)
	}
}
