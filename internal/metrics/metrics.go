// Package metrics provides the lightweight instrumentation used by the
// experiment harness: streaming summaries (Welford), quantile samples,
// counters, rate meters, frame-time trackers and fixed-width text tables.
// Everything is safe for concurrent use unless stated otherwise.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Summary accumulates a stream of float64 observations and reports count,
// mean, min, max and standard deviation without retaining the samples.
type Summary struct {
	mu    sync.Mutex
	n     int64
	mean  float64
	m2    float64
	min   float64
	max   float64
	total float64
}

// Observe adds one sample.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.total += v
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// Count returns the number of samples observed.
func (s *Summary) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mean
}

// Sum returns the total of all samples.
func (s *Summary) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.min
}

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// StdDev returns the sample standard deviation, or 0 with <2 samples.
func (s *Summary) StdDev() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// String formats the summary on one line.
func (s *Summary) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return "n=0"
	}
	sd := 0.0
	if s.n >= 2 {
		sd = math.Sqrt(s.m2 / float64(s.n-1))
	}
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g max=%.4g", s.n, s.mean, sd, s.min, s.max)
}

// Quantiles retains up to cap samples (all samples until the cap, then
// uniform reservoir replacement keyed by a deterministic LCG) and reports
// order statistics.
type Quantiles struct {
	mu      sync.Mutex
	samples []float64
	seen    int64
	capN    int
	rng     uint64
}

// NewQuantiles returns a quantile sampler retaining up to capN samples.
// capN <= 0 defaults to 4096.
func NewQuantiles(capN int) *Quantiles {
	if capN <= 0 {
		capN = 4096
	}
	return &Quantiles{capN: capN, rng: 0x9E3779B97F4A7C15}
}

// Observe adds one sample.
func (q *Quantiles) Observe(v float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seen++
	if len(q.samples) < q.capN {
		q.samples = append(q.samples, v)
		return
	}
	// Deterministic xorshift for reservoir replacement.
	q.rng ^= q.rng << 13
	q.rng ^= q.rng >> 7
	q.rng ^= q.rng << 17
	idx := q.rng % uint64(q.seen)
	if idx < uint64(q.capN) {
		q.samples[idx] = v
	}
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of the retained samples, or 0
// when empty.
func (q *Quantiles) Quantile(p float64) float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), q.samples...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := p * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Count returns the number of samples seen (not retained).
func (q *Quantiles) Count() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.seen
}

// Counter is a concurrency-safe monotone counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Gauge is a concurrency-safe instantaneous value: the last Set wins, Add
// adjusts it. Unlike Counter it may move in both directions — queue
// depths, in-flight jobs, thermometer-style samples. The zero value is
// ready to use; all operations are lock-free.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (negative d decreases it).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed cumulative buckets — the
// Prometheus histogram shape: Counts[i] tallies observations ≤ Bounds[i],
// with an implicit +Inf bucket catching the rest. Bounds are set once at
// construction; Observe is lock-free and allocation-free, so it can sit
// on delivery hot paths.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits-encoded running sum
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// nil or empty bounds default to DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// DefaultLatencyBuckets spans 1 ms to 60 s exponentially — wide enough
// for both in-process dispatch hops and whole-scenario run phases.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
}

// Observe adds one sample to its bucket.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Bounds returns the bucket upper bounds (excluding +Inf). The slice is
// shared; callers must not modify it.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Snapshot returns the cumulative bucket counts (one per bound, plus the
// +Inf tail entry), the total count and the sum of all observations. The
// counts are cumulative in the Prometheus sense: entry i includes every
// bucket below it.
func (h *Histogram) Snapshot() (cumulative []uint64, count uint64, sum float64) {
	cumulative = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return cumulative, h.count.Load(), math.Float64frombits(h.sum.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// FrameTracker measures frame intervals in simulated or wall time and
// reports achieved frames-per-second statistics. Not concurrency safe; one
// tracker belongs to one display loop.
type FrameTracker struct {
	intervals []float64 // seconds
	last      time.Time
	started   bool
}

// TickAt records a frame boundary at the given instant.
func (t *FrameTracker) TickAt(now time.Time) {
	if t.started {
		t.intervals = append(t.intervals, now.Sub(t.last).Seconds())
	}
	t.last = now
	t.started = true
}

// TickInterval records a frame that took dt of simulated time.
func (t *FrameTracker) TickInterval(dt time.Duration) {
	t.intervals = append(t.intervals, dt.Seconds())
	t.started = true
}

// Frames returns the number of completed frame intervals.
func (t *FrameTracker) Frames() int { return len(t.intervals) }

// FPS returns the mean achieved frame rate, or 0 before two ticks.
func (t *FrameTracker) FPS() float64 {
	if len(t.intervals) == 0 {
		return 0
	}
	var total float64
	for _, s := range t.intervals {
		total += s
	}
	if total <= 0 {
		return 0
	}
	return float64(len(t.intervals)) / total
}

// WorstFrame returns the longest frame interval observed.
func (t *FrameTracker) WorstFrame() time.Duration {
	var worst float64
	for _, s := range t.intervals {
		if s > worst {
			worst = s
		}
	}
	return time.Duration(worst * float64(time.Second))
}

// Jitter returns the standard deviation of the frame intervals.
func (t *FrameTracker) Jitter() time.Duration {
	n := len(t.intervals)
	if n < 2 {
		return 0
	}
	var mean float64
	for _, s := range t.intervals {
		mean += s
	}
	mean /= float64(n)
	var m2 float64
	for _, s := range t.intervals {
		d := s - mean
		m2 += d * d
	}
	return time.Duration(math.Sqrt(m2/float64(n-1)) * float64(time.Second))
}

// Table builds fixed-width text tables for the experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells format with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
