package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.String() != "n=0" {
		t.Error("zero-value Summary not empty")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d", s.Count())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %v", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v", got)
	}
	if got := s.Sum(); got != 40 {
		t.Errorf("Sum = %v", got)
	}
	// Sample stddev of that classic dataset is sqrt(32/7).
	if got, want := s.StdDev(), math.Sqrt(32.0/7.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if str := s.String(); !strings.Contains(str, "n=8") {
		t.Errorf("String = %q", str)
	}
}

func TestSummaryConcurrent(t *testing.T) {
	var s Summary
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Observe(1)
			}
		}()
	}
	wg.Wait()
	if s.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", s.Count())
	}
	if s.Mean() != 1 {
		t.Errorf("Mean = %v, want 1", s.Mean())
	}
}

func TestQuantiles(t *testing.T) {
	q := NewQuantiles(0) // default cap
	for i := 1; i <= 1000; i++ {
		q.Observe(float64(i))
	}
	if q.Count() != 1000 {
		t.Errorf("Count = %d", q.Count())
	}
	if got := q.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := q.Quantile(1); got != 1000 {
		t.Errorf("q1 = %v", got)
	}
	if got := q.Quantile(0.5); math.Abs(got-500.5) > 1 {
		t.Errorf("median = %v, want ~500.5", got)
	}
	if got := NewQuantiles(8).Quantile(0.5); got != 0 {
		t.Errorf("empty median = %v", got)
	}
}

func TestQuantilesReservoir(t *testing.T) {
	// More samples than capacity: retained values must still span the range.
	q := NewQuantiles(64)
	for i := 0; i < 100000; i++ {
		q.Observe(float64(i % 1000))
	}
	med := q.Quantile(0.5)
	if med < 200 || med > 800 {
		t.Errorf("reservoir median = %v, want mid-range", med)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 1005 {
		t.Errorf("Value = %d, want 1005", got)
	}
}

func TestFrameTrackerFPS(t *testing.T) {
	var ft FrameTracker
	if ft.FPS() != 0 {
		t.Error("FPS before ticks != 0")
	}
	base := time.Unix(0, 0)
	// 60 frames at exactly 62.5 ms → 16 fps (the paper's rate).
	for i := 0; i <= 60; i++ {
		ft.TickAt(base.Add(time.Duration(i) * 62500 * time.Microsecond))
	}
	if got := ft.FPS(); math.Abs(got-16) > 1e-9 {
		t.Errorf("FPS = %v, want 16", got)
	}
	if ft.Frames() != 60 {
		t.Errorf("Frames = %d", ft.Frames())
	}
	if got := ft.Jitter(); got != 0 {
		t.Errorf("Jitter = %v, want 0 for uniform frames", got)
	}
	if got := ft.WorstFrame(); got != 62500*time.Microsecond {
		t.Errorf("WorstFrame = %v", got)
	}
}

func TestFrameTrackerInterval(t *testing.T) {
	var ft FrameTracker
	ft.TickInterval(50 * time.Millisecond)
	ft.TickInterval(50 * time.Millisecond)
	ft.TickInterval(100 * time.Millisecond)
	if got := ft.FPS(); math.Abs(got-15) > 1e-9 { // 3 frames / 0.2 s
		t.Errorf("FPS = %v, want 15", got)
	}
	if got := ft.WorstFrame(); got != 100*time.Millisecond {
		t.Errorf("WorstFrame = %v", got)
	}
	if ft.Jitter() == 0 {
		t.Error("Jitter = 0 for non-uniform frames")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("polygons", "fps", "note")
	tb.AddRow(3235, 16.04, "paper")
	tb.AddRow(6470, 8.3, "double")
	out := tb.String()
	if !strings.Contains(out, "polygons") || !strings.Contains(out, "16.04") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	// Columns align: every line has the same prefix width for column 2.
	if !strings.HasPrefix(lines[1], "--------") {
		t.Errorf("rule line = %q", lines[1])
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(3.0)        // integral → no decimals
	tb.AddRow(123.456)    // >=100 → one decimal
	tb.AddRow(3.14159)    // >=1 → two decimals
	tb.AddRow(0.00123456) // <1 → four decimals
	out := tb.String()
	var trimmed []string
	for _, ln := range strings.Split(out, "\n") {
		trimmed = append(trimmed, strings.TrimRight(ln, " "))
	}
	body := strings.Join(trimmed, "\n")
	for _, want := range []string{"\n3\n", "123.5", "3.14", "0.0012"} {
		if !strings.Contains(body, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}
