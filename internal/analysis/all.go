package analysis

// All returns the full codvet analyzer suite, in report order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, PolicyDecl, Layering, CtxWait, ErrWrap, NoPool}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
