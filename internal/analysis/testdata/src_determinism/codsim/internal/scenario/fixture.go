// Seeded-violation fixture for the determinism analyzer. This package
// shadows the real codsim/internal/scenario (a declared-deterministic
// package) through the test overlay; every want comment below must be
// matched by a diagnostic, so gutting or deleting the determinism check
// fails the suite.
package scenario

import (
	"math/rand"
	"time"
)

// badClock observes wall time inside a deterministic package.
func badClock() time.Time {
	return time.Now() // want `time\.Now in deterministic package`
}

// badSleep stalls on the wall clock instead of advancing sim time.
func badSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in deterministic package`
}

// badTicker builds a wall-clock ticker.
func badTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time\.NewTicker in deterministic package`
}

// badGlobalRand draws from the process-global math/rand source.
func badGlobalRand() int {
	return rand.Intn(6) // want `global rand\.Intn in deterministic package`
}

// badShuffle also touches the global source.
func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle in deterministic package`
}

// goodSeeded is the sanctioned form: an explicitly seeded generator.
func goodSeeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// goodTypes proves pure type references stay unflagged: time.Duration
// parameters and *rand.Rand fields are the sanctioned plumbing.
type goodTypes struct {
	r *rand.Rand
	d time.Duration
}

func (g goodTypes) double() time.Duration { return g.d * 2 }
