// Allowlist fixture for the determinism analyzer: wallClock violates the
// invariant but the test injects an AllowEntry for it, so a correct run
// reports nothing — and a run without the entry must report exactly one
// finding (the suppression-path test checks both directions).
package mathx

import "time"

// wallClock is the allowlisted violation.
func wallClock() time.Time {
	return time.Now()
}
