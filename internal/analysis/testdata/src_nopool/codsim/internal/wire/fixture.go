// Exemption fixture for the nopool analyzer: this package shadows
// codsim/internal/wire, which owns the buffer-ownership boundary, so its
// sync.Pool use must produce no diagnostics (no want comments here — any
// finding fails the fixture run).
package wire

import "sync"

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getBuf and putBuf are the sanctioned pattern the real package uses.
func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}
