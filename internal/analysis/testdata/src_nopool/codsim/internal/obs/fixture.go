// Seeded-violation fixture for the nopool analyzer. This package shadows
// a real non-exempt package (codsim/internal/obs) through the test
// overlay; every want comment below must be matched by a diagnostic, so
// gutting or deleting the nopool check fails the suite.
package obs

import "sync"

// badVarPool mints a package-level pool outside the wire/cb boundary.
var badVarPool = sync.Pool{ // want `sync\.Pool in codsim/internal/obs`
	New: func() any { return new([]byte) },
}

// badLocalPool mints one inside a function body.
func badLocalPool() *sync.Pool { // want `sync\.Pool in codsim/internal/obs`
	p := &sync.Pool{} // want `sync\.Pool in codsim/internal/obs`
	return p
}

// badEmbedded carries a pool as a struct field.
type badEmbedded struct {
	scratch sync.Pool // want `sync\.Pool in codsim/internal/obs`
}

// goodMutex proves other sync members stay unflagged: the rule is about
// pools, not about the sync package.
type goodMutex struct {
	mu sync.Mutex
}

func (g *goodMutex) locked(f func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f()
	_ = badVarPool
	_ = badEmbedded{}
}
