// Seeded-violation fixture for the layering analyzer: a telemetry-plane
// shadow that reaches into the backbone internals instead of reading the
// exported Stats/Tables types through the cod SDK. The overlay places it
// at codsim/internal/obs, the exact-match scope of the boundary table.
package obs

import (
	_ "codsim/internal/cb" // want `codsim/internal/obs must not import codsim/internal/cb`

	_ "codsim/cod" // the sanctioned surface: never flagged
)
