// Allowlist fixture for the layering analyzer: the cb import below is a
// boundary violation, but the test injects an AllowEntry carrying the
// forbidden import path as its detail, so a correct run reports nothing.
package main

import (
	_ "codsim/internal/cb"
)

func main() {}
