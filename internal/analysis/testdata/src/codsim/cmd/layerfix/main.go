// Seeded-violation fixture for the layering analyzer: a command that
// reaches into the backbone internals instead of the public cod SDK.
// The overlay places it at codsim/cmd/layerfix, inside the cmd/ scope of
// the boundary table.
package main

import (
	_ "codsim/internal/cb"   // want `codsim/cmd/layerfix must not import codsim/internal/cb`
	_ "codsim/internal/wire" // want `codsim/cmd/layerfix must not import codsim/internal/wire`

	_ "codsim/cod" // the sanctioned surface: never flagged
)

func main() {}
