// Seeded-violation fixture for the layering analyzer's examples/ scope:
// examples demonstrate the public SDK surface only.
package main

import (
	_ "codsim/internal/transport" // want `codsim/examples/layerfix must not import codsim/internal/transport`
)

func main() {}
