// Seeded-violation fixture for the policydecl analyzer: subscription
// call sites on both the typed SDK and the backbone, with and without an
// explicit delivery policy.
package policyfix

import (
	"codsim/cod"
	"codsim/internal/cb"
)

type state struct{ X float64 }

// implicitDefault omits the policy entirely.
func implicitDefault(n *cod.Node) {
	cod.Subscribe[state](n, "visual", "CraneState") // want `cod\.Subscribe call site relies on the implicit default delivery policy`
}

// tunedButUndeclared passes options, none of which is a policy.
func tunedButUndeclared(n *cod.Node) {
	cod.Subscribe[state](n, "visual", "CraneState", cod.WithQueue(8)) // want `cod\.Subscribe call site passes options but none is a provable delivery policy`
}

// spreadOptions forwards a variadic option slice the analyzer cannot
// prove contains a policy.
func spreadOptions(n *cod.Node, opts []cod.SubOption) {
	cod.Subscribe[state](n, "visual", "CraneState", opts...) // want `cod\.Subscribe call site passes options but none is a provable delivery policy`
}

// explicitPolicies are the accepted forms: a direct constructor call
// among the options, in any position.
func explicitPolicies(n *cod.Node) {
	cod.Subscribe[state](n, "visual", "CraneState", cod.LatestValue())
	cod.Subscribe[state](n, "visual", "CraneState", cod.WithQueue(8), cod.DropOldest())
	cod.Subscribe[state](n, "visual", "CraneState", cod.Reliable(4), cod.WithQueue(64))
}

// backboneImplicit exercises the attribute-level entry point.
func backboneImplicit(b *cb.Backbone) {
	b.SubscribeObjectClass("visual", "CraneState") // want `cb\.SubscribeObjectClass call site relies on the implicit default delivery policy`
}

// backboneExplicit declares the legacy-surface policy.
func backboneExplicit(b *cb.Backbone) {
	b.SubscribeObjectClass("visual", "CraneState", cb.WithQueue(64), cb.WithDropOldest())
	b.SubscribeObjectClass("visual", "CraneState", cb.WithReliable(8))
}
