// Seeded-violation fixture for the errwrap analyzer: %v-wrapped error
// operands and ==/!= sentinel comparisons, next to the accepted forms.
package errwrapfix

import (
	"errors"
	"fmt"
)

// ErrGone is a package-level sentinel.
var ErrGone = errors.New("gone")

func badWrap(err error) error {
	return fmt.Errorf("load: %v", err) // want `fmt\.Errorf formats an error operand with %v`
}

func badWrapMixed(path string, err error) error {
	return fmt.Errorf("open %q: %v", path, err) // want `fmt\.Errorf formats an error operand with %v`
}

func goodWrap(err error) error {
	return fmt.Errorf("load: %w", err)
}

func goodValueVerb(n int) error {
	return fmt.Errorf("bad count: %v", n) // non-error operand: %v is fine
}

func badCompare(err error) bool {
	return err == ErrGone // want `sentinel error ErrGone compared with ==`
}

func badCompareNeq(err error) bool {
	return err != ErrGone // want `sentinel error ErrGone compared with !=`
}

func goodCompare(err error) bool {
	return errors.Is(err, ErrGone)
}

func goodNilCheck(err error) bool {
	return err == nil // the idiom, never flagged
}
