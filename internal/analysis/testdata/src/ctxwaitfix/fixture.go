// Seeded-violation fixture for the ctxwait analyzer: every duration-shim
// wait with a context-aware sibling, plus the accepted context forms.
package ctxwaitfix

import (
	"context"
	"time"

	"codsim/internal/cb"
	"codsim/internal/scenario"
	"codsim/internal/trace"
)

func shimNext(s *cb.Subscription) {
	s.Next(time.Second) // want `duration-shim Subscription\.Next: use NextContext`
}

func shimWaitMatched(s *cb.Subscription) bool {
	return s.WaitMatched(2 * time.Second) // want `duration-shim Subscription\.WaitMatched: use WaitMatchedContext`
}

func shimWaitChannels(p *cb.Publication) bool {
	return p.WaitChannels(1, time.Second) // want `duration-shim Publication\.WaitChannels: use WaitChannelsContext`
}

func shimTraceRun(spec scenario.Spec) error {
	_, err := trace.Run(spec, 10) // want `duration-shim trace\.Run: use RunContext`
	return err
}

// contextForms are the accepted replacements: never flagged.
func contextForms(ctx context.Context, s *cb.Subscription, p *cb.Publication, spec scenario.Spec) error {
	if err := s.WaitMatchedContext(ctx); err != nil {
		return err
	}
	if _, err := s.NextContext(ctx); err != nil {
		return err
	}
	if err := p.WaitChannelsContext(ctx, 1); err != nil {
		return err
	}
	_, err := trace.RunContext(ctx, spec, 10)
	return err
}
