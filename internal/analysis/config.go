package analysis

import "strings"

// AllowEntry suppresses one class of finding. Every entry is a written-
// down exception: the Reason is mandatory documentation, shown by
// `codvet -allowlist` and mirrored in AUDIT.md.
type AllowEntry struct {
	// Analyzer names the analyzer the entry applies to.
	Analyzer string
	// Pkg is the import path of the package the finding lands in.
	Pkg string
	// Detail narrows the entry: the forbidden import path for layering,
	// the enclosing function name for the other analyzers, or "*" for
	// any finding of the analyzer in the package.
	Detail string
	// Reason records why the exception is sound.
	Reason string
}

// DefaultAllowlist is the production allowlist codvet runs with. Keep it
// short: an entry is a debt note, not a dismissal.
var DefaultAllowlist = []AllowEntry{
	{
		Analyzer: "policydecl",
		Pkg:      "codsim/cmd/codnode",
		Detail:   "runSubscriber",
		Reason: "the delivery policy is chosen at runtime from the -policy flag " +
			"through an exhaustive switch over the three constructors; the " +
			"analyzer cannot prove a variable option is a policy",
	},
	{
		Analyzer: "ctxwait",
		Pkg:      "codsim/internal/displaysync",
		Detail:   "serve",
		Reason: "the swap-lock server polls FRAME READY at a fixed cadence " +
			"between stall-reaping passes; the duration shim is the documented " +
			"legacy form for this pre-SDK module and allocates no context per frame",
	},
	{
		Analyzer: "ctxwait",
		Pkg:      "codsim/internal/displaysync",
		Detail:   "WaitSwap",
		Reason: "WaitSwap's deadline loop re-arms the shim with the remaining " +
			"budget each FRAME SWAP; same documented legacy-module exception as serve",
	},
}

// DeterministicPackages are the packages whose outputs must be a pure
// function of their seeds: campaign keys, scenario generation, scoring
// and physics replay all break silently if wall-clock time or the global
// math/rand source leaks in. Seeded *rand.Rand values and the simulation
// clock are the only sanctioned sources here.
var DeterministicPackages = []string{
	"codsim/internal/scenario",
	"codsim/internal/scenario/gen",
	"codsim/internal/dynamics",
	"codsim/internal/trace",
	"codsim/internal/collision",
	"codsim/internal/mathx",
}

// PoolPackages are the only packages permitted to declare a sync.Pool.
// They own the buffer lifecycle of the zero-alloc wire path and define
// its release points (the copy-at-boundary contract: cb clones anything
// it retains past a handler, wire.PutAttrSet resets before recycling).
// Elsewhere a pool has no such contract, so the nopool analyzer flags it.
var PoolPackages = []string{
	"codsim/internal/wire",
	"codsim/internal/cb",
}

// BoundaryRule forbids a set of imports within a scope of packages.
type BoundaryRule struct {
	// Scope matches packages: a trailing "/" makes it a prefix rule,
	// otherwise the package path must match exactly.
	Scope string
	// Forbidden are import paths (exact or subtree) the scope must not
	// reach.
	Forbidden []string
	// Reason explains the boundary.
	Reason string
}

// Boundaries is the layering table: the SDK boundary PR 1 established,
// now machine-checked. cmd/ and examples/ are SDK consumers — reaching
// into the backbone internals bypasses the typed codec, the delivery-
// policy surface and the compatibility contract. internal/dist runs on
// headless workers and must not pull display-side rendering in.
var Boundaries = []BoundaryRule{
	{
		Scope:     "codsim/cmd/",
		Forbidden: []string{"codsim/internal/cb", "codsim/internal/wire", "codsim/internal/transport"},
		Reason:    "commands ride the public cod SDK, never the backbone internals",
	},
	{
		Scope:     "codsim/examples/",
		Forbidden: []string{"codsim/internal/cb", "codsim/internal/wire", "codsim/internal/transport"},
		Reason:    "examples demonstrate the public SDK surface only",
	},
	{
		Scope: "codsim/internal/dist",
		Forbidden: []string{
			"codsim/internal/render", "codsim/internal/displaysync",
			"codsim/internal/dashboard", "codsim/internal/audio",
			"codsim/internal/instructor",
		},
		Reason: "batch coordination is headless; display-side packages stay out",
	},
	{
		Scope:     "codsim/internal/obs",
		Forbidden: []string{"codsim/internal/cb", "codsim/internal/wire", "codsim/internal/transport"},
		Reason:    "the telemetry plane consumes exported Stats/Tables types via the cod SDK's narrow Backbone interface, never the backbone internals",
	},
}

// inScope reports whether pkg falls under a boundary rule's scope.
func (r BoundaryRule) inScope(pkg string) bool {
	if strings.HasSuffix(r.Scope, "/") {
		return strings.HasPrefix(pkg, r.Scope)
	}
	return pkg == r.Scope
}

// forbids reports whether the rule bans importing path (exactly or any
// package under it).
func (r BoundaryRule) forbids(path string) bool {
	for _, f := range r.Forbidden {
		if path == f || strings.HasPrefix(path, f+"/") {
			return true
		}
	}
	return false
}
