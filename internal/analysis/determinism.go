package analysis

import (
	"go/ast"
	"go/types"
	"slices"
)

// forbiddenTimeFuncs are the wall-clock entry points of package time. A
// deterministic package that needs "now" takes the simulation clock as a
// parameter; one that needs a delay advances sim time. (Pure types like
// time.Duration remain fine: only these members are flagged.)
var forbiddenTimeFuncs = []string{
	"Now", "Since", "Until", "Sleep", "After", "AfterFunc",
	"Tick", "NewTimer", "NewTicker",
}

// sanctionedRandFuncs are the math/rand (and v2) members that do NOT
// touch the global source: constructors for explicitly seeded
// generators. Everything else at package level draws from the shared
// process-global state and is forbidden.
var sanctionedRandFuncs = []string{
	"New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8",
}

// Determinism forbids wall-clock and global-math/rand use inside the
// declared-deterministic packages. The campaign key of a generated
// scenario sweep is a pure function of (seed, params); one stray
// time.Now() or rand.Intn() in scenario/gen silently breaks replay and
// the distributed==local verdict contract, so the sanctioned sources —
// seeded *rand.Rand values and the simulation clock threaded through
// APIs — are the only ones allowed.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now/time.Sleep/global math/rand in declared-deterministic packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !slices.Contains(DeterministicPackages, pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pass.pkgNameOf(sel)
			if pn == nil {
				return true
			}
			// Only function references are nondeterminism sources; type
			// references (*rand.Rand fields, time.Duration params) are
			// exactly the sanctioned seeded/sim-clock plumbing.
			if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			name := sel.Sel.Name
			switch pn.Imported().Path() {
			case "time":
				if slices.Contains(forbiddenTimeFuncs, name) && !pass.Allowed(pass.EnclosingFunc(sel.Pos())) {
					pass.Reportf(sel.Pos(),
						"time.%s in deterministic package %s: use the simulation clock (seeded replay must not observe wall time)",
						name, pass.Path)
				}
			case "math/rand", "math/rand/v2":
				if !slices.Contains(sanctionedRandFuncs, name) && !pass.Allowed(pass.EnclosingFunc(sel.Pos())) {
					pass.Reportf(sel.Pos(),
						"global rand.%s in deterministic package %s: draw from a seeded *rand.Rand instead",
						name, pass.Path)
				}
			}
			return true
		})
	}
	return nil
}
