// Package analysis is codvet's project-invariant analyzer suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// driver shape (Analyzer / Pass / Diagnostic) over the standard library's
// go/ast and go/types, plus the five analyzers that machine-check the
// conventions this repository used to enforce only in review:
//
//   - determinism: no wall clock or global math/rand inside the
//     declared-deterministic packages (scenario, scenario/gen, dynamics,
//     trace, collision, mathx) — campaign keys must stay a pure function
//     of the seed.
//   - policydecl: every subscription call site declares its delivery
//     policy explicitly (LatestValue / Reliable / DropOldest), so
//     saturation contracts never regress to implicit defaults.
//   - layering: the SDK boundary PR 1 established, as an import table —
//     cmd/ and examples/ ride the public cod SDK, never internal/cb,
//     internal/wire or internal/transport; internal/dist stays headless.
//   - ctxwait: no duration-shim waits where a context-aware variant
//     exists outside the documented legacy shims.
//   - errwrap: fmt.Errorf must wrap error operands with %w, and sentinel
//     errors are matched with errors.Is, never ==.
//
// The suite deliberately analyzes production files only (no _test.go):
// the invariants guard what ships, and tests legitimately measure wall
// time or poke at legacy shims.
//
// Findings are suppressed through an explicit allowlist (see Allow and
// DefaultAllowlist in config.go) keyed on analyzer, package and a
// per-analyzer detail string, so every exception is written down with a
// reason instead of silently tolerated. The consolidated AUDIT.md at the
// repository root records the findings of the initial tree-wide run and
// how each was resolved.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one invariant checker. Run inspects a single type-checked
// package via its Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allowlist entries.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the analyzer that raised it.
	Analyzer string
	// Message states the violated invariant and the fix.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one package through one analyzer.
type Pass struct {
	// Analyzer is the checker this pass runs.
	Analyzer *Analyzer
	// Fset resolves token positions for every file of the load.
	Fset *token.FileSet
	// Path is the package's import path (fixture packages under an
	// overlay keep their declared fixture path).
	Path string
	// Files are the package's parsed production files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's resolution maps for Files.
	Info *types.Info

	allow  []AllowEntry
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether the allowlist suppresses a finding of this
// analyzer, in this package, with the given detail string. The detail's
// meaning is per-analyzer: the forbidden import path for layering, the
// enclosing function name for the others. A "*" detail in an entry
// matches any detail.
func (p *Pass) Allowed(detail string) bool {
	for _, e := range p.allow {
		if e.Analyzer != p.Analyzer.Name || e.Pkg != p.Path {
			continue
		}
		if e.Detail == "*" || e.Detail == detail {
			return true
		}
	}
	return false
}

// EnclosingFunc returns the name of the function declaration containing
// pos ("pkgname.Func" method receivers elided), or "<package>" for
// file-scope positions. It is the detail key most analyzers feed the
// allowlist.
func (p *Pass) EnclosingFunc(pos token.Pos) string {
	for _, f := range p.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			return fd.Name.Name
		}
	}
	return "<package>"
}

// pkgNameOf resolves sel's qualifier to an imported package, or nil when
// sel.X is not a package name (a value selector, a field access, ...).
func (p *Pass) pkgNameOf(sel *ast.SelectorExpr) *types.PkgName {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := p.Info.Uses[id].(*types.PkgName)
	return pn
}

// funcOf resolves a call expression's callee to the *types.Func it
// invokes, unwrapping generic instantiations (Subscribe[T]) and
// parenthesized forms. It returns nil for calls through function values
// and for type conversions.
func (p *Pass) funcOf(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(f.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(f.X)
	}
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[f.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := p.Info.Uses[f].(*types.Func)
		return fn
	}
	return nil
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t's static type satisfies the error
// interface.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}
