package analysis_test

import (
	"testing"

	"codsim/internal/analysis"
)

// TestModuleClean is the in-test mirror of `go run ./cmd/codvet ./...`:
// the full analyzer suite over every production package of the module,
// under the production allowlist, must report nothing. A regression that
// sneaks a wall clock into scenario/gen or an implicit-default Subscribe
// into a command fails `go test ./...` even where codvet is not wired in.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	moduleDir, modulePath, err := analysis.FindModule(analysis.Testdata())
	if err != nil {
		t.Fatal(err)
	}
	paths, err := analysis.ModulePackages(moduleDir, modulePath)
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(analysis.Config{ModulePath: modulePath, ModuleDir: moduleDir})
	var pkgs []*analysis.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run(pkgs, analysis.All(), loader.Fset(), analysis.DefaultAllowlist)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
