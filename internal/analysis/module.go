package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (moduleDir, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		modFile := filepath.Join(abs, "go.mod")
		if data, err := os.ReadFile(modFile); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s: no module line", modFile)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}
