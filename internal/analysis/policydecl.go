package analysis

import (
	"go/ast"
	"slices"
)

// policyConstructors are the delivery-policy options of the cod SDK and
// the backbone. A subscription call site must name one of these among
// its options; mailbox-depth tuning (WithQueue) alone does not count —
// the question "what happens at saturation" must be answered in source.
var policyConstructors = map[string][]string{
	"codsim/cod":         {"LatestValue", "Reliable", "DropOldest", "WithConflation"},
	"codsim/internal/cb": {"WithLatestValue", "WithReliable", "WithDropOldest", "WithConflation"},
}

// subscribeEntryPoints are the functions whose call sites must declare a
// policy: the typed SDK Subscribe and the backbone's attribute-level
// SubscribeObjectClass (the method the pre-SDK internal modules use).
// The publish side carries no policy parameter in this design — the
// saturation contract is declared where the mailbox lives, on the
// subscriber — so Subscribe call sites are the whole surface.
var subscribeEntryPoints = map[string][]string{
	"codsim/cod":         {"Subscribe"},
	"codsim/internal/cb": {"SubscribeObjectClass"},
}

// PolicyDecl requires every subscription call site to pass an explicit
// delivery-policy option, so the saturation contract of each channel
// class is visible at the point of subscription and never regresses to
// an implicit default (PR 5's per-channel policies stay load-bearing).
// Packages codsim/cod and codsim/internal/cb are exempt: they implement
// the default and the legacy contract.
var PolicyDecl = &Analyzer{
	Name: "policydecl",
	Doc:  "every cod.Subscribe / SubscribeObjectClass call site must pass an explicit delivery-policy option",
	Run:  runPolicyDecl,
}

func runPolicyDecl(pass *Pass) error {
	if _, defining := subscribeEntryPoints[pass.Path]; defining {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.funcOf(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			entries, ok := subscribeEntryPoints[fn.Pkg().Path()]
			if !ok || !slices.Contains(entries, fn.Name()) {
				return true
			}
			// The three leading arguments are fixed (node/lp/class for
			// cod.Subscribe, lp/class for the backbone method); every
			// trailing argument is an option.
			sig := fn.Signature()
			fixed := sig.Params().Len() - 1 // all but the variadic options slot
			if len(call.Args) > fixed {
				for _, arg := range call.Args[fixed:] {
					if pass.isPolicyOption(arg) {
						return true
					}
				}
			}
			if pass.Allowed(pass.EnclosingFunc(call.Pos())) {
				return true
			}
			if len(call.Args) > fixed || call.Ellipsis.IsValid() {
				pass.Reportf(call.Pos(),
					"%s.%s call site passes options but none is a provable delivery policy: pass cod.LatestValue()/cod.Reliable(n)/cod.DropOldest() directly, or allowlist the enclosing function with a reason",
					fn.Pkg().Name(), fn.Name())
			} else {
				pass.Reportf(call.Pos(),
					"%s.%s call site relies on the implicit default delivery policy: declare cod.LatestValue()/cod.Reliable(n)/cod.DropOldest() explicitly",
					fn.Pkg().Name(), fn.Name())
			}
			return true
		})
	}
	return nil
}

// isPolicyOption reports whether arg is a direct call to one of the
// delivery-policy constructors.
func (p *Pass) isPolicyOption(arg ast.Expr) bool {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := p.funcOf(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	names, ok := policyConstructors[fn.Pkg().Path()]
	return ok && slices.Contains(names, fn.Name())
}
