package analysis

import (
	"go/ast"
	"go/types"
)

// shimMethod identifies one duration-shim method and its context-aware
// replacement.
type shimMethod struct {
	pkg, recv, name, ctxVariant string
}

// waitShims are the legacy duration-parameter wait forms retrofitted
// with context variants in PR 1/PR 3. New code takes a context: a
// duration shim cannot be canceled early, composes poorly with
// deadlines, and hides the caller's lifetime. The defining package of
// each shim is exempt — the shims are documented legacy surface and
// delegate to the context forms internally.
var waitShims = []shimMethod{
	{"codsim/internal/cb", "Subscription", "Next", "NextContext"},
	{"codsim/internal/cb", "Subscription", "WaitMatched", "WaitMatchedContext"},
	{"codsim/internal/cb", "Publication", "WaitChannels", "WaitChannelsContext"},
	{"codsim/internal/sim", "Cluster", "WaitExam", "WaitExamContext"},
}

// waitShimFuncs are package-level legacy functions with context
// siblings.
var waitShimFuncs = []shimMethod{
	{"codsim/internal/trace", "", "Run", "RunContext"},
}

// CtxWait flags duration-shim waits and legacy blocking entry points
// where a context-aware variant exists, outside the shims' own defining
// packages and the allowlisted legacy consumers (displaysync's
// fixed-cadence swap-lock loop keeps the shim deliberately).
var CtxWait = &Analyzer{
	Name: "ctxwait",
	Doc:  "use NextContext/WaitMatchedContext/WaitChannelsContext/WaitExamContext/RunContext instead of the duration-shim legacy forms",
	Run:  runCtxWait,
}

func runCtxWait(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.funcOf(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == pass.Path {
				return true
			}
			var hit *shimMethod
			if recv := recvTypeName(fn); recv != "" {
				for i, s := range waitShims {
					if s.pkg == fn.Pkg().Path() && s.recv == recv && s.name == fn.Name() {
						hit = &waitShims[i]
						break
					}
				}
			} else {
				for i, s := range waitShimFuncs {
					if s.pkg == fn.Pkg().Path() && s.name == fn.Name() {
						hit = &waitShimFuncs[i]
						break
					}
				}
			}
			if hit == nil || pass.Allowed(pass.EnclosingFunc(call.Pos())) {
				return true
			}
			pass.Reportf(call.Pos(),
				"duration-shim %s.%s: use %s (context-aware waits compose with cancellation and deadlines)",
				recvOrPkg(fn), fn.Name(), hit.ctxVariant)
			return true
		})
	}
	return nil
}

// recvTypeName returns the bare name of fn's receiver named type, or ""
// for package-level functions.
func recvTypeName(fn *types.Func) string {
	recv := fn.Signature().Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func recvOrPkg(fn *types.Func) string {
	if r := recvTypeName(fn); r != "" {
		return r
	}
	return fn.Pkg().Name()
}
