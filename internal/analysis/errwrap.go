package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// ErrWrap enforces the error-chain contract: fmt.Errorf wraps error
// operands with %w (so errors.Is/As see through the wrap), and sentinel
// errors are matched with errors.Is rather than == (which breaks the
// moment anyone wraps). The two halves are one invariant — the chain is
// only useful if both the producer wraps and the consumer unwraps.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf must use %w (not %v) for error operands; sentinel errors are compared with errors.Is, not ==",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pass.checkErrorfWrap(n)
			case *ast.BinaryExpr:
				pass.checkSentinelCompare(n)
			}
			return true
		})
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf calls that format an error operand
// with %v instead of %w.
func (p *Pass) checkErrorfWrap(call *ast.CallExpr) {
	fn := p.funcOf(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	operands := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(operands) || verb != 'v' {
			continue
		}
		tv, ok := p.Info.Types[operands[i]]
		if !ok || tv.IsNil() || !implementsError(tv.Type) {
			continue
		}
		if p.Allowed(p.EnclosingFunc(call.Pos())) {
			continue
		}
		p.Reportf(operands[i].Pos(),
			"fmt.Errorf formats an error operand with %%v: use %%w so errors.Is/As can unwrap the chain")
	}
}

// formatVerbs extracts the verb letter for each consumed operand of a
// printf format string, in operand order. Explicit argument indexes
// (%[1]v) and *-widths are beyond what this project's formats use; a
// format containing them yields no verbs (fail open, no false report).
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Scan flags, width and precision.
		for i < len(format) {
			c := format[i]
			if c == '%' { // literal %%
				break
			}
			if c == '[' || c == '*' {
				return nil // indexed or starred format: out of scope
			}
			if (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '#' || c == ' ' || c == '.' {
				i++
				continue
			}
			verbs = append(verbs, rune(c))
			break
		}
	}
	return verbs
}

// checkSentinelCompare flags ==/!= against package-level error
// variables.
func (p *Pass) checkSentinelCompare(be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if p.isNil(be.X) || p.isNil(be.Y) {
		return // err == nil / err != nil is the idiom, not a sentinel match
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		v := p.packageLevelVar(side)
		if v == nil || !implementsError(v.Type()) {
			continue
		}
		if p.Allowed(p.EnclosingFunc(be.Pos())) {
			return
		}
		p.Reportf(be.Pos(),
			"sentinel error %s compared with %s: use errors.Is so wrapped chains still match", v.Name(), be.Op)
		return
	}
}

// isNil reports whether e is the predeclared nil.
func (p *Pass) isNil(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.IsNil()
}

// packageLevelVar resolves e to a package-scope *types.Var (through an
// ident or a pkg.Name selector), or nil.
func (p *Pass) packageLevelVar(e ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[e]
	case *ast.SelectorExpr:
		if p.pkgNameOf(e) == nil {
			return nil
		}
		obj = p.Info.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}
