package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
)

// This file is the fixture harness — a compact analysistest: fixture
// packages live under testdata/src/<importpath>/ and annotate the lines
// an analyzer must flag with
//
//	// want "regexp"
//
// comments (several quoted patterns on one comment expect several
// diagnostics on that line). RunFixture loads the fixture with the
// module as fallback — so fixtures import the real codsim/cod — runs
// one analyzer, and reports every mismatch in both directions: a
// diagnostic nothing expected, or an expectation nothing matched. The
// seeded-violation fixtures therefore fail the suite if their analyzer
// is deleted or gutted: the want comments go unmatched.

// TB is the subset of *testing.T the harness needs (kept as an
// interface so this file stays out of the test build's way).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Testdata returns the absolute path of the calling package's
// testdata/src fixture root.
func Testdata() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysis: cannot locate testdata")
	}
	return filepath.Join(filepath.Dir(file), "testdata", "src")
}

// RunFixture loads each fixture import path from overlayDir (falling
// back to the real module for dependencies), runs one analyzer with the
// given allowlist, and matches diagnostics against the fixtures' want
// comments.
func RunFixture(t TB, overlayDir string, a *Analyzer, allow []AllowEntry, fixturePaths ...string) {
	t.Helper()
	moduleDir, modulePath, err := FindModule(overlayDir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader := NewLoader(Config{ModulePath: modulePath, ModuleDir: moduleDir, OverlayDir: overlayDir})
	var pkgs []*Package
	for _, path := range fixturePaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("analysistest: load %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := Run(pkgs, []*Analyzer{a}, loader.Fset(), allow)
	if err != nil {
		t.Fatalf("analysistest: run %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	type expectation struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[key][]*expectation{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					patterns := parseWant(c.Text)
					if len(patterns) == 0 {
						continue
					}
					pos := loader.Fset().Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, pat := range patterns {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("analysistest: %s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants[k] = append(wants[k], &expectation{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		found := false
		for _, exp := range wants[k] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for k, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none — is the %s check disabled?",
					k.file, k.line, exp.re, a.Name)
			}
		}
	}
}

// parseWant extracts the quoted patterns of a `// want "p1" "p2"`
// comment, or nil when the comment is not a want annotation.
func parseWant(comment string) []string {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil
	}
	var patterns []string
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return patterns
		}
		if rest[0] == '`' {
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return patterns
			}
			patterns = append(patterns, rest[1:1+end])
			rest = rest[end+2:]
			continue
		}
		if rest[0] != '"' {
			return patterns
		}
		pat, tail, err := unquotePrefix(rest)
		if err != nil {
			return patterns
		}
		patterns = append(patterns, pat)
		rest = tail
	}
}

// unquotePrefix unquotes the leading double-quoted Go string of s and
// returns the remainder.
func unquotePrefix(s string) (string, string, error) {
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			var out string
			if _, err := fmt.Sscanf(s[:i+1], "%q", &out); err != nil {
				return "", "", err
			}
			return out, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated pattern %q", s)
}
