package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of a Load.
type Package struct {
	// Path is the import path the package was loaded as.
	Path string
	// Dir is the directory its files came from.
	Dir string
	// Files are the parsed production (non-test) files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the type-checker's resolution maps for Files.
	Info *types.Info
}

// Config configures a Loader.
type Config struct {
	// ModulePath is the module's import path ("codsim").
	ModulePath string
	// ModuleDir is the module root on disk.
	ModuleDir string
	// OverlayDir, when set, is a GOPATH-src-style root consulted before
	// the module for every import path — the analysistest fixture
	// mechanism: testdata/src/codsim/internal/scenario shadows the real
	// package, and fixture-local paths like "flagged" resolve under it.
	OverlayDir string
}

// Loader parses and type-checks packages on demand, memoizing results.
// Standard-library imports are satisfied by the go/importer source
// importer (offline, from GOROOT/src); module and overlay imports are
// loaded recursively from source. Only production files are loaded: the
// invariants codvet checks guard what ships, not the test harnesses.
type Loader struct {
	cfg      Config
	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*Package
	checking map[string]bool
}

// NewLoader returns a Loader over cfg.
func NewLoader(cfg Config) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		cfg:      cfg,
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*Package{},
		checking: map[string]bool{},
	}
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor maps an import path to the directory it loads from, or "" when
// the path is outside the overlay and the module (a standard-library
// import, resolved by the source importer instead).
func (l *Loader) dirFor(path string) string {
	if l.cfg.OverlayDir != "" {
		dir := filepath.Join(l.cfg.OverlayDir, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
	}
	if path == l.cfg.ModulePath {
		return l.cfg.ModuleDir
	}
	if rest, ok := strings.CutPrefix(path, l.cfg.ModulePath+"/"); ok {
		dir := filepath.Join(l.cfg.ModuleDir, filepath.FromSlash(rest))
		if hasGoFiles(dir) {
			return dir
		}
	}
	return ""
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks the package at the given import path,
// resolving its module/overlay dependencies recursively.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: package %q not found in module or overlay", path)
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: %s: no buildable Go files", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(l.resolve),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// resolve satisfies one import during type checking: module and overlay
// paths recurse through Load, everything else goes to the standard
// library source importer.
func (l *Loader) resolve(path string) (*types.Package, error) {
	if l.dirFor(path) != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// parseDir parses the production files of one directory.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if excludedByBuildTag(src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// excludedByBuildTag reports whether src carries a //go:build line that
// rules the file out of an ordinary build on this platform. The module
// is pure portable Go, so only the "ignore"-style guard tags matter; a
// constraint mentioning an unsatisfied plain tag excludes the file.
func excludedByBuildTag(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if expr, err := constraint.Parse(line); err == nil {
				return !expr.Eval(func(tag string) bool {
					// The portable build satisfies the go1.x tags and
					// nothing exotic.
					return strings.HasPrefix(tag, "go1.")
				})
			}
			continue
		}
		break // package clause reached: no constraint
	}
	return false
}

// ModulePackages enumerates every production package directory of the
// module (skipping testdata, hidden directories and .git) and returns
// their import paths, sorted.
func ModulePackages(moduleDir, modulePath string) ([]string, error) {
	var paths []string
	err := filepath.Walk(moduleDir, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			base := info.Name()
			if base != "." && (strings.HasPrefix(base, ".") || base == "testdata") && p != moduleDir {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				rel, err := filepath.Rel(moduleDir, p)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, modulePath)
				} else {
					paths = append(paths, modulePath+"/"+filepath.ToSlash(rel))
				}
			}
		}
		return nil
	})
	sort.Strings(paths)
	return paths, err
}

// Run executes every analyzer over every package and returns the
// surviving findings in file/line order. allow is the active allowlist
// (DefaultAllowlist for production runs; tests may inject entries to
// exercise the suppression path).
func Run(pkgs []*Package, analyzers []*Analyzer, fset *token.FileSet, allow []AllowEntry) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				allow:    allow,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
