package analysis_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"codsim/internal/analysis"
)

// The fixtures live under two overlay roots. testdata/src is the shared
// root: fixture-local packages (policyfix, ctxwaitfix, errwrapfix) and
// boundary-scoped shadows (codsim/cmd/layerfix). The determinism
// fixtures shadow real declared-deterministic packages
// (codsim/internal/scenario, codsim/internal/mathx) and therefore get
// their own root, testdata/src_determinism — the ctxwait fixture imports
// codsim/internal/trace, which must keep seeing the real scenario
// package, not the shadow.

func determinismRoot() string {
	return filepath.Join(analysis.Testdata(), "..", "src_determinism")
}

// recordTB captures harness errors so a test can assert that a fixture
// run without an allowlist entry does produce the finding the entry
// suppresses.
type recordTB struct {
	t      *testing.T
	errors []string
}

func (r *recordTB) Helper() {}
func (r *recordTB) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}
func (r *recordTB) Fatalf(format string, args ...any) { r.t.Fatalf(format, args...) }

func TestDeterminismFixture(t *testing.T) {
	analysis.RunFixture(t, determinismRoot(), analysis.Determinism, nil,
		"codsim/internal/scenario")
}

func TestDeterminismAllowlist(t *testing.T) {
	allow := []analysis.AllowEntry{{
		Analyzer: "determinism",
		Pkg:      "codsim/internal/mathx",
		Detail:   "wallClock",
		Reason:   "test-injected exception",
	}}
	analysis.RunFixture(t, determinismRoot(), analysis.Determinism, allow,
		"codsim/internal/mathx")

	// Without the entry the same fixture must yield exactly the finding
	// the allowlist suppressed — proving the entry, not a gutted check,
	// kept the run above clean.
	rec := &recordTB{t: t}
	analysis.RunFixture(rec, determinismRoot(), analysis.Determinism, nil,
		"codsim/internal/mathx")
	if len(rec.errors) != 1 || !strings.Contains(rec.errors[0], "time.Now") {
		t.Fatalf("expected exactly one time.Now diagnostic without the allow entry, got %q", rec.errors)
	}
}

func TestPolicyDeclFixture(t *testing.T) {
	analysis.RunFixture(t, analysis.Testdata(), analysis.PolicyDecl, nil, "policyfix")
}

func TestLayeringFixture(t *testing.T) {
	analysis.RunFixture(t, analysis.Testdata(), analysis.Layering, nil,
		"codsim/cmd/layerfix", "codsim/examples/layerfix", "codsim/internal/obs")
}

func TestLayeringAllowlist(t *testing.T) {
	allow := []analysis.AllowEntry{{
		Analyzer: "layering",
		Pkg:      "codsim/cmd/layerallow",
		Detail:   "codsim/internal/cb",
		Reason:   "test-injected exception",
	}}
	analysis.RunFixture(t, analysis.Testdata(), analysis.Layering, allow,
		"codsim/cmd/layerallow")

	rec := &recordTB{t: t}
	analysis.RunFixture(rec, analysis.Testdata(), analysis.Layering, nil,
		"codsim/cmd/layerallow")
	if len(rec.errors) != 1 || !strings.Contains(rec.errors[0], "codsim/internal/cb") {
		t.Fatalf("expected exactly one boundary diagnostic without the allow entry, got %q", rec.errors)
	}
}

func TestCtxWaitFixture(t *testing.T) {
	analysis.RunFixture(t, analysis.Testdata(), analysis.CtxWait, nil, "ctxwaitfix")
}

func TestErrWrapFixture(t *testing.T) {
	analysis.RunFixture(t, analysis.Testdata(), analysis.ErrWrap, nil, "errwrapfix")
}

// The nopool fixtures shadow real packages (a non-exempt one and an
// exempt one) and therefore live in their own root, like determinism's.
func nopoolRoot() string {
	return filepath.Join(analysis.Testdata(), "..", "src_nopool")
}

func TestNoPoolFixture(t *testing.T) {
	analysis.RunFixture(t, nopoolRoot(), analysis.NoPool, nil,
		"codsim/internal/obs")
}

// TestNoPoolExemptPackages proves the boundary packages stay unflagged:
// the wire shadow declares a pool with no want comments, so any
// diagnostic fails the run.
func TestNoPoolExemptPackages(t *testing.T) {
	analysis.RunFixture(t, nopoolRoot(), analysis.NoPool, nil,
		"codsim/internal/wire")
}
