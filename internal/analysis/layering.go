package analysis

import "strconv"

// Layering enforces the import-boundary table (Boundaries): cmd/ and
// examples/ stay on the public cod SDK instead of the backbone
// internals, and internal/dist stays headless. Exceptions go through
// the allowlist with the forbidden import path as the detail, so every
// boundary crossing is a documented decision.
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "import-boundary table: cmd/ and examples/ must not import internal/cb, internal/wire or internal/transport; internal/dist must not import display-side packages",
	Run:  runLayering,
}

func runLayering(pass *Pass) error {
	var rules []BoundaryRule
	for _, r := range Boundaries {
		if r.inScope(pass.Path) {
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, r := range rules {
				if r.forbids(path) && !pass.Allowed(path) {
					pass.Reportf(imp.Pos(),
						"%s must not import %s (%s)", pass.Path, path, r.Reason)
				}
			}
		}
	}
	return nil
}
