package analysis

import (
	"go/ast"
	"slices"
)

// NoPool confines sync.Pool to the wire/cb boundary. Pooled buffers are
// only sound under the copy-at-boundary ownership contract those two
// packages define (a frame's attrs are valid until the handler returns;
// anything retained is cloned first). A pool elsewhere has no such
// release point: a reference that outlives the put turns into silent
// cross-request corruption that only shows under load. Packages that
// need reusable scratch take it from wire.GetAttrSet/PutAttrSet — inside
// the audited boundary — or keep allocations local.
var NoPool = &Analyzer{
	Name: "nopool",
	Doc:  "confine sync.Pool to internal/wire and internal/cb, the audited buffer-ownership boundary",
	Run:  runNoPool,
}

func runNoPool(pass *Pass) error {
	if slices.Contains(PoolPackages, pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pass.pkgNameOf(sel)
			if pn == nil {
				return true
			}
			// Unlike the function-reference analyzers, the pool hazard is
			// the type itself: `var p sync.Pool`, a composite literal, or
			// an embedded field all mint a pool, so every sync.Pool
			// selector counts.
			if pn.Imported().Path() != "sync" || sel.Sel.Name != "Pool" {
				return true
			}
			if pass.Allowed(pass.EnclosingFunc(sel.Pos())) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"sync.Pool in %s: pools are confined to internal/wire and internal/cb (the copy-at-boundary ownership contract); use wire.GetAttrSet for scratch or allocate locally",
				pass.Path)
			return true
		})
	}
	return nil
}
