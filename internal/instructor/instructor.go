// Package instructor implements the instructor monitor of §3.3: the
// interface through which the instructor supervises the trainee. It renders
// two windows as text (the repo has no window system):
//
//   - the Status window (Fig. 5): four sub-windows showing the boom's
//     current swinging angle, raising degrees, plumb-cable length and
//     elongate length, dialogue boxes repeating the numbers, alarm lamps
//     that light on operator misconduct, and the live exam score;
//   - the Dashboard window (Fig. 6): a complete duplication of the mockup
//     dashboard, from which the instructor can inject instrument faults
//     for trouble-shooting training by "clicking" an instrument.
package instructor

import (
	"fmt"
	"strings"
	"sync"

	"codsim/internal/crane"
	"codsim/internal/dashboard"
	"codsim/internal/fom"
)

// AlarmEvent is one alarm transition recorded in the misconduct log.
type AlarmEvent struct {
	At     float64 // scenario elapsed seconds
	Raised fom.Alarm
	Crane  int64 // carrier that raised it (0 in single-crane runs)
}

// Monitor is the instructor LP's state. Safe for concurrent use (CB
// callbacks feed it while the UI loop renders). In a multi-crane
// federation it observes every carrier's telemetry — alarm edges are
// debounced per crane — while the status and dashboard windows mirror
// crane 0, the operator cab.
type Monitor struct {
	mu    sync.Mutex
	spec  crane.Spec
	panel *dashboard.Panel // the Fig. 6 duplication

	crane    fom.CraneState // crane 0, the mirrored cab
	scen     fom.ScenarioState
	haveData bool
	lastAl   map[int64]fom.Alarm // per-crane alarm debounce
	log      []AlarmEvent
}

// NewMonitor builds a monitor judging against the given crane spec.
func NewMonitor(spec crane.Spec) *Monitor {
	return &Monitor{spec: spec, panel: dashboard.NewPanel(), lastAl: make(map[int64]fom.Alarm)}
}

// ObserveCrane ingests a CraneState reflection from any carrier.
func (m *Monitor) ObserveCrane(st fom.CraneState, dt float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st.CraneID == 0 {
		m.crane = st
		m.haveData = true
		m.panel.UpdateFromState(st, dt)
	}

	al := m.spec.Alarms(st)
	if raised := al &^ m.lastAl[st.CraneID]; raised != 0 {
		m.log = append(m.log, AlarmEvent{At: m.scen.Elapsed, Raised: raised, Crane: st.CraneID})
	}
	m.lastAl[st.CraneID] = al
}

// ObserveScenario ingests a ScenarioState reflection. The status window
// follows crane 0's cursor (score and clock are shared by all cranes).
func (m *Monitor) ObserveScenario(s fom.ScenarioState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.CraneID == 0 {
		m.scen = s
	}
}

// Report digests the current state into the status-window payload.
func (m *Monitor) Report(extra fom.Alarm) fom.StatusReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spec.StatusReport(m.crane, m.scen.Score, extra)
}

// InjectFault builds the InstructorCmd for clicking instrument `name` on
// the Dashboard window (§3.3 trouble-shooting training), applying it to
// the local mirror as well.
func (m *Monitor) InjectFault(name string, value float64) (fom.InstructorCmd, error) {
	cmd := fom.InstructorCmd{Op: fom.OpInjectFault, Instrument: name, Value: value}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.panel.Apply(cmd); err != nil {
		return fom.InstructorCmd{}, err
	}
	return cmd, nil
}

// ClearFault builds the clearing command for an instrument.
func (m *Monitor) ClearFault(name string) (fom.InstructorCmd, error) {
	cmd := fom.InstructorCmd{Op: fom.OpClearFault, Instrument: name}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.panel.Apply(cmd); err != nil {
		return fom.InstructorCmd{}, err
	}
	return cmd, nil
}

// AlarmLog returns a copy of the misconduct log.
func (m *Monitor) AlarmLog() []AlarmEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]AlarmEvent(nil), m.log...)
}

// alarmLamps lists the lamps in display order.
var alarmLamps = []struct {
	bit   fom.Alarm
	label string
}{
	{fom.AlarmSwingZone, "SWING ZONE"},
	{fom.AlarmLuffLimit, "LUFF LIMIT"},
	{fom.AlarmOverload, "OVERLOAD"},
	{fom.AlarmTipover, "TIP-OVER"},
	{fom.AlarmCollision, "COLLISION"},
	{fom.AlarmOverspeed, "OVERSPEED"},
}

// StatusWindow renders the Fig. 5 status window as text.
func (m *Monitor) StatusWindow(extra fom.Alarm) string {
	r := m.Report(extra)
	m.mu.Lock()
	scen := m.scen
	m.mu.Unlock()

	var b strings.Builder
	b.WriteString("+------------------ STATUS WINDOW ------------------+\n")
	fmt.Fprintf(&b, "| swing angle : %7.1f deg   raise angle : %6.1f deg |\n", r.SwingDeg, r.LuffDeg)
	fmt.Fprintf(&b, "| cable length: %7.2f m     boom length : %6.2f m   |\n", r.CableLen, r.BoomLen)
	b.WriteString("| alarms      : ")
	any := false
	for _, lamp := range alarmLamps {
		if r.Alarms.Has(lamp.bit) {
			if any {
				b.WriteString(", ")
			}
			b.WriteString(lamp.label)
			any = true
		}
	}
	if !any {
		b.WriteString("(none)")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "| phase: %-9s  score: %5.1f  elapsed: %6.1f s    |\n",
		scen.Phase, r.Score, scen.Elapsed)
	fmt.Fprintf(&b, "| %s\n", scen.Message)
	b.WriteString("+----------------------------------------------------+\n")
	return b.String()
}

// DashboardWindow renders the Fig. 6 dashboard duplication as text. A
// trailing asterisk marks instruments with an injected fault.
func (m *Monitor) DashboardWindow() string {
	m.mu.Lock()
	gauges := m.panel.Snapshot()
	m.mu.Unlock()

	var b strings.Builder
	b.WriteString("+--------------- DASHBOARD WINDOW ---------------+\n")
	for _, g := range gauges {
		mark := " "
		if g.Faulted {
			mark = "*"
		}
		fmt.Fprintf(&b, "| %-13s %9.1f %-5s %s |\n", g.Name, g.Value, g.Unit, mark)
	}
	b.WriteString("+-------------------------------------------------+\n")
	return b.String()
}

// Panel exposes the mirror panel (tests and the fault-injection example).
func (m *Monitor) Panel() *dashboard.Panel { return m.panel }
