package instructor

import (
	"strings"
	"testing"

	"codsim/internal/crane"
	"codsim/internal/dashboard"
	"codsim/internal/fom"
	"codsim/internal/mathx"
)

func calmState() fom.CraneState {
	return fom.CraneState{
		BoomSwing: mathx.Rad(20),
		BoomLuff:  mathx.Rad(50),
		BoomLen:   14,
		CableLen:  6,
		Stability: 0.9,
		EngineRPM: 900,
		EngineOn:  true,
		Speed:     2,
	}
}

func TestReportReflectsState(t *testing.T) {
	m := NewMonitor(crane.DefaultSpec())
	m.ObserveCrane(calmState(), 0.1)
	m.ObserveScenario(fom.ScenarioState{Score: 88, Phase: fom.PhaseTraverse})
	r := m.Report(0)
	if r.SwingDeg < 19.9 || r.SwingDeg > 20.1 {
		t.Errorf("SwingDeg = %v", r.SwingDeg)
	}
	if r.Score != 88 {
		t.Errorf("Score = %v", r.Score)
	}
	if r.Alarms != 0 {
		t.Errorf("Alarms = %b for calm state", r.Alarms)
	}
}

func TestStatusWindowRendering(t *testing.T) {
	m := NewMonitor(crane.DefaultSpec())
	m.ObserveCrane(calmState(), 0.1)
	m.ObserveScenario(fom.ScenarioState{
		Score: 95.5, Phase: fom.PhaseDriving, Elapsed: 12.5,
		Message: "drive to the test ground",
	})
	out := m.StatusWindow(0)
	for _, want := range []string{"STATUS WINDOW", "20.0", "50.0", "95.5", "driving", "(none)", "drive to the test ground"} {
		if !strings.Contains(out, want) {
			t.Errorf("status window missing %q:\n%s", want, out)
		}
	}
}

func TestStatusWindowAlarms(t *testing.T) {
	m := NewMonitor(crane.DefaultSpec())
	st := calmState()
	st.Speed = 99 // overspeed
	st.Stability = 0.05
	m.ObserveCrane(st, 0.1)
	out := m.StatusWindow(fom.AlarmCollision)
	for _, want := range []string{"OVERSPEED", "TIP-OVER", "COLLISION"} {
		if !strings.Contains(out, want) {
			t.Errorf("alarms missing %q:\n%s", want, out)
		}
	}
}

func TestAlarmLogRecordsEdges(t *testing.T) {
	m := NewMonitor(crane.DefaultSpec())
	m.ObserveScenario(fom.ScenarioState{Elapsed: 5})
	m.ObserveCrane(calmState(), 0.1)
	if len(m.AlarmLog()) != 0 {
		t.Fatal("calm state logged an alarm")
	}
	st := calmState()
	st.Speed = 99
	m.ObserveCrane(st, 0.1)
	m.ObserveCrane(st, 0.1) // held: no second entry
	logs := m.AlarmLog()
	if len(logs) != 1 {
		t.Fatalf("log = %v, want one entry", logs)
	}
	if !logs[0].Raised.Has(fom.AlarmOverspeed) || logs[0].At != 5 {
		t.Errorf("entry = %+v", logs[0])
	}
	// Alarm clears then re-trips: second entry.
	m.ObserveCrane(calmState(), 0.1)
	m.ObserveCrane(st, 0.1)
	if len(m.AlarmLog()) != 2 {
		t.Errorf("log = %d entries, want 2", len(m.AlarmLog()))
	}
}

func TestDashboardWindowMirrorsAndFaults(t *testing.T) {
	m := NewMonitor(crane.DefaultSpec())
	m.ObserveCrane(calmState(), 0.1)
	out := m.DashboardWindow()
	if !strings.Contains(out, dashboard.InstrRPM) || !strings.Contains(out, "900.0") {
		t.Errorf("dashboard window missing live rpm:\n%s", out)
	}

	cmd, err := m.InjectFault(dashboard.InstrRPM, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != fom.OpInjectFault || cmd.Instrument != dashboard.InstrRPM || cmd.Value != 2500 {
		t.Errorf("cmd = %+v", cmd)
	}
	out = m.DashboardWindow()
	if !strings.Contains(out, "2500.0") || !strings.Contains(out, "*") {
		t.Errorf("fault not mirrored:\n%s", out)
	}

	clr, err := m.ClearFault(dashboard.InstrRPM)
	if err != nil {
		t.Fatal(err)
	}
	if clr.Op != fom.OpClearFault {
		t.Errorf("clear cmd = %+v", clr)
	}
	if strings.Contains(m.DashboardWindow(), "*") {
		t.Error("fault marker survived clear")
	}

	if _, err := m.InjectFault("no-such-gauge", 1); err == nil {
		t.Error("unknown instrument accepted")
	}
}
