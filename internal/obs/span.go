package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Job phases, in wall-clock order. Each phase is one histogram series
// under codsim_job_phase_seconds{phase=...}:
//
//	queue    coordinator-side: job loaded until a worker's claim is granted
//	dispatch worker-side: claim sent until the grant arrived
//	run      worker-side: simulation wall time
//	ack      worker-side: first result send until the coordinator's ack
//
// queue is measured on the coordinator clock and the rest on the worker
// clock, so no phase ever spans two hosts' clocks.
const (
	PhaseQueue    = "queue"
	PhaseDispatch = "dispatch"
	PhaseRun      = "run"
	PhaseAck      = "ack"
)

// spanSeq distinguishes spans minted by this process; the process epoch
// distinguishes processes well enough for a debugging plane.
var (
	spanSeq   atomic.Uint64
	spanEpoch = uint64(time.Now().UnixNano()) & 0xffffffff
)

// MintSpanID returns a new process-unique span ID such as "a1b2c3d4-0007".
// It is minted at dispatch, threaded through dist.Job to the worker, and
// comes home on the dist.Record so a sweep's log lines and latency
// observations join on one key.
func MintSpanID() string {
	return fmt.Sprintf("%08x-%04x", spanEpoch, spanSeq.Add(1))
}

// Spans records per-job phase latencies into a registry histogram. A nil
// *Spans is a valid no-op recorder, so dist can thread one unconditionally.
type Spans struct {
	phases *HistogramVec
}

// NewSpans registers codsim_job_phase_seconds on reg and returns the
// recorder.
func NewSpans(reg *Registry) *Spans {
	return &Spans{
		phases: reg.HistogramVec("codsim_job_phase_seconds",
			"per-job latency by lifecycle phase (queue, dispatch, run, ack)",
			nil, "phase"),
	}
}

// Observe records one phase duration. Negative durations (clock steps) are
// clamped to zero; a nil receiver drops the observation.
func (s *Spans) Observe(phase string, d time.Duration) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s.phases.With(phase).Observe(d.Seconds())
}
