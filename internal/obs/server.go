package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"codsim/internal/metrics"
)

// Server is the opt-in HTTP face of the telemetry plane:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       liveness: 200 "ok" with uptime
//	/debug/tablez  live Backbone.Tables pub/sub tables of registered nodes
//	/debug/pprof/  the standard runtime profiles
//
// Nothing listens unless Start is called — the plane costs a process
// nothing until it is asked for.
type Server struct {
	reg   *Registry
	start time.Time

	mu       sync.Mutex
	nodes    []nodeSource
	onScrape func()
	ln       net.Listener
	srv      *http.Server
}

// NewServer wraps a registry; register table sources with AddNode, then
// Start it.
func NewServer(reg *Registry) *Server {
	return &Server{reg: reg, start: time.Now()}
}

// AddNode registers a backbone whose pub/sub tables /debug/tablez renders.
func (s *Server) AddNode(name string, bb Backbone) {
	s.mu.Lock()
	s.nodes = append(s.nodes, nodeSource{name: name, bb: bb})
	s.mu.Unlock()
}

// OnScrape installs a hook /metrics runs before rendering — the Plane
// wires the sampler's SampleOnce here, so a scrape always sees current
// state (per-channel tallies are dropped when a virtual channel tears
// down; a scrape that only read the background ticks could miss a
// short-lived channel entirely).
func (s *Server) OnScrape(fn func()) {
	s.mu.Lock()
	s.onScrape = fn
	s.mu.Unlock()
}

// Handler returns the plane's mux, for embedding into an existing server
// or an httptest fixture.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/tablez", s.handleTablez)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr (":0" picks a free port) and serves the plane in a
// background goroutine, returning the bound address. Close stops it.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln, s.srv = ln, srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener; in-flight requests are abandoned (this is a
// debug plane, not a service).
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fn := s.onScrape
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok uptime=%s\n", time.Since(s.start).Round(time.Second))
}

// handleTablez renders every registered node's live pub/sub tables as
// fixed-width text — the instructor-station view of who publishes what
// to whom, and which channels are shedding.
func (s *Server) handleTablez(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	nodes := append([]nodeSource(nil), s.nodes...)
	s.mu.Unlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].name < nodes[j].name })

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(nodes) == 0 {
		fmt.Fprintln(w, "no nodes registered")
		return
	}
	for _, n := range nodes {
		pubs, subs := n.bb.Tables()
		fmt.Fprintf(w, "== node %s ==\n\npublications\n", n.name)
		pt := metrics.NewTable("LP", "CLASS", "CHANNELS", "STALLS")
		for _, row := range pubs {
			pt.AddRow(row.LP, row.Class, row.Channels, row.Stalls)
		}
		fmt.Fprint(w, pt.String())
		fmt.Fprintf(w, "\nsubscriptions\n")
		st := metrics.NewTable("LP", "CLASS", "POLICY", "CHANNELS", "FRAMES", "DROPPED", "CONFLATED", "BY-CHANNEL")
		for _, row := range subs {
			var by []string
			for _, ch := range row.ByChannel {
				by = append(by, fmt.Sprintf("ch%d(%s):%d/%d/%d",
					ch.Channel, ch.Peer, ch.Delivered, ch.Dropped, ch.Conflated))
			}
			st.AddRow(row.LP, row.Class, row.Policy, row.Channels,
				row.Delivered, row.Dropped, row.Conflated, strings.Join(by, " "))
		}
		fmt.Fprint(w, st.String())
		fmt.Fprintln(w)
	}
}
