package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"codsim/cod"
)

// TestWritePrometheusGolden pins the text exposition format end to end:
// HELP/TYPE lines, label rendering, integer formatting, histogram
// bucket/sum/count rows, and the name-sorted stable order.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_events_total", "events seen").Add(3)
	g := reg.GaugeVec("test_depth", "queue depth", "queue", "node")
	g.With("claims", "n1").Set(4)
	g.With("results", "n1").Set(2.5)
	h := reg.Histogram("test_latency_seconds", "request latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_depth queue depth
# TYPE test_depth gauge
test_depth{queue="claims",node="n1"} 4
test_depth{queue="results",node="n1"} 2.5
# HELP test_events_total events seen
# TYPE test_events_total counter
test_events_total 3
# HELP test_latency_seconds request latency
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.55
test_latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryIdempotentAndChecked(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "")
	b := reg.Counter("x_total", "")
	if a != b {
		t.Error("re-registering the same counter returned a different instrument")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registering a counter as a gauge did not panic")
			}
		}()
		reg.Gauge("x_total", "")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registering with different labels did not panic")
			}
		}()
		reg.CounterVec("x_total", "", "node")
	}()
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeVec("esc", "", "v").With("a\"b\\c\nd").Set(1)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc{v="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped series %q missing from:\n%s", want, b.String())
	}
}

// fakeBackbone serves canned stats/tables through the narrow interface the
// sampler consumes — the same shape a *cod.Node presents.
type fakeBackbone struct {
	stats cod.Stats
	subs  []cod.TableEntry
	pubs  []cod.TableEntry
}

func (f *fakeBackbone) Stats() *cod.Stats { return &f.stats }

func (f *fakeBackbone) Tables() (pubs, subs []cod.TableEntry) { return f.pubs, f.subs }

func newFakeBackbone() *fakeBackbone {
	f := &fakeBackbone{
		pubs: []cod.TableEntry{{LP: "dynamics", Class: "CraneState", Channels: 2, Stalls: 3}},
		subs: []cod.TableEntry{{
			LP: "visual", Class: "CraneState", Channels: 2, Policy: "latest-value",
			Delivered: 14, Dropped: 5, Conflated: 2,
			ByChannel: []cod.ChannelTally{
				{Channel: 7, Peer: "dyn-pc", Delivered: 9, Dropped: 5, Conflated: 2},
				{Channel: 9, Peer: "sim-pc", Delivered: 5},
			},
		}},
	}
	f.stats.ReflectsDelivered.Add(14)
	f.stats.MailboxDropped.Add(5)
	f.stats.Conflations.Add(2)
	return f
}

// TestSamplerChannelSeries asserts that one scrape pass turns a backbone's
// per-channel tallies into labeled codsim_cb_* series.
func TestSamplerChannelSeries(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Hour)
	s.AddNode("disp-pc", newFakeBackbone())
	s.SampleOnce()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`codsim_cb_channel_frames_total{node="disp-pc",lp="visual",class="CraneState",peer="dyn-pc",channel="7"} 9`,
		`codsim_cb_channel_dropped_total{node="disp-pc",lp="visual",class="CraneState",peer="dyn-pc",channel="7"} 5`,
		`codsim_cb_channel_conflated_total{node="disp-pc",lp="visual",class="CraneState",peer="dyn-pc",channel="7"} 2`,
		`codsim_cb_channel_frames_total{node="disp-pc",lp="visual",class="CraneState",peer="sim-pc",channel="9"} 5`,
		`codsim_cb_pub_credit_stalls_total{node="disp-pc",lp="dynamics",class="CraneState"} 3`,
		`codsim_cb_stat{node="disp-pc",stat="reflects_delivered"} 14`,
		`codsim_cb_stat{node="disp-pc",stat="mailbox_dropped"} 5`,
		`codsim_cb_stat{node="disp-pc",stat="conflations"} 2`,
		`codsim_cb_sub_channels{node="disp-pc",lp="visual",class="CraneState",policy="latest-value"} 2`,
		`codsim_cb_sub_frames_total{node="disp-pc",lp="visual",class="CraneState",policy="latest-value"} 14`,
		`codsim_cb_sub_dropped_total{node="disp-pc",lp="visual",class="CraneState",policy="latest-value"} 5`,
		`codsim_cb_sub_conflated_total{node="disp-pc",lp="visual",class="CraneState",policy="latest-value"} 2`,
		`codsim_obs_samples_total 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("series %q missing from scrape:\n%s", want, out)
		}
	}
}

// TestSamplerDispatchSeries asserts coordinator and worker dispatch
// samples land as codsim_dist_* series.
func TestSamplerDispatchSeries(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Hour)
	s.AddDispatch(func() DispatchSample {
		return DispatchSample{
			Role: "coordinator", Name: "sweep-1",
			Pending: 3, Granted: 2, Done: 5, Attempts: 11, Redispatches: 1,
			Workers: []WorkerSample{{Name: "host1", Done: 5, Throughput: 2.5, Busy: 2, Slots: 4, SinceSeen: 0.25}},
		}
	})
	s.AddDispatch(func() DispatchSample {
		return DispatchSample{Role: "worker", Name: "host1", Slots: 4, Busy: 2, Claimed: 1, Finished: 5, ResultsAcked: 5}
	})
	s.SampleOnce()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`codsim_dist_jobs{role="coordinator",state="in_flight"} 5`,
		`codsim_dist_jobs{role="coordinator",state="pending"} 3`,
		`codsim_dist_jobs{role="coordinator",state="redispatches"} 1`,
		`codsim_dist_jobs{role="worker",state="busy"} 2`,
		`codsim_dist_jobs{role="worker",state="results_acked"} 5`,
		`codsim_dist_worker{worker="host1",stat="done"} 5`,
		`codsim_dist_worker{worker="host1",stat="throughput_jobs_per_sec"} 2.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("series %q missing from scrape:\n%s", want, out)
		}
	}
}

func TestSpans(t *testing.T) {
	reg := NewRegistry()
	sp := NewSpans(reg)
	sp.Observe(PhaseQueue, 50*time.Millisecond)
	sp.Observe(PhaseRun, 2*time.Second)
	sp.Observe(PhaseRun, -time.Second) // clock step clamps to 0, still counted
	var nilSpans *Spans
	nilSpans.Observe(PhaseAck, time.Second) // nil recorder drops silently

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`codsim_job_phase_seconds_count{phase="queue"} 1`,
		`codsim_job_phase_seconds_count{phase="run"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("series %q missing from scrape:\n%s", want, out)
		}
	}
	if strings.Contains(out, `phase="ack"`) {
		t.Error("nil span recorder leaked an observation")
	}

	a, b2 := MintSpanID(), MintSpanID()
	if a == b2 || a == "" {
		t.Errorf("span IDs not unique: %q, %q", a, b2)
	}
}

func TestLogfShim(t *testing.T) {
	var lines []string
	log := NewLogfLogger(func(format string, args ...any) {
		lines = append(lines, strings.TrimSpace(strings.ReplaceAll(format, "%s", args[0].(string))))
	})
	log = log.With("sweep", int64(42))
	log.Info("job granted", "job", 7, "worker", "host1")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	want := "job granted sweep=42 job=7 worker=host1"
	if lines[0] != want {
		t.Errorf("shim rendered %q, want %q", lines[0], want)
	}
	// A nil hook must yield a working discard logger.
	NewLogfLogger(nil).Info("dropped", "k", "v")
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_up", "").Inc()
	srv := NewServer(reg)
	srv.AddNode("disp-pc", newFakeBackbone())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var b strings.Builder
		if _, err := io.Copy(&b, resp.Body); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	if out := get("/metrics"); !strings.Contains(out, "test_up 1") {
		t.Errorf("/metrics missing test_up:\n%s", out)
	}
	if out := get("/healthz"); !strings.HasPrefix(out, "ok") {
		t.Errorf("/healthz returned %q", out)
	}
	tablez := get("/debug/tablez")
	for _, want := range []string{"node disp-pc", "dynamics", "visual", "latest-value", "dyn-pc"} {
		if !strings.Contains(tablez, want) {
			t.Errorf("/debug/tablez missing %q:\n%s", want, tablez)
		}
	}
}

// TestPlaneCollectsOnScrape pins the collect-on-scrape contract: /metrics
// must reflect the state at scrape time even if the background sampler
// never ticked — per-channel tallies vanish when a virtual channel tears
// down, so a scrape that only read old ticks could miss a short-lived
// channel entirely.
func TestPlaneCollectsOnScrape(t *testing.T) {
	p := NewPlane("test", io.Discard, time.Hour) // sampler deliberately never started
	p.AddNode("disp-pc", newFakeBackbone())
	ts := httptest.NewServer(p.Server.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	want := `codsim_cb_channel_frames_total{node="disp-pc",lp="visual",class="CraneState",peer="dyn-pc",channel="7"} 9`
	if !strings.Contains(b.String(), want) {
		t.Errorf("scrape without a sampler tick missing %q:\n%s", want, b.String())
	}
}

// BenchmarkObsCounter is the instrumentation hot path: incrementing a
// resolved counter child must not allocate (the BENCH_baseline.json
// ceiling is 0 allocs/op), so metric points can sit on cb/dist fast paths.
func BenchmarkObsCounter(b *testing.B) {
	reg := NewRegistry()
	c := reg.CounterVec("bench_events_total", "", "node").With("n1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsSampler is one full scrape pass over a realistic node.
func BenchmarkObsSampler(b *testing.B) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Hour)
	s.AddNode("disp-pc", newFakeBackbone())
	s.AddDispatch(func() DispatchSample {
		return DispatchSample{Role: "coordinator", Name: "sweep-1", Pending: 3,
			Workers: []WorkerSample{{Name: "host1", Done: 5}}}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleOnce()
	}
}
