package obs

import (
	"io"
	"log/slog"
	"time"
)

// Plane bundles the full telemetry stack — registry, HTTP server,
// background sampler, span recorder, and structured logger — so each cmd
// wires observability with one call. A nil *Plane is a valid disabled
// plane: every accessor returns a safe no-op value.
type Plane struct {
	Registry *Registry
	Server   *Server
	Sampler  *Sampler
	Spans    *Spans
	Logger   *slog.Logger

	addr string
}

// NewPlane builds a plane around a fresh registry. role tags log lines;
// logW receives them (typically os.Stderr). The sampler runs at period
// (0 = DefaultSamplePeriod) once Start is called.
func NewPlane(role string, logW io.Writer, period time.Duration) *Plane {
	reg := NewRegistry()
	p := &Plane{
		Registry: reg,
		Server:   NewServer(reg),
		Sampler:  NewSampler(reg, period),
		Spans:    NewSpans(reg),
		Logger:   NewLogger(logW, role),
	}
	// Collect-on-scrape: /metrics reflects the state at scrape time, not
	// the last background tick, so short-lived channels are observable.
	p.Server.OnScrape(p.Sampler.SampleOnce)
	return p
}

// AddNode registers a backbone with both the sampler (metric series) and
// the server (/debug/tablez).
func (p *Plane) AddNode(name string, bb Backbone) {
	if p == nil {
		return
	}
	p.Sampler.AddNode(name, bb)
	p.Server.AddNode(name, bb)
}

// AddDispatch registers a dispatch-state source with the sampler.
func (p *Plane) AddDispatch(fn func() DispatchSample) {
	if p == nil {
		return
	}
	p.Sampler.AddDispatch(fn)
}

// Start binds addr, starts the sampler, and returns the bound address.
func (p *Plane) Start(addr string) (string, error) {
	bound, err := p.Server.Start(addr)
	if err != nil {
		return "", err
	}
	p.addr = bound
	p.Sampler.Start()
	return bound, nil
}

// Addr returns the bound address after Start ("" before).
func (p *Plane) Addr() string {
	if p == nil {
		return ""
	}
	return p.addr
}

// Close runs one final sample pass (so short sweeps still leave complete
// series for a last scrape before exit), then stops the sampler and server.
func (p *Plane) Close() {
	if p == nil {
		return
	}
	p.Sampler.SampleOnce()
	p.Sampler.Stop()
	_ = p.Server.Close()
}

// Log returns the plane's logger, or a discard logger for a nil plane.
func (p *Plane) Log() *slog.Logger {
	if p == nil {
		return Nop()
	}
	return p.Logger
}

// SpanSink returns the plane's span recorder; nil-safe (a nil *Spans
// drops observations).
func (p *Plane) SpanSink() *Spans {
	if p == nil {
		return nil
	}
	return p.Spans
}
