package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger returns a key=value text slog.Logger writing to w (typically
// os.Stderr), tagged with the process role ("coordinator", "worker",
// "node"). The field conventions used across codsim: sweep, job, worker,
// attempt, seq, span, phase.
func NewLogger(w io.Writer, role string) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo})
	return slog.New(h).With("role", role)
}

// Nop returns a logger that discards everything — the default when no
// telemetry plane is wired.
func Nop() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

// NewLogfLogger adapts a legacy printf-style hook (the dist Logf config
// field) into a structured logger: each record renders as the message
// followed by space-separated key=value fields, emitted through logf as a
// single "%s". A nil logf yields the discard logger, so callers can pass
// their config field through unguarded.
func NewLogfLogger(logf func(format string, args ...any)) *slog.Logger {
	if logf == nil {
		return Nop()
	}
	return slog.New(&logfHandler{logf: logf})
}

// logfHandler renders records for NewLogfLogger. It keeps the small
// with-attrs/with-group state slog handlers must carry.
type logfHandler struct {
	logf   func(format string, args ...any)
	prefix string // pre-rendered WithAttrs fields
	groups string // dotted open group path
}

func (h *logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelInfo
}

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	b.WriteString(h.prefix)
	r.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, h.groups, a)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var b strings.Builder
	b.WriteString(h.prefix)
	for _, a := range attrs {
		appendAttr(&b, h.groups, a)
	}
	return &logfHandler{logf: h.logf, prefix: b.String(), groups: h.groups}
}

func (h *logfHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	return &logfHandler{logf: h.logf, prefix: h.prefix, groups: h.groups + name + "."}
}

func appendAttr(b *strings.Builder, groups string, a slog.Attr) {
	if a.Equal(slog.Attr{}) {
		return
	}
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		sub := groups + a.Key + "."
		if a.Key == "" {
			sub = groups
		}
		for _, ga := range v.Group() {
			appendAttr(b, sub, ga)
		}
		return
	}
	fmt.Fprintf(b, " %s%s=%v", groups, a.Key, v.Any())
}
