// Package obs is the cluster's telemetry plane: a process-wide metric
// registry with Prometheus text exposition, an opt-in HTTP endpoint
// (/metrics, /healthz, /debug/tablez, pprof), a background sampler that
// scrapes backbone and dispatch state into gauges, structured logging
// helpers on log/slog, and lightweight per-job trace spans.
//
// The paper's cluster of desktops was debugged by watching consoles; a
// 1000-job campaign across a multi-host sweep is not. This package turns
// the instrumentation the system already keeps — cb.Stats counters,
// Backbone.Tables per-channel tallies, the dist coordinator's dispatch
// state — into a live, scrapeable surface, so a stalled sweep names the
// channel (and the phase) eating the time instead of timing out mutely.
//
// # Layering
//
// obs sits above the public cod SDK and below the commands: it consumes
// only the exported cod.Stats / cod.TableEntry types through the narrow
// Backbone interface and never imports the backbone internals
// (internal/cb, internal/wire, internal/transport) — the codvet layering
// analyzer enforces this. internal/dist imports obs for span sinks and
// the slog shim; obs must therefore never import dist, which is why the
// sampler consumes dispatch state as plain DispatchSample values.
//
// # Metric naming
//
// Every series is prefixed codsim_ and grouped by subsystem:
//
//	codsim_cb_*    backbone counters and per-channel tallies ({node} label,
//	               per-channel series add {lp,class,peer,channel})
//	codsim_dist_*  dispatch state ({role} label; per-worker series {worker})
//	codsim_job_*   per-job trace phases ({phase} label)
//
// Counters sampled from cumulative sources keep the _total suffix;
// instantaneous values (jobs in flight, slots busy) are plain gauges;
// phase latencies are _seconds histograms.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"codsim/internal/metrics"
)

// kind is a metric family's exposition type.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// Counter is a monotone event count, rendered as an integer series. The
// hot path (Inc/Add) is allocation-free; grab the child of a CounterVec
// once and increment it per event.
type Counter struct {
	c metrics.Counter
}

// Inc adds one.
func (c *Counter) Inc() { c.c.Inc() }

// Add increments by d; negative d is a programming error (counters are
// monotone) and is ignored.
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.c.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.c.Value() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct {
	g metrics.Gauge
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.g.Set(v) }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) { g.g.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.g.Value() }

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	h *metrics.Histogram
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) { h.h.Observe(v) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.h.Count() }

// series is one labeled instance of a family.
type series struct {
	labels string // rendered {k="v",...} block, "" for unlabeled
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family is one named metric with its labeled series.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string // label names of a vec; nil for a plain instrument
	buckets []float64

	mu     sync.Mutex
	series map[string]*series
}

// get returns the series for the rendered label block, creating it.
func (f *family) get(labelBlock string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[labelBlock]
	if s == nil {
		s = &series{labels: labelBlock}
		switch f.kind {
		case kindCounter:
			s.ctr = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = &Histogram{h: metrics.NewHistogram(f.buckets)}
		}
		f.series[labelBlock] = s
	}
	return s
}

// Registry owns a process's metric families and renders them in the
// Prometheus text exposition format. All methods are safe for concurrent
// use; registration is idempotent — asking for the same name again
// returns the same instrument, and re-registering a name as a different
// kind or label set panics (it is a programming error, caught in tests).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry Default returns.
var defaultRegistry = struct {
	once sync.Once
	reg  *Registry
}{}

// Default returns the process-wide registry, for instrumentation points
// with no wiring path to an explicit one.
func Default() *Registry {
	defaultRegistry.once.Do(func() { defaultRegistry.reg = NewRegistry() })
	return defaultRegistry.reg
}

// lookup finds or creates a family, enforcing kind/label consistency.
func (r *Registry) lookup(name, help string, k kind, labels []string, buckets []float64) *family {
	if name == "" {
		panic("obs: metric with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{
			name: name, help: help, kind: k,
			labels: append([]string(nil), labels...), buckets: buckets,
			series: make(map[string]*series),
		}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, k, f.kind))
	}
	if len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: %s re-registered with %d labels (was %d)", name, len(labels), len(f.labels)))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("obs: %s re-registered with label %q (was %q)", name, labels[i], f.labels[i]))
		}
	}
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, nil, nil).get("").ctr
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, nil, nil).get("").gauge
}

// Histogram registers (or fetches) an unlabeled histogram over the given
// bucket upper bounds (nil = metrics.DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.lookup(name, help, kindHistogram, nil, buckets).get("").hist
}

// CounterVec registers (or fetches) a counter family keyed by labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, kindCounter, labels, nil)}
}

// GaugeVec registers (or fetches) a gauge family keyed by labels.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, kindGauge, labels, nil)}
}

// HistogramVec registers (or fetches) a histogram family keyed by labels.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, labels, buckets)}
}

// CounterVec is a counter family; With resolves one labeled child.
type CounterVec struct{ f *family }

// With returns the child for the label values, in declaration order.
// Resolve once and keep the child on hot paths — With itself allocates.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(renderLabels(v.f.labels, values)).ctr
}

// GaugeVec is a gauge family; With resolves one labeled child.
type GaugeVec struct{ f *family }

// With returns the child for the label values, in declaration order.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(renderLabels(v.f.labels, values)).gauge
}

// HistogramVec is a histogram family; With resolves one labeled child.
type HistogramVec struct{ f *family }

// With returns the child for the label values, in declaration order.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(renderLabels(v.f.labels, values)).hist
}

// renderLabels builds the canonical {k="v",...} block for the values.
func renderLabels(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("obs: %d label values for %d labels", len(values), len(names)))
	}
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition format's label-value escaping.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// insertLabel splices an extra label into a rendered label block — used
// for histogram le labels.
func insertLabel(block, name, value string) string {
	pair := name + `="` + escapeLabel(value) + `"`
	if block == "" {
		return "{" + pair + "}"
	}
	return block[:len(block)-1] + "," + pair + "}"
}

// formatValue renders a sample the way Prometheus clients do: integers
// without a decimal point, +Inf for infinity.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name and series by label block, so output is stable
// for golden tests and diffing two scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		rows := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			rows = append(rows, s)
		}
		f.mu.Unlock()
		if len(rows) == 0 {
			continue
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].labels < rows[j].labels })

		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range rows {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.ctr.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.gauge.Value()))
			case kindHistogram:
				cum, _, sum := s.hist.h.Snapshot()
				bounds := s.hist.h.Bounds()
				for i, bound := range bounds {
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						f.name, insertLabel(s.labels, "le", formatValue(bound)), cum[i])
				}
				// _count must equal the +Inf bucket; both come from the
				// same snapshot so a concurrent Observe cannot split them.
				inf := cum[len(cum)-1]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, insertLabel(s.labels, "le", "+Inf"), inf)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, formatValue(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, inf)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
