package obs

import (
	"strconv"
	"sync"
	"time"

	"codsim/cod"
)

// Backbone is the narrow view of a node the telemetry plane consumes:
// the exported stats counters and table snapshots of the public cod SDK.
// *cod.Node satisfies it. obs deliberately never touches the backbone
// internals — everything it needs crosses this interface.
type Backbone interface {
	Stats() *cod.Stats
	Tables() (pubs, subs []cod.TableEntry)
}

// DispatchSample is one scrape of a dist coordinator's or worker's
// dispatch state. dist produces these (Coordinator.Sample, Worker.Sample)
// and the Sampler turns them into codsim_dist_* series; the struct is
// plain data so obs never has to import dist.
type DispatchSample struct {
	// Role is "coordinator" or "worker"; Name the role instance's segment
	// identity (worker name, or the sweep ID for a coordinator).
	Role string
	Name string

	// Coordinator state: jobs currently pending announce or granted
	// (InFlight = Pending + Granted), finished jobs, attempts dispatched
	// and re-dispatches of lost grants.
	Pending      int64
	Granted      int64
	Done         int64
	Attempts     int64
	Redispatches int64

	// Worker state: slot occupancy and the local job ledger.
	Slots        int64
	Busy         int64
	Claimed      int64
	Finished     int64
	ResultsAcked int64

	// Workers is the coordinator's per-worker progress view, for the
	// dispatch-weighting follow-on: who is fast, who is mute.
	Workers []WorkerSample
}

// WorkerSample is a coordinator's view of one worker's progress.
type WorkerSample struct {
	Name string
	// Done counts results this worker delivered this sweep; Throughput is
	// Done over the time since the sweep started, in jobs per second.
	Done       int64
	Throughput float64
	// Busy and Slots mirror the worker's last heartbeat; SinceSeen is the
	// age of that heartbeat in seconds.
	Busy      int64
	Slots     int64
	SinceSeen float64
}

// nodeSource is one registered backbone with its metric label.
type nodeSource struct {
	name string
	bb   Backbone
}

// Sampler periodically scrapes registered backbones and dispatch sources
// into registry gauges. Construct with NewSampler, register sources, then
// Start it (or call SampleOnce from a test). All methods are safe for
// concurrent use.
type Sampler struct {
	reg    *Registry
	period time.Duration

	mu       sync.Mutex
	nodes    []nodeSource
	dispatch []func() DispatchSample

	// scrapeMu serializes scrape passes and owns everything below it: the
	// source snapshots reused across ticks and the resolved-gauge caches.
	// GaugeVec.With allocates (variadic labels + rendered key), so a scrape
	// that resolved every child per tick cost >100 allocs; caching the
	// children makes the steady-state pass allocation-free.
	scrapeMu    sync.Mutex
	nodeScratch []nodeSource
	dispScratch []func() DispatchSample
	nodeGauges  map[string]*nodeGauges
	dispGauges  map[dispKey]*Gauge
	workerCache map[string]*workerGauges

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	stopped   chan struct{}

	// Pre-registered families; children resolve per label set on sample.
	cbCounters  *GaugeVec
	chFrames    *GaugeVec
	chDropped   *GaugeVec
	chConflated *GaugeVec
	pubStalls   *GaugeVec
	subRows     *GaugeVec
	subFrames   *GaugeVec
	subDropped  *GaugeVec
	subConfl    *GaugeVec
	dispatchG   *GaugeVec
	workerG     *GaugeVec
	samples     *Counter
}

// DefaultSamplePeriod is how often Start scrapes when the period is 0.
const DefaultSamplePeriod = time.Second

// NewSampler returns a sampler feeding reg every period (0 = the 1 s
// default).
func NewSampler(reg *Registry, period time.Duration) *Sampler {
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	return &Sampler{
		reg:         reg,
		period:      period,
		done:        make(chan struct{}),
		stopped:     make(chan struct{}),
		nodeGauges:  make(map[string]*nodeGauges),
		dispGauges:  make(map[dispKey]*Gauge),
		workerCache: make(map[string]*workerGauges),
		cbCounters: reg.GaugeVec("codsim_cb_stat",
			"backbone cumulative counters, sampled from cod.Stats", "node", "stat"),
		chFrames: reg.GaugeVec("codsim_cb_channel_frames_total",
			"reflections delivered into a subscription mailbox, per virtual channel",
			"node", "lp", "class", "peer", "channel"),
		chDropped: reg.GaugeVec("codsim_cb_channel_dropped_total",
			"reflections dropped at a full mailbox, per virtual channel",
			"node", "lp", "class", "peer", "channel"),
		chConflated: reg.GaugeVec("codsim_cb_channel_conflated_total",
			"reflections coalesced by latest-value conflation, per virtual channel",
			"node", "lp", "class", "peer", "channel"),
		pubStalls: reg.GaugeVec("codsim_cb_pub_credit_stalls_total",
			"sends that found a reliable subscriber's credit window exhausted",
			"node", "lp", "class"),
		subRows: reg.GaugeVec("codsim_cb_sub_channels",
			"established virtual channels per subscription table row",
			"node", "lp", "class", "policy"),
		// The sub_* lifetime totals survive channel teardown (the
		// per-channel series above vanish with their channel), so a
		// post-sweep scrape still sees what a finished sweep delivered.
		subFrames: reg.GaugeVec("codsim_cb_sub_frames_total",
			"reflections delivered into a subscription's mailbox since it subscribed",
			"node", "lp", "class", "policy"),
		subDropped: reg.GaugeVec("codsim_cb_sub_dropped_total",
			"reflections dropped at the subscription's full mailbox since it subscribed",
			"node", "lp", "class", "policy"),
		subConfl: reg.GaugeVec("codsim_cb_sub_conflated_total",
			"reflections coalesced by latest-value conflation since the subscription began",
			"node", "lp", "class", "policy"),
		dispatchG: reg.GaugeVec("codsim_dist_jobs",
			"dist dispatch state by role (in_flight, pending, granted, done, attempts, redispatches, slots, busy, claimed, finished)",
			"role", "state"),
		workerG: reg.GaugeVec("codsim_dist_worker",
			"coordinator's per-worker progress view (done, throughput_jobs_per_sec, busy, slots, since_seen_sec)",
			"worker", "stat"),
		samples: reg.Counter("codsim_obs_samples_total",
			"sampler scrape passes completed"),
	}
}

// AddNode registers a backbone to scrape under the given node label.
func (s *Sampler) AddNode(name string, bb Backbone) {
	s.mu.Lock()
	s.nodes = append(s.nodes, nodeSource{name: name, bb: bb})
	s.mu.Unlock()
}

// AddDispatch registers a dispatch-state source (Coordinator.Sample or
// Worker.Sample from dist, or any closure yielding a DispatchSample).
func (s *Sampler) AddDispatch(fn func() DispatchSample) {
	s.mu.Lock()
	s.dispatch = append(s.dispatch, fn)
	s.mu.Unlock()
}

// Start launches the background scrape loop. Stop ends it; Start after
// Stop is a no-op.
func (s *Sampler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.stopped)
			tick := time.NewTicker(s.period)
			defer tick.Stop()
			for {
				select {
				case <-s.done:
					return
				case <-tick.C:
					s.SampleOnce()
				}
			}
		}()
	})
}

// Stop ends the scrape loop and waits for the in-flight pass to finish.
// A sampler that was never started stops cleanly too.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() {
		close(s.done)
		s.startOnce.Do(func() { close(s.stopped) }) // never started: release waiters
		<-s.stopped
	})
}

// cbStatNames orders the codsim_cb_stat children; nodeGauges.stats is
// resolved in the same order.
var cbStatNames = [...]string{
	"broadcasts_sent", "channels_up", "updates_sent", "reflects_delivered",
	"mailbox_dropped", "conflations", "credit_stalls", "credits_granted",
	"links_down",
}

// Cache key and child-group types for the resolved-gauge caches. Struct
// map keys compare without allocating, so a steady-state lookup is free.
type (
	pubKey  struct{ lp, class string }
	subKey  struct{ lp, class, policy string }
	chanKey struct {
		lp, class, peer string
		ch              uint32
	}
	dispKey struct{ role, state string }
)

type subGauges struct{ rows, frames, dropped, confl *Gauge }

type chanGauges struct{ frames, dropped, confl *Gauge }

type workerGauges struct{ done, tput, busy, slots, since *Gauge }

// nodeGauges holds one node's resolved children, built lazily as label
// sets first appear and reused on every later tick.
type nodeGauges struct {
	stats     [len(cbStatNames)]*Gauge
	pubStalls map[pubKey]*Gauge
	subs      map[subKey]*subGauges
	chans     map[chanKey]*chanGauges
}

// SampleOnce runs one scrape pass: every registered backbone's stats and
// tables, then every dispatch source. Safe to call concurrently with the
// background loop (passes serialize on scrapeMu; gauge writes are atomic,
// last writer wins).
func (s *Sampler) SampleOnce() {
	s.scrapeMu.Lock()
	defer s.scrapeMu.Unlock()

	s.mu.Lock()
	s.nodeScratch = append(s.nodeScratch[:0], s.nodes...)
	s.dispScratch = append(s.dispScratch[:0], s.dispatch...)
	s.mu.Unlock()

	for _, n := range s.nodeScratch {
		s.sampleNode(n)
	}
	for _, fn := range s.dispScratch {
		s.sampleDispatch(fn())
	}
	s.samples.Inc()
}

// nodeGaugesFor resolves (once) the per-node child cache.
func (s *Sampler) nodeGaugesFor(name string) *nodeGauges {
	g := s.nodeGauges[name]
	if g == nil {
		g = &nodeGauges{
			pubStalls: make(map[pubKey]*Gauge),
			subs:      make(map[subKey]*subGauges),
			chans:     make(map[chanKey]*chanGauges),
		}
		for i, stat := range cbStatNames {
			g.stats[i] = s.cbCounters.With(name, stat)
		}
		s.nodeGauges[name] = g
	}
	return g
}

// sampleNode scrapes one backbone's counters and channel tallies.
func (s *Sampler) sampleNode(n nodeSource) {
	g := s.nodeGaugesFor(n.name)
	st := n.bb.Stats()
	vals := [len(cbStatNames)]int64{
		st.BroadcastsSent.Value(),
		st.ChannelsUp.Value(),
		st.UpdatesSent.Value(),
		st.ReflectsDelivered.Value(),
		st.MailboxDropped.Value(),
		st.Conflations.Value(),
		st.CreditStalls.Value(),
		st.CreditsGranted.Value(),
		st.LinksDown.Value(),
	}
	for i, v := range vals {
		g.stats[i].Set(float64(v))
	}

	pubs, subs := n.bb.Tables()
	for _, row := range pubs {
		if row.Stalls > 0 {
			k := pubKey{lp: row.LP, class: row.Class}
			ch := g.pubStalls[k]
			if ch == nil {
				ch = s.pubStalls.With(n.name, row.LP, row.Class)
				g.pubStalls[k] = ch
			}
			ch.Set(float64(row.Stalls))
		}
	}
	for _, row := range subs {
		k := subKey{lp: row.LP, class: row.Class, policy: row.Policy}
		sg := g.subs[k]
		if sg == nil {
			sg = &subGauges{
				rows:    s.subRows.With(n.name, row.LP, row.Class, row.Policy),
				frames:  s.subFrames.With(n.name, row.LP, row.Class, row.Policy),
				dropped: s.subDropped.With(n.name, row.LP, row.Class, row.Policy),
				confl:   s.subConfl.With(n.name, row.LP, row.Class, row.Policy),
			}
			g.subs[k] = sg
		}
		sg.rows.Set(float64(row.Channels))
		sg.frames.Set(float64(row.Delivered))
		sg.dropped.Set(float64(row.Dropped))
		sg.confl.Set(float64(row.Conflated))
		for _, ch := range row.ByChannel {
			ck := chanKey{lp: row.LP, class: row.Class, peer: ch.Peer, ch: ch.Channel}
			cg := g.chans[ck]
			if cg == nil {
				chID := strconv.FormatUint(uint64(ch.Channel), 10)
				cg = &chanGauges{
					frames:  s.chFrames.With(n.name, row.LP, row.Class, ch.Peer, chID),
					dropped: s.chDropped.With(n.name, row.LP, row.Class, ch.Peer, chID),
					confl:   s.chConflated.With(n.name, row.LP, row.Class, ch.Peer, chID),
				}
				g.chans[ck] = cg
			}
			cg.frames.Set(float64(ch.Delivered))
			cg.dropped.Set(float64(ch.Dropped))
			cg.confl.Set(float64(ch.Conflated))
		}
	}
}

// dispGauge resolves (once) one codsim_dist_jobs child.
func (s *Sampler) dispGauge(role, state string) *Gauge {
	k := dispKey{role: role, state: state}
	g := s.dispGauges[k]
	if g == nil {
		g = s.dispatchG.With(role, state)
		s.dispGauges[k] = g
	}
	return g
}

// sampleDispatch folds one dispatch-state scrape into the gauges.
func (s *Sampler) sampleDispatch(d DispatchSample) {
	role := d.Role
	if role == "" {
		return // zero sample from an unwired source
	}
	switch role {
	case "coordinator":
		s.dispGauge(role, "in_flight").Set(float64(d.Pending + d.Granted))
		s.dispGauge(role, "pending").Set(float64(d.Pending))
		s.dispGauge(role, "granted").Set(float64(d.Granted))
		s.dispGauge(role, "done").Set(float64(d.Done))
		s.dispGauge(role, "attempts").Set(float64(d.Attempts))
		s.dispGauge(role, "redispatches").Set(float64(d.Redispatches))
	default: // worker roles
		s.dispGauge(role, "slots").Set(float64(d.Slots))
		s.dispGauge(role, "busy").Set(float64(d.Busy))
		s.dispGauge(role, "claimed").Set(float64(d.Claimed))
		s.dispGauge(role, "finished").Set(float64(d.Finished))
		s.dispGauge(role, "results_acked").Set(float64(d.ResultsAcked))
	}
	for _, w := range d.Workers {
		wg := s.workerCache[w.Name]
		if wg == nil {
			wg = &workerGauges{
				done:  s.workerG.With(w.Name, "done"),
				tput:  s.workerG.With(w.Name, "throughput_jobs_per_sec"),
				busy:  s.workerG.With(w.Name, "busy"),
				slots: s.workerG.With(w.Name, "slots"),
				since: s.workerG.With(w.Name, "since_seen_sec"),
			}
			s.workerCache[w.Name] = wg
		}
		wg.done.Set(float64(w.Done))
		wg.tput.Set(w.Throughput)
		wg.busy.Set(float64(w.Busy))
		wg.slots.Set(float64(w.Slots))
		wg.since.Set(w.SinceSeen)
	}
}
