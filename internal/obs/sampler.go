package obs

import (
	"strconv"
	"sync"
	"time"

	"codsim/cod"
)

// Backbone is the narrow view of a node the telemetry plane consumes:
// the exported stats counters and table snapshots of the public cod SDK.
// *cod.Node satisfies it. obs deliberately never touches the backbone
// internals — everything it needs crosses this interface.
type Backbone interface {
	Stats() *cod.Stats
	Tables() (pubs, subs []cod.TableEntry)
}

// DispatchSample is one scrape of a dist coordinator's or worker's
// dispatch state. dist produces these (Coordinator.Sample, Worker.Sample)
// and the Sampler turns them into codsim_dist_* series; the struct is
// plain data so obs never has to import dist.
type DispatchSample struct {
	// Role is "coordinator" or "worker"; Name the role instance's segment
	// identity (worker name, or the sweep ID for a coordinator).
	Role string
	Name string

	// Coordinator state: jobs currently pending announce or granted
	// (InFlight = Pending + Granted), finished jobs, attempts dispatched
	// and re-dispatches of lost grants.
	Pending      int64
	Granted      int64
	Done         int64
	Attempts     int64
	Redispatches int64

	// Worker state: slot occupancy and the local job ledger.
	Slots        int64
	Busy         int64
	Claimed      int64
	Finished     int64
	ResultsAcked int64

	// Workers is the coordinator's per-worker progress view, for the
	// dispatch-weighting follow-on: who is fast, who is mute.
	Workers []WorkerSample
}

// WorkerSample is a coordinator's view of one worker's progress.
type WorkerSample struct {
	Name string
	// Done counts results this worker delivered this sweep; Throughput is
	// Done over the time since the sweep started, in jobs per second.
	Done       int64
	Throughput float64
	// Busy and Slots mirror the worker's last heartbeat; SinceSeen is the
	// age of that heartbeat in seconds.
	Busy      int64
	Slots     int64
	SinceSeen float64
}

// nodeSource is one registered backbone with its metric label.
type nodeSource struct {
	name string
	bb   Backbone
}

// Sampler periodically scrapes registered backbones and dispatch sources
// into registry gauges. Construct with NewSampler, register sources, then
// Start it (or call SampleOnce from a test). All methods are safe for
// concurrent use.
type Sampler struct {
	reg    *Registry
	period time.Duration

	mu       sync.Mutex
	nodes    []nodeSource
	dispatch []func() DispatchSample

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	stopped   chan struct{}

	// Pre-registered families; children resolve per label set on sample.
	cbCounters  *GaugeVec
	chFrames    *GaugeVec
	chDropped   *GaugeVec
	chConflated *GaugeVec
	pubStalls   *GaugeVec
	subRows     *GaugeVec
	subFrames   *GaugeVec
	subDropped  *GaugeVec
	subConfl    *GaugeVec
	dispatchG   *GaugeVec
	workerG     *GaugeVec
	samples     *Counter
}

// DefaultSamplePeriod is how often Start scrapes when the period is 0.
const DefaultSamplePeriod = time.Second

// NewSampler returns a sampler feeding reg every period (0 = the 1 s
// default).
func NewSampler(reg *Registry, period time.Duration) *Sampler {
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	return &Sampler{
		reg:     reg,
		period:  period,
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
		cbCounters: reg.GaugeVec("codsim_cb_stat",
			"backbone cumulative counters, sampled from cod.Stats", "node", "stat"),
		chFrames: reg.GaugeVec("codsim_cb_channel_frames_total",
			"reflections delivered into a subscription mailbox, per virtual channel",
			"node", "lp", "class", "peer", "channel"),
		chDropped: reg.GaugeVec("codsim_cb_channel_dropped_total",
			"reflections dropped at a full mailbox, per virtual channel",
			"node", "lp", "class", "peer", "channel"),
		chConflated: reg.GaugeVec("codsim_cb_channel_conflated_total",
			"reflections coalesced by latest-value conflation, per virtual channel",
			"node", "lp", "class", "peer", "channel"),
		pubStalls: reg.GaugeVec("codsim_cb_pub_credit_stalls_total",
			"sends that found a reliable subscriber's credit window exhausted",
			"node", "lp", "class"),
		subRows: reg.GaugeVec("codsim_cb_sub_channels",
			"established virtual channels per subscription table row",
			"node", "lp", "class", "policy"),
		// The sub_* lifetime totals survive channel teardown (the
		// per-channel series above vanish with their channel), so a
		// post-sweep scrape still sees what a finished sweep delivered.
		subFrames: reg.GaugeVec("codsim_cb_sub_frames_total",
			"reflections delivered into a subscription's mailbox since it subscribed",
			"node", "lp", "class", "policy"),
		subDropped: reg.GaugeVec("codsim_cb_sub_dropped_total",
			"reflections dropped at the subscription's full mailbox since it subscribed",
			"node", "lp", "class", "policy"),
		subConfl: reg.GaugeVec("codsim_cb_sub_conflated_total",
			"reflections coalesced by latest-value conflation since the subscription began",
			"node", "lp", "class", "policy"),
		dispatchG: reg.GaugeVec("codsim_dist_jobs",
			"dist dispatch state by role (in_flight, pending, granted, done, attempts, redispatches, slots, busy, claimed, finished)",
			"role", "state"),
		workerG: reg.GaugeVec("codsim_dist_worker",
			"coordinator's per-worker progress view (done, throughput_jobs_per_sec, busy, slots, since_seen_sec)",
			"worker", "stat"),
		samples: reg.Counter("codsim_obs_samples_total",
			"sampler scrape passes completed"),
	}
}

// AddNode registers a backbone to scrape under the given node label.
func (s *Sampler) AddNode(name string, bb Backbone) {
	s.mu.Lock()
	s.nodes = append(s.nodes, nodeSource{name: name, bb: bb})
	s.mu.Unlock()
}

// AddDispatch registers a dispatch-state source (Coordinator.Sample or
// Worker.Sample from dist, or any closure yielding a DispatchSample).
func (s *Sampler) AddDispatch(fn func() DispatchSample) {
	s.mu.Lock()
	s.dispatch = append(s.dispatch, fn)
	s.mu.Unlock()
}

// Start launches the background scrape loop. Stop ends it; Start after
// Stop is a no-op.
func (s *Sampler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.stopped)
			tick := time.NewTicker(s.period)
			defer tick.Stop()
			for {
				select {
				case <-s.done:
					return
				case <-tick.C:
					s.SampleOnce()
				}
			}
		}()
	})
}

// Stop ends the scrape loop and waits for the in-flight pass to finish.
// A sampler that was never started stops cleanly too.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() {
		close(s.done)
		s.startOnce.Do(func() { close(s.stopped) }) // never started: release waiters
		<-s.stopped
	})
}

// SampleOnce runs one scrape pass: every registered backbone's stats and
// tables, then every dispatch source. Safe to call concurrently with the
// background loop (gauge writes are atomic; last writer wins).
func (s *Sampler) SampleOnce() {
	s.mu.Lock()
	nodes := append([]nodeSource(nil), s.nodes...)
	dispatch := append([]func() DispatchSample(nil), s.dispatch...)
	s.mu.Unlock()

	for _, n := range nodes {
		s.sampleNode(n)
	}
	for _, fn := range dispatch {
		s.sampleDispatch(fn())
	}
	s.samples.Inc()
}

// sampleNode scrapes one backbone's counters and channel tallies.
func (s *Sampler) sampleNode(n nodeSource) {
	st := n.bb.Stats()
	for _, c := range []struct {
		stat string
		v    int64
	}{
		{"broadcasts_sent", st.BroadcastsSent.Value()},
		{"channels_up", st.ChannelsUp.Value()},
		{"updates_sent", st.UpdatesSent.Value()},
		{"reflects_delivered", st.ReflectsDelivered.Value()},
		{"mailbox_dropped", st.MailboxDropped.Value()},
		{"conflations", st.Conflations.Value()},
		{"credit_stalls", st.CreditStalls.Value()},
		{"credits_granted", st.CreditsGranted.Value()},
		{"links_down", st.LinksDown.Value()},
	} {
		s.cbCounters.With(n.name, c.stat).Set(float64(c.v))
	}

	pubs, subs := n.bb.Tables()
	for _, row := range pubs {
		if row.Stalls > 0 {
			s.pubStalls.With(n.name, row.LP, row.Class).Set(float64(row.Stalls))
		}
	}
	for _, row := range subs {
		s.subRows.With(n.name, row.LP, row.Class, row.Policy).Set(float64(row.Channels))
		s.subFrames.With(n.name, row.LP, row.Class, row.Policy).Set(float64(row.Delivered))
		s.subDropped.With(n.name, row.LP, row.Class, row.Policy).Set(float64(row.Dropped))
		s.subConfl.With(n.name, row.LP, row.Class, row.Policy).Set(float64(row.Conflated))
		for _, ch := range row.ByChannel {
			chID := strconv.FormatUint(uint64(ch.Channel), 10)
			s.chFrames.With(n.name, row.LP, row.Class, ch.Peer, chID).Set(float64(ch.Delivered))
			s.chDropped.With(n.name, row.LP, row.Class, ch.Peer, chID).Set(float64(ch.Dropped))
			s.chConflated.With(n.name, row.LP, row.Class, ch.Peer, chID).Set(float64(ch.Conflated))
		}
	}
}

// sampleDispatch folds one dispatch-state scrape into the gauges.
func (s *Sampler) sampleDispatch(d DispatchSample) {
	role := d.Role
	if role == "" {
		return // zero sample from an unwired source
	}
	set := func(state string, v int64) {
		s.dispatchG.With(role, state).Set(float64(v))
	}
	switch role {
	case "coordinator":
		set("in_flight", d.Pending+d.Granted)
		set("pending", d.Pending)
		set("granted", d.Granted)
		set("done", d.Done)
		set("attempts", d.Attempts)
		set("redispatches", d.Redispatches)
	default: // worker roles
		set("slots", d.Slots)
		set("busy", d.Busy)
		set("claimed", d.Claimed)
		set("finished", d.Finished)
		set("results_acked", d.ResultsAcked)
	}
	for _, w := range d.Workers {
		s.workerG.With(w.Name, "done").Set(float64(w.Done))
		s.workerG.With(w.Name, "throughput_jobs_per_sec").Set(w.Throughput)
		s.workerG.With(w.Name, "busy").Set(float64(w.Busy))
		s.workerG.With(w.Name, "slots").Set(float64(w.Slots))
		s.workerG.With(w.Name, "since_seen_sec").Set(w.SinceSeen)
	}
}
