package terrain

import (
	"math"
	"sync"
)

// SiteConfig parameterizes the procedural construction site used by the
// training scenario (Fig. 8): a mostly flat yard with gentle undulation, a
// bermed driving route, and a levelled test ground for the licensing exam.
type SiteConfig struct {
	// Width and Depth are the site extent in meters.
	Width, Depth float64
	// Spacing is the grid resolution in meters.
	Spacing float64
	// Roughness scales the rolling undulation amplitude in meters.
	Roughness float64
	// Seed varies the undulation phase pattern deterministically.
	Seed int64
}

// DefaultSite returns the configuration used by the shipped scenario: a
// 200 m × 200 m yard at 2 m resolution with ±0.4 m undulation.
func DefaultSite() SiteConfig {
	return SiteConfig{Width: 200, Depth: 200, Spacing: 2, Roughness: 0.4, Seed: 1}
}

// GenerateSite builds the deterministic construction-site terrain. The
// height field is a sum of incommensurate sinusoids (smooth, bounded,
// seed-shifted) flattened inside the exam test ground circle so cargo
// handling happens on level pavement, plus a gentle berm along the drive
// route edge to exercise terrain following on the way (§3.5, §3.6).
func GenerateSite(cfg SiteConfig) (*Map, error) {
	if cfg.Width <= 0 || cfg.Depth <= 0 {
		cfg = DefaultSite()
	}
	if cfg.Spacing <= 0 {
		cfg.Spacing = 2
	}
	w := int(cfg.Width/cfg.Spacing) + 1
	h := int(cfg.Depth/cfg.Spacing) + 1
	if w < 2 {
		w = 2
	}
	if h < 2 {
		h = 2
	}
	seedPhase := float64(cfg.Seed%360) * math.Pi / 180

	heights := make([]float64, w*h)
	for iz := 0; iz < h; iz++ {
		for ix := 0; ix < w; ix++ {
			x := float64(ix) * cfg.Spacing
			z := float64(iz) * cfg.Spacing
			heights[iz*w+ix] = siteHeight(cfg, seedPhase, x, z)
		}
	}
	return New(w, h, cfg.Spacing, heights)
}

var (
	defaultSiteOnce sync.Once
	defaultSiteMap  *Map
)

// DefaultMap returns the construction-site terrain for DefaultSite(),
// built once and shared: a Map is immutable after construction, so every
// headless run and oracle dry-run — across goroutines — can read the same
// instance instead of regenerating the ~10k-sample height field per run.
func DefaultMap() *Map {
	defaultSiteOnce.Do(func() {
		m, err := GenerateSite(DefaultSite())
		if err != nil {
			// DefaultSite is a fixed, valid configuration.
			panic("terrain: DefaultSite failed to generate: " + err.Error())
		}
		defaultSiteMap = m
	})
	return defaultSiteMap
}

// Test-ground geometry shared with the scenario package: the exam area is a
// levelled circle in the site's north-east quadrant.
const (
	// TestGroundX and TestGroundZ locate the center of the exam circle.
	TestGroundX = 140.0
	TestGroundZ = 140.0
	// TestGroundRadius is the levelled radius around the exam area.
	TestGroundRadius = 45.0
	// StartX and StartZ locate the scenario's vehicle start point.
	StartX = 30.0
	StartZ = 30.0
)

func siteHeight(cfg SiteConfig, phase, x, z float64) float64 {
	r := cfg.Roughness
	// Rolling yard undulation.
	hgt := r * (0.5*math.Sin(x*0.045+phase) +
		0.3*math.Sin(z*0.06+2.1*phase+1.3) +
		0.2*math.Sin((x+z)*0.025+0.7))
	// A soft berm across the middle of the drive route (pitch/roll work).
	berm := 0.6 * r * math.Exp(-sq((math.Hypot(x-80, z-70)-25)/8))
	hgt += berm

	// Level the exam test ground: blend to zero inside the circle.
	d := math.Hypot(x-TestGroundX, z-TestGroundZ)
	if d < TestGroundRadius {
		blend := smooth01((TestGroundRadius - d) / 12)
		hgt *= 1 - blend
	}
	return hgt
}

func sq(v float64) float64 { return v * v }

// smooth01 clamps t to [0,1] and applies the Hermite smoothstep.
func smooth01(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return 1
	}
	return t * t * (3 - 2*t)
}
