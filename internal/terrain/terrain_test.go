package terrain

import (
	"math"
	"testing"
	"testing/quick"

	"codsim/internal/mathx"
)

func flatMap(t *testing.T, w, h int, spacing, height float64) *Map {
	t.Helper()
	hs := make([]float64, w*h)
	for i := range hs {
		hs[i] = height
	}
	m, err := New(w, h, spacing, hs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 5, 1, make([]float64, 5)); err == nil {
		t.Error("1-column grid accepted")
	}
	if _, err := New(5, 1, 1, make([]float64, 5)); err == nil {
		t.Error("1-row grid accepted")
	}
	if _, err := New(2, 2, 0, make([]float64, 4)); err == nil {
		t.Error("zero spacing accepted")
	}
	if _, err := New(2, 2, 1, make([]float64, 3)); err == nil {
		t.Error("wrong height count accepted")
	}
	if _, err := New(2, 2, 1, []float64{0, 0, 0, math.NaN()}); err == nil {
		t.Error("NaN height accepted")
	}
}

func TestHeightAtFlat(t *testing.T) {
	m := flatMap(t, 10, 10, 2, 3.5)
	for _, p := range [][2]float64{{0, 0}, {5.3, 7.7}, {18, 18}, {-5, 30}} {
		if got := m.HeightAt(p[0], p[1]); math.Abs(got-3.5) > 1e-12 {
			t.Errorf("HeightAt(%v,%v) = %v, want 3.5", p[0], p[1], got)
		}
	}
}

func TestHeightAtBilinear(t *testing.T) {
	// 2×2 grid with one raised corner: interior interpolates bilinearly.
	m, err := New(2, 2, 10, []float64{0, 0, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.HeightAt(5, 5); math.Abs(got-1) > 1e-12 { // (0+0+0+4)/4
		t.Errorf("center = %v, want 1", got)
	}
	if got := m.HeightAt(10, 10); math.Abs(got-4) > 1e-12 {
		t.Errorf("corner = %v, want 4", got)
	}
	if got := m.HeightAt(10, 5); math.Abs(got-2) > 1e-12 {
		t.Errorf("edge mid = %v, want 2", got)
	}
}

func TestHeightAtContinuityProperty(t *testing.T) {
	site, err := GenerateSite(DefaultSite())
	if err != nil {
		t.Fatal(err)
	}
	// Nearby points have nearby heights (no seams at cell borders).
	f := func(xRaw, zRaw float64) bool {
		x := math.Mod(math.Abs(xRaw), 190)
		z := math.Mod(math.Abs(zRaw), 190)
		h0 := site.HeightAt(x, z)
		h1 := site.HeightAt(x+0.01, z+0.01)
		return math.Abs(h1-h0) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNormalAtFlat(t *testing.T) {
	m := flatMap(t, 10, 10, 1, 2)
	n := m.NormalAt(4.5, 4.5)
	if !n.NearEq(mathx.V3(0, 1, 0), 1e-9) {
		t.Errorf("flat normal = %v", n)
	}
	if got := m.SlopeAt(4.5, 4.5); math.Abs(got) > 1e-9 {
		t.Errorf("flat slope = %v", got)
	}
}

func TestNormalAtRamp(t *testing.T) {
	// Height rises 1 m per 1 m of X: a 45° ramp.
	w, h := 20, 20
	hs := make([]float64, w*h)
	for iz := 0; iz < h; iz++ {
		for ix := 0; ix < w; ix++ {
			hs[iz*w+ix] = float64(ix)
		}
	}
	m, err := New(w, h, 1, hs)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SlopeAt(10, 10); math.Abs(got-math.Pi/4) > 1e-6 {
		t.Errorf("ramp slope = %v, want π/4", got)
	}
	n := m.NormalAt(10, 10)
	if n.X >= 0 || n.Y <= 0 {
		t.Errorf("ramp normal direction = %v", n)
	}
	// Normal length is 1 by construction.
	if math.Abs(n.Len()-1) > 1e-12 {
		t.Errorf("normal not unit: %v", n.Len())
	}
}

func TestPosture(t *testing.T) {
	// Ramp along X: heading +X (east) must pitch the vehicle, heading -Z
	// (north, default) must roll it.
	w, h := 40, 40
	hs := make([]float64, w*h)
	for iz := 0; iz < h; iz++ {
		for ix := 0; ix < w; ix++ {
			hs[iz*w+ix] = 0.2 * float64(ix)
		}
	}
	m, err := New(w, h, 1, hs)
	if err != nil {
		t.Fatal(err)
	}
	wantGrade := math.Atan2(0.2, 1)

	// Heading π/2 = facing +X (uphill): positive pitch, no roll.
	pitch, roll := m.Posture(20, 20, math.Pi/2, 4, 2.5)
	if math.Abs(pitch-wantGrade) > 1e-6 {
		t.Errorf("uphill pitch = %v, want %v", pitch, wantGrade)
	}
	if math.Abs(roll) > 1e-6 {
		t.Errorf("uphill roll = %v, want 0", roll)
	}

	// Heading 0 = facing -Z: the grade is across the track → roll only.
	// Left side (-X) is downhill, so roll is negative.
	pitch, roll = m.Posture(20, 20, 0, 4, 2.5)
	if math.Abs(pitch) > 1e-6 {
		t.Errorf("cross pitch = %v, want 0", pitch)
	}
	if math.Abs(roll+wantGrade) > 1e-6 {
		t.Errorf("cross roll = %v, want %v", roll, -wantGrade)
	}
}

func TestGenerateSiteProperties(t *testing.T) {
	site, err := GenerateSite(DefaultSite())
	if err != nil {
		t.Fatal(err)
	}
	sx, sz := site.Size()
	if sx < 190 || sz < 190 {
		t.Errorf("site size = %v,%v", sx, sz)
	}
	minH, maxH := site.Bounds()
	if maxH-minH < 0.1 {
		t.Error("site is completely flat; undulation missing")
	}
	if maxH > 3 || minH < -3 {
		t.Errorf("site bounds [%v,%v] implausible", minH, maxH)
	}

	// The exam test ground is levelled: near-zero heights and slopes.
	for _, d := range []float64{0, 5, 10, 20} {
		hgt := site.HeightAt(TestGroundX+d, TestGroundZ)
		if math.Abs(hgt) > 0.05 {
			t.Errorf("test ground height at +%v = %v, want ~0", d, hgt)
		}
	}
	if slope := site.SlopeAt(TestGroundX, TestGroundZ); slope > 0.01 {
		t.Errorf("test ground slope = %v", slope)
	}

	// Determinism: same seed, same terrain.
	site2, err := GenerateSite(DefaultSite())
	if err != nil {
		t.Fatal(err)
	}
	if site.HeightAt(33.3, 77.7) != site2.HeightAt(33.3, 77.7) {
		t.Error("site generation not deterministic")
	}
	// Different seed, different terrain.
	cfg := DefaultSite()
	cfg.Seed = 77
	site3, err := GenerateSite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if site.HeightAt(33.3, 77.7) == site3.HeightAt(33.3, 77.7) {
		t.Error("seed has no effect")
	}
}

func TestGenerateSiteDegenerateConfig(t *testing.T) {
	// Bad config falls back to defaults instead of failing.
	site, err := GenerateSite(SiteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sx, _ := site.Size(); sx <= 0 {
		t.Errorf("fallback size = %v", sx)
	}
}

func BenchmarkHeightAt(b *testing.B) {
	site, err := GenerateSite(DefaultSite())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += site.HeightAt(float64(i%200), float64((i*7)%200))
	}
	_ = sum
}

func BenchmarkPosture(b *testing.B) {
	site, err := GenerateSite(DefaultSite())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		site.Posture(float64(i%150)+10, 60, 0.3, 4, 2.5)
	}
}

// DefaultMap must hand every caller the same generated instance — the
// sharing contract the headless hot path relies on to skip a ~10k-sample
// regeneration per run — and that instance must match a fresh generation
// of the default site.
func TestDefaultMapShared(t *testing.T) {
	a := DefaultMap()
	b := DefaultMap()
	if a != b {
		t.Fatal("DefaultMap returned distinct instances")
	}
	fresh, err := GenerateSite(DefaultSite())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]float64{{0, 0}, {37.5, 91.2}, {140, 140}, {199, 199}} {
		if got, want := a.HeightAt(p[0], p[1]), fresh.HeightAt(p[0], p[1]); got != want {
			t.Fatalf("shared map height at (%.1f,%.1f) = %v, fresh = %v", p[0], p[1], got, want)
		}
	}
}
