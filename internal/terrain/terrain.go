// Package terrain provides the height-field ground model of the virtual
// construction site. The dynamics module samples it for terrain following
// (§3.6): because a mobile crane's center of gravity is high, driving over
// uneven ground is itself a hazard the simulator must reproduce, and the
// carrier's pitch/roll posture on the terrain feeds both the visual display
// and the motion platform.
package terrain

import (
	"fmt"
	"math"

	"codsim/internal/mathx"
)

// Map is a regular-grid height field over the XZ plane with bilinear
// interpolation between samples. It is immutable after construction and
// therefore safe for concurrent reads.
type Map struct {
	w, h    int     // grid vertices in X and Z
	spacing float64 // meters between grid vertices
	heights []float64
	minH    float64
	maxH    float64
}

// New builds a terrain map from a row-major height grid (h rows of w
// samples, row = constant Z). spacing is the distance between neighboring
// samples in meters.
func New(w, h int, spacing float64, heights []float64) (*Map, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("terrain: grid %dx%d too small", w, h)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("terrain: spacing %v must be positive", spacing)
	}
	if len(heights) != w*h {
		return nil, fmt.Errorf("terrain: %d heights for %dx%d grid", len(heights), w, h)
	}
	cp := make([]float64, len(heights))
	copy(cp, heights)
	minH, maxH := math.Inf(1), math.Inf(-1)
	for _, v := range cp {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("terrain: non-finite height %v", v)
		}
		minH = math.Min(minH, v)
		maxH = math.Max(maxH, v)
	}
	return &Map{w: w, h: h, spacing: spacing, heights: cp, minH: minH, maxH: maxH}, nil
}

// Size returns the map extent in meters along X and Z.
func (m *Map) Size() (sx, sz float64) {
	return float64(m.w-1) * m.spacing, float64(m.h-1) * m.spacing
}

// Bounds returns the minimum and maximum sample heights.
func (m *Map) Bounds() (minH, maxH float64) { return m.minH, m.maxH }

// sample returns the grid height at integer coordinates, clamped to the
// edge (the world beyond the site continues flat).
func (m *Map) sample(ix, iz int) float64 {
	if ix < 0 {
		ix = 0
	}
	if ix >= m.w {
		ix = m.w - 1
	}
	if iz < 0 {
		iz = 0
	}
	if iz >= m.h {
		iz = m.h - 1
	}
	return m.heights[iz*m.w+ix]
}

// HeightAt returns the bilinearly interpolated terrain height at (x, z).
func (m *Map) HeightAt(x, z float64) float64 {
	fx := x / m.spacing
	fz := z / m.spacing
	ix := int(math.Floor(fx))
	iz := int(math.Floor(fz))
	tx := fx - float64(ix)
	tz := fz - float64(iz)
	h00 := m.sample(ix, iz)
	h10 := m.sample(ix+1, iz)
	h01 := m.sample(ix, iz+1)
	h11 := m.sample(ix+1, iz+1)
	return mathx.Lerp(mathx.Lerp(h00, h10, tx), mathx.Lerp(h01, h11, tx), tz)
}

// NormalAt returns the unit surface normal at (x, z) from central
// differences of the interpolated height field.
func (m *Map) NormalAt(x, z float64) mathx.Vec3 {
	const d = 0.25 // meters; fine enough for a vehicle footprint
	hx1 := m.HeightAt(x+d, z)
	hx0 := m.HeightAt(x-d, z)
	hz1 := m.HeightAt(x, z+d)
	hz0 := m.HeightAt(x, z-d)
	n := mathx.V3(-(hx1-hx0)/(2*d), 1, -(hz1-hz0)/(2*d))
	return n.Normalize()
}

// SlopeAt returns the terrain gradient angle at (x, z) in radians: 0 on
// flat ground.
func (m *Map) SlopeAt(x, z float64) float64 {
	n := m.NormalAt(x, z)
	return math.Acos(mathx.Clamp(n.Y, -1, 1))
}

// Posture computes the pitch and roll a vehicle with the given heading
// assumes when resting on the terrain at (x, z) — the §3.6 terrain
// following. heading is the yaw about +Y; wheelbase and track are the
// contact rectangle in meters.
func (m *Map) Posture(x, z, heading, wheelbase, track float64) (pitch, roll float64) {
	sin, cos := math.Sincos(heading)
	// Forward and right unit vectors on the ground plane. Heading 0 looks
	// down -Z (the render camera convention).
	fwd := mathx.V3(sin, 0, -cos).Scale(wheelbase / 2)
	right := mathx.V3(cos, 0, sin).Scale(track / 2)

	hFront := m.HeightAt(x+fwd.X, z+fwd.Z)
	hBack := m.HeightAt(x-fwd.X, z-fwd.Z)
	hRight := m.HeightAt(x+right.X, z+right.Z)
	hLeft := m.HeightAt(x-right.X, z-right.Z)

	pitch = math.Atan2(hFront-hBack, wheelbase)
	roll = math.Atan2(hLeft-hRight, track)
	return pitch, roll
}
