package cb

import (
	"sync"
	"testing"

	"codsim/internal/transport"
	"codsim/internal/wire"
)

// drainOrdered asserts that the subscription's buffered reflections arrive
// in strictly increasing Seq order and returns how many were seen.
func drainOrdered(t *testing.T, sub *Subscription, want int) {
	t.Helper()
	var lastSeq uint32
	for n := 0; n < want; n++ {
		r, ok := sub.Next(waitLong)
		if !ok {
			t.Fatalf("reflection %d/%d never arrived", n+1, want)
		}
		if r.Seq != lastSeq+1 {
			t.Fatalf("reflection %d: seq %d after seq %d (out of order)", n, r.Seq, lastSeq)
		}
		lastSeq = r.Seq
	}
}

// TestOrderedDeliveryLocalParallelUpdates hammers one local virtual channel
// from many goroutines and checks the subscriber observes the per-channel
// sequence in order: Seq n+1 must never be delivered before Seq n.
func TestOrderedDeliveryLocalParallelUpdates(t *testing.T) {
	const (
		writers  = 8
		perGoro  = 200
		expected = writers * perGoro
	)
	lan := transport.NewMemLAN()
	node := newBackbone(t, lan, "solo")
	pub, err := node.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := node.SubscribeObjectClass("s", "State", WithQueue(expected))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				if err := pub.Update(float64(i), attrsWith(float64(w))); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	drainOrdered(t, sub, expected)
}

// TestOrderedDeliveryRemoteParallelUpdates is the cross-node variant: the
// updates are serialized over a peer link and must still reflect in
// sequence order on the other computer.
func TestOrderedDeliveryRemoteParallelUpdates(t *testing.T) {
	const (
		writers  = 6
		perGoro  = 100
		expected = writers * perGoro
	)
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "pub-pc")
	subNode := newBackbone(t, lan, "sub-pc")
	pub, err := pubNode.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("s", "State", WithQueue(expected))
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("channel never established")
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				if err := pub.Update(float64(i), attrsWith(1)); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	drainOrdered(t, sub, expected)
}

// TestOrderedDeliveryDuringSubscribeChurn runs parallel Updates while new
// subscriptions of the same class register and withdraw concurrently; every
// subscriber that sticks around must still see its own channel in order.
// Primarily a -race exercise of push vs. channel-table mutation.
func TestOrderedDeliveryDuringSubscribeChurn(t *testing.T) {
	lan := transport.NewMemLAN()
	node := newBackbone(t, lan, "solo")
	pub, err := node.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	stable, err := node.SubscribeObjectClass("stable", "State", WithQueue(4096))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for n := 0; ; n++ {
			select {
			case <-done:
				return
			default:
			}
			s, err := node.SubscribeObjectClass("churner", "State")
			if err != nil {
				t.Errorf("churn subscribe: %v", err)
				return
			}
			_ = s.Close()
		}
	}()

	const (
		writers = 4
		perGoro = 250
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				if err := pub.Update(float64(i), attrsWith(1)); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	churn.Wait()

	// The stable subscriber's channel existed for every push, so it must
	// have received the full strictly-increasing sequence.
	drainOrdered(t, stable, writers*perGoro)
}

// TestSeqRestartsPerChannel pins the scope of the guarantee: each virtual
// channel numbers its own updates from 1.
func TestSeqRestartsPerChannel(t *testing.T) {
	lan := transport.NewMemLAN()
	node := newBackbone(t, lan, "solo")
	pub, err := node.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	a, err := node.SubscribeObjectClass("a", "State")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Update(0, wire.AttrSet{}); err != nil {
		t.Fatal(err)
	}
	bSub, err := node.SubscribeObjectClass("b", "State")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Update(1, wire.AttrSet{}); err != nil {
		t.Fatal(err)
	}
	ra, ok := a.Next(waitLong)
	if !ok || ra.Seq != 1 {
		t.Fatalf("a first seq = %d, %v", ra.Seq, ok)
	}
	ra, ok = a.Next(waitLong)
	if !ok || ra.Seq != 2 {
		t.Fatalf("a second seq = %d, %v", ra.Seq, ok)
	}
	rb, ok := bSub.Next(waitLong)
	if !ok || rb.Seq != 1 {
		t.Fatalf("b first seq = %d, %v (late channel restarts at 1)", rb.Seq, ok)
	}
}
