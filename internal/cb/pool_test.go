package cb

import (
	"fmt"
	"testing"

	"codsim/internal/transport"
	"codsim/internal/wire"
)

// TestPoolNoAlias is the aliasing property test for the pooled wire path:
// reflections handed to a subscriber must never share memory with the
// pooled encode buffers, the read loop's reused decoder arena, or the
// publisher's (possibly pooled) attr scratch. It retains every decoded
// AttrSet while traffic keeps flowing — overwriting any shared buffer many
// times over — then asserts the retained values still read back exactly.
// Run with -race and -count=100 to shake out reuse races:
//
//	go test -race -run Pool -count=100 ./internal/cb/
func TestPoolNoAlias(t *testing.T) {
	lan := transport.NewMemLAN()
	pubBB := newBackbone(t, lan, "pub-pc")
	subBB := newBackbone(t, lan, "sub-pc")

	pub, err := pubBB.PublishObjectClass("dynamics", "CraneState")
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	sub, err := subBB.SubscribeObjectClass("visual", "CraneState", WithReliable(64))
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("subscription never matched")
	}

	const frames = 64
	// Publish from a reused scratch AttrSet — the cod SDK's pooled pattern:
	// the set is mutated in place between Updates, so any retained alias of
	// it would be visibly corrupted.
	scratch := wire.NewAttrSet(3)
	got := make([]Reflection, 0, frames)
	for i := 0; i < frames; i++ {
		scratch.PutInt64(1, int64(i))
		scratch.PutFloat64(2, float64(i)+0.5)
		scratch.PutString(3, fmt.Sprintf("frame-%03d", i))
		if err := pub.Update(float64(i), scratch); err != nil {
			t.Fatalf("Update %d: %v", i, err)
		}
		r, ok := sub.Next(waitLong)
		if !ok {
			t.Fatalf("no reflection for frame %d", i)
		}
		got = append(got, r) // retain: decoder/pool reuse must not touch it
	}

	// All buffers have been reacquired and overwritten dozens of times by
	// now; every retained reflection must still carry its original values.
	for i, r := range got {
		n, ok := r.Attrs.Int64(1)
		if !ok || n != int64(i) {
			t.Fatalf("retained frame %d: attr1 = %d,%v (pooled buffer aliased)", i, n, ok)
		}
		f, ok := r.Attrs.Float64(2)
		if !ok || f != float64(i)+0.5 {
			t.Fatalf("retained frame %d: attr2 = %v,%v (pooled buffer aliased)", i, f, ok)
		}
		s, ok := r.Attrs.String(3)
		if !ok || s != fmt.Sprintf("frame-%03d", i) {
			t.Fatalf("retained frame %d: attr3 = %q,%v (pooled buffer aliased)", i, s, ok)
		}
	}
}

// TestPoolAttrSetReuse round-trips the wire pool itself: acquire, fill,
// release, reacquire, and confirm the recycled set starts empty with its
// arena intact for reuse.
func TestPoolAttrSetReuse(t *testing.T) {
	a := wire.GetAttrSet()
	a.PutFloat64(1, 3.5)
	a.PutString(2, "busy")
	clone := a.Clone()
	wire.PutAttrSet(a)

	b := wire.GetAttrSet()
	defer wire.PutAttrSet(b)
	if b.Len() != 0 {
		t.Fatalf("reacquired AttrSet not reset: %d attrs", b.Len())
	}
	// The clone taken before release must be untouched by the recycling.
	if v, ok := clone.Float64(1); !ok || v != 3.5 {
		t.Fatalf("clone corrupted by pool recycle: %v,%v", v, ok)
	}
	b.PutInt64(9, 42)
	if v, ok := clone.Int64(9); ok {
		t.Fatalf("clone aliases recycled arena: attr9 = %d", v)
	}
}
