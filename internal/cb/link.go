package cb

import (
	"sync"
	"time"

	"codsim/internal/transport"
	"codsim/internal/wire"
)

// peerLink is one multiplexed stream between two CBs. Every virtual channel
// between the two nodes shares it (Fig. 2: the channel is a table-entry
// mapping, not a socket).
type peerLink struct {
	b    *Backbone
	conn transport.Conn

	mu       sync.Mutex
	node     string // remote node name; "" until its first frame arrives
	lastRecv time.Time
	dead     bool

	wmu sync.Mutex // serializes frame writes

	closeOnce sync.Once
}

// startLink wraps a connection and begins its read pump. peerName may be
// empty for accepted connections; it is learned from the first frame.
// Returns nil when the backbone is already closed (the conn is dropped).
func (b *Backbone) startLink(conn transport.Conn, peerName string) *peerLink {
	l := &peerLink{b: b, conn: conn, node: peerName, lastRecv: b.now()}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		_ = conn.Close()
		return nil
	}
	b.links[l] = struct{}{}
	if peerName != "" {
		if _, exists := b.peers[peerName]; !exists {
			b.peers[peerName] = l
		}
	}
	b.wg.Add(1)
	b.mu.Unlock()
	go l.readLoop()
	return l
}

// registerLink records l as the link for node. An existing link for the
// same node is kept; the newer one simply also serves traffic (harmless
// duplicate from simultaneous dialing).
func (b *Backbone) registerLink(l *peerLink, node string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, exists := b.peers[node]; !exists {
		b.peers[node] = l
	}
}

// linkFor returns the established link to node, or nil.
func (b *Backbone) linkFor(node string) *peerLink {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peers[node]
}

// dialPeer returns an existing link to node or dials addr to create one.
func (b *Backbone) dialPeer(node, addr string) (*peerLink, error) {
	if l := b.linkFor(node); l != nil {
		return l, nil
	}
	conn, err := b.ifc.Dial(addr)
	if err != nil {
		return nil, err
	}
	l := b.startLink(conn, node)
	if l == nil {
		return nil, ErrClosed
	}
	return l, nil
}

// send writes one frame to the link.
func (l *peerLink) send(f wire.Frame) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	_, err := f.WriteTo(l.conn)
	return err
}

// lastRecvTime returns the time of the last inbound frame.
func (l *peerLink) lastRecvTime() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastRecv
}

// peer returns the remote node name, which may still be empty.
func (l *peerLink) peer() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.node
}

// shutdown closes the underlying connection, unblocking readLoop.
func (l *peerLink) shutdown() {
	l.closeOnce.Do(func() { _ = l.conn.Close() })
}

// readLoop pumps inbound frames to the backbone until the link dies.
func (l *peerLink) readLoop() {
	defer l.b.wg.Done()
	for {
		f, err := wire.ReadFrame(l.conn)
		if err != nil {
			l.b.linkDown(l)
			return
		}
		l.mu.Lock()
		l.lastRecv = l.b.now()
		if l.node == "" && f.Node != "" {
			l.node = f.Node
			l.mu.Unlock()
			l.b.registerLink(l, f.Node)
		} else {
			l.mu.Unlock()
		}
		l.b.handleFrame(l, f)
	}
}

// linkDown tears down a dead link: every virtual channel riding it is
// removed, and affected subscription entries fall back to fast
// re-broadcast so replacement publishers are found (§2.3 resilience).
func (b *Backbone) linkDown(l *peerLink) {
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		return
	}
	l.dead = true
	node := l.node
	l.mu.Unlock()

	l.shutdown()

	b.mu.Lock()
	delete(b.links, l)
	if node != "" && b.peers[node] == l {
		delete(b.peers, node)
	}
	// Publisher side: drop out-channels using this link, releasing any
	// publisher stalled on a reliable window.
	for class, chans := range b.outs {
		kept := chans[:0]
		for _, oc := range chans {
			if oc.link == l {
				b.removeOutLocked(oc)
				continue
			}
			kept = append(kept, oc)
		}
		b.outs[class] = kept
	}
	// Subscriber side: drop in-channels and re-arm fast broadcasting.
	for id, ic := range b.ins {
		if ic.link != l {
			continue
		}
		delete(b.ins, id)
		delete(b.inSubKeys, ic.key)
		if sub := ic.sub; sub != nil {
			delete(sub.channels, id)
			sub.mbox.forgetChannel(id)
			sub.lastBroadcast = time.Time{} // due immediately
		}
	}
	closed := b.closed
	b.mu.Unlock()

	if !closed {
		b.stats.LinksDown.Inc()
	}
}

// removeOutLocked unindexes one publisher-side channel and releases any
// publisher stalled on its credit window. The caller holds b.mu and owns
// removing oc from b.outs.
func (b *Backbone) removeOutLocked(oc *outChannel) {
	delete(b.outKeys, oc.key)
	delete(b.outByChan, linkChan{link: oc.link, id: oc.remoteChan})
	oc.release()
}
