package cb

import (
	"encoding/binary"
	"sync"
	"time"

	"codsim/internal/transport"
	"codsim/internal/wire"
)

// peerLink is one multiplexed stream between two CBs. Every virtual channel
// between the two nodes shares it (Fig. 2: the channel is a table-entry
// mapping, not a socket).
type peerLink struct {
	b    *Backbone
	conn transport.Conn

	mu       sync.Mutex
	node     string // remote node name; "" until its first frame arrives
	lastRecv time.Time
	dead     bool

	wmu sync.Mutex // serializes frame writes

	closeOnce sync.Once
}

// startLink wraps a connection and begins its read pump. peerName may be
// empty for accepted connections; it is learned from the first frame.
// Returns nil when the backbone is already closed (the conn is dropped).
func (b *Backbone) startLink(conn transport.Conn, peerName string) *peerLink {
	l := &peerLink{b: b, conn: conn, node: peerName, lastRecv: b.now()}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		_ = conn.Close()
		return nil
	}
	b.links[l] = struct{}{}
	if peerName != "" {
		if _, exists := b.peers[peerName]; !exists {
			b.peers[peerName] = l
		}
	}
	b.wg.Add(1)
	b.mu.Unlock()
	go l.readLoop()
	return l
}

// registerLink records l as the link for node. An existing link for the
// same node is kept; the newer one simply also serves traffic (harmless
// duplicate from simultaneous dialing).
func (b *Backbone) registerLink(l *peerLink, node string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, exists := b.peers[node]; !exists {
		b.peers[node] = l
	}
}

// linkFor returns the established link to node, or nil.
func (b *Backbone) linkFor(node string) *peerLink {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peers[node]
}

// dialPeer returns an existing link to node or dials addr to create one.
func (b *Backbone) dialPeer(node, addr string) (*peerLink, error) {
	if l := b.linkFor(node); l != nil {
		return l, nil
	}
	conn, err := b.ifc.Dial(addr)
	if err != nil {
		return nil, err
	}
	l := b.startLink(conn, node)
	if l == nil {
		return nil, ErrClosed
	}
	return l, nil
}

// encBufPool recycles frame-encode buffers across sends and batches, so
// a steady-state link write allocates nothing.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// appendFramed appends one length-prefixed encoded frame onto buf (the
// stream framing). On error buf is returned truncated to its input length.
func appendFramed(buf []byte, f wire.Frame) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf, err := f.AppendEncode(buf)
	if err != nil {
		return buf[:start], err
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf, nil
}

// send writes one frame to the link: encoded into a pooled buffer, length
// prefix and body issued as a single conn.Write (one transport copy).
func (l *peerLink) send(f wire.Frame) error {
	bp := encBufPool.Get().(*[]byte)
	buf, err := appendFramed((*bp)[:0], f)
	if err == nil {
		l.wmu.Lock()
		_, err = l.conn.Write(buf)
		l.wmu.Unlock()
	}
	*bp = buf[:0]
	encBufPool.Put(bp)
	return err
}

// pushScratch is the per-push working set, pooled so the routing hot
// path allocates nothing: the snapshot of the class's out-channels plus
// a write batch that coalesces consecutive frames bound for the same
// link into one conn.Write (one syscall / transport copy for several
// frames).
//
// Ordering: every staged frame's out-channel keeps its sendMu held from
// seq assignment until flush, so no later seq on that channel can be
// assigned — let alone written — before the batch hits the wire; wire
// order stays seq order per channel. Deadlock safety: push iterates the
// class's channel slice in a fixed order, so concurrent pushes acquire
// sendMus monotonically (skips only move forward), and a push about to
// park on a credit window flushes (releasing every held sendMu) first.
type pushScratch struct {
	chans   []*outChannel
	link    *peerLink // batch target; nil when the batch is empty
	buf     *[]byte   // pooled encode buffer, lazily taken from encBufPool
	members []*outChannel
}

var pushScratchPool = sync.Pool{New: func() any { return new(pushScratch) }}

func getPushScratch() *pushScratch { return pushScratchPool.Get().(*pushScratch) }

// put returns the scratch to the pool, dropping channel references so
// the pool never keeps torn-down channels alive.
func (sc *pushScratch) put() {
	for i := range sc.chans {
		sc.chans[i] = nil
	}
	sc.chans = sc.chans[:0]
	if sc.buf != nil {
		*sc.buf = (*sc.buf)[:0]
		encBufPool.Put(sc.buf)
		sc.buf = nil
	}
	sc.link = nil
	sc.members = sc.members[:0]
	pushScratchPool.Put(sc)
}

// stage encodes f into the batch bound for oc.link. The caller holds
// oc.sendMu; on success it stays held until flush. On error (the frame
// cannot be encoded — it never reaches the wire, the link is fine) the
// batch is unchanged and the caller keeps ownership of the lock.
func (sc *pushScratch) stage(oc *outChannel, f wire.Frame) error {
	if sc.buf == nil {
		sc.buf = encBufPool.Get().(*[]byte)
	}
	buf, err := appendFramed(*sc.buf, f)
	*sc.buf = buf
	if err != nil {
		return err
	}
	sc.link = oc.link
	sc.members = append(sc.members, oc)
	return nil
}

// flush writes the staged frames in a single conn.Write, releases every
// member channel's send slot, and returns the number of frames that made
// the wire (0 after a write error, which tears the link down).
func (sc *pushScratch) flush(b *Backbone) int {
	if sc.link == nil {
		return 0
	}
	l := sc.link
	l.wmu.Lock()
	_, err := l.conn.Write(*sc.buf)
	l.wmu.Unlock()
	n := len(sc.members)
	for i, oc := range sc.members {
		oc.sendMu.Unlock()
		sc.members[i] = nil
	}
	sc.members = sc.members[:0]
	*sc.buf = (*sc.buf)[:0]
	sc.link = nil
	if err != nil {
		b.linkDown(l)
		return 0
	}
	b.stats.UpdatesSent.Add(int64(n))
	return n
}

// lastRecvTime returns the time of the last inbound frame.
func (l *peerLink) lastRecvTime() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastRecv
}

// peer returns the remote node name, which may still be empty.
func (l *peerLink) peer() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.node
}

// shutdown closes the underlying connection, unblocking readLoop.
func (l *peerLink) shutdown() {
	l.closeOnce.Do(func() { _ = l.conn.Close() })
}

// readLoop pumps inbound frames to the backbone until the link dies. The
// loop owns one wire.Decoder and one Frame, reused for every inbound
// frame: the body buffer, the attr arena, and the interned Node/LP/Class
// strings all amortize to zero allocations. The decoded frame is only
// valid until the next iteration — any handler that retains attributes
// clones them first (handleUpdate's Reflection; the copy-at-boundary
// rule), which is what makes the reuse safe.
func (l *peerLink) readLoop() {
	defer l.b.wg.Done()
	dec := wire.NewDecoder()
	var f wire.Frame
	for {
		if err := dec.DecodeFrom(l.conn, &f); err != nil {
			l.b.linkDown(l)
			return
		}
		l.mu.Lock()
		l.lastRecv = l.b.now()
		if l.node == "" && f.Node != "" {
			l.node = f.Node
			l.mu.Unlock()
			l.b.registerLink(l, f.Node)
		} else {
			l.mu.Unlock()
		}
		l.b.handleFrame(l, f)
	}
}

// linkDown tears down a dead link: every virtual channel riding it is
// removed, and affected subscription entries fall back to fast
// re-broadcast so replacement publishers are found (§2.3 resilience).
func (b *Backbone) linkDown(l *peerLink) {
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		return
	}
	l.dead = true
	node := l.node
	l.mu.Unlock()

	l.shutdown()

	b.mu.Lock()
	delete(b.links, l)
	if node != "" && b.peers[node] == l {
		delete(b.peers, node)
	}
	// Publisher side: drop out-channels using this link, releasing any
	// publisher stalled on a reliable window.
	for class, chans := range b.outs {
		kept := chans[:0]
		for _, oc := range chans {
			if oc.link == l {
				b.removeOutLocked(oc)
				continue
			}
			kept = append(kept, oc)
		}
		b.outs[class] = kept
	}
	// Subscriber side: drop in-channels and re-arm fast broadcasting.
	for id, ic := range b.ins {
		if ic.link != l {
			continue
		}
		delete(b.ins, id)
		delete(b.inSubKeys, ic.key)
		if sub := ic.sub; sub != nil {
			delete(sub.channels, id)
			sub.mbox.forgetChannel(id)
			sub.lastBroadcast = time.Time{} // due immediately
		}
	}
	closed := b.closed
	b.mu.Unlock()

	if !closed {
		b.stats.LinksDown.Inc()
	}
}

// removeOutLocked unindexes one publisher-side channel and releases any
// publisher stalled on its credit window. The caller holds b.mu and owns
// removing oc from b.outs.
func (b *Backbone) removeOutLocked(oc *outChannel) {
	delete(b.outKeys, oc.key)
	delete(b.outByChan, linkChan{link: oc.link, id: oc.remoteChan})
	oc.release()
}
