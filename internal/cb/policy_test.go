package cb

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"codsim/internal/transport"
)

// waitChannels blocks until the publication routes into n channels.
func waitChannels(t *testing.T, pub *Publication, n int) {
	t.Helper()
	if !pub.WaitChannels(n, waitLong) {
		t.Fatalf("publication never reached %d channel(s)", n)
	}
}

// TestLatestValueStalledSubscriberConflates pins the conflating contract
// across a remote channel: a subscriber that stops polling keeps bounded
// mailbox memory — one slot per channel at depth — and resumes on the
// newest reflection per publisher, with the losses counted as
// conflations, not drops.
func TestLatestValueStalledSubscriberConflates(t *testing.T) {
	lan := transport.NewMemLAN()
	// Two publisher NODES: virtual channels are deduplicated per node, so
	// per-channel conflation needs the publishers on separate computers.
	pubNodeA := newBackbone(t, lan, "pub-pc-a")
	pubNodeB := newBackbone(t, lan, "pub-pc-b")
	subNode := newBackbone(t, lan, "sub-pc")

	pubA, err := pubNodeA.PublishObjectClass("lpA", "State")
	if err != nil {
		t.Fatal(err)
	}
	pubB, err := pubNodeB.PublishObjectClass("lpB", "State")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("s", "State", WithQueue(4), WithLatestValue())
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("never matched")
	}
	waitChannels(t, pubA, 1)
	waitChannels(t, pubB, 1)

	// The subscriber is stalled: push far more state than the mailbox
	// holds, from two publishers (two virtual channels).
	const rounds = 200
	for i := 1; i <= rounds; i++ {
		if err := pubA.Update(float64(i), attrsWith(float64(i))); err != nil {
			t.Fatalf("pubA update %d: %v", i, err)
		}
		if err := pubB.Update(float64(i), attrsWith(float64(-i))); err != nil {
			t.Fatalf("pubB update %d: %v", i, err)
		}
	}

	// Remote delivery is asynchronous; wait for the pipeline to drain
	// into the mailbox before judging.
	deadline := time.Now().Add(waitLong)
	for subNode.Stats().ReflectsDelivered.Value() < 2*rounds && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if pend := sub.Pending(); pend > 4 {
		t.Fatalf("stalled latest-value mailbox holds %d > depth 4", pend)
	}
	if subNode.Stats().Conflations.Value() == 0 {
		t.Error("no conflations counted")
	}
	if subNode.Stats().MailboxDropped.Value() != 0 {
		t.Error("latest-value stall counted drops")
	}

	// Resume: the newest value per channel must be present.
	got := map[float64]bool{}
	for {
		r, ok := sub.Poll()
		if !ok {
			break
		}
		if v, ok := r.Attrs.Float64(1); ok {
			got[v] = true
		}
	}
	if !got[rounds] || !got[-rounds] {
		t.Fatalf("resumed without the newest per channel: %v", got)
	}

	// The per-channel tallies name both conflated channels.
	_, subs := subNode.Tables()
	if len(subs) != 1 {
		t.Fatalf("sub table rows = %d", len(subs))
	}
	row := subs[0]
	if row.Policy != "latest-value" || row.Conflated == 0 || row.Dropped != 0 {
		t.Errorf("row = %+v, want conflated latest-value", row)
	}
	if len(row.ByChannel) != 2 {
		t.Errorf("ByChannel = %+v, want 2 channels", row.ByChannel)
	}
	for _, tally := range row.ByChannel {
		if tally.Peer == "" || tally.Conflated == 0 {
			t.Errorf("channel tally %+v, want conflations attributed to a named peer", tally)
		}
	}
}

// TestReliableBackpressureStallsAndDrains pins the credit window end to
// end: a stalled subscriber lets the publisher send exactly the window,
// then Update reports ErrWindowFull (nothing dropped); draining the
// mailbox grants credits and the publisher resumes, with every update
// arriving exactly once in order.
func TestReliableBackpressureStallsAndDrains(t *testing.T) {
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "pub-pc")
	subNode := newBackbone(t, lan, "sub-pc")

	pub, err := pubNode.PublishObjectClass("p", "Jobs")
	if err != nil {
		t.Fatal(err)
	}
	const window = 8
	sub, err := subNode.SubscribeObjectClass("s", "Jobs", WithReliable(window))
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("never matched")
	}
	waitChannels(t, pub, 1)

	// Fill the window against a stalled subscriber.
	sent := 0
	deadline := time.Now().Add(waitLong)
	for {
		err := pub.Update(float64(sent), attrsWith(float64(sent+1)))
		if errors.Is(err, ErrWindowFull) {
			break
		}
		if err != nil {
			t.Fatalf("update %d: %v", sent, err)
		}
		sent++
		if sent > window {
			t.Fatalf("sent %d > window %d without a stall", sent, window)
		}
		if time.Now().After(deadline) {
			t.Fatal("never hit the window")
		}
	}
	if sent != window {
		t.Fatalf("window admitted %d, want %d", sent, window)
	}
	if pubNode.Stats().CreditStalls.Value() == 0 {
		t.Error("stall not counted")
	}

	// Everything sent sits in the mailbox — nothing was dropped.
	deadline = time.Now().Add(waitLong)
	for sub.Pending() < window && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if pend := sub.Pending(); pend != window {
		t.Fatalf("pending %d, want the full window %d", pend, window)
	}

	// Drain two: credits flow back (quarter-window batches), reopening
	// the window for more sends.
	for i := 0; i < 2; i++ {
		r, ok := sub.Next(waitLong)
		if !ok {
			t.Fatal("drain lost a reflection")
		}
		if v, _ := r.Attrs.Float64(1); v != float64(i+1) {
			t.Fatalf("drained %v, want %d (in order)", v, i+1)
		}
	}
	deadline = time.Now().Add(waitLong)
	for {
		err := pub.Update(99, attrsWith(99))
		if err == nil {
			break
		}
		if !errors.Is(err, ErrWindowFull) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("window never reopened after consumption")
		}
		time.Sleep(time.Millisecond)
	}

	// Full drain: everything that was accepted arrives exactly once, in
	// sequence order.
	want := []float64{3, 4, 5, 6, 7, 8, 99}
	for _, w := range want {
		r, ok := sub.Next(waitLong)
		if !ok {
			t.Fatalf("reflection %v never arrived", w)
		}
		if v, _ := r.Attrs.Float64(1); v != w {
			t.Fatalf("got %v, want %v", v, w)
		}
	}
	if pend := sub.Pending(); pend != 0 {
		t.Fatalf("trailing pending %d", pend)
	}
}

// TestReliableUpdateContextBlocksUntilConsumed: the blocking publish form
// parks the producer mid-stall and resumes it as the subscriber consumes;
// a canceled context releases it with ctx.Err().
func TestReliableUpdateContextBlocksUntilConsumed(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo") // local fast path exercises the same window
	pub, err := b.PublishObjectClass("p", "Jobs")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.SubscribeObjectClass("s", "Jobs", WithReliable(1)) // window=1 edge
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Update(0, attrsWith(1)); err != nil {
		t.Fatal(err)
	}
	if err := pub.Update(0, attrsWith(2)); !errors.Is(err, ErrWindowFull) {
		t.Fatalf("window=1 second send err = %v, want ErrWindowFull", err)
	}

	unblocked := make(chan error, 1)
	go func() {
		unblocked <- pub.UpdateContext(context.Background(), 0, attrsWith(2))
	}()
	select {
	case err := <-unblocked:
		t.Fatalf("UpdateContext returned %v before consumption", err)
	case <-time.After(50 * time.Millisecond):
	}
	if r, ok := sub.Poll(); !ok {
		t.Fatal("first update missing")
	} else if v, _ := r.Attrs.Float64(1); v != 1 {
		t.Fatalf("first = %v", v)
	}
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatalf("unblocked with %v", err)
		}
	case <-time.After(waitLong):
		t.Fatal("consumption never released the publisher")
	}
	if r, ok := sub.Poll(); !ok {
		t.Fatal("second update missing")
	} else if v, _ := r.Attrs.Float64(1); v != 2 {
		t.Fatalf("second = %v", v)
	}

	// Cancellation mid-stall.
	if err := pub.Update(0, attrsWith(3)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if err := pub.UpdateContext(ctx, 0, attrsWith(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled stall returned %v", err)
	}
}

// TestReliableSubscriberDeathReleasesPublisher: a subscriber that dies
// mid-stall (its registration closes) must release the blocked publisher
// rather than wedge it forever.
func TestReliableSubscriberDeathReleasesPublisher(t *testing.T) {
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "pub-pc")
	subNode := newBackbone(t, lan, "sub-pc")
	pub, err := pubNode.PublishObjectClass("p", "Jobs")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("s", "Jobs", WithReliable(1))
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("never matched")
	}
	waitChannels(t, pub, 1)
	if err := pub.Update(0, attrsWith(1)); err != nil {
		t.Fatal(err)
	}

	unblocked := make(chan error, 1)
	go func() {
		unblocked <- pub.UpdateContext(context.Background(), 0, attrsWith(2))
	}()
	select {
	case err := <-unblocked:
		t.Fatalf("UpdateContext returned %v before the stall", err)
	case <-time.After(50 * time.Millisecond):
	}
	_ = sub.Close() // scoped BYE → publisher drops the channel and wakes
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatalf("released with %v", err)
		}
	case <-time.After(waitLong):
		t.Fatal("subscriber death left the publisher stalled")
	}
}

// TestLegacyHandshakeGetsDropOldest pins the compatibility rule: a
// policy-less CHANNEL CONNECTION — what every pre-policy build sends, and
// exactly what a default drop-oldest subscription sends today — yields
// the legacy drop-oldest behavior on the publisher: no stall, no
// conflation, oldest dropped at the full mailbox.
func TestLegacyHandshakeGetsDropOldest(t *testing.T) {
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "pub-pc")
	subNode := newBackbone(t, lan, "sub-pc")
	pub, err := pubNode.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("s", "State", WithQueue(4))
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("never matched")
	}
	waitChannels(t, pub, 1)

	const rounds = 64
	for i := 1; i <= rounds; i++ {
		// A legacy publisher never observes backpressure.
		if err := pub.Update(float64(i), attrsWith(float64(i))); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(waitLong)
	for subNode.Stats().ReflectsDelivered.Value() < rounds && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := pubNode.Stats().CreditStalls.Value(); got != 0 {
		t.Errorf("legacy channel stalled %d times", got)
	}
	if got := subNode.Stats().Conflations.Value(); got != 0 {
		t.Errorf("legacy channel conflated %d times", got)
	}
	if subNode.Stats().MailboxDropped.Value() == 0 {
		t.Error("overflow did not drop-oldest")
	}
	// The survivors are the newest depth-many, in order.
	for want := float64(rounds - 3); want <= rounds; want++ {
		r, ok := sub.Poll()
		if !ok {
			t.Fatalf("reflection %v missing", want)
		}
		if v, _ := r.Attrs.Float64(1); v != want {
			t.Fatalf("got %v, want %v", v, want)
		}
	}
}

// TestSlowSubscriberMemLANSmoke is the acceptance scenario run by
// scripts/check.sh: a MemLAN federation with a subscriber stalled for
// 2 s. The LatestValue channel keeps bounded memory and resumes on the
// newest state; the Reliable publisher blocks instead of dropping, and
// after the stall every reliable message is accounted for.
func TestSlowSubscriberMemLANSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("2 s stall")
	}
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "sim-pc")
	subNode := newBackbone(t, lan, "display-pc")

	statePub, err := pubNode.PublishObjectClass("dynamics", "fom.CraneState")
	if err != nil {
		t.Fatal(err)
	}
	cmdPub, err := pubNode.PublishObjectClass("instructor", "fom.InstructorCmd")
	if err != nil {
		t.Fatal(err)
	}
	stateSub, err := subNode.SubscribeObjectClass("display", "fom.CraneState", WithQueue(8), WithLatestValue())
	if err != nil {
		t.Fatal(err)
	}
	cmdSub, err := subNode.SubscribeObjectClass("display", "fom.InstructorCmd", WithReliable(16))
	if err != nil {
		t.Fatal(err)
	}
	if !stateSub.WaitMatched(waitLong) || !cmdSub.WaitMatched(waitLong) {
		t.Fatal("never matched")
	}
	waitChannels(t, statePub, 1)
	waitChannels(t, cmdPub, 1)

	// 2 s of 60 Hz state plus a command stream into a stalled subscriber.
	var wg sync.WaitGroup
	wg.Add(2)
	stateSent, cmdSent := 0, 0
	go func() {
		defer wg.Done()
		tick := time.NewTicker(time.Second / 60)
		defer tick.Stop()
		for start := time.Now(); time.Since(start) < 2*time.Second; {
			<-tick.C
			stateSent++
			if err := statePub.Update(float64(stateSent), attrsWith(float64(stateSent))); err != nil {
				t.Errorf("state update: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		// The blocking publisher: it stalls on the full window (no error,
		// no drop) until the 2 s stall budget expires. A canceled stall
		// never delivered, so cmdSent counts exactly the sent updates.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		for {
			err := cmdPub.UpdateContext(ctx, float64(cmdSent+1), attrsWith(float64(cmdSent+1)))
			if errors.Is(err, context.DeadlineExceeded) {
				return // parked on the window for the rest of the stall: correct
			}
			if err != nil {
				t.Errorf("cmd update: %v", err)
				return
			}
			cmdSent++
		}
	}()
	wg.Wait()

	if pend := stateSub.Pending(); pend > 8 {
		t.Fatalf("stalled state mailbox grew to %d", pend)
	}
	if pubNode.Stats().CreditStalls.Value() == 0 {
		t.Error("the reliable publisher never felt backpressure")
	}
	// The final state frame may still be crossing the (asynchronous)
	// link; Latest converges on it within the settle window.
	var newest float64
	for deadline := time.Now().Add(waitLong); time.Now().Before(deadline); {
		if r, ok := stateSub.Latest(); ok {
			newest, _ = r.Attrs.Float64(1)
		}
		if newest == float64(stateSent) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if newest != float64(stateSent) {
		t.Fatalf("resumed on state %v, want newest %d", newest, stateSent)
	}
	// Reliable: window-many commands in flight at most; drain them all
	// in order and the publisher's outstanding count reconciles exactly.
	got := 0
	for {
		r, ok := cmdSub.Next(100 * time.Millisecond)
		if !ok {
			break
		}
		got++
		if v, _ := r.Attrs.Float64(1); v != float64(got) {
			t.Fatalf("command %d arrived as %v (loss or reorder)", got, v)
		}
	}
	if got != cmdSent {
		t.Fatalf("drained %d commands, sent %d — reliable channel lost data", got, cmdSent)
	}
	t.Logf("stall survived: %d states conflated into 8 slots, %d commands delivered losslessly (stalls=%d)",
		stateSent, cmdSent, pubNode.Stats().CreditStalls.Value())
}
