package cb

import (
	"context"
	"fmt"
	"sync"
	"time"

	"codsim/internal/wire"
)

// Reflection is one delivered update: the subscriber-side view of an
// UPDATE ATTRIBUTE VALUE frame (HLA's Reflect Attribute Values callback).
type Reflection struct {
	Class   string
	PubNode string
	PubLP   string
	Channel uint32
	Seq     uint32
	Time    float64
	Null    bool // Chandy–Misra null message: time only, no attributes
	Attrs   wire.AttrSet
}

// outChannel is the publisher half of a virtual channel: the link (nil for
// the in-process fast path) plus the subscriber-assigned channel ID.
type outChannel struct {
	class      string
	key        chanKey
	link       *peerLink     // nil → local delivery
	local      *Subscription // set when link == nil
	remoteChan uint32
	policy     wire.Policy
	window     uint32 // reliable send window (PolicyReliable only)

	// sendMu serializes sequence assignment *and* the matching deliver/send
	// on this channel, so the per-channel delivery order always equals the
	// sequence order even when several goroutines Update concurrently.
	sendMu sync.Mutex
	seq    uint32 // guarded by sendMu

	// Credit accounting of a reliable channel. consumed is the cumulative
	// count of updates the subscriber has drained from its mailbox,
	// reported by CREDIT frames and heartbeat piggybacks; the publisher
	// stalls while seq-consumed reaches the window. gone flips when the
	// channel is torn down, releasing any stalled publisher.
	credMu   sync.Mutex
	consumed uint32
	gone     bool
	stalls   uint64        // credit-stall episodes, surfaced in Tables
	creditCh chan struct{} // capacity 1; poked on credit arrival / teardown
}

// newOutChannel builds the publisher half with its policy contract.
func newOutChannel(class string, key chanKey, link *peerLink, local *Subscription, remoteChan uint32, policy wire.Policy, window uint32) *outChannel {
	oc := &outChannel{
		class: class, key: key, link: link, local: local,
		remoteChan: remoteChan, policy: policy, window: window,
	}
	if policy == wire.PolicyReliable {
		if oc.window == 0 {
			oc.window = DefaultCreditWindow
		}
		oc.creditCh = make(chan struct{}, 1)
	}
	return oc
}

// setConsumed folds a cumulative consumption report into the window state.
// Counts may arrive out of order (immediate CREDIT frames race heartbeat
// piggybacks), so only forward movement is kept.
func (oc *outChannel) setConsumed(cum uint32) {
	if oc.policy != wire.PolicyReliable {
		return
	}
	oc.credMu.Lock()
	if int32(cum-oc.consumed) > 0 {
		oc.consumed = cum
	}
	oc.credMu.Unlock()
	select {
	case oc.creditCh <- struct{}{}:
	default:
	}
}

// release marks the channel dead and wakes any publisher stalled on its
// window — a subscriber dying mid-stall must not wedge the producer.
func (oc *outChannel) release() {
	if oc.policy != wire.PolicyReliable {
		return
	}
	oc.credMu.Lock()
	oc.gone = true
	oc.credMu.Unlock()
	select {
	case oc.creditCh <- struct{}{}:
	default:
	}
}

// windowOpen reports whether the reliable channel can take another update.
// Caller holds sendMu (guarding seq).
func (oc *outChannel) windowOpen() bool {
	oc.credMu.Lock()
	defer oc.credMu.Unlock()
	return oc.gone || oc.seq-oc.consumed < oc.window
}

// acquireSend takes the channel's send slot once the credit window has
// room. The slot is NOT held while parked — a blocking send stalled on
// credits must not block nulls or non-blocking probes on the same
// channel — so the window is re-checked each time the slot is re-taken.
// A nil ctx is the non-blocking form: it reports false on a full window.
// stalled tells the retry form that this stall episode was already
// counted by a preceding non-blocking probe. On (true, nil) the caller
// holds sendMu.
func (oc *outChannel) acquireSend(ctx context.Context, stats *Stats, stalled bool) (bool, error) {
	for {
		oc.sendMu.Lock()
		if oc.windowOpen() {
			// Chain the wakeup: a grant pokes at most one parked sender
			// (creditCh holds one token), so pass the token on while the
			// window has room — without this, coalesced grants strand
			// other waiters even though slots are free.
			select {
			case oc.creditCh <- struct{}{}:
			default:
			}
			return true, nil
		}
		oc.sendMu.Unlock()
		if !stalled {
			stalled = true
			oc.credMu.Lock()
			oc.stalls++
			oc.credMu.Unlock()
			stats.CreditStalls.Inc()
		}
		if ctx == nil {
			return false, nil
		}
		select {
		case <-oc.creditCh:
		case <-ctx.Done():
			return false, ctx.Err()
		}
	}
}

// inChannel is the subscriber half: the binding from a channel ID to the
// local subscription entry. established flips when the publisher confirms
// with the second ACKNOWLEDGE (AckChannelUp) — only then is the channel
// counted as matched, because until the publisher records its half, pushed
// updates would route into the void.
//
// Credit bookkeeping of a reliable subscription lives in the mailbox
// (per-channel cumulative consumption under the mailbox's own lock), so
// the consume hot path touches the global backbone mutex only when a
// grant is actually due.
type inChannel struct {
	id          uint32
	key         chanKey
	link        *peerLink // nil for the in-process fast path
	sub         *Subscription
	established bool
}

// Publication is an LP's publisher registration for one object class
// (HLA Publish Object Class). Obtain it from PublishObjectClass.
type Publication struct {
	b     *Backbone
	key   classLP
	mu    sync.Mutex
	close bool
}

// Subscription is an LP's subscriber registration for one object class
// (HLA Subscribe Object Class). Obtain it from SubscribeObjectClass.
type Subscription struct {
	b   *Backbone
	key classLP

	policy wire.Policy
	window uint32 // reliable send window granted to each publisher
	// grantEvery batches credit grants: one per quarter window keeps
	// credit traffic at ~4 frames per window without letting it run dry;
	// the heartbeat piggyback covers what the batching holds back.
	grantEvery uint32
	mbox       *mailbox
	onReflect  func(Reflection) // optional; bypasses the mailbox

	// Guarded by b.mu:
	channels      map[uint32]*inChannel
	lastBroadcast time.Time
	registeredAt  time.Time
	everMatched   bool

	mu     sync.Mutex
	closed bool
}

// SubscribeOption configures a subscription.
type SubscribeOption func(*subCfg)

type subCfg struct {
	depth     int
	policy    wire.Policy
	window    int
	onReflect func(Reflection)
}

// DefaultCreditWindow is the reliable send window used when WithReliable
// is given a non-positive window (and when a policy-bearing handshake
// omits the window attribute).
const DefaultCreditWindow = 64

// WithQueue sets the mailbox depth. Under the default drop-oldest policy
// the oldest reflection is dropped on overflow; combine with a delivery
// policy option to change what overflow means.
func WithQueue(depth int) SubscribeOption {
	return func(c *subCfg) { c.depth = depth }
}

// WithConflation keeps only the newest reflection (a depth-1 latest-value
// mailbox). This is the natural mode for single-publisher state classes
// sampled by a display loop: the pull side only ever wants the latest
// value. With several publishers, prefer WithLatestValue and a depth of at
// least the publisher count, which conflates per channel.
func WithConflation() SubscribeOption {
	return func(c *subCfg) {
		c.policy = wire.PolicyLatestValue
		c.depth = 1
	}
}

// WithLatestValue selects the conflating delivery policy: a full mailbox
// coalesces to the newest reflection per channel instead of dropping the
// oldest blindly. The right contract for periodic state (crane state,
// motion cues) — memory stays bounded while a stalled consumer resumes on
// the freshest sample from every publisher.
func WithLatestValue() SubscribeOption {
	return func(c *subCfg) { c.policy = wire.PolicyLatestValue }
}

// WithReliable selects the credit-windowed delivery policy: nothing is
// ever dropped. Each publisher of the class may have at most window
// unconsumed updates in flight to this subscription; beyond that its
// Update returns ErrWindowFull (or UpdateContext blocks) until this
// subscriber consumes — saturation propagates to the producer instead of
// the kernel buffer. window <= 0 means DefaultCreditWindow.
func WithReliable(window int) SubscribeOption {
	return func(c *subCfg) {
		c.policy = wire.PolicyReliable
		c.window = window
	}
}

// WithDropOldest selects the legacy policy explicitly: a full mailbox
// drops its oldest reflection. This is the default at this layer and the
// behavior every policy-less legacy peer gets.
func WithDropOldest() SubscribeOption {
	return func(c *subCfg) { c.policy = wire.PolicyDropOldest }
}

// WithCallback delivers reflections synchronously on the receive path
// instead of buffering. The callback must be fast and must not call back
// into the backbone.
func WithCallback(fn func(Reflection)) SubscribeOption {
	return func(c *subCfg) { c.onReflect = fn }
}

// PublishObjectClass registers lp as a publisher of class. Matching local
// subscribers are linked immediately; remote subscribers are linked when
// their SUBSCRIPTION broadcasts arrive.
func (b *Backbone) PublishObjectClass(lp, class string) (*Publication, error) {
	if class == "" {
		return nil, ErrUnknownClass
	}
	if lp == "" {
		return nil, ErrUnknownLP
	}
	key := classLP{class: class, lp: lp}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := b.pubs[key]; dup {
		b.mu.Unlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrDuplicateLP, lp, class)
	}
	p := &Publication{b: b, key: key}
	b.pubs[key] = p
	// In-process fast path: link to every local subscriber of the class.
	for skey, sub := range b.subs {
		if skey.class == class {
			b.establishLocalLocked(sub)
		}
	}
	b.mu.Unlock()
	return p, nil
}

// SubscribeObjectClass registers lp as a subscriber of class and begins
// broadcasting SUBSCRIPTION until matched (then keeps refreshing slowly).
func (b *Backbone) SubscribeObjectClass(lp, class string, opts ...SubscribeOption) (*Subscription, error) {
	if class == "" {
		return nil, ErrUnknownClass
	}
	if lp == "" {
		return nil, ErrUnknownLP
	}
	cfg := subCfg{depth: 0}
	for _, o := range opts {
		o(&cfg)
	}
	depth := cfg.depth
	window := uint32(DefaultCreditWindow)
	if cfg.policy == wire.PolicyReliable && cfg.window > 0 {
		window = uint32(cfg.window)
	}
	key := classLP{class: class, lp: lp}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := b.subs[key]; dup {
		b.mu.Unlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrDuplicateLP, lp, class)
	}
	if depth <= 0 {
		depth = b.cfg.MailboxDepth
	}
	if cfg.policy == wire.PolicyReliable && depth < int(window) {
		// The mailbox must absorb a full window per publisher before the
		// credits stall them; start at one window and let it grow.
		depth = int(window)
	}
	grantEvery := window / 4
	if grantEvery == 0 {
		grantEvery = 1
	}
	s := &Subscription{
		b:            b,
		key:          key,
		policy:       cfg.policy,
		window:       window,
		grantEvery:   grantEvery,
		mbox:         newMailbox(depth, cfg.policy, &b.stats),
		onReflect:    cfg.onReflect,
		channels:     make(map[uint32]*inChannel),
		registeredAt: b.now(),
	}
	b.subs[key] = s
	// In-process fast path: link to local publishers right away.
	hasLocalPub := false
	for pkey := range b.pubs {
		if pkey.class == class {
			hasLocalPub = true
			break
		}
	}
	if hasLocalPub {
		b.establishLocalLocked(s)
	}
	b.mu.Unlock()
	return s, nil
}

// establishLocalLocked creates the in-process virtual channel for s if one
// does not already exist. Caller holds b.mu.
func (b *Backbone) establishLocalLocked(s *Subscription) {
	key := chanKey{peer: b.node, subLP: s.key.lp, class: s.key.class}
	if _, exists := b.outKeys[key]; exists {
		return
	}
	b.nextChan++
	id := b.nextChan
	oc := newOutChannel(s.key.class, key, nil, s, id, s.policy, s.window)
	b.outs[s.key.class] = append(b.outs[s.key.class], oc)
	b.outKeys[key] = oc
	b.outByChan[linkChan{id: id}] = oc
	ic := newInChannel(id, key, nil, s)
	ic.established = true
	b.ins[id] = ic
	b.inSubKeys[key] = id
	s.channels[id] = ic
	b.noteMatchedLocked(s)
	b.stats.ChannelsUp.Inc()
}

// newInChannel builds the subscriber half.
func newInChannel(id uint32, key chanKey, link *peerLink, s *Subscription) *inChannel {
	return &inChannel{id: id, key: key, link: link, sub: s}
}

// noteMatchedLocked records the registration→first-channel latency once.
func (b *Backbone) noteMatchedLocked(s *Subscription) {
	if s.everMatched {
		return
	}
	s.everMatched = true
	b.stats.EstablishLatency.Observe(b.now().Sub(s.registeredAt).Seconds())
}

// Update pushes one attribute update into every virtual channel of the
// class (UPDATE ATTRIBUTE VALUE). simTime is the publisher's simulation
// time. The attrs map is cloned before the call returns, so the caller may
// reuse it.
//
// Updates on one virtual channel are delivered to the subscriber in
// sequence (Seq) order, even when Update is called from several goroutines
// concurrently. Ordering across different channels — different subscriber
// LPs, or different publishers of the same class — is unspecified.
//
// A reliable channel whose credit window is exhausted is skipped and the
// call reports ErrWindowFull (after delivering to every other channel);
// use UpdateContext to block for credits instead.
func (p *Publication) Update(simTime float64, attrs wire.AttrSet) error {
	_, err := p.push(nil, simTime, attrs, false)
	return err
}

// UpdateContext is Update that blocks while any reliable channel's credit
// window is exhausted, resuming as the subscriber consumes. It returns
// ctx.Err() when canceled mid-stall (the update may by then have reached
// the channels ahead of the stalled one; reliable consumers are expected
// to deduplicate, as the dist protocol does).
func (p *Publication) UpdateContext(ctx context.Context, simTime float64, attrs wire.AttrSet) error {
	_, err := p.push(ctx, simTime, attrs, false)
	return err
}

// UpdateRouted is Update reporting the number of virtual channels the
// update was delivered into, read atomically with the push (the cod SDK's
// ErrNoSubscribers detection rides on this — a separate Channels() sample
// would race with channel establishment).
func (p *Publication) UpdateRouted(simTime float64, attrs wire.AttrSet) (int, error) {
	return p.push(nil, simTime, attrs, false)
}

// UpdateRoutedContext is UpdateContext reporting the routed channel count.
func (p *Publication) UpdateRoutedContext(ctx context.Context, simTime float64, attrs wire.AttrSet) (int, error) {
	return p.push(ctx, simTime, attrs, false)
}

// SendNull pushes a Chandy–Misra null message carrying only the publisher's
// time lower bound, letting conservative subscribers advance (§2, ref [7]).
// Nulls bypass credit windows: blocking time synchronization on data
// backpressure would deadlock conservative consumers.
func (p *Publication) SendNull(simTime float64) error {
	_, err := p.push(nil, simTime, wire.AttrSet{}, true)
	return err
}

// push routes one update into every virtual channel of the class.
//
// Ordering guarantee: on any single virtual channel (one publisher node →
// one subscriber LP), updates are delivered in sequence order — each
// channel's sendMu is held across both the Seq assignment and the matching
// deliver/send, so two concurrent Update calls cannot deliver Seq n+1
// before Seq n. No ordering is promised *across* channels or across
// different publishers of the same class.
//
// Delivery policy: reliable channels are sent only while their credit
// window has room. With a nil ctx a full window skips the channel and the
// call reports ErrWindowFull; with a ctx the send stalls until the
// subscriber consumes, the channel dies, or ctx is done. The stall parks
// outside the channel's send slot, so concurrent nulls and non-blocking
// probes are never blocked behind it; the window is re-verified under the
// slot before every send, keeping delivery order equal to seq order.
func (p *Publication) push(ctx context.Context, simTime float64, attrs wire.AttrSet, null bool) (int, error) {
	p.mu.Lock()
	if p.close {
		p.mu.Unlock()
		return 0, ErrHandleClosed
	}
	p.mu.Unlock()

	b := p.b
	sc := getPushScratch()
	defer sc.put()

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, ErrClosed
	}
	sc.chans = append(sc.chans[:0], b.outs[p.key.class]...)
	b.mu.Unlock()

	kind := wire.KindUpdateAttrs
	if null {
		kind = wire.KindNull
	}
	routed := 0
	windowFull := false
	for _, oc := range sc.chans {
		if oc.policy == wire.PolicyReliable && !null {
			// Non-blocking probe first: while the batch holds other
			// channels' send slots we must not park. Only when the window
			// is full and the caller wants to block do we flush (releasing
			// every held slot) and retry with the parking form.
			open, _ := oc.acquireSend(nil, &b.stats, false)
			if !open {
				if ctx == nil {
					windowFull = true
					continue
				}
				routed += sc.flush(b)
				var err error
				open, err = oc.acquireSend(ctx, &b.stats, true)
				if err != nil {
					routed += sc.flush(b)
					return routed, err
				}
				if !open {
					windowFull = true
					continue
				}
			}
		} else {
			oc.sendMu.Lock()
		}
		oc.seq++
		seq := oc.seq
		if oc.link == nil {
			r := Reflection{
				Class:   p.key.class,
				PubNode: b.node,
				PubLP:   p.key.lp,
				Channel: oc.remoteChan,
				Seq:     seq,
				Time:    simTime,
				Null:    null,
				Attrs:   attrs.Clone(),
			}
			b.deliver(oc.local, r)
			oc.sendMu.Unlock()
			routed++
			b.stats.UpdatesSent.Inc()
			continue
		}
		if sc.link != nil && sc.link != oc.link {
			routed += sc.flush(b)
		}
		f := wire.Frame{
			Kind:    kind,
			Channel: oc.remoteChan,
			Seq:     seq,
			Time:    simTime,
			Node:    b.node,
			LP:      p.key.lp,
			Class:   p.key.class,
			Attrs:   attrs,
		}
		if err := sc.stage(oc, f); err != nil {
			// The frame cannot be encoded (oversized attrs); it never
			// reached the wire and the link is healthy. Roll back the seq
			// this frame would have carried and move on.
			oc.seq--
			oc.sendMu.Unlock()
			continue
		}
	}
	routed += sc.flush(b)
	if windowFull {
		return routed, ErrWindowFull
	}
	return routed, nil
}

// Channels returns the number of virtual channels currently carrying this
// publication's class (shared by all local publishers of the class).
func (p *Publication) Channels() int {
	b := p.b
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.outs[p.key.class])
}

// WaitChannelsContext blocks until the class has at least n channels or ctx
// is done, in which case it returns ctx.Err(). Handy for startup sequencing.
func (p *Publication) WaitChannelsContext(ctx context.Context, n int) error {
	return waitCond(ctx, func() bool { return p.Channels() >= n })
}

// WaitChannels is the duration-based shim over WaitChannelsContext; it
// reports whether n channels came up within the timeout.
func (p *Publication) WaitChannels(n int, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return p.WaitChannelsContext(ctx, n) == nil
}

// waitCond polls cond once per millisecond until it holds (nil) or ctx is
// done (ctx.Err()). The backbone's state transitions have no subscribable
// edge, so condition waits poll — at this period the cost is negligible
// against the protocol's broadcast intervals.
func waitCond(ctx context.Context, cond func() bool) error {
	if cond() {
		return nil
	}
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			if cond() {
				return nil
			}
			return ctx.Err()
		case <-tick.C:
			if cond() {
				return nil
			}
		}
	}
}

// Close withdraws the publisher registration. Channels from other
// publishers of the same class are unaffected.
func (p *Publication) Close() error {
	p.mu.Lock()
	if p.close {
		p.mu.Unlock()
		return nil
	}
	p.close = true
	p.mu.Unlock()

	b := p.b
	b.mu.Lock()
	delete(b.pubs, p.key)
	// Tear down the class's out-channels only when no other local LP
	// still publishes the class.
	stillPublished := false
	for key := range b.pubs {
		if key.class == p.key.class {
			stillPublished = true
			break
		}
	}
	type byeTarget struct {
		link *peerLink
		id   uint32
	}
	var byes []byeTarget
	if !stillPublished {
		for _, oc := range b.outs[p.key.class] {
			b.removeOutLocked(oc)
			if oc.local != nil {
				if ic, ok := b.ins[oc.remoteChan]; ok && ic.sub != nil {
					delete(ic.sub.channels, oc.remoteChan)
					ic.sub.mbox.forgetChannel(oc.remoteChan)
					delete(b.inSubKeys, ic.key)
					delete(b.ins, oc.remoteChan)
					// Local subscriber resumes discovery for other
					// (remote) publishers right away.
					ic.sub.lastBroadcast = time.Time{}
				}
				continue
			}
			byes = append(byes, byeTarget{link: oc.link, id: oc.remoteChan})
		}
		delete(b.outs, p.key.class)
	}
	node := b.node
	b.mu.Unlock()

	// Tell remote subscribers their channel is gone so they re-arm fast
	// discovery instead of waiting on a silent stale channel.
	for _, t := range byes {
		_ = t.link.send(wire.Frame{Kind: wire.KindBye, Channel: t.id, Node: node})
	}
	return nil
}

// deliver hands a reflection to the subscription's callback or mailbox.
func (b *Backbone) deliver(s *Subscription, r Reflection) {
	if s == nil {
		return
	}
	s.mu.Lock()
	closed := s.closed
	cb := s.onReflect
	s.mu.Unlock()
	if closed {
		return
	}
	if cb != nil {
		cb(r)
		b.stats.ReflectsDelivered.Inc()
		// A callback consumes synchronously, so the credit is immediate.
		s.consumed(r.Channel)
		return
	}
	s.mbox.push(r)
	b.stats.ReflectsDelivered.Inc()
}

// consumed reports one reflection drained from channel id, granting
// credits back to the publisher on reliable subscriptions. The counter
// lives under the mailbox's lock; the global backbone mutex is touched
// only on the grantEvery-th consumption, when a grant actually goes out.
func (s *Subscription) consumed(id uint32) {
	if s.policy != wire.PolicyReliable {
		return
	}
	if cum, due := s.mbox.noteConsumed(id, s.grantEvery); due {
		s.b.sendGrant(s, id, cum)
	}
}

// Poll returns the oldest buffered reflection without blocking; ok reports
// whether one was available. This is the paper's "pull" side.
func (s *Subscription) Poll() (Reflection, bool) {
	r, ok := s.mbox.poll()
	if ok {
		s.consumed(r.Channel)
	}
	return r, ok
}

// Latest drains the mailbox and returns the newest reflection; ok is false
// when the mailbox was empty. Convenient for conflated state classes.
func (s *Subscription) Latest() (Reflection, bool) {
	var (
		last Reflection
		got  bool
	)
	for {
		r, ok := s.Poll()
		if !ok {
			return last, got
		}
		last, got = r, true
	}
}

// NextContext blocks until a reflection arrives, ctx is done (ctx.Err()),
// or the subscription closes (ErrHandleClosed). A reflection that races
// with the cancellation is still delivered.
func (s *Subscription) NextContext(ctx context.Context) (Reflection, error) {
	r, err := s.mbox.nextCtx(ctx)
	if err == nil {
		s.consumed(r.Channel)
	}
	return r, err
}

// Next blocks until a reflection arrives or timeout elapses; ok is false
// on timeout or when the subscription closes. Unlike NextContext it
// carries no context machinery: an already-buffered reflection returns
// without touching the clock, and the timeout rides a pooled timer — the
// consumer hot path allocates nothing.
func (s *Subscription) Next(timeout time.Duration) (Reflection, bool) {
	r, ok := s.mbox.next(timeout)
	if ok {
		s.consumed(r.Channel)
	}
	return r, ok
}

// Policy returns the subscription's delivery policy.
func (s *Subscription) Policy() wire.Policy { return s.policy }

// NotifyC returns a channel that receives a token whenever the mailbox goes
// from empty to non-empty, for select-based consumers.
func (s *Subscription) NotifyC() <-chan struct{} { return s.mbox.notify }

// Pending returns the number of buffered reflections.
func (s *Subscription) Pending() int { return s.mbox.pending() }

// Matched reports whether the subscription currently has at least one
// fully established virtual channel (both ACKNOWLEDGE phases complete, so
// the publisher is routing into it).
func (s *Subscription) Matched() bool {
	b := s.b
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ic := range s.channels {
		if ic.established {
			return true
		}
	}
	return false
}

// Close withdraws the subscriber registration and releases its channels.
func (s *Subscription) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	b := s.b
	b.mu.Lock()
	delete(b.subs, s.key)
	type byeTarget struct {
		link *peerLink
		id   uint32
	}
	var byes []byeTarget
	for id, ic := range s.channels {
		delete(b.ins, id)
		delete(b.inSubKeys, ic.key)
		if ic.link != nil {
			// Tell the publisher this channel is dead, or its stale
			// out-channel entry would silently ignore a re-registration
			// of the same LP forever.
			byes = append(byes, byeTarget{link: ic.link, id: id})
		}
		// Local fast-path channels also have a publisher half to clean
		// (and possibly a publisher stalled on its window to release).
		if oc, ok := b.outKeys[ic.key]; ok && oc.local == s {
			b.removeOutLocked(oc)
			chans := b.outs[s.key.class]
			kept := chans[:0]
			for _, c := range chans {
				if c != oc {
					kept = append(kept, c)
				}
			}
			b.outs[s.key.class] = kept
		}
	}
	s.channels = make(map[uint32]*inChannel)
	node := b.node
	b.mu.Unlock()

	for _, t := range byes {
		_ = t.link.send(wire.Frame{Kind: wire.KindBye, Channel: t.id, Node: node})
	}
	s.mbox.close()
	return nil
}

// mailbox is the bounded per-subscription buffer: a ring whose overflow
// behavior follows the subscription's delivery policy, plus an
// empty→non-empty notification channel.
//
//   - PolicyDropOldest: overflow drops the oldest reflection (legacy).
//   - PolicyLatestValue: overflow coalesces to the newest reflection per
//     channel — the oldest buffered entry of the incoming reflection's
//     channel is replaced. When no same-channel entry exists (more
//     publishers than depth), the oldest overall is dropped.
//   - PolicyReliable: nothing is dropped; the ring grows. Growth is
//     bounded by the credit windows the subscription granted — publishers
//     stall before exceeding them — plus whatever a policy-ignorant
//     legacy publisher pushes.
type mailbox struct {
	mu     sync.Mutex
	policy wire.Policy
	buf    []Reflection
	head   int
	n      int
	closed bool
	notify chan struct{}
	stats  *Stats
	// Per-channel loss accounting, surfaced in Backbone.Tables so a lossy
	// channel can be named instead of inferred from the backbone total.
	tallies map[uint32]*ChannelTally
	// totals is the subscription-lifetime sum of the tallies: unlike the
	// per-channel entries it survives forgetChannel, so row-level
	// delivered/dropped/conflated counts stay monotonic across link
	// churn (a standing dist worker outlives many coordinators' virtual
	// channels). Channel and Peer are unused.
	totals ChannelTally
	// Per-channel credit accounting of a reliable subscription: the
	// cumulative consumption count the publisher's window runs on, and
	// the high-water mark of the last grant sent.
	credits map[uint32]*chanCredit
	// occupancy counts buffered reflections per channel, so latest-value
	// victim selection stays O(depth) instead of an O(depth²) duplicate
	// scan while the mailbox is full.
	occupancy map[uint32]int
}

type chanCredit struct {
	consumed  uint32
	lastGrant uint32
}

// ChannelTally is one virtual channel's loss accounting at a subscription
// mailbox.
type ChannelTally struct {
	Channel   uint32
	Peer      string // publishing node; filled by Tables
	Delivered uint64 // reflections buffered into the mailbox (frames in)
	Dropped   uint64 // reflections dropped (drop-oldest overflow)
	Conflated uint64 // reflections coalesced (latest-value overflow)
}

func newMailbox(depth int, policy wire.Policy, stats *Stats) *mailbox {
	return &mailbox{
		policy:    policy,
		buf:       make([]Reflection, depth),
		notify:    make(chan struct{}, 1),
		stats:     stats,
		tallies:   make(map[uint32]*ChannelTally),
		credits:   make(map[uint32]*chanCredit),
		occupancy: make(map[uint32]int),
	}
}

// forgetChannel drops a torn-down channel's credit and loss bookkeeping.
// Without this a long-lived subscription under link churn (a standing
// dist worker across coordinator restarts) accumulates a ghost entry per
// dead channel forever — and Tables would keep reporting them with no
// peer to attribute. Buffered reflections (and their occupancy) stay:
// they are real data the consumer may still drain.
func (m *mailbox) forgetChannel(id uint32) {
	m.mu.Lock()
	delete(m.credits, id)
	delete(m.tallies, id)
	m.mu.Unlock()
}

// noteConsumed counts one reflection drained from channel id; due reports
// whether a grant should go out — the batching threshold was crossed, or
// the entry is fresh. The fresh-entry grant keeps a subtle leak closed:
// draining leftovers of a torn-down channel resurrects its entry here,
// and the immediate grant attempt finds the channel gone (sendGrant's
// nil-channel path) and prunes it again.
func (m *mailbox) noteConsumed(id uint32, grantEvery uint32) (cum uint32, due bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.credits[id]
	if c == nil {
		c = &chanCredit{}
		m.credits[id] = c
	}
	c.consumed++
	if c.consumed-c.lastGrant >= grantEvery || c.consumed == 1 {
		c.lastGrant = c.consumed
		return c.consumed, true
	}
	return c.consumed, false
}

// consumedCount reads channel id's cumulative consumption (the heartbeat
// piggyback reads this under b.mu; the lock order b.mu → m.mu is safe
// because no mailbox method acquires b.mu).
func (m *mailbox) consumedCount(id uint32) uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c := m.credits[id]; c != nil {
		return c.consumed
	}
	return 0
}

// tally returns channel id's loss counters, creating them on first use.
// Caller holds m.mu.
func (m *mailbox) tally(id uint32) *ChannelTally {
	t := m.tallies[id]
	if t == nil {
		t = &ChannelTally{Channel: id}
		m.tallies[id] = t
	}
	return t
}

// at returns a pointer to the i-th buffered reflection (0 = oldest).
// Caller holds m.mu.
func (m *mailbox) at(i int) *Reflection { return &m.buf[(m.head+i)%len(m.buf)] }

// removeAt deletes the i-th buffered reflection, shifting newer entries
// down. Caller holds m.mu.
func (m *mailbox) removeAt(i int) {
	m.noteRemoved(m.at(i).Channel)
	for j := i; j < m.n-1; j++ {
		*m.at(j) = *m.at(j + 1)
	}
	*m.at(m.n - 1) = Reflection{}
	m.n--
}

// noteRemoved decrements a channel's occupancy count. Caller holds m.mu.
func (m *mailbox) noteRemoved(id uint32) {
	if n := m.occupancy[id] - 1; n > 0 {
		m.occupancy[id] = n
	} else {
		delete(m.occupancy, id) // keep the map bounded by live channels
	}
}

func (m *mailbox) push(r Reflection) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if m.n == len(m.buf) {
		switch m.policy {
		case wire.PolicyReliable:
			// Never drop: grow the ring (see the type comment for why this
			// stays bounded in practice).
			grown := make([]Reflection, 2*len(m.buf))
			for i := 0; i < m.n; i++ {
				grown[i] = *m.at(i)
			}
			m.buf, m.head = grown, 0
		case wire.PolicyLatestValue:
			// Coalesce to newest-per-channel: replace the oldest buffered
			// reflection of this channel, keeping per-channel seq order
			// (an older entry leaves, the newest lands at the tail). With
			// no same-channel entry, conflate the oldest entry of any
			// channel buffered more than once — a transient arrival
			// imbalance must not evict another channel's only sample. A
			// drop happens only when every slot holds a distinct channel,
			// i.e. the depth is smaller than the live publisher count.
			// The occupancy index keeps victim selection one O(depth)
			// scan, not an O(depth²) duplicate search per push.
			victim := -1
			if m.occupancy[r.Channel] > 0 {
				for i := 0; i < m.n; i++ {
					if m.at(i).Channel == r.Channel {
						victim = i
						break
					}
				}
			} else {
				for i := 0; i < m.n; i++ {
					if m.occupancy[m.at(i).Channel] >= 2 {
						victim = i
						break
					}
				}
			}
			if victim >= 0 {
				m.tally(m.at(victim).Channel).Conflated++
				m.totals.Conflated++
				m.stats.Conflations.Inc()
				m.removeAt(victim)
			} else {
				m.tally(m.at(0).Channel).Dropped++
				m.totals.Dropped++
				m.stats.MailboxDropped.Inc()
				m.removeAt(0)
			}
		default: // drop oldest
			m.tally(m.at(0).Channel).Dropped++
			m.totals.Dropped++
			m.stats.MailboxDropped.Inc()
			m.noteRemoved(m.at(0).Channel)
			m.head = (m.head + 1) % len(m.buf)
			m.n--
		}
	}
	m.buf[(m.head+m.n)%len(m.buf)] = r
	m.n++
	m.occupancy[r.Channel]++
	m.tally(r.Channel).Delivered++
	m.totals.Delivered++
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// channelTallies snapshots the per-channel loss counters.
// rowTallies returns the subscription-lifetime totals — the cumulative
// delivered/dropped/conflated counts across every virtual channel the
// subscription ever had, including torn-down ones.
func (m *mailbox) rowTallies() ChannelTally {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totals
}

func (m *mailbox) channelTallies() []ChannelTally {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ChannelTally, 0, len(m.tallies))
	for _, t := range m.tallies {
		out = append(out, *t)
	}
	return out
}

func (m *mailbox) poll() (Reflection, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.n == 0 {
		return Reflection{}, false
	}
	r := m.buf[m.head]
	m.buf[m.head] = Reflection{} // release references
	m.head = (m.head + 1) % len(m.buf)
	m.n--
	m.noteRemoved(r.Channel)
	return r, true
}

// timerPool recycles Next's timeout timers. A timer goes back only after
// Stop-and-drain, so a pooled timer is never pending.
var timerPool sync.Pool

// next is poll-then-wait with a plain timeout: the blocking form of the
// consumer hot path. Buffered data returns immediately; otherwise the
// wait parks on the mailbox's notify channel against a pooled timer.
func (m *mailbox) next(timeout time.Duration) (Reflection, bool) {
	if r, ok := m.poll(); ok {
		return r, true
	}
	var t *time.Timer
	if v := timerPool.Get(); v != nil {
		t = v.(*time.Timer)
		t.Reset(timeout)
	} else {
		t = time.NewTimer(timeout)
	}
	defer func() {
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
		timerPool.Put(t)
	}()
	for {
		if r, ok := m.poll(); ok {
			return r, true
		}
		m.mu.Lock()
		closed := m.closed
		m.mu.Unlock()
		if closed {
			return Reflection{}, false
		}
		select {
		case <-m.notify:
		case <-t.C:
			// A push may have raced with the timeout; prefer data.
			r, ok := m.poll()
			return r, ok
		}
	}
}

func (m *mailbox) nextCtx(ctx context.Context) (Reflection, error) {
	for {
		if r, ok := m.poll(); ok {
			return r, nil
		}
		m.mu.Lock()
		closed := m.closed
		m.mu.Unlock()
		if closed {
			return Reflection{}, ErrHandleClosed
		}
		select {
		case <-m.notify:
		case <-ctx.Done():
			// A push may have raced with the cancellation; prefer data.
			if r, ok := m.poll(); ok {
				return r, nil
			}
			return Reflection{}, ctx.Err()
		}
	}
}

func (m *mailbox) pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}
