package cb

import (
	"context"
	"fmt"
	"sync"
	"time"

	"codsim/internal/metrics"
	"codsim/internal/wire"
)

// Reflection is one delivered update: the subscriber-side view of an
// UPDATE ATTRIBUTE VALUE frame (HLA's Reflect Attribute Values callback).
type Reflection struct {
	Class   string
	PubNode string
	PubLP   string
	Channel uint32
	Seq     uint32
	Time    float64
	Null    bool // Chandy–Misra null message: time only, no attributes
	Attrs   wire.AttrSet
}

// outChannel is the publisher half of a virtual channel: the link (nil for
// the in-process fast path) plus the subscriber-assigned channel ID.
type outChannel struct {
	class      string
	key        chanKey
	link       *peerLink     // nil → local delivery
	local      *Subscription // set when link == nil
	remoteChan uint32

	// sendMu serializes sequence assignment *and* the matching deliver/send
	// on this channel, so the per-channel delivery order always equals the
	// sequence order even when several goroutines Update concurrently.
	sendMu sync.Mutex
	seq    uint32 // guarded by sendMu
}

// inChannel is the subscriber half: the binding from a channel ID to the
// local subscription entry. established flips when the publisher confirms
// with the second ACKNOWLEDGE (AckChannelUp) — only then is the channel
// counted as matched, because until the publisher records its half, pushed
// updates would route into the void.
type inChannel struct {
	id          uint32
	key         chanKey
	link        *peerLink // nil for the in-process fast path
	sub         *Subscription
	established bool
}

// Publication is an LP's publisher registration for one object class
// (HLA Publish Object Class). Obtain it from PublishObjectClass.
type Publication struct {
	b     *Backbone
	key   classLP
	mu    sync.Mutex
	close bool
}

// Subscription is an LP's subscriber registration for one object class
// (HLA Subscribe Object Class). Obtain it from SubscribeObjectClass.
type Subscription struct {
	b   *Backbone
	key classLP

	mbox      *mailbox
	onReflect func(Reflection) // optional; bypasses the mailbox

	// Guarded by b.mu:
	channels      map[uint32]*inChannel
	lastBroadcast time.Time
	registeredAt  time.Time
	everMatched   bool

	mu     sync.Mutex
	closed bool
}

// SubscribeOption configures a subscription.
type SubscribeOption func(*subCfg)

type subCfg struct {
	depth     int
	conflate  bool
	onReflect func(Reflection)
}

// WithQueue sets the mailbox depth; the oldest reflection is dropped on
// overflow. Use for event classes where every message matters.
func WithQueue(depth int) SubscribeOption {
	return func(c *subCfg) { c.depth = depth }
}

// WithConflation keeps only the newest reflection (mailbox depth 1). This is
// the natural mode for state classes sampled by a display loop: the pull
// side only ever wants the latest value.
func WithConflation() SubscribeOption {
	return func(c *subCfg) { c.conflate = true }
}

// WithCallback delivers reflections synchronously on the receive path
// instead of buffering. The callback must be fast and must not call back
// into the backbone.
func WithCallback(fn func(Reflection)) SubscribeOption {
	return func(c *subCfg) { c.onReflect = fn }
}

// PublishObjectClass registers lp as a publisher of class. Matching local
// subscribers are linked immediately; remote subscribers are linked when
// their SUBSCRIPTION broadcasts arrive.
func (b *Backbone) PublishObjectClass(lp, class string) (*Publication, error) {
	if class == "" {
		return nil, ErrUnknownClass
	}
	if lp == "" {
		return nil, ErrUnknownLP
	}
	key := classLP{class: class, lp: lp}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := b.pubs[key]; dup {
		b.mu.Unlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrDuplicateLP, lp, class)
	}
	p := &Publication{b: b, key: key}
	b.pubs[key] = p
	// In-process fast path: link to every local subscriber of the class.
	for skey, sub := range b.subs {
		if skey.class == class {
			b.establishLocalLocked(sub)
		}
	}
	b.mu.Unlock()
	return p, nil
}

// SubscribeObjectClass registers lp as a subscriber of class and begins
// broadcasting SUBSCRIPTION until matched (then keeps refreshing slowly).
func (b *Backbone) SubscribeObjectClass(lp, class string, opts ...SubscribeOption) (*Subscription, error) {
	if class == "" {
		return nil, ErrUnknownClass
	}
	if lp == "" {
		return nil, ErrUnknownLP
	}
	cfg := subCfg{depth: 0}
	for _, o := range opts {
		o(&cfg)
	}
	depth := cfg.depth
	if cfg.conflate {
		depth = 1
	}
	key := classLP{class: class, lp: lp}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := b.subs[key]; dup {
		b.mu.Unlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrDuplicateLP, lp, class)
	}
	if depth <= 0 {
		depth = b.cfg.MailboxDepth
	}
	s := &Subscription{
		b:            b,
		key:          key,
		mbox:         newMailbox(depth, &b.stats.MailboxDropped),
		onReflect:    cfg.onReflect,
		channels:     make(map[uint32]*inChannel),
		registeredAt: b.now(),
	}
	b.subs[key] = s
	// In-process fast path: link to local publishers right away.
	hasLocalPub := false
	for pkey := range b.pubs {
		if pkey.class == class {
			hasLocalPub = true
			break
		}
	}
	if hasLocalPub {
		b.establishLocalLocked(s)
	}
	b.mu.Unlock()
	return s, nil
}

// establishLocalLocked creates the in-process virtual channel for s if one
// does not already exist. Caller holds b.mu.
func (b *Backbone) establishLocalLocked(s *Subscription) {
	key := chanKey{peer: b.node, subLP: s.key.lp, class: s.key.class}
	if _, exists := b.outKeys[key]; exists {
		return
	}
	b.nextChan++
	id := b.nextChan
	oc := &outChannel{class: s.key.class, key: key, local: s, remoteChan: id}
	b.outs[s.key.class] = append(b.outs[s.key.class], oc)
	b.outKeys[key] = oc
	ic := &inChannel{id: id, key: key, sub: s, established: true}
	b.ins[id] = ic
	b.inSubKeys[key] = id
	s.channels[id] = ic
	b.noteMatchedLocked(s)
	b.stats.ChannelsUp.Inc()
}

// noteMatchedLocked records the registration→first-channel latency once.
func (b *Backbone) noteMatchedLocked(s *Subscription) {
	if s.everMatched {
		return
	}
	s.everMatched = true
	b.stats.EstablishLatency.Observe(b.now().Sub(s.registeredAt).Seconds())
}

// Update pushes one attribute update into every virtual channel of the
// class (UPDATE ATTRIBUTE VALUE). simTime is the publisher's simulation
// time. The attrs map is cloned before the call returns, so the caller may
// reuse it.
//
// Updates on one virtual channel are delivered to the subscriber in
// sequence (Seq) order, even when Update is called from several goroutines
// concurrently. Ordering across different channels — different subscriber
// LPs, or different publishers of the same class — is unspecified.
func (p *Publication) Update(simTime float64, attrs wire.AttrSet) error {
	_, err := p.push(simTime, attrs, false)
	return err
}

// UpdateRouted is Update reporting the number of virtual channels the
// update was routed into, read atomically with the push (the cod SDK's
// ErrNoSubscribers detection rides on this — a separate Channels() sample
// would race with channel establishment).
func (p *Publication) UpdateRouted(simTime float64, attrs wire.AttrSet) (int, error) {
	return p.push(simTime, attrs, false)
}

// SendNull pushes a Chandy–Misra null message carrying only the publisher's
// time lower bound, letting conservative subscribers advance (§2, ref [7]).
func (p *Publication) SendNull(simTime float64) error {
	_, err := p.push(simTime, nil, true)
	return err
}

// push routes one update into every virtual channel of the class.
//
// Ordering guarantee: on any single virtual channel (one publisher node →
// one subscriber LP), updates are delivered in sequence order — each
// channel's sendMu is held across both the Seq assignment and the matching
// deliver/send, so two concurrent Update calls cannot deliver Seq n+1
// before Seq n. No ordering is promised *across* channels or across
// different publishers of the same class.
func (p *Publication) push(simTime float64, attrs wire.AttrSet, null bool) (int, error) {
	p.mu.Lock()
	if p.close {
		p.mu.Unlock()
		return 0, ErrHandleClosed
	}
	p.mu.Unlock()

	b := p.b
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, ErrClosed
	}
	chans := make([]*outChannel, len(b.outs[p.key.class]))
	copy(chans, b.outs[p.key.class])
	b.mu.Unlock()

	kind := wire.KindUpdateAttrs
	if null {
		kind = wire.KindNull
	}
	for _, oc := range chans {
		oc.sendMu.Lock()
		oc.seq++
		seq := oc.seq
		if oc.link == nil {
			r := Reflection{
				Class:   p.key.class,
				PubNode: b.node,
				PubLP:   p.key.lp,
				Channel: oc.remoteChan,
				Seq:     seq,
				Time:    simTime,
				Null:    null,
				Attrs:   attrs.Clone(),
			}
			b.deliver(oc.local, r)
			oc.sendMu.Unlock()
			b.stats.UpdatesSent.Inc()
			continue
		}
		f := wire.Frame{
			Kind:    kind,
			Channel: oc.remoteChan,
			Seq:     seq,
			Time:    simTime,
			Node:    b.node,
			LP:      p.key.lp,
			Class:   p.key.class,
			Attrs:   attrs,
		}
		err := oc.link.send(f)
		oc.sendMu.Unlock()
		if err != nil {
			b.linkDown(oc.link)
			continue
		}
		b.stats.UpdatesSent.Inc()
	}
	return len(chans), nil
}

// Channels returns the number of virtual channels currently carrying this
// publication's class (shared by all local publishers of the class).
func (p *Publication) Channels() int {
	b := p.b
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.outs[p.key.class])
}

// WaitChannelsContext blocks until the class has at least n channels or ctx
// is done, in which case it returns ctx.Err(). Handy for startup sequencing.
func (p *Publication) WaitChannelsContext(ctx context.Context, n int) error {
	return waitCond(ctx, func() bool { return p.Channels() >= n })
}

// WaitChannels is the duration-based shim over WaitChannelsContext; it
// reports whether n channels came up within the timeout.
func (p *Publication) WaitChannels(n int, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return p.WaitChannelsContext(ctx, n) == nil
}

// waitCond polls cond once per millisecond until it holds (nil) or ctx is
// done (ctx.Err()). The backbone's state transitions have no subscribable
// edge, so condition waits poll — at this period the cost is negligible
// against the protocol's broadcast intervals.
func waitCond(ctx context.Context, cond func() bool) error {
	if cond() {
		return nil
	}
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			if cond() {
				return nil
			}
			return ctx.Err()
		case <-tick.C:
			if cond() {
				return nil
			}
		}
	}
}

// Close withdraws the publisher registration. Channels from other
// publishers of the same class are unaffected.
func (p *Publication) Close() error {
	p.mu.Lock()
	if p.close {
		p.mu.Unlock()
		return nil
	}
	p.close = true
	p.mu.Unlock()

	b := p.b
	b.mu.Lock()
	delete(b.pubs, p.key)
	// Tear down the class's out-channels only when no other local LP
	// still publishes the class.
	stillPublished := false
	for key := range b.pubs {
		if key.class == p.key.class {
			stillPublished = true
			break
		}
	}
	type byeTarget struct {
		link *peerLink
		id   uint32
	}
	var byes []byeTarget
	if !stillPublished {
		for _, oc := range b.outs[p.key.class] {
			delete(b.outKeys, oc.key)
			if oc.local != nil {
				if ic, ok := b.ins[oc.remoteChan]; ok && ic.sub != nil {
					delete(ic.sub.channels, oc.remoteChan)
					delete(b.inSubKeys, ic.key)
					delete(b.ins, oc.remoteChan)
					// Local subscriber resumes discovery for other
					// (remote) publishers right away.
					ic.sub.lastBroadcast = time.Time{}
				}
				continue
			}
			byes = append(byes, byeTarget{link: oc.link, id: oc.remoteChan})
		}
		delete(b.outs, p.key.class)
	}
	node := b.node
	b.mu.Unlock()

	// Tell remote subscribers their channel is gone so they re-arm fast
	// discovery instead of waiting on a silent stale channel.
	for _, t := range byes {
		_ = t.link.send(wire.Frame{Kind: wire.KindBye, Channel: t.id, Node: node})
	}
	return nil
}

// deliver hands a reflection to the subscription's callback or mailbox.
func (b *Backbone) deliver(s *Subscription, r Reflection) {
	if s == nil {
		return
	}
	s.mu.Lock()
	closed := s.closed
	cb := s.onReflect
	s.mu.Unlock()
	if closed {
		return
	}
	if cb != nil {
		cb(r)
		b.stats.ReflectsDelivered.Inc()
		return
	}
	s.mbox.push(r)
	b.stats.ReflectsDelivered.Inc()
}

// Poll returns the oldest buffered reflection without blocking; ok reports
// whether one was available. This is the paper's "pull" side.
func (s *Subscription) Poll() (Reflection, bool) { return s.mbox.poll() }

// Latest drains the mailbox and returns the newest reflection; ok is false
// when the mailbox was empty. Convenient for conflated state classes.
func (s *Subscription) Latest() (Reflection, bool) {
	var (
		last Reflection
		got  bool
	)
	for {
		r, ok := s.mbox.poll()
		if !ok {
			return last, got
		}
		last, got = r, true
	}
}

// NextContext blocks until a reflection arrives, ctx is done (ctx.Err()),
// or the subscription closes (ErrHandleClosed). A reflection that races
// with the cancellation is still delivered.
func (s *Subscription) NextContext(ctx context.Context) (Reflection, error) {
	return s.mbox.nextCtx(ctx)
}

// Next is the duration-based shim over NextContext; ok is false on timeout
// or when the subscription closes.
func (s *Subscription) Next(timeout time.Duration) (Reflection, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	r, err := s.mbox.nextCtx(ctx)
	return r, err == nil
}

// NotifyC returns a channel that receives a token whenever the mailbox goes
// from empty to non-empty, for select-based consumers.
func (s *Subscription) NotifyC() <-chan struct{} { return s.mbox.notify }

// Pending returns the number of buffered reflections.
func (s *Subscription) Pending() int { return s.mbox.pending() }

// Matched reports whether the subscription currently has at least one
// fully established virtual channel (both ACKNOWLEDGE phases complete, so
// the publisher is routing into it).
func (s *Subscription) Matched() bool {
	b := s.b
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ic := range s.channels {
		if ic.established {
			return true
		}
	}
	return false
}

// Close withdraws the subscriber registration and releases its channels.
func (s *Subscription) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	b := s.b
	b.mu.Lock()
	delete(b.subs, s.key)
	type byeTarget struct {
		link *peerLink
		id   uint32
	}
	var byes []byeTarget
	for id, ic := range s.channels {
		delete(b.ins, id)
		delete(b.inSubKeys, ic.key)
		if ic.link != nil {
			// Tell the publisher this channel is dead, or its stale
			// out-channel entry would silently ignore a re-registration
			// of the same LP forever.
			byes = append(byes, byeTarget{link: ic.link, id: id})
		}
		// Local fast-path channels also have a publisher half to clean.
		if oc, ok := b.outKeys[ic.key]; ok && oc.local == s {
			delete(b.outKeys, ic.key)
			chans := b.outs[s.key.class]
			kept := chans[:0]
			for _, c := range chans {
				if c != oc {
					kept = append(kept, c)
				}
			}
			b.outs[s.key.class] = kept
		}
	}
	s.channels = make(map[uint32]*inChannel)
	node := b.node
	b.mu.Unlock()

	for _, t := range byes {
		_ = t.link.send(wire.Frame{Kind: wire.KindBye, Channel: t.id, Node: node})
	}
	s.mbox.close()
	return nil
}

// mailbox is the bounded per-subscription buffer: a drop-oldest ring plus
// an empty→non-empty notification channel.
type mailbox struct {
	mu      sync.Mutex
	buf     []Reflection
	head    int
	n       int
	closed  bool
	notify  chan struct{}
	dropped *metrics.Counter
}

func newMailbox(depth int, dropped *metrics.Counter) *mailbox {
	return &mailbox{
		buf:     make([]Reflection, depth),
		notify:  make(chan struct{}, 1),
		dropped: dropped,
	}
}

func (m *mailbox) push(r Reflection) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if m.n == len(m.buf) { // drop oldest
		m.head = (m.head + 1) % len(m.buf)
		m.n--
		m.dropped.Inc()
	}
	m.buf[(m.head+m.n)%len(m.buf)] = r
	m.n++
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

func (m *mailbox) poll() (Reflection, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.n == 0 {
		return Reflection{}, false
	}
	r := m.buf[m.head]
	m.buf[m.head] = Reflection{} // release references
	m.head = (m.head + 1) % len(m.buf)
	m.n--
	return r, true
}

func (m *mailbox) nextCtx(ctx context.Context) (Reflection, error) {
	for {
		if r, ok := m.poll(); ok {
			return r, nil
		}
		m.mu.Lock()
		closed := m.closed
		m.mu.Unlock()
		if closed {
			return Reflection{}, ErrHandleClosed
		}
		select {
		case <-m.notify:
		case <-ctx.Done():
			// A push may have raced with the cancellation; prefer data.
			if r, ok := m.poll(); ok {
				return r, nil
			}
			return Reflection{}, ctx.Err()
		}
	}
}

func (m *mailbox) pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}
