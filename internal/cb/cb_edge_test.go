package cb

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"codsim/internal/transport"
	"codsim/internal/wire"
)

func TestWaitChannels(t *testing.T) {
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "pub")
	pub, err := pubNode.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	// No subscribers yet: WaitChannels must time out.
	if pub.WaitChannels(1, 30*time.Millisecond) {
		t.Fatal("WaitChannels succeeded with no subscribers")
	}
	subNode := newBackbone(t, lan, "sub")
	if _, err := subNode.SubscribeObjectClass("s", "State"); err != nil {
		t.Fatal(err)
	}
	if !pub.WaitChannels(1, waitLong) {
		t.Fatal("WaitChannels never saw the channel")
	}
	if pub.Channels() != 1 {
		t.Errorf("Channels = %d", pub.Channels())
	}
}

func TestTablesAcrossNodes(t *testing.T) {
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "pub")
	subNode := newBackbone(t, lan, "sub")
	pub, err := pubNode.PublishObjectClass("dyn", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("vis", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("not matched")
	}
	pubs, _ := pubNode.Tables()
	if len(pubs) != 1 || pubs[0].Channels != 1 {
		t.Errorf("publisher tables = %+v", pubs)
	}
	_, subs := subNode.Tables()
	if len(subs) != 1 || subs[0].Channels != 1 {
		t.Errorf("subscriber tables = %+v", subs)
	}
	_ = pub
}

// TestSilentPendingLinkReaped plants a raw connection that never speaks:
// the heartbeat reaper must close it instead of leaking it forever.
func TestSilentPendingLinkReaped(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "server")

	ifc, err := lan.Attach("mute-client")
	if err != nil {
		t.Fatal(err)
	}
	defer ifc.Close()
	conn, err := ifc.Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Never send anything. After the heartbeat timeout the backbone
	// must drop the pending link, observable as EOF on our side.
	buf := make([]byte, 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := conn.Read(buf) // heartbeats may arrive first
		for err == nil {
			_, err = conn.Read(buf)
		}
		errCh <- err
	}()
	select {
	case <-errCh:
		// Connection closed by the reaper: success.
	case <-time.After(waitLong):
		t.Fatal("silent pending link never reaped")
	}
}

// TestMalformedStreamDropsLink sends garbage on a fresh connection: the
// backbone must tear the link down without disturbing other traffic.
func TestMalformedStreamDropsLink(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "server")
	pub, err := b.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.SubscribeObjectClass("s", "State")
	if err != nil {
		t.Fatal(err)
	}

	ifc, err := lan.Attach("attacker")
	if err != nil {
		t.Fatal(err)
	}
	defer ifc.Close()
	conn, err := ifc.Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0x00, 0x00, 0x00, 0x04, 0xDE, 0xAD, 0xBE, 0xEF}); err != nil {
		t.Fatal(err)
	}

	// Local traffic still flows.
	if err := pub.Update(1, attrsWith(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := sub.Next(waitLong); !ok {
		t.Fatal("local traffic broken by malformed remote frame")
	}
}

// TestSubscriptionCloseDuringTraffic closes a subscription while a remote
// publisher is mid-burst: no panic, no deadlock, and the publisher's
// writes keep succeeding (stale-channel updates are dropped at the
// receiver).
func TestSubscriptionCloseDuringTraffic(t *testing.T) {
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "pub")
	subNode := newBackbone(t, lan, "sub")
	pub, err := pubNode.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("s", "State", WithQueue(16))
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("not matched")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			if err := pub.Update(float64(i), attrsWith(float64(i))); err != nil {
				return
			}
		}
	}()
	time.Sleep(2 * time.Millisecond)
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestSubscriberRestartRematches: closing a subscriber LP and registering
// it again (an LP restart, e.g. a display application relaunch) must
// rebuild the virtual channel. This requires the channel-scoped BYE —
// without it the publisher's stale channel entry silences the new
// SUBSCRIPTION broadcasts forever.
func TestSubscriberRestartRematches(t *testing.T) {
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "pub")
	subNode := newBackbone(t, lan, "sub")
	pub, err := pubNode.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		sub, err := subNode.SubscribeObjectClass("s", "State")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !sub.WaitMatched(waitLong) {
			t.Fatalf("round %d: restarted subscriber never re-matched", round)
		}
		if err := pub.Update(float64(round), attrsWith(float64(round))); err != nil {
			t.Fatal(err)
		}
		if _, ok := sub.Next(waitLong); !ok {
			t.Fatalf("round %d: no traffic after restart", round)
		}
		if err := sub.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPublisherRestartRematches: the symmetric case — a publisher LP
// closes and a new one registers; the standing subscriber must notice the
// dead channel (scoped BYE) and re-match the replacement.
func TestPublisherRestartRematches(t *testing.T) {
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "pub")
	subNode := newBackbone(t, lan, "sub")
	sub, err := subNode.SubscribeObjectClass("s", "State")
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		pub, err := pubNode.PublishObjectClass("p", "State")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !sub.WaitMatched(waitLong) {
			t.Fatalf("round %d: subscriber never matched restarted publisher", round)
		}
		if err := pub.Update(float64(round), attrsWith(float64(round))); err != nil {
			t.Fatal(err)
		}
		if _, ok := sub.Next(waitLong); !ok {
			t.Fatalf("round %d: no traffic", round)
		}
		if err := pub.Close(); err != nil {
			t.Fatal(err)
		}
		// The subscriber must observe the teardown before the next round.
		deadline := time.Now().Add(waitLong)
		for sub.Matched() {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: subscription never noticed publisher close", round)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestMailboxNextAfterClose verifies Next unblocks when the subscription
// closes underneath a waiting consumer.
func TestMailboxNextAfterClose(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo")
	sub, err := b.SubscribeObjectClass("s", "State")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(waitLong)
		got <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-got:
		if ok {
			t.Error("Next returned data from a closed subscription")
		}
	case <-time.After(waitLong):
		t.Fatal("Next did not unblock on close")
	}
}

// TestAttrsIsolatedFromPublisherMutation: the paper's push model must not
// alias the publisher's buffers — mutating the attribute set after Update
// must not change what subscribers see (copy-at-boundary).
func TestAttrsIsolatedFromPublisherMutation(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo")
	pub, err := b.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.SubscribeObjectClass("s", "State")
	if err != nil {
		t.Fatal(err)
	}
	attrs := wire.AttrSet{}
	attrs.PutFloat64(1, 42)
	if err := pub.Update(0, attrs); err != nil {
		t.Fatal(err)
	}
	attrs.PutFloat64(1, -1) // publisher reuses its map
	r, ok := sub.Next(waitLong)
	if !ok {
		t.Fatal("no reflection")
	}
	if v, _ := r.Attrs.Float64(1); v != 42 {
		t.Errorf("subscriber saw publisher mutation: %v", v)
	}
}

// TestPubSubChurnProperty: random sequences of register/unregister on one
// backbone never corrupt the tables (counts stay consistent).
func TestPubSubChurnProperty(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "churn")
	f := func(ops []uint8) bool {
		var pubs []*Publication
		var subs []*Subscription
		for _, op := range ops {
			switch op % 4 {
			case 0:
				if p, err := b.PublishObjectClass(lpName(len(pubs)), "Churn"); err == nil {
					pubs = append(pubs, p)
				}
			case 1:
				if s, err := b.SubscribeObjectClass(lpName(len(subs)+1000), "Churn"); err == nil {
					subs = append(subs, s)
				}
			case 2:
				if len(pubs) > 0 {
					_ = pubs[len(pubs)-1].Close()
					pubs = pubs[:len(pubs)-1]
				}
			case 3:
				if len(subs) > 0 {
					_ = subs[len(subs)-1].Close()
					subs = subs[:len(subs)-1]
				}
			}
		}
		pt, st := b.Tables()
		okCounts := len(pt) == len(pubs) && len(st) == len(subs)
		for _, p := range pubs {
			_ = p.Close()
		}
		for _, s := range subs {
			_ = s.Close()
		}
		return okCounts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func lpName(i int) string { return "lp-" + string(rune('a'+i%26)) + string(rune('0'+i%10)) }
