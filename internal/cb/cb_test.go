package cb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"codsim/internal/transport"
	"codsim/internal/wire"
)

// fastConfig keeps protocol timers tight so tests run quickly.
func fastConfig() Config {
	return Config{
		BroadcastInterval: 5 * time.Millisecond,
		RefreshInterval:   30 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  80 * time.Millisecond,
	}
}

func newBackbone(t *testing.T, lan transport.LAN, node string) *Backbone {
	t.Helper()
	b, err := New(lan, node, fastConfig())
	if err != nil {
		t.Fatalf("New(%q): %v", node, err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return b
}

const waitLong = 3 * time.Second

func attrsWith(val float64) wire.AttrSet {
	a := wire.AttrSet{}
	a.PutFloat64(1, val)
	return a
}

func TestLocalPubSub(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo")

	pub, err := b.PublishObjectClass("dynamics", "CraneState")
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	sub, err := b.SubscribeObjectClass("visual", "CraneState")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if !sub.Matched() {
		t.Fatal("local subscription not matched immediately")
	}

	if err := pub.Update(1.5, attrsWith(42)); err != nil {
		t.Fatalf("Update: %v", err)
	}
	r, ok := sub.Next(waitLong)
	if !ok {
		t.Fatal("no reflection")
	}
	if r.Class != "CraneState" || r.PubLP != "dynamics" || r.PubNode != "solo" {
		t.Errorf("reflection meta = %+v", r)
	}
	if v, ok := r.Attrs.Float64(1); !ok || v != 42 {
		t.Errorf("attr = %v,%v", v, ok)
	}
	if r.Time != 1.5 {
		t.Errorf("Time = %v", r.Time)
	}
}

func TestLocalSubscribeBeforePublish(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo")

	sub, err := b.SubscribeObjectClass("visual", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	if sub.Matched() {
		t.Fatal("matched before any publisher exists")
	}
	pub, err := b.PublishObjectClass("dynamics", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Matched() {
		t.Fatal("publisher registration did not match local subscriber")
	}
	if err := pub.Update(0, attrsWith(7)); err != nil {
		t.Fatal(err)
	}
	if _, ok := sub.Next(waitLong); !ok {
		t.Fatal("no reflection after late publish")
	}
}

func TestRemotePubSub(t *testing.T) {
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "dynamics-pc")
	subNode := newBackbone(t, lan, "display-pc")

	pub, err := pubNode.PublishObjectClass("dynamics", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("visual", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("virtual channel never established")
	}

	if err := pub.Update(2.25, attrsWith(3.5)); err != nil {
		t.Fatal(err)
	}
	r, ok := sub.Next(waitLong)
	if !ok {
		t.Fatal("no reflection across the LAN")
	}
	if r.PubNode != "dynamics-pc" || r.Time != 2.25 {
		t.Errorf("reflection = %+v", r)
	}
	if v, _ := r.Attrs.Float64(1); v != 3.5 {
		t.Errorf("attr = %v", v)
	}
}

func TestRemotePublisherStartsLate(t *testing.T) {
	lan := transport.NewMemLAN()
	subNode := newBackbone(t, lan, "display-pc")

	sub, err := subNode.SubscribeObjectClass("visual", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // several unmatched broadcasts elapse

	pubNode := newBackbone(t, lan, "dynamics-pc")
	pub, err := pubNode.PublishObjectClass("dynamics", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("late publisher never matched (re-broadcast failed)")
	}
	if err := pub.Update(1, attrsWith(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := sub.Next(waitLong); !ok {
		t.Fatal("no reflection from late publisher")
	}
}

func TestDynamicJoinExtraDisplay(t *testing.T) {
	// The paper's §2.3 claim: an extra display LP can be added without
	// restarting the system.
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "dynamics-pc")
	d1 := newBackbone(t, lan, "display-1")

	pub, err := pubNode.PublishObjectClass("dynamics", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	sub1, err := d1.SubscribeObjectClass("visual-1", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	if !sub1.WaitMatched(waitLong) {
		t.Fatal("first display not matched")
	}
	// Steady-state traffic flowing...
	if err := pub.Update(1, attrsWith(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := sub1.Next(waitLong); !ok {
		t.Fatal("no traffic to display-1")
	}

	// Hot-add a second display node while the system runs.
	d2 := newBackbone(t, lan, "display-2")
	sub2, err := d2.SubscribeObjectClass("visual-2", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	if !sub2.WaitMatched(waitLong) {
		t.Fatal("hot-added display not matched")
	}
	if err := pub.Update(2, attrsWith(2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := sub2.Next(waitLong); !ok {
		t.Fatal("no traffic to hot-added display")
	}
	// The original display keeps receiving as well.
	if _, ok := sub1.Next(waitLong); !ok {
		t.Fatal("display-1 stopped receiving after dynamic join")
	}
}

func TestFanOutOnePublisherManySubscribers(t *testing.T) {
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "pub")
	pub, err := pubNode.PublishObjectClass("dynamics", "CraneState")
	if err != nil {
		t.Fatal(err)
	}

	const n = 5
	subs := make([]*Subscription, n)
	for i := 0; i < n; i++ {
		node := newBackbone(t, lan, fmt.Sprintf("sub-%d", i))
		s, err := node.SubscribeObjectClass("lp", "CraneState")
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	for i, s := range subs {
		if !s.WaitMatched(waitLong) {
			t.Fatalf("subscriber %d unmatched", i)
		}
	}
	if err := pub.Update(9, attrsWith(99)); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		r, ok := s.Next(waitLong)
		if !ok {
			t.Fatalf("subscriber %d got nothing", i)
		}
		if v, _ := r.Attrs.Float64(1); v != 99 {
			t.Errorf("subscriber %d attr = %v", i, v)
		}
	}
}

func TestMultiplePublishersSameClass(t *testing.T) {
	lan := transport.NewMemLAN()
	n1 := newBackbone(t, lan, "n1")
	n2 := newBackbone(t, lan, "n2")
	n3 := newBackbone(t, lan, "n3")

	p1, err := n1.PublishObjectClass("lp-a", "AudioEvent")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := n2.PublishObjectClass("lp-b", "AudioEvent")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n3.SubscribeObjectClass("audio", "AudioEvent", WithQueue(16))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until both publishers have channels.
	deadline := time.Now().Add(waitLong)
	for {
		n3.mu.Lock()
		chans := len(sub.channels)
		n3.mu.Unlock()
		if chans >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second publisher channel never built")
		}
		time.Sleep(time.Millisecond)
	}

	if err := p1.Update(1, attrsWith(1)); err != nil {
		t.Fatal(err)
	}
	if err := p2.Update(2, attrsWith(2)); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		r, ok := sub.Next(waitLong)
		if !ok {
			t.Fatal("missing reflection")
		}
		got[r.PubLP] = true
	}
	if !got["lp-a"] || !got["lp-b"] {
		t.Errorf("publishers seen = %v", got)
	}
}

func TestTwoLPsOnOneComputer(t *testing.T) {
	// §2.1: "One or many LPs can run on a computer."
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "shared-pc")

	pub, err := b.PublishObjectClass("scenario", "ScenarioState")
	if err != nil {
		t.Fatal(err)
	}
	subA, err := b.SubscribeObjectClass("instructor", "ScenarioState")
	if err != nil {
		t.Fatal(err)
	}
	subB, err := b.SubscribeObjectClass("audio", "ScenarioState")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Update(1, attrsWith(5)); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Subscription{subA, subB} {
		if _, ok := s.Next(waitLong); !ok {
			t.Fatal("co-resident LP missed reflection")
		}
	}
}

func TestConflation(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo")
	pub, err := b.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.SubscribeObjectClass("s", "State", WithConflation())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := pub.Update(float64(i), attrsWith(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	r, ok := sub.Latest()
	if !ok {
		t.Fatal("no reflection")
	}
	if v, _ := r.Attrs.Float64(1); v != 10 {
		t.Errorf("conflated value = %v, want newest (10)", v)
	}
	if got := sub.Pending(); got != 0 {
		t.Errorf("pending after Latest = %d", got)
	}
	if b.Stats().Conflations.Value() == 0 {
		t.Error("conflation should count Conflations")
	}
	if b.Stats().MailboxDropped.Value() != 0 {
		t.Error("latest-value coalescing must not count as drops")
	}
	// The per-channel tally names the conflated channel.
	_, subs := b.Tables()
	if len(subs) != 1 || subs[0].Conflated == 0 || subs[0].Policy != "latest-value" {
		t.Errorf("Tables() sub row = %+v, want conflated latest-value row", subs)
	}
}

// TestRowTotalsSurviveChannelTeardown pins the lifetime accounting: the
// subscription row's delivered/dropped/conflated totals keep counting
// after the virtual channel (and its ByChannel entry) is torn down, so a
// post-sweep telemetry scrape still sees what a finished sweep delivered.
func TestRowTotalsSurviveChannelTeardown(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo")
	pub, err := b.PublishObjectClass("p", "Ev")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.SubscribeObjectClass("s", "Ev", WithQueue(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := pub.Update(float64(i), attrsWith(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	_, subs := b.Tables()
	if len(subs) != 1 {
		t.Fatalf("sub table rows = %d", len(subs))
	}
	row := subs[0]
	if len(row.ByChannel) != 0 {
		t.Errorf("ByChannel after teardown = %+v, want empty (channel forgotten)", row.ByChannel)
	}
	if row.Delivered != 5 || row.Dropped != 3 {
		t.Errorf("row totals after teardown = delivered %d dropped %d, want 5/3", row.Delivered, row.Dropped)
	}
	_ = sub
}

func TestQueueOverflowDropsOldest(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo")
	pub, err := b.PublishObjectClass("p", "Ev")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.SubscribeObjectClass("s", "Ev", WithQueue(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := pub.Update(float64(i), attrsWith(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Only the newest 4 (7,8,9,10) survive.
	want := []float64{7, 8, 9, 10}
	for _, w := range want {
		r, ok := sub.Poll()
		if !ok {
			t.Fatalf("missing reflection %v", w)
		}
		if v, _ := r.Attrs.Float64(1); v != w {
			t.Errorf("got %v, want %v", v, w)
		}
	}
	if _, ok := sub.Poll(); ok {
		t.Error("queue had extra entries")
	}
}

func TestCallbackDelivery(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo")

	var mu sync.Mutex
	var got []float64
	sub, err := b.SubscribeObjectClass("s", "State", WithCallback(func(r Reflection) {
		v, _ := r.Attrs.Float64(1)
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := b.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := pub.Update(float64(i), attrsWith(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("callback saw %v", got)
	}
}

func TestSequenceNumbersMonotone(t *testing.T) {
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "pub")
	subNode := newBackbone(t, lan, "sub")

	pub, err := pubNode.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("s", "State", WithQueue(64))
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("not matched")
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := pub.Update(float64(i), attrsWith(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var lastSeq uint32
	for i := 0; i < n; i++ {
		r, ok := sub.Next(waitLong)
		if !ok {
			t.Fatalf("missing reflection %d", i)
		}
		if r.Seq <= lastSeq {
			t.Fatalf("sequence not monotone: %d after %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
	}
}

func TestNullMessages(t *testing.T) {
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "pub")
	subNode := newBackbone(t, lan, "sub")

	pub, err := pubNode.PublishObjectClass("p", "Time")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("s", "Time")
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("not matched")
	}
	if err := pub.SendNull(4.5); err != nil {
		t.Fatal(err)
	}
	r, ok := sub.Next(waitLong)
	if !ok {
		t.Fatal("no null reflection")
	}
	if !r.Null || r.Time != 4.5 || r.Attrs.Len() != 0 {
		t.Errorf("null reflection = %+v", r)
	}
}

func TestRegistrationValidation(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo")

	if _, err := b.PublishObjectClass("", "C"); !errors.Is(err, ErrUnknownLP) {
		t.Errorf("empty LP: %v", err)
	}
	if _, err := b.PublishObjectClass("lp", ""); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("empty class: %v", err)
	}
	if _, err := b.SubscribeObjectClass("", "C"); !errors.Is(err, ErrUnknownLP) {
		t.Errorf("empty LP: %v", err)
	}
	if _, err := b.SubscribeObjectClass("lp", ""); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("empty class: %v", err)
	}
	if _, err := b.PublishObjectClass("lp", "C"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PublishObjectClass("lp", "C"); !errors.Is(err, ErrDuplicateLP) {
		t.Errorf("duplicate publish: %v", err)
	}
	if _, err := b.SubscribeObjectClass("lp", "C"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeObjectClass("lp", "C"); !errors.Is(err, ErrDuplicateLP) {
		t.Errorf("duplicate subscribe: %v", err)
	}
}

func TestTables(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo")
	if _, err := b.PublishObjectClass("dyn", "CraneState"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeObjectClass("vis", "CraneState"); err != nil {
		t.Fatal(err)
	}
	pubs, subs := b.Tables()
	if len(pubs) != 1 || pubs[0].LP != "dyn" || pubs[0].Class != "CraneState" || pubs[0].Channels != 1 {
		t.Errorf("pub table = %+v", pubs)
	}
	if len(subs) != 1 || subs[0].LP != "vis" || subs[0].Channels != 1 {
		t.Errorf("sub table = %+v", subs)
	}
}

func TestPublicationCloseStopsTraffic(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo")
	pub, err := b.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.SubscribeObjectClass("s", "State")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pub.Update(1, attrsWith(1)); !errors.Is(err, ErrHandleClosed) {
		t.Errorf("Update after close = %v", err)
	}
	if sub.Matched() {
		t.Error("subscription still matched after sole publisher closed")
	}
	if err := pub.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestSubscriptionCloseStopsDelivery(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo")
	pub, err := b.PublishObjectClass("p", "State")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.SubscribeObjectClass("s", "State")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pub.Update(1, attrsWith(1)); err != nil {
		t.Fatal(err) // publishing into the void is fine
	}
	if _, ok := sub.Poll(); ok {
		t.Error("closed subscription still buffering")
	}
	if _, ok := sub.Next(10 * time.Millisecond); ok {
		t.Error("Next on closed subscription returned data")
	}
	if err := sub.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestBackboneCloseIdempotent(t *testing.T) {
	lan := transport.NewMemLAN()
	b, err := New(lan, "solo", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("second close = %v", err)
	}
	if _, err := b.PublishObjectClass("p", "C"); !errors.Is(err, ErrClosed) {
		t.Errorf("publish after close = %v", err)
	}
	if _, err := b.SubscribeObjectClass("s", "C"); !errors.Is(err, ErrClosed) {
		t.Errorf("subscribe after close = %v", err)
	}
}

func TestPublisherNodeDeathRecovery(t *testing.T) {
	lan := transport.NewMemLAN()
	subNode := newBackbone(t, lan, "display")
	sub, err := subNode.SubscribeObjectClass("visual", "CraneState")
	if err != nil {
		t.Fatal(err)
	}

	pubNode1, err := New(lan, "dyn-1", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	pub1, err := pubNode1.PublishObjectClass("dynamics", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("initial match failed")
	}
	if err := pub1.Update(1, attrsWith(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := sub.Next(waitLong); !ok {
		t.Fatal("no initial traffic")
	}

	// Kill the publisher node (whole backbone goes away: BYE or timeout).
	if err := pubNode1.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitLong)
	for sub.Matched() {
		if time.Now().After(deadline) {
			t.Fatal("subscription never noticed publisher death")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A replacement publisher node appears; the subscriber's ongoing
	// broadcasts must find it.
	pubNode2 := newBackbone(t, lan, "dyn-2")
	pub2, err := pubNode2.PublishObjectClass("dynamics", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("replacement publisher never matched")
	}
	if err := pub2.Update(2, attrsWith(2)); err != nil {
		t.Fatal(err)
	}
	r, ok := sub.Next(waitLong)
	if !ok {
		t.Fatal("no traffic from replacement publisher")
	}
	if r.PubNode != "dyn-2" {
		t.Errorf("traffic from %q, want dyn-2", r.PubNode)
	}
}

func TestLossyLANStillConverges(t *testing.T) {
	// 40% datagram loss: the periodic re-broadcast must still converge.
	lan := transport.NewMemLAN(transport.WithLoss(0.4), transport.WithSeed(99))
	pubNode := newBackbone(t, lan, "pub")
	subNode := newBackbone(t, lan, "sub")

	if _, err := pubNode.PublishObjectClass("p", "State"); err != nil {
		t.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("s", "State")
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("never converged under 40% loss")
	}
}

func TestEstablishLatencyRecorded(t *testing.T) {
	lan := transport.NewMemLAN()
	pubNode := newBackbone(t, lan, "pub")
	subNode := newBackbone(t, lan, "sub")
	if _, err := pubNode.PublishObjectClass("p", "State"); err != nil {
		t.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("s", "State")
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("not matched")
	}
	if subNode.Stats().EstablishLatency.Count() != 1 {
		t.Errorf("EstablishLatency count = %d", subNode.Stats().EstablishLatency.Count())
	}
	if subNode.Stats().ChannelsUp.Value() == 0 && pubNode.Stats().ChannelsUp.Value() == 0 {
		t.Error("no ChannelsUp recorded")
	}
}

func TestConcurrentPublishers(t *testing.T) {
	lan := transport.NewMemLAN()
	b := newBackbone(t, lan, "solo")
	sub, err := b.SubscribeObjectClass("s", "State", WithQueue(4096))
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 8
		perG       = 100
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		pub, err := b.PublishObjectClass(fmt.Sprintf("p%d", g), "State")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(pub *Publication) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_ = pub.Update(float64(i), attrsWith(float64(i)))
			}
		}(pub)
	}
	wg.Wait()
	var count int
	for {
		if _, ok := sub.Poll(); !ok {
			break
		}
		count++
	}
	if count != goroutines*perG {
		t.Errorf("received %d, want %d", count, goroutines*perG)
	}
}

func TestUDPLANBackbone(t *testing.T) {
	// The whole protocol over real sockets.
	lan, err := transport.NewUDPLAN("127.0.0.1", 39500, 4)
	if err != nil {
		t.Fatal(err)
	}
	pubNode := newBackbone(t, lan, "pub")
	subNode := newBackbone(t, lan, "sub")

	pub, err := pubNode.PublishObjectClass("dynamics", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("visual", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(waitLong) {
		t.Fatal("no channel over real UDP/TCP")
	}
	if err := pub.Update(3.5, attrsWith(8)); err != nil {
		t.Fatal(err)
	}
	r, ok := sub.Next(waitLong)
	if !ok {
		t.Fatal("no reflection over real sockets")
	}
	if v, _ := r.Attrs.Float64(1); v != 8 {
		t.Errorf("attr = %v", v)
	}
}
