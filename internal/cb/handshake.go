package cb

import (
	"context"
	"time"

	"codsim/internal/wire"
)

// handleSubscriptionBroadcast implements the publisher side of the
// initialization protocol (§2.3): on hearing SUBSCRIPTION, the CB checks
// its Publication table; if one of its LPs produces the class, it contacts
// the subscriber's CB and answers ACKNOWLEDGE to start the virtual-channel
// connection.
func (b *Backbone) handleSubscriptionBroadcast(f wire.Frame) {
	if f.Node == b.node {
		return // our own broadcast echoed back
	}
	key := chanKey{peer: f.Node, subLP: f.LP, class: f.Class}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	publishes := false
	for pkey := range b.pubs {
		if pkey.class == f.Class {
			publishes = true
			break
		}
	}
	_, already := b.outKeys[key]
	b.mu.Unlock()

	if !publishes || already {
		return // not the producer, or channel already up: stay silent
	}

	link, err := b.dialPeer(f.Node, f.Addr)
	if err != nil {
		return // subscriber unreachable; its re-broadcast will retry
	}
	ack := wire.Frame{
		Kind:  wire.KindAcknowledge,
		Phase: wire.AckSubscription,
		Node:  b.node,
		LP:    f.LP, // echo the subscriber LP so its CB can match
		Class: f.Class,
		Addr:  b.ifc.Addr(),
	}
	if err := link.send(ack); err != nil {
		b.linkDown(link)
	}
}

// handleFrame dispatches one inbound stream frame.
func (b *Backbone) handleFrame(l *peerLink, f wire.Frame) {
	switch f.Kind {
	case wire.KindAcknowledge:
		switch f.Phase {
		case wire.AckSubscription:
			b.handleSubAck(l, f)
		case wire.AckChannelUp:
			b.handleChannelUp(l, f)
		}
	case wire.KindChannelConn:
		b.handleChannelConnect(l, f)
	case wire.KindUpdateAttrs, wire.KindNull:
		b.handleUpdate(f)
	case wire.KindHeartbeat:
		// lastRecv already refreshed by readLoop; apply any credit counts
		// for reliable channels riding this link (immediate grants and the
		// periodic piggyback both arrive this way — heartbeats are the one
		// frame every build accepts, so credits never churn a legacy link).
		if pairs, ok := f.Attrs.Int64s(wire.AttrCreditCounts); ok {
			for i := 0; i+1 < len(pairs); i += 2 {
				b.applyCredit(l, uint32(pairs[i]), uint32(pairs[i+1]))
			}
		}
	case wire.KindBye:
		if f.Channel != 0 {
			// Channel-scoped BYE: one registration withdrew (an LP
			// closed); only its virtual channel dies, the link and all
			// other channels stay up.
			b.dropChannel(l, f.Channel)
		} else {
			b.linkDown(l)
		}
	case wire.KindFrameReady, wire.KindFrameSwap:
		// Barrier traffic is routed as regular channel updates by the
		// displaysync package; bare frames of these kinds are ignored.
	}
}

// handleSubAck is the subscriber side of step 2: a publisher acknowledged
// our SUBSCRIPTION, so reply with CHANNEL CONNECTION carrying the new
// channel ID (§2.3).
func (b *Backbone) handleSubAck(l *peerLink, f wire.Frame) {
	// Keyed by the *publisher's* node: a subscriber may hold one channel
	// from each publisher node of the class.
	key := chanKey{peer: f.Node, subLP: f.LP, class: f.Class}
	skey := classLP{class: f.Class, lp: f.LP}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	sub, ok := b.subs[skey]
	if !ok {
		b.mu.Unlock()
		return // subscription was withdrawn meanwhile
	}
	if _, dup := b.inSubKeys[key]; dup {
		b.mu.Unlock()
		return // channel from this publisher node already exists/pending
	}
	b.nextChan++
	id := b.nextChan
	ic := newInChannel(id, key, l, sub)
	b.ins[id] = ic
	b.inSubKeys[key] = id
	sub.channels[id] = ic
	b.mu.Unlock()

	conn := wire.Frame{
		Kind:    wire.KindChannelConn,
		Channel: id,
		Node:    b.node,
		LP:      f.LP,
		Class:   f.Class,
		Addr:    b.ifc.Addr(),
	}
	// The delivery policy rides the handshake as control attributes. A
	// drop-oldest subscription sends none — exactly what a legacy peer
	// sends — so policy-less handshakes keep today's semantics on both
	// old and new publishers.
	if sub.policy != wire.PolicyDropOldest {
		conn.Attrs = wire.AttrSet{}
		conn.Attrs.PutUint32(wire.AttrDeliveryPolicy, uint32(sub.policy))
		if sub.policy == wire.PolicyReliable {
			conn.Attrs.PutUint32(wire.AttrCreditWindow, sub.window)
		}
	}
	if err := l.send(conn); err != nil {
		b.linkDown(l)
	}
}

// handleChannelConnect is the publisher side of step 3: record the new
// out-channel — with the delivery policy the subscriber declared, or
// legacy drop-oldest when the handshake carries no policy attribute — and
// confirm with the second ACKNOWLEDGE.
func (b *Backbone) handleChannelConnect(l *peerLink, f wire.Frame) {
	key := chanKey{peer: f.Node, subLP: f.LP, class: f.Class}

	policy := wire.PolicyDropOldest
	if v, ok := f.Attrs.Uint32(wire.AttrDeliveryPolicy); ok && wire.Policy(v).Valid() {
		policy = wire.Policy(v)
	}
	var window uint32
	if v, ok := f.Attrs.Uint32(wire.AttrCreditWindow); ok {
		window = v
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	if _, dup := b.outKeys[key]; dup {
		b.mu.Unlock()
		return
	}
	oc := newOutChannel(f.Class, key, l, nil, f.Channel, policy, window)
	b.outs[f.Class] = append(b.outs[f.Class], oc)
	b.outKeys[key] = oc
	b.outByChan[linkChan{link: l, id: f.Channel}] = oc
	b.mu.Unlock()
	b.stats.ChannelsUp.Inc()

	up := wire.Frame{
		Kind:    wire.KindAcknowledge,
		Phase:   wire.AckChannelUp,
		Channel: f.Channel,
		Node:    b.node,
		LP:      f.LP,
		Class:   f.Class,
	}
	if err := l.send(up); err != nil {
		b.linkDown(l)
	}
}

// handleChannelUp is the subscriber receiving the final ACKNOWLEDGE: the
// publisher has recorded its half, so the channel is now established and
// the subscription counts as matched (§2.3: "an ACKNOWLEDGE message will
// be received again if such a virtual channel is successfully built").
func (b *Backbone) handleChannelUp(l *peerLink, f wire.Frame) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ic, ok := b.ins[f.Channel]
	if !ok || ic.link != l {
		return // torn down meanwhile, or misdirected
	}
	ic.established = true
	if ic.sub != nil {
		b.noteMatchedLocked(ic.sub)
	}
}

// handleUpdate routes an inbound UPDATE/NULL frame to the subscriber LP
// bound to the virtual channel and delivers it as a reflection.
func (b *Backbone) handleUpdate(f wire.Frame) {
	b.mu.Lock()
	ic, ok := b.ins[f.Channel]
	b.mu.Unlock()
	if !ok {
		return // stale channel (e.g. torn down moments ago)
	}
	r := Reflection{
		Class:   f.Class,
		PubNode: f.Node,
		PubLP:   f.LP,
		Channel: f.Channel,
		Seq:     f.Seq,
		Time:    f.Time,
		Null:    f.Kind == wire.KindNull,
		// Copy-at-boundary: the frame's attrs alias the read loop's
		// reused decode buffers, which the next inbound frame overwrites.
		// This Clone is the release point that makes that reuse safe.
		Attrs: f.Attrs.Clone(),
	}
	b.deliver(ic.sub, r)
}

// applyCredit folds a cumulative consumption report — an immediate grant
// or the periodic heartbeat piggyback — into the addressed out-channel's
// window, waking any publisher stalled on it.
func (b *Backbone) applyCredit(l *peerLink, id, cum uint32) {
	b.mu.Lock()
	oc := b.outByChan[linkChan{link: l, id: id}]
	b.mu.Unlock()
	if oc != nil {
		oc.setConsumed(cum)
	}
}

// dropChannel tears down one virtual channel identified by the
// subscriber-assigned ID, on whichever side receives the scoped BYE.
func (b *Backbone) dropChannel(l *peerLink, id uint32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Publisher side: remove the out-channel riding this link.
	for class, chans := range b.outs {
		kept := chans[:0]
		for _, oc := range chans {
			if oc.link == l && oc.remoteChan == id {
				b.removeOutLocked(oc)
				continue
			}
			kept = append(kept, oc)
		}
		b.outs[class] = kept
	}
	// Subscriber side: remove the in-channel and re-arm discovery.
	if ic, ok := b.ins[id]; ok && ic.link == l {
		delete(b.ins, id)
		delete(b.inSubKeys, ic.key)
		if sub := ic.sub; sub != nil {
			delete(sub.channels, id)
			sub.mbox.forgetChannel(id)
			sub.lastBroadcast = time.Time{} // due immediately
		}
	}
}

// WaitMatchedContext blocks until the subscription has at least one fully
// established channel or ctx is done, in which case it returns ctx.Err().
func (s *Subscription) WaitMatchedContext(ctx context.Context) error {
	return waitCond(ctx, s.Matched)
}

// WaitMatched is the duration-based shim over WaitMatchedContext; it
// reports whether a channel came up within the timeout.
func (s *Subscription) WaitMatched(timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.WaitMatchedContext(ctx) == nil
}
