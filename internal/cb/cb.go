// Package cb implements the Communication Backbone (CB), the paper's core
// contribution (§2): a transparent publish/subscribe communication layer run
// on every computer of the Cluster Of Desktop computers (COD).
//
// Logical Processes (LPs) register with their resident CB as publishers or
// subscribers of object classes. The CB records them in its Publication and
// Subscription tables and builds virtual channels between matching entries:
//
//   - A subscriber's CB broadcasts a SUBSCRIPTION datagram at a constant
//     interval until a publisher's CB answers ACKNOWLEDGE (§2.3).
//   - The subscriber then sends CHANNEL CONNECTION with the information
//     needed to construct the virtual channel; a second ACKNOWLEDGE
//     confirms that the channel is up.
//   - Publishers push data with UPDATE ATTRIBUTE VALUE; the CB routes each
//     update through the virtual channels and the receiving CB delivers it
//     to its subscriber LPs as REFLECT ATTRIBUTE VALUE (push/pull model).
//
// LPs on the same computer are matched through an in-process fast path; LPs
// across the network are matched through the broadcast protocol. Because
// the subscriber keeps re-broadcasting at a slow refresh cadence even after
// matching, an LP (an extra display, for example) can be added to a running
// system without restarting anything — the paper's dynamic-join property —
// and late-starting publishers still discover existing subscribers.
package cb

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"codsim/internal/metrics"
	"codsim/internal/transport"
	"codsim/internal/wire"
)

// Errors returned by the backbone.
//
// Note: Update deliberately succeeds when a class has no channels yet —
// publishing into the void is legal pub/sub, and modules start pushing
// before discovery completes. Callers that want "did anyone hear me"
// semantics use the cod SDK, whose typed Update reports cod.ErrNoSubscribers
// on the no-channel path.
var (
	ErrClosed       = errors.New("cb: backbone closed")
	ErrDuplicateLP  = errors.New("cb: LP already registered for class")
	ErrUnknownClass = errors.New("cb: class name must not be empty")
	ErrUnknownLP    = errors.New("cb: LP name must not be empty")
	ErrHandleClosed = errors.New("cb: registration handle closed")
	// ErrWindowFull reports an Update that found at least one reliable
	// channel's credit window exhausted: that subscriber got nothing
	// (every other channel was delivered to), and retrying before it
	// consumes will fail the same way. UpdateContext blocks instead.
	ErrWindowFull = errors.New("cb: reliable send window full")
)

// Config tunes the protocol timers. The zero value is replaced by defaults.
type Config struct {
	// BroadcastInterval is the period of SUBSCRIPTION re-broadcasts while
	// a subscription entry is still unmatched (§2.3 "constant time
	// interval").
	BroadcastInterval time.Duration
	// RefreshInterval is the slower re-broadcast period after the entry
	// has at least one channel, which lets late-starting publishers find
	// existing subscribers (dynamic join).
	RefreshInterval time.Duration
	// HeartbeatInterval is the idle-link beacon period.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a peer dead after this long without any
	// inbound frame; its channels are torn down and affected
	// subscriptions return to fast re-broadcast.
	HeartbeatTimeout time.Duration
	// MailboxDepth is the default per-subscription buffer depth.
	MailboxDepth int
	// Now supplies the backbone's clock for timestamping (last-receive
	// times, establish-latency measurements, broadcast due times). Nil
	// means time.Now. Timer *scheduling* still runs on real tickers; the
	// hook exists so tests and the cod SDK can pin timestamps.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.BroadcastInterval <= 0 {
		c.BroadcastInterval = 50 * time.Millisecond
	}
	if c.RefreshInterval <= 0 {
		c.RefreshInterval = 500 * time.Millisecond
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 250 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 4 * c.HeartbeatInterval
	}
	if c.MailboxDepth <= 0 {
		c.MailboxDepth = 64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats exposes the backbone's instrumentation counters.
type Stats struct {
	// BroadcastsSent counts SUBSCRIPTION datagrams sent.
	BroadcastsSent metrics.Counter
	// ChannelsUp counts virtual channels fully established (both sides).
	ChannelsUp metrics.Counter
	// UpdatesSent counts UPDATE frames pushed by local publishers
	// (per channel, so one Update over three channels counts three).
	UpdatesSent metrics.Counter
	// ReflectsDelivered counts reflections delivered to local LPs.
	ReflectsDelivered metrics.Counter
	// MailboxDropped counts reflections dropped at full drop-oldest
	// mailboxes (per-channel attribution is in Backbone.Tables).
	MailboxDropped metrics.Counter
	// Conflations counts latest-value coalescings: a newer reflection
	// replaced a buffered one of the same channel at a full mailbox.
	Conflations metrics.Counter
	// CreditStalls counts sends that found a reliable channel's credit
	// window exhausted (the publisher blocked or got ErrWindowFull).
	CreditStalls metrics.Counter
	// CreditsGranted counts credit grants issued by local subscribers
	// (immediate CREDIT frames and local fast-path grants; heartbeat
	// piggybacks are not counted).
	CreditsGranted metrics.Counter
	// LinksDown counts peer links declared dead.
	LinksDown metrics.Counter
	// EstablishLatency records registration→first-channel latency per
	// subscription entry, in seconds.
	EstablishLatency metrics.Summary
}

// Backbone is one computer's Communication Backbone. Create it with New and
// release it with Close. All methods are safe for concurrent use.
type Backbone struct {
	node string
	ifc  transport.Interface
	cfg  Config

	mu        sync.Mutex
	closed    bool
	pubs      map[classLP]*Publication
	subs      map[classLP]*Subscription
	outs      map[string][]*outChannel // class → established out channels
	outKeys   map[chanKey]*outChannel  // dedup of pub-side channels
	outByChan map[linkChan]*outChannel // credit routing: (link, id) → channel
	inSubKeys map[chanKey]uint32       // dedup of sub-side channels
	ins       map[uint32]*inChannel    // channel ID → subscriber binding
	peers     map[string]*peerLink     // remote node → named link
	links     map[*peerLink]struct{}   // every live link, named or pending
	nextChan  uint32

	stats Stats

	done chan struct{}
	wg   sync.WaitGroup
}

// classLP keys a table entry: one LP's registration for one class.
type classLP struct {
	class string
	lp    string
}

// chanKey identifies a virtual channel endpoint pairing for deduplication.
// peer is the remote node: on the publisher side it names the subscriber's
// node, on the subscriber side the publisher's node. Each side creates at
// most one channel per key.
type chanKey struct {
	peer  string
	subLP string
	class string
}

// linkChan addresses a publisher-side channel by the link it rides and the
// subscriber-assigned ID — the coordinates a CREDIT frame carries. Channel
// IDs are assigned per subscriber backbone, so two subscribers can pick
// the same ID; the link disambiguates. Local fast-path channels use a nil
// link (local IDs come from this backbone's own counter, so they are
// unique among themselves).
type linkChan struct {
	link *peerLink
	id   uint32
}

// New attaches a backbone to the LAN under the given node name.
func New(lan transport.LAN, node string, cfg Config) (*Backbone, error) {
	ifc, err := lan.Attach(node)
	if err != nil {
		return nil, fmt.Errorf("cb: attach %q: %w", node, err)
	}
	b := &Backbone{
		node:      node,
		ifc:       ifc,
		cfg:       cfg.withDefaults(),
		pubs:      make(map[classLP]*Publication),
		subs:      make(map[classLP]*Subscription),
		outs:      make(map[string][]*outChannel),
		outKeys:   make(map[chanKey]*outChannel),
		outByChan: make(map[linkChan]*outChannel),
		inSubKeys: make(map[chanKey]uint32),
		ins:       make(map[uint32]*inChannel),
		peers:     make(map[string]*peerLink),
		links:     make(map[*peerLink]struct{}),
		done:      make(chan struct{}),
	}
	b.wg.Add(3)
	go b.acceptLoop()
	go b.datagramLoop()
	go b.timerLoop()
	return b, nil
}

// Node returns the backbone's node name.
func (b *Backbone) Node() string { return b.node }

// now reads the configured clock.
func (b *Backbone) now() time.Time { return b.cfg.Now() }

// Addr returns the backbone's dialable stream address.
func (b *Backbone) Addr() string { return b.ifc.Addr() }

// Stats returns the live instrumentation counters. The pointer stays valid
// for the backbone's lifetime.
func (b *Backbone) Stats() *Stats { return &b.stats }

// Close sends BYE to all peers, tears down every channel and registration,
// and detaches from the LAN.
func (b *Backbone) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	// Every link must be shut down — including pending accepted links
	// that never identified themselves — or their read pumps would keep
	// wg.Wait below blocked forever.
	links := make([]*peerLink, 0, len(b.links))
	for l := range b.links {
		links = append(links, l)
	}
	subs := make([]*Subscription, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	// Release publishers stalled on reliable windows: their channels will
	// never be consumed from again.
	for _, chans := range b.outs {
		for _, oc := range chans {
			oc.release()
		}
	}
	b.mu.Unlock()

	bye := wire.Frame{Kind: wire.KindBye, Node: b.node}
	for _, l := range links {
		_ = l.send(bye) // best effort
		l.shutdown()
	}
	for _, s := range subs {
		s.mbox.close()
	}
	close(b.done)
	err := b.ifc.Close()
	b.wg.Wait()
	return err
}

// TableEntry describes one row of the Publication or Subscription table,
// for introspection (the instructor monitor, cmd/codnode and the tests
// use this).
type TableEntry struct {
	LP       string
	Class    string
	Channels int
	// Policy is the subscription's delivery policy (subscription rows
	// only; publisher rows leave it empty — each of their channels
	// carries the policy its subscriber declared).
	Policy string
	// Delivered totals reflections buffered into this subscription's
	// mailbox since it subscribed; Dropped and Conflated total its
	// losses over the same lifetime. ByChannel breaks the counts down
	// per *live* virtual channel so the lossy publisher can be named —
	// entries vanish with their channel, but the row totals keep
	// counting across link churn. Subscription rows only.
	Delivered uint64
	Dropped   uint64
	Conflated uint64
	ByChannel []ChannelTally
	// Stalls counts credit-window stall episodes across the class's out
	// channels (publisher rows only): how often a send found a reliable
	// subscriber's window exhausted.
	Stalls uint64
}

// Tables returns snapshots of the Publication and Subscription tables.
func (b *Backbone) Tables() (pubs, subs []TableEntry) {
	b.mu.Lock()
	peerOf := make(map[uint32]string) // channel ID → publishing node
	for id, ic := range b.ins {
		peerOf[id] = ic.key.peer
	}
	type subRow struct {
		entry TableEntry
		s     *Subscription
	}
	var subRows []subRow
	for key, s := range b.subs {
		subRows = append(subRows, subRow{
			entry: TableEntry{
				LP:       key.lp,
				Class:    key.class,
				Channels: len(s.channels),
				Policy:   s.policy.String(),
			},
			s: s,
		})
	}
	for key := range b.pubs {
		e := TableEntry{
			LP:       key.lp,
			Class:    key.class,
			Channels: len(b.outs[key.class]),
		}
		for _, oc := range b.outs[key.class] {
			oc.credMu.Lock()
			e.Stalls += oc.stalls
			oc.credMu.Unlock()
		}
		pubs = append(pubs, e)
	}
	b.mu.Unlock()

	// Mailbox tallies are read outside b.mu: the mailbox has its own lock
	// and push runs without b.mu held.
	for _, row := range subRows {
		e := row.entry
		e.ByChannel = row.s.mbox.channelTallies()
		for i := range e.ByChannel {
			e.ByChannel[i].Peer = peerOf[e.ByChannel[i].Channel]
		}
		// Row totals come from the mailbox's lifetime tallies, not a sum
		// of ByChannel: the per-channel entries die with their channel,
		// and a fast sweep would otherwise reset the row to zero between
		// two scrapes.
		totals := row.s.mbox.rowTallies()
		e.Delivered = totals.Delivered
		e.Dropped = totals.Dropped
		e.Conflated = totals.Conflated
		subs = append(subs, e)
	}
	return pubs, subs
}

// acceptLoop admits inbound peer links.
func (b *Backbone) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ifc.Accept()
		if err != nil {
			return // interface closed
		}
		b.startLink(conn, "") // peer name learned from its first frame
	}
}

// datagramLoop handles broadcast discovery traffic.
func (b *Backbone) datagramLoop() {
	defer b.wg.Done()
	for dg := range b.ifc.Recv() {
		f, err := wire.Decode(dg.Payload)
		if err != nil {
			continue // malformed datagram; drop
		}
		if f.Kind == wire.KindSubscription {
			b.handleSubscriptionBroadcast(f)
		}
	}
}

// timerLoop drives subscription re-broadcasts, heartbeats and link-death
// detection off one ticker.
func (b *Backbone) timerLoop() {
	defer b.wg.Done()
	tick := b.cfg.BroadcastInterval / 5
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	lastHB := b.now()
	for {
		select {
		case <-b.done:
			return
		case <-ticker.C:
			now := b.now()
			b.broadcastPending(now)
			if now.Sub(lastHB) >= b.cfg.HeartbeatInterval {
				lastHB = now
				b.heartbeat(now)
			}
		}
	}
}

// broadcastPending sends SUBSCRIPTION datagrams for entries that are due:
// unmatched entries at BroadcastInterval, matched ones at RefreshInterval.
func (b *Backbone) broadcastPending(now time.Time) {
	b.mu.Lock()
	var frames []wire.Frame
	for key, s := range b.subs {
		due := b.cfg.BroadcastInterval
		if len(s.channels) > 0 {
			due = b.cfg.RefreshInterval
		}
		if now.Sub(s.lastBroadcast) < due {
			continue
		}
		s.lastBroadcast = now
		frames = append(frames, wire.Frame{
			Kind:  wire.KindSubscription,
			Node:  b.node,
			LP:    key.lp,
			Class: key.class,
			Addr:  b.ifc.Addr(),
		})
	}
	b.mu.Unlock()

	for _, f := range frames {
		payload, err := f.Encode()
		if err != nil {
			continue
		}
		if err := b.ifc.Broadcast(payload); err == nil {
			b.stats.BroadcastsSent.Inc()
		}
	}
}

// heartbeat beacons every link and reaps dead ones — including pending
// links whose peer never spoke. Each beacon piggybacks the cumulative
// consumption counts of the link's reliable in-channels, so a lost CREDIT
// frame stalls a publisher for at most one heartbeat period.
func (b *Backbone) heartbeat(now time.Time) {
	b.mu.Lock()
	links := make([]*peerLink, 0, len(b.links))
	for l := range b.links {
		links = append(links, l)
	}
	credits := make(map[*peerLink][]int64)
	for id, ic := range b.ins {
		if ic.link == nil || ic.sub == nil || ic.sub.policy != wire.PolicyReliable {
			continue
		}
		credits[ic.link] = append(credits[ic.link], int64(id), int64(ic.sub.mbox.consumedCount(id)))
	}
	b.mu.Unlock()

	for _, l := range links {
		if now.Sub(l.lastRecvTime()) > b.cfg.HeartbeatTimeout {
			b.linkDown(l)
			continue
		}
		hb := wire.Frame{Kind: wire.KindHeartbeat, Node: b.node}
		if pairs := credits[l]; len(pairs) > 0 {
			hb.Attrs = wire.AttrSet{}
			hb.Attrs.PutInt64s(wire.AttrCreditCounts, pairs)
		}
		_ = l.send(hb)
	}
}

// sendGrant pushes one cumulative credit grant for a reliable
// subscription's channel id back to its publisher — directly for local
// fast-path channels, as a credit-bearing HEARTBEAT frame for remote
// ones (legacy-safe: old builds accept the frame and ignore the
// attribute). Called once per grant batch (Subscription.grantEvery); the
// periodic heartbeat piggyback covers the remainder.
func (b *Backbone) sendGrant(s *Subscription, id, cum uint32) {
	b.mu.Lock()
	ic := s.channels[id]
	if ic == nil {
		b.mu.Unlock()
		// Channel torn down (its publisher was already released); the
		// drain that got us here resurrected the mailbox's credit entry,
		// so drop it again.
		s.mbox.forgetChannel(id)
		return
	}
	link := ic.link
	var local *outChannel
	if link == nil {
		local = b.outByChan[linkChan{id: id}]
	}
	b.mu.Unlock()

	if link == nil {
		if local != nil {
			local.setConsumed(cum)
			b.stats.CreditsGranted.Inc()
		}
		return
	}
	grant := wire.Frame{Kind: wire.KindHeartbeat, Node: b.node, Attrs: wire.AttrSet{}}
	grant.Attrs.PutInt64s(wire.AttrCreditCounts, []int64{int64(id), int64(cum)})
	if err := link.send(grant); err != nil {
		b.linkDown(link)
		return
	}
	b.stats.CreditsGranted.Inc()
}
