// Package displaysync implements the surround-view frame synchronization of
// §4: the three display computers render one frame each, report FRAME READY
// to the synchronization server (the fourth computer of the rack), and only
// present ("swap") when the server answers FRAME SWAP — so the three
// monitors always show the same simulation frame (Fig. 10, ref [11]).
//
// The barrier is the source of the paper's measured overhead: the surround
// view runs at 16 fps with 3235 polygons, below the free-running rate of a
// single display, because every frame costs an extra READY/SWAP round trip
// and a wait for the slowest display. BenchmarkSurroundView reproduces
// exactly this gap.
//
// The protocol rides the ordinary CB virtual channels: displays publish
// ClassFrameReady and subscribe ClassFrameSwap; the server does the
// opposite. A display added at runtime (dynamic join, §2.3) is admitted
// automatically and its frame counter is rebased onto the server's.
package displaysync

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"codsim/internal/cb"
	"codsim/internal/fom"
	"codsim/internal/metrics"
)

// Errors returned by the package.
var (
	ErrTimeout = errors.New("displaysync: timed out waiting for swap")
	ErrStopped = errors.New("displaysync: stopped")
)

// ServerConfig tunes the synchronization server.
type ServerConfig struct {
	// Expected lists display LP names that must report before the first
	// swap is released. Displays beyond this list are auto-admitted when
	// their first FRAME READY arrives (dynamic join).
	Expected []string
	// StallTimeout evicts a display that stops reporting while others
	// wait, so one dead node cannot freeze the surround view. Zero
	// disables eviction.
	StallTimeout time.Duration
	// PollInterval bounds how long the server blocks waiting for READY
	// traffic before re-checking stalls. Defaults to 10 ms.
	PollInterval time.Duration
	// Pipeline is the §5 frame-rate acceleration the paper left as
	// future work ("further accelerating of the frame rate is possible
	// and currently under investigation"): with Pipeline = n, a display
	// may run up to n frames ahead of the slowest one before the barrier
	// blocks it, overlapping render work that the strict swap-lock
	// serializes. 0 or 1 is the paper's strict barrier; 2 is classic
	// double buffering. The displays stay within n frames of each other,
	// trading a bounded skew for throughput (see the EXP-1 ablation).
	Pipeline int
}

// Server is the synchronization-server LP.
type Server struct {
	cfg ServerConfig
	pub *cb.Publication
	sub *cb.Subscription

	mu       sync.Mutex
	frame    uint32                // next frame to release
	displays map[string]*dispState // display LP → progress
	evicted  metrics.Counter
	swaps    metrics.Counter

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

type dispState struct {
	baseline   uint32 // server frame at admission minus its first frame
	ready      uint32 // latest effective ready frame + 1 (0 = none yet)
	lastReport time.Time
}

// NewServer registers the synchronization server on the given backbone
// under LP name lpName.
func NewServer(backbone *cb.Backbone, lpName string, cfg ServerConfig) (*Server, error) {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	if cfg.Pipeline < 1 {
		cfg.Pipeline = 1 // the paper's strict swap-lock
	}
	pub, err := backbone.PublishObjectClass(lpName, fom.ClassFrameSwap)
	if err != nil {
		return nil, fmt.Errorf("displaysync: publish swap: %w", err)
	}
	// Drop-oldest is the deliberate legacy contract of the swap-lock: the
	// queue is far deeper than displays-in-flight per frame, so a drop is
	// unreachable in practice, and a stalled display is evicted by
	// StallTimeout rather than backpressured.
	sub, err := backbone.SubscribeObjectClass(lpName, fom.ClassFrameReady, cb.WithQueue(1024), cb.WithDropOldest())
	if err != nil {
		_ = pub.Close()
		return nil, fmt.Errorf("displaysync: subscribe ready: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		pub:      pub,
		sub:      sub,
		displays: make(map[string]*dispState, len(cfg.Expected)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	now := time.Now()
	for _, name := range cfg.Expected {
		s.displays[name] = &dispState{lastReport: now}
	}
	return s, nil
}

// Start launches the server loop goroutine.
func (s *Server) Start() {
	go func() {
		defer close(s.done)
		s.serve()
	}()
}

// Stop terminates the server loop and waits for it.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Frame returns the next frame index the server will release.
func (s *Server) Frame() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frame
}

// Displays returns the names of currently admitted displays.
func (s *Server) Displays() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.displays))
	for n := range s.displays {
		names = append(names, n)
	}
	return names
}

// Evicted returns how many displays were evicted for stalling.
func (s *Server) Evicted() int64 { return s.evicted.Value() }

// Swaps returns how many FRAME SWAP releases the server has published.
func (s *Server) Swaps() int64 { return s.swaps.Value() }

func (s *Server) serve() {
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if r, ok := s.sub.Next(s.cfg.PollInterval); ok {
			s.handleReady(r)
		}
		s.reapStalls()
		s.release()
	}
}

// handleReady records one FRAME READY report.
func (s *Server) handleReady(r cb.Reflection) {
	mark, err := fom.DecodeFrameMark(r.Attrs)
	if err != nil {
		return // malformed; ignore
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, known := s.displays[r.PubLP]
	if !known {
		// Dynamic join: admit and rebase its counter onto ours.
		d = &dispState{baseline: s.frame - mark.Frame}
		s.displays[r.PubLP] = d
	}
	eff := mark.Frame + d.baseline
	if eff+1 > d.ready {
		d.ready = eff + 1
	}
	d.lastReport = time.Now()
}

// reapStalls evicts displays that stopped reporting while others wait.
func (s *Server) reapStalls() {
	if s.cfg.StallTimeout <= 0 {
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.displays) < 2 {
		return // nothing to unblock
	}
	for name, d := range s.displays {
		if d.ready <= s.frame && now.Sub(d.lastReport) > s.cfg.StallTimeout {
			delete(s.displays, name)
			s.evicted.Inc()
		}
	}
}

// release publishes FRAME SWAP while every admitted display has reported
// deep enough into the pipeline window: with Pipeline = 1 every display
// must have reported the current frame (strict swap-lock); with a deeper
// pipeline a display may lag up to Pipeline-1 frames before it gates the
// swap.
func (s *Server) release() {
	for {
		s.mu.Lock()
		if len(s.displays) == 0 {
			s.mu.Unlock()
			return
		}
		lag := uint32(s.cfg.Pipeline - 1)
		allReady := true
		for _, d := range s.displays {
			if d.ready+lag <= s.frame {
				allReady = false
				break
			}
		}
		if !allReady {
			s.mu.Unlock()
			return
		}
		frame := s.frame
		s.frame++
		s.mu.Unlock()

		mark := fom.FrameMark{Frame: frame}
		if err := s.pub.Update(float64(frame), mark.Encode()); err != nil {
			return
		}
		s.swaps.Inc()
	}
}

// Display is the barrier client run by each display computer.
type Display struct {
	name string
	pub  *cb.Publication
	sub  *cb.Subscription

	mu       sync.Mutex
	frame    uint32 // local frame counter
	lastSwap uint32 // newest swap index seen + 1 (0 = none)
	tracker  metrics.FrameTracker
}

// NewDisplay registers a display client on the given backbone.
func NewDisplay(backbone *cb.Backbone, lpName string) (*Display, error) {
	pub, err := backbone.PublishObjectClass(lpName, fom.ClassFrameReady)
	if err != nil {
		return nil, fmt.Errorf("displaysync: publish ready: %w", err)
	}
	// Same legacy drop-oldest contract as the server side: see NewServer.
	sub, err := backbone.SubscribeObjectClass(lpName, fom.ClassFrameSwap, cb.WithQueue(256), cb.WithDropOldest())
	if err != nil {
		_ = pub.Close()
		return nil, fmt.Errorf("displaysync: subscribe swap: %w", err)
	}
	return &Display{name: lpName, pub: pub, sub: sub}, nil
}

// WaitServer blocks until both barrier channels — the swap subscription
// and the ready publication — are established, or the timeout elapses.
// Skipping this wait risks publishing the first FRAME READY into the void
// before the server's subscription channel exists.
func (d *Display) WaitServer(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if d.sub.Matched() && d.pub.Channels() > 0 {
			// Discard swaps that accumulated while we were joining: a
			// late display must synchronize to the *live* frame edge,
			// not race through a stale backlog.
			for {
				if _, ok := d.sub.Poll(); !ok {
					break
				}
			}
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Frame returns the display's local frame counter.
func (d *Display) Frame() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.frame
}

// FPS returns the achieved frame rate so far.
func (d *Display) FPS() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracker.FPS()
}

// Tracker returns a copy of the frame tracker for reporting.
func (d *Display) Tracker() metrics.FrameTracker {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracker
}

// Ready reports the local frame as rendered (renderTime in seconds).
func (d *Display) Ready(renderTime float64) error {
	d.mu.Lock()
	frame := d.frame
	d.mu.Unlock()
	mark := fom.FrameMark{Frame: frame, RenderTime: renderTime}
	return d.pub.Update(float64(frame), mark.Encode())
}

// WaitSwap blocks until a swap newer than the last seen arrives, then
// advances the local frame counter. It returns ErrTimeout when the server
// stays silent for the whole timeout.
func (d *Display) WaitSwap(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("%w: frame %d", ErrTimeout, d.Frame())
		}
		r, ok := d.sub.Next(remain)
		if !ok {
			return fmt.Errorf("%w: frame %d", ErrTimeout, d.Frame())
		}
		mark, err := fom.DecodeFrameMark(r.Attrs)
		if err != nil {
			continue
		}
		d.mu.Lock()
		if mark.Frame+1 > d.lastSwap {
			d.lastSwap = mark.Frame + 1
			d.frame++
			d.mu.Unlock()
			return nil
		}
		d.mu.Unlock()
	}
}

// RunFrames drives the render→ready→swap loop for n frames, invoking
// render for each and timing the full barrier-synchronized frame. timeout
// bounds each barrier wait.
func (d *Display) RunFrames(n int, timeout time.Duration, render func(frame uint32)) error {
	for i := 0; i < n; i++ {
		frameStart := time.Now()
		frame := d.Frame()
		render(frame)
		if err := d.Ready(time.Since(frameStart).Seconds()); err != nil {
			return fmt.Errorf("displaysync: ready: %w", err)
		}
		if err := d.WaitSwap(timeout); err != nil {
			return err
		}
		d.mu.Lock()
		d.tracker.TickInterval(time.Since(frameStart))
		d.mu.Unlock()
	}
	return nil
}

// RunFree drives n frames without any barrier (the free-running ablation:
// what a single display achieves when not synchronized).
func (d *Display) RunFree(n int, render func(frame uint32)) {
	for i := 0; i < n; i++ {
		frameStart := time.Now()
		d.mu.Lock()
		frame := d.frame
		d.frame++
		d.mu.Unlock()
		render(frame)
		d.mu.Lock()
		d.tracker.TickInterval(time.Since(frameStart))
		d.mu.Unlock()
	}
}

// Close withdraws the display's registrations.
func (d *Display) Close() error {
	err1 := d.pub.Close()
	err2 := d.sub.Close()
	return errors.Join(err1, err2)
}
