package displaysync

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"codsim/internal/cb"
	"codsim/internal/transport"
)

func fastCfg() cb.Config {
	return cb.Config{
		BroadcastInterval: 5 * time.Millisecond,
		RefreshInterval:   30 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  80 * time.Millisecond,
	}
}

const waitLong = 5 * time.Second

// rig builds a sync server on its own node plus n display nodes, mirroring
// the paper's rack: display computers 1..n and the synchronization server.
func rig(t *testing.T, lan transport.LAN, n int) (*Server, []*Display) {
	t.Helper()
	serverBB, err := cb.New(lan, "sync-server", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = serverBB.Close() })

	expected := make([]string, n)
	for i := range expected {
		expected[i] = fmt.Sprintf("display-%d", i+1)
	}
	srv, err := NewServer(serverBB, "sync", ServerConfig{Expected: expected, StallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	displays := make([]*Display, n)
	for i := range displays {
		bb, err := cb.New(lan, fmt.Sprintf("display-pc-%d", i+1), fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = bb.Close() })
		d, err := NewDisplay(bb, expected[i])
		if err != nil {
			t.Fatal(err)
		}
		displays[i] = d
	}
	for i, d := range displays {
		if !d.WaitServer(waitLong) {
			t.Fatalf("display %d never linked to sync server", i+1)
		}
	}
	return srv, displays
}

func TestBarrierLockstep(t *testing.T) {
	lan := transport.NewMemLAN()
	srv, displays := rig(t, lan, 3)

	const frames = 30
	var (
		mu      sync.Mutex
		maxSkew uint32
		active  = map[uint32]int{} // frame → renders in flight
	)
	var wg sync.WaitGroup
	errs := make([]error, len(displays))
	for i, d := range displays {
		wg.Add(1)
		go func(i int, d *Display) {
			defer wg.Done()
			errs[i] = d.RunFrames(frames, waitLong, func(frame uint32) {
				mu.Lock()
				active[frame]++
				// Compute skew across current frame counters.
				var lo, hi uint32 = ^uint32(0), 0
				for _, dd := range displays {
					f := dd.Frame()
					if f < lo {
						lo = f
					}
					if f > hi {
						hi = f
					}
				}
				if skew := hi - lo; skew > maxSkew {
					maxSkew = skew
				}
				mu.Unlock()
				time.Sleep(time.Millisecond) // simulated render cost
			})
		}(i, d)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("display %d: %v", i+1, err)
		}
	}
	// The barrier allows at most one frame of skew between displays.
	if maxSkew > 1 {
		t.Errorf("frame skew = %d, want <= 1", maxSkew)
	}
	// Every display completed every frame.
	for i, d := range displays {
		if got := d.Frame(); got != frames {
			t.Errorf("display %d frame = %d, want %d", i+1, got, frames)
		}
		if d.FPS() <= 0 {
			t.Errorf("display %d FPS = %v", i+1, d.FPS())
		}
	}
	if srv.Swaps() < frames {
		t.Errorf("server swaps = %d, want >= %d", srv.Swaps(), frames)
	}
}

func TestBarrierWaitsForSlowest(t *testing.T) {
	lan := transport.NewMemLAN()
	_, displays := rig(t, lan, 2)

	const frames = 10
	slow := 20 * time.Millisecond
	var wg sync.WaitGroup
	errs := make([]error, 2)
	start := time.Now()
	for i, d := range displays {
		wg.Add(1)
		go func(i int, d *Display) {
			defer wg.Done()
			cost := time.Duration(0)
			if i == 1 {
				cost = slow // one display is 20 ms slower per frame
			}
			errs[i] = d.RunFrames(frames, waitLong, func(uint32) { time.Sleep(cost) })
		}(i, d)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("display %d: %v", i+1, err)
		}
	}
	// Total time is governed by the slow display.
	if elapsed < time.Duration(frames)*slow {
		t.Errorf("elapsed %v < %v: barrier did not wait for slowest", elapsed, time.Duration(frames)*slow)
	}
	// The fast display's achieved fps equals the slow one's (sync overhead).
	fastFPS := displays[0].FPS()
	slowFPS := displays[1].FPS()
	if fastFPS > slowFPS*1.25 {
		t.Errorf("fast display fps %v >> slow %v: not synchronized", fastFPS, slowFPS)
	}
}

func TestDynamicJoinDisplay(t *testing.T) {
	// §2.3: "an LP (an extra display, for example) can be dynamically
	// added to the system without restarting the entire system."
	lan := transport.NewMemLAN()
	srv, displays := rig(t, lan, 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, d := range displays {
		wg.Add(1)
		go func(d *Display) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := d.RunFrames(1, waitLong, func(uint32) {}); err != nil {
					return
				}
			}
		}(d)
	}

	// Let the original pair run some frames.
	time.Sleep(100 * time.Millisecond)
	if srv.Frame() == 0 {
		t.Fatal("no progress before join")
	}

	// Hot-add display-3 on a new node.
	bb, err := cb.New(lan, "display-pc-3", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer bb.Close()
	d3, err := NewDisplay(bb, "display-3")
	if err != nil {
		t.Fatal(err)
	}
	if !d3.WaitServer(waitLong) {
		t.Fatal("hot-added display never linked")
	}
	// Keep the new display rendering while we wait for the server to
	// process its READY reports — admission is asynchronous by design.
	d3stop := make(chan struct{})
	var d3wg sync.WaitGroup
	d3wg.Add(1)
	go func() {
		defer d3wg.Done()
		for {
			select {
			case <-d3stop:
				return
			default:
			}
			if err := d3.RunFrames(1, waitLong, func(uint32) {}); err != nil {
				return
			}
		}
	}()
	admitted := false
	deadline := time.Now().Add(waitLong)
	for time.Now().Before(deadline) {
		for _, name := range srv.Displays() {
			if name == "display-3" {
				admitted = true
			}
		}
		if admitted {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(d3stop)
	d3wg.Wait()
	close(stop)
	wg.Wait()
	if !admitted {
		t.Errorf("server displays = %v, missing display-3", srv.Displays())
	}
	if got := d3.Frame(); got == 0 {
		t.Error("joined display rendered no frames")
	}
}

func TestStallEviction(t *testing.T) {
	lan := transport.NewMemLAN()
	serverBB, err := cb.New(lan, "sync-server", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer serverBB.Close()
	srv, err := NewServer(serverBB, "sync", ServerConfig{
		Expected:     []string{"display-1", "display-2"},
		StallTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	bb, err := cb.New(lan, "display-pc-1", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer bb.Close()
	d1, err := NewDisplay(bb, "display-1")
	if err != nil {
		t.Fatal(err)
	}
	if !d1.WaitServer(waitLong) {
		t.Fatal("display-1 not linked")
	}
	// display-2 never shows up: after StallTimeout it must be evicted so
	// display-1 can run.
	if err := d1.RunFrames(5, waitLong, func(uint32) {}); err != nil {
		t.Fatalf("survivor display stalled: %v", err)
	}
	if srv.Evicted() != 1 {
		t.Errorf("Evicted = %d, want 1", srv.Evicted())
	}
}

// TestPipelinedBarrier exercises the §5 future-work extension: a deeper
// pipeline hides the barrier round trip and render jitter, raising
// throughput while keeping displays within the pipeline-depth skew bound.
func TestPipelinedBarrier(t *testing.T) {
	run := func(pipeline int) (fps float64, maxSkew uint32) {
		lan := transport.NewMemLAN()
		serverBB, err := cb.New(lan, "sync-server", fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		defer serverBB.Close()
		srv, err := NewServer(serverBB, "sync", ServerConfig{
			Expected: []string{"display-1", "display-2"},
			Pipeline: pipeline,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		defer srv.Stop()

		displays := make([]*Display, 2)
		for i := range displays {
			bb, err := cb.New(lan, fmt.Sprintf("display-pc-%d", i+1), fastCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer bb.Close()
			d, err := NewDisplay(bb, fmt.Sprintf("display-%d", i+1))
			if err != nil {
				t.Fatal(err)
			}
			displays[i] = d
		}
		for _, d := range displays {
			if !d.WaitServer(waitLong) {
				t.Fatal("not linked")
			}
		}
		const frames = 60
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			skew uint32
		)
		for i, d := range displays {
			wg.Add(1)
			go func(i int, d *Display) {
				defer wg.Done()
				err := d.RunFrames(frames, waitLong, func(frame uint32) {
					// Alternating jitter: each display is slow on
					// different frames, the case pipelining hides.
					if (frame+uint32(i))%2 == 0 {
						time.Sleep(2 * time.Millisecond)
					}
					mu.Lock()
					lo, hi := displays[0].Frame(), displays[0].Frame()
					for _, dd := range displays {
						f := dd.Frame()
						if f < lo {
							lo = f
						}
						if f > hi {
							hi = f
						}
					}
					if s := hi - lo; s > skew {
						skew = s
					}
					mu.Unlock()
				})
				if err != nil {
					t.Error(err)
				}
			}(i, d)
		}
		wg.Wait()
		var total float64
		for _, d := range displays {
			total += d.FPS()
		}
		return total / 2, skew
	}

	strictFPS, strictSkew := run(1)
	pipeFPS, pipeSkew := run(3)
	if strictSkew > 1 {
		t.Errorf("strict barrier skew = %d, want <= 1", strictSkew)
	}
	if pipeSkew > 3 {
		t.Errorf("pipelined skew = %d, want <= pipeline depth 3", pipeSkew)
	}
	if pipeFPS <= strictFPS {
		t.Errorf("pipeline did not help: strict %.1f fps vs pipelined %.1f fps", strictFPS, pipeFPS)
	}
}

func TestWaitSwapTimeout(t *testing.T) {
	lan := transport.NewMemLAN()
	bb, err := cb.New(lan, "display-pc", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer bb.Close()
	d, err := NewDisplay(bb, "display-1")
	if err != nil {
		t.Fatal(err)
	}
	// No server exists: WaitSwap must time out, not hang.
	if err := d.WaitSwap(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestRunFreeNoBarrier(t *testing.T) {
	lan := transport.NewMemLAN()
	bb, err := cb.New(lan, "display-pc", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer bb.Close()
	d, err := NewDisplay(bb, "display-1")
	if err != nil {
		t.Fatal(err)
	}
	d.RunFree(20, func(uint32) { time.Sleep(time.Millisecond) })
	if d.Frame() != 20 {
		t.Errorf("frames = %d", d.Frame())
	}
	if fps := d.FPS(); fps <= 0 || fps > 1100 {
		t.Errorf("free-run fps = %v", fps)
	}
}

func TestDisplayClose(t *testing.T) {
	lan := transport.NewMemLAN()
	bb, err := cb.New(lan, "display-pc", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer bb.Close()
	d, err := NewDisplay(bb, "display-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := d.Ready(0); !errors.Is(err, cb.ErrHandleClosed) {
		t.Errorf("Ready after close = %v", err)
	}
}
