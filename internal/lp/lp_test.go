package lp

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner("x", 0, func(_, _ float64) error { return nil }); err == nil {
		t.Error("hz=0 accepted")
	}
	if _, err := NewRunner("x", -5, func(_, _ float64) error { return nil }); err == nil {
		t.Error("negative hz accepted")
	}
	if _, err := NewRunner("x", 60, nil); err == nil {
		t.Error("nil TickFunc accepted")
	}
}

func TestRunnerMaxTicks(t *testing.T) {
	var mu sync.Mutex
	var times []float64
	r, err := NewRunner("test", 100, func(simTime, dt float64) error {
		mu.Lock()
		times = append(times, simTime)
		mu.Unlock()
		if dt != 0.01 {
			t.Errorf("dt = %v, want 0.01", dt)
		}
		return nil
	}, MaxTicks(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != 5 {
		t.Fatalf("ticks = %d, want 5", len(times))
	}
	// Fixed-step sim time: 0, 0.01, 0.02, ...
	for i, ts := range times {
		if math.Abs(ts-float64(i)*0.01) > 1e-12 {
			t.Errorf("tick %d simTime = %v", i, ts)
		}
	}
	if r.Ticks() != 5 {
		t.Errorf("Ticks = %d", r.Ticks())
	}
}

func TestRunnerStopSentinel(t *testing.T) {
	r, err := NewRunner("test", 1000, func(simTime, _ float64) error {
		if simTime >= 0.003 {
			return Stop
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(); err != nil {
		t.Errorf("Stop sentinel surfaced as error: %v", err)
	}
	// Ticks at t=0, 0.001, 0.002 complete; the invocation at t=0.003
	// returns Stop and does not count as a completed tick.
	if got := r.Ticks(); got != 3 {
		t.Errorf("Ticks = %d, want 3", got)
	}
}

func TestRunnerErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	r, err := NewRunner("flaky", 1000, func(simTime, _ float64) error {
		if simTime > 0 {
			return boom
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(); !errors.Is(err, boom) {
		t.Errorf("Wait = %v, want wrapped boom", err)
	}
	if err := r.Err(); !errors.Is(err, boom) {
		t.Errorf("Err = %v", err)
	}
}

func TestRunnerDoubleStart(t *testing.T) {
	r, err := NewRunner("x", 100, func(_, _ float64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); !errors.Is(err, ErrAlreadyStarted) {
		t.Errorf("second Start = %v, want ErrAlreadyStarted", err)
	}
}

func TestRunnerStopUnblocks(t *testing.T) {
	r, err := NewRunner("x", 1e6, func(_, _ float64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		r.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop hung")
	}
	// Repeated stop is fine.
	r.Stop()
}

func TestRunnerRealtimePacing(t *testing.T) {
	// 20 ticks at 100 Hz must take at least ~180 ms of wall time.
	r, err := NewRunner("rt", 100, func(_, _ float64) error { return nil },
		Realtime(), MaxTicks(20))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("20 ticks at 100 Hz took only %v", elapsed)
	}
}

func TestGroup(t *testing.T) {
	var g Group
	var counts [3]uint64
	var mu sync.Mutex
	for i := 0; i < 3; i++ {
		i := i
		r, err := NewRunner("g", 1000, func(_, _ float64) error {
			mu.Lock()
			counts[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Add(r)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	g.Stop()
	mu.Lock()
	defer mu.Unlock()
	for i, c := range counts {
		if c == 0 {
			t.Errorf("runner %d never ticked", i)
		}
	}
	if err := g.Err(); err != nil {
		t.Errorf("group err = %v", err)
	}
}

func TestGroupStartFailureRollsBack(t *testing.T) {
	var g Group
	ok, err := NewRunner("ok", 100, func(_, _ float64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	g.Add(ok)
	// A runner that was already started cannot be started again: force the
	// group's second Start to fail.
	bad, err := NewRunner("bad", 100, func(_, _ float64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Start(); err != nil {
		t.Fatal(err)
	}
	defer bad.Stop()
	g.Add(bad)

	if err := g.Start(); !errors.Is(err, ErrAlreadyStarted) {
		t.Fatalf("group Start = %v, want ErrAlreadyStarted", err)
	}
	// The first runner must have been stopped by the rollback.
	select {
	case <-ok.doneCh:
	case <-time.After(2 * time.Second):
		t.Error("rollback did not stop earlier runner")
	}
}
