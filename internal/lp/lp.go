// Package lp provides the Logical Process runtime of the COD environment
// (§2.1): each module of the simulator runs as a standalone LP that only
// talks to its resident Communication Backbone, never to other LPs
// directly. This package supplies the common machinery every LP shares — a
// fixed-rate tick loop with real-time pacing or free-running (turbo)
// execution — so modules contain only their simulation logic.
package lp

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// TickFunc advances an LP by one fixed step. simTime is the LP-local
// simulation time at the *start* of the step, dt the step size in seconds.
// Returning an error stops the runner; returning Stop stops it cleanly.
type TickFunc func(simTime, dt float64) error

// Stop is returned by a TickFunc to end the run without error.
var Stop = errors.New("lp: stop requested") //nolint:errname // sentinel by design

// ErrAlreadyStarted reports a second Start on the same Runner.
var ErrAlreadyStarted = errors.New("lp: runner already started")

// Runner drives a TickFunc at a fixed rate. The zero value is unusable;
// construct with NewRunner.
type Runner struct {
	name string
	dt   time.Duration
	fn   TickFunc
	cfg  runnerCfg

	mu      sync.Mutex
	started bool
	err     error
	ticks   uint64

	stopCh   chan struct{}
	stopOnce sync.Once
	doneCh   chan struct{}
}

type runnerCfg struct {
	realtime  bool
	maxTicks  uint64
	timeScale float64
}

// RunnerOption configures a Runner.
type RunnerOption func(*runnerCfg)

// Realtime paces ticks against the wall clock (the production mode).
// Without it the runner free-runs as fast as the CPU allows, which is what
// deterministic tests and benchmarks want.
func Realtime() RunnerOption {
	return func(c *runnerCfg) { c.realtime = true }
}

// TimeScale accelerates (scale > 1) or slows (scale < 1) a Realtime runner
// relative to the wall clock while keeping the simulation step unchanged:
// at scale 10 a 60 Hz LP ticks 600 times per wall second, each tick still
// advancing 1/60 s of simulation time. Ignored without Realtime.
func TimeScale(scale float64) RunnerOption {
	return func(c *runnerCfg) {
		if scale > 0 {
			c.timeScale = scale
		}
	}
}

// MaxTicks stops the runner cleanly after n ticks. Zero means unbounded.
func MaxTicks(n uint64) RunnerOption {
	return func(c *runnerCfg) { c.maxTicks = n }
}

// NewRunner builds a runner stepping fn at hz steps per simulated second.
func NewRunner(name string, hz float64, fn TickFunc, opts ...RunnerOption) (*Runner, error) {
	if hz <= 0 {
		return nil, fmt.Errorf("lp: %s: rate must be positive, got %v", name, hz)
	}
	if fn == nil {
		return nil, fmt.Errorf("lp: %s: nil TickFunc", name)
	}
	cfg := runnerCfg{}
	for _, o := range opts {
		o(&cfg)
	}
	return &Runner{
		name:   name,
		dt:     time.Duration(float64(time.Second) / hz),
		fn:     fn,
		cfg:    cfg,
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}, nil
}

// Name returns the LP name.
func (r *Runner) Name() string { return r.name }

// Start launches the tick loop goroutine. It can be called once.
func (r *Runner) Start() error {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrAlreadyStarted, r.name)
	}
	r.started = true
	r.mu.Unlock()
	go r.loop()
	return nil
}

// Stop asks the loop to end and waits for it. Safe to call multiple times
// and before Start (in which case the runner can never start — Start's loop
// exits immediately).
func (r *Runner) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if started {
		<-r.doneCh
	}
}

// Wait blocks until the loop exits on its own (MaxTicks, Stop sentinel or
// error) and returns the terminal error, nil for a clean stop.
func (r *Runner) Wait() error {
	<-r.doneCh
	return r.Err()
}

// Err returns the terminal error of the loop (nil while running or after a
// clean stop).
func (r *Runner) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Ticks returns how many ticks have completed.
func (r *Runner) Ticks() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ticks
}

func (r *Runner) loop() {
	defer close(r.doneCh)
	dtSec := r.dt.Seconds()
	var (
		simTime float64
		ticker  *time.Ticker
	)
	if r.cfg.realtime {
		interval := r.dt
		if r.cfg.timeScale > 0 {
			interval = time.Duration(float64(r.dt) / r.cfg.timeScale)
			if interval <= 0 {
				interval = time.Nanosecond
			}
		}
		ticker = time.NewTicker(interval)
		defer ticker.Stop()
	}
	for n := uint64(0); r.cfg.maxTicks == 0 || n < r.cfg.maxTicks; n++ {
		select {
		case <-r.stopCh:
			return
		default:
		}
		if ticker != nil {
			select {
			case <-ticker.C:
			case <-r.stopCh:
				return
			}
		}
		if err := r.fn(simTime, dtSec); err != nil {
			if !errors.Is(err, Stop) {
				r.mu.Lock()
				r.err = fmt.Errorf("lp: %s: %w", r.name, err)
				r.mu.Unlock()
			}
			return
		}
		simTime += dtSec
		r.mu.Lock()
		r.ticks++
		r.mu.Unlock()
	}
}

// Group owns a set of runners started and stopped together — the node-level
// container for "one or many LPs per computer" (§2.1).
type Group struct {
	mu      sync.Mutex
	runners []*Runner
}

// Add registers a runner with the group.
func (g *Group) Add(r *Runner) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.runners = append(g.runners, r)
}

// Start starts every runner; on the first failure it stops the ones already
// started and returns the error.
func (g *Group) Start() error {
	g.mu.Lock()
	runners := append([]*Runner(nil), g.runners...)
	g.mu.Unlock()
	for i, r := range runners {
		if err := r.Start(); err != nil {
			for _, started := range runners[:i] {
				started.Stop()
			}
			return err
		}
	}
	return nil
}

// Stop stops every runner and waits for all loops to exit.
func (g *Group) Stop() {
	g.mu.Lock()
	runners := append([]*Runner(nil), g.runners...)
	g.mu.Unlock()
	for _, r := range runners {
		r.Stop()
	}
}

// Err returns the first terminal error among the group's runners, if any.
func (g *Group) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.runners {
		if err := r.Err(); err != nil {
			return err
		}
	}
	return nil
}
