package sim

import (
	"testing"
	"time"
)

// TestDisplayNodeDeath kills one display computer mid-run: the
// synchronization server must evict it after its stall timeout so the
// remaining displays keep rendering — one dead PC must not freeze the
// surround view.
func TestDisplayNodeDeath(t *testing.T) {
	c, err := New(Config{
		CB:        fastCB(),
		TimeScale: 8,
		Width:     96,
		Height:    72,
		Polygons:  400,
		Autopilot: true,
		AutoStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Let the federation reach steady state.
	deadline := time.Now().Add(15 * time.Second)
	for c.server.Swaps() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("no steady state before fault injection")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill display computer 2 (backbone and all).
	if err := c.Backbone("display-pc-2").Close(); err != nil {
		t.Fatal(err)
	}

	// The server must evict it and the survivors must keep swapping.
	evictDeadline := time.Now().Add(20 * time.Second)
	for c.server.Evicted() == 0 {
		if time.Now().After(evictDeadline) {
			t.Fatalf("dead display never evicted (displays=%v)", c.server.Displays())
		}
		time.Sleep(20 * time.Millisecond)
	}
	afterEvict := c.server.Swaps()
	progressDeadline := time.Now().Add(20 * time.Second)
	for c.server.Swaps() < afterEvict+10 {
		if time.Now().After(progressDeadline) {
			t.Fatalf("surround view frozen after display death: swaps stuck at %d", c.server.Swaps())
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, name := range c.server.Displays() {
		if name == "display-2" {
			t.Error("dead display still admitted")
		}
	}
}

// TestInstructorFaultInjection drives the §3.3 trouble-shooting loop over
// the live federation: the instructor clicks an instrument on the mirror
// window; the command crosses the CB to dashboard-pc and forces the
// mockup's needle; clearing restores live display.
func TestInstructorFaultInjection(t *testing.T) {
	c, err := New(Config{
		CB:        fastCB(),
		TimeScale: 8,
		Width:     96,
		Height:    72,
		Polygons:  400,
		Autopilot: true,
		AutoStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Wait for steady traffic so the InstructorCmd channel exists.
	deadline := time.Now().Add(15 * time.Second)
	for c.cmdPub.Channels() < 2 { // dashboard + scenario both subscribe
		if time.Now().After(deadline) {
			t.Fatalf("instructor command channels = %d", c.cmdPub.Channels())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := c.InjectFault("rpm", 2950); err != nil {
		t.Fatal(err)
	}
	faultDeadline := time.Now().Add(10 * time.Second)
	for {
		inst := c.Panel().Instrument("rpm")
		if inst != nil && inst.Faulted() && inst.Value() == 2950 {
			break
		}
		if time.Now().After(faultDeadline) {
			t.Fatalf("fault never reached the mockup dashboard (faulted=%v)",
				c.Panel().Instrument("rpm").Faulted())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := c.ClearFault("rpm"); err != nil {
		t.Fatal(err)
	}
	clearDeadline := time.Now().Add(10 * time.Second)
	for c.Panel().Instrument("rpm").Faulted() {
		if time.Now().After(clearDeadline) {
			t.Fatal("fault never cleared on the mockup dashboard")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDynamicsNodeDeath kills the simulation computer: the displays lose
// their state feed but the barrier must keep cycling (they re-render the
// last known state), and the affected subscriptions must re-arm their
// broadcasts — the §2.3 re-discovery behaviour.
func TestDynamicsNodeDeath(t *testing.T) {
	c, err := New(Config{
		CB:        fastCB(),
		TimeScale: 8,
		Width:     96,
		Height:    72,
		Polygons:  400,
		Autopilot: true,
		AutoStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	deadline := time.Now().Add(15 * time.Second)
	for c.server.Swaps() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("no steady state")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Stop the dynamics/scenario/audio LP loops first so they do not
	// report errors into the cluster when their backbone vanishes.
	c.group.Stop()
	if err := c.Backbone(NodeSim).Close(); err != nil {
		t.Fatal(err)
	}

	before := c.server.Swaps()
	progressDeadline := time.Now().Add(20 * time.Second)
	for c.server.Swaps() < before+10 {
		if time.Now().After(progressDeadline) {
			t.Fatalf("displays froze after dynamics death: swaps stuck at %d", c.server.Swaps())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The display state subscriptions must have noticed the publisher's
	// departure and returned to unmatched (fast re-broadcast).
	unmatchDeadline := time.Now().Add(10 * time.Second)
	for {
		anyMatched := false
		for _, d := range c.displays {
			if d.stateIn.Matched() {
				anyMatched = true
			}
		}
		if !anyMatched {
			break
		}
		if time.Now().After(unmatchDeadline) {
			t.Fatal("state subscriptions never noticed publisher death")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
