package sim

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"codsim/internal/fom"
	"codsim/internal/scenario"
	"codsim/internal/trace"
)

// BatchConfig tunes a batch run.
type BatchConfig struct {
	// Base is the cluster template for every federation. Its LAN must be
	// nil (each run gets a private in-memory LAN) and its Scenario field
	// is ignored; Autopilot and AutoStart are forced on. Unused when
	// Headless is set.
	Base Config
	// Parallel caps how many runs execute concurrently. Default for
	// federations: max(1, NumCPU/4) — a full federation is eight busy
	// virtual computers, so oversubscribing stalls the paced LP loops.
	// Default for headless runs: NumCPU (they are plain CPU-bound loops).
	Parallel int
	// Timeout bounds each run. This is the one rule, for both modes:
	//
	//   - Federation runs: a wall-clock cap on the run (default 120 s).
	//   - Headless runs: a simulation-time cap of Timeout's seconds —
	//     they finish in a fraction of real time, so a wall clock would
	//     be the wrong budget. Default: three par times, at least 900
	//     sim-seconds, from the scenario's own course.
	Timeout time.Duration
	// Headless skips the federation and couples dynamics, engine and
	// autopilot directly (trace.Run) — the fast path for smoke sweeps.
	Headless bool
	// Skill degrades every run's autopilots (reaction lag, overshoot,
	// widened slack); the zero value is the flawless expert. Sweeping the
	// presets over a scenario matrix yields realistic score spreads.
	Skill trace.SkillProfile
	// Seeds optionally gives each run its skill-jitter seed, parallel to
	// the spec slice (missing entries read as 0). With Skill.Jitter > 0,
	// run i flies Skill.Seeded(Seeds[i]) — a deterministic per-run
	// variation that widens sweep distributions reproducibly. The dist
	// worker and codbatch thread each job's seed through here.
	Seeds []int64
	// Log, when set, receives one structured record per run start and
	// finish (scenario, seed, score, wall_s); nil is silent.
	Log *slog.Logger
}

// logOf returns the configured logger or a discard sink, so the run paths
// log unconditionally.
func (c BatchConfig) logOf() *slog.Logger {
	if c.Log == nil {
		return slog.New(slog.DiscardHandler)
	}
	return c.Log
}

// seedFor returns run i's skill-jitter seed.
func (c BatchConfig) seedFor(i int) int64 {
	if i < len(c.Seeds) {
		return c.Seeds[i]
	}
	return 0
}

// BatchResult is one scenario's outcome in a batch.
type BatchResult struct {
	Scenario string
	Title    string
	State    fom.ScenarioState
	Passed   bool
	Err      error
	Wall     time.Duration
	// Alarms counts the alarm lamps the run lit (safety alarms plus
	// collisions) — the instructor-side misconduct count surfaced into
	// the persisted dist.Record rows.
	Alarms uint32
}

// RunBatch executes one full federation per scenario spec, Parallel at a
// time, and reports per-scenario outcomes in input order. This is the
// cluster-scale counterpart of trace.Run: every run boots the whole
// eight-computer COD — displays, sync server, dashboard, motion,
// instructor, sim PC — on its own in-memory LAN, drives the scenario with
// the autopilot, and waits for the terminal phase.
//
// Canceling ctx abandons the batch: queued runs never start and in-flight
// runs stop early; both report ctx's error in their BatchResult. The
// result slice always has one entry per spec.
func RunBatch(ctx context.Context, specs []scenario.Spec, cfg BatchConfig) []BatchResult {
	if cfg.Parallel <= 0 {
		if cfg.Headless {
			cfg.Parallel = runtime.NumCPU()
		} else {
			cfg.Parallel = runtime.NumCPU() / 4
		}
		if cfg.Parallel < 1 {
			cfg.Parallel = 1
		}
	}
	if cfg.Timeout <= 0 && !cfg.Headless {
		cfg.Timeout = 120 * time.Second
	}
	run := runOne
	if cfg.Headless {
		run = runOneHeadless
	}

	results := make([]BatchResult, len(specs))
	sem := make(chan struct{}, cfg.Parallel)
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			canceled := func() {
				results[i] = BatchResult{
					Scenario: specs[i].Name, Title: specs[i].Title, Err: ctx.Err(),
				}
			}
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				canceled()
				return
			}
			// Re-check after the acquire: with both select cases ready the
			// choice is random, and a canceled batch must not boot a whole
			// federation just to tear it down.
			if ctx.Err() != nil {
				canceled()
				return
			}
			seed := cfg.seedFor(i)
			log := cfg.logOf()
			log.Info("run started", "scenario", specs[i].Name, "seed", seed,
				"headless", cfg.Headless)
			results[i] = run(ctx, specs[i], cfg, seed)
			r := &results[i]
			log.Info("run finished", "scenario", r.Scenario, "seed", seed,
				"passed", r.Passed, "score", r.State.Score,
				"wall_s", r.Wall.Seconds(), "alarms", r.Alarms)
		}(i)
	}
	wg.Wait()
	return results
}

// runOneHeadless executes one spec without a federation, budgeted in
// simulation time (see BatchConfig.Timeout). seed drives the run's skill
// jitter (see BatchConfig.Seeds).
func runOneHeadless(ctx context.Context, spec scenario.Spec, cfg BatchConfig, seed int64) (res BatchResult) {
	res = BatchResult{Scenario: spec.Name, Title: spec.Title}
	start := time.Now()
	defer func() { res.Wall = time.Since(start) }()

	maxSim := cfg.Timeout.Seconds()
	if maxSim <= 0 {
		maxSim = 3 * spec.Course.ParTime
		if maxSim < 900 {
			maxSim = 900
		}
	}
	r, err := trace.RunSkill(ctx, spec, maxSim, cfg.Skill.Seeded(seed))
	res.State = r.State
	res.Passed = r.Passed
	res.Alarms = r.Alarms
	res.Err = err
	return res
}

// runOne boots one federation for the spec and runs it to a verdict.
// seed drives the run's skill jitter (see BatchConfig.Seeds).
func runOne(ctx context.Context, spec scenario.Spec, cfg BatchConfig, seed int64) (res BatchResult) {
	res = BatchResult{Scenario: spec.Name, Title: spec.Title}
	start := time.Now()
	defer func() { res.Wall = time.Since(start) }()

	ccfg := cfg.Base
	ccfg.LAN = nil // private segment per federation
	ccfg.Scenario = &spec
	ccfg.Autopilot = true
	ccfg.AutoStart = true
	ccfg.Skill = cfg.Skill.Seeded(seed)

	cluster, err := New(ccfg)
	if err != nil {
		res.Err = fmt.Errorf("build: %w", err)
		return res
	}
	defer cluster.Stop()
	if err := cluster.Start(); err != nil {
		res.Err = fmt.Errorf("start: %w", err)
		return res
	}
	state, err := cluster.WaitExamContext(ctx, cfg.Timeout)
	res.State = state
	res.Err = err
	res.Passed = err == nil && state.Phase == fom.PhaseComplete
	res.Alarms = cluster.AlarmEvents()
	return res
}

// WriteBatchReport renders the score/pass-rate table for a finished batch.
func WriteBatchReport(w io.Writer, results []BatchResult) {
	fmt.Fprintf(w, "%-18s %-34s %8s %8s %8s  %s\n",
		"SCENARIO", "TITLE", "SCORE", "SIM-SEC", "WALL", "VERDICT")
	passed := 0
	for _, r := range results {
		verdict := "FAIL"
		switch {
		case r.Err != nil:
			verdict = "ERROR: " + r.Err.Error()
		case r.Passed:
			verdict = "pass"
			passed++
		}
		fmt.Fprintf(w, "%-18s %-34s %8.1f %8.1f %7.1fs  %s\n",
			r.Scenario, r.Title, r.State.Score, r.State.Elapsed,
			r.Wall.Seconds(), verdict)
	}
	rate := 0.0
	if len(results) > 0 {
		rate = float64(passed) / float64(len(results)) * 100
	}
	fmt.Fprintf(w, "pass rate: %d/%d (%.0f%%)\n", passed, len(results), rate)
}
