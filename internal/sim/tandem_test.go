package sim

import (
	"testing"
	"time"

	"codsim/internal/fom"
	"codsim/internal/scenario"
)

// TestClusterTandemCompletes runs the tandem beam lift over the real
// federation: two dynamics LPs on one shared cargo world, two autopilot
// LPs, two motion controllers — every carrier's traffic multiplexed over
// the same FOM classes by CraneID. Run with -race this doubles as the
// concurrency gate on the shared dynamics.World.
func TestClusterTandemCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("full tandem federation run")
	}
	spec := scenario.TandemBeam()
	c, err := New(Config{
		CB:        fastCB(),
		TimeScale: 15,
		Width:     96,
		Height:    72,
		Polygons:  600,
		Scenario:  &spec,
		Autopilot: true,
		AutoStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	final, err := c.WaitExam(180 * time.Second)
	if err != nil {
		t.Fatalf("WaitExam: %v (phase %v, msg %q)", err, final.Phase, final.Message)
	}
	if final.Phase != fom.PhaseComplete {
		t.Fatalf("tandem phase = %v, score %.1f, msg %q", final.Phase, final.Score, final.Message)
	}
	if final.Score < 60 {
		t.Errorf("score = %v", final.Score)
	}
	sum := c.Summary()
	if sum.ServerSwaps == 0 {
		t.Error("no display swaps during the tandem lift")
	}
	// Both carriers must have published: the sim PC hosts two dynamics
	// LPs, so its update counter dwarfs a single-crane run's.
	if got := c.Backbone(NodeSim).Stats().UpdatesSent.Value(); got == 0 {
		t.Error("sim-pc published nothing")
	}
	t.Logf("tandem over COD: score=%.1f elapsed=%.1fs alarms=%d",
		final.Score, final.Elapsed, c.AlarmEvents())
}

// TestBatchTandemHeadless pushes both multi-crane scenarios through
// sim.RunBatch exactly like a sweep would — the acceptance path for the
// batch/dist machinery running tandem work unchanged.
func TestBatchTandemHeadless(t *testing.T) {
	specs := []scenario.Spec{scenario.TandemBeam(), scenario.TwinYard()}
	results := RunBatch(t.Context(), specs, BatchConfig{Headless: true})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Scenario, r.Err)
		}
		if !r.Passed {
			t.Errorf("%s: phase %v score %.1f (%s)", r.Scenario, r.State.Phase, r.State.Score, r.State.Message)
		}
	}
}
