// Package sim assembles the complete mobile crane simulator on the COD:
// the seven modules of Fig. 3 placed across eight computers exactly like
// the paper's rack (Fig. 11) — three display PCs, the synchronization
// server, and four PCs hosting the dashboard, motion-platform, instructor
// and simulation (dynamics + scenario + audio) LPs. Every inter-module
// exchange rides the Communication Backbone's virtual channels; nothing
// talks directly.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"codsim/internal/audio"
	"codsim/internal/cb"
	"codsim/internal/dashboard"
	"codsim/internal/displaysync"
	"codsim/internal/fom"
	"codsim/internal/instructor"
	"codsim/internal/lp"
	"codsim/internal/mathx"
	"codsim/internal/metrics"
	"codsim/internal/render"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
	"codsim/internal/trace"
	"codsim/internal/transport"
)

// Node names of the eight computers (Fig. 11).
const (
	NodeDisplay1   = "display-1"
	NodeDisplay2   = "display-2"
	NodeDisplay3   = "display-3"
	NodeSyncServer = "sync-server"
	NodeDashboard  = "dashboard-pc"
	NodeMotion     = "motion-pc"
	NodeInstructor = "instructor-pc"
	NodeSim        = "sim-pc"
)

// CBConfig aliases the backbone's protocol-timer configuration so that
// cluster assemblers above the SDK boundary (cmd/, experiment rigs) can
// fill Config.CB without importing internal/cb.
type CBConfig = cb.Config

// Config assembles a cluster.
type Config struct {
	// LAN is the network segment; nil uses a fresh in-memory LAN.
	LAN transport.LAN
	// CB tunes the Communication Backbone protocol timers.
	CB CBConfig
	// Displays is the surround-view width in monitors (default 3).
	Displays int
	// Polygons is the scene budget (default 3235, the paper's scene).
	Polygons int
	// Width, Height set each display's framebuffer (default 640×480).
	Width, Height int
	// TimeScale accelerates the paced LPs for tests (default 1).
	TimeScale float64
	// Seed drives all stochastic pieces.
	Seed int64
	// RenderFrames caps how many frames each display renders; 0 = until
	// Stop.
	RenderFrames int
	// Scenario selects the workload the cluster loads; nil runs the
	// classic licensing exam. Any scenario.Spec works: the scenario LP
	// interprets its phase graph, the dynamics LPs host its cargo set and
	// wind, and the displays apply its visibility. A spec declaring N
	// cranes spawns one dynamics, motion and autopilot participant per
	// carrier — the FOM's multiple-publishers-per-class rule carries the
	// extra CraneState/MotionCue/ControlInput traffic on the same
	// channels, demultiplexed by CraneID.
	Scenario *scenario.Spec
	// Autopilot drives the scenario when true; otherwise the dashboard
	// publishes neutral controls. Multi-crane scenarios get one autopilot
	// per declared crane.
	Autopilot bool
	// Skill degrades the autopilots (reaction lag, overshoot, widened
	// slack); the zero value is the flawless expert.
	Skill trace.SkillProfile
	// AutoStart arms the scenario immediately.
	AutoStart bool
	// CaptureAudioSec keeps the last N seconds of the audio module's
	// mixed PCM for export (0 disables capture).
	CaptureAudioSec float64
}

func (c Config) withDefaults() Config {
	if c.LAN == nil {
		c.LAN = transport.NewMemLAN()
	}
	if c.Displays <= 0 {
		c.Displays = 3
	}
	if c.Polygons <= 0 {
		c.Polygons = 3235
	}
	if c.Width <= 0 {
		c.Width = 640
	}
	if c.Height <= 0 {
		c.Height = 480
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Summary reports a finished run.
type Summary struct {
	Scenario    fom.ScenarioState
	DisplayFPS  []float64
	ServerSwaps int64
	Evicted     int64
	MotionSat   int64
	AudioVoices int64
	Alarms      []instructor.AlarmEvent
	AlarmEvents uint32 // scenario-engine alarm lamp count (all cranes)
	Status      fom.StatusReport
}

// Cluster is a running simulator.
type Cluster struct {
	cfg Config

	backbones map[string]*cb.Backbone
	group     lp.Group

	server   *displaysync.Server
	displays []*displayNode
	monitor  *instructor.Monitor
	mixer    *audio.Mixer
	panel    *dashboard.Panel // the mockup dashboard on dashboard-pc
	cmdPub   *cb.Publication  // instructor-pc's InstructorCmd publication

	craneCount int // carriers declared by the loaded scenario

	mu         sync.Mutex
	scenState  fom.ScenarioState
	scenAlarms uint32 // engine alarm-lamp count, cached per tick
	motionSat  metrics.Counter
	pcmRing    []float64 // captured audio, ring of cfg.CaptureAudioSec
	pcmPos     int
	pcmFull    bool

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
	errMu    sync.Mutex
	firstErr error
}

type displayNode struct {
	client  *displaysync.Display
	builder *render.SceneBuilder
	rend    *render.Renderer
	camIdx  int
	stateIn *cb.Subscription
}

// New builds and wires the whole cluster; Start launches it.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:       cfg,
		backbones: make(map[string]*cb.Backbone, cfg.Displays+5),
		stopCh:    make(chan struct{}),
	}

	ter, err := terrain.GenerateSite(terrain.SiteConfig{
		Width: 200, Depth: 200, Spacing: 2, Roughness: 0.4, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: terrain: %w", err)
	}
	spec := scenario.Classic()
	if cfg.Scenario != nil {
		spec = *cfg.Scenario
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	c.craneCount = spec.CraneCount()

	if err := c.buildSyncServer(); err != nil {
		c.teardown()
		return nil, err
	}
	if err := c.buildDisplays(ter, spec); err != nil {
		c.teardown()
		return nil, err
	}
	if err := c.buildSimPC(ter, spec); err != nil {
		c.teardown()
		return nil, err
	}
	if err := c.buildDashboard(spec); err != nil {
		c.teardown()
		return nil, err
	}
	if err := c.buildMotion(); err != nil {
		c.teardown()
		return nil, err
	}
	if err := c.buildInstructor(); err != nil {
		c.teardown()
		return nil, err
	}
	return c, nil
}

// backbone attaches a node to the LAN.
func (c *Cluster) backbone(node string) (*cb.Backbone, error) {
	b, err := cb.New(c.cfg.LAN, node, c.cfg.CB)
	if err != nil {
		return nil, fmt.Errorf("sim: node %s: %w", node, err)
	}
	c.backbones[node] = b
	return b, nil
}

func (c *Cluster) reportErr(err error) {
	if err == nil {
		return
	}
	c.errMu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.errMu.Unlock()
}

// Err returns the first asynchronous error observed by any LP.
func (c *Cluster) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.firstErr != nil {
		return c.firstErr
	}
	return c.group.Err()
}

// Start launches every LP. The display loops run until RenderFrames is
// reached or Stop is called.
func (c *Cluster) Start() error {
	if err := c.group.Start(); err != nil {
		return fmt.Errorf("sim: start: %w", err)
	}
	for _, d := range c.displays {
		c.wg.Add(1)
		go c.displayLoop(d)
	}
	return nil
}

// Stop halts all LPs and closes every backbone.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.group.Stop()
	c.wg.Wait()
	if c.server != nil {
		c.server.Stop()
	}
	c.teardown()
}

func (c *Cluster) teardown() {
	for _, b := range c.backbones {
		_ = b.Close()
	}
}

// ScenarioState returns the latest observed scenario state.
func (c *Cluster) ScenarioState() fom.ScenarioState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.scenState
}

// WaitExam blocks until the exam reaches a terminal phase or the timeout
// elapses.
func (c *Cluster) WaitExam(timeout time.Duration) (fom.ScenarioState, error) {
	return c.WaitExamContext(context.Background(), timeout)
}

// WaitExamContext is WaitExam with cancellation: a canceled context stops
// the wait and returns ctx.Err() with the last observed state, letting a
// batch coordinator abandon a run instead of leaking the federation.
func (c *Cluster) WaitExamContext(ctx context.Context, timeout time.Duration) (fom.ScenarioState, error) {
	deadline := time.Now().Add(timeout)
	for {
		s := c.ScenarioState()
		if s.Phase == fom.PhaseComplete || s.Phase == fom.PhaseFailed {
			return s, nil
		}
		if err := ctx.Err(); err != nil {
			return s, err
		}
		if err := c.Err(); err != nil {
			return s, err
		}
		if time.Now().After(deadline) {
			return s, fmt.Errorf("sim: exam still %v after %v", s.Phase, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// AlarmEvents returns the scenario engine's alarm-lamp count so far
// (safety alarms plus collisions, all cranes).
func (c *Cluster) AlarmEvents() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.scenAlarms
}

// Summary collects the run's results.
func (c *Cluster) Summary() Summary {
	s := Summary{
		Scenario:    c.ScenarioState(),
		ServerSwaps: c.server.Swaps(),
		Evicted:     c.server.Evicted(),
		MotionSat:   c.motionSat.Value(),
		Alarms:      c.monitor.AlarmLog(),
		AlarmEvents: c.AlarmEvents(),
		Status:      c.monitor.Report(0),
	}
	for _, d := range c.displays {
		s.DisplayFPS = append(s.DisplayFPS, d.client.FPS())
	}
	if c.mixer != nil {
		started, _ := c.mixer.Stats()
		s.AudioVoices = started
	}
	return s
}

// Backbone returns a node's backbone (introspection for tests/examples).
func (c *Cluster) Backbone(node string) *cb.Backbone { return c.backbones[node] }

// Monitor returns the instructor monitor.
func (c *Cluster) Monitor() *instructor.Monitor { return c.monitor }

// capturePCM appends one rendered block into the capture ring.
func (c *Cluster) capturePCM(block []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range block {
		c.pcmRing[c.pcmPos] = s
		c.pcmPos++
		if c.pcmPos == len(c.pcmRing) {
			c.pcmPos = 0
			c.pcmFull = true
		}
	}
}

// AudioPCM returns the captured tail of the audio module's output in
// chronological order (empty without CaptureAudioSec). Export it with
// audio.WriteWAV.
func (c *Cluster) AudioPCM() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pcmRing) == 0 {
		return nil
	}
	if !c.pcmFull {
		return append([]float64(nil), c.pcmRing[:c.pcmPos]...)
	}
	out := make([]float64, 0, len(c.pcmRing))
	out = append(out, c.pcmRing[c.pcmPos:]...)
	out = append(out, c.pcmRing[:c.pcmPos]...)
	return out
}

// Panel returns the mockup dashboard's instrument panel (dashboard-pc).
func (c *Cluster) Panel() *dashboard.Panel { return c.panel }

// InjectFault performs the instructor's trouble-shooting click (§3.3):
// the command is published from instructor-pc over the CB and forces the
// named instrument on the mockup dashboard to the given value.
func (c *Cluster) InjectFault(instrument string, value float64) error {
	cmd, err := c.monitor.InjectFault(instrument, value)
	if err != nil {
		return err
	}
	return c.publishCmd(cmd)
}

// ClearFault clears an injected instrument fault.
func (c *Cluster) ClearFault(instrument string) error {
	cmd, err := c.monitor.ClearFault(instrument)
	if err != nil {
		return err
	}
	return c.publishCmd(cmd)
}

// publishCmd pushes one instructor command through its Reliable channels
// with the blocking form: a click must reach EVERY consumer, and the
// non-blocking Update would half-deliver when one window is full —
// dropping the command loses that consumer's copy, retrying duplicates
// the others'. The consumers poll every LP tick, so a stall here is
// milliseconds; the timeout only guards a wedged federation.
func (c *Cluster) publishCmd(cmd fom.InstructorCmd) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return c.cmdPub.UpdateContext(ctx, 0, cmd.Encode())
}

// displayName returns the display LP name for index i (0-based).
func displayName(i int) string { return fmt.Sprintf("display-%d", i+1) }

// buildSyncServer sets up the fourth computer.
func (c *Cluster) buildSyncServer() error {
	b, err := c.backbone(NodeSyncServer)
	if err != nil {
		return err
	}
	expected := make([]string, c.cfg.Displays)
	for i := range expected {
		expected[i] = displayName(i)
	}
	c.server, err = displaysync.NewServer(b, "sync", displaysync.ServerConfig{
		Expected:     expected,
		StallTimeout: 5 * time.Second,
	})
	if err != nil {
		return fmt.Errorf("sim: sync server: %w", err)
	}
	c.server.Start()
	return nil
}

// buildDisplays sets up the display computers with their surround cameras.
func (c *Cluster) buildDisplays(ter *terrain.Map, spec scenario.Spec) error {
	course := spec.Course
	obstacles := make([]render.Obstacle, 0, len(course.Bars))
	for _, bar := range course.Bars {
		obstacles = append(obstacles, render.Obstacle{
			Pos:   bar.Pos,
			Half:  bar.Half,
			Yaw:   bar.Yaw,
			Color: render.RGB{R: 220, G: 40, B: 40},
		})
	}
	for i := 0; i < c.cfg.Displays; i++ {
		nodeName := fmt.Sprintf("display-pc-%d", i+1)
		b, err := c.backbone(nodeName)
		if err != nil {
			return err
		}
		client, err := displaysync.NewDisplay(b, displayName(i))
		if err != nil {
			return fmt.Errorf("sim: display %d: %w", i+1, err)
		}
		builder, err := render.NewSceneBuilder(ter, obstacles, c.cfg.Polygons)
		if err != nil {
			return fmt.Errorf("sim: scene %d: %w", i+1, err)
		}
		for extra := 1; extra < c.craneCount; extra++ {
			builder.AddCrane()
		}
		if spec.Visibility > 0 && spec.Visibility < 1 {
			builder.SetVisibility(spec.Visibility)
		}
		rend, err := render.NewRenderer(c.cfg.Width, c.cfg.Height)
		if err != nil {
			return fmt.Errorf("sim: renderer %d: %w", i+1, err)
		}
		// Every carrier publishes on the CraneState class; a latest-value
		// mailbox keeps memory bounded when a render stall backs it up.
		// Conflation is per virtual channel — per publishing NODE, and
		// every dynamics LP lives on sim-pc — so the stall guarantee is
		// newest-per-node; the depth-128 queue keeps enough history that
		// the per-crane fold below stays fresh while all carriers publish.
		stateIn, err := b.SubscribeObjectClass(displayName(i), fom.ClassCraneState, cb.WithQueue(128), cb.WithLatestValue())
		if err != nil {
			return fmt.Errorf("sim: display %d subscribe: %w", i+1, err)
		}
		c.displays = append(c.displays, &displayNode{
			client:  client,
			builder: builder,
			rend:    rend,
			camIdx:  i,
			stateIn: stateIn,
		})
	}
	return nil
}

// displayLoop is one display computer's render loop: latest crane state →
// scene → rasterize → barrier.
func (c *Cluster) displayLoop(d *displayNode) {
	defer c.wg.Done()
	if !d.client.WaitServer(10 * time.Second) {
		c.reportErr(errors.New("sim: display never linked to sync server"))
		return
	}
	last := make([]fom.CraneState, c.craneCount)
	frames := 0
	for {
		select {
		case <-c.stopCh:
			return
		default:
		}
		if c.cfg.RenderFrames > 0 && frames >= c.cfg.RenderFrames {
			return
		}
		err := d.client.RunFrames(1, 10*time.Second, func(uint32) {
			drainCraneStates(d.stateIn, last)
			for idx := range last {
				d.builder.UpdateCrane(idx, last[idx])
			}
			scene := d.builder.Scene()
			// The surround view rides crane 0 — the operator cab.
			eye := last[0].Position.Add(mathx.V3(0, 3.2, 0))
			cams := render.SurroundCameras(eye, last[0].Heading, c.cfg.Displays,
				mathx.Rad(40), float64(c.cfg.Width)/float64(c.cfg.Height))
			d.rend.Render(scene, cams[d.camIdx])
		})
		if err != nil {
			select {
			case <-c.stopCh: // shutdown race: expected
			default:
				c.reportErr(err)
			}
			return
		}
		frames++
	}
}
