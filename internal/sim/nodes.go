package sim

import (
	"fmt"

	"codsim/internal/audio"
	"codsim/internal/cb"
	"codsim/internal/crane"
	"codsim/internal/dashboard"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/instructor"
	"codsim/internal/lp"
	"codsim/internal/motion"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
	"codsim/internal/trace"
)

// runner registers a paced LP loop with the cluster group.
func (c *Cluster) runner(name string, hz float64, fn lp.TickFunc) error {
	r, err := lp.NewRunner(name, hz, fn, lp.Realtime(), lp.TimeScale(c.cfg.TimeScale))
	if err != nil {
		return fmt.Errorf("sim: runner %s: %w", name, err)
	}
	c.group.Add(r)
	return nil
}

// lpName derives the LP name for carrier i: the classic name for crane 0
// (so single-crane federations keep their exact wiring), an indexed one
// for the extra carriers.
func lpName(base string, i int) string {
	if i == 0 {
		return base
	}
	return fmt.Sprintf("%s-%d", base, i+1)
}

// drainCraneStates folds a queued CraneState subscription into the
// newest-state-per-crane view (states is indexed by CraneID; out-of-range
// IDs are dropped).
func drainCraneStates(sub *cb.Subscription, states []fom.CraneState) {
	for {
		r, ok := sub.Poll()
		if !ok {
			return
		}
		if st, err := fom.DecodeCraneState(r.Attrs); err == nil {
			if st.CraneID >= 0 && st.CraneID < int64(len(states)) {
				states[st.CraneID] = st
			}
		}
	}
}

// drainScenStates folds a queued ScenarioState subscription the same way.
func drainScenStates(sub *cb.Subscription, states []fom.ScenarioState) {
	for {
		r, ok := sub.Poll()
		if !ok {
			return
		}
		if s, err := fom.DecodeScenarioState(r.Attrs); err == nil {
			if s.CraneID >= 0 && s.CraneID < int64(len(states)) {
				states[s.CraneID] = s
			}
		}
	}
}

// buildSimPC hosts the dynamics, scenario and audio LPs on one computer
// (§2.1: one or many LPs can run on a computer). A scenario declaring N
// cranes gets N dynamics LPs — one rig per carrier — over one shared
// cargo world, plus the single scenario interpreter stepping every
// carrier's cursor.
func (c *Cluster) buildSimPC(ter *terrain.Map, spec scenario.Spec) error {
	b, err := c.backbone(NodeSim)
	if err != nil {
		return err
	}

	// --- Dynamics LPs (60 Hz, one per carrier) ---
	decls := spec.CraneDecls()
	world := dynamics.NewWorld()
	models := make([]*dynamics.Model, len(decls))
	for i, d := range decls {
		models[i], err = dynamics.NewCrane(dynamics.DefaultConfig(), ter, world, d.Start, d.StartYaw, i)
		if err != nil {
			return fmt.Errorf("sim: dynamics %d: %w", i, err)
		}
	}
	spec.Install(ter, models...)
	for i := range models {
		if err := c.buildDynamicsLP(b, lpName("dynamics", i), models[i], int64(i)); err != nil {
			return err
		}
	}

	// --- Scenario LP (30 Hz) ---
	eng, err := scenario.NewEngineSpec(spec, crane.DefaultSpec())
	if err != nil {
		return fmt.Errorf("sim: scenario: %w", err)
	}
	if c.cfg.AutoStart {
		eng.Start()
	}
	scenPub, err := b.PublishObjectClass("scenario", fom.ClassScenarioState)
	if err != nil {
		return err
	}
	scenAudioPub, err := b.PublishObjectClass("scenario", fom.ClassAudioEvent)
	if err != nil {
		return err
	}
	scenStateSub, err := b.SubscribeObjectClass("scenario", fom.ClassCraneState, cb.WithQueue(128), cb.WithLatestValue())
	if err != nil {
		return err
	}
	cmdSub, err := b.SubscribeObjectClass("scenario", fom.ClassInstructorCmd, cb.WithReliable(32))
	if err != nil {
		return err
	}
	states := make([]fom.CraneState, len(models))
	have := make([]bool, len(models))
	haveAll := false
	err = c.runner("scenario", 30, func(simTime, dt float64) error {
		for {
			r, ok := cmdSub.Poll()
			if !ok {
				break
			}
			cmd, err := fom.DecodeInstructorCmd(r.Attrs)
			if err != nil {
				continue
			}
			switch cmd.Op {
			case fom.OpStartScenario:
				eng.Start()
			case fom.OpResetScenario:
				eng.Reset()
			}
		}
		for {
			r, ok := scenStateSub.Poll()
			if !ok {
				break
			}
			st, err := fom.DecodeCraneState(r.Attrs)
			if err != nil || st.CraneID < 0 || st.CraneID >= int64(len(states)) {
				continue
			}
			states[st.CraneID] = st
			have[st.CraneID] = true
		}
		if !haveAll {
			haveAll = true
			for _, h := range have {
				haveAll = haveAll && h
			}
		}
		// The engine only judges complete ticks: every carrier's
		// telemetry must have arrived at least once (matching the classic
		// rule of not stepping before the first CraneState).
		if haveAll {
			for _, ev := range eng.StepAll(states, dt) {
				if ev.Kind != scenario.EventBarCollision {
					continue
				}
				bang := fom.AudioEvent{Sound: fom.SoundCollision, Gain: 1, Position: states[ev.Crane].CargoPos}
				if err := scenAudioPub.Update(simTime, bang.Encode()); err != nil {
					return err
				}
			}
		}
		s := eng.State()
		c.mu.Lock()
		c.scenState = s
		c.scenAlarms = eng.AlarmEvents()
		c.mu.Unlock()
		for _, ps := range eng.States() {
			if err := scenPub.Update(simTime, ps.Encode()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// --- Audio LP (~43 Hz: one 1024-sample block per tick) ---
	mixer, err := audio.NewMixer(audio.SynthesizeAssets(c.cfg.Seed))
	if err != nil {
		return fmt.Errorf("sim: audio: %w", err)
	}
	c.mixer = mixer
	// Audio events are distinct one-shots (clanks, alarms): conflation
	// would merge them, so the queue keeps the legacy drop-oldest
	// contract explicitly — a saturated mixer sheds the stalest event.
	audioSub, err := b.SubscribeObjectClass("audio", fom.ClassAudioEvent, cb.WithQueue(64), cb.WithDropOldest())
	if err != nil {
		return err
	}
	audioStateSub, err := b.SubscribeObjectClass("audio", fom.ClassCraneState, cb.WithQueue(128), cb.WithLatestValue())
	if err != nil {
		return err
	}
	if c.cfg.CaptureAudioSec > 0 {
		c.pcmRing = make([]float64, int(c.cfg.CaptureAudioSec*audio.SampleRate))
	}
	listener := make([]fom.CraneState, len(models))
	pcmBlock := make([]float64, 1024)
	err = c.runner("audio", float64(audio.SampleRate)/1024, func(_, _ float64) error {
		for {
			r, ok := audioSub.Poll()
			if !ok {
				break
			}
			if ev, err := fom.DecodeAudioEvent(r.Attrs); err == nil {
				mixer.Handle(ev)
			}
		}
		// The listener sits in crane 0's cab.
		drainCraneStates(audioStateSub, listener)
		mixer.SetListener(listener[0].Position)
		mixer.Render(pcmBlock)
		if c.pcmRing != nil {
			c.capturePCM(pcmBlock)
		}
		return nil
	})
	return err
}

// buildDynamicsLP wires one carrier's physics loop: operator input in,
// authoritative CraneState / MotionCue / AudioEvent out.
func (c *Cluster) buildDynamicsLP(b *cb.Backbone, lp string, model *dynamics.Model, craneID int64) error {
	statePub, err := b.PublishObjectClass(lp, fom.ClassCraneState)
	if err != nil {
		return err
	}
	cuePub, err := b.PublishObjectClass(lp, fom.ClassMotionCue)
	if err != nil {
		return err
	}
	audioPub, err := b.PublishObjectClass(lp, fom.ClassAudioEvent)
	if err != nil {
		return err
	}
	controlSub, err := b.SubscribeObjectClass(lp, fom.ClassControlInput, cb.WithQueue(64), cb.WithLatestValue())
	if err != nil {
		return err
	}
	var lastIn fom.ControlInput
	var frame uint32
	return c.runner(lp, 60, func(simTime, dt float64) error {
		for {
			r, ok := controlSub.Poll()
			if !ok {
				break
			}
			if in, err := fom.DecodeControlInput(r.Attrs); err == nil && in.CraneID == craneID {
				lastIn = in
			}
		}
		events := model.Step(lastIn, dt)
		st := model.State()
		frame++
		if err := statePub.Update(simTime, st.Encode()); err != nil {
			return err
		}
		if err := cuePub.Update(simTime, model.MotionCue(frame).Encode()); err != nil {
			return err
		}
		for _, ev := range events {
			var ae fom.AudioEvent
			switch ev {
			case dynamics.EventEngineStarted:
				ae = fom.AudioEvent{Sound: fom.SoundEngineStart, Gain: 0.9}
			case dynamics.EventEngineStopped:
				ae = fom.AudioEvent{Sound: fom.SoundEngineLoop, Stop: true}
			case dynamics.EventCargoLatched, dynamics.EventCargoReleased:
				ae = fom.AudioEvent{Sound: fom.SoundHoistMotor, Gain: 0.7}
			default:
				continue
			}
			if err := audioPub.Update(simTime, ae.Encode()); err != nil {
				return err
			}
			if ev == dynamics.EventEngineStarted {
				loop := fom.AudioEvent{Sound: fom.SoundEngineLoop, Gain: 0.7, Loop: true}
				if err := audioPub.Update(simTime, loop.Encode()); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// buildDashboard hosts the dashboard LP for crane 0 — operator input →
// ControlInput, with the mockup instrument panel — plus one lean
// autopilot LP per extra declared crane.
func (c *Cluster) buildDashboard(spec scenario.Spec) error {
	b, err := c.backbone(NodeDashboard)
	if err != nil {
		return err
	}
	panel := dashboard.NewPanel()
	c.panel = panel
	shaping := dashboard.DefaultShaping()
	ctrlPub, err := b.PublishObjectClass("dashboard", fom.ClassControlInput)
	if err != nil {
		return err
	}
	stateSub, err := b.SubscribeObjectClass("dashboard", fom.ClassCraneState, cb.WithQueue(128), cb.WithLatestValue())
	if err != nil {
		return err
	}
	scenSub, err := b.SubscribeObjectClass("dashboard", fom.ClassScenarioState, cb.WithQueue(128), cb.WithLatestValue())
	if err != nil {
		return err
	}
	cmdSub, err := b.SubscribeObjectClass("dashboard", fom.ClassInstructorCmd, cb.WithReliable(32))
	if err != nil {
		return err
	}
	var ap *trace.Autopilot
	if c.cfg.Autopilot {
		ap = trace.New(spec)
		ap.SetSkill(c.cfg.Skill)
	}
	states := make([]fom.CraneState, c.craneCount)
	scens := make([]fom.ScenarioState, c.craneCount)
	err = c.runner("dashboard", 50, func(simTime, dt float64) error {
		for {
			r, ok := cmdSub.Poll()
			if !ok {
				break
			}
			if cmd, err := fom.DecodeInstructorCmd(r.Attrs); err == nil {
				_ = panel.Apply(cmd) // unknown instruments are instructor typos
			}
		}
		drainCraneStates(stateSub, states)
		drainScenStates(scenSub, scens)
		panel.UpdateFromState(states[0], dt)
		var in fom.ControlInput
		if ap != nil {
			in = ap.Control(states[0], scens[0], dt)
		}
		return ctrlPub.Update(simTime, shaping.Shape(in).Encode())
	})
	if err != nil {
		return err
	}
	// Extra carriers: an autopilot each, no instrument panel — the cab
	// mockup is crane 0's.
	for i := 1; i < c.craneCount; i++ {
		if err := c.buildPilotLP(b, i, spec); err != nil {
			return err
		}
	}
	return nil
}

// buildPilotLP wires the synthetic operator of one extra carrier.
func (c *Cluster) buildPilotLP(b *cb.Backbone, craneIdx int, spec scenario.Spec) error {
	lp := lpName("dashboard", craneIdx)
	ctrlPub, err := b.PublishObjectClass(lp, fom.ClassControlInput)
	if err != nil {
		return err
	}
	stateSub, err := b.SubscribeObjectClass(lp, fom.ClassCraneState, cb.WithQueue(128), cb.WithLatestValue())
	if err != nil {
		return err
	}
	scenSub, err := b.SubscribeObjectClass(lp, fom.ClassScenarioState, cb.WithQueue(128), cb.WithLatestValue())
	if err != nil {
		return err
	}
	shaping := dashboard.DefaultShaping()
	var ap *trace.Autopilot
	if c.cfg.Autopilot {
		ap = trace.ForCrane(spec, craneIdx)
		ap.SetSkill(c.cfg.Skill)
	}
	states := make([]fom.CraneState, c.craneCount)
	scens := make([]fom.ScenarioState, c.craneCount)
	return c.runner(lp, 50, func(simTime, dt float64) error {
		drainCraneStates(stateSub, states)
		drainScenStates(scenSub, scens)
		var in fom.ControlInput
		if ap != nil {
			in = ap.Control(states[craneIdx], scens[craneIdx], dt)
		}
		in = shaping.Shape(in)
		in.CraneID = int64(craneIdx)
		return ctrlPub.Update(simTime, in.Encode())
	})
}

// buildMotion hosts one motion-platform controller LP per carrier (the
// paper's rack has one cab; extra carriers model remote-cab platforms).
func (c *Cluster) buildMotion() error {
	b, err := c.backbone(NodeMotion)
	if err != nil {
		return err
	}
	for i := 0; i < c.craneCount; i++ {
		lp := lpName("motion", i)
		ctrl, err := motion.NewController(motion.DefaultGeometry(), motion.DefaultWashout(), 16, c.cfg.Seed)
		if err != nil {
			return fmt.Errorf("sim: motion: %w", err)
		}
		cueSub, err := b.SubscribeObjectClass(lp, fom.ClassMotionCue, cb.WithQueue(128), cb.WithLatestValue())
		if err != nil {
			return err
		}
		craneID := int64(i)
		var lastCue fom.MotionCue
		haveCue := false
		err = c.runner(lp, 120, func(_, dt float64) error {
			for {
				r, ok := cueSub.Poll()
				if !ok {
					break
				}
				if cue, err := fom.DecodeMotionCue(r.Attrs); err == nil && cue.CraneID == craneID {
					lastCue = cue
					haveCue = true
				}
			}
			if haveCue {
				ctrl.Cue(lastCue, dt)
				haveCue = false
			}
			if st := ctrl.Step(dt); st.Saturated {
				c.motionSat.Inc()
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// buildInstructor hosts the instructor monitor LP, observing every
// carrier (alarm edges per crane) while mirroring crane 0's cab.
func (c *Cluster) buildInstructor() error {
	b, err := c.backbone(NodeInstructor)
	if err != nil {
		return err
	}
	c.monitor = instructor.NewMonitor(crane.DefaultSpec())
	stateSub, err := b.SubscribeObjectClass("instructor", fom.ClassCraneState, cb.WithQueue(128), cb.WithLatestValue())
	if err != nil {
		return err
	}
	scenSub, err := b.SubscribeObjectClass("instructor", fom.ClassScenarioState, cb.WithQueue(128), cb.WithLatestValue())
	if err != nil {
		return err
	}
	reportPub, err := b.PublishObjectClass("instructor", fom.ClassStatusReport)
	if err != nil {
		return err
	}
	c.cmdPub, err = b.PublishObjectClass("instructor", fom.ClassInstructorCmd)
	if err != nil {
		return err
	}
	states := make([]fom.CraneState, c.craneCount)
	have := make([]bool, c.craneCount)
	return c.runner("instructor", 10, func(simTime, dt float64) error {
		for {
			r, ok := stateSub.Poll()
			if !ok {
				break
			}
			if st, err := fom.DecodeCraneState(r.Attrs); err == nil {
				if st.CraneID >= 0 && st.CraneID < int64(len(states)) {
					states[st.CraneID] = st
					have[st.CraneID] = true
				}
			}
		}
		for i := range states {
			if have[i] {
				c.monitor.ObserveCrane(states[i], dt)
			}
		}
		for {
			r, ok := scenSub.Poll()
			if !ok {
				break
			}
			if s, err := fom.DecodeScenarioState(r.Attrs); err == nil {
				c.monitor.ObserveScenario(s)
			}
		}
		return reportPub.Update(simTime, c.monitor.Report(0).Encode())
	})
}
