package sim

import (
	"fmt"

	"codsim/internal/audio"
	"codsim/internal/cb"
	"codsim/internal/crane"
	"codsim/internal/dashboard"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/instructor"
	"codsim/internal/lp"
	"codsim/internal/motion"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
	"codsim/internal/trace"
)

// runner registers a paced LP loop with the cluster group.
func (c *Cluster) runner(name string, hz float64, fn lp.TickFunc) error {
	r, err := lp.NewRunner(name, hz, fn, lp.Realtime(), lp.TimeScale(c.cfg.TimeScale))
	if err != nil {
		return fmt.Errorf("sim: runner %s: %w", name, err)
	}
	c.group.Add(r)
	return nil
}

// buildSimPC hosts the dynamics, scenario and audio LPs on one computer
// (§2.1: one or many LPs can run on a computer).
func (c *Cluster) buildSimPC(ter *terrain.Map, spec scenario.Spec) error {
	b, err := c.backbone(NodeSim)
	if err != nil {
		return err
	}

	// --- Dynamics LP (60 Hz) ---
	course := spec.Course
	model, err := dynamics.New(dynamics.DefaultConfig(), ter, course.Start, course.StartYaw)
	if err != nil {
		return fmt.Errorf("sim: dynamics: %w", err)
	}
	spec.Install(model, ter)

	statePub, err := b.PublishObjectClass("dynamics", fom.ClassCraneState)
	if err != nil {
		return err
	}
	cuePub, err := b.PublishObjectClass("dynamics", fom.ClassMotionCue)
	if err != nil {
		return err
	}
	audioPub, err := b.PublishObjectClass("dynamics", fom.ClassAudioEvent)
	if err != nil {
		return err
	}
	controlSub, err := b.SubscribeObjectClass("dynamics", fom.ClassControlInput, cb.WithConflation())
	if err != nil {
		return err
	}
	var lastIn fom.ControlInput
	var frame uint32
	err = c.runner("dynamics", 60, func(simTime, dt float64) error {
		if r, ok := controlSub.Latest(); ok {
			if in, err := fom.DecodeControlInput(r.Attrs); err == nil {
				lastIn = in
			}
		}
		events := model.Step(lastIn, dt)
		st := model.State()
		frame++
		if err := statePub.Update(simTime, st.Encode()); err != nil {
			return err
		}
		if err := cuePub.Update(simTime, model.MotionCue(frame).Encode()); err != nil {
			return err
		}
		for _, ev := range events {
			var ae fom.AudioEvent
			switch ev {
			case dynamics.EventEngineStarted:
				ae = fom.AudioEvent{Sound: fom.SoundEngineStart, Gain: 0.9}
			case dynamics.EventEngineStopped:
				ae = fom.AudioEvent{Sound: fom.SoundEngineLoop, Stop: true}
			case dynamics.EventCargoLatched, dynamics.EventCargoReleased:
				ae = fom.AudioEvent{Sound: fom.SoundHoistMotor, Gain: 0.7}
			default:
				continue
			}
			if err := audioPub.Update(simTime, ae.Encode()); err != nil {
				return err
			}
			if ev == dynamics.EventEngineStarted {
				loop := fom.AudioEvent{Sound: fom.SoundEngineLoop, Gain: 0.7, Loop: true}
				if err := audioPub.Update(simTime, loop.Encode()); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// --- Scenario LP (30 Hz) ---
	eng, err := scenario.NewEngineSpec(spec, crane.DefaultSpec())
	if err != nil {
		return fmt.Errorf("sim: scenario: %w", err)
	}
	if c.cfg.AutoStart {
		eng.Start()
	}
	scenPub, err := b.PublishObjectClass("scenario", fom.ClassScenarioState)
	if err != nil {
		return err
	}
	scenAudioPub, err := b.PublishObjectClass("scenario", fom.ClassAudioEvent)
	if err != nil {
		return err
	}
	scenStateSub, err := b.SubscribeObjectClass("scenario", fom.ClassCraneState, cb.WithConflation())
	if err != nil {
		return err
	}
	cmdSub, err := b.SubscribeObjectClass("scenario", fom.ClassInstructorCmd, cb.WithQueue(32))
	if err != nil {
		return err
	}
	err = c.runner("scenario", 30, func(simTime, dt float64) error {
		for {
			r, ok := cmdSub.Poll()
			if !ok {
				break
			}
			cmd, err := fom.DecodeInstructorCmd(r.Attrs)
			if err != nil {
				continue
			}
			switch cmd.Op {
			case fom.OpStartScenario:
				eng.Start()
			case fom.OpResetScenario:
				eng.Reset()
			}
		}
		if r, ok := scenStateSub.Latest(); ok {
			if st, err := fom.DecodeCraneState(r.Attrs); err == nil {
				for _, ev := range eng.Step(st, dt) {
					if ev.Kind != scenario.EventBarCollision {
						continue
					}
					bang := fom.AudioEvent{Sound: fom.SoundCollision, Gain: 1, Position: st.CargoPos}
					if err := scenAudioPub.Update(simTime, bang.Encode()); err != nil {
						return err
					}
				}
			}
		}
		s := eng.State()
		c.mu.Lock()
		c.scenState = s
		c.mu.Unlock()
		return scenPub.Update(simTime, s.Encode())
	})
	if err != nil {
		return err
	}

	// --- Audio LP (~43 Hz: one 1024-sample block per tick) ---
	mixer, err := audio.NewMixer(audio.SynthesizeAssets(c.cfg.Seed))
	if err != nil {
		return fmt.Errorf("sim: audio: %w", err)
	}
	c.mixer = mixer
	audioSub, err := b.SubscribeObjectClass("audio", fom.ClassAudioEvent, cb.WithQueue(64))
	if err != nil {
		return err
	}
	audioStateSub, err := b.SubscribeObjectClass("audio", fom.ClassCraneState, cb.WithConflation())
	if err != nil {
		return err
	}
	if c.cfg.CaptureAudioSec > 0 {
		c.pcmRing = make([]float64, int(c.cfg.CaptureAudioSec*audio.SampleRate))
	}
	pcmBlock := make([]float64, 1024)
	err = c.runner("audio", float64(audio.SampleRate)/1024, func(_, _ float64) error {
		for {
			r, ok := audioSub.Poll()
			if !ok {
				break
			}
			if ev, err := fom.DecodeAudioEvent(r.Attrs); err == nil {
				mixer.Handle(ev)
			}
		}
		if r, ok := audioStateSub.Latest(); ok {
			if st, err := fom.DecodeCraneState(r.Attrs); err == nil {
				mixer.SetListener(st.Position)
			}
		}
		mixer.Render(pcmBlock)
		if c.pcmRing != nil {
			c.capturePCM(pcmBlock)
		}
		return nil
	})
	return err
}

// buildDashboard hosts the dashboard LP: operator input → ControlInput.
func (c *Cluster) buildDashboard(spec scenario.Spec) error {
	b, err := c.backbone(NodeDashboard)
	if err != nil {
		return err
	}
	panel := dashboard.NewPanel()
	c.panel = panel
	shaping := dashboard.DefaultShaping()
	ctrlPub, err := b.PublishObjectClass("dashboard", fom.ClassControlInput)
	if err != nil {
		return err
	}
	stateSub, err := b.SubscribeObjectClass("dashboard", fom.ClassCraneState, cb.WithConflation())
	if err != nil {
		return err
	}
	scenSub, err := b.SubscribeObjectClass("dashboard", fom.ClassScenarioState, cb.WithConflation())
	if err != nil {
		return err
	}
	cmdSub, err := b.SubscribeObjectClass("dashboard", fom.ClassInstructorCmd, cb.WithQueue(32))
	if err != nil {
		return err
	}
	var ap *trace.Autopilot
	if c.cfg.Autopilot {
		ap = trace.New(spec)
	}
	var lastState fom.CraneState
	var lastScen fom.ScenarioState
	return c.runner("dashboard", 50, func(simTime, dt float64) error {
		for {
			r, ok := cmdSub.Poll()
			if !ok {
				break
			}
			if cmd, err := fom.DecodeInstructorCmd(r.Attrs); err == nil {
				_ = panel.Apply(cmd) // unknown instruments are instructor typos
			}
		}
		if r, ok := stateSub.Latest(); ok {
			if st, err := fom.DecodeCraneState(r.Attrs); err == nil {
				lastState = st
				panel.UpdateFromState(st, dt)
			}
		}
		if r, ok := scenSub.Latest(); ok {
			if s, err := fom.DecodeScenarioState(r.Attrs); err == nil {
				lastScen = s
			}
		}
		var in fom.ControlInput
		if ap != nil {
			in = ap.Control(lastState, lastScen, dt)
		}
		return ctrlPub.Update(simTime, shaping.Shape(in).Encode())
	})
}

// buildMotion hosts the motion-platform controller LP.
func (c *Cluster) buildMotion() error {
	b, err := c.backbone(NodeMotion)
	if err != nil {
		return err
	}
	ctrl, err := motion.NewController(motion.DefaultGeometry(), motion.DefaultWashout(), 16, c.cfg.Seed)
	if err != nil {
		return fmt.Errorf("sim: motion: %w", err)
	}
	cueSub, err := b.SubscribeObjectClass("motion", fom.ClassMotionCue, cb.WithConflation())
	if err != nil {
		return err
	}
	return c.runner("motion", 120, func(_, dt float64) error {
		if r, ok := cueSub.Latest(); ok {
			if cue, err := fom.DecodeMotionCue(r.Attrs); err == nil {
				ctrl.Cue(cue, dt)
			}
		}
		if st := ctrl.Step(dt); st.Saturated {
			c.motionSat.Inc()
		}
		return nil
	})
}

// buildInstructor hosts the instructor monitor LP.
func (c *Cluster) buildInstructor() error {
	b, err := c.backbone(NodeInstructor)
	if err != nil {
		return err
	}
	c.monitor = instructor.NewMonitor(crane.DefaultSpec())
	stateSub, err := b.SubscribeObjectClass("instructor", fom.ClassCraneState, cb.WithConflation())
	if err != nil {
		return err
	}
	scenSub, err := b.SubscribeObjectClass("instructor", fom.ClassScenarioState, cb.WithConflation())
	if err != nil {
		return err
	}
	reportPub, err := b.PublishObjectClass("instructor", fom.ClassStatusReport)
	if err != nil {
		return err
	}
	c.cmdPub, err = b.PublishObjectClass("instructor", fom.ClassInstructorCmd)
	if err != nil {
		return err
	}
	return c.runner("instructor", 10, func(simTime, dt float64) error {
		if r, ok := stateSub.Latest(); ok {
			if st, err := fom.DecodeCraneState(r.Attrs); err == nil {
				c.monitor.ObserveCrane(st, dt)
			}
		}
		if r, ok := scenSub.Latest(); ok {
			if s, err := fom.DecodeScenarioState(r.Attrs); err == nil {
				c.monitor.ObserveScenario(s)
			}
		}
		return reportPub.Update(simTime, c.monitor.Report(0).Encode())
	})
}
