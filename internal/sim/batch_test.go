package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"codsim/internal/fom"
	"codsim/internal/scenario"
)

// TestBatchRunsScenariosConcurrently executes two different scenarios as
// two concurrent full federations and checks the per-scenario report.
func TestBatchRunsScenariosConcurrently(t *testing.T) {
	if testing.Short() {
		t.Skip("two full federation runs")
	}
	specs := []scenario.Spec{scenario.BlindLift(), scenario.Classic()}
	results := RunBatch(context.Background(), specs, BatchConfig{
		Base: Config{
			CB:        fastCB(),
			TimeScale: 15,
			Width:     96,
			Height:    72,
			Polygons:  400,
		},
		Parallel: 2,
		Timeout:  180 * time.Second,
	})
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Scenario != specs[i].Name {
			t.Errorf("result %d order: %q, want %q", i, r.Scenario, specs[i].Name)
		}
		if r.Err != nil {
			t.Errorf("%s: %v (phase %v, msg %q)", r.Scenario, r.Err, r.State.Phase, r.State.Message)
			continue
		}
		if !r.Passed || r.State.Phase != fom.PhaseComplete {
			t.Errorf("%s: phase=%v score=%.1f msg=%q", r.Scenario, r.State.Phase, r.State.Score, r.State.Message)
		}
	}

	var sb strings.Builder
	WriteBatchReport(&sb, results)
	report := sb.String()
	for _, want := range []string{"blind-lift", "classic-exam", "pass rate: 2/2 (100%)"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestBatchHeadless runs the whole library through the batch pool's
// headless path — no federations, sim-time budgets from each scenario's
// par time.
func TestBatchHeadless(t *testing.T) {
	specs := scenario.Library()
	results := RunBatch(context.Background(), specs, BatchConfig{Headless: true})
	if len(results) != len(specs) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil || !r.Passed {
			t.Errorf("%s: passed=%v err=%v phase=%v score=%.1f",
				r.Scenario, r.Passed, r.Err, r.State.Phase, r.State.Score)
		}
	}
}

// TestBatchReportCountsFailures pins the report's verdict lines without
// running any federation.
func TestBatchReportCountsFailures(t *testing.T) {
	results := []BatchResult{
		{Scenario: "a", Passed: true, State: fom.ScenarioState{Score: 90}},
		{Scenario: "b", Err: errors.New("boom")},
		{Scenario: "c", State: fom.ScenarioState{Phase: fom.PhaseFailed, Score: 12}},
	}
	var sb strings.Builder
	WriteBatchReport(&sb, results)
	report := sb.String()
	for _, want := range []string{"pass rate: 1/3 (33%)", "ERROR: boom", "FAIL"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestBatchHeadlessTimeoutIsSimTimeCap pins the BatchConfig.Timeout rule
// for headless runs: the cap is simulation time, so an absurdly small
// Timeout must abort the scenario unfinished instead of being ignored.
func TestBatchHeadlessTimeoutIsSimTimeCap(t *testing.T) {
	specs := []scenario.Spec{scenario.Classic()}
	results := RunBatch(context.Background(), specs, BatchConfig{
		Headless: true,
		Timeout:  2 * time.Second, // 2 sim-seconds: not even enough to drive off
	})
	r := results[0]
	if r.Err == nil || r.Passed {
		t.Fatalf("2 sim-second budget produced a verdict: passed=%v err=%v", r.Passed, r.Err)
	}
	if r.State.Elapsed > 30 {
		t.Errorf("scenario ran %v sim-seconds past a 2 s budget", r.State.Elapsed)
	}
}

// TestBatchCancel proves a canceled context abandons both the queue and
// in-flight headless runs.
func TestBatchCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the batch starts: nothing may run
	specs := scenario.Library()
	results := RunBatch(ctx, specs, BatchConfig{Headless: true})
	if len(results) != len(specs) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", r.Scenario, r.Err)
		}
		if r.Passed {
			t.Errorf("%s: passed after cancellation", r.Scenario)
		}
	}
}

// TestBatchScenarioValidationError surfaces a broken spec as a per-run
// error instead of a panic or hang.
func TestBatchScenarioValidationError(t *testing.T) {
	bad := scenario.Classic()
	bad.Phases = nil
	results := RunBatch(context.Background(), []scenario.Spec{bad}, BatchConfig{
		Base:    Config{CB: fastCB(), TimeScale: 8, Width: 96, Height: 72, Polygons: 400},
		Timeout: 5 * time.Second,
	})
	if len(results) != 1 || results[0].Err == nil {
		t.Fatalf("results = %+v, want one error", results)
	}
}
