package sim

import (
	"testing"
	"time"

	"codsim/internal/cb"
	"codsim/internal/fom"
	"codsim/internal/transport"
)

func fastCB() cb.Config {
	return cb.Config{
		BroadcastInterval: 5 * time.Millisecond,
		RefreshInterval:   40 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  200 * time.Millisecond,
	}
}

// TestClusterBootAndTraffic brings the whole 8-computer federation up,
// lets it run briefly, and checks every module exchanged traffic over the
// Communication Backbone.
func TestClusterBootAndTraffic(t *testing.T) {
	c, err := New(Config{
		CB:           fastCB(),
		TimeScale:    8,
		Width:        160,
		Height:       120,
		Polygons:     800,
		RenderFrames: 12,
		Autopilot:    true,
		AutoStart:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Give the federation a moment to exchange traffic (scaled time).
	deadline := time.Now().Add(15 * time.Second)
	for {
		if c.ScenarioState().Phase >= fom.PhaseDriving {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scenario never started")
		}
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Displays must complete their frames through the barrier.
	waitDeadline := time.Now().Add(20 * time.Second)
	for c.server.Swaps() < 12 {
		if time.Now().After(waitDeadline) {
			t.Fatalf("server released only %d swaps", c.server.Swaps())
		}
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	sum := c.Summary()
	if len(sum.DisplayFPS) != 3 {
		t.Fatalf("display fps = %v", sum.DisplayFPS)
	}
	for i, fps := range sum.DisplayFPS {
		if fps <= 0 {
			t.Errorf("display %d fps = %v", i+1, fps)
		}
	}
	// The dynamics node must have published to multiple subscribers.
	stats := c.Backbone(NodeSim).Stats()
	if stats.UpdatesSent.Value() == 0 {
		t.Error("sim-pc published nothing")
	}
	if got := c.Backbone(NodeMotion).Stats().ReflectsDelivered.Value(); got == 0 {
		t.Error("motion-pc received no cues")
	}
	if got := c.Backbone(NodeInstructor).Stats().ReflectsDelivered.Value(); got == 0 {
		t.Error("instructor-pc received nothing")
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterExamCompletes runs the full licensing exam over the real
// federation at high time scale.
func TestClusterExamCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("full exam run")
	}
	// TimeScale 15 keeps the LP tick demand (~900 ticks/s aggregate)
	// satisfiable even when other test packages share the CPUs.
	c, err := New(Config{
		CB:        fastCB(),
		TimeScale: 15,
		Width:     96,
		Height:    72,
		Polygons:  600,
		Autopilot: true,
		AutoStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	final, err := c.WaitExam(180 * time.Second)
	if err != nil {
		t.Fatalf("WaitExam: %v (phase %v, msg %q)", err, final.Phase, final.Message)
	}
	if final.Phase != fom.PhaseComplete {
		t.Fatalf("exam phase = %v, score %.1f, msg %q", final.Phase, final.Score, final.Message)
	}
	if final.Score < 60 {
		t.Errorf("score = %v", final.Score)
	}
	sum := c.Summary()
	if sum.ServerSwaps == 0 {
		t.Error("no display swaps during exam")
	}
	if sum.AudioVoices == 0 {
		t.Error("audio module never played a sound")
	}
	if sum.Status.Score != final.Score {
		t.Errorf("instructor score %v != scenario score %v", sum.Status.Score, final.Score)
	}
	t.Logf("exam over COD: score=%.1f elapsed=%.1fs fps=%v audio=%d",
		final.Score, final.Elapsed, sum.DisplayFPS, sum.AudioVoices)
}

// TestAudioCapture verifies the training-review recording: the audio LP's
// mixed output is captured in a ring and exported chronologically.
func TestAudioCapture(t *testing.T) {
	c, err := New(Config{
		CB:              fastCB(),
		TimeScale:       8,
		Width:           96,
		Height:          72,
		Polygons:        400,
		RenderFrames:    4,
		Autopilot:       true,
		AutoStart:       true,
		CaptureAudioSec: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	deadline := time.Now().Add(15 * time.Second)
	for len(c.AudioPCM()) < 4096 {
		if time.Now().After(deadline) {
			t.Fatalf("captured only %d samples", len(c.AudioPCM()))
		}
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	pcm := c.AudioPCM()
	// The autopilot starts the engine, so the capture is not silence.
	var energy float64
	for _, s := range pcm {
		energy += s * s
	}
	if energy == 0 {
		t.Error("captured audio is pure silence despite the running engine")
	}
	for i, s := range pcm {
		if s < -1 || s > 1 {
			t.Fatalf("sample %d = %v outside [-1,1]", i, s)
		}
	}
}

// TestClusterOverUDP boots the cluster on real loopback sockets.
func TestClusterOverUDP(t *testing.T) {
	lan, err := transport.NewUDPLAN("127.0.0.1", 39600, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		LAN:          lan,
		CB:           fastCB(),
		TimeScale:    8,
		Width:        96,
		Height:       72,
		Polygons:     400,
		RenderFrames: 6,
		Autopilot:    true,
		AutoStart:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	deadline := time.Now().Add(20 * time.Second)
	for c.server.Swaps() < 6 {
		if time.Now().After(deadline) {
			t.Fatalf("swaps = %d over UDP", c.server.Swaps())
		}
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
