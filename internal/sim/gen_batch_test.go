package sim

import (
	"context"
	"testing"

	"codsim/internal/scenario"
	"codsim/internal/scenario/gen"
)

// TestBatchGeneratedCampaign runs a slice of oracle-certified generated
// scenarios through the headless batch path: every spec the generator
// emits with the default (expert dry-run) oracle must pass here too,
// since RunBatch headless and the oracle fly the identical coupling.
func TestBatchGeneratedCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("generated headless sweep in -short")
	}
	const count = 8
	stream := gen.NewStream(31, gen.DefaultParams())
	specs := make([]scenario.Spec, 0, count)
	for len(specs) < count {
		spec, _, err := stream.Next(context.Background())
		if err != nil {
			t.Fatalf("emit %d: %v", len(specs), err)
		}
		specs = append(specs, spec)
	}
	results := RunBatch(context.Background(), specs, BatchConfig{Headless: true, Parallel: 2})
	for i, r := range results {
		if r.Err != nil || !r.Passed {
			t.Errorf("generated %s (#%d): passed=%v err=%v", r.Scenario, i, r.Passed, r.Err)
		}
	}
	st := stream.Stats()
	t.Logf("certified %d of %d candidates (%d static, %d oracle rejects)",
		st.Emitted, st.Candidates, st.StaticRejects, st.OracleRejects)
}
