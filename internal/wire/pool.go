package wire

import "sync"

// The shared AttrSet pool. Pooled wire buffers live here and in
// internal/cb only (enforced by the codvet nopool rule); consumer
// packages borrow through these helpers instead of rolling their own
// pools, so the ownership rule stays auditable in one place.
//
// Ownership: the borrower owns the set from GetAttrSet until PutAttrSet.
// The cb layer copies or serializes attribute bytes before Update/
// UpdateContext returns (copy-at-boundary rule), so a caller may release
// its set as soon as the send call comes back — that return is the
// release point.
var attrSetPool = sync.Pool{
	New: func() any {
		a := NewAttrSet(16)
		return &a
	},
}

// GetAttrSet borrows an empty AttrSet from the pool.
func GetAttrSet() *AttrSet {
	return attrSetPool.Get().(*AttrSet)
}

// PutAttrSet resets a and returns it to the pool. The caller must not
// touch a (or anything aliasing its arena) afterwards.
func PutAttrSet(a *AttrSet) {
	a.Reset()
	attrSetPool.Put(a)
}
