package wire

import (
	"encoding/binary"
	"fmt"
	"iter"
	"math"
)

// AttrID identifies one attribute of an object class, the HLA "attribute
// handle". IDs are assigned by the object model (package fom).
type AttrID uint16

// AttrSet carries the attribute values of one UPDATE/REFLECT frame. Values
// are opaque byte strings at this layer; package fom assigns them types.
//
// The representation is a flat arena: every value lives in one contiguous
// byte buffer, and a small ref table records (id, start, end) per
// attribute in insertion order. Building a full CraneState therefore
// costs at most two allocations (refs + arena), both amortized to zero
// when the set is Reset and refilled — which is what the pooled wire hot
// path does. The zero value is a valid empty set.
//
// Determinism: the encoded form orders attributes by ascending ID, which
// is byte-identical to the historical map+sort encoder. Every producer in
// the tree (fom encoders, the cod codec) inserts attributes in ascending
// ID order already, so encoding walks the refs as-is and the per-frame
// sort is gone; a set built out of order (sparse/legacy call sites) is
// flagged and lazily sorted once at encode time instead. One writer per
// frame is the concurrency contract — AttrSet has no internal locking.
type AttrSet struct {
	refs     []attrRef
	arena    []byte
	unsorted bool // some Put arrived with an ID below the tail; encode must sort
}

// attrRef locates one attribute's value bytes inside the arena.
type attrRef struct {
	id         AttrID
	start, end uint32
}

// NewAttrSet returns an empty set with room for n attributes (and a
// size-estimated arena) so the common build-then-encode pattern does not
// regrow either buffer.
func NewAttrSet(n int) AttrSet {
	return AttrSet{
		refs:  make([]attrRef, 0, n),
		arena: make([]byte, 0, 16*n),
	}
}

// Len returns the number of attributes in the set.
func (a AttrSet) Len() int { return len(a.refs) }

// Reset empties the set, keeping both buffers' capacity for reuse.
func (a *AttrSet) Reset() {
	a.refs = a.refs[:0]
	a.arena = a.arena[:0]
	a.unsorted = false
}

// Clone returns a deep copy of the set, so received frames can be retained
// past the decoder's buffer lifetime (copy-at-boundary rule).
func (a AttrSet) Clone() AttrSet {
	if len(a.refs) == 0 {
		return AttrSet{}
	}
	out := AttrSet{
		refs:     make([]attrRef, len(a.refs)),
		arena:    make([]byte, len(a.arena)),
		unsorted: a.unsorted,
	}
	copy(out.refs, a.refs)
	copy(out.arena, a.arena)
	return out
}

// All iterates the set's (id, value) pairs in insertion order. Values
// alias the arena; Clone them before mutating the set.
func (a AttrSet) All() iter.Seq2[AttrID, []byte] {
	return func(yield func(AttrID, []byte) bool) {
		for _, r := range a.refs {
			if !yield(r.id, a.arena[r.start:r.end]) {
				return
			}
		}
	}
}

// Delete removes id from the set, if present (compat shim for sparse
// call sites that subset a full set). Remaining attributes keep their
// order; the value bytes stay orphaned in the arena until Reset.
func (a *AttrSet) Delete(id AttrID) {
	for i := range a.refs {
		if a.refs[i].id == id {
			a.refs = append(a.refs[:i], a.refs[i+1:]...)
			return
		}
	}
}

// get returns the value bytes for id, aliasing the arena.
func (a AttrSet) get(id AttrID) ([]byte, bool) {
	for _, r := range a.refs {
		if r.id == id {
			return a.arena[r.start:r.end], true
		}
	}
	return nil, false
}

// grow extends b by n bytes (contents of the extension unspecified —
// every caller overwrites the full slot).
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, max(2*cap(b)+n, 64))
	copy(nb, b)
	return nb
}

// slot returns an n-byte writable region for id's value. A repeated Put
// replaces the previous value (map semantics): in place when the size
// matches, else the value moves to fresh arena space and the old bytes
// are orphaned until Reset. New IDs append; an ID below the current tail
// marks the set for the encode-time sort shim.
func (a *AttrSet) slot(id AttrID, n int) []byte {
	for i := range a.refs {
		if a.refs[i].id == id {
			r := &a.refs[i]
			if int(r.end-r.start) != n {
				start := uint32(len(a.arena))
				a.arena = grow(a.arena, n)
				r.start, r.end = start, start+uint32(n)
			}
			return a.arena[r.start:r.end]
		}
	}
	if len(a.refs) > 0 && id < a.refs[len(a.refs)-1].id {
		a.unsorted = true
	}
	start := uint32(len(a.arena))
	a.arena = grow(a.arena, n)
	a.refs = append(a.refs, attrRef{id: id, start: start, end: start + uint32(n)})
	return a.arena[start : start+uint32(n)]
}

func (a AttrSet) encodedSize() int {
	n := binary.MaxVarintLen32
	for _, r := range a.refs {
		n += 2 + binary.MaxVarintLen32 + int(r.end-r.start)
	}
	return n
}

// sortRefs orders the refs ascending by ID, in place. Sets are tiny
// (≤ ~20 attrs), so insertion sort beats sort.Slice and allocates
// nothing. IDs are unique by construction, so stability is moot.
func sortRefs(refs []attrRef) {
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j].id < refs[j-1].id; j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}

// append serializes the set: uvarint count, then per attribute a big-endian
// uint16 ID and a uvarint-length-prefixed value, ascending by ID. The
// common ascending-insertion set encodes in ref order with no sort; an
// out-of-order set is sorted in place first (compat shim — same bytes as
// the historical map encoder).
func (a AttrSet) append(buf []byte) []byte {
	if a.unsorted {
		sortRefs(a.refs)
	}
	buf = binary.AppendUvarint(buf, uint64(len(a.refs)))
	for _, r := range a.refs {
		buf = binary.BigEndian.AppendUint16(buf, uint16(r.id))
		v := a.arena[r.start:r.end]
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

// readAttrSetInto parses an encoded set into dst, reusing dst's buffers.
func readAttrSetInto(dst *AttrSet, b []byte) ([]byte, error) {
	dst.Reset()
	count, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, ErrTruncated
	}
	b = b[sz:]
	if count == 0 {
		return b, nil
	}
	if count > MaxFrameSize/3 {
		return nil, fmt.Errorf("%w: %d attributes", ErrTooLarge, count)
	}
	for i := uint64(0); i < count; i++ {
		if len(b) < 2 {
			return nil, ErrTruncated
		}
		id := AttrID(binary.BigEndian.Uint16(b))
		b = b[2:]
		n, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, ErrTruncated
		}
		b = b[sz:]
		if uint64(len(b)) < n {
			return nil, ErrTruncated
		}
		// slot keeps the old decoder's duplicate-ID semantics: last wins.
		copy(dst.slot(id, int(n)), b[:n])
		b = b[n:]
	}
	return b, nil
}

// PutFloat64 stores a float64 value under id.
func (a *AttrSet) PutFloat64(id AttrID, v float64) {
	binary.BigEndian.PutUint64(a.slot(id, 8), math.Float64bits(v))
}

// Float64 reads a float64 value; ok is false when absent or mis-sized.
func (a AttrSet) Float64(id AttrID) (v float64, ok bool) {
	b, present := a.get(id)
	if !present || len(b) != 8 {
		return 0, false
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), true
}

// PutUint32 stores a uint32 value under id.
func (a *AttrSet) PutUint32(id AttrID, v uint32) {
	binary.BigEndian.PutUint32(a.slot(id, 4), v)
}

// Uint32 reads a uint32 value; ok is false when absent or mis-sized.
func (a AttrSet) Uint32(id AttrID) (v uint32, ok bool) {
	b, present := a.get(id)
	if !present || len(b) != 4 {
		return 0, false
	}
	return binary.BigEndian.Uint32(b), true
}

// PutBool stores a boolean value under id.
func (a *AttrSet) PutBool(id AttrID, v bool) {
	s := a.slot(id, 1)
	if v {
		s[0] = 1
	} else {
		s[0] = 0
	}
}

// Bool reads a boolean value; ok is false when absent or mis-sized.
func (a AttrSet) Bool(id AttrID) (v, ok bool) {
	b, present := a.get(id)
	if !present || len(b) != 1 {
		return false, false
	}
	return b[0] != 0, true
}

// PutString stores a string value under id.
func (a *AttrSet) PutString(id AttrID, s string) {
	copy(a.slot(id, len(s)), s)
}

// String reads a string value; ok is false when absent.
func (a AttrSet) String(id AttrID) (s string, ok bool) {
	b, present := a.get(id)
	if !present {
		return "", false
	}
	return string(b), true
}

// PutInt64 stores a signed 64-bit value under id (big-endian two's
// complement). The cod SDK's codec uses this for every Go integer kind.
func (a *AttrSet) PutInt64(id AttrID, v int64) {
	binary.BigEndian.PutUint64(a.slot(id, 8), uint64(v))
}

// Int64 reads a signed 64-bit value; ok is false when absent or mis-sized.
func (a AttrSet) Int64(id AttrID) (v int64, ok bool) {
	b, present := a.get(id)
	if !present || len(b) != 8 {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(b)), true
}

// PutFloat64s stores a []float64 under id, 8 bytes per element.
func (a *AttrSet) PutFloat64s(id AttrID, vs []float64) {
	s := a.slot(id, 8*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint64(s[8*i:], math.Float64bits(v))
	}
}

// Float64s reads a []float64; ok is false when absent or mis-sized. An
// empty value decodes to a non-nil empty slice.
func (a AttrSet) Float64s(id AttrID) (vs []float64, ok bool) {
	b, present := a.get(id)
	if !present || len(b)%8 != 0 {
		return nil, false
	}
	vs = make([]float64, len(b)/8)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8*i:]))
	}
	return vs, true
}

// PutInt64s stores a []int64 under id, 8 bytes per element.
func (a *AttrSet) PutInt64s(id AttrID, vs []int64) {
	s := a.slot(id, 8*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint64(s[8*i:], uint64(v))
	}
}

// Int64s reads a []int64; ok is false when absent or mis-sized.
func (a AttrSet) Int64s(id AttrID) (vs []int64, ok bool) {
	b, present := a.get(id)
	if !present || len(b)%8 != 0 {
		return nil, false
	}
	vs = make([]int64, len(b)/8)
	for i := range vs {
		vs[i] = int64(binary.BigEndian.Uint64(b[8*i:]))
	}
	return vs, true
}

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// PutStrings stores a []string under id: a uvarint count, then each
// element uvarint-length-prefixed.
func (a *AttrSet) PutStrings(id AttrID, vs []string) {
	n := uvarintLen(uint64(len(vs)))
	for _, s := range vs {
		n += uvarintLen(uint64(len(s))) + len(s)
	}
	buf := a.slot(id, n)[:0]
	buf = binary.AppendUvarint(buf, uint64(len(vs)))
	for _, s := range vs {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
}

// Strings reads a []string; ok is false when absent or malformed.
func (a AttrSet) Strings(id AttrID) (vs []string, ok bool) {
	b, present := a.get(id)
	if !present {
		return nil, false
	}
	count, sz := binary.Uvarint(b)
	if sz <= 0 || count > uint64(len(b)) {
		return nil, false
	}
	b = b[sz:]
	vs = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		n, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b[sz:])) < n {
			return nil, false
		}
		b = b[sz:]
		vs = append(vs, string(b[:n]))
		b = b[n:]
	}
	return vs, true
}

// PutBytes stores a raw byte string under id (copied).
func (a *AttrSet) PutBytes(id AttrID, v []byte) {
	copy(a.slot(id, len(v)), v)
}

// Bytes reads a raw byte string; ok is false when absent. The returned
// slice aliases the set's storage.
func (a AttrSet) Bytes(id AttrID) (v []byte, ok bool) {
	return a.get(id)
}

// PutVec3 stores three float64 components under id.
func (a *AttrSet) PutVec3(id AttrID, x, y, z float64) {
	s := a.slot(id, 24)
	binary.BigEndian.PutUint64(s[0:8], math.Float64bits(x))
	binary.BigEndian.PutUint64(s[8:16], math.Float64bits(y))
	binary.BigEndian.PutUint64(s[16:24], math.Float64bits(z))
}

// Vec3 reads three float64 components; ok is false when absent or mis-sized.
func (a AttrSet) Vec3(id AttrID) (x, y, z float64, ok bool) {
	b, present := a.get(id)
	if !present || len(b) != 24 {
		return 0, 0, 0, false
	}
	x = math.Float64frombits(binary.BigEndian.Uint64(b[0:8]))
	y = math.Float64frombits(binary.BigEndian.Uint64(b[8:16]))
	z = math.Float64frombits(binary.BigEndian.Uint64(b[16:24]))
	return x, y, z, true
}
