package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// AttrID identifies one attribute of an object class, the HLA "attribute
// handle". IDs are assigned by the object model (package fom).
type AttrID uint16

// AttrSet carries the attribute values of one UPDATE/REFLECT frame. Values
// are opaque byte strings at this layer; package fom assigns them types.
// A nil AttrSet is a valid empty set.
type AttrSet map[AttrID][]byte

// Clone returns a deep copy of the set, so received frames can be retained
// past the decoder's buffer lifetime (copy-at-boundary rule).
func (a AttrSet) Clone() AttrSet {
	if a == nil {
		return nil
	}
	out := make(AttrSet, len(a))
	for id, v := range a {
		cp := make([]byte, len(v))
		copy(cp, v)
		out[id] = cp
	}
	return out
}

// ids returns the attribute IDs in ascending order, for deterministic
// encoding.
func (a AttrSet) ids() []AttrID {
	ids := make([]AttrID, 0, len(a))
	for id := range a {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (a AttrSet) encodedSize() int {
	n := binary.MaxVarintLen32
	for _, v := range a {
		n += 2 + binary.MaxVarintLen32 + len(v)
	}
	return n
}

// append serializes the set: uvarint count, then per attribute a big-endian
// uint16 ID and a uvarint-length-prefixed value.
func (a AttrSet) append(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(a)))
	for _, id := range a.ids() {
		buf = binary.BigEndian.AppendUint16(buf, uint16(id))
		v := a[id]
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

func readAttrSet(b []byte) (AttrSet, []byte, error) {
	count, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, ErrTruncated
	}
	b = b[sz:]
	if count == 0 {
		return nil, b, nil
	}
	if count > MaxFrameSize/3 {
		return nil, nil, fmt.Errorf("%w: %d attributes", ErrTooLarge, count)
	}
	set := make(AttrSet, count)
	for i := uint64(0); i < count; i++ {
		if len(b) < 2 {
			return nil, nil, ErrTruncated
		}
		id := AttrID(binary.BigEndian.Uint16(b))
		b = b[2:]
		n, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, nil, ErrTruncated
		}
		b = b[sz:]
		if uint64(len(b)) < n {
			return nil, nil, ErrTruncated
		}
		v := make([]byte, n)
		copy(v, b[:n])
		set[id] = v
		b = b[n:]
	}
	return set, b, nil
}

// PutFloat64 stores a float64 value under id.
func (a AttrSet) PutFloat64(id AttrID, v float64) {
	a[id] = binary.BigEndian.AppendUint64(make([]byte, 0, 8), math.Float64bits(v))
}

// Float64 reads a float64 value; ok is false when absent or mis-sized.
func (a AttrSet) Float64(id AttrID) (v float64, ok bool) {
	b, present := a[id]
	if !present || len(b) != 8 {
		return 0, false
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), true
}

// PutUint32 stores a uint32 value under id.
func (a AttrSet) PutUint32(id AttrID, v uint32) {
	a[id] = binary.BigEndian.AppendUint32(make([]byte, 0, 4), v)
}

// Uint32 reads a uint32 value; ok is false when absent or mis-sized.
func (a AttrSet) Uint32(id AttrID) (v uint32, ok bool) {
	b, present := a[id]
	if !present || len(b) != 4 {
		return 0, false
	}
	return binary.BigEndian.Uint32(b), true
}

// PutBool stores a boolean value under id.
func (a AttrSet) PutBool(id AttrID, v bool) {
	if v {
		a[id] = []byte{1}
	} else {
		a[id] = []byte{0}
	}
}

// Bool reads a boolean value; ok is false when absent or mis-sized.
func (a AttrSet) Bool(id AttrID) (v, ok bool) {
	b, present := a[id]
	if !present || len(b) != 1 {
		return false, false
	}
	return b[0] != 0, true
}

// PutString stores a string value under id.
func (a AttrSet) PutString(id AttrID, s string) { a[id] = []byte(s) }

// String reads a string value; ok is false when absent.
func (a AttrSet) String(id AttrID) (s string, ok bool) {
	b, present := a[id]
	if !present {
		return "", false
	}
	return string(b), true
}

// PutInt64 stores a signed 64-bit value under id (big-endian two's
// complement). The cod SDK's codec uses this for every Go integer kind.
func (a AttrSet) PutInt64(id AttrID, v int64) {
	a[id] = binary.BigEndian.AppendUint64(make([]byte, 0, 8), uint64(v))
}

// Int64 reads a signed 64-bit value; ok is false when absent or mis-sized.
func (a AttrSet) Int64(id AttrID) (v int64, ok bool) {
	b, present := a[id]
	if !present || len(b) != 8 {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(b)), true
}

// PutFloat64s stores a []float64 under id, 8 bytes per element.
func (a AttrSet) PutFloat64s(id AttrID, vs []float64) {
	buf := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	a[id] = buf
}

// Float64s reads a []float64; ok is false when absent or mis-sized. An
// empty value decodes to a non-nil empty slice.
func (a AttrSet) Float64s(id AttrID) (vs []float64, ok bool) {
	b, present := a[id]
	if !present || len(b)%8 != 0 {
		return nil, false
	}
	vs = make([]float64, len(b)/8)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8*i:]))
	}
	return vs, true
}

// PutInt64s stores a []int64 under id, 8 bytes per element.
func (a AttrSet) PutInt64s(id AttrID, vs []int64) {
	buf := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	a[id] = buf
}

// Int64s reads a []int64; ok is false when absent or mis-sized.
func (a AttrSet) Int64s(id AttrID) (vs []int64, ok bool) {
	b, present := a[id]
	if !present || len(b)%8 != 0 {
		return nil, false
	}
	vs = make([]int64, len(b)/8)
	for i := range vs {
		vs[i] = int64(binary.BigEndian.Uint64(b[8*i:]))
	}
	return vs, true
}

// PutStrings stores a []string under id: a uvarint count, then each
// element uvarint-length-prefixed.
func (a AttrSet) PutStrings(id AttrID, vs []string) {
	buf := binary.AppendUvarint(nil, uint64(len(vs)))
	for _, s := range vs {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	a[id] = buf
}

// Strings reads a []string; ok is false when absent or malformed.
func (a AttrSet) Strings(id AttrID) (vs []string, ok bool) {
	b, present := a[id]
	if !present {
		return nil, false
	}
	count, sz := binary.Uvarint(b)
	if sz <= 0 || count > uint64(len(b)) {
		return nil, false
	}
	b = b[sz:]
	vs = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		n, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b[sz:])) < n {
			return nil, false
		}
		b = b[sz:]
		vs = append(vs, string(b[:n]))
		b = b[n:]
	}
	return vs, true
}

// PutBytes stores a raw byte string under id (copied).
func (a AttrSet) PutBytes(id AttrID, v []byte) {
	cp := make([]byte, len(v))
	copy(cp, v)
	a[id] = cp
}

// Bytes reads a raw byte string; ok is false when absent. The returned
// slice aliases the set's storage.
func (a AttrSet) Bytes(id AttrID) (v []byte, ok bool) {
	v, ok = a[id]
	return v, ok
}

// PutVec3 stores three float64 components under id.
func (a AttrSet) PutVec3(id AttrID, x, y, z float64) {
	buf := make([]byte, 0, 24)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(y))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(z))
	a[id] = buf
}

// Vec3 reads three float64 components; ok is false when absent or mis-sized.
func (a AttrSet) Vec3(id AttrID) (x, y, z float64, ok bool) {
	b, present := a[id]
	if !present || len(b) != 24 {
		return 0, 0, 0, false
	}
	x = math.Float64frombits(binary.BigEndian.Uint64(b[0:8]))
	y = math.Float64frombits(binary.BigEndian.Uint64(b[8:16]))
	z = math.Float64frombits(binary.BigEndian.Uint64(b[16:24]))
	return x, y, z, true
}
