package wire

import (
	"bytes"
	"fmt"
	"testing"
)

// TestPoolDecoderNoAlias pins the decoder-reuse contract at the wire
// level: a Clone taken from one decoded frame must survive the decoder's
// buffers being overwritten by later frames (DecodeInto reuses the body
// buffer and the destination frame's attr arena in place).
func TestPoolDecoderNoAlias(t *testing.T) {
	const frames = 32
	blobs := make([][]byte, frames)
	for i := range blobs {
		a := AttrSet{}
		a.PutInt64(1, int64(i))
		a.PutString(2, fmt.Sprintf("payload-%03d", i))
		f := Frame{Kind: KindUpdateAttrs, Node: "n", Class: "C", Seq: uint32(i), Attrs: a}
		b, err := f.Encode()
		if err != nil {
			t.Fatalf("Encode %d: %v", i, err)
		}
		blobs[i] = b
	}

	dec := NewDecoder()
	var f Frame
	clones := make([]AttrSet, frames)
	for i, b := range blobs {
		if err := dec.DecodeInto(b, &f); err != nil {
			t.Fatalf("DecodeInto %d: %v", i, err)
		}
		clones[i] = f.Attrs.Clone()
	}
	for i, c := range clones {
		n, ok := c.Int64(1)
		if !ok || n != int64(i) {
			t.Fatalf("clone %d: attr1 = %d,%v (aliased reused decode arena)", i, n, ok)
		}
		s, ok := c.String(2)
		if !ok || s != fmt.Sprintf("payload-%03d", i) {
			t.Fatalf("clone %d: attr2 = %q,%v (aliased reused decode arena)", i, s, ok)
		}
	}
}

// TestPoolGetPutCycle exercises the exported pool through repeated
// get/fill/put cycles and checks a recycled set encodes identically to a
// fresh one (no stale attrs, no arena bleed-through).
func TestPoolGetPutCycle(t *testing.T) {
	want := func() []byte {
		a := AttrSet{}
		a.PutFloat64(1, 2.5)
		f := Frame{Kind: KindUpdateAttrs, Node: "n", Attrs: a}
		b, _ := f.Encode()
		return b
	}()
	for i := 0; i < 8; i++ {
		a := GetAttrSet()
		a.PutInt64(7, int64(i)) // dirty it with an unrelated attr
		a.Reset()
		a.PutFloat64(1, 2.5)
		got, err := Frame{Kind: KindUpdateAttrs, Node: "n", Attrs: *a}.Encode()
		PutAttrSet(a)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cycle %d: recycled set encodes differently\n got %x\nwant %x", i, got, want)
		}
	}
}
