package wire

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// TestFrameRoundTripProperty: any frame built from generated values must
// survive Encode→Decode bit-exactly.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(kindRaw uint8, phase uint8, channel, seq uint32, timeBits uint64,
		node, lp, class, addr string, a1 float64, a2 uint32, a3 []byte) bool {
		kind := Kind(kindRaw%uint8(kindMax-1)) + 1 // valid kinds only
		tm := math.Float64frombits(timeBits)
		attrs := AttrSet{}
		attrs.PutFloat64(1, a1)
		attrs.PutUint32(2, a2)
		if a3 != nil {
			if len(a3) > 1024 {
				a3 = a3[:1024]
			}
			attrs.PutBytes(3, a3)
		}
		in := Frame{
			Kind:    kind,
			Phase:   phase,
			Channel: channel,
			Seq:     seq,
			Time:    tm,
			Node:    node,
			LP:      lp,
			Class:   class,
			Addr:    addr,
			Attrs:   attrs,
		}
		b, err := in.Encode()
		if err != nil {
			// Only oversized frames may fail; generated strings are small.
			return len(b) == 0 && err == ErrTooLarge
		}
		out, err := Decode(b)
		if err != nil {
			return false
		}
		// NaN time breaks == comparison; compare bits instead.
		if math.Float64bits(out.Time) != math.Float64bits(in.Time) {
			return false
		}
		out.Time, in.Time = 0, 0
		return reflect.DeepEqual(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestAttrSetRoundTripProperty: arbitrary attribute maps survive the
// encoding inside a frame.
func TestAttrSetRoundTripProperty(t *testing.T) {
	f := func(keys []uint16, blobs [][]byte) bool {
		attrs := AttrSet{}
		ref := map[AttrID][]byte{}
		for i, k := range keys {
			var v []byte
			if i < len(blobs) && blobs[i] != nil {
				v = blobs[i]
				if len(v) > 512 {
					v = v[:512]
				}
			} else {
				v = []byte{}
			}
			attrs.PutBytes(AttrID(k), v)
			ref[AttrID(k)] = v
		}
		in := Frame{Kind: KindUpdateAttrs, Attrs: attrs}
		b, err := in.Encode()
		if err != nil {
			return err == ErrTooLarge
		}
		out, err := Decode(b)
		if err != nil {
			return false
		}
		if out.Attrs.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := out.Attrs.Bytes(k)
			if !ok || string(got) != string(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
