// Package wire defines the binary message format spoken between
// Communication Backbones (CBs) on the COD cluster.
//
// The message kinds mirror the protocol of the paper (§2.3): a subscriber's
// CB broadcasts SUBSCRIPTION until it receives ACKNOWLEDGE, then sends
// CHANNEL CONNECTION to build the virtual channel, confirmed by a second
// ACKNOWLEDGE. After that, publishers push UPDATE ATTRIBUTE VALUE frames and
// subscribers receive them as REFLECT ATTRIBUTE VALUE. Additional kinds carry
// liveness (HEARTBEAT, which also ferries flow-control credit grants for
// reliable channels as control attributes), conservative time
// synchronization (NULL, after Chandy–Misra), the display frame barrier
// (FRAME READY / FRAME SWAP), and orderly departure (BYE).
//
// All multi-byte integers are big-endian; strings and byte blobs are
// uvarint-length-prefixed. A frame on a stream transport is preceded by a
// uint32 payload length.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Protocol constants.
const (
	// Magic opens every frame so misdirected traffic fails fast.
	Magic uint16 = 0xCB15
	// Version is the protocol version byte.
	Version byte = 1
	// MaxFrameSize bounds a single frame (header + payload) to keep a
	// malformed or hostile peer from forcing huge allocations.
	MaxFrameSize = 1 << 20
)

// Kind identifies the message type of a frame.
type Kind uint8

// Frame kinds. Values start at 1 so the zero Kind is invalid.
const (
	KindSubscription Kind = iota + 1 // subscriber CB broadcast (§2.3)
	KindAcknowledge                  // publisher CB acknowledgement
	KindChannelConn                  // subscriber → publisher channel build
	KindUpdateAttrs                  // publisher LP → CB data push
	KindReflectAttrs                 // CB → subscriber LP data delivery
	KindHeartbeat                    // node liveness beacon
	KindNull                         // Chandy–Misra null message (time only)
	KindFrameReady                   // display node → sync server
	KindFrameSwap                    // sync server → display nodes
	KindBye                          // orderly leave announcement

	kindMax // sentinel, keep last
)

// NOTE: credit grants deliberately do NOT get their own frame kind. A
// legacy decoder rejects unknown kinds and its read loop treats that as
// a dead link, so introducing a new kind would let one reliable
// subscriber churn every channel it shares with a pre-policy peer.
// Credits ride HEARTBEAT frames as AttrCreditCounts instead — a frame
// every build accepts, attrs ignored by old ones.

var kindNames = map[Kind]string{
	KindSubscription: "SUBSCRIPTION",
	KindAcknowledge:  "ACKNOWLEDGE",
	KindChannelConn:  "CHANNEL_CONNECTION",
	KindUpdateAttrs:  "UPDATE_ATTRIBUTE_VALUE",
	KindReflectAttrs: "REFLECT_ATTRIBUTE_VALUE",
	KindHeartbeat:    "HEARTBEAT",
	KindNull:         "NULL",
	KindFrameReady:   "FRAME_READY",
	KindFrameSwap:    "FRAME_SWAP",
	KindBye:          "BYE",
}

// String returns the HLA-style service name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a defined message kind.
func (k Kind) Valid() bool { return k >= KindSubscription && k < kindMax }

// Ack phases carried in Frame.Phase for KindAcknowledge.
const (
	// AckSubscription acknowledges a SUBSCRIPTION broadcast: "I publish
	// this class, connect to me".
	AckSubscription uint8 = 1
	// AckChannelUp confirms a CHANNEL CONNECTION: the virtual channel is
	// established and data will flow.
	AckChannelUp uint8 = 2
)

// Policy selects a virtual channel's delivery contract. The subscriber
// declares it in the CHANNEL CONNECTION frame (AttrDeliveryPolicy); a
// handshake carrying no policy attribute — every pre-policy peer — decodes
// as PolicyDropOldest, so old recordings and mixed-version federations
// keep today's semantics.
type Policy uint8

// Delivery policies.
const (
	// PolicyDropOldest is the legacy contract: a full subscriber mailbox
	// silently drops its oldest reflection.
	PolicyDropOldest Policy = iota
	// PolicyLatestValue conflates: a full mailbox coalesces to the newest
	// reflection per channel — the right semantics for periodic state
	// where the consumer only ever wants the latest sample.
	PolicyLatestValue
	// PolicyReliable is credit-windowed: the publisher may have at most
	// the channel's window of unconsumed updates in flight; past that the
	// send blocks or fails instead of anything being dropped.
	PolicyReliable

	policyMax // sentinel, keep last
)

var policyNames = map[Policy]string{
	PolicyDropOldest:  "drop-oldest",
	PolicyLatestValue: "latest-value",
	PolicyReliable:    "reliable",
}

// String returns the lowercase policy name.
func (p Policy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// Valid reports whether p is a defined delivery policy.
func (p Policy) Valid() bool { return p < policyMax }

// Protocol attribute IDs carried on control frames. UPDATE/REFLECT frames
// use the object model's own attribute IDs; these apply only to CHANNEL
// CONNECTION and HEARTBEAT frames, whose attribute sets were always empty
// before — legacy peers decode and ignore them.
const (
	// AttrDeliveryPolicy (uint32) on CHANNEL CONNECTION: the subscriber's
	// requested Policy. Absent means PolicyDropOldest.
	AttrDeliveryPolicy AttrID = 1
	// AttrCreditWindow (uint32) on CHANNEL CONNECTION: the send window of
	// a PolicyReliable channel.
	AttrCreditWindow AttrID = 2
	// AttrCreditCounts ([]int64, [channel, consumed] pairs) on HEARTBEAT:
	// cumulative consumption counts for reliable channels riding the
	// link. Immediate grants are heartbeats carrying just the granted
	// channel; the periodic beacon repeats every channel's count, so a
	// lost grant never wedges a publisher for longer than one beat.
	AttrCreditCounts AttrID = 3
)

// Frame is the unit of exchange between CBs. A single struct covers every
// kind; unused fields stay at their zero values and cost one byte each on
// the wire.
type Frame struct {
	Kind    Kind
	Phase   uint8   // ACK phase (AckSubscription / AckChannelUp)
	Channel uint32  // virtual-channel ID; 0 = not channel-scoped
	Seq     uint32  // per-channel sequence number
	Time    float64 // simulation time for UPDATE/NULL; frame index for barrier frames
	Node    string  // origin node name
	LP      string  // origin logical-process name
	Class   string  // object-class name
	Addr    string  // dialable address (CHANNEL CONNECTION, ACKNOWLEDGE)
	Attrs   AttrSet // attribute values (UPDATE/REFLECT)
}

// Errors returned by the codec.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadKind    = errors.New("wire: invalid message kind")
	ErrTooLarge   = errors.New("wire: frame exceeds MaxFrameSize")
	ErrTruncated  = errors.New("wire: truncated frame")
)

// Encode serializes the frame to a fresh byte slice.
func (f Frame) Encode() ([]byte, error) {
	return f.AppendEncode(make([]byte, 0, 64+f.Attrs.encodedSize()))
}

// AppendEncode serializes the frame onto buf and returns the extended
// slice. The frame itself (not buf's prior contents) is held to
// MaxFrameSize. This is the zero-alloc path: callers hand in a pooled or
// stack buffer and reuse it across frames.
func (f Frame) AppendEncode(buf []byte) ([]byte, error) {
	if !f.Kind.Valid() {
		return buf, ErrBadKind
	}
	start := len(buf)
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = byte(f.Kind)
	buf = append(buf, hdr[:]...)
	buf = append(buf, f.Phase)
	buf = binary.BigEndian.AppendUint32(buf, f.Channel)
	buf = binary.BigEndian.AppendUint32(buf, f.Seq)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(f.Time))
	buf = appendString(buf, f.Node)
	buf = appendString(buf, f.LP)
	buf = appendString(buf, f.Class)
	buf = appendString(buf, f.Addr)
	buf = f.Attrs.append(buf)
	if len(buf)-start > MaxFrameSize {
		return buf, ErrTooLarge
	}
	return buf, nil
}

// Decode parses a frame from b, which must contain exactly one encoded frame.
func Decode(b []byte) (Frame, error) {
	var f Frame
	err := (*Decoder)(nil).DecodeInto(b, &f)
	return f, err
}

// Decoder decodes frames with reusable state: the stream read buffer, the
// target frame's AttrSet arena, and a bounded string-intern table that
// collapses the Node/LP/Class/Addr strings repeated on every frame of a
// link into single allocations. One Decoder serves one goroutine (each
// cb read loop owns its own); the decoded Frame's strings are immutable
// and safe to retain, while its Attrs alias the Decoder's buffers and
// must be Cloned before the next DecodeInto/DecodeFrom call — the cb layer
// does that at its copy-at-boundary point.
type Decoder struct {
	body   []byte
	intern map[string]string
}

// Intern-table bounds: names longer than maxInternLen are not worth
// caching, and a hostile peer cycling names can pin at most
// maxInternEntries of them.
const (
	maxInternLen     = 64
	maxInternEntries = 4096
)

// NewDecoder returns a Decoder ready for ReadFrom/DecodeInto.
func NewDecoder() *Decoder {
	return &Decoder{intern: make(map[string]string)}
}

// str materializes b as a string, deduplicating via the intern table.
// The m[string(b)] lookup compiles to a no-allocation map probe.
func (d *Decoder) str(b []byte) string {
	if d == nil || d.intern == nil || len(b) == 0 || len(b) > maxInternLen {
		return string(b)
	}
	if s, ok := d.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(d.intern) < maxInternEntries {
		d.intern[s] = s
	}
	return s
}

// DecodeInto parses one encoded frame from b into f, reusing f's AttrSet
// buffers. b must contain exactly one frame. A nil receiver is valid
// (no interning).
func (d *Decoder) DecodeInto(b []byte, f *Frame) error {
	if len(b) > MaxFrameSize {
		return ErrTooLarge
	}
	if len(b) < 21 { // header(4)+phase(1)+channel(4)+seq(4)+time(8)
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(b[0:2]) != Magic {
		return ErrBadMagic
	}
	if b[2] != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, b[2])
	}
	f.Kind = Kind(b[3])
	if !f.Kind.Valid() {
		return fmt.Errorf("%w: %d", ErrBadKind, b[3])
	}
	f.Phase = b[4]
	f.Channel = binary.BigEndian.Uint32(b[5:9])
	f.Seq = binary.BigEndian.Uint32(b[9:13])
	f.Time = math.Float64frombits(binary.BigEndian.Uint64(b[13:21]))
	rest := b[21:]

	var err error
	if f.Node, rest, err = d.readString(rest); err != nil {
		return fmt.Errorf("wire: node: %w", err)
	}
	if f.LP, rest, err = d.readString(rest); err != nil {
		return fmt.Errorf("wire: lp: %w", err)
	}
	if f.Class, rest, err = d.readString(rest); err != nil {
		return fmt.Errorf("wire: class: %w", err)
	}
	if f.Addr, rest, err = d.readString(rest); err != nil {
		return fmt.Errorf("wire: addr: %w", err)
	}
	if rest, err = readAttrSetInto(&f.Attrs, rest); err != nil {
		return fmt.Errorf("wire: attrs: %w", err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(rest))
	}
	return nil
}

// DecodeFrom reads one length-prefixed frame from r (stream framing)
// into f, reusing the Decoder's body buffer and f's AttrSet storage.
func (d *Decoder) DecodeFrom(r io.Reader, f *Frame) error {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		// Propagate io.EOF untouched so callers can detect orderly close.
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("wire: read length: %w", err)
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if n > MaxFrameSize {
		return ErrTooLarge
	}
	if uint32(cap(d.body)) < n {
		d.body = make([]byte, n)
	}
	body := d.body[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("wire: read body: %w", err)
	}
	return d.DecodeInto(body, f)
}

// WriteTo writes the frame to w with a uint32 length prefix, the stream
// (TCP) framing. It returns the total bytes written.
func (f Frame) WriteTo(w io.Writer) (int64, error) {
	body, err := f.Encode()
	if err != nil {
		return 0, err
	}
	var pfx [4]byte
	binary.BigEndian.PutUint32(pfx[:], uint32(len(body)))
	n1, err := w.Write(pfx[:])
	if err != nil {
		return int64(n1), fmt.Errorf("wire: write length: %w", err)
	}
	n2, err := w.Write(body)
	if err != nil {
		return int64(n1 + n2), fmt.Errorf("wire: write body: %w", err)
	}
	return int64(n1 + n2), nil
}

// ReadFrame reads one length-prefixed frame from r (stream framing).
func ReadFrame(r io.Reader) (Frame, error) {
	var f Frame
	err := (&Decoder{}).DecodeFrom(r, &f)
	return f, err
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func (d *Decoder) readString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return "", nil, ErrTruncated
	}
	b = b[sz:]
	if uint64(len(b)) < n {
		return "", nil, ErrTruncated
	}
	return d.str(b[:n]), b[n:], nil
}
