package wire

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// The golden frames below were captured byte-for-byte from the historical
// map-backed AttrSet encoder (map[AttrID][]byte + sort.Slice per encode)
// immediately before the arena rewrite. They pin the wire format: a mixed
// cluster runs old and new builds side by side, so the arena encoder must
// produce identical bytes — including the ascending-attribute-ID order and
// last-write-wins overwrite semantics — and decode them identically.

type goldenCase struct {
	name  string
	build func() Frame
	hex   string
}

// craneStateFrame reproduces fom.CraneState.Encode()'s exact Put sequence
// (ascending IDs 1..19) without importing fom, which wire cannot see.
func craneStateFrame() Frame {
	a := NewAttrSet(17)
	a.PutVec3(1, 100.5, 0.25, -3.75)
	a.PutFloat64(2, 1.25)
	a.PutFloat64(3, -0.5)
	a.PutFloat64(4, 0.125)
	a.PutFloat64(5, 2.5)
	a.PutFloat64(6, 0.75)
	a.PutFloat64(7, 0.9)
	a.PutFloat64(8, 14)
	a.PutFloat64(9, 6.5)
	a.PutVec3(10, 1, 2, 3)
	a.PutVec3(11, -0.5, 0.25, 0)
	a.PutFloat64(12, 1500)
	a.PutBool(13, true)
	a.PutFloat64(14, 1800)
	a.PutBool(15, true)
	a.PutFloat64(16, 0.875)
	a.PutVec3(17, 4, 5, 6)
	a.PutInt64(18, 2)
	a.PutInt64(19, 1)
	return Frame{
		Kind:    KindUpdateAttrs,
		Channel: 7,
		Seq:     42,
		Time:    16.5,
		Node:    "pub-pc",
		LP:      "dynamics",
		Class:   "CraneState",
		Attrs:   a,
	}
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name:  "cranestate",
			build: craneStateFrame,
			hex:   "cb15010400000000070000002a4030800000000000067075622d70630864796e616d6963730a4372616e655374617465001300011840592000000000003fd0000000000000c00e0000000000000002083ff4000000000000000308bfe00000000000000004083fc000000000000000050840040000000000000006083fe80000000000000007083feccccccccccccd000808402c000000000000000908401a000000000000000a183ff000000000000040000000000000004008000000000000000b18bfe00000000000003fd00000000000000000000000000000000c084097700000000000000d0101000e08409c200000000000000f01010010083fec00000000000000111840100000000000004014000000000000401800000000000000120800000000000000020013080000000000000001",
		},
		{
			name: "channelconn",
			build: func() Frame {
				a := AttrSet{}
				a.PutUint32(AttrDeliveryPolicy, uint32(PolicyReliable))
				a.PutUint32(AttrCreditWindow, 256)
				return Frame{
					Kind:    KindChannelConn,
					Channel: 3,
					Node:    "sub-pc",
					LP:      "s",
					Class:   "State",
					Addr:    "mem://sub-pc",
					Attrs:   a,
				}
			},
			hex: "cb1501030000000003000000000000000000000000067375622d706301730553746174650c6d656d3a2f2f7375622d7063020001040000000200020400000100",
		},
		{
			name: "heartbeat",
			build: func() Frame {
				a := AttrSet{}
				a.PutInt64s(AttrCreditCounts, []int64{9, 1024, 11, 77})
				return Frame{Kind: KindHeartbeat, Node: "sub-pc", Attrs: a}
			},
			hex: "cb1501060000000000000000000000000000000000067375622d70630000000100032000000000000000090000000000000400000000000000000b000000000000004d",
		},
		{
			// Out-of-ID-order insertion: the compat sort shim must still
			// emit ascending IDs, matching the old sorted-map encoder.
			name: "mixed",
			build: func() Frame {
				a := AttrSet{}
				a.PutString(5, "hello")
				a.PutBool(2, true)
				a.PutFloat64s(9, []float64{1.5, -2.5})
				a.PutInt64(1, -7)
				a.PutStrings(4, []string{"a", "bc", ""})
				a.PutBytes(7, []byte{0xde, 0xad})
				a.PutVec3(3, 1, 2, 3)
				a.PutUint32(6, 123456)
				a.PutInt64s(8, []int64{-1, 0, 1})
				return Frame{Kind: KindUpdateAttrs, Time: -1, Node: "n", Attrs: a}
			},
			hex: "cb150104000000000000000000bff0000000000000016e00000009000108fffffffffffffff9000201010003183ff0000000000000400000000000000040080000000000000004070301610262630000050568656c6c6f0006040001e240000702dead000818ffffffffffffffff000000000000000000000000000000010009103ff8000000000000c004000000000000",
		},
		{
			name: "empty",
			build: func() Frame {
				return Frame{Kind: KindBye, Node: "bye-node"}
			},
			hex: "cb15010a0000000000000000000000000000000000086279652d6e6f646500000000",
		},
		{
			// Repeated Put on one ID replaces the value (map overwrite
			// semantics): only the final value reaches the wire.
			name: "overwrite",
			build: func() Frame {
				a := AttrSet{}
				a.PutFloat64(4, 1.0)
				a.PutInt64(2, 5)
				a.PutFloat64(4, 2.25)
				return Frame{Kind: KindUpdateAttrs, Node: "n", Attrs: a}
			},
			hex: "cb1501040000000000000000000000000000000000016e0000000200020800000000000000050004084002000000000000",
		},
	}
}

func TestGoldenFrameBytes(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			want, err := hex.DecodeString(tc.hex)
			if err != nil {
				t.Fatalf("bad golden hex: %v", err)
			}
			got, err := tc.build().Encode()
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("encoded bytes diverge from the pre-rewrite format\n got %x\nwant %x", got, want)
			}
		})
	}
}

// TestGoldenFrameDecode proves the new decoder reads old-format bytes:
// each golden blob decodes, and re-encoding the decoded frame reproduces
// the blob (decode order is ascending-ID, so no sort shim is needed).
func TestGoldenFrameDecode(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			raw, _ := hex.DecodeString(tc.hex)
			f, err := Decode(raw)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			back, err := f.Encode()
			if err != nil {
				t.Fatalf("re-Encode: %v", err)
			}
			if !bytes.Equal(back, raw) {
				t.Errorf("decode/encode round trip diverges\n got %x\nwant %x", back, raw)
			}
			want := tc.build()
			if f.Kind != want.Kind || f.Node != want.Node || f.Attrs.Len() != want.Attrs.Len() {
				t.Errorf("decoded frame mismatch: got kind=%v node=%q attrs=%d", f.Kind, f.Node, f.Attrs.Len())
			}
		})
	}
}
