package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleFrame() Frame {
	attrs := AttrSet{}
	attrs.PutFloat64(1, 3.14159)
	attrs.PutUint32(2, 42)
	attrs.PutString(3, "cargo")
	attrs.PutBool(4, true)
	attrs.PutVec3(5, 1, -2, 3.5)
	return Frame{
		Kind:    KindUpdateAttrs,
		Phase:   0,
		Channel: 7,
		Seq:     1001,
		Time:    12.5,
		Node:    "display-1",
		LP:      "visual",
		Class:   "CraneState",
		Addr:    "",
		Attrs:   attrs,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFrame()
	b, err := f.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, f)
	}
}

func TestEncodeDecodeAllKinds(t *testing.T) {
	for k := KindSubscription; k < kindMax; k++ {
		f := Frame{Kind: k, Node: "n", Class: "c", Phase: AckChannelUp}
		b, err := f.Encode()
		if err != nil {
			t.Fatalf("Encode(%v): %v", k, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%v): %v", k, err)
		}
		if got.Kind != k {
			t.Errorf("kind %v decoded as %v", k, got.Kind)
		}
	}
}

func TestEncodeInvalidKind(t *testing.T) {
	f := Frame{Kind: 0}
	if _, err := f.Encode(); !errors.Is(err, ErrBadKind) {
		t.Errorf("Encode zero kind err = %v, want ErrBadKind", err)
	}
	f = Frame{Kind: kindMax}
	if _, err := f.Encode(); !errors.Is(err, ErrBadKind) {
		t.Errorf("Encode kindMax err = %v, want ErrBadKind", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, err := sampleFrame().Encode()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[0] ^= 0xFF
		if _, err := Decode(b); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[2] = 99
		if _, err := Decode(b); !errors.Is(err, ErrBadVersion) {
			t.Errorf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("bad kind", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[3] = 200
		if _, err := Decode(b); !errors.Is(err, ErrBadKind) {
			t.Errorf("err = %v, want ErrBadKind", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated everywhere", func(t *testing.T) {
		// Every prefix of a valid frame must fail, never panic.
		for i := 0; i < len(valid); i++ {
			if _, err := Decode(valid[:i]); err == nil {
				t.Fatalf("Decode of %d-byte prefix succeeded", i)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		b := append(append([]byte(nil), valid...), 0xAA)
		if _, err := Decode(b); err == nil {
			t.Error("Decode with trailing byte succeeded")
		}
	})
}

func TestDecodeFuzzResilience(t *testing.T) {
	// Random mutations of a valid frame must never panic.
	valid, err := sampleFrame().Encode()
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos int, val byte) bool {
		b := append([]byte(nil), valid...)
		b[abs(pos)%len(b)] = val
		_, _ = Decode(b) // outcome irrelevant; must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

func TestStreamFraming(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Kind: KindSubscription, Node: "a", LP: "lp1", Class: "X"},
		sampleFrame(),
		{Kind: KindBye, Node: "a"},
	}
	for i := range frames {
		if _, err := frames[i].WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo[%d]: %v", i, err)
		}
	}
	for i := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame[%d]: %v", i, err)
		}
		if !reflect.DeepEqual(got, frames[i]) {
			t.Errorf("frame %d mismatch: got %+v want %+v", i, got, frames[i])
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("ReadFrame on empty stream = %v, want io.EOF", err)
	}
}

func TestReadFrameOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB claimed length
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestKindString(t *testing.T) {
	if got := KindUpdateAttrs.String(); got != "UPDATE_ATTRIBUTE_VALUE" {
		t.Errorf("String = %q", got)
	}
	if got := Kind(250).String(); got != "Kind(250)" {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestAttrSetTypes(t *testing.T) {
	a := AttrSet{}

	a.PutFloat64(1, -1.5)
	if v, ok := a.Float64(1); !ok || v != -1.5 {
		t.Errorf("Float64 = %v,%v", v, ok)
	}
	a.PutUint32(2, 7)
	if v, ok := a.Uint32(2); !ok || v != 7 {
		t.Errorf("Uint32 = %v,%v", v, ok)
	}
	a.PutBool(3, true)
	if v, ok := a.Bool(3); !ok || !v {
		t.Errorf("Bool = %v,%v", v, ok)
	}
	a.PutBool(4, false)
	if v, ok := a.Bool(4); !ok || v {
		t.Errorf("Bool false = %v,%v", v, ok)
	}
	a.PutString(5, "hello")
	if v, ok := a.String(5); !ok || v != "hello" {
		t.Errorf("String = %q,%v", v, ok)
	}
	a.PutVec3(6, 1, 2, 3)
	if x, y, z, ok := a.Vec3(6); !ok || x != 1 || y != 2 || z != 3 {
		t.Errorf("Vec3 = %v,%v,%v,%v", x, y, z, ok)
	}

	// Missing and mis-sized reads.
	if _, ok := a.Float64(99); ok {
		t.Error("Float64 on missing id ok=true")
	}
	a.PutBytes(7, []byte{1, 2})
	if _, ok := a.Float64(7); ok {
		t.Error("Float64 on 2-byte value ok=true")
	}
	if _, _, _, ok := a.Vec3(7); ok {
		t.Error("Vec3 on 2-byte value ok=true")
	}

	// NaN round-trips bit-exactly through encode/decode.
	a.PutFloat64(8, math.NaN())
	f := Frame{Kind: KindUpdateAttrs, Attrs: a}
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.Attrs.Float64(8); !ok || !math.IsNaN(v) {
		t.Errorf("NaN round trip = %v,%v", v, ok)
	}
}

func TestAttrSetClone(t *testing.T) {
	a := AttrSet{}
	a.PutString(1, "original")
	c := a.Clone()
	cb, _ := c.Bytes(1)
	cb[0] = 'X'
	if v, _ := a.String(1); v != "original" {
		t.Errorf("Clone aliases storage: %q", v)
	}
	if got := (AttrSet{}).Clone(); got.Len() != 0 {
		t.Errorf("Clone(empty).Len() = %d, want 0", got.Len())
	}
}

func TestAttrSetDeterministicEncoding(t *testing.T) {
	// Build order and internal state must not leak into the encoding.
	a := AttrSet{}
	for i := AttrID(1); i <= 20; i++ {
		a.PutUint32(i, uint32(i))
	}
	f := Frame{Kind: KindUpdateAttrs, Attrs: a}
	first, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		b, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, b) {
			t.Fatal("encoding not deterministic")
		}
	}
}

func TestEmptyAttrSetRoundTrip(t *testing.T) {
	f := Frame{Kind: KindHeartbeat, Node: "n1"}
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs.Len() != 0 {
		t.Errorf("empty attrs decoded with %d entries, want 0", got.Attrs.Len())
	}
}

func BenchmarkFrameEncode(b *testing.B) {
	f := sampleFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	f := sampleFrame()
	buf, err := f.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
