package transport

import "net"

// udpSender is a bare UDP socket used by tests to inject raw packets.
type udpSender struct {
	conn *net.UDPConn
}

func newUDPSender() (*udpSender, error) {
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	return &udpSender{conn: c}, nil
}

func (s *udpSender) sendTo(host string, port int, b []byte) error {
	_, err := s.conn.WriteToUDP(b, &net.UDPAddr{IP: net.ParseIP(host), Port: port})
	return err
}

func (s *udpSender) close() error { return s.conn.Close() }
