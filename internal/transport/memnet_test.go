package transport

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

func attach(t *testing.T, l LAN, name string) Interface {
	t.Helper()
	ifc, err := l.Attach(name)
	if err != nil {
		t.Fatalf("Attach(%q): %v", name, err)
	}
	t.Cleanup(func() { _ = ifc.Close() })
	return ifc
}

func TestMemLANAttachDuplicate(t *testing.T) {
	l := NewMemLAN()
	attach(t, l, "a")
	if _, err := l.Attach("a"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate attach err = %v, want ErrDuplicate", err)
	}
}

func TestMemLANStream(t *testing.T) {
	l := NewMemLAN()
	a := attach(t, l, "a")
	b := attach(t, l, "b")

	done := make(chan error, 1)
	go func() {
		conn, err := b.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(conn, buf); err != nil {
			done <- err
			return
		}
		if string(buf) != "hello" {
			done <- errors.New("payload mismatch: " + string(buf))
			return
		}
		_, err = conn.Write([]byte("world"))
		done <- err
	}()

	conn, err := a.Dial(b.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if conn.LocalAddr() != "mem://a" || conn.RemoteAddr() != "mem://b" {
		t.Errorf("addrs = %q -> %q", conn.LocalAddr(), conn.RemoteAddr())
	}
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(buf) != "world" {
		t.Errorf("reply = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatalf("server side: %v", err)
	}
}

func TestMemLANStreamEOFOnClose(t *testing.T) {
	l := NewMemLAN()
	a := attach(t, l, "a")
	b := attach(t, l, "b")

	acceptCh := make(chan Conn, 1)
	go func() {
		c, err := b.Accept()
		if err == nil {
			acceptCh <- c
		}
	}()
	conn, err := a.Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-acceptCh

	if _, err := conn.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()

	// Server drains pending data, then sees EOF.
	buf := make([]byte, 3)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := server.Read(buf); !errors.Is(err, io.EOF) {
		t.Errorf("read after close = %v, want io.EOF", err)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
		t.Errorf("write after close = %v, want ErrClosedPipe", err)
	}
}

func TestMemLANDialUnknown(t *testing.T) {
	l := NewMemLAN()
	a := attach(t, l, "a")
	if _, err := a.Dial("mem://ghost"); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("err = %v, want ErrUnknownAddr", err)
	}
	if _, err := a.Dial("bogus-scheme"); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("err = %v, want ErrUnknownAddr", err)
	}
}

func TestMemLANBroadcast(t *testing.T) {
	l := NewMemLAN()
	a := attach(t, l, "a")
	b := attach(t, l, "b")
	c := attach(t, l, "c")

	if err := a.Broadcast([]byte("ping")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}

	for _, ifc := range []Interface{b, c} {
		select {
		case dg := <-ifc.Recv():
			if dg.From != "a" || string(dg.Payload) != "ping" {
				t.Errorf("%s got %+v", ifc.Node(), dg)
			}
		case <-time.After(time.Second):
			t.Fatalf("%s: no datagram", ifc.Node())
		}
	}
	// Sender must not hear itself.
	select {
	case dg := <-a.Recv():
		t.Errorf("sender received own broadcast: %+v", dg)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestMemLANBroadcastPayloadIsolated(t *testing.T) {
	l := NewMemLAN()
	a := attach(t, l, "a")
	b := attach(t, l, "b")

	payload := []byte("mutable")
	if err := a.Broadcast(payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X' // sender reuses its buffer
	dg := <-b.Recv()
	if string(dg.Payload) != "mutable" {
		t.Errorf("receiver saw sender mutation: %q", dg.Payload)
	}
}

func TestMemLANBroadcastLoss(t *testing.T) {
	l := NewMemLAN(WithLoss(1.0), WithSeed(42))
	a := attach(t, l, "a")
	b := attach(t, l, "b")

	if err := a.Broadcast([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	select {
	case dg := <-b.Recv():
		t.Errorf("datagram survived 100%% loss: %+v", dg)
	case <-time.After(20 * time.Millisecond):
	}
	if l.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", l.Dropped())
	}
}

func TestMemLANBroadcastTooLarge(t *testing.T) {
	l := NewMemLAN()
	a := attach(t, l, "a")
	if err := a.Broadcast(make([]byte, MaxDatagram+1)); !errors.Is(err, ErrPayloadLarge) {
		t.Errorf("err = %v, want ErrPayloadLarge", err)
	}
}

func TestMemLANLatency(t *testing.T) {
	const lat = 30 * time.Millisecond
	l := NewMemLAN(WithLatency(lat))
	a := attach(t, l, "a")
	b := attach(t, l, "b")

	start := time.Now()
	if err := a.Broadcast([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		if elapsed := time.Since(start); elapsed < lat {
			t.Errorf("datagram arrived after %v, want >= %v", elapsed, lat)
		}
	case <-time.After(time.Second):
		t.Fatal("no datagram")
	}

	// Stream latency too.
	accepted := make(chan Conn, 1)
	go func() {
		c, err := b.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := a.Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	server := <-accepted
	defer server.Close()

	start = time.Now()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < lat {
		t.Errorf("stream byte arrived after %v, want >= %v", elapsed, lat)
	}
}

func TestMemLANJitterPreservesOrder(t *testing.T) {
	l := NewMemLAN(WithLatency(time.Millisecond), WithJitter(5*time.Millisecond), WithSeed(7))
	a := attach(t, l, "a")
	b := attach(t, l, "b")

	accepted := make(chan Conn, 1)
	go func() {
		c, err := b.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := a.Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	server := <-accepted
	defer server.Close()

	var want []byte
	for i := 0; i < 32; i++ {
		want = append(want, byte(i))
		if _, err := conn.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, len(want))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d out of order: got %d", i, got[i])
		}
	}
}

func TestMemLANClose(t *testing.T) {
	l := NewMemLAN()
	a := attach(t, l, "a")
	b := attach(t, l, "b")

	// Accept unblocks with ErrClosed.
	acceptErr := make(chan error, 1)
	go func() {
		_, err := b.Accept()
		acceptErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-acceptErr:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Accept after close = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock")
	}

	// Recv channel closes.
	if _, open := <-b.Recv(); open {
		t.Error("Recv channel still open after Close")
	}
	// Dialing the closed node fails.
	if _, err := a.Dial("mem://b"); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("Dial closed node = %v, want ErrUnknownAddr", err)
	}
	// Broadcasting from the closed node fails.
	if err := b.Broadcast([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Broadcast after close = %v, want ErrClosed", err)
	}
	// Double close is fine.
	if err := b.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	// The name can be reused after close (node replacement).
	if _, err := l.Attach("b"); err != nil {
		t.Errorf("re-attach after close: %v", err)
	}
}

func TestMemLANConcurrentBroadcast(t *testing.T) {
	l := NewMemLAN()
	const nodes = 8
	ifcs := make([]Interface, nodes)
	for i := range ifcs {
		ifcs[i] = attach(t, l, string(rune('a'+i)))
	}
	var wg sync.WaitGroup
	for _, ifc := range ifcs {
		wg.Add(1)
		go func(ifc Interface) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				_ = ifc.Broadcast([]byte{byte(k)})
			}
		}(ifc)
	}
	// Concurrently drain.
	for _, ifc := range ifcs {
		wg.Add(1)
		go func(ifc Interface) {
			defer wg.Done()
			deadline := time.After(2 * time.Second)
			for n := 0; n < 50*(nodes-1); n++ {
				select {
				case <-ifc.Recv():
				case <-deadline:
					return // drops are legal; just stop draining
				}
			}
		}(ifc)
	}
	wg.Wait()
	if got := l.Delivered() + l.Dropped(); got != nodes*50*(nodes-1) {
		t.Errorf("delivered+dropped = %d, want %d", got, nodes*50*(nodes-1))
	}
}

func TestMemLANBandwidth(t *testing.T) {
	// 10 KiB at 100 KiB/s ≈ 100 ms serialization delay.
	l := NewMemLAN(WithBandwidth(100 * 1024))
	a := attach(t, l, "a")
	b := attach(t, l, "b")

	accepted := make(chan Conn, 1)
	go func() {
		c, err := b.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := a.Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	server := <-accepted
	defer server.Close()

	payload := make([]byte, 10*1024)
	start := time.Now()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("10KiB over 100KiB/s link took %v, want >= ~100ms", elapsed)
	}
}
