package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
)

// UDPLAN is a LAN backed by real sockets on one host: broadcast datagrams
// are UDP packets fanned out to every port of the segment's port range, and
// streams are TCP connections. One UDP port stands in for one "computer" of
// the paper's rack.
type UDPLAN struct {
	host     string
	basePort int
	size     int

	mu     sync.Mutex
	inUse  map[int]string // port → node
	closed bool
}

// NewUDPLAN creates a segment of `size` computer slots with UDP ports
// [basePort, basePort+size) on host (normally "127.0.0.1").
func NewUDPLAN(host string, basePort, size int) (*UDPLAN, error) {
	if size <= 0 || basePort <= 0 || basePort+size > 65536 {
		return nil, fmt.Errorf("transport: invalid segment [%d,%d)", basePort, basePort+size)
	}
	return &UDPLAN{
		host:     host,
		basePort: basePort,
		size:     size,
		inUse:    make(map[int]string, size),
	}, nil
}

// FreeUDPSegment probes for a basePort whose whole [base, base+size) UDP
// port range is currently free on host, for tests and tools that must
// place a segment without a coordinated port plan. The kernel picks an
// anchor port, then every port of the candidate range is bound to verify
// it. The ports are released again before returning, so a racing process
// can still steal one — callers seeing a busy slot at Attach should
// simply probe again.
func FreeUDPSegment(host string, size int) (int, error) {
	if size <= 0 || size > 1024 {
		return 0, fmt.Errorf("transport: invalid segment size %d", size)
	}
	ip := net.ParseIP(host)
	for attempt := 0; attempt < 64; attempt++ {
		anchor, err := net.ListenUDP("udp", &net.UDPAddr{IP: ip})
		if err != nil {
			return 0, fmt.Errorf("transport: probe: %w", err)
		}
		base := anchor.LocalAddr().(*net.UDPAddr).Port
		_ = anchor.Close()
		if base+size > 65536 {
			continue
		}
		conns := make([]*net.UDPConn, 0, size)
		free := true
		for p := base; p < base+size; p++ {
			c, err := net.ListenUDP("udp", &net.UDPAddr{IP: ip, Port: p})
			if err != nil {
				free = false
				break
			}
			conns = append(conns, c)
		}
		for _, c := range conns {
			_ = c.Close()
		}
		if free {
			return base, nil
		}
	}
	return 0, fmt.Errorf("transport: no free %d-port segment found: %w", size, ErrSegmentFull)
}

var _ LAN = (*UDPLAN)(nil)

// Close marks the segment closed: subsequent Attach calls return ErrClosed.
// Interfaces already attached keep working until they are closed
// individually — closing the segment models unplugging the switch from
// future computers, not powering the rack down.
func (l *UDPLAN) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	return nil
}

// Attach implements LAN: binds the next free UDP port of the segment plus
// an ephemeral TCP listener.
func (l *UDPLAN) Attach(node string) (Interface, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	for _, used := range l.inUse {
		if used == node {
			return nil, fmt.Errorf("%w: %q", ErrDuplicate, node)
		}
	}

	var (
		udp  *net.UDPConn
		port int
	)
	for p := l.basePort; p < l.basePort+l.size; p++ {
		if _, taken := l.inUse[p]; taken {
			continue
		}
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(l.host), Port: p})
		if err != nil {
			continue // port busy outside our bookkeeping; try next
		}
		udp, port = conn, p
		break
	}
	if udp == nil {
		return nil, ErrSegmentFull
	}

	tcp, err := net.Listen("tcp", net.JoinHostPort(l.host, "0"))
	if err != nil {
		_ = udp.Close()
		return nil, fmt.Errorf("transport: tcp listen: %w", err)
	}

	// Resolve the peer addresses and preassemble the datagram name header
	// once: Broadcast is the discovery hot path and must not re-parse the
	// host IP or re-encode the node name per datagram.
	ip := net.ParseIP(l.host)
	peers := make([]*net.UDPAddr, 0, l.size-1)
	for p := l.basePort; p < l.basePort+l.size; p++ {
		if p == port {
			continue
		}
		peers = append(peers, &net.UDPAddr{IP: ip, Port: p})
	}
	hdr := binary.AppendUvarint(make([]byte, 0, len(node)+binary.MaxVarintLen32), uint64(len(node)))
	hdr = append(hdr, node...)

	ifc := &udpIface{
		lan:     l,
		name:    node,
		udp:     udp,
		tcp:     tcp,
		port:    port,
		peers:   peers,
		hdr:     hdr,
		dgramCh: make(chan Datagram, recvBuffer),
		done:    make(chan struct{}),
	}
	l.inUse[port] = node
	ifc.wg.Add(1)
	go ifc.readLoop()
	return ifc, nil
}

// udpIface is one node's real-socket attachment.
type udpIface struct {
	lan   *UDPLAN
	name  string
	udp   *net.UDPConn
	tcp   net.Listener
	port  int
	peers []*net.UDPAddr // every other segment port, resolved at attach
	hdr   []byte         // preassembled uvarint(len(name)) || name

	dgramCh chan Datagram
	done    chan struct{}

	wg        sync.WaitGroup
	closeOnce sync.Once
}

var _ Interface = (*udpIface)(nil)

func (i *udpIface) Node() string { return i.name }
func (i *udpIface) Addr() string { return i.tcp.Addr().String() }

// Dial implements Interface.
func (i *udpIface) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %w", ErrUnknownAddr, addr, err)
	}
	return netConn{Conn: c}, nil
}

// Accept implements Interface.
func (i *udpIface) Accept() (Conn, error) {
	c, err := i.tcp.Accept()
	if err != nil {
		select {
		case <-i.done:
			return nil, ErrClosed
		default:
			return nil, fmt.Errorf("transport: accept: %w", err)
		}
	}
	return netConn{Conn: c}, nil
}

// Broadcast implements Interface: sends one UDP datagram to every other
// port in the segment range. Ports without a listener silently discard,
// exactly like an Ethernet broadcast reaching an empty slot in the rack.
func (i *udpIface) Broadcast(payload []byte) error {
	if len(payload) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes", ErrPayloadLarge, len(payload))
	}
	select {
	case <-i.done:
		return ErrClosed
	default:
	}
	// Datagram layout: uvarint(len(node)) || node || payload. The header
	// and peer addresses were built at attach time.
	buf := make([]byte, 0, len(i.hdr)+len(payload))
	buf = append(buf, i.hdr...)
	buf = append(buf, payload...)

	var firstErr error
	for _, addr := range i.peers {
		if _, err := i.udp.WriteToUDP(buf, addr); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("transport: broadcast to :%d: %w", addr.Port, err)
		}
	}
	return firstErr
}

// Recv implements Interface.
func (i *udpIface) Recv() <-chan Datagram { return i.dgramCh }

// readLoop pumps UDP packets into dgramCh until the socket closes.
func (i *udpIface) readLoop() {
	defer i.wg.Done()
	defer close(i.dgramCh)
	buf := make([]byte, MaxDatagram+64)
	for {
		n, _, err := i.udp.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		nameLen, sz := binary.Uvarint(buf[:n])
		if sz <= 0 || uint64(n-sz) < nameLen {
			continue // malformed; drop like a bad checksum
		}
		from := string(buf[sz : sz+int(nameLen)])
		payload := make([]byte, n-sz-int(nameLen))
		copy(payload, buf[sz+int(nameLen):n])
		select {
		case i.dgramCh <- Datagram{From: from, Payload: payload}:
		default:
			// Receiver buffer full: drop, as the kernel would.
		}
	}
}

// Close implements Interface.
func (i *udpIface) Close() error {
	var err error
	i.closeOnce.Do(func() {
		close(i.done)
		err = errors.Join(i.udp.Close(), i.tcp.Close())
		i.wg.Wait()
		i.lan.mu.Lock()
		delete(i.lan.inUse, i.port)
		i.lan.mu.Unlock()
	})
	return err
}

// netConn adapts net.Conn to the transport.Conn interface.
type netConn struct {
	net.Conn
}

var _ Conn = netConn{}

func (c netConn) LocalAddr() string  { return c.Conn.LocalAddr().String() }
func (c netConn) RemoteAddr() string { return c.Conn.RemoteAddr().String() }
