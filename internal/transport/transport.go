// Package transport abstracts the local-area network that interconnects the
// Cluster Of Desktop computers (COD). The Communication Backbone (package
// cb) talks only to the interfaces defined here, so the same protocol code
// runs over two back-ends:
//
//   - MemLAN: an in-memory network with configurable latency, jitter,
//     bandwidth and datagram loss, deterministic under a seed. This stands
//     in for the paper's eight-PC Ethernet segment and makes every
//     experiment repeatable.
//   - UDPLAN: real UDP datagrams and TCP streams on the loopback device,
//     one UDP port per "computer", proving the protocol runs on actual
//     sockets.
//
// The model mirrors a 2001-era switched LAN: unreliable broadcast datagrams
// (discovery traffic) plus reliable point-to-point streams (virtual-channel
// traffic).
package transport

import (
	"errors"
	"io"
)

// Datagram is one broadcast message as received by a node.
type Datagram struct {
	From    string // sender node name
	Payload []byte // application bytes; the receiver owns the slice
}

// Conn is a reliable, ordered byte stream between two nodes (the TCP
// analog).
type Conn interface {
	io.ReadWriteCloser
	// LocalAddr returns the stream address of this side.
	LocalAddr() string
	// RemoteAddr returns the stream address of the peer.
	RemoteAddr() string
}

// Interface is one node's attachment to the LAN: a stream endpoint plus a
// broadcast datagram socket, the software analog of the PC's NIC.
type Interface interface {
	// Node returns the node name this interface was attached with.
	Node() string
	// Addr returns the dialable stream address of this node.
	Addr() string
	// Dial opens a stream connection to another node's Addr.
	Dial(addr string) (Conn, error)
	// Accept waits for the next inbound stream connection. It returns
	// ErrClosed after Close.
	Accept() (Conn, error)
	// Broadcast sends a datagram to every other node on the segment.
	// Delivery is best-effort: receivers with full buffers drop it, and a
	// simulated LAN may lose it.
	Broadcast(payload []byte) error
	// Recv returns the channel of received broadcast datagrams. The
	// channel is closed by Close.
	Recv() <-chan Datagram
	// Close detaches from the LAN, closing Accept and Recv.
	Close() error
}

// LAN is a network segment nodes can attach to.
type LAN interface {
	// Attach joins the segment under the given unique node name.
	Attach(node string) (Interface, error)
}

// Errors shared by the LAN implementations.
var (
	ErrClosed       = errors.New("transport: interface closed")
	ErrDuplicate    = errors.New("transport: node name already attached")
	ErrUnknownAddr  = errors.New("transport: unknown address")
	ErrSegmentFull  = errors.New("transport: segment is full")
	ErrBacklogFull  = errors.New("transport: accept backlog full")
	ErrPayloadLarge = errors.New("transport: datagram payload too large")
)

// MaxDatagram bounds a broadcast payload, matching a jumbo-less Ethernet
// segment closely enough for discovery traffic.
const MaxDatagram = 8 << 10

// recvBuffer is the per-node datagram buffer depth. Matches a small socket
// receive buffer: discovery bursts beyond it are dropped, as UDP would.
const recvBuffer = 256
