package transport

import (
	"io"
	"sync"
	"time"
)

// linkParams model one direction of a simulated link.
type linkParams struct {
	latency   time.Duration // propagation delay
	jitter    time.Duration // max extra random delay (resolved by caller)
	bandwidth float64       // bytes/second; 0 = infinite
}

// pipeHalf is one direction of an in-memory stream: a FIFO of byte chunks,
// each stamped with its arrival time, so the reader observes propagation and
// serialization delay without any background copier goroutine.
type pipeHalf struct {
	mu        sync.Mutex
	cond      *sync.Cond
	chunks    [][]byte
	arrivals  []time.Time
	busyUntil time.Time // link serialization horizon
	lastArr   time.Time // monotone arrival guard (jitter must not reorder)
	closed    bool
	params    linkParams
	// jitterFn returns the next jitter sample; nil means no jitter.
	jitterFn func() time.Duration
}

func newPipeHalf(p linkParams, jitterFn func() time.Duration) *pipeHalf {
	h := &pipeHalf{params: p, jitterFn: jitterFn}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// write enqueues data (copied) with a computed arrival time.
func (h *pipeHalf) write(data []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, io.ErrClosedPipe
	}
	now := time.Now()

	depart := now
	if h.busyUntil.After(depart) {
		depart = h.busyUntil
	}
	if h.params.bandwidth > 0 {
		tx := time.Duration(float64(len(data)) / h.params.bandwidth * float64(time.Second))
		depart = depart.Add(tx)
	}
	h.busyUntil = depart

	arrive := depart.Add(h.params.latency)
	if h.jitterFn != nil {
		arrive = arrive.Add(h.jitterFn())
	}
	if arrive.Before(h.lastArr) { // keep FIFO despite jitter
		arrive = h.lastArr
	}
	h.lastArr = arrive

	cp := make([]byte, len(data))
	copy(cp, data)
	h.chunks = append(h.chunks, cp)
	h.arrivals = append(h.arrivals, arrive)

	if wait := time.Until(arrive); wait > 0 {
		time.AfterFunc(wait, h.cond.Broadcast)
	} else {
		h.cond.Broadcast()
	}
	return len(data), nil
}

// read copies available, already-arrived bytes into p, blocking until data
// arrives or the half is closed.
func (h *pipeHalf) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if len(h.chunks) > 0 {
			now := time.Now()
			if !h.arrivals[0].After(now) {
				n := copy(p, h.chunks[0])
				if n == len(h.chunks[0]) {
					h.chunks = h.chunks[1:]
					h.arrivals = h.arrivals[1:]
				} else {
					h.chunks[0] = h.chunks[0][n:]
				}
				return n, nil
			}
			// Head chunk still in flight; its AfterFunc will wake us.
		} else if h.closed {
			return 0, io.EOF
		}
		h.cond.Wait()
	}
}

func (h *pipeHalf) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	h.cond.Broadcast()
}

// memConn is one endpoint of an in-memory duplex stream.
type memConn struct {
	readHalf  *pipeHalf
	writeHalf *pipeHalf
	local     string
	remote    string
	closeOnce sync.Once
}

var _ Conn = (*memConn)(nil)

func (c *memConn) Read(p []byte) (int, error)  { return c.readHalf.read(p) }
func (c *memConn) Write(p []byte) (int, error) { return c.writeHalf.write(p) }
func (c *memConn) LocalAddr() string           { return c.local }
func (c *memConn) RemoteAddr() string          { return c.remote }

// Close shuts both directions: the peer's pending reads drain then hit EOF,
// and writes from either side fail.
func (c *memConn) Close() error {
	c.closeOnce.Do(func() {
		c.readHalf.close()
		c.writeHalf.close()
	})
	return nil
}

// newMemPipe builds a connected pair of stream endpoints with the given link
// parameters applied independently to each direction.
func newMemPipe(localAddr, remoteAddr string, p linkParams, jitterFn func() time.Duration) (client, server *memConn) {
	aToB := newPipeHalf(p, jitterFn)
	bToA := newPipeHalf(p, jitterFn)
	client = &memConn{readHalf: bToA, writeHalf: aToB, local: localAddr, remote: remoteAddr}
	server = &memConn{readHalf: aToB, writeHalf: bToA, local: remoteAddr, remote: localAddr}
	return client, server
}
