package transport

import (
	"errors"
	"io"
	"testing"
	"time"
)

// udpBase is the start of the port range used by these tests. Chosen high
// to dodge well-known services; tests skip when binding fails entirely.
const udpBase = 39400

func newTestUDPLAN(t *testing.T, size int) *UDPLAN {
	t.Helper()
	l, err := NewUDPLAN("127.0.0.1", udpBase, size)
	if err != nil {
		t.Fatalf("NewUDPLAN: %v", err)
	}
	return l
}

func TestFreeUDPSegment(t *testing.T) {
	base, err := FreeUDPSegment("127.0.0.1", 8)
	if err != nil {
		t.Fatalf("FreeUDPSegment: %v", err)
	}
	// The range it found must immediately host a working segment.
	l, err := NewUDPLAN("127.0.0.1", base, 8)
	if err != nil {
		t.Fatalf("NewUDPLAN at probed base %d: %v", base, err)
	}
	a := attach(t, l, "a")
	b := attach(t, l, "b")
	if err := a.Broadcast([]byte("hi")); err != nil {
		t.Fatalf("broadcast on probed segment: %v", err)
	}
	select {
	case dg := <-b.Recv():
		if dg.From != "a" || string(dg.Payload) != "hi" {
			t.Errorf("datagram = %+v", dg)
		}
	case <-time.After(2 * time.Second):
		t.Error("broadcast never arrived on probed segment")
	}

	if _, err := FreeUDPSegment("127.0.0.1", 0); err == nil {
		t.Error("size 0 accepted")
	}
}

func TestUDPLANValidation(t *testing.T) {
	if _, err := NewUDPLAN("127.0.0.1", 0, 4); err == nil {
		t.Error("base port 0 accepted")
	}
	if _, err := NewUDPLAN("127.0.0.1", 40000, 0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewUDPLAN("127.0.0.1", 65530, 100); err == nil {
		t.Error("overflowing range accepted")
	}
}

func TestUDPLANStream(t *testing.T) {
	l := newTestUDPLAN(t, 4)
	a := attach(t, l, "a")
	b := attach(t, l, "b")

	done := make(chan error, 1)
	go func() {
		conn, err := b.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 4)
		if _, err := io.ReadFull(conn, buf); err != nil {
			done <- err
			return
		}
		_, err = conn.Write(buf)
		done <- err
	}()

	conn, err := a.Dial(b.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("echo")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "echo" {
		t.Errorf("echo = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	if conn.LocalAddr() == "" || conn.RemoteAddr() == "" {
		t.Error("empty stream addresses")
	}
}

func TestUDPLANBroadcast(t *testing.T) {
	l := newTestUDPLAN(t, 4)
	a := attach(t, l, "alpha")
	b := attach(t, l, "beta")
	c := attach(t, l, "gamma")

	if err := a.Broadcast([]byte("discover")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	for _, ifc := range []Interface{b, c} {
		select {
		case dg := <-ifc.Recv():
			if dg.From != "alpha" || string(dg.Payload) != "discover" {
				t.Errorf("%s got %+v", ifc.Node(), dg)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%s: no datagram", ifc.Node())
		}
	}
	select {
	case dg := <-a.Recv():
		t.Errorf("sender received own broadcast: %+v", dg)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestUDPLANDuplicateNode(t *testing.T) {
	l := newTestUDPLAN(t, 4)
	attach(t, l, "dup")
	if _, err := l.Attach("dup"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v, want ErrDuplicate", err)
	}
}

func TestUDPLANSegmentFull(t *testing.T) {
	l := newTestUDPLAN(t, 2)
	attach(t, l, "one")
	attach(t, l, "two")
	if _, err := l.Attach("three"); !errors.Is(err, ErrSegmentFull) {
		t.Errorf("err = %v, want ErrSegmentFull", err)
	}
}

func TestUDPLANClose(t *testing.T) {
	l := newTestUDPLAN(t, 4)
	a, err := l.Attach("a")
	if err != nil {
		t.Fatal(err)
	}

	acceptErr := make(chan error, 1)
	go func() {
		_, err := a.Accept()
		acceptErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-acceptErr:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Accept after close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not unblock")
	}
	if _, open := <-a.Recv(); open {
		t.Error("Recv open after Close")
	}
	if err := a.Broadcast([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Broadcast after close = %v, want ErrClosed", err)
	}
	// Port slot is released for reuse.
	b := attach(t, l, "a")
	if b.Node() != "a" {
		t.Error("re-attach failed")
	}
}

func TestUDPLANBroadcastTooLarge(t *testing.T) {
	l := newTestUDPLAN(t, 2)
	a := attach(t, l, "a")
	if err := a.Broadcast(make([]byte, MaxDatagram+1)); !errors.Is(err, ErrPayloadLarge) {
		t.Errorf("err = %v, want ErrPayloadLarge", err)
	}
}

func TestUDPLANMalformedDatagramIgnored(t *testing.T) {
	// A raw packet that does not carry the node-name prefix must be
	// dropped without disturbing the reader.
	l := newTestUDPLAN(t, 4)
	a := attach(t, l, "a")
	b := attach(t, l, "b")

	// Locate b's UDP port by probing the segment directly.
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF} // huge uvarint name length
	for p := udpBase; p < udpBase+4; p++ {
		conn, err := newUDPSender()
		if err != nil {
			t.Fatal(err)
		}
		_ = conn.sendTo("127.0.0.1", p, raw)
		_ = conn.close()
	}
	// A well-formed broadcast still gets through afterwards.
	if err := a.Broadcast([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	select {
	case dg := <-b.Recv():
		if string(dg.Payload) != "ok" {
			t.Errorf("payload = %q", dg.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader died on malformed datagram")
	}
}

func TestUDPLANSegmentClose(t *testing.T) {
	l := newTestUDPLAN(t, 4)
	a := attach(t, l, "a")
	b := attach(t, l, "b")

	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.Attach("late"); !errors.Is(err, ErrClosed) {
		t.Errorf("Attach after Close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Interfaces attached before Close keep working.
	if err := a.Broadcast([]byte("still-up")); err != nil {
		t.Fatalf("Broadcast after segment close: %v", err)
	}
	select {
	case dg := <-b.Recv():
		if string(dg.Payload) != "still-up" {
			t.Errorf("payload = %q", dg.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no datagram after segment close")
	}
	// And they can still detach cleanly.
	if err := a.Close(); err != nil {
		t.Errorf("iface close: %v", err)
	}
}

// TestUDPLANBroadcastUsesCachedHeader checks the attach-time preassembly:
// the cached header must decode back to the node name on the receivers.
func TestUDPLANBroadcastUsesCachedHeader(t *testing.T) {
	l := newTestUDPLAN(t, 3)
	a := attach(t, l, "node-with-a-longer-name")
	b := attach(t, l, "b")
	if got, want := len(a.(*udpIface).peers), 2; got != want {
		t.Fatalf("cached peers = %d, want %d", got, want)
	}
	for n := 0; n < 3; n++ {
		if err := a.Broadcast([]byte{byte('0' + n)}); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < 3; n++ {
		select {
		case dg := <-b.Recv():
			if dg.From != "node-with-a-longer-name" {
				t.Fatalf("From = %q", dg.From)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("datagram %d lost", n)
		}
	}
}

// BenchmarkUDPLANBroadcast measures the discovery hot path: one op = one
// datagram fanned out to the whole segment.
func BenchmarkUDPLANBroadcast(b *testing.B) {
	l, err := NewUDPLAN("127.0.0.1", udpBase+200, 8)
	if err != nil {
		b.Fatal(err)
	}
	ifc, err := l.Attach("bench")
	if err != nil {
		b.Skipf("attach: %v", err)
	}
	defer ifc.Close()
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ifc.Broadcast(payload); err != nil {
			b.Fatal(err)
		}
	}
}
