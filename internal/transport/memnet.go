package transport

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// MemLAN is the simulated network segment. It is safe for concurrent use.
// The zero value is not usable; construct with NewMemLAN.
type MemLAN struct {
	mu    sync.Mutex
	cfg   memConfig
	rng   *rand.Rand
	nodes map[string]*memIface

	dropped  int64 // datagrams lost (simulated loss + full buffers)
	delivers int64 // datagrams delivered
}

type memConfig struct {
	latency   time.Duration
	jitter    time.Duration
	loss      float64 // datagram loss probability [0,1)
	bandwidth float64 // stream bytes/second; 0 = infinite
	seed      int64
}

// MemOption configures a MemLAN.
type MemOption func(*memConfig)

// WithLatency sets the one-way propagation delay for streams and datagrams.
func WithLatency(d time.Duration) MemOption {
	return func(c *memConfig) { c.latency = d }
}

// WithJitter sets the maximum additional random delay per message.
func WithJitter(d time.Duration) MemOption {
	return func(c *memConfig) { c.jitter = d }
}

// WithLoss sets the independent loss probability for broadcast datagrams.
// Streams stay reliable (the TCP analog).
func WithLoss(p float64) MemOption {
	return func(c *memConfig) { c.loss = p }
}

// WithBandwidth caps stream throughput in bytes per second per direction.
func WithBandwidth(bytesPerSec float64) MemOption {
	return func(c *memConfig) { c.bandwidth = bytesPerSec }
}

// WithSeed fixes the RNG seed for loss and jitter, making runs repeatable.
func WithSeed(seed int64) MemOption {
	return func(c *memConfig) { c.seed = seed }
}

// NewMemLAN builds an in-memory network segment.
func NewMemLAN(opts ...MemOption) *MemLAN {
	cfg := memConfig{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	return &MemLAN{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.seed)),
		nodes: make(map[string]*memIface),
	}
}

var _ LAN = (*MemLAN)(nil)

// Attach implements LAN.
func (l *MemLAN) Attach(node string) (Interface, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, exists := l.nodes[node]; exists {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, node)
	}
	ifc := &memIface{
		lan:      l,
		name:     node,
		acceptCh: make(chan Conn, 128),
		dgramCh:  make(chan Datagram, recvBuffer),
		done:     make(chan struct{}),
	}
	l.nodes[node] = ifc
	return ifc, nil
}

// Dropped returns how many datagrams the segment has lost so far.
func (l *MemLAN) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Delivered returns how many datagrams reached a receiver buffer.
func (l *MemLAN) Delivered() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.delivers
}

const memAddrPrefix = "mem://"

// memIface is one node's NIC on a MemLAN.
type memIface struct {
	lan  *MemLAN
	name string

	acceptCh chan Conn
	dgramCh  chan Datagram
	done     chan struct{}

	closeOnce sync.Once
	dead      bool // guarded by lan.mu
}

var _ Interface = (*memIface)(nil)

func (i *memIface) Node() string { return i.name }
func (i *memIface) Addr() string { return memAddrPrefix + i.name }

// Dial implements Interface.
func (i *memIface) Dial(addr string) (Conn, error) {
	target, ok := strings.CutPrefix(addr, memAddrPrefix)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAddr, addr)
	}
	l := i.lan
	l.mu.Lock()
	defer l.mu.Unlock()
	if i.dead {
		return nil, ErrClosed
	}
	peer, ok := l.nodes[target]
	if !ok || peer.dead {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAddr, addr)
	}
	params := linkParams{
		latency:   l.cfg.latency,
		jitter:    l.cfg.jitter,
		bandwidth: l.cfg.bandwidth,
	}
	client, server := newMemPipe(i.Addr(), peer.Addr(), params, l.jitterFn())
	select {
	case peer.acceptCh <- server:
		return client, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrBacklogFull, addr)
	}
}

// jitterFn returns a sampler bound to the LAN RNG, or nil without jitter.
// Callers must hold l.mu when invoking the returned function is NOT
// required: the sampler takes the lock itself.
func (l *MemLAN) jitterFn() func() time.Duration {
	if l.cfg.jitter <= 0 {
		return nil
	}
	return func() time.Duration {
		l.mu.Lock()
		defer l.mu.Unlock()
		return time.Duration(l.rng.Int63n(int64(l.cfg.jitter)))
	}
}

// Accept implements Interface.
func (i *memIface) Accept() (Conn, error) {
	select {
	case c := <-i.acceptCh:
		return c, nil
	case <-i.done:
		return nil, ErrClosed
	}
}

// Broadcast implements Interface.
func (i *memIface) Broadcast(payload []byte) error {
	if len(payload) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes", ErrPayloadLarge, len(payload))
	}
	l := i.lan
	l.mu.Lock()
	defer l.mu.Unlock()
	if i.dead {
		return ErrClosed
	}
	for name, peer := range l.nodes {
		if name == i.name || peer.dead {
			continue
		}
		if l.cfg.loss > 0 && l.rng.Float64() < l.cfg.loss {
			l.dropped++
			continue
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		dg := Datagram{From: i.name, Payload: cp}

		delay := l.cfg.latency
		if l.cfg.jitter > 0 {
			delay += time.Duration(l.rng.Int63n(int64(l.cfg.jitter)))
		}
		if delay <= 0 {
			l.deliverLocked(peer, dg)
			continue
		}
		peerRef := peer
		time.AfterFunc(delay, func() {
			l.mu.Lock()
			defer l.mu.Unlock()
			l.deliverLocked(peerRef, dg)
		})
	}
	return nil
}

// deliverLocked pushes a datagram into a receiver buffer; the caller holds
// l.mu. Full buffers drop, as UDP would.
func (l *MemLAN) deliverLocked(peer *memIface, dg Datagram) {
	if peer.dead {
		l.dropped++
		return
	}
	select {
	case peer.dgramCh <- dg:
		l.delivers++
	default:
		l.dropped++
	}
}

// Recv implements Interface.
func (i *memIface) Recv() <-chan Datagram { return i.dgramCh }

// Close implements Interface.
func (i *memIface) Close() error {
	i.closeOnce.Do(func() {
		l := i.lan
		l.mu.Lock()
		i.dead = true
		delete(l.nodes, i.name)
		close(i.done)
		close(i.dgramCh) // safe: all sends happen under l.mu with dead check
		l.mu.Unlock()
	})
	return nil
}
