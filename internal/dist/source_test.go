package dist

import (
	"context"
	"errors"
	"testing"
)

// FilterSource must admit exactly the jobs keep accepts, in order, keep
// drawing through rejections, and surface keep's error as the sweep
// abort.
func TestFilterSource(t *testing.T) {
	jobs := make([]Job, 10)
	for i := range jobs {
		jobs[i] = Job{ID: int64(i)}
	}
	var consulted []int64
	src := FilterSource(SliceJobs(jobs), func(_ context.Context, j Job) (bool, error) {
		consulted = append(consulted, j.ID)
		return j.ID%3 == 0, nil
	})

	var admitted []int64
	for {
		j, ok, err := src.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		admitted = append(admitted, j.ID)
	}
	if want := []int64{0, 3, 6, 9}; len(admitted) != len(want) {
		t.Fatalf("admitted %v, want %v", admitted, want)
	} else {
		for i := range want {
			if admitted[i] != want[i] {
				t.Fatalf("admitted %v, want %v", admitted, want)
			}
		}
	}
	if len(consulted) != len(jobs) {
		t.Fatalf("keep consulted %d jobs, want every one of %d", len(consulted), len(jobs))
	}

	boom := errors.New("oracle down")
	src = FilterSource(SliceJobs(jobs), func(_ context.Context, j Job) (bool, error) {
		if j.ID == 2 {
			return false, boom
		}
		return true, nil
	})
	for i := 0; i < 2; i++ {
		if _, ok, err := src.Next(context.Background()); err != nil || !ok {
			t.Fatalf("job %d: ok=%v err=%v", i, ok, err)
		}
	}
	if _, _, err := src.Next(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("want keep's error to abort the source, got %v", err)
	}
}
