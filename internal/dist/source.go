package dist

import "context"

// JobSource feeds a coordinator's work list incrementally, so a sweep can
// dispatch jobs that are generated (or read) on demand instead of
// materialized up front — a 10k-job procedural campaign never holds more
// than the dispatch window in memory ahead of the workers.
//
// Next returns the next job to dispatch. ok=false means the source is
// exhausted and the sweep should drain what remains in flight; a non-nil
// err aborts the sweep (partial records are still returned). Next may
// block — e.g. on a completability dry-run certifying the next candidate
// — and is always called from the coordinator's loop goroutine, never
// concurrently.
type JobSource interface {
	Next(ctx context.Context) (Job, bool, error)
}

// SliceJobs adapts a materialized job list into a JobSource; Run is
// exactly RunStream over one of these.
func SliceJobs(jobs []Job) JobSource {
	return &sliceSource{jobs: jobs}
}

type sliceSource struct {
	jobs []Job
	at   int
}

func (s *sliceSource) Next(ctx context.Context) (Job, bool, error) {
	if err := ctx.Err(); err != nil {
		return Job{}, false, err
	}
	if s.at >= len(s.jobs) {
		return Job{}, false, nil
	}
	j := s.jobs[s.at]
	s.at++
	return j, true, nil
}

// FilterSource wraps a JobSource with an admission hook: keep runs for
// every candidate job on the coordinator's polling goroutine, and jobs it
// rejects are silently skipped — the source keeps drawing until keep
// admits one or the inner source drains. A keep error aborts the sweep.
//
// This is the dispatch-time certification hook for campaigns that don't
// pre-certify: a stream can emit statically-checked candidates at full
// rate and attach the expensive oracle here — certifying lazily, one
// window ahead of dispatch, instead of ahead of the whole sweep — or
// attach a cheap predicate (dedup, quota, cache consult) the same way.
// dist stays oracle-agnostic: keep is any func, and package dist still
// never imports gen.
func FilterSource(src JobSource, keep func(ctx context.Context, j Job) (bool, error)) JobSource {
	return &filterSource{src: src, keep: keep}
}

type filterSource struct {
	src  JobSource
	keep func(ctx context.Context, j Job) (bool, error)
}

func (f *filterSource) Next(ctx context.Context) (Job, bool, error) {
	for {
		j, ok, err := f.src.Next(ctx)
		if err != nil || !ok {
			return Job{}, false, err
		}
		admit, err := f.keep(ctx, j)
		if err != nil {
			return Job{}, false, err
		}
		if admit {
			return j, true, nil
		}
	}
}
