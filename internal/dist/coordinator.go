package dist

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"codsim/cod"
	"codsim/internal/obs"
	"codsim/internal/scenario"
)

// CoordinatorConfig tunes dispatch and failure detection.
type CoordinatorConfig struct {
	// Sweep identifies this work list on the segment; workers key their
	// job state by it, so two sweeps reusing job IDs never mix. 0 derives
	// one from the wall clock.
	Sweep int64
	// Announce is the re-announce period for unassigned jobs (default
	// 250 ms). This is also the coordinator's bookkeeping tick, so dead
	// workers are detected within roughly one Announce of DeadAfter.
	Announce time.Duration
	// DeadAfter declares a worker dead this long after its last
	// heartbeat, re-dispatching its granted jobs (default 3 s — six of
	// the workers' default 500 ms beacons).
	DeadAfter time.Duration
	// JobTimeout re-dispatches a granted job that has produced no result
	// after this long, even from a live worker (default 10 min; a full
	// federation run at timescale 1 is slow, headless shards are not).
	JobTimeout time.Duration
	// MaxAttempts gives up on a job after this many dispatches and
	// records a synthetic failure (default 3).
	MaxAttempts int
	// Window bounds how many jobs RunStream holds in flight (pending or
	// granted) ahead of the workers before pulling more from its source
	// (default 64). Run ignores it — a materialized list is already paid
	// for.
	Window int
	// Log receives dispatch-state transitions (grants, results,
	// re-dispatches) as structured records with consistent field names
	// (sweep, job, worker, attempt, span). Nil falls back to Logf.
	Log *slog.Logger
	// Logf is the legacy printf hook, kept as a compatibility shim: when
	// Log is nil it is adapted into a slog handler (obs.NewLogfLogger).
	// Nil too is silent.
	Logf func(format string, args ...any)
	// Spans, when set, records per-job phase latencies (the queue phase is
	// observed here, on the coordinator's clock); nil drops them.
	Spans *obs.Spans
}

// logger resolves the configured structured sink, shimming Logf.
func (c CoordinatorConfig) logger() *slog.Logger {
	log := c.Log
	if log == nil {
		log = obs.NewLogfLogger(c.Logf)
	}
	return log.With("sweep", c.Sweep)
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Sweep == 0 {
		c.Sweep = time.Now().UnixNano()
	}
	if c.Announce <= 0 {
		c.Announce = 250 * time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * time.Second
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	return c
}

// workerInfo is the coordinator's liveness view of one worker.
type workerInfo struct {
	seen    time.Time // when the last heartbeat arrived
	sweep   int64     // the sweep that heartbeat reported
	working map[int64]bool
}

// Coordinator owns a sweep's work list: it announces jobs, grants claims,
// collects results, and re-dispatches work lost to dead or stalled
// workers. One coordinator per segment at a time.
type Coordinator struct {
	cfg   CoordinatorConfig
	log   *slog.Logger
	spans *obs.Spans

	pubJob   *cod.Pub[jobAnnounce]
	pubGrant *cod.Pub[jobGrant]
	pubAck   *cod.Pub[jobAck]
	subClaim *cod.Sub[jobClaim]
	subRes   *cod.Sub[jobResult]
	subHB    *cod.Sub[heartbeat]

	workers map[string]*workerInfo

	// prog mirrors dispatch state for the telemetry sampler. RunStream
	// updates it at every phase transition; Sample reads it from the
	// sampler's goroutine, so it has its own lock.
	progMu sync.Mutex
	prog   progress
}

// progress is the coordinator's scrape-facing dispatch state.
type progress struct {
	pending      int64 // jobs loaded, awaiting a grant
	granted      int64 // jobs granted, awaiting a result
	done         int64 // jobs with a Record
	attempts     int64 // dispatch attempts started (first + re-dispatches)
	redispatches int64 // re-dispatches of lost or timed-out grants
	start        time.Time
	workers      map[string]*workerProg
}

// workerProg is the coordinator's per-worker progress view.
type workerProg struct {
	done  int64 // results delivered this sweep
	slots int64 // from the last heartbeat
	busy  int64
	seen  time.Time
}

// NewCoordinator registers the coordinator's channels on the node. The
// caller keeps ownership of the node; Close withdraws only the
// registrations.
func NewCoordinator(node *cod.Node, cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		log:     cfg.logger(),
		spans:   cfg.Spans,
		workers: make(map[string]*workerInfo),
		prog:    progress{start: time.Now(), workers: make(map[string]*workerProg)},
	}
	var err error
	if c.pubJob, err = cod.Publish[jobAnnounce](node, coordinatorLP, ClassJob); err != nil {
		return nil, fmt.Errorf("dist: coordinator: %w", err)
	}
	if c.pubGrant, err = cod.Publish[jobGrant](node, coordinatorLP, ClassGrant); err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: coordinator: %w", err)
	}
	if c.pubAck, err = cod.Publish[jobAck](node, coordinatorLP, ClassAck); err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: coordinator: %w", err)
	}
	// Claims and results are must-not-lose: Reliable windows push
	// saturation back to the workers (whose re-send loops retry) instead
	// of dropping a finished run's record. Heartbeats are pure state —
	// LatestValue keeps the newest beat per worker (each worker is its
	// own virtual channel) under any backlog.
	if c.subClaim, err = cod.Subscribe[jobClaim](node, coordinatorLP, ClassClaim, cod.Reliable(1024)); err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: coordinator: %w", err)
	}
	if c.subRes, err = cod.Subscribe[jobResult](node, coordinatorLP, ClassResult, cod.Reliable(1024)); err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: coordinator: %w", err)
	}
	if c.subHB, err = cod.Subscribe[heartbeat](node, coordinatorLP, ClassHeartbeat, cod.WithQueue(256), cod.LatestValue()); err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: coordinator: %w", err)
	}
	return c, nil
}

// Close withdraws the coordinator's channel registrations.
func (c *Coordinator) Close() error {
	var errs []error
	if c.pubJob != nil {
		errs = append(errs, c.pubJob.Close())
	}
	if c.pubGrant != nil {
		errs = append(errs, c.pubGrant.Close())
	}
	if c.pubAck != nil {
		errs = append(errs, c.pubAck.Close())
	}
	if c.subClaim != nil {
		errs = append(errs, c.subClaim.Close())
	}
	if c.subRes != nil {
		errs = append(errs, c.subRes.Close())
	}
	if c.subHB != nil {
		errs = append(errs, c.subHB.Close())
	}
	return errors.Join(errs...)
}

// WaitWorkers blocks until every named worker has heartbeated at least
// once (or ctx is done), so a sweep doesn't start before the pool it was
// sized for is live.
func (c *Coordinator) WaitWorkers(ctx context.Context, names []string) error {
	missing := make(map[string]bool, len(names))
	for _, n := range names {
		if _, seen := c.workers[n]; !seen {
			missing[n] = true
		}
	}
	for len(missing) > 0 {
		hb, err := c.subHB.Next(ctx)
		if errors.Is(err, cod.ErrMissingAttr) {
			continue // shape mismatch from a foreign build: skip, like drainHeartbeats
		}
		if err != nil {
			return fmt.Errorf("dist: waiting for workers %v: %w", keys(missing), err)
		}
		c.noteHeartbeat(hb.Value)
		delete(missing, hb.Value.Worker)
	}
	return nil
}

// noteHeartbeat folds one heartbeat into the worker table and the
// telemetry progress view.
func (c *Coordinator) noteHeartbeat(hb heartbeat) {
	working := make(map[int64]bool, len(hb.Working))
	for _, id := range hb.Working {
		working[id] = true
	}
	now := time.Now()
	c.workers[hb.Worker] = &workerInfo{seen: now, sweep: hb.Sweep, working: working}

	c.progMu.Lock()
	wp := c.prog.workers[hb.Worker]
	if wp == nil {
		wp = &workerProg{}
		c.prog.workers[hb.Worker] = wp
	}
	wp.slots, wp.busy, wp.seen = hb.Slots, hb.Busy, now
	c.progMu.Unlock()
}

// moveJob records one job's phase transition in the progress view; pass
// from = -1 for a newly loaded job.
func (c *Coordinator) moveJob(from, to jobPhase) {
	c.progMu.Lock()
	switch from {
	case jobPending:
		c.prog.pending--
	case jobGranted:
		c.prog.granted--
	}
	switch to {
	case jobPending:
		c.prog.pending++
	case jobGranted:
		c.prog.granted++
	case jobDone:
		c.prog.done++
	}
	c.progMu.Unlock()
}

// noteAttempt counts one dispatch attempt (and, past the first, one
// re-dispatch).
func (c *Coordinator) noteAttempt(redispatch bool) {
	c.progMu.Lock()
	c.prog.attempts++
	if redispatch {
		c.prog.redispatches++
	}
	c.progMu.Unlock()
}

// noteWorkerDone credits one delivered result to a worker's throughput.
func (c *Coordinator) noteWorkerDone(worker string) {
	c.progMu.Lock()
	wp := c.prog.workers[worker]
	if wp == nil {
		wp = &workerProg{}
		c.prog.workers[worker] = wp
	}
	wp.done++
	c.progMu.Unlock()
}

// Sample snapshots the coordinator's dispatch state for the telemetry
// sampler (obs.Sampler.AddDispatch). Safe to call from any goroutine.
func (c *Coordinator) Sample() obs.DispatchSample {
	c.progMu.Lock()
	defer c.progMu.Unlock()
	d := obs.DispatchSample{
		Role:         "coordinator",
		Name:         fmt.Sprintf("sweep-%d", c.cfg.Sweep),
		Pending:      c.prog.pending,
		Granted:      c.prog.granted,
		Done:         c.prog.done,
		Attempts:     c.prog.attempts,
		Redispatches: c.prog.redispatches,
	}
	elapsed := time.Since(c.prog.start).Seconds()
	names := make([]string, 0, len(c.prog.workers))
	for name := range c.prog.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		wp := c.prog.workers[name]
		ws := obs.WorkerSample{
			Name: name, Done: wp.done, Busy: wp.busy, Slots: wp.slots,
			SinceSeen: time.Since(wp.seen).Seconds(),
		}
		if elapsed > 0 {
			ws.Throughput = float64(wp.done) / elapsed
		}
		d.Workers = append(d.Workers, ws)
	}
	return d
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// jobPhase is a dispatch state of one job.
type jobPhase int

const (
	jobPending jobPhase = iota
	jobGranted
	jobDone
)

// jobState is the coordinator's view of one job.
type jobState struct {
	job      Job
	specJSON []byte
	phase    jobPhase
	attempt  int64
	worker   string    // grantee while granted
	created  time.Time // when the job was pulled from its source
	granted  time.Time // when the grant was sent
	deadline time.Time // JobTimeout while granted, and while re-dispatched
	announce time.Time // last announce while pending
	span     string    // trace span ID, minted at load, rides every message
	queueMS  float64   // load→grant latency of the winning attempt
	rec      Record
}

// Run dispatches the jobs and blocks until every one has a Record or ctx
// is done. Records come back sorted by job ID; on cancellation the
// partial set is returned with ctx.Err(). Jobs that exhaust MaxAttempts
// get a synthetic failed Record rather than stalling the sweep.
func (c *Coordinator) Run(ctx context.Context, jobs []Job) ([]Record, error) {
	return c.RunStream(ctx, SliceJobs(jobs))
}

// RunStream is Run over an incremental work list: it keeps at most Window
// jobs in flight, pulling more from the source as results free slots, and
// blocks until the source is exhausted and every pulled job has a Record
// (or ctx is done). The source is only ever polled from this goroutine; a
// source that blocks (a generator certifying its next candidate) delays
// refills but never the draining of results already in flight by more
// than one poll.
func (c *Coordinator) RunStream(ctx context.Context, src JobSource) ([]Record, error) {
	states := make(map[int64]*jobState)
	var jobs []Job
	done := 0
	exhausted := false

	// load tops the in-flight set back up to the window. Malformed or
	// duplicate jobs abort the sweep — a streaming source is code, not
	// input, and dispatching around its bug would silently shrink the
	// campaign.
	load := func() error {
		for !exhausted && len(states)-done < c.cfg.Window {
			j, ok, err := src.Next(ctx)
			if err != nil {
				return fmt.Errorf("dist: job source: %w", err)
			}
			if !ok {
				exhausted = true
				return nil
			}
			data, err := scenario.MarshalSpec(j.Spec)
			if err != nil {
				return fmt.Errorf("dist: %s: %w", j, err)
			}
			if _, dup := states[j.ID]; dup {
				return fmt.Errorf("dist: duplicate job id %d", j.ID)
			}
			states[j.ID] = &jobState{
				job: j, specJSON: data, attempt: 1,
				created: time.Now(), span: obs.MintSpanID(),
			}
			jobs = append(jobs, j)
			c.moveJob(-1, jobPending)
			c.noteAttempt(false)
		}
		return nil
	}

	tick := time.NewTicker(c.cfg.Announce)
	defer tick.Stop()
	for {
		if err := load(); err != nil {
			return collect(jobs, states), err
		}
		c.drainHeartbeats()
		if n := c.drainResults(states); n > 0 {
			done += n
			// A result frees a worker slot: refill the window and
			// re-announce the backlog now instead of waiting out the
			// period, or every slot refill costs a full Announce of idle
			// time.
			if err := load(); err != nil {
				return collect(jobs, states), err
			}
			for _, s := range states {
				if s.phase == jobPending {
					s.announce = time.Time{}
				}
			}
		}
		c.drainClaims(states)
		done += c.redispatch(states)
		if exhausted && done == len(states) {
			return collect(jobs, states), nil
		}
		c.announcePending(states)

		select {
		case <-ctx.Done():
			return collect(jobs, states), ctx.Err()
		case <-tick.C:
		case <-c.subClaim.NotifyC():
		case <-c.subRes.NotifyC():
		case <-c.subHB.NotifyC():
		}
	}
}

// collect gathers finished records in job-ID order.
func collect(jobs []Job, states map[int64]*jobState) []Record {
	out := make([]Record, 0, len(jobs))
	for _, j := range jobs {
		if s := states[j.ID]; s.phase == jobDone {
			out = append(out, s.rec)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Job < out[k].Job })
	return out
}

func (c *Coordinator) drainHeartbeats() {
	for {
		hb, ok, err := c.subHB.Poll()
		if err != nil {
			continue // shape mismatch from a foreign build: skip
		}
		if !ok {
			return
		}
		c.noteHeartbeat(hb.Value)
	}
}

// drainResults records finished jobs; the first Record per job wins and
// stale attempts are accepted — the work is identical.
func (c *Coordinator) drainResults(states map[int64]*jobState) (newlyDone int) {
	for {
		r, ok, err := c.subRes.Poll()
		if err != nil {
			continue // shape mismatch from a foreign build: skip
		}
		if !ok {
			return newlyDone
		}
		res := r.Value
		s := states[res.Job]
		if res.Sweep != c.cfg.Sweep || s == nil {
			continue
		}
		if s.phase == jobDone {
			c.ack(res.Job) // duplicate re-send: re-ack so the worker stops
			continue
		}
		var rec Record
		if err := unmarshalRecord(res.Record, &rec); err != nil {
			continue // corrupt record: let the job be re-dispatched
		}
		// The coordinator owns the span and the queue phase; the worker
		// stamped DispatchMS on its own clock before marshaling.
		rec.Span = s.span
		rec.QueueMS = s.queueMS
		c.moveJob(s.phase, jobDone)
		s.phase = jobDone
		s.rec = rec
		newlyDone++
		c.ack(res.Job)
		c.noteWorkerDone(res.Worker)
		c.log.Info("job done",
			"job", res.Job, "worker", res.Worker, "attempt", res.Attempt,
			"span", s.span, "wall_s", rec.WallSec, "passed", rec.Passed)
	}
}

// drainClaims grants each claimed pending job to its first bidder; claims
// for already-granted or done jobs re-send the standing grant so losing
// bidders release their slot.
func (c *Coordinator) drainClaims(states map[int64]*jobState) {
	for {
		r, ok, err := c.subClaim.Poll()
		if err != nil {
			continue
		}
		if !ok {
			return
		}
		claim := r.Value
		s := states[claim.Job]
		if claim.Sweep != c.cfg.Sweep || s == nil {
			continue
		}
		switch s.phase {
		case jobPending:
			if claim.Attempt != s.attempt {
				continue // bid on a stale announce; re-announce solicits a fresh one
			}
			c.moveJob(s.phase, jobGranted)
			s.phase = jobGranted
			s.worker = claim.Worker
			s.granted = time.Now()
			s.deadline = s.granted.Add(c.cfg.JobTimeout)
			// The queue phase ends here: the job waited from load until a
			// worker won it. Re-dispatches overwrite it — the latency that
			// matters is the attempt that went on to run.
			queued := s.granted.Sub(s.created)
			// Fractional ms: in-process grants land in microseconds, and a
			// truncated 0 would hide the report's DISP-MS column.
			s.queueMS = float64(queued.Microseconds()) / 1e3
			c.spans.Observe(obs.PhaseQueue, queued)
			c.sendGrant(s)
			c.log.Info("job granted",
				"job", s.job.ID, "worker", s.worker, "attempt", s.attempt,
				"span", s.span, "queue_ms", s.queueMS)
		case jobGranted, jobDone:
			if s.worker != "" {
				c.sendGrant(s) // idempotent re-send releases the loser
			}
		}
	}
}

// ack confirms a recorded result. A lost ack only costs another result
// re-send, which is re-acked here — both messages are idempotent.
func (c *Coordinator) ack(job int64) {
	_ = c.pubAck.Update(0, jobAck{Sweep: c.cfg.Sweep, Job: job})
}

func (c *Coordinator) sendGrant(s *jobState) {
	grant := jobGrant{Sweep: c.cfg.Sweep, Job: s.job.ID, Attempt: s.attempt, Worker: s.worker}
	// A failed grant is recovered by JobTimeout; no subscribers means the
	// last worker vanished between claim and grant.
	_ = c.pubGrant.Update(0, grant)
}

// redispatch returns granted jobs to pending when their worker died or
// the job outlived its timeout, failing them outright past MaxAttempts.
// A re-dispatched job that stays unclaimed for another JobTimeout burns
// an attempt too — a sole worker stuck running the job ignores its
// re-announces, and the sweep must fail the job rather than hang.
// First-attempt pending jobs never expire: an empty segment is a pool
// that has not joined yet, not a failure.
func (c *Coordinator) redispatch(states map[int64]*jobState) (newlyDone int) {
	now := time.Now()
	// grantSlack is how long after a grant the grantee's heartbeats may
	// still omit the job before the grant counts as lost: long enough
	// for grant delivery plus one beat, well under any real job.
	grantSlack := 2 * c.cfg.Announce
	if grantSlack < 500*time.Millisecond {
		grantSlack = 500 * time.Millisecond
	}
	for _, s := range states {
		switch s.phase {
		case jobGranted:
			w := c.workers[s.worker]
			dead := w != nil && now.Sub(w.seen) > c.cfg.DeadAfter
			// Lost grant: the grantee beats on this sweep, its latest
			// beat postdates the grant by the slack, yet it never lists
			// the job — its claim expired before the grant arrived
			// (e.g. the grant channel was still being established), so
			// nobody is running this job. Without this check the sweep
			// stalls for the whole JobTimeout.
			lost := w != nil && w.sweep == c.cfg.Sweep &&
				w.seen.After(s.granted.Add(grantSlack)) && !w.working[s.job.ID]
			if !dead && !lost && now.Before(s.deadline) {
				continue
			}
			c.log.Warn("grant failed",
				"job", s.job.ID, "worker", s.worker, "attempt", s.attempt,
				"span", s.span, "dead", dead, "lost", lost,
				"timeout", !now.Before(s.deadline))
		case jobPending:
			if s.attempt == 1 || now.Before(s.deadline) {
				continue
			}
			c.log.Warn("re-dispatch unclaimed past deadline",
				"job", s.job.ID, "attempt", s.attempt, "span", s.span)
		default:
			continue
		}
		if int(s.attempt) >= c.cfg.MaxAttempts {
			c.moveJob(s.phase, jobDone)
			s.phase = jobDone
			s.rec = Record{
				Job:      s.job.ID,
				Attempt:  s.attempt,
				Scenario: s.job.Spec.Name,
				Title:    s.job.Spec.Title,
				Seed:     s.job.Seed,
				Worker:   s.worker,
				Span:     s.span,
				Err:      fmt.Sprintf("dist: gave up after %d attempts (last worker %s)", s.attempt, s.worker),
			}
			newlyDone++
			continue
		}
		c.moveJob(s.phase, jobPending)
		s.phase = jobPending
		s.attempt++
		s.worker = ""
		s.deadline = now.Add(c.cfg.JobTimeout)
		s.announce = time.Time{} // re-announce immediately
		c.noteAttempt(true)
	}
	return newlyDone
}

// announcePending publishes every pending job whose announce period
// elapsed. ErrNoSubscribers just means no worker has joined yet, and
// ErrWindowFull that a worker's Reliable announce window is saturated
// (the update reached every other worker) — the next period retries
// either way, and announces are idempotent.
func (c *Coordinator) announcePending(states map[int64]*jobState) {
	now := time.Now()
	for _, s := range states {
		if s.phase != jobPending || now.Sub(s.announce) < c.cfg.Announce {
			continue
		}
		s.announce = now
		// Failures — ErrNoSubscribers or channel-level — are all retried
		// at the next period; the announce timestamp is already set.
		_ = c.pubJob.Update(0, jobAnnounce{
			Sweep:   c.cfg.Sweep,
			Job:     s.job.ID,
			Attempt: s.attempt,
			Seed:    s.job.Seed,
			Spec:    s.specJSON,
			Span:    s.span,
		})
	}
}
