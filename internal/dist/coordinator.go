package dist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"codsim/cod"
	"codsim/internal/scenario"
)

// CoordinatorConfig tunes dispatch and failure detection.
type CoordinatorConfig struct {
	// Sweep identifies this work list on the segment; workers key their
	// job state by it, so two sweeps reusing job IDs never mix. 0 derives
	// one from the wall clock.
	Sweep int64
	// Announce is the re-announce period for unassigned jobs (default
	// 250 ms). This is also the coordinator's bookkeeping tick, so dead
	// workers are detected within roughly one Announce of DeadAfter.
	Announce time.Duration
	// DeadAfter declares a worker dead this long after its last
	// heartbeat, re-dispatching its granted jobs (default 3 s — six of
	// the workers' default 500 ms beacons).
	DeadAfter time.Duration
	// JobTimeout re-dispatches a granted job that has produced no result
	// after this long, even from a live worker (default 10 min; a full
	// federation run at timescale 1 is slow, headless shards are not).
	JobTimeout time.Duration
	// MaxAttempts gives up on a job after this many dispatches and
	// records a synthetic failure (default 3).
	MaxAttempts int
	// Window bounds how many jobs RunStream holds in flight (pending or
	// granted) ahead of the workers before pulling more from its source
	// (default 64). Run ignores it — a materialized list is already paid
	// for.
	Window int
	// Logf, when set, receives dispatch-state transitions (grants,
	// results, re-dispatches) for debugging a sweep; nil is silent.
	Logf func(format string, args ...any)
}

// logf logs one dispatch event when a sink is configured.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf("dist: "+format, args...)
	}
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Sweep == 0 {
		c.Sweep = time.Now().UnixNano()
	}
	if c.Announce <= 0 {
		c.Announce = 250 * time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * time.Second
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	return c
}

// workerInfo is the coordinator's liveness view of one worker.
type workerInfo struct {
	seen    time.Time // when the last heartbeat arrived
	sweep   int64     // the sweep that heartbeat reported
	working map[int64]bool
}

// Coordinator owns a sweep's work list: it announces jobs, grants claims,
// collects results, and re-dispatches work lost to dead or stalled
// workers. One coordinator per segment at a time.
type Coordinator struct {
	cfg CoordinatorConfig

	pubJob   *cod.Pub[jobAnnounce]
	pubGrant *cod.Pub[jobGrant]
	pubAck   *cod.Pub[jobAck]
	subClaim *cod.Sub[jobClaim]
	subRes   *cod.Sub[jobResult]
	subHB    *cod.Sub[heartbeat]

	workers map[string]*workerInfo
}

// NewCoordinator registers the coordinator's channels on the node. The
// caller keeps ownership of the node; Close withdraws only the
// registrations.
func NewCoordinator(node *cod.Node, cfg CoordinatorConfig) (*Coordinator, error) {
	c := &Coordinator{cfg: cfg.withDefaults(), workers: make(map[string]*workerInfo)}
	var err error
	if c.pubJob, err = cod.Publish[jobAnnounce](node, coordinatorLP, ClassJob); err != nil {
		return nil, fmt.Errorf("dist: coordinator: %w", err)
	}
	if c.pubGrant, err = cod.Publish[jobGrant](node, coordinatorLP, ClassGrant); err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: coordinator: %w", err)
	}
	if c.pubAck, err = cod.Publish[jobAck](node, coordinatorLP, ClassAck); err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: coordinator: %w", err)
	}
	// Claims and results are must-not-lose: Reliable windows push
	// saturation back to the workers (whose re-send loops retry) instead
	// of dropping a finished run's record. Heartbeats are pure state —
	// LatestValue keeps the newest beat per worker (each worker is its
	// own virtual channel) under any backlog.
	if c.subClaim, err = cod.Subscribe[jobClaim](node, coordinatorLP, ClassClaim, cod.Reliable(1024)); err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: coordinator: %w", err)
	}
	if c.subRes, err = cod.Subscribe[jobResult](node, coordinatorLP, ClassResult, cod.Reliable(1024)); err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: coordinator: %w", err)
	}
	if c.subHB, err = cod.Subscribe[heartbeat](node, coordinatorLP, ClassHeartbeat, cod.WithQueue(256), cod.LatestValue()); err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: coordinator: %w", err)
	}
	return c, nil
}

// Close withdraws the coordinator's channel registrations.
func (c *Coordinator) Close() error {
	var errs []error
	if c.pubJob != nil {
		errs = append(errs, c.pubJob.Close())
	}
	if c.pubGrant != nil {
		errs = append(errs, c.pubGrant.Close())
	}
	if c.pubAck != nil {
		errs = append(errs, c.pubAck.Close())
	}
	if c.subClaim != nil {
		errs = append(errs, c.subClaim.Close())
	}
	if c.subRes != nil {
		errs = append(errs, c.subRes.Close())
	}
	if c.subHB != nil {
		errs = append(errs, c.subHB.Close())
	}
	return errors.Join(errs...)
}

// WaitWorkers blocks until every named worker has heartbeated at least
// once (or ctx is done), so a sweep doesn't start before the pool it was
// sized for is live.
func (c *Coordinator) WaitWorkers(ctx context.Context, names []string) error {
	missing := make(map[string]bool, len(names))
	for _, n := range names {
		if _, seen := c.workers[n]; !seen {
			missing[n] = true
		}
	}
	for len(missing) > 0 {
		hb, err := c.subHB.Next(ctx)
		if errors.Is(err, cod.ErrMissingAttr) {
			continue // shape mismatch from a foreign build: skip, like drainHeartbeats
		}
		if err != nil {
			return fmt.Errorf("dist: waiting for workers %v: %w", keys(missing), err)
		}
		c.noteHeartbeat(hb.Value)
		delete(missing, hb.Value.Worker)
	}
	return nil
}

// noteHeartbeat folds one heartbeat into the worker table.
func (c *Coordinator) noteHeartbeat(hb heartbeat) {
	working := make(map[int64]bool, len(hb.Working))
	for _, id := range hb.Working {
		working[id] = true
	}
	c.workers[hb.Worker] = &workerInfo{seen: time.Now(), sweep: hb.Sweep, working: working}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// jobPhase is a dispatch state of one job.
type jobPhase int

const (
	jobPending jobPhase = iota
	jobGranted
	jobDone
)

// jobState is the coordinator's view of one job.
type jobState struct {
	job      Job
	specJSON []byte
	phase    jobPhase
	attempt  int64
	worker   string    // grantee while granted
	granted  time.Time // when the grant was sent
	deadline time.Time // JobTimeout while granted, and while re-dispatched
	announce time.Time // last announce while pending
	rec      Record
}

// Run dispatches the jobs and blocks until every one has a Record or ctx
// is done. Records come back sorted by job ID; on cancellation the
// partial set is returned with ctx.Err(). Jobs that exhaust MaxAttempts
// get a synthetic failed Record rather than stalling the sweep.
func (c *Coordinator) Run(ctx context.Context, jobs []Job) ([]Record, error) {
	return c.RunStream(ctx, SliceJobs(jobs))
}

// RunStream is Run over an incremental work list: it keeps at most Window
// jobs in flight, pulling more from the source as results free slots, and
// blocks until the source is exhausted and every pulled job has a Record
// (or ctx is done). The source is only ever polled from this goroutine; a
// source that blocks (a generator certifying its next candidate) delays
// refills but never the draining of results already in flight by more
// than one poll.
func (c *Coordinator) RunStream(ctx context.Context, src JobSource) ([]Record, error) {
	states := make(map[int64]*jobState)
	var jobs []Job
	done := 0
	exhausted := false

	// load tops the in-flight set back up to the window. Malformed or
	// duplicate jobs abort the sweep — a streaming source is code, not
	// input, and dispatching around its bug would silently shrink the
	// campaign.
	load := func() error {
		for !exhausted && len(states)-done < c.cfg.Window {
			j, ok, err := src.Next(ctx)
			if err != nil {
				return fmt.Errorf("dist: job source: %w", err)
			}
			if !ok {
				exhausted = true
				return nil
			}
			data, err := scenario.MarshalSpec(j.Spec)
			if err != nil {
				return fmt.Errorf("dist: %s: %w", j, err)
			}
			if _, dup := states[j.ID]; dup {
				return fmt.Errorf("dist: duplicate job id %d", j.ID)
			}
			states[j.ID] = &jobState{job: j, specJSON: data, attempt: 1}
			jobs = append(jobs, j)
		}
		return nil
	}

	tick := time.NewTicker(c.cfg.Announce)
	defer tick.Stop()
	for {
		if err := load(); err != nil {
			return collect(jobs, states), err
		}
		c.drainHeartbeats()
		if n := c.drainResults(states); n > 0 {
			done += n
			// A result frees a worker slot: refill the window and
			// re-announce the backlog now instead of waiting out the
			// period, or every slot refill costs a full Announce of idle
			// time.
			if err := load(); err != nil {
				return collect(jobs, states), err
			}
			for _, s := range states {
				if s.phase == jobPending {
					s.announce = time.Time{}
				}
			}
		}
		c.drainClaims(states)
		done += c.redispatch(states)
		if exhausted && done == len(states) {
			return collect(jobs, states), nil
		}
		c.announcePending(states)

		select {
		case <-ctx.Done():
			return collect(jobs, states), ctx.Err()
		case <-tick.C:
		case <-c.subClaim.NotifyC():
		case <-c.subRes.NotifyC():
		case <-c.subHB.NotifyC():
		}
	}
}

// collect gathers finished records in job-ID order.
func collect(jobs []Job, states map[int64]*jobState) []Record {
	out := make([]Record, 0, len(jobs))
	for _, j := range jobs {
		if s := states[j.ID]; s.phase == jobDone {
			out = append(out, s.rec)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Job < out[k].Job })
	return out
}

func (c *Coordinator) drainHeartbeats() {
	for {
		hb, ok, err := c.subHB.Poll()
		if err != nil {
			continue // shape mismatch from a foreign build: skip
		}
		if !ok {
			return
		}
		c.noteHeartbeat(hb.Value)
	}
}

// drainResults records finished jobs; the first Record per job wins and
// stale attempts are accepted — the work is identical.
func (c *Coordinator) drainResults(states map[int64]*jobState) (newlyDone int) {
	for {
		r, ok, err := c.subRes.Poll()
		if err != nil {
			continue // shape mismatch from a foreign build: skip
		}
		if !ok {
			return newlyDone
		}
		res := r.Value
		s := states[res.Job]
		if res.Sweep != c.cfg.Sweep || s == nil {
			continue
		}
		if s.phase == jobDone {
			c.ack(res.Job) // duplicate re-send: re-ack so the worker stops
			continue
		}
		var rec Record
		if err := unmarshalRecord(res.Record, &rec); err != nil {
			continue // corrupt record: let the job be re-dispatched
		}
		s.phase = jobDone
		s.rec = rec
		newlyDone++
		c.ack(res.Job)
		c.logf("job %d done by %s (attempt %d)", res.Job, res.Worker, res.Attempt)
	}
}

// drainClaims grants each claimed pending job to its first bidder; claims
// for already-granted or done jobs re-send the standing grant so losing
// bidders release their slot.
func (c *Coordinator) drainClaims(states map[int64]*jobState) {
	for {
		r, ok, err := c.subClaim.Poll()
		if err != nil {
			continue
		}
		if !ok {
			return
		}
		claim := r.Value
		s := states[claim.Job]
		if claim.Sweep != c.cfg.Sweep || s == nil {
			continue
		}
		switch s.phase {
		case jobPending:
			if claim.Attempt != s.attempt {
				continue // bid on a stale announce; re-announce solicits a fresh one
			}
			s.phase = jobGranted
			s.worker = claim.Worker
			s.granted = time.Now()
			s.deadline = s.granted.Add(c.cfg.JobTimeout)
			c.sendGrant(s)
			c.logf("job %d granted to %s (attempt %d)", s.job.ID, s.worker, s.attempt)
		case jobGranted, jobDone:
			if s.worker != "" {
				c.sendGrant(s) // idempotent re-send releases the loser
			}
		}
	}
}

// ack confirms a recorded result. A lost ack only costs another result
// re-send, which is re-acked here — both messages are idempotent.
func (c *Coordinator) ack(job int64) {
	_ = c.pubAck.Update(0, jobAck{Sweep: c.cfg.Sweep, Job: job})
}

func (c *Coordinator) sendGrant(s *jobState) {
	grant := jobGrant{Sweep: c.cfg.Sweep, Job: s.job.ID, Attempt: s.attempt, Worker: s.worker}
	// A failed grant is recovered by JobTimeout; no subscribers means the
	// last worker vanished between claim and grant.
	_ = c.pubGrant.Update(0, grant)
}

// redispatch returns granted jobs to pending when their worker died or
// the job outlived its timeout, failing them outright past MaxAttempts.
// A re-dispatched job that stays unclaimed for another JobTimeout burns
// an attempt too — a sole worker stuck running the job ignores its
// re-announces, and the sweep must fail the job rather than hang.
// First-attempt pending jobs never expire: an empty segment is a pool
// that has not joined yet, not a failure.
func (c *Coordinator) redispatch(states map[int64]*jobState) (newlyDone int) {
	now := time.Now()
	// grantSlack is how long after a grant the grantee's heartbeats may
	// still omit the job before the grant counts as lost: long enough
	// for grant delivery plus one beat, well under any real job.
	grantSlack := 2 * c.cfg.Announce
	if grantSlack < 500*time.Millisecond {
		grantSlack = 500 * time.Millisecond
	}
	for _, s := range states {
		switch s.phase {
		case jobGranted:
			w := c.workers[s.worker]
			dead := w != nil && now.Sub(w.seen) > c.cfg.DeadAfter
			// Lost grant: the grantee beats on this sweep, its latest
			// beat postdates the grant by the slack, yet it never lists
			// the job — its claim expired before the grant arrived
			// (e.g. the grant channel was still being established), so
			// nobody is running this job. Without this check the sweep
			// stalls for the whole JobTimeout.
			lost := w != nil && w.sweep == c.cfg.Sweep &&
				w.seen.After(s.granted.Add(grantSlack)) && !w.working[s.job.ID]
			if !dead && !lost && now.Before(s.deadline) {
				continue
			}
			c.logf("job %d: grant to %s failed (dead=%v lost=%v timeout=%v), attempt %d",
				s.job.ID, s.worker, dead, lost, !now.Before(s.deadline), s.attempt)
		case jobPending:
			if s.attempt == 1 || now.Before(s.deadline) {
				continue
			}
			c.logf("job %d: re-dispatch unclaimed past deadline, attempt %d", s.job.ID, s.attempt)
		default:
			continue
		}
		if int(s.attempt) >= c.cfg.MaxAttempts {
			s.phase = jobDone
			s.rec = Record{
				Job:      s.job.ID,
				Attempt:  s.attempt,
				Scenario: s.job.Spec.Name,
				Title:    s.job.Spec.Title,
				Seed:     s.job.Seed,
				Worker:   s.worker,
				Err:      fmt.Sprintf("dist: gave up after %d attempts (last worker %s)", s.attempt, s.worker),
			}
			newlyDone++
			continue
		}
		s.phase = jobPending
		s.attempt++
		s.worker = ""
		s.deadline = now.Add(c.cfg.JobTimeout)
		s.announce = time.Time{} // re-announce immediately
	}
	return newlyDone
}

// announcePending publishes every pending job whose announce period
// elapsed. ErrNoSubscribers just means no worker has joined yet, and
// ErrWindowFull that a worker's Reliable announce window is saturated
// (the update reached every other worker) — the next period retries
// either way, and announces are idempotent.
func (c *Coordinator) announcePending(states map[int64]*jobState) {
	now := time.Now()
	for _, s := range states {
		if s.phase != jobPending || now.Sub(s.announce) < c.cfg.Announce {
			continue
		}
		s.announce = now
		// Failures — ErrNoSubscribers or channel-level — are all retried
		// at the next period; the announce timestamp is already set.
		_ = c.pubJob.Update(0, jobAnnounce{
			Sweep:   c.cfg.Sweep,
			Job:     s.job.ID,
			Attempt: s.attempt,
			Seed:    s.job.Seed,
			Spec:    s.specJSON,
		})
	}
}
