package dist

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"codsim/cod"
	"codsim/internal/obs"
	"codsim/internal/scenario"
	"codsim/internal/sim"
)

// Runner executes one job and returns its Record. The default runner
// pushes the job's spec through sim.RunBatch with the worker's
// BatchConfig; tests substitute stubs to exercise the protocol without
// simulating anything.
type Runner func(ctx context.Context, job Job, cfg sim.BatchConfig) Record

// WorkerConfig tunes one worker host.
type WorkerConfig struct {
	// Name identifies the worker in heartbeats, grants and records;
	// defaults to the node's name. Unique per segment.
	Name string
	// Slots is how many jobs run concurrently (default 1). Each slot is a
	// whole scenario run — a full federation or a headless loop — so
	// size it like sim.BatchConfig.Parallel.
	Slots int
	// Heartbeat is the liveness beacon period (default 500 ms).
	Heartbeat time.Duration
	// Batch is how this worker runs its shard: Headless or the full
	// federation, with what timeout. Parallel is ignored — Slots is the
	// worker's concurrency.
	Batch sim.BatchConfig
	// Run substitutes the job runner (tests); nil uses DefaultRunner.
	Run Runner
	// Log receives job-state transitions as structured records with
	// consistent field names (sweep, job, attempt, span). Nil falls back
	// to Logf.
	Log *slog.Logger
	// Logf is the legacy printf hook, kept as a compatibility shim: when
	// Log is nil it is adapted into a slog handler (obs.NewLogfLogger).
	// Nil too is silent.
	Logf func(format string, args ...any)
	// Spans, when set, records per-job phase latencies (dispatch, run and
	// ack are observed here, on the worker's clock); nil drops them.
	Spans *obs.Spans
}

func (c WorkerConfig) withDefaults(node *cod.Node) WorkerConfig {
	if c.Name == "" {
		c.Name = node.Name()
	}
	if c.Slots <= 0 {
		c.Slots = 1
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.Run == nil {
		c.Run = DefaultRunner
	}
	return c
}

// DefaultRunner runs the job's scenario through sim.RunBatch. The job's
// Seed is deliberately NOT fed into the federation template: sim.Config's
// Seed drives terrain generation, and the scenario library's geometry is
// tuned to the default site — varying it per repeat would change the
// course under the exam. Runs are deterministic per spec unless the
// worker's skill profile carries Jitter, in which case Job.SkillSeed
// selects this run's reproducible trainee variation.
func DefaultRunner(ctx context.Context, job Job, cfg sim.BatchConfig) Record {
	cfg.Parallel = 1 // the worker's Slots is the concurrency control
	cfg.Seeds = []int64{job.SkillSeed()}
	res := sim.RunBatch(ctx, []scenario.Spec{job.Spec}, cfg)
	return NewRecord(job, res[0], "")
}

// wjPhase is a worker-side job state.
type wjPhase int

const (
	wjClaimed wjPhase = iota // bid sent, awaiting grant
	wjRunning
	wjFinished
)

// workerJob tracks one job the worker has bid on, is running, or has
// finished (finished jobs cache their result for replay).
type workerJob struct {
	phase     wjPhase
	attempt   int64
	job       Job
	rec       Record
	lastSend  time.Time // last result send, for the re-send backoff
	claimedAt time.Time // bid time, for claim expiry and dispatch latency
	firstSend time.Time // first result send, for the ack phase span
}

// Worker serves one host's slots to whatever coordinator runs on the
// segment. It keeps serving across sweeps: when a new coordinator starts
// announcing a different sweep ID, the worker drops the previous sweep's
// bookkeeping once its slots drain.
type Worker struct {
	name  string
	cfg   WorkerConfig
	log   *slog.Logger
	spans *obs.Spans

	subJob   *cod.Sub[jobAnnounce]
	subGrant *cod.Sub[jobGrant]
	subAck   *cod.Sub[jobAck]
	pubClaim *cod.Pub[jobClaim]
	pubRes   *cod.Pub[jobResult]
	pubHB    *cod.Pub[heartbeat]

	sweep   int64
	jobs    map[int64]*workerJob
	running int
	doneCh  chan Record // finished runs, keyed by Record.Job

	// Scrape-facing mirrors of the ledger above, refreshed by the Run
	// loop so the telemetry sampler's Sample never touches loop state.
	obsBusy     atomic.Int64
	obsClaimed  atomic.Int64
	obsFinished atomic.Int64 // cumulative runs finished
	obsAcked    atomic.Int64 // cumulative results acknowledged
}

// NewWorker registers the worker's channels on the node. The caller keeps
// ownership of the node; Close withdraws only the registrations.
func NewWorker(node *cod.Node, cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults(node)
	log := cfg.Log
	if log == nil {
		log = obs.NewLogfLogger(cfg.Logf)
	}
	w := &Worker{
		name:   cfg.Name,
		cfg:    cfg,
		log:    log.With("worker", cfg.Name),
		spans:  cfg.Spans,
		jobs:   make(map[int64]*workerJob),
		doneCh: make(chan Record, cfg.Slots),
	}
	// Dispatch traffic is must-not-lose: announces, grants and acks ride
	// Reliable channels, so a worker that falls behind stalls the
	// coordinator's publisher (which retries next period) instead of
	// silently shedding distinct jobs from a drop-oldest mailbox.
	var err error
	if w.subJob, err = cod.Subscribe[jobAnnounce](node, cfg.Name, ClassJob, cod.Reliable(256)); err != nil {
		return nil, fmt.Errorf("dist: worker %s: %w", cfg.Name, err)
	}
	if w.subGrant, err = cod.Subscribe[jobGrant](node, cfg.Name, ClassGrant, cod.Reliable(256)); err != nil {
		w.Close()
		return nil, fmt.Errorf("dist: worker %s: %w", cfg.Name, err)
	}
	if w.subAck, err = cod.Subscribe[jobAck](node, cfg.Name, ClassAck, cod.Reliable(256)); err != nil {
		w.Close()
		return nil, fmt.Errorf("dist: worker %s: %w", cfg.Name, err)
	}
	if w.pubClaim, err = cod.Publish[jobClaim](node, cfg.Name, ClassClaim); err != nil {
		w.Close()
		return nil, fmt.Errorf("dist: worker %s: %w", cfg.Name, err)
	}
	if w.pubRes, err = cod.Publish[jobResult](node, cfg.Name, ClassResult); err != nil {
		w.Close()
		return nil, fmt.Errorf("dist: worker %s: %w", cfg.Name, err)
	}
	if w.pubHB, err = cod.Publish[heartbeat](node, cfg.Name, ClassHeartbeat); err != nil {
		w.Close()
		return nil, fmt.Errorf("dist: worker %s: %w", cfg.Name, err)
	}
	return w, nil
}

// Close withdraws the worker's channel registrations.
func (w *Worker) Close() error {
	var errs []error
	if w.subJob != nil {
		errs = append(errs, w.subJob.Close())
	}
	if w.subGrant != nil {
		errs = append(errs, w.subGrant.Close())
	}
	if w.subAck != nil {
		errs = append(errs, w.subAck.Close())
	}
	if w.pubClaim != nil {
		errs = append(errs, w.pubClaim.Close())
	}
	if w.pubRes != nil {
		errs = append(errs, w.pubRes.Close())
	}
	if w.pubHB != nil {
		errs = append(errs, w.pubHB.Close())
	}
	return errors.Join(errs...)
}

// Name returns the worker's identity on the segment.
func (w *Worker) Name() string { return w.name }

// Run serves jobs until ctx is done, then cancels any in-flight runs and
// returns ctx.Err(). The worker survives coordinator restarts: channels
// re-match through the backbone's dynamic join and new sweeps reset its
// bookkeeping.
func (w *Worker) Run(ctx context.Context) error {
	runCtx, cancelRuns := context.WithCancel(ctx)
	defer cancelRuns()

	hb := time.NewTicker(w.cfg.Heartbeat)
	defer hb.Stop()
	w.beat() // announce liveness immediately, WaitWorkers is listening

	for {
		// Checked before the drains and the flush: once the worker is
		// dying, a runner aborted by cancelRuns hands back a record via
		// doneCh, and publishing that partial result would hand the
		// coordinator a false verdict. Cancellation happens-before any
		// such delivery, so this check is sufficient to suppress it.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.drainAnnounces()
		w.drainGrants(runCtx)
		w.drainAcks()
		w.expireClaims()
		w.flushResults()
		w.publishStats()

		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-hb.C:
			w.beat()
		case rec := <-w.doneCh:
			w.running--
			w.obsFinished.Add(1)
			if j := w.jobs[rec.Job]; j != nil {
				j.phase = wjFinished
				j.rec = rec
			}
			w.log.Info("job finished",
				"sweep", w.sweep, "job", rec.Job, "attempt", rec.Attempt,
				"span", rec.Span, "wall_s", rec.WallSec, "passed", rec.Passed)
		case <-w.subJob.NotifyC():
		case <-w.subGrant.NotifyC():
		case <-w.subAck.NotifyC():
		}
	}
}

// beat publishes one heartbeat; no subscriber just means no coordinator
// is up yet.
func (w *Worker) beat() {
	// Every job this worker has accepted and still remembers — claimed,
	// running, or finished. Finished jobs stay listed so a result still
	// in flight is never mistaken for a lost grant.
	working := make([]int64, 0, len(w.jobs))
	for id := range w.jobs {
		working = append(working, id)
	}
	_ = w.pubHB.Update(0, heartbeat{
		Worker:  w.name,
		Sweep:   w.sweep,
		Slots:   int64(w.cfg.Slots),
		Busy:    int64(w.running),
		Working: working,
	})
}

// publishStats refreshes the scrape-facing mirrors of the job ledger.
func (w *Worker) publishStats() {
	var claimed int64
	for _, j := range w.jobs {
		if j.phase == wjClaimed {
			claimed++
		}
	}
	w.obsBusy.Store(int64(w.running))
	w.obsClaimed.Store(claimed)
}

// Sample snapshots the worker's dispatch state for the telemetry sampler
// (obs.Sampler.AddDispatch). Safe to call from any goroutine.
func (w *Worker) Sample() obs.DispatchSample {
	return obs.DispatchSample{
		Role:         "worker",
		Name:         w.name,
		Slots:        int64(w.cfg.Slots),
		Busy:         w.obsBusy.Load(),
		Claimed:      w.obsClaimed.Load(),
		Finished:     w.obsFinished.Load(),
		ResultsAcked: w.obsAcked.Load(),
	}
}

// free reports how many slots are neither running nor bid away.
func (w *Worker) free() int {
	n := w.cfg.Slots - w.running
	for _, j := range w.jobs {
		if j.phase == wjClaimed {
			n--
		}
	}
	return n
}

// drainAnnounces bids on announced jobs while slots are free. Announces
// of finished jobs re-arm their cached result — the coordinator only
// re-announces what it never recorded.
func (w *Worker) drainAnnounces() {
	for {
		r, ok, err := w.subJob.Poll()
		if err != nil {
			continue
		}
		if !ok {
			return
		}
		ann := r.Value
		if ann.Sweep != w.sweep {
			// A new sweep begins once the old one's slots drain; until
			// then its announces wait for the next re-announce period.
			if w.running > 0 {
				continue
			}
			w.sweep = ann.Sweep
			w.jobs = make(map[int64]*workerJob)
		}
		j := w.jobs[ann.Job]
		if j != nil {
			switch {
			case j.phase == wjFinished:
				// The coordinator lost or timed out our result: replay it
				// under the announced attempt.
				j.attempt = ann.Attempt
				j.lastSend = time.Time{}
			case j.phase == wjClaimed && ann.Attempt > j.attempt:
				// Our earlier bid went stale; renew it for the new attempt.
				j.attempt = ann.Attempt
				w.claim(j)
			}
			continue
		}
		if w.free() <= 0 {
			continue
		}
		spec, err := scenario.UnmarshalSpec(ann.Spec)
		if err != nil {
			continue // foreign or corrupt job; someone else may parse it
		}
		j = &workerJob{
			phase:   wjClaimed,
			attempt: ann.Attempt,
			job:     Job{ID: ann.Job, Seed: ann.Seed, Spec: spec, Span: ann.Span},
		}
		w.jobs[ann.Job] = j
		w.claim(j)
	}
}

// claim publishes one bid; a routing failure forgets the bid so the next
// announce can retry it.
func (w *Worker) claim(j *workerJob) {
	err := w.pubClaim.Update(0, jobClaim{
		Sweep: w.sweep, Job: j.job.ID, Attempt: j.attempt, Worker: w.name,
	})
	if err != nil {
		delete(w.jobs, j.job.ID)
		return
	}
	j.claimedAt = time.Now()
}

// expireClaims drops bids that never drew a grant — the race was lost
// before this worker's grant channel was established, so the release
// grant never arrived. The coordinator's next announce can renew the bid.
func (w *Worker) expireClaims() {
	ttl := 4 * w.cfg.Heartbeat
	now := time.Now()
	for id, j := range w.jobs {
		if j.phase == wjClaimed && now.Sub(j.claimedAt) > ttl {
			delete(w.jobs, id)
		}
	}
}

// drainGrants starts granted runs and releases bids granted elsewhere.
func (w *Worker) drainGrants(runCtx context.Context) {
	for {
		r, ok, err := w.subGrant.Poll()
		if err != nil {
			continue
		}
		if !ok {
			return
		}
		g := r.Value
		if g.Sweep != w.sweep {
			continue
		}
		j := w.jobs[g.Job]
		if j == nil {
			continue
		}
		if g.Worker != w.name {
			if j.phase == wjClaimed {
				delete(w.jobs, g.Job) // lost the race; free the slot
			}
			continue
		}
		if j.phase != wjClaimed {
			continue // duplicate grant re-send
		}
		j.phase = wjRunning
		w.running++
		// The dispatch phase ends here: the bid waited from claim to
		// grant, all on this worker's clock.
		dispatched := time.Since(j.claimedAt)
		w.spans.Observe(obs.PhaseDispatch, dispatched)
		// Fractional ms, for the same reason as the coordinator's queueMS.
		dispatchMS := float64(dispatched.Microseconds()) / 1e3
		w.log.Info("job started",
			"sweep", w.sweep, "job", g.Job, "attempt", g.Attempt,
			"span", j.job.Span, "dispatch_ms", dispatchMS)
		go func(job Job, attempt int64) {
			start := time.Now()
			rec := w.cfg.Run(runCtx, job, w.cfg.Batch)
			w.spans.Observe(obs.PhaseRun, time.Since(start))
			rec.Job = job.ID
			rec.Attempt = attempt
			rec.Worker = w.name
			rec.Span = job.Span
			rec.DispatchMS = dispatchMS
			w.doneCh <- rec
		}(j.job, j.attempt)
	}
}

// drainAcks stops the re-send loop of acknowledged results.
func (w *Worker) drainAcks() {
	for {
		r, ok, err := w.subAck.Poll()
		if err != nil {
			continue
		}
		if !ok {
			return
		}
		if r.Value.Sweep != w.sweep {
			continue
		}
		// The coordinator has the record and will never announce this job
		// again, so the whole entry can go: keeping it would grow every
		// heartbeat's Working list (and the cached Records) with all jobs
		// ever run in the sweep.
		if j := w.jobs[r.Value.Job]; j != nil && j.phase == wjFinished {
			// The ack phase ends here: the record waited from its first
			// send until the coordinator confirmed receipt.
			if !j.firstSend.IsZero() {
				w.spans.Observe(obs.PhaseAck, time.Since(j.firstSend))
			}
			w.obsAcked.Add(1)
			delete(w.jobs, r.Value.Job)
		}
	}
}

// flushResults publishes finished, unacknowledged records, re-sending on
// a backoff until the coordinator's ack arrives. The Reliable result
// channel carries most of the delivery contract now — a successful Update
// means the record sits in the coordinator's mailbox or the window would
// have stalled us — but the ack loop stays for the one loss the window
// cannot see: link churn tears the virtual channel down, and a frame
// written just before the teardown vanishes without an error on either
// side. So only an ack (or a replay request via re-announce) ends a
// record's delivery loop; ErrWindowFull just means the coordinator is
// saturated, and the next pass retries without burning the backoff.
func (w *Worker) flushResults() {
	resend := 4 * w.cfg.Heartbeat
	now := time.Now()
	for id, j := range w.jobs {
		if j.phase != wjFinished || now.Sub(j.lastSend) < resend {
			continue
		}
		data, err := marshalRecord(j.rec)
		if err != nil {
			delete(w.jobs, id) // unencodable record cannot improve with retries
			continue
		}
		err = w.pubRes.Update(0, jobResult{
			Sweep: w.sweep, Job: j.job.ID, Attempt: j.attempt,
			Worker: w.name, Record: data,
		})
		switch {
		case err == nil:
			j.lastSend = now
			if j.firstSend.IsZero() {
				j.firstSend = now
			}
			w.log.Info("result sent",
				"sweep", w.sweep, "job", j.job.ID, "attempt", j.attempt,
				"span", j.job.Span)
		case errors.Is(err, cod.ErrWindowFull):
			w.log.Warn("result deferred: coordinator window full",
				"sweep", w.sweep, "job", j.job.ID, "span", j.job.Span)
		default:
			w.log.Warn("result not sent",
				"sweep", w.sweep, "job", j.job.ID, "span", j.job.Span, "err", err)
		}
	}
}
