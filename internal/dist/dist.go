// Package dist shards scenario batches across worker hosts over the
// Communication Backbone, making the paper's cluster-of-desktops story
// real at the batch layer: one coordinator process owns a work list of
// scenario jobs, N worker processes each run their share through
// sim.RunBatch, and every exchange rides typed cod channels on a shared
// LAN segment (UDPLAN across processes, MemLAN inside tests).
//
// # Protocol
//
// Six object classes carry the whole protocol:
//
//	dist.Job        coordinator → workers   announce of an unassigned job
//	dist.Claim      worker → coordinator    bid to run an announced job
//	dist.Grant      coordinator → workers   assignment of a job to one worker
//	dist.Result     worker → coordinator    the finished job's Record (JSON)
//	dist.Ack        coordinator → workers   receipt of a job's Record
//	dist.Heartbeat  worker → coordinator    liveness + slot occupancy
//
// Dispatch and result channels (dist.Job, dist.Claim, dist.Grant,
// dist.Result, dist.Ack) declare the backbone's Reliable delivery policy:
// each publisher holds a credit window per subscriber, so a saturated
// peer stalls the sender instead of a mailbox shedding distinct protocol
// messages. dist.Heartbeat declares LatestValue — each worker is its own
// virtual channel, so conflation keeps exactly the newest beat per
// worker. The window covers slow-consumer loss; the ack/re-send loop
// below stays for link-churn loss, which no window can see.
//
// The coordinator re-announces unassigned jobs on a short period, so a
// worker that joins mid-sweep still picks up work (the backbone's dynamic
// join finds the channels, the re-announce fills them). Claims race;
// the coordinator grants each (job, attempt) to exactly one worker and
// re-sends the grant on duplicate claims so losers release their bid.
// A granted job is re-dispatched — announced again with the next attempt
// number — when its worker misses heartbeats long enough to be declared
// dead, or when the job outlives JobTimeout. Results ride at-least-once
// delivery: the worker re-sends a finished job's Record until the
// coordinator acknowledges it on dist.Ack, because the backbone tears
// down virtual channels on link churn and a frame written just before a
// teardown is gone without either side erroring. The coordinator dedups:
// the first Record per job wins, stale attempts are accepted (the work
// is identical), duplicates are dropped and re-acked.
//
// Job payloads ship the scenario itself as scenario.MarshalSpec JSON, so
// a worker host needs no scenario library — the sweep's spec files never
// leave the coordinator.
//
// The work list itself can be incremental: Coordinator.RunStream pulls
// jobs from a JobSource and keeps at most CoordinatorConfig.Window of
// them in flight, so a procedural campaign (scenario/gen via codbatch
// -campaign) streams thousands of generated jobs through the sweep
// without materializing them up front. Run is RunStream over a
// materialized slice.
//
// Every run persists as one JSON-lines Record (scenario, seed, score,
// phase, sim/wall time, worker); Report aggregates pass rate and
// p50/p90/p99 percentiles, and Compare diffs two result files for
// regressions. cmd/codbatch wires the whole thing into -serve /
// -coordinator / -out / -compare flags.
//
// # Observability
//
// Both sides log through log/slog with structured fields (sweep, job,
// worker, attempt, span) — CoordinatorConfig.Log / WorkerConfig.Log;
// the legacy Logf hooks remain as a shim. Each job carries a trace-span
// ID minted at dispatch and threaded through announce, grant and the
// returned Record, with phase latencies (queue, dispatch, run, ack)
// recorded into an optional obs.Spans histogram — each phase is timed
// on a single machine's clock, so skew between hosts never distorts it.
// Coordinator.Sample and Worker.Sample expose live dispatch state for
// the obs sampler's codsim_dist_* gauges.
package dist

import (
	"fmt"

	"codsim/internal/scenario"
)

// Object classes of the dist protocol.
const (
	ClassJob       = "dist.Job"
	ClassClaim     = "dist.Claim"
	ClassGrant     = "dist.Grant"
	ClassResult    = "dist.Result"
	ClassAck       = "dist.Ack"
	ClassHeartbeat = "dist.Heartbeat"
)

// coordinatorLP is the coordinator's logical-process name on its node.
const coordinatorLP = "coordinator"

// Job is one unit of distributable work: a scenario to run once.
type Job struct {
	// ID is unique within the sweep. Seed tags which repeat of the sweep
	// the job belongs to, and is carried into the persisted Record;
	// today's runs are deterministic per spec (the runner does not
	// consume it — see DefaultRunner), so it exists for bookkeeping and
	// for future stochastic workloads (autopilot skill levels,
	// procedural scenario generation).
	ID   int64
	Seed int64
	Spec scenario.Spec
	// Span is the job's trace span ID, minted by the coordinator at
	// dispatch and threaded through to the worker and its Record so log
	// lines and phase-latency observations join on one key. Empty for
	// jobs that never crossed a coordinator (local batches).
	Span string
}

// JobsFor expands a spec selection into repeat sweeps of jobs with stable
// IDs and per-repeat seeds: job i of repeat r runs specs[i] with seed r+1.
func JobsFor(specs []scenario.Spec, repeat int) []Job {
	if repeat < 1 {
		repeat = 1
	}
	jobs := make([]Job, 0, len(specs)*repeat)
	for r := 0; r < repeat; r++ {
		for _, s := range specs {
			jobs = append(jobs, Job{
				ID:   int64(len(jobs)),
				Seed: int64(r + 1),
				Spec: s,
			})
		}
	}
	return jobs
}

// The wire messages. Field order is the codec contract (cod assigns
// attribute IDs positionally), so reordering fields here is a protocol
// break between mixed coordinator/worker builds.

// jobAnnounce advertises an unassigned (job, attempt) with its spec JSON.
// Span rides at the end: appended fields keep positional attribute IDs
// stable for the fields older builds know.
type jobAnnounce struct {
	Sweep   int64
	Job     int64
	Attempt int64
	Seed    int64
	Spec    []byte
	Span    string
}

// jobClaim is a worker's bid to run an announced job.
type jobClaim struct {
	Sweep   int64
	Job     int64
	Attempt int64
	Worker  string
}

// jobGrant assigns a claimed job to exactly one worker.
type jobGrant struct {
	Sweep   int64
	Job     int64
	Attempt int64
	Worker  string
}

// jobResult carries the finished job's Record as JSON.
type jobResult struct {
	Sweep   int64
	Job     int64
	Attempt int64
	Worker  string
	Record  []byte
}

// jobAck confirms the coordinator recorded (or already had) a job's
// Record, stopping the worker's re-sends.
type jobAck struct {
	Sweep int64
	Job   int64
}

// heartbeat is a worker's periodic liveness beacon. Working lists the
// jobs of Sweep the worker has accepted and still remembers (claimed,
// running, or finished): the coordinator uses it to detect a grant that
// never reached its worker — the grantee is alive and beating, yet never
// lists the job — and re-dispatch far sooner than JobTimeout.
type heartbeat struct {
	Worker  string
	Sweep   int64
	Slots   int64
	Busy    int64
	Working []int64
}

func (j Job) String() string {
	return fmt.Sprintf("job %d (%s, seed %d)", j.ID, j.Spec.Name, j.Seed)
}

// SkillSeed mixes the job's sweep seed (which repeat) and ID (which run
// within the repeat) into the per-run skill-jitter seed, so every run of
// a sweep flies a distinct — yet reproducible — trainee when the batch
// skill profile carries Jitter. Local and distributed execution of the
// same job derive the same seed, keeping their verdicts comparable.
func (j Job) SkillSeed() int64 { return j.Seed<<20 ^ j.ID }
