package dist

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"codsim/cod"
	"codsim/internal/scenario"
	"codsim/internal/sim"
)

// TestTrendAcrossSweeps stores three sweeps' JSONL files and checks the
// time-series rollup: per-scenario rows in file order with pass rate and
// p50 score, and the drift visible between sweeps.
func TestTrendAcrossSweeps(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, recs []Record) {
		t.Helper()
		if err := SaveRecords(filepath.Join(dir, name), recs); err != nil {
			t.Fatal(err)
		}
	}
	write("2026-07-01.jsonl", []Record{
		{Job: 0, Scenario: "classic-exam", Passed: true, Score: 90, Alarms: 2},
		{Job: 1, Scenario: "classic-exam", Passed: true, Score: 88},
		{Job: 2, Scenario: "tandem-beam", Passed: true, Score: 88},
	})
	write("2026-07-15.jsonl", []Record{
		{Job: 0, Scenario: "classic-exam", Passed: true, Score: 84},
		{Job: 1, Scenario: "classic-exam", Passed: false, Score: 40},
		{Job: 2, Scenario: "tandem-beam", Passed: true, Score: 92},
	})
	// A sweep with a different selection: missing scenarios must render
	// as absent, not as zero rows.
	write("2026-07-28.jsonl", []Record{
		{Job: 0, Scenario: "classic-exam", Passed: true, Score: 86},
	})

	sweeps, err := LoadSweepDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 3 || sweeps[0].Name != "2026-07-01" || sweeps[2].Name != "2026-07-28" {
		t.Fatalf("sweeps = %+v", sweeps)
	}
	if got := sweeps[1].Report.Total.Runs; got != 3 {
		t.Fatalf("sweep 2 runs = %d", got)
	}

	var sb strings.Builder
	WriteTrend(&sb, sweeps)
	out := sb.String()
	for _, want := range []string{
		"classic-exam", "tandem-beam", "TOTAL",
		"2026-07-01", "2026-07-15", "2026-07-28",
		"50% pass", // classic-exam's mid-sweep dip
		"(not in sweep)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trend output missing %q:\n%s", want, out)
		}
	}

	if _, err := LoadSweepDir(t.TempDir()); err == nil {
		t.Error("empty trend dir accepted")
	}
}

// TestRecordCarriesAlarms pins the instructor-alarm rollup: counts flow
// from BatchResult through the JSONL record into the per-scenario report
// group.
func TestRecordCarriesAlarms(t *testing.T) {
	res := sim.BatchResult{Scenario: "classic-exam", Passed: true, Alarms: 4}
	rec := NewRecord(Job{ID: 7}, res, "w1")
	if rec.Alarms != 4 {
		t.Fatalf("record alarms = %d", rec.Alarms)
	}
	rep := BuildReport([]Record{rec, {Scenario: "classic-exam", Alarms: 1}})
	if rep.Total.Alarms != 5 || rep.Scenarios[0].Alarms != 5 {
		t.Fatalf("report alarms = %d/%d", rep.Total.Alarms, rep.Scenarios[0].Alarms)
	}
	var sb strings.Builder
	WriteReport(&sb, rep)
	if !strings.Contains(sb.String(), "ALARMS") {
		t.Errorf("report table lacks the ALARMS column:\n%s", sb.String())
	}
}

// TestMemLANTandemSweep shards the two multi-crane scenarios over a
// MemLAN coordinator/worker pair running real headless federation jobs —
// the acceptance path proving tandem work flows through the dist
// machinery unchanged.
func TestMemLANTandemSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("real headless runs")
	}
	fed := cod.NewFederation(cod.WithLAN(cod.NewMemLAN()), fastTimers())
	defer fed.Close()

	wcfg := WorkerConfig{
		Slots:     2,
		Heartbeat: 25 * time.Millisecond,
		Batch:     sim.BatchConfig{Headless: true},
	}
	startWorker(t, fed, "w1", wcfg)

	cnode, err := fed.Node("coord-node")
	if err != nil {
		t.Fatal(err)
	}
	ccfg := fastCoordinator()
	ccfg.JobTimeout = 60 * time.Second
	coord, err := NewCoordinator(cnode, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := coord.WaitWorkers(ctx, []string{"w1"}); err != nil {
		t.Fatalf("WaitWorkers: %v", err)
	}
	specs := []scenario.Spec{scenario.TandemBeam(), scenario.TwinYard()}
	recs, err := coord.Run(ctx, JobsFor(specs, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	for _, r := range recs {
		if !r.Passed || r.Err != "" {
			t.Errorf("%s: passed=%v err=%q score=%.1f", r.Scenario, r.Passed, r.Err, r.Score)
		}
		if r.Phase != "complete" {
			t.Errorf("%s: phase %q", r.Scenario, r.Phase)
		}
	}
}
