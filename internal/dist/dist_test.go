package dist

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"codsim/cod"
	"codsim/internal/scenario"
	"codsim/internal/sim"
	"codsim/internal/transport"
)

// fastTimers keeps discovery and liveness snappy for in-process tests.
func fastTimers() cod.Option {
	return cod.WithTimers(5*time.Millisecond, 30*time.Millisecond, 10*time.Millisecond)
}

// fastCoordinator shortens every failure-detection knob for tests.
func fastCoordinator() CoordinatorConfig {
	return CoordinatorConfig{
		Sweep:       42,
		Announce:    15 * time.Millisecond,
		DeadAfter:   250 * time.Millisecond,
		JobTimeout:  10 * time.Second,
		MaxAttempts: 3,
	}
}

// stubRunner returns an instantly-passing record, optionally delayed.
func stubRunner(delay time.Duration) Runner {
	return func(ctx context.Context, job Job, _ sim.BatchConfig) Record {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
			}
		}
		return Record{
			Scenario: job.Spec.Name,
			Seed:     job.Seed,
			Passed:   true,
			Score:    100,
			Phase:    "complete",
		}
	}
}

// testJobs builds n jobs cycling through two cheap library specs.
func testJobs(n int) []Job {
	specs := []scenario.Spec{scenario.Classic(), scenario.BlindLift()}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{ID: int64(i), Seed: int64(i%3 + 1), Spec: specs[i%2]}
	}
	return jobs
}

// startWorker spawns a worker on its own node and returns a stop func.
func startWorker(t *testing.T, fed *cod.Federation, name string, cfg WorkerConfig) context.CancelFunc {
	t.Helper()
	node, err := fed.Node(name + "-node")
	if err != nil {
		t.Fatalf("worker node %s: %v", name, err)
	}
	cfg.Name = name
	w, err := NewWorker(node, cfg)
	if err != nil {
		t.Fatalf("worker %s: %v", name, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w.Run(ctx)
		_ = w.Close()
	}()
	t.Cleanup(func() { cancel(); wg.Wait() })
	return cancel
}

// TestCoordinatorWorkersMemLAN is the dist smoke: a coordinator and two
// in-process workers on one MemLAN run a 12-job sweep to completion.
func TestCoordinatorWorkersMemLAN(t *testing.T) {
	fed := cod.NewFederation(cod.WithLAN(cod.NewMemLAN()), fastTimers())
	defer fed.Close()

	wcfg := WorkerConfig{
		Slots:     2,
		Heartbeat: 25 * time.Millisecond,
		Run:       stubRunner(5 * time.Millisecond),
	}
	startWorker(t, fed, "w1", wcfg)
	startWorker(t, fed, "w2", wcfg)

	cnode, err := fed.Node("coord-node")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(cnode, fastCoordinator())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitWorkers(ctx, []string{"w1", "w2"}); err != nil {
		t.Fatalf("WaitWorkers: %v", err)
	}

	jobs := testJobs(12)
	recs, err := coord.Run(ctx, jobs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(recs) != 12 {
		t.Fatalf("records = %d, want 12", len(recs))
	}
	workers := map[string]int{}
	for i, r := range recs {
		if r.Job != int64(i) {
			t.Errorf("record %d: job %d (records must come back sorted)", i, r.Job)
		}
		if !r.Passed || r.Err != "" {
			t.Errorf("job %d: passed=%v err=%q", r.Job, r.Passed, r.Err)
		}
		if r.Scenario != jobs[i].Spec.Name || r.Seed != jobs[i].Seed {
			t.Errorf("job %d: scenario %s seed %d, want %s/%d",
				r.Job, r.Scenario, r.Seed, jobs[i].Spec.Name, jobs[i].Seed)
		}
		workers[r.Worker]++
	}
	for w := range workers {
		if w != "w1" && w != "w2" {
			t.Errorf("record from unknown worker %q", w)
		}
	}
}

// TestRedispatchOnWorkerDeath kills one of two workers mid-sweep — its
// runner never finishes — and asserts its granted jobs are re-dispatched
// to the survivor so the final report is complete.
func TestRedispatchOnWorkerDeath(t *testing.T) {
	fed := cod.NewFederation(cod.WithLAN(cod.NewMemLAN()), fastTimers())
	defer fed.Close()

	// The victim's runner blocks until the worker dies, so every job it
	// is granted is only recoverable through re-dispatch.
	victimStarted := make(chan int64, 16)
	victimRun := func(ctx context.Context, job Job, _ sim.BatchConfig) Record {
		victimStarted <- job.ID
		<-ctx.Done()
		return Record{Scenario: job.Spec.Name}
	}
	killVictim := startWorker(t, fed, "victim", WorkerConfig{
		Slots:     2,
		Heartbeat: 25 * time.Millisecond,
		Run:       victimRun,
	})
	startWorker(t, fed, "survivor", WorkerConfig{
		Slots:     2,
		Heartbeat: 25 * time.Millisecond,
		Run:       stubRunner(20 * time.Millisecond),
	})

	cnode, err := fed.Node("coord-node")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(cnode, fastCoordinator())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitWorkers(ctx, []string{"victim", "survivor"}); err != nil {
		t.Fatalf("WaitWorkers: %v", err)
	}

	// Kill the victim as soon as it has been granted its first job.
	go func() {
		select {
		case <-victimStarted:
			killVictim()
		case <-ctx.Done():
		}
	}()

	recs, err := coord.Run(ctx, testJobs(12))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(recs) != 12 {
		t.Fatalf("records = %d, want 12 (report must be complete)", len(recs))
	}
	redispatched := 0
	for _, r := range recs {
		if !r.Passed || r.Err != "" {
			t.Errorf("job %d: passed=%v err=%q worker=%s", r.Job, r.Passed, r.Err, r.Worker)
		}
		if r.Worker != "survivor" {
			t.Errorf("job %d: worker %q, want survivor (victim can never finish)", r.Job, r.Worker)
		}
		if r.Attempt > 1 {
			redispatched++
		}
	}
	if redispatched == 0 {
		t.Error("no job carries attempt > 1: the victim's grants were not re-dispatched")
	}
}

// TestUDPLANSweepMatchesLocal is the acceptance sweep: the whole library
// × 5 repeats of headless jobs sharded across two workers over a real
// UDPLAN loopback segment, with each participant attaching through its
// own UDPLAN instance exactly like separate OS processes would. The dist
// verdicts must match a local sim.RunBatch of the same specs, and the
// persisted JSONL must aggregate into a complete report.
func TestUDPLANSweepMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-library headless scenario sweep")
	}
	const (
		host  = "127.0.0.1"
		slots = 8
	)
	base, err := transport.FreeUDPSegment(host, slots)
	if err != nil {
		t.Fatal(err)
	}
	segment := func() transport.LAN {
		lan, err := transport.NewUDPLAN(host, base, slots)
		if err != nil {
			t.Fatal(err)
		}
		return lan
	}

	batch := sim.BatchConfig{Headless: true}
	wcfg := WorkerConfig{
		Slots:     3,
		Heartbeat: 50 * time.Millisecond,
		Batch:     batch, // DefaultRunner: the real headless simulator
	}
	// Discovery stays fast but link-death detection gets real margins:
	// with six concurrent sims starving the scheduler, the MemLAN-test
	// timers' 40 ms heartbeat timeout would churn links constantly.
	timers := cod.WithTimers(10*time.Millisecond, 50*time.Millisecond, 100*time.Millisecond)
	for _, name := range []string{"w1", "w2"} {
		node, err := cod.NewNode(name+"-node", cod.WithLAN(segment()), timers)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		cfg := wcfg
		cfg.Name = name
		cfg.Logf = t.Logf
		w, err := NewWorker(node, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
			_ = w.Close()
		}()
		defer func() { cancel(); wg.Wait() }()
	}

	cnode, err := cod.NewNode("coord-node", cod.WithLAN(segment()), timers)
	if err != nil {
		t.Fatal(err)
	}
	defer cnode.Close()
	// Wide failure-detection margins: under the race detector six
	// concurrent headless sims starve the worker loops, and a spurious
	// death verdict here would burn attempts on perfectly live workers.
	ccfg := fastCoordinator()
	ccfg.DeadAfter = 5 * time.Second
	ccfg.JobTimeout = 30 * time.Second
	ccfg.MaxAttempts = 5
	ccfg.Logf = t.Logf
	coord, err := NewCoordinator(cnode, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := coord.WaitWorkers(ctx, []string{"w1", "w2"}); err != nil {
		t.Fatalf("WaitWorkers: %v", err)
	}

	jobs := JobsFor(scenario.Library(), 5)
	want := len(scenario.Library()) * 5
	if len(jobs) != want {
		t.Fatalf("jobs = %d, want %d", len(jobs), want)
	}
	recs, err := coord.Run(ctx, jobs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(recs) != want {
		t.Fatalf("records = %d, want %d", len(recs), want)
	}

	// The same specs locally, through the same headless path.
	local := sim.RunBatch(ctx, scenario.Library(), batch)
	verdict := make(map[string]bool, len(local))
	for _, r := range local {
		verdict[r.Scenario] = r.Passed
	}
	workers := map[string]int{}
	for _, r := range recs {
		want, known := verdict[r.Scenario]
		if !known {
			t.Errorf("job %d: unknown scenario %q", r.Job, r.Scenario)
			continue
		}
		if r.Passed != want {
			t.Errorf("job %d (%s, seed %d): dist passed=%v, local=%v",
				r.Job, r.Scenario, r.Seed, r.Passed, want)
		}
		workers[r.Worker]++
	}
	if len(workers) < 2 {
		t.Errorf("sweep was not sharded: all records from %v", workers)
	}

	// Persist and aggregate, end to end.
	path := t.TempDir() + "/results.jsonl"
	if err := SaveRecords(path, recs); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(loaded)
	if rep.Total.Runs != want || len(rep.Scenarios) != len(scenario.Library()) {
		t.Fatalf("report: %d runs, %d scenarios", rep.Total.Runs, len(rep.Scenarios))
	}
	for _, g := range rep.Scenarios {
		if g.Runs != 5 {
			t.Errorf("%s: %d runs, want 5", g.Scenario, g.Runs)
		}
	}
	var sb strings.Builder
	WriteReport(&sb, rep)
	if !strings.Contains(sb.String(), "TOTAL") {
		t.Errorf("report:\n%s", sb.String())
	}
	t.Logf("\n%s", sb.String())
}

// TestCoordinatorGivesUpAfterMaxAttempts pins the synthetic-failure path:
// with only a black-hole worker on the segment, every job must come back
// as a failed record instead of hanging the sweep.
func TestCoordinatorGivesUpAfterMaxAttempts(t *testing.T) {
	fed := cod.NewFederation(cod.WithLAN(cod.NewMemLAN()), fastTimers())
	defer fed.Close()

	// Claims and heartbeats flow, but no result ever comes back.
	blackhole := func(ctx context.Context, job Job, _ sim.BatchConfig) Record {
		<-ctx.Done()
		return Record{}
	}
	startWorker(t, fed, "blackhole", WorkerConfig{
		Slots:     4,
		Heartbeat: 25 * time.Millisecond,
		Run:       blackhole,
	})

	cnode, err := fed.Node("coord-node")
	if err != nil {
		t.Fatal(err)
	}
	ccfg := fastCoordinator()
	ccfg.JobTimeout = 150 * time.Millisecond
	ccfg.MaxAttempts = 2
	coord, err := NewCoordinator(cnode, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitWorkers(ctx, []string{"blackhole"}); err != nil {
		t.Fatal(err)
	}
	recs, err := coord.Run(ctx, testJobs(3))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	for _, r := range recs {
		if r.Passed || !strings.Contains(r.Err, "gave up") {
			t.Errorf("job %d: %+v, want a gave-up failure", r.Job, r)
		}
	}
}

// TestCoordinatorRunCancel returns partial records and ctx.Err on cancel.
func TestCoordinatorRunCancel(t *testing.T) {
	fed := cod.NewFederation(cod.WithLAN(cod.NewMemLAN()), fastTimers())
	defer fed.Close()

	cnode, err := fed.Node("coord-node")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(cnode, fastCoordinator())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	recs, err := coord.Run(ctx, testJobs(2)) // no workers: nothing completes
	if err == nil {
		t.Fatal("Run returned nil error with no workers")
	}
	if len(recs) != 0 {
		t.Errorf("records = %+v, want none", recs)
	}
}

// TestWorkerSurvivesCoordinatorRestart runs two sweeps against the same
// standing worker pool — the second coordinator has a new sweep ID and
// reuses job IDs, which must not collide with the first sweep's state.
func TestWorkerSurvivesCoordinatorRestart(t *testing.T) {
	fed := cod.NewFederation(cod.WithLAN(cod.NewMemLAN()), fastTimers())
	defer fed.Close()

	startWorker(t, fed, "w1", WorkerConfig{
		Slots:     2,
		Heartbeat: 25 * time.Millisecond,
		Run:       stubRunner(time.Millisecond),
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for sweep := int64(1); sweep <= 2; sweep++ {
		cnode, err := fed.Node(fmt.Sprintf("coord-%d", sweep))
		if err != nil {
			t.Fatal(err)
		}
		ccfg := fastCoordinator()
		ccfg.Sweep = sweep
		coord, err := NewCoordinator(cnode, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.WaitWorkers(ctx, []string{"w1"}); err != nil {
			t.Fatalf("sweep %d: WaitWorkers: %v", sweep, err)
		}
		recs, err := coord.Run(ctx, testJobs(4))
		if err != nil {
			t.Fatalf("sweep %d: %v", sweep, err)
		}
		if len(recs) != 4 {
			t.Fatalf("sweep %d: records = %d", sweep, len(recs))
		}
		for _, r := range recs {
			if !r.Passed {
				t.Errorf("sweep %d job %d: %+v", sweep, r.Job, r)
			}
		}
		_ = coord.Close()
		_ = cnode.Close()
	}
}
