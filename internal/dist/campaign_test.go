package dist

import (
	"context"
	"testing"
	"time"

	"codsim/cod"
	"codsim/internal/scenario"
	"codsim/internal/scenario/gen"
	"codsim/internal/sim"
)

// streamSource feeds a bounded number of generated scenarios into a
// coordinator — the same adapter shape codbatch's -campaign mode uses.
type streamSource struct {
	s       *gen.Stream
	count   int
	emitted int
}

func (ss *streamSource) Next(ctx context.Context) (Job, bool, error) {
	if ss.emitted >= ss.count {
		return Job{}, false, nil
	}
	spec, cand, err := ss.s.Next(ctx)
	if err != nil {
		return Job{}, false, err
	}
	j := Job{ID: int64(ss.emitted), Seed: cand, Spec: spec}
	ss.emitted++
	return j, true, nil
}

// TestCampaignStreamMemLAN runs a 50-job generated campaign through the
// coordinator with a dispatch window far smaller than the sweep — jobs
// are pulled from the generator as results free slots, never materialized
// up front — and cross-checks every distributed verdict against a local
// sim.RunBatch of the same specs. The StaticOnly oracle keeps the stream
// cheap; the workers' DefaultRunner does the real flying.
func TestCampaignStreamMemLAN(t *testing.T) {
	if testing.Short() {
		t.Skip("50 headless runs in -short")
	}
	fed := cod.NewFederation(cod.WithLAN(cod.NewMemLAN()), fastTimers())
	defer fed.Close()

	// Heartbeat also scales the worker's claim TTL (4x): under -race on a
	// loaded single core a grant can take hundreds of milliseconds to
	// reach its claimant, and an expired claim burns an attempt via the
	// coordinator's lost-grant detector. Generous liveness knobs keep the
	// test about streaming, not failure detection.
	wcfg := WorkerConfig{
		Slots:     2,
		Heartbeat: 250 * time.Millisecond,
		Batch:     sim.BatchConfig{Headless: true},
	}
	startWorker(t, fed, "w1", wcfg)
	startWorker(t, fed, "w2", wcfg)

	cnode, err := fed.Node("coord-node")
	if err != nil {
		t.Fatal(err)
	}
	ccfg := fastCoordinator()
	ccfg.Window = 8
	// This test exercises windowed streaming, not timeout redispatch:
	// under -race on a loaded single core a legitimate headless run can
	// outlive fastCoordinator's 10 s budget, and a spurious redispatch
	// would burn MaxAttempts on a healthy job.
	ccfg.JobTimeout = 90 * time.Second
	ccfg.DeadAfter = 10 * time.Second
	coord, err := NewCoordinator(cnode, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
	defer cancel()
	if err := coord.WaitWorkers(ctx, []string{"w1", "w2"}); err != nil {
		t.Fatalf("WaitWorkers: %v", err)
	}

	const count = 50
	stream := gen.NewStream(1234, gen.DefaultParams())
	stream.Oracle = gen.StaticOnly
	recs, err := coord.RunStream(ctx, &streamSource{s: stream, count: count})
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	if len(recs) != count {
		t.Fatalf("records = %d, want %d", len(recs), count)
	}

	// Rebuild the identical job list locally (same seed, same oracle) and
	// fly it in-process: every distributed verdict must match.
	replay := gen.NewStream(1234, gen.DefaultParams())
	replay.Oracle = gen.StaticOnly
	specs := make([]scenario.Spec, count)
	for i := range specs {
		spec, cand, err := replay.Next(ctx)
		if err != nil {
			t.Fatalf("replay emit %d: %v", i, err)
		}
		if recs[i].Seed != cand {
			t.Fatalf("job %d: dispatched candidate %d, replay candidate %d — stream not reproducible", i, recs[i].Seed, cand)
		}
		if recs[i].Scenario != spec.Name {
			t.Fatalf("job %d: dispatched %q, replay %q", i, recs[i].Scenario, spec.Name)
		}
		specs[i] = spec
	}
	// The StaticOnly stream admits some specs the expert cannot finish, so
	// the sweep carries a pass/fail mix — the verdicts (not just the
	// passes) must agree run for run.
	local := sim.RunBatch(ctx, specs, sim.BatchConfig{Headless: true, Parallel: 4})
	fails := 0
	for i, r := range recs {
		if r.Passed != local[i].Passed {
			t.Errorf("job %d (%s): dist passed=%v (err %q) local passed=%v (err %v)",
				i, r.Scenario, r.Passed, r.Err, local[i].Passed, local[i].Err)
		}
		if !r.Passed {
			fails++
		}
	}
	t.Logf("%d/%d generated jobs failed under the free oracle (verdicts all matched)", fails, count)
}
