package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"codsim/internal/sim"
)

// Record is one scenario run's persisted outcome: the JSON-lines row the
// batch layers write for every job, local or distributed. One line per
// run keeps result files append-only and diffable across sweeps.
type Record struct {
	Job      int64   `json:"job"`
	Attempt  int64   `json:"attempt,omitempty"`
	Scenario string  `json:"scenario"`
	Title    string  `json:"title,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Worker   string  `json:"worker,omitempty"`
	Passed   bool    `json:"passed"`
	Score    float64 `json:"score"`
	Phase    string  `json:"phase"`
	SimSec   float64 `json:"sim_sec"`
	WallSec  float64 `json:"wall_sec"`
	// Alarms is the instructor-side misconduct count of the run: alarm
	// lamps lit (safety alarms plus collisions) across every crane.
	Alarms int64  `json:"alarms,omitempty"`
	Err    string `json:"err,omitempty"`
	// Span is the job's trace span ID; QueueMS is the coordinator-side
	// load→grant wait and DispatchMS the worker-side claim→grant latency
	// of the attempt that produced this record. All three are absent for
	// local (non-dist) runs.
	Span       string  `json:"span,omitempty"`
	QueueMS    float64 `json:"queue_ms,omitempty"`
	DispatchMS float64 `json:"dispatch_ms,omitempty"`
}

// NewRecord converts one sim.BatchResult into its persisted form.
func NewRecord(job Job, res sim.BatchResult, worker string) Record {
	r := Record{
		Job:      job.ID,
		Scenario: res.Scenario,
		Title:    res.Title,
		Seed:     job.Seed,
		Worker:   worker,
		Passed:   res.Passed,
		Score:    res.State.Score,
		Phase:    res.State.Phase.String(),
		SimSec:   res.State.Elapsed,
		WallSec:  res.Wall.Seconds(),
		Alarms:   int64(res.Alarms),
	}
	if res.Err != nil {
		r.Err = res.Err.Error()
	}
	return r
}

// WriteRecords appends the records to w, one JSON object per line.
func WriteRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode terminates each record with \n
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("dist: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadRecords parses a JSON-lines result stream; blank lines are skipped.
func ReadRecords(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("dist: results line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dist: read results: %w", err)
	}
	return recs, nil
}

// marshalRecord / unmarshalRecord are the dist protocol's result payload
// codec — the same JSON one Record occupies as a line of a result file.
func marshalRecord(rec Record) ([]byte, error) { return json.Marshal(rec) }

func unmarshalRecord(data []byte, rec *Record) error { return json.Unmarshal(data, rec) }

// LoadRecords reads a JSON-lines result file.
func LoadRecords(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	defer f.Close()
	recs, err := ReadRecords(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// SaveRecords writes a JSON-lines result file, replacing any previous one.
func SaveRecords(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	if err := WriteRecords(f, recs); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Stats are nearest-rank percentiles over one metric of a record group.
type Stats struct {
	P50, P90, P99 float64
}

// statsOf computes nearest-rank percentiles; the zero Stats for no data.
func statsOf(vals []float64) Stats {
	if len(vals) == 0 {
		return Stats{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	rank := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return Stats{P50: rank(0.50), P90: rank(0.90), P99: rank(0.99)}
}

// Group aggregates the records of one scenario (or of a whole sweep).
type Group struct {
	Scenario string // empty for the sweep-wide total
	Runs     int
	Passed   int
	Errors   int
	Alarms   int64 // instructor alarm lamps lit, summed over the runs
	Score    Stats // final score percentiles
	Wall     Stats // wall-clock seconds percentiles
	Sim      Stats // simulated seconds percentiles
	Dispatch Stats // dispatch-latency (ms) percentiles, dist sweeps only
}

// PassRate returns the group's pass fraction in [0, 1].
func (g Group) PassRate() float64 {
	if g.Runs == 0 {
		return 0
	}
	return float64(g.Passed) / float64(g.Runs)
}

// Report aggregates a result set: per-scenario groups plus the sweep-wide
// total, the analytics layer over repeated sweeps.
type Report struct {
	Total     Group
	Scenarios []Group // sorted by scenario name
}

// BuildReport groups records by scenario and computes pass rates and
// score/duration percentiles.
func BuildReport(recs []Record) Report {
	byName := make(map[string][]Record)
	for _, r := range recs {
		byName[r.Scenario] = append(byName[r.Scenario], r)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)

	rep := Report{Total: groupOf("", recs)}
	for _, n := range names {
		rep.Scenarios = append(rep.Scenarios, groupOf(n, byName[n]))
	}
	return rep
}

func groupOf(name string, recs []Record) Group {
	g := Group{Scenario: name, Runs: len(recs)}
	scores := make([]float64, 0, len(recs))
	walls := make([]float64, 0, len(recs))
	sims := make([]float64, 0, len(recs))
	var disp []float64
	for _, r := range recs {
		if r.Passed {
			g.Passed++
		}
		if r.Err != "" {
			g.Errors++
		}
		g.Alarms += r.Alarms
		scores = append(scores, r.Score)
		walls = append(walls, r.WallSec)
		sims = append(sims, r.SimSec)
		// Only dist records carry dispatch latency; a mixed or local
		// result set must not drag the percentiles to zero.
		if r.DispatchMS > 0 || r.Span != "" {
			disp = append(disp, r.DispatchMS)
		}
	}
	g.Score = statsOf(scores)
	g.Wall = statsOf(walls)
	g.Sim = statsOf(sims)
	g.Dispatch = statsOf(disp)
	return g
}

// WriteReport renders the aggregate table. The dispatch-latency column
// only appears when some record carried it — local sweeps keep the
// narrow table.
func WriteReport(w io.Writer, rep Report) {
	withDispatch := rep.Total.Dispatch != Stats{}
	fmt.Fprintf(w, "%-18s %5s %6s %7s %7s  %-17s %-17s",
		"SCENARIO", "RUNS", "PASS%", "ERRORS", "ALARMS", "SCORE p50/90/99", "WALL-S p50/90/99")
	if withDispatch {
		fmt.Fprintf(w, " %-13s", "DISP-MS p50/99")
	}
	fmt.Fprintln(w)
	line := func(g Group) {
		fmt.Fprintf(w, "%-18s %5d %5.0f%% %7d %7d  %5.1f/%5.1f/%5.1f %5.1f/%5.1f/%5.1f",
			g.Scenario, g.Runs, g.PassRate()*100, g.Errors, g.Alarms,
			g.Score.P50, g.Score.P90, g.Score.P99,
			g.Wall.P50, g.Wall.P90, g.Wall.P99)
		if withDispatch {
			fmt.Fprintf(w, " %6.1f/%6.1f", g.Dispatch.P50, g.Dispatch.P99)
		}
		fmt.Fprintln(w)
	}
	for _, g := range rep.Scenarios {
		line(g)
	}
	total := rep.Total
	total.Scenario = "TOTAL"
	line(total)
}

// Regression is one scenario whose results got worse between two sweeps.
type Regression struct {
	Scenario string
	Reason   string
}

// scoreTolerance is how far a scenario's p50 score may drop between
// sweeps before Compare flags it: half a bar-hit deduction, enough slack
// for overtime jitter but not for a new collision.
const scoreTolerance = 5.0

// Compare diffs two result sets by scenario and reports regressions: a
// lower pass rate, or a p50 score drop beyond scoreTolerance. Scenarios
// present in only one set are skipped — a changed selection is not a
// regression.
func Compare(old, cur []Record) []Regression {
	oldRep := BuildReport(old)
	curRep := BuildReport(cur)
	oldBy := make(map[string]Group, len(oldRep.Scenarios))
	for _, g := range oldRep.Scenarios {
		oldBy[g.Scenario] = g
	}
	var regs []Regression
	for _, g := range curRep.Scenarios {
		o, ok := oldBy[g.Scenario]
		if !ok {
			continue
		}
		if g.PassRate() < o.PassRate() {
			regs = append(regs, Regression{
				Scenario: g.Scenario,
				Reason: fmt.Sprintf("pass rate %d/%d → %d/%d",
					o.Passed, o.Runs, g.Passed, g.Runs),
			})
			continue
		}
		if g.Score.P50 < o.Score.P50-scoreTolerance {
			regs = append(regs, Regression{
				Scenario: g.Scenario,
				Reason: fmt.Sprintf("p50 score %.1f → %.1f",
					o.Score.P50, g.Score.P50),
			})
		}
	}
	return regs
}

// WriteCompare renders the regression diff and returns how many scenarios
// regressed (nonzero means the new sweep is worse).
func WriteCompare(w io.Writer, old, cur []Record) int {
	regs := Compare(old, cur)
	if len(regs) == 0 {
		fmt.Fprintf(w, "no regressions across %d scenarios\n", len(BuildReport(cur).Scenarios))
		return 0
	}
	for _, r := range regs {
		fmt.Fprintf(w, "REGRESSION %-18s %s\n", r.Scenario, r.Reason)
	}
	return len(regs)
}
