package dist

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"codsim/internal/fom"
	"codsim/internal/scenario"
	"codsim/internal/sim"
)

func TestRecordRoundTripJSONL(t *testing.T) {
	job := Job{ID: 7, Seed: 3, Spec: scenario.Classic()}
	res := sim.BatchResult{
		Scenario: "classic-exam",
		Title:    "Licensing exam",
		State:    fom.ScenarioState{Phase: fom.PhaseComplete, Score: 87.5, Elapsed: 401.2},
		Passed:   true,
		Wall:     1500 * time.Millisecond,
	}
	recs := []Record{
		NewRecord(job, res, "worker-1"),
		{Job: 8, Scenario: "blind-lift", Phase: "failed", Err: "boom"},
	}
	if recs[0].Phase != "complete" || !recs[0].Passed || recs[0].Seed != 3 {
		t.Fatalf("NewRecord = %+v", recs[0])
	}

	path := filepath.Join(t.TempDir(), "results.jsonl")
	if err := SaveRecords(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, recs)
	}
}

func TestRecordFromError(t *testing.T) {
	rec := NewRecord(Job{ID: 1}, sim.BatchResult{
		Scenario: "x", Err: errors.New("build: no such node"),
	}, "w")
	if rec.Err != "build: no such node" || rec.Passed {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestStatsNearestRank(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..100
	}
	s := statsOf(vals)
	if s.P50 != 50 || s.P90 != 90 || s.P99 != 99 {
		t.Errorf("percentiles over 1..100 = %+v", s)
	}
	one := statsOf([]float64{42})
	if one.P50 != 42 || one.P99 != 42 {
		t.Errorf("single sample = %+v", one)
	}
	if z := statsOf(nil); z != (Stats{}) {
		t.Errorf("empty = %+v", z)
	}
}

func TestBuildReportAndWrite(t *testing.T) {
	var recs []Record
	for i := 0; i < 10; i++ {
		recs = append(recs,
			Record{Scenario: "a", Passed: true, Score: float64(80 + i), WallSec: 1},
			Record{Scenario: "b", Passed: i < 5, Score: float64(50 + i), WallSec: 2, Err: ""},
		)
	}
	rep := BuildReport(recs)
	if rep.Total.Runs != 20 || rep.Total.Passed != 15 {
		t.Fatalf("total = %+v", rep.Total)
	}
	if len(rep.Scenarios) != 2 || rep.Scenarios[0].Scenario != "a" || rep.Scenarios[1].Scenario != "b" {
		t.Fatalf("scenarios = %+v", rep.Scenarios)
	}
	if got := rep.Scenarios[1].PassRate(); got != 0.5 {
		t.Errorf("b pass rate = %v", got)
	}
	if rep.Scenarios[0].Score.P50 != 84 {
		t.Errorf("a p50 = %v", rep.Scenarios[0].Score.P50)
	}

	var sb strings.Builder
	WriteReport(&sb, rep)
	out := sb.String()
	for _, want := range []string{"SCENARIO", "TOTAL", "a", "b", "75%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := []Record{
		{Scenario: "a", Passed: true, Score: 90},
		{Scenario: "a", Passed: true, Score: 92},
		{Scenario: "b", Passed: true, Score: 88},
		{Scenario: "gone", Passed: true, Score: 70},
	}
	cur := []Record{
		{Scenario: "a", Passed: true, Score: 91},
		{Scenario: "a", Passed: false, Score: 30, Err: "tip-over"}, // pass-rate drop
		{Scenario: "b", Passed: true, Score: 70},                   // score drop > tolerance
		{Scenario: "new", Passed: false, Score: 0},                 // not in old: skipped
	}
	regs := Compare(old, cur)
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v", regs)
	}
	if regs[0].Scenario != "a" || !strings.Contains(regs[0].Reason, "pass rate") {
		t.Errorf("regs[0] = %+v", regs[0])
	}
	if regs[1].Scenario != "b" || !strings.Contains(regs[1].Reason, "p50 score") {
		t.Errorf("regs[1] = %+v", regs[1])
	}

	var sb strings.Builder
	if n := WriteCompare(&sb, old, cur); n != 2 {
		t.Errorf("WriteCompare = %d:\n%s", n, sb.String())
	}
	if n := WriteCompare(&sb, old, old); n != 0 {
		t.Errorf("self-compare regressed: %d", n)
	}
}

func TestJobsFor(t *testing.T) {
	specs := []scenario.Spec{scenario.Classic(), scenario.BlindLift()}
	jobs := JobsFor(specs, 3)
	if len(jobs) != 6 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for i, j := range jobs {
		if j.ID != int64(i) {
			t.Errorf("job %d: ID %d", i, j.ID)
		}
		if want := int64(i/2 + 1); j.Seed != want {
			t.Errorf("job %d: seed %d, want %d", i, j.Seed, want)
		}
		if j.Spec.Name != specs[i%2].Name {
			t.Errorf("job %d: spec %s", i, j.Spec.Name)
		}
	}
}
