package dist

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"codsim/cod"
	"codsim/internal/obs"
)

// TestObsLiveSweepScrape drives a full MemLAN sweep with the telemetry
// plane attached and scrapes /metrics concurrently the whole time — under
// -race this doubles as the data-race check on the sampler, the span
// recorder, and the Sample() snapshots. Afterwards it asserts the core
// series the CI smoke greps for, and that every record came home with a
// span and phase latencies.
func TestObsLiveSweepScrape(t *testing.T) {
	fed := cod.NewFederation(cod.WithLAN(cod.NewMemLAN()), fastTimers())
	defer fed.Close()

	reg := obs.NewRegistry()
	spans := obs.NewSpans(reg)
	sampler := obs.NewSampler(reg, 5*time.Millisecond)
	server := obs.NewServer(reg)

	wnode, err := fed.Node("w1-node")
	if err != nil {
		t.Fatal(err)
	}
	worker, err := NewWorker(wnode, WorkerConfig{
		Name:      "w1",
		Slots:     2,
		Heartbeat: 25 * time.Millisecond,
		Run:       stubRunner(5 * time.Millisecond),
		Spans:     spans,
	})
	if err != nil {
		t.Fatal(err)
	}
	wctx, stopWorker := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = worker.Run(wctx)
		_ = worker.Close()
	}()
	defer wg.Wait()
	defer stopWorker()

	cnode, err := fed.Node("coord-node")
	if err != nil {
		t.Fatal(err)
	}
	ccfg := fastCoordinator()
	ccfg.Spans = spans
	coord, err := NewCoordinator(cnode, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	sampler.AddNode("w1-node", wnode)
	sampler.AddNode("coord-node", cnode)
	sampler.AddDispatch(worker.Sample)
	sampler.AddDispatch(coord.Sample)
	server.AddNode("w1-node", wnode)
	sampler.Start()
	defer sampler.Stop()

	ts := httptest.NewServer(server.Handler())
	defer ts.Close()
	scrape := func() string {
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Errorf("scrape: %v", err)
			return ""
		}
		defer resp.Body.Close()
		var b strings.Builder
		if _, err := io.Copy(&b, resp.Body); err != nil {
			t.Errorf("scrape read: %v", err)
		}
		return b.String()
	}

	// Hammer /metrics (and /debug/tablez) while the sweep runs.
	scrapeCtx, stopScrapes := context.WithCancel(context.Background())
	var scrapers sync.WaitGroup
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for scrapeCtx.Err() == nil {
			scrape()
			resp, err := ts.Client().Get(ts.URL + "/debug/tablez")
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitWorkers(ctx, []string{"w1"}); err != nil {
		t.Fatalf("WaitWorkers: %v", err)
	}
	recs, err := coord.Run(ctx, testJobs(8))
	stopScrapes()
	scrapers.Wait()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(recs) != 8 {
		t.Fatalf("got %d records, want 8", len(recs))
	}
	for _, r := range recs {
		if r.Span == "" {
			t.Errorf("job %d: record has no span ID", r.Job)
		}
		if r.QueueMS < 0 || r.DispatchMS < 0 {
			t.Errorf("job %d: negative phase latency queue=%v dispatch=%v",
				r.Job, r.QueueMS, r.DispatchMS)
		}
	}

	sampler.SampleOnce() // final pass so the last scrape sees the sweep's end state
	out := scrape()
	for _, want := range []string{
		"codsim_cb_channel_frames_total{",
		`codsim_dist_jobs{role="coordinator",state="done"} 8`,
		`codsim_dist_jobs{role="worker",state="finished"} 8`,
		`codsim_dist_worker{worker="w1",stat="done"} 8`,
		`codsim_job_phase_seconds_count{phase="queue"} 8`,
		`codsim_job_phase_seconds_count{phase="dispatch"} 8`,
		`codsim_job_phase_seconds_count{phase="run"} 8`,
		"codsim_job_phase_seconds_bucket{",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("final scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("final scrape:\n%s", out)
	}
}
