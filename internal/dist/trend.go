package dist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Sweep is one stored result file inside a trend directory: its label
// (the file name without extension) and the aggregated report.
type Sweep struct {
	Name   string
	Report Report
}

// LoadSweepDir reads every *.jsonl file of a directory as one sweep, in
// filename order — name sweep files sortably (timestamps, CI run
// numbers) and the order is the time axis.
func LoadSweepDir(dir string) ([]Sweep, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".jsonl") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("dist: no *.jsonl files in %s", dir)
	}
	sweeps := make([]Sweep, 0, len(files))
	for _, f := range files {
		recs, err := LoadRecords(filepath.Join(dir, f))
		if err != nil {
			return nil, err
		}
		sweeps = append(sweeps, Sweep{
			Name:   strings.TrimSuffix(f, ".jsonl"),
			Report: BuildReport(recs),
		})
	}
	return sweeps, nil
}

// WriteTrend renders the time-series view over many stored sweeps: one
// block per scenario (union of all sweeps, sorted), one row per sweep
// with its pass rate and p50 score, so drifts stand out as a column you
// can read top to bottom. A trailing TOTAL block tracks the sweep-wide
// rollup.
func WriteTrend(w io.Writer, sweeps []Sweep) {
	names := make(map[string]bool)
	for _, s := range sweeps {
		for _, g := range s.Report.Scenarios {
			names[g.Scenario] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	width := 10
	for _, s := range sweeps {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	row := func(label string, g Group, present bool) {
		if !present {
			fmt.Fprintf(w, "  %-*s %s\n", width, label, "(not in sweep)")
			return
		}
		fmt.Fprintf(w, "  %-*s %3d runs  %4.0f%% pass  p50 score %5.1f  %d alarms\n",
			width, label, g.Runs, g.PassRate()*100, g.Score.P50, g.Alarms)
	}
	find := func(rep Report, name string) (Group, bool) {
		for _, g := range rep.Scenarios {
			if g.Scenario == name {
				return g, true
			}
		}
		return Group{}, false
	}
	for _, name := range sorted {
		fmt.Fprintf(w, "%s\n", name)
		for _, s := range sweeps {
			g, ok := find(s.Report, name)
			row(s.Name, g, ok)
		}
	}
	fmt.Fprintln(w, "TOTAL")
	for _, s := range sweeps {
		row(s.Name, s.Report.Total, true)
	}
}
