package mathx

import "math"

// Mat4 is a row-major 4×4 matrix. Element m[r][c] sits at index r*4+c.
// Vectors transform as column vectors: out = M · v.
type Mat4 [16]float64

// Identity4 returns the 4×4 identity matrix.
func Identity4() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// MulM returns the matrix product m · n.
func (m Mat4) MulM(n Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			var sum float64
			for k := 0; k < 4; k++ {
				sum += m[r*4+k] * n[k*4+c]
			}
			out[r*4+c] = sum
		}
	}
	return out
}

// MulPoint transforms a point (w=1) by m, dividing by the resulting w when
// it is nonzero (perspective divide).
func (m Mat4) MulPoint(v Vec3) Vec3 {
	x := m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3]
	y := m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7]
	z := m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11]
	w := m[12]*v.X + m[13]*v.Y + m[14]*v.Z + m[15]
	if w != 0 && w != 1 {
		inv := 1 / w
		return Vec3{x * inv, y * inv, z * inv}
	}
	return Vec3{x, y, z}
}

// MulPointW transforms a point (w=1) by m and returns the homogeneous result
// without dividing, for clip-space tests.
func (m Mat4) MulPointW(v Vec3) (out Vec3, w float64) {
	out.X = m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3]
	out.Y = m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7]
	out.Z = m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11]
	w = m[12]*v.X + m[13]*v.Y + m[14]*v.Z + m[15]
	return out, w
}

// MulDir transforms a direction (w=0) by m, ignoring translation.
func (m Mat4) MulDir(v Vec3) Vec3 {
	return Vec3{
		X: m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		Y: m[4]*v.X + m[5]*v.Y + m[6]*v.Z,
		Z: m[8]*v.X + m[9]*v.Y + m[10]*v.Z,
	}
}

// Transpose returns the transpose of m.
func (m Mat4) Transpose() Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			out[c*4+r] = m[r*4+c]
		}
	}
	return out
}

// Translate returns a translation matrix.
func Translate(t Vec3) Mat4 {
	return Mat4{
		1, 0, 0, t.X,
		0, 1, 0, t.Y,
		0, 0, 1, t.Z,
		0, 0, 0, 1,
	}
}

// ScaleM returns a scale matrix.
func ScaleM(s Vec3) Mat4 {
	return Mat4{
		s.X, 0, 0, 0,
		0, s.Y, 0, 0,
		0, 0, s.Z, 0,
		0, 0, 0, 1,
	}
}

// RotateX returns a rotation about the X axis by a radians.
func RotateX(a float64) Mat4 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat4{
		1, 0, 0, 0,
		0, c, -s, 0,
		0, s, c, 0,
		0, 0, 0, 1,
	}
}

// RotateY returns a rotation about the Y axis by a radians.
func RotateY(a float64) Mat4 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat4{
		c, 0, s, 0,
		0, 1, 0, 0,
		-s, 0, c, 0,
		0, 0, 0, 1,
	}
}

// RotateZ returns a rotation about the Z axis by a radians.
func RotateZ(a float64) Mat4 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat4{
		c, -s, 0, 0,
		s, c, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// LookAt builds a right-handed view matrix placing the camera at eye,
// looking toward target with the given up vector.
func LookAt(eye, target, up Vec3) Mat4 {
	f := target.Sub(eye).Normalize() // forward
	s := f.Cross(up).Normalize()     // right
	u := s.Cross(f)                  // true up
	return Mat4{
		s.X, s.Y, s.Z, -s.Dot(eye),
		u.X, u.Y, u.Z, -u.Dot(eye),
		-f.X, -f.Y, -f.Z, f.Dot(eye),
		0, 0, 0, 1,
	}
}

// Perspective builds a right-handed perspective projection with the given
// vertical field of view (radians), aspect ratio (w/h) and near/far planes,
// mapping depth to [-1, 1] clip space.
func Perspective(fovY, aspect, near, far float64) Mat4 {
	t := math.Tan(fovY / 2)
	return Mat4{
		1 / (aspect * t), 0, 0, 0,
		0, 1 / t, 0, 0,
		0, 0, -(far + near) / (far - near), -2 * far * near / (far - near),
		0, 0, -1, 0,
	}
}

// Invert returns the inverse of m and true, or the identity and false when m
// is singular. General cofactor expansion; matrices here are 4×4 TRS or
// projections, so cost is irrelevant.
func (m Mat4) Invert() (Mat4, bool) {
	inv := Mat4{}
	a := m

	inv[0] = a[5]*a[10]*a[15] - a[5]*a[11]*a[14] - a[9]*a[6]*a[15] + a[9]*a[7]*a[14] + a[13]*a[6]*a[11] - a[13]*a[7]*a[10]
	inv[4] = -a[4]*a[10]*a[15] + a[4]*a[11]*a[14] + a[8]*a[6]*a[15] - a[8]*a[7]*a[14] - a[12]*a[6]*a[11] + a[12]*a[7]*a[10]
	inv[8] = a[4]*a[9]*a[15] - a[4]*a[11]*a[13] - a[8]*a[5]*a[15] + a[8]*a[7]*a[13] + a[12]*a[5]*a[11] - a[12]*a[7]*a[9]
	inv[12] = -a[4]*a[9]*a[14] + a[4]*a[10]*a[13] + a[8]*a[5]*a[14] - a[8]*a[6]*a[13] - a[12]*a[5]*a[10] + a[12]*a[6]*a[9]
	inv[1] = -a[1]*a[10]*a[15] + a[1]*a[11]*a[14] + a[9]*a[2]*a[15] - a[9]*a[3]*a[14] - a[13]*a[2]*a[11] + a[13]*a[3]*a[10]
	inv[5] = a[0]*a[10]*a[15] - a[0]*a[11]*a[14] - a[8]*a[2]*a[15] + a[8]*a[3]*a[14] + a[12]*a[2]*a[11] - a[12]*a[3]*a[10]
	inv[9] = -a[0]*a[9]*a[15] + a[0]*a[11]*a[13] + a[8]*a[1]*a[15] - a[8]*a[3]*a[13] - a[12]*a[1]*a[11] + a[12]*a[3]*a[9]
	inv[13] = a[0]*a[9]*a[14] - a[0]*a[10]*a[13] - a[8]*a[1]*a[14] + a[8]*a[2]*a[13] + a[12]*a[1]*a[10] - a[12]*a[2]*a[9]
	inv[2] = a[1]*a[6]*a[15] - a[1]*a[7]*a[14] - a[5]*a[2]*a[15] + a[5]*a[3]*a[14] + a[13]*a[2]*a[7] - a[13]*a[3]*a[6]
	inv[6] = -a[0]*a[6]*a[15] + a[0]*a[7]*a[14] + a[4]*a[2]*a[15] - a[4]*a[3]*a[14] - a[12]*a[2]*a[7] + a[12]*a[3]*a[6]
	inv[10] = a[0]*a[5]*a[15] - a[0]*a[7]*a[13] - a[4]*a[1]*a[15] + a[4]*a[3]*a[13] + a[12]*a[1]*a[7] - a[12]*a[3]*a[5]
	inv[14] = -a[0]*a[5]*a[14] + a[0]*a[6]*a[13] + a[4]*a[1]*a[14] - a[4]*a[2]*a[13] - a[12]*a[1]*a[6] + a[12]*a[2]*a[5]
	inv[3] = -a[1]*a[6]*a[11] + a[1]*a[7]*a[10] + a[5]*a[2]*a[11] - a[5]*a[3]*a[10] - a[9]*a[2]*a[7] + a[9]*a[3]*a[6]
	inv[7] = a[0]*a[6]*a[11] - a[0]*a[7]*a[10] - a[4]*a[2]*a[11] + a[4]*a[3]*a[10] + a[8]*a[2]*a[7] - a[8]*a[3]*a[6]
	inv[11] = -a[0]*a[5]*a[11] + a[0]*a[7]*a[9] + a[4]*a[1]*a[11] - a[4]*a[3]*a[9] - a[8]*a[1]*a[7] + a[8]*a[3]*a[5]
	inv[15] = a[0]*a[5]*a[10] - a[0]*a[6]*a[9] - a[4]*a[1]*a[10] + a[4]*a[2]*a[9] + a[8]*a[1]*a[6] - a[8]*a[2]*a[5]

	det := a[0]*inv[0] + a[1]*inv[4] + a[2]*inv[8] + a[3]*inv[12]
	if det == 0 {
		return Identity4(), false
	}
	invDet := 1 / det
	for i := range inv {
		inv[i] *= invDet
	}
	// The cofactor expansion is memory-layout agnostic: feeding a row-major
	// matrix yields the row-major inverse directly.
	return inv, true
}
