package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func TestVec3Arithmetic(t *testing.T) {
	v := V3(1, 2, 3)
	u := V3(4, -5, 6)

	if got := v.Add(u); got != V3(5, -3, 9) {
		t.Errorf("Add = %v, want {5 -3 9}", got)
	}
	if got := v.Sub(u); got != V3(-3, 7, -3) {
		t.Errorf("Sub = %v, want {-3 7 -3}", got)
	}
	if got := v.Scale(2); got != V3(2, 4, 6) {
		t.Errorf("Scale = %v, want {2 4 6}", got)
	}
	if got := v.Neg(); got != V3(-1, -2, -3) {
		t.Errorf("Neg = %v, want {-1 -2 -3}", got)
	}
	if got := v.Dot(u); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %v, want 12", got)
	}
	if got := v.Mul(u); got != V3(4, -10, 18) {
		t.Errorf("Mul = %v, want {4 -10 18}", got)
	}
}

func TestVec3Cross(t *testing.T) {
	x, y, z := V3(1, 0, 0), V3(0, 1, 0), V3(0, 0, 1)
	if got := x.Cross(y); !got.NearEq(z, eps) {
		t.Errorf("x×y = %v, want z", got)
	}
	if got := y.Cross(z); !got.NearEq(x, eps) {
		t.Errorf("y×z = %v, want x", got)
	}
	if got := z.Cross(x); !got.NearEq(y, eps) {
		t.Errorf("z×x = %v, want y", got)
	}
}

func TestVec3CrossOrthogonalProperty(t *testing.T) {
	// v×u is orthogonal to both operands, and anti-commutes.
	f := func(a, b, c, d, e, g float64) bool {
		v := V3(clampMag(a), clampMag(b), clampMag(c))
		u := V3(clampMag(d), clampMag(e), clampMag(g))
		w := v.Cross(u)
		if math.Abs(w.Dot(v)) > 1e-6*(1+v.LenSq()+u.LenSq()) {
			return false
		}
		if math.Abs(w.Dot(u)) > 1e-6*(1+v.LenSq()+u.LenSq()) {
			return false
		}
		return w.Add(u.Cross(v)).NearEq(Vec3{}, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec3Normalize(t *testing.T) {
	if got := V3(3, 4, 0).Normalize(); !got.NearEq(V3(0.6, 0.8, 0), eps) {
		t.Errorf("Normalize = %v", got)
	}
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Errorf("Normalize(zero) = %v, want zero", got)
	}
}

func TestVec3LenDist(t *testing.T) {
	if got := V3(1, 2, 2).Len(); math.Abs(got-3) > eps {
		t.Errorf("Len = %v, want 3", got)
	}
	if got := V3(1, 1, 1).Dist(V3(1, 1, 5)); math.Abs(got-4) > eps {
		t.Errorf("Dist = %v, want 4", got)
	}
}

func TestVec3Lerp(t *testing.T) {
	a, b := V3(0, 0, 0), V3(10, -10, 4)
	if got := a.Lerp(b, 0); !got.NearEq(a, eps) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !got.NearEq(b, eps) {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); !got.NearEq(V3(5, -5, 2), eps) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestVec3MinMaxAbs(t *testing.T) {
	v, u := V3(1, -2, 3), V3(-1, 5, 2)
	if got := v.Min(u); got != V3(-1, -2, 2) {
		t.Errorf("Min = %v", got)
	}
	if got := v.Max(u); got != V3(1, 5, 3) {
		t.Errorf("Max = %v", got)
	}
	if got := V3(-1, 2, -3).Abs(); got != V3(1, 2, 3) {
		t.Errorf("Abs = %v", got)
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !V3(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V3(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V3(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		name      string
		f, lo, hi float64
		want      float64
	}{
		{"below", -1, 0, 1, 0},
		{"inside", 0.5, 0, 1, 0.5},
		{"above", 2, 0, 1, 1},
		{"at-low", 0, 0, 1, 0},
		{"at-high", 1, 0, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Clamp(tt.f, tt.lo, tt.hi); got != tt.want {
				t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.f, tt.lo, tt.hi, got, tt.want)
			}
		})
	}
}

func TestSmoothStep(t *testing.T) {
	if got := SmoothStep(0); got != 0 {
		t.Errorf("SmoothStep(0) = %v", got)
	}
	if got := SmoothStep(1); got != 1 {
		t.Errorf("SmoothStep(1) = %v", got)
	}
	if got := SmoothStep(0.5); math.Abs(got-0.5) > eps {
		t.Errorf("SmoothStep(0.5) = %v", got)
	}
	if got := SmoothStep(-5); got != 0 {
		t.Errorf("SmoothStep(-5) = %v, want clamped 0", got)
	}
	if got := SmoothStep(5); got != 1 {
		t.Errorf("SmoothStep(5) = %v, want clamped 1", got)
	}
	// Monotone on [0,1].
	prev := -1.0
	for i := 0; i <= 100; i++ {
		v := SmoothStep(float64(i) / 100)
		if v < prev {
			t.Fatalf("SmoothStep not monotone at %d: %v < %v", i, v, prev)
		}
		prev = v
	}
}

func TestWrapAngle(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi / 2, math.Pi / 2},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi}, // boundary maps into (-π, π]
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-3 * math.Pi / 2, math.Pi / 2},
	}
	for _, tt := range tests {
		if got := WrapAngle(tt.in); math.Abs(got-tt.want) > eps {
			t.Errorf("WrapAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWrapAngleProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e9 {
			return true // skip pathological inputs
		}
		w := WrapAngle(a)
		if w <= -math.Pi || w > math.Pi+eps {
			return false
		}
		// Same direction: sin/cos must agree.
		return math.Abs(math.Sin(w)-math.Sin(a)) < 1e-6 &&
			math.Abs(math.Cos(w)-math.Cos(a)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	if got := AngleDiff(0.1, -0.1); math.Abs(got-0.2) > eps {
		t.Errorf("AngleDiff = %v, want 0.2", got)
	}
	// Wraps across the ±π seam.
	if got := AngleDiff(math.Pi-0.05, -math.Pi+0.05); math.Abs(got+0.1) > eps {
		t.Errorf("AngleDiff seam = %v, want -0.1", got)
	}
}

func TestDegRad(t *testing.T) {
	if got := Deg(math.Pi); math.Abs(got-180) > eps {
		t.Errorf("Deg(π) = %v", got)
	}
	if got := Rad(90); math.Abs(got-math.Pi/2) > eps {
		t.Errorf("Rad(90) = %v", got)
	}
}

// clampMag maps an arbitrary quick-generated float into a tame range so
// property tests avoid overflow-driven false failures.
func clampMag(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 1
	}
	return math.Mod(f, 1000)
}

func randVec(r *rand.Rand) Vec3 {
	return V3(r.Float64()*20-10, r.Float64()*20-10, r.Float64()*20-10)
}
