package mathx

import "math"

// Quat is a rotation quaternion (W + Xi + Yj + Zk).
type Quat struct {
	W, X, Y, Z float64
}

// QuatIdentity returns the identity rotation.
func QuatIdentity() Quat { return Quat{W: 1} }

// QuatAxisAngle builds a quaternion rotating angle radians about axis.
// The axis need not be normalized; a zero axis yields the identity.
func QuatAxisAngle(axis Vec3, angle float64) Quat {
	axis = axis.Normalize()
	if axis.LenSq() == 0 {
		return QuatIdentity()
	}
	s, c := math.Sincos(angle / 2)
	return Quat{W: c, X: axis.X * s, Y: axis.Y * s, Z: axis.Z * s}
}

// QuatEuler builds a quaternion from yaw (about Y), pitch (about X) and roll
// (about Z), applied in yaw→pitch→roll order. This is the convention used by
// the motion platform pose (heave/sway/surge + yaw/pitch/roll).
func QuatEuler(yaw, pitch, roll float64) Quat {
	qy := QuatAxisAngle(V3(0, 1, 0), yaw)
	qp := QuatAxisAngle(V3(1, 0, 0), pitch)
	qr := QuatAxisAngle(V3(0, 0, 1), roll)
	return qy.Mul(qp).Mul(qr)
}

// Mul returns the Hamilton product q·r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate of q.
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Len returns the norm of q.
func (q Quat) Len() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalize returns q scaled to unit norm; the zero quaternion becomes the
// identity.
func (q Quat) Normalize() Quat {
	l := q.Len()
	if l == 0 {
		return QuatIdentity()
	}
	inv := 1 / l
	return Quat{W: q.W * inv, X: q.X * inv, Y: q.Y * inv, Z: q.Z * inv}
}

// Rotate applies the rotation q to vector v.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = q * (0,v) * q⁻¹ for unit q.
	p := Quat{W: 0, X: v.X, Y: v.Y, Z: v.Z}
	r := q.Mul(p).Mul(q.Conj())
	return Vec3{r.X, r.Y, r.Z}
}

// Mat4 converts the (unit) quaternion to a rotation matrix.
func (q Quat) Mat4() Mat4 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat4{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y), 0,
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x), 0,
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y), 0,
		0, 0, 0, 1,
	}
}

// Slerp spherically interpolates from q to r by t in [0,1], taking the
// shortest arc. Falls back to lerp+normalize for nearly parallel inputs.
func (q Quat) Slerp(r Quat, t float64) Quat {
	dot := q.W*r.W + q.X*r.X + q.Y*r.Y + q.Z*r.Z
	if dot < 0 { // take the short way around
		r = Quat{W: -r.W, X: -r.X, Y: -r.Y, Z: -r.Z}
		dot = -dot
	}
	if dot > 0.9995 {
		return Quat{
			W: Lerp(q.W, r.W, t),
			X: Lerp(q.X, r.X, t),
			Y: Lerp(q.Y, r.Y, t),
			Z: Lerp(q.Z, r.Z, t),
		}.Normalize()
	}
	theta := math.Acos(Clamp(dot, -1, 1))
	sin := math.Sin(theta)
	wq := math.Sin((1-t)*theta) / sin
	wr := math.Sin(t*theta) / sin
	return Quat{
		W: q.W*wq + r.W*wr,
		X: q.X*wq + r.X*wr,
		Y: q.Y*wq + r.Y*wr,
		Z: q.Z*wq + r.Z*wr,
	}
}

// Euler extracts (yaw, pitch, roll) from a unit quaternion using the same
// convention as QuatEuler. Pitch is clamped at the ±π/2 gimbal poles.
func (q Quat) Euler() (yaw, pitch, roll float64) {
	m := q.Mat4()
	// With R = Ry(yaw)·Rx(pitch)·Rz(roll):
	//   m[6]  = -sin(pitch) ... row1 col2
	pitch = math.Asin(Clamp(-m[6], -1, 1))
	if math.Abs(m[6]) < 0.9999995 {
		yaw = math.Atan2(m[2], m[10])
		roll = math.Atan2(m[4], m[5])
	} else { // gimbal lock: roll folded into yaw
		yaw = math.Atan2(-m[8], m[0])
		roll = 0
	}
	return yaw, pitch, roll
}
