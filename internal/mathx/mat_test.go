package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestIdentityMul(t *testing.T) {
	id := Identity4()
	m := Translate(V3(1, 2, 3)).MulM(RotateY(0.7))
	if got := id.MulM(m); got != m {
		t.Error("I·M != M")
	}
	if got := m.MulM(id); got != m {
		t.Error("M·I != M")
	}
}

func TestTranslatePoint(t *testing.T) {
	m := Translate(V3(1, -2, 3))
	if got := m.MulPoint(V3(10, 10, 10)); !got.NearEq(V3(11, 8, 13), eps) {
		t.Errorf("translate = %v", got)
	}
	// Directions ignore translation.
	if got := m.MulDir(V3(1, 0, 0)); !got.NearEq(V3(1, 0, 0), eps) {
		t.Errorf("MulDir = %v", got)
	}
}

func TestScalePoint(t *testing.T) {
	m := ScaleM(V3(2, 3, 4))
	if got := m.MulPoint(V3(1, 1, 1)); !got.NearEq(V3(2, 3, 4), eps) {
		t.Errorf("scale = %v", got)
	}
}

func TestRotations(t *testing.T) {
	tests := []struct {
		name string
		m    Mat4
		in   Vec3
		want Vec3
	}{
		{"X90", RotateX(math.Pi / 2), V3(0, 1, 0), V3(0, 0, 1)},
		{"Y90", RotateY(math.Pi / 2), V3(0, 0, 1), V3(1, 0, 0)},
		{"Z90", RotateZ(math.Pi / 2), V3(1, 0, 0), V3(0, 1, 0)},
		{"Y180", RotateY(math.Pi), V3(1, 0, 0), V3(-1, 0, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.m.MulPoint(tt.in); !got.NearEq(tt.want, 1e-12) {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRotationPreservesLength(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		m := RotateX(r.Float64() * 10).MulM(RotateY(r.Float64() * 10)).MulM(RotateZ(r.Float64() * 10))
		v := randVec(r)
		if got, want := m.MulPoint(v).Len(), v.Len(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("rotation changed length: %v -> %v", want, got)
		}
	}
}

func TestMatMulAssociativity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		a := Translate(randVec(r)).MulM(RotateY(r.Float64()))
		b := RotateX(r.Float64()).MulM(ScaleM(V3(1.5, 2, 0.5)))
		c := Translate(randVec(r))
		v := randVec(r)
		lhs := a.MulM(b).MulM(c).MulPoint(v)
		rhs := a.MulPoint(b.MulPoint(c.MulPoint(v)))
		if !lhs.NearEq(rhs, 1e-8) {
			t.Fatalf("(AB)C·v != A(B(C v)): %v vs %v", lhs, rhs)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := Mat4{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	mt := m.Transpose()
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if mt[r*4+c] != m[c*4+r] {
				t.Fatalf("transpose wrong at %d,%d", r, c)
			}
		}
	}
	if m.Transpose().Transpose() != m {
		t.Error("double transpose != original")
	}
}

func TestInvert(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		m := Translate(randVec(r)).
			MulM(RotateY(r.Float64() * 6)).
			MulM(RotateX(r.Float64() * 6)).
			MulM(ScaleM(V3(0.5+r.Float64(), 0.5+r.Float64(), 0.5+r.Float64())))
		inv, ok := m.Invert()
		if !ok {
			t.Fatal("TRS matrix reported singular")
		}
		prod := m.MulM(inv)
		id := Identity4()
		for k := range prod {
			if math.Abs(prod[k]-id[k]) > 1e-8 {
				t.Fatalf("M·M⁻¹ != I at %d: %v", k, prod[k])
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	var zero Mat4
	if _, ok := zero.Invert(); ok {
		t.Error("zero matrix inverted")
	}
	flat := ScaleM(V3(1, 0, 1)) // rank-deficient
	if _, ok := flat.Invert(); ok {
		t.Error("rank-deficient matrix inverted")
	}
}

func TestLookAt(t *testing.T) {
	// Camera at origin looking down -Z: view transform is identity-ish.
	m := LookAt(V3(0, 0, 0), V3(0, 0, -1), V3(0, 1, 0))
	p := m.MulPoint(V3(0, 0, -5))
	if !p.NearEq(V3(0, 0, -5), eps) {
		t.Errorf("forward point = %v, want (0,0,-5)", p)
	}
	// Camera at (0,0,10) looking at origin: origin maps to (0,0,-10).
	m = LookAt(V3(0, 0, 10), V3(0, 0, 0), V3(0, 1, 0))
	p = m.MulPoint(V3(0, 0, 0))
	if !p.NearEq(V3(0, 0, -10), eps) {
		t.Errorf("origin in view space = %v, want (0,0,-10)", p)
	}
	// A point to the camera's right (world +X) stays +X in view space.
	p = m.MulPoint(V3(3, 0, 10))
	if !p.NearEq(V3(3, 0, 0), eps) {
		t.Errorf("right point = %v, want (3,0,0)", p)
	}
}

func TestPerspective(t *testing.T) {
	proj := Perspective(Rad(90), 1, 1, 100)
	// A point on the near plane straight ahead maps to z = -1.
	p := proj.MulPoint(V3(0, 0, -1))
	if math.Abs(p.Z-(-1)) > 1e-9 {
		t.Errorf("near-plane z = %v, want -1", p.Z)
	}
	// A point on the far plane maps to z = +1.
	p = proj.MulPoint(V3(0, 0, -100))
	if math.Abs(p.Z-1) > 1e-9 {
		t.Errorf("far-plane z = %v, want 1", p.Z)
	}
	// With fov 90°, a point at 45° from axis lands on the clip boundary |y|=1.
	p = proj.MulPoint(V3(0, 10, -10))
	if math.Abs(p.Y-1) > 1e-9 {
		t.Errorf("edge y = %v, want 1", p.Y)
	}
}

func BenchmarkMat4MulM(b *testing.B) {
	m := Translate(V3(1, 2, 3)).MulM(RotateY(0.5))
	n := RotateX(0.3).MulM(ScaleM(V3(1, 2, 1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m = m.MulM(n)
	}
	_ = m
}

func BenchmarkMat4MulPoint(b *testing.B) {
	m := Translate(V3(1, 2, 3)).MulM(RotateY(0.5))
	v := V3(1, 2, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v = m.MulPoint(v)
	}
	_ = v
}
