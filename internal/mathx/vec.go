// Package mathx provides the small linear-algebra toolkit shared by the
// renderer, the crane dynamics, and the Stewart-platform kinematics:
// 3-component vectors, 4×4 matrices, quaternions, and scalar helpers.
//
// Conventions: right-handed coordinates, +Y up, angles in radians, matrices
// are row-major and multiply column vectors (v' = M · v).
package mathx

import "math"

// Vec3 is a 3-component vector of float64.
type Vec3 struct {
	X, Y, Z float64
}

// V3 is shorthand for constructing a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v - u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v · u.
func (v Vec3) Dot(u Vec3) float64 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Cross returns the cross product v × u.
func (v Vec3) Cross(u Vec3) Vec3 {
	return Vec3{
		X: v.Y*u.Z - v.Z*u.Y,
		Y: v.Z*u.X - v.X*u.Z,
		Z: v.X*u.Y - v.Y*u.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// LenSq returns the squared length of v.
func (v Vec3) LenSq() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and u.
func (v Vec3) Dist(u Vec3) float64 { return v.Sub(u).Len() }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged so callers never divide by zero.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Lerp linearly interpolates from v to u by t in [0,1].
func (v Vec3) Lerp(u Vec3, t float64) Vec3 {
	return Vec3{
		X: v.X + (u.X-v.X)*t,
		Y: v.Y + (u.Y-v.Y)*t,
		Z: v.Z + (u.Z-v.Z)*t,
	}
}

// Mul returns the component-wise product of v and u.
func (v Vec3) Mul(u Vec3) Vec3 { return Vec3{v.X * u.X, v.Y * u.Y, v.Z * u.Z} }

// Min returns the component-wise minimum of v and u.
func (v Vec3) Min(u Vec3) Vec3 {
	return Vec3{math.Min(v.X, u.X), math.Min(v.Y, u.Y), math.Min(v.Z, u.Z)}
}

// Max returns the component-wise maximum of v and u.
func (v Vec3) Max(u Vec3) Vec3 {
	return Vec3{math.Max(v.X, u.X), math.Max(v.Y, u.Y), math.Max(v.Z, u.Z)}
}

// Abs returns the component-wise absolute value of v.
func (v Vec3) Abs() Vec3 {
	return Vec3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)}
}

// IsFinite reports whether every component is finite (no NaN or ±Inf).
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// NearEq reports whether v and u are equal within tolerance eps on every
// component.
func (v Vec3) NearEq(u Vec3, eps float64) bool {
	return math.Abs(v.X-u.X) <= eps && math.Abs(v.Y-u.Y) <= eps && math.Abs(v.Z-u.Z) <= eps
}

// Clamp returns f limited to the closed interval [lo, hi].
func Clamp(f, lo, hi float64) float64 {
	if f < lo {
		return lo
	}
	if f > hi {
		return hi
	}
	return f
}

// Lerp linearly interpolates from a to b by t.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// SmoothStep returns the Hermite smooth interpolation of t clamped to [0,1]:
// 3t²-2t³. Used by the motion-platform pose interpolator for C¹ transitions.
func SmoothStep(t float64) float64 {
	t = Clamp(t, 0, 1)
	return t * t * (3 - 2*t)
}

// WrapAngle normalizes an angle to (-π, π].
func WrapAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	switch {
	case a > math.Pi:
		a -= 2 * math.Pi
	case a <= -math.Pi:
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the signed smallest difference a-b wrapped to (-π, π].
func AngleDiff(a, b float64) float64 { return WrapAngle(a - b) }

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }
