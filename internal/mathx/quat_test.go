package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuatIdentityRotate(t *testing.T) {
	v := V3(1, 2, 3)
	if got := QuatIdentity().Rotate(v); !got.NearEq(v, eps) {
		t.Errorf("identity rotate = %v", got)
	}
}

func TestQuatAxisAngle(t *testing.T) {
	q := QuatAxisAngle(V3(0, 1, 0), math.Pi/2)
	if got := q.Rotate(V3(0, 0, 1)); !got.NearEq(V3(1, 0, 0), 1e-12) {
		t.Errorf("Y90 rotate z = %v, want x", got)
	}
	q = QuatAxisAngle(V3(1, 0, 0), math.Pi/2)
	if got := q.Rotate(V3(0, 1, 0)); !got.NearEq(V3(0, 0, 1), 1e-12) {
		t.Errorf("X90 rotate y = %v, want z", got)
	}
	// Zero axis falls back to identity.
	if got := QuatAxisAngle(Vec3{}, 1).Rotate(V3(1, 2, 3)); !got.NearEq(V3(1, 2, 3), eps) {
		t.Errorf("zero-axis rotate = %v", got)
	}
}

func TestQuatMatchesMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for i := 0; i < 200; i++ {
		axis := randVec(r).Normalize()
		if axis.LenSq() == 0 {
			continue
		}
		angle := r.Float64()*4*math.Pi - 2*math.Pi
		q := QuatAxisAngle(axis, angle)
		v := randVec(r)
		got := q.Rotate(v)
		want := q.Mat4().MulPoint(v)
		if !got.NearEq(want, 1e-9) {
			t.Fatalf("quat vs matrix mismatch: %v vs %v", got, want)
		}
	}
}

func TestQuatEulerRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		yaw := r.Float64()*2*math.Pi - math.Pi
		pitch := r.Float64()*2.8 - 1.4 // stay off the gimbal poles
		roll := r.Float64()*2*math.Pi - math.Pi
		q := QuatEuler(yaw, pitch, roll)
		gy, gp, gr := q.Euler()
		if math.Abs(AngleDiff(gy, yaw)) > 1e-7 ||
			math.Abs(AngleDiff(gp, pitch)) > 1e-7 ||
			math.Abs(AngleDiff(gr, roll)) > 1e-7 {
			t.Fatalf("euler round trip (%v,%v,%v) -> (%v,%v,%v)", yaw, pitch, roll, gy, gp, gr)
		}
	}
}

func TestQuatRotationPreservesLengthProperty(t *testing.T) {
	f := func(ax, ay, az, angle, vx, vy, vz float64) bool {
		axis := V3(clampMag(ax), clampMag(ay), clampMag(az))
		v := V3(clampMag(vx), clampMag(vy), clampMag(vz))
		q := QuatAxisAngle(axis, clampMag(angle))
		got := q.Rotate(v)
		return math.Abs(got.Len()-v.Len()) < 1e-6*(1+v.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuatMulComposition(t *testing.T) {
	// Rotating by q then p equals rotating by p·q.
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 100; i++ {
		p := QuatAxisAngle(randVec(r), r.Float64()*6)
		q := QuatAxisAngle(randVec(r), r.Float64()*6)
		v := randVec(r)
		lhs := p.Rotate(q.Rotate(v))
		rhs := p.Mul(q).Rotate(v)
		if !lhs.NearEq(rhs, 1e-9) {
			t.Fatalf("composition mismatch: %v vs %v", lhs, rhs)
		}
	}
}

func TestQuatSlerp(t *testing.T) {
	a := QuatIdentity()
	b := QuatAxisAngle(V3(0, 1, 0), math.Pi/2)

	if got := a.Slerp(b, 0).Rotate(V3(0, 0, 1)); !got.NearEq(V3(0, 0, 1), 1e-9) {
		t.Errorf("slerp(0) = %v", got)
	}
	if got := a.Slerp(b, 1).Rotate(V3(0, 0, 1)); !got.NearEq(V3(1, 0, 0), 1e-9) {
		t.Errorf("slerp(1) = %v", got)
	}
	// Halfway: 45° about Y.
	want := QuatAxisAngle(V3(0, 1, 0), math.Pi/4).Rotate(V3(0, 0, 1))
	if got := a.Slerp(b, 0.5).Rotate(V3(0, 0, 1)); !got.NearEq(want, 1e-9) {
		t.Errorf("slerp(0.5) = %v, want %v", got, want)
	}
}

func TestQuatSlerpShortestArc(t *testing.T) {
	// q and -q are the same rotation; slerp must not take the long way.
	a := QuatAxisAngle(V3(0, 1, 0), 0.1)
	b := QuatAxisAngle(V3(0, 1, 0), 0.2)
	bNeg := Quat{W: -b.W, X: -b.X, Y: -b.Y, Z: -b.Z}
	got := a.Slerp(bNeg, 0.5).Rotate(V3(0, 0, 1))
	want := QuatAxisAngle(V3(0, 1, 0), 0.15).Rotate(V3(0, 0, 1))
	if !got.NearEq(want, 1e-9) {
		t.Errorf("slerp with negated target = %v, want %v", got, want)
	}
}

func TestQuatNormalize(t *testing.T) {
	q := Quat{W: 2, X: 0, Y: 0, Z: 0}.Normalize()
	if math.Abs(q.Len()-1) > eps {
		t.Errorf("normalized len = %v", q.Len())
	}
	if got := (Quat{}).Normalize(); got != QuatIdentity() {
		t.Errorf("Normalize(zero) = %v, want identity", got)
	}
}

func BenchmarkQuatRotate(b *testing.B) {
	q := QuatAxisAngle(V3(0.3, 1, 0.2), 1.1)
	v := V3(1, 2, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v = q.Rotate(v)
	}
	_ = v
}
