package render

import (
	"fmt"
	"math"

	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/terrain"
)

// Obstacle describes one static prop of the training site: the course
// bars of Fig. 9, crates, sheds. Rendered as a yawed box.
type Obstacle struct {
	Pos   mathx.Vec3 // center position
	Half  mathx.Vec3 // half extents
	Yaw   float64    // rotation about +Y
	Color RGB
}

// TerrainMesh triangulates a terrain map every `step` grid cells, shading
// quads by height.
func TerrainMesh(ter *terrain.Map, step float64) (*Mesh, error) {
	if step <= 0 {
		return nil, fmt.Errorf("render: terrain step %v", step)
	}
	sx, sz := ter.Size()
	nx := int(sx/step) + 1
	nz := int(sz/step) + 1
	if nx < 2 || nz < 2 {
		return nil, fmt.Errorf("render: terrain step %v too coarse", step)
	}
	minH, maxH := ter.Bounds()
	span := maxH - minH
	if span <= 0 {
		span = 1
	}

	verts := make([]mathx.Vec3, 0, nx*nz)
	for iz := 0; iz < nz; iz++ {
		for ix := 0; ix < nx; ix++ {
			x := float64(ix) * step
			z := float64(iz) * step
			verts = append(verts, mathx.V3(x, ter.HeightAt(x, z), z))
		}
	}
	tris := make([][3]int, 0, 2*(nx-1)*(nz-1))
	colors := make([]RGB, 0, cap(tris))
	for iz := 0; iz < nz-1; iz++ {
		for ix := 0; ix < nx-1; ix++ {
			i00 := iz*nx + ix
			i10 := i00 + 1
			i01 := i00 + nx
			i11 := i01 + 1
			// Winding for +Y facing (counter-clockwise from above).
			tris = append(tris, [3]int{i00, i11, i10}, [3]int{i00, i01, i11})
			t := (verts[i00].Y - minH) / span
			c := RGB{
				R: uint8(105 + 40*t),
				G: uint8(110 + 50*t),
				B: uint8(85 + 30*t),
			}
			colors = append(colors, c, c)
		}
	}
	return NewMesh(verts, tris, colors)
}

// SetVisibility darkens the baked scene for night or fog work: v = 1 keeps
// full daylight, lower values dim the ambient term and the sky toward a
// night exterior. Call it after NewSceneBuilder, before the first Frame.
func (b *SceneBuilder) SetVisibility(v float64) {
	v = mathx.Clamp(v, 0.05, 1)
	b.scene.Ambient *= v
	b.scene.Background = RGB{
		R: uint8(float64(b.scene.Background.R) * v * 0.6),
		G: uint8(float64(b.scene.Background.G) * v * 0.6),
		B: uint8(float64(b.scene.Background.B) * v * 0.8),
	}
}

// craneParts indexes the articulated crane instances inside the scene's
// instance list, so Frame can update their transforms in place.
type craneParts struct {
	carrier int
	cab     int
	deck    int
	boom    int
	cable   int
	hook    int
	cargo   int
}

// SceneBuilder assembles the per-frame scene: static site geometry baked
// once, plus one articulated crane per carrier, each updated from its
// CraneState. NewSceneBuilder registers a single crane (index 0);
// AddCrane appends more for tandem-lift scenes.
type SceneBuilder struct {
	scene Scene
	parts []craneParts // one instance group per carrier

	carrierMesh *Mesh
	cabMesh     *Mesh
	deckMesh    *Mesh
	boomMesh    *Mesh // unit length along -Z, foot at origin
	cableMesh   *Mesh // unit length along -Y, top at origin
	hookMesh    *Mesh
	cargoMesh   *Mesh
}

// NewSceneBuilder bakes the static site (terrain + obstacles + filler
// scenery) and registers the crane parts. targetPolys pads the scene with
// scenery boxes until the total triangle count reaches at least the target
// (the paper's scene holds 3235 polygons); pass 0 to skip padding.
func NewSceneBuilder(ter *terrain.Map, obstacles []Obstacle, targetPolys int) (*SceneBuilder, error) {
	b := &SceneBuilder{
		scene: Scene{
			LightDir:   mathx.V3(0.4, 1, 0.3),
			Ambient:    0.35,
			Background: RGB{R: 150, G: 185, B: 225}, // sky
		},
		carrierMesh: Box(1.3, 0.9, 4.3, RGB{R: 215, G: 165, B: 30}),
		cabMesh:     Box(0.8, 0.7, 1.0, RGB{R: 230, G: 220, B: 200}),
		deckMesh:    Box(1.1, 0.5, 1.9, RGB{R: 200, G: 140, B: 25}),
		boomMesh:    boomUnitMesh(RGB{R: 225, G: 175, B: 40}),
		cableMesh:   cableUnitMesh(RGB{R: 40, G: 40, B: 40}),
		hookMesh:    Box(0.25, 0.3, 0.25, RGB{R: 60, G: 60, B: 70}),
		cargoMesh:   Box(0.9, 0.6, 0.9, RGB{R: 170, G: 60, B: 50}),
	}

	// Terrain resolution chosen so the ground consumes roughly 60% of the
	// polygon budget, leaving room for the crane, props and scenery.
	sx, sz := ter.Size()
	step := 4.0
	if targetPolys > 0 {
		cells := float64(targetPolys) * 0.6 / 2
		if cells < 4 {
			cells = 4
		}
		step = mathx.Clamp(math.Sqrt(sx*sz/cells), 2, 20)
	}
	terMesh, err := TerrainMesh(ter, step)
	if err != nil {
		return nil, err
	}
	b.scene.Instances = append(b.scene.Instances, Instance{Mesh: terMesh, Transform: mathx.Identity4()})

	for _, o := range obstacles {
		b.scene.Instances = append(b.scene.Instances, Instance{
			Mesh:      Box(o.Half.X, o.Half.Y, o.Half.Z, o.Color),
			Transform: mathx.Translate(o.Pos).MulM(mathx.RotateY(-o.Yaw)),
		})
	}

	// Articulated crane parts (transforms filled by UpdateCrane).
	b.AddCrane()

	// Pad with scenery (site clutter) to reach the polygon budget.
	if targetPolys > 0 {
		i := 0
		for b.scene.PolygonCount() < targetPolys {
			// Deterministic pseudo-random scatter.
			fx := math.Mod(float64(i)*37.77, sx*0.9) + sx*0.05
			fz := math.Mod(float64(i)*59.13, sz*0.9) + sz*0.05
			h := 0.4 + math.Mod(float64(i)*0.613, 1.8)
			clr := RGB{R: uint8(120 + i%90), G: uint8(100 + (i*13)%80), B: uint8(80 + (i*7)%60)}
			b.scene.Instances = append(b.scene.Instances, Instance{
				Mesh: Box(0.5+math.Mod(float64(i)*0.21, 1.2), h, 0.5, clr),
				Transform: mathx.Translate(mathx.V3(fx, ter.HeightAt(fx, fz)+h, fz)).
					MulM(mathx.RotateY(float64(i) * 0.7)),
			})
			i++
		}
	}
	return b, nil
}

// boomUnitMesh is a 1 m boom segment along -Z with its foot at the origin,
// scaled to the live boom length each frame.
func boomUnitMesh(c RGB) *Mesh {
	m := Box(0.28, 0.28, 0.5, c)
	// Shift so the box spans z ∈ [-1, 0] before scaling.
	for i := range m.verts {
		m.verts[i].Z -= 0.5
	}
	return m
}

// cableUnitMesh is a 1 m cable along -Y with its top at the origin.
func cableUnitMesh(c RGB) *Mesh {
	m := Box(0.03, 0.5, 0.03, c)
	for i := range m.verts {
		m.verts[i].Y -= 0.5
	}
	return m
}

// PolygonCount returns the scene's total triangle count.
func (b *SceneBuilder) PolygonCount() int { return b.scene.PolygonCount() }

// AddCrane registers one more articulated crane instance group and
// returns its index. Call during scene setup, before rendering starts.
func (b *SceneBuilder) AddCrane() int {
	add := func(m *Mesh) int {
		b.scene.Instances = append(b.scene.Instances, Instance{Mesh: m, Transform: mathx.Identity4()})
		return len(b.scene.Instances) - 1
	}
	b.parts = append(b.parts, craneParts{
		carrier: add(b.carrierMesh),
		cab:     add(b.cabMesh),
		deck:    add(b.deckMesh),
		boom:    add(b.boomMesh),
		cable:   add(b.cableMesh),
		hook:    add(b.hookMesh),
		cargo:   add(b.cargoMesh),
	})
	return len(b.parts) - 1
}

// Cranes returns how many articulated cranes the scene holds.
func (b *SceneBuilder) Cranes() int { return len(b.parts) }

// Frame updates crane 0 from the crane state and returns the scene for
// rendering — the single-crane path. The returned scene is reused across
// calls; render it before the next Frame call. Multi-crane displays call
// UpdateCrane per carrier and Scene once.
func (b *SceneBuilder) Frame(st fom.CraneState) *Scene {
	b.UpdateCrane(0, st)
	return &b.scene
}

// Scene returns the assembled scene (reused across frames).
func (b *SceneBuilder) Scene() *Scene { return &b.scene }

// UpdateCrane poses articulated crane `idx` from the crane state.
func (b *SceneBuilder) UpdateCrane(idx int, st fom.CraneState) {
	if idx < 0 || idx >= len(b.parts) {
		return
	}
	parts := b.parts[idx]
	carrier := mathx.Translate(st.Position).MulM(
		mathx.QuatEuler(-st.Heading, st.Pitch, -st.Roll).Mat4())

	set := func(i int, t mathx.Mat4) { b.scene.Instances[i].Transform = t }

	set(parts.carrier, carrier.MulM(mathx.Translate(mathx.V3(0, 1.0, 0))))
	set(parts.cab, carrier.MulM(mathx.Translate(mathx.V3(-0.55, 2.3, -2.9))))
	// The deck (superstructure) slews with the boom.
	deckRot := mathx.RotateY(-st.BoomSwing)
	set(parts.deck, carrier.MulM(mathx.Translate(mathx.V3(0, 2.1, 1.0))).MulM(deckRot))

	// Boom: foot at the pivot, slewed and luffed, scaled to length.
	boomXf := carrier.
		MulM(mathx.Translate(mathx.V3(0, 2.4, 1.0))).
		MulM(mathx.RotateY(-st.BoomSwing)).
		MulM(mathx.RotateX(st.BoomLuff)).
		MulM(mathx.ScaleM(mathx.V3(1, 1, st.BoomLen)))
	set(parts.boom, boomXf)

	// Cable: from the boom tip straight toward the hook.
	tip := boomTipWorld(st)
	hook := st.HookPos
	span := hook.Sub(tip)
	length := span.Len()
	cableXf := mathx.Translate(tip).
		MulM(rotateAlign(mathx.V3(0, -1, 0), span)).
		MulM(mathx.ScaleM(mathx.V3(1, length, 1)))
	set(parts.cable, cableXf)

	set(parts.hook, mathx.Translate(hook))
	set(parts.cargo, mathx.Translate(st.CargoPos))
}

// boomTipWorld mirrors dynamics.Model.BoomTip from the published state, so
// display nodes reconstruct the exact articulation without importing the
// physics.
func boomTipWorld(st fom.CraneState) mathx.Vec3 {
	sinS, cosS := math.Sincos(st.BoomSwing)
	sinL, cosL := math.Sincos(st.BoomLuff)
	dir := mathx.V3(sinS*cosL, sinL, -cosS*cosL)
	local := mathx.V3(0, 2.4, 1.0).Add(dir.Scale(st.BoomLen))
	rot := mathx.QuatEuler(-st.Heading, st.Pitch, -st.Roll)
	return st.Position.Add(rot.Rotate(local))
}

// rotateAlign returns the rotation matrix taking unit vector from onto the
// direction of to.
func rotateAlign(from, to mathx.Vec3) mathx.Mat4 {
	f := from.Normalize()
	t := to.Normalize()
	if t.LenSq() == 0 {
		return mathx.Identity4()
	}
	dot := mathx.Clamp(f.Dot(t), -1, 1)
	if dot > 0.99999 {
		return mathx.Identity4()
	}
	if dot < -0.99999 {
		// Opposite: rotate π about any perpendicular axis.
		perp := f.Cross(mathx.V3(1, 0, 0))
		if perp.LenSq() < 1e-12 {
			perp = f.Cross(mathx.V3(0, 0, 1))
		}
		return mathx.QuatAxisAngle(perp, math.Pi).Mat4()
	}
	axis := f.Cross(t)
	return mathx.QuatAxisAngle(axis, math.Acos(dot)).Mat4()
}
