package render

import (
	"math"
	"testing"
	"testing/quick"

	"codsim/internal/mathx"
)

// TestDegenerateTriangles: zero-area and collinear triangles must not
// panic or shade any pixels.
func TestDegenerateTriangles(t *testing.T) {
	cases := [][]mathx.Vec3{
		{{X: 0, Y: 0, Z: -5}, {X: 0, Y: 0, Z: -5}, {X: 0, Y: 0, Z: -5}},  // point
		{{X: -1, Y: 0, Z: -5}, {X: 0, Y: 0, Z: -5}, {X: 1, Y: 0, Z: -5}}, // collinear
	}
	for i, verts := range cases {
		m, err := NewMesh(verts, [][3]int{{0, 1, 2}}, []RGB{{R: 255}})
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRenderer(32, 32)
		if err != nil {
			t.Fatal(err)
		}
		scene := &Scene{Instances: []Instance{{Mesh: m, Transform: mathx.Identity4()}}, Ambient: 1}
		stats := r.Render(scene, frontCamera())
		if stats.Pixels != 0 {
			t.Errorf("case %d: degenerate triangle shaded %d pixels", i, stats.Pixels)
		}
	}
}

// TestSubPixelTriangle: a triangle smaller than one pixel is handled
// gracefully (either zero or one pixel, never a crash or smear).
func TestSubPixelTriangle(t *testing.T) {
	verts := []mathx.Vec3{
		{X: 0, Y: 0, Z: -50},
		{X: 0.01, Y: 0, Z: -50},
		{X: 0, Y: 0.01, Z: -50},
	}
	m, err := NewMesh(verts, [][3]int{{0, 1, 2}}, []RGB{{G: 255}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRenderer(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	scene := &Scene{Instances: []Instance{{Mesh: m, Transform: mathx.Identity4()}}, Ambient: 1}
	stats := r.Render(scene, frontCamera())
	if stats.Pixels > 4 {
		t.Errorf("sub-pixel triangle shaded %d pixels", stats.Pixels)
	}
}

// TestRandomTrianglesNeverPanic: arbitrary triangles through the full
// pipeline (cull, clip, raster) must never panic or write out of bounds.
func TestRandomTrianglesNeverPanic(t *testing.T) {
	r, err := NewRenderer(48, 48)
	if err != nil {
		t.Fatal(err)
	}
	cam := frontCamera()
	f := func(coords [9]float64) bool {
		clampC := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 100)
		}
		verts := []mathx.Vec3{
			{X: clampC(coords[0]), Y: clampC(coords[1]), Z: clampC(coords[2])},
			{X: clampC(coords[3]), Y: clampC(coords[4]), Z: clampC(coords[5])},
			{X: clampC(coords[6]), Y: clampC(coords[7]), Z: clampC(coords[8])},
		}
		m, err := NewMesh(verts, [][3]int{{0, 1, 2}}, []RGB{{B: 200}})
		if err != nil {
			return false
		}
		scene := &Scene{Instances: []Instance{{Mesh: m, Transform: mathx.Identity4()}}, Ambient: 0.5}
		r.Render(scene, cam) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestFrameStatsConsistency: submitted = culled + clipped-degenerates +
// rasterized is not an exact identity (clipping can split triangles), but
// rasterized + culled must always be >= submitted and pixels must be zero
// when rasterized is zero.
func TestFrameStatsConsistency(t *testing.T) {
	r, err := NewRenderer(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	scene := &Scene{
		Instances: []Instance{
			{Mesh: Box(1, 1, 1, RGB{R: 250}), Transform: mathx.Translate(mathx.V3(0, 0, -5))},
			{Mesh: Box(1, 1, 1, RGB{G: 250}), Transform: mathx.Translate(mathx.V3(0, 0, 50))}, // behind camera
		},
		Ambient: 1,
	}
	stats := r.Render(scene, frontCamera())
	if stats.Submitted != 24 {
		t.Errorf("Submitted = %d, want 24", stats.Submitted)
	}
	if stats.Rasterized+stats.Culled < stats.Submitted {
		t.Errorf("stats don't account for all triangles: %+v", stats)
	}
	if stats.Rasterized == 0 && stats.Pixels != 0 {
		t.Errorf("pixels without rasterized triangles: %+v", stats)
	}
}

// TestDepthBufferExposed: nearer geometry leaves smaller depth values.
func TestDepthBufferExposed(t *testing.T) {
	r, err := NewRenderer(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	scene := singleTriScene(RGB{R: 255})
	r.Render(scene, frontCamera())
	fb := r.Framebuffer()
	center := fb.Depth[36*fb.W+32]
	if math.IsInf(center, 1) {
		t.Fatal("center depth untouched")
	}
	corner := fb.Depth[2*fb.W+2]
	if !math.IsInf(corner, 1) {
		t.Errorf("background depth = %v, want +Inf", corner)
	}
	if center >= 1 || center <= -1 {
		t.Errorf("center depth %v outside NDC", center)
	}
}
