package render

import (
	"math"

	"codsim/internal/mathx"
)

// Camera defines one display's view: a perspective projection looking from
// Eye toward Target.
type Camera struct {
	Eye    mathx.Vec3
	Target mathx.Vec3
	Up     mathx.Vec3
	FovY   float64 // vertical field of view, radians
	Aspect float64 // width / height
	Near   float64
	Far    float64
}

// DefaultCamera returns a camera with sane clip planes and a 4:3 aspect
// (the era's monitors).
func DefaultCamera() Camera {
	return Camera{
		Up:     mathx.V3(0, 1, 0),
		FovY:   mathx.Rad(45),
		Aspect: 4.0 / 3.0,
		Near:   0.5,
		Far:    500,
	}
}

// View returns the camera's view matrix.
func (c Camera) View() mathx.Mat4 { return mathx.LookAt(c.Eye, c.Target, c.Up) }

// Proj returns the camera's projection matrix.
func (c Camera) Proj() mathx.Mat4 {
	return mathx.Perspective(c.FovY, c.Aspect, c.Near, c.Far)
}

// ViewProj returns Proj·View.
func (c Camera) ViewProj() mathx.Mat4 { return c.Proj().MulM(c.View()) }

// SurroundCameras builds the camera set of the paper's surround view
// (Fig. 10): count displays fan out around the cab's forward direction,
// each covering fovH horizontally, so three displays at 40° each give the
// ≈120° panorama. eye is the cab position, heading the cab yaw, pitch a
// downward tilt.
func SurroundCameras(eye mathx.Vec3, heading float64, count int, fovH, aspect float64) []Camera {
	if count < 1 {
		count = 1
	}
	cams := make([]Camera, count)
	// Vertical FOV from the horizontal one: tan(fovH/2) = aspect·tan(fovY/2).
	fovY := 2 * math.Atan(math.Tan(fovH/2)/aspect)
	for i := range cams {
		// Offsets center the fan: for 3 displays, -fovH, 0, +fovH.
		offset := (float64(i) - float64(count-1)/2) * fovH
		yaw := heading + offset
		sin, cos := math.Sincos(yaw)
		dir := mathx.V3(sin, 0, -cos) // heading 0 looks down -Z
		cam := DefaultCamera()
		cam.Eye = eye
		cam.Target = eye.Add(dir)
		cam.FovY = fovY
		cam.Aspect = aspect
		cams[i] = cam
	}
	return cams
}
