// Package render is the software 3-D pipeline standing in for the TNT2
// M64 accelerator cards of the paper's display computers (§4): model/view/
// projection transform, frustum and backface culling, near-plane clipping,
// and z-buffered flat-shaded rasterization into an in-memory framebuffer.
//
// Because every polygon is transformed and rasterized on the CPU, frame
// cost scales with scene complexity exactly the way the paper's headline
// measurement (16 fps at 3235 polygons across three synchronized displays)
// depends on — which is what the EXP-1 benchmarks exercise.
package render

import (
	"fmt"
	"math"

	"codsim/internal/mathx"
)

// RGB is an 8-bit color.
type RGB struct {
	R, G, B uint8
}

// Mesh is an indexed triangle mesh with one flat color per triangle.
// Meshes are immutable after construction and shared between instances.
type Mesh struct {
	verts  []mathx.Vec3
	tris   [][3]int
	colors []RGB
}

// NewMesh builds a mesh. colors must have one entry per triangle, or be a
// single entry applied to all triangles.
func NewMesh(verts []mathx.Vec3, tris [][3]int, colors []RGB) (*Mesh, error) {
	if len(verts) == 0 || len(tris) == 0 {
		return nil, fmt.Errorf("render: empty mesh")
	}
	for _, t := range tris {
		for _, idx := range t {
			if idx < 0 || idx >= len(verts) {
				return nil, fmt.Errorf("render: vertex index %d out of range", idx)
			}
		}
	}
	cs := colors
	switch len(colors) {
	case len(tris):
	case 1:
		cs = make([]RGB, len(tris))
		for i := range cs {
			cs[i] = colors[0]
		}
	default:
		return nil, fmt.Errorf("render: %d colors for %d triangles", len(colors), len(tris))
	}
	return &Mesh{
		verts:  append([]mathx.Vec3(nil), verts...),
		tris:   append([][3]int(nil), tris...),
		colors: append([]RGB(nil), cs...),
	}, nil
}

// TriangleCount returns the number of faces.
func (m *Mesh) TriangleCount() int { return len(m.tris) }

// Box builds an axis-aligned box of half-extents (hx, hy, hz) centered at
// the origin, 12 triangles.
func Box(hx, hy, hz float64, color RGB) *Mesh {
	verts := []mathx.Vec3{
		{X: -hx, Y: -hy, Z: -hz}, {X: hx, Y: -hy, Z: -hz},
		{X: hx, Y: hy, Z: -hz}, {X: -hx, Y: hy, Z: -hz},
		{X: -hx, Y: -hy, Z: hz}, {X: hx, Y: -hy, Z: hz},
		{X: hx, Y: hy, Z: hz}, {X: -hx, Y: hy, Z: hz},
	}
	// Counter-clockwise when viewed from outside.
	quads := [6][4]int{
		{1, 0, 3, 2}, // back  (-Z) seen from -Z
		{4, 5, 6, 7}, // front (+Z)
		{0, 4, 7, 3}, // left  (-X)
		{5, 1, 2, 6}, // right (+X)
		{3, 7, 6, 2}, // top   (+Y)
		{0, 1, 5, 4}, // bottom(-Y)
	}
	tris := make([][3]int, 0, 12)
	for _, q := range quads {
		tris = append(tris, [3]int{q[0], q[1], q[2]}, [3]int{q[0], q[2], q[3]})
	}
	m, err := NewMesh(verts, tris, []RGB{color})
	if err != nil {
		panic(err) // unreachable: geometry above is always valid
	}
	return m
}

// Cylinder builds a Y-axis cylinder (radius, halfHeight) with `sides`
// lateral faces.
func Cylinder(radius, halfHeight float64, sides int, color RGB) *Mesh {
	if sides < 3 {
		sides = 3
	}
	verts := make([]mathx.Vec3, 0, 2*sides+2)
	for i := 0; i < sides; i++ {
		a := 2 * math.Pi * float64(i) / float64(sides)
		s, c := math.Sincos(a)
		verts = append(verts,
			mathx.V3(radius*c, -halfHeight, radius*s),
			mathx.V3(radius*c, halfHeight, radius*s))
	}
	bottomC := len(verts)
	verts = append(verts, mathx.V3(0, -halfHeight, 0))
	topC := len(verts)
	verts = append(verts, mathx.V3(0, halfHeight, 0))

	tris := make([][3]int, 0, 4*sides)
	for i := 0; i < sides; i++ {
		b0, t0 := 2*i, 2*i+1
		b1, t1 := 2*((i+1)%sides), 2*((i+1)%sides)+1
		tris = append(tris,
			[3]int{b0, t1, t0}, // winding outward
			[3]int{b0, b1, t1},
			[3]int{topC, t0, t1},
			[3]int{bottomC, b1, b0},
		)
	}
	m, err := NewMesh(verts, tris, []RGB{color})
	if err != nil {
		panic(err) // unreachable
	}
	return m
}
