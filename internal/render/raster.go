package render

import (
	"fmt"
	"io"
	"math"

	"codsim/internal/mathx"
)

// Framebuffer is the render target: a color plane plus a depth plane.
type Framebuffer struct {
	W, H  int
	Color []RGB     // row-major
	Depth []float64 // NDC depth; smaller = nearer
}

// NewFramebuffer allocates a cleared framebuffer.
func NewFramebuffer(w, h int) (*Framebuffer, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("render: framebuffer %dx%d", w, h)
	}
	fb := &Framebuffer{W: w, H: h,
		Color: make([]RGB, w*h),
		Depth: make([]float64, w*h),
	}
	fb.Clear(RGB{})
	return fb, nil
}

// Clear fills the color plane and resets depth to the far plane.
func (fb *Framebuffer) Clear(bg RGB) {
	for i := range fb.Color {
		fb.Color[i] = bg
		fb.Depth[i] = math.Inf(1)
	}
}

// At returns the color at (x, y); (0,0) is the top-left corner.
func (fb *Framebuffer) At(x, y int) RGB { return fb.Color[y*fb.W+x] }

// WritePPM dumps the framebuffer as a binary PPM image.
func (fb *Framebuffer) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", fb.W, fb.H); err != nil {
		return fmt.Errorf("render: ppm header: %w", err)
	}
	buf := make([]byte, 0, fb.W*fb.H*3)
	for _, c := range fb.Color {
		buf = append(buf, c.R, c.G, c.B)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("render: ppm pixels: %w", err)
	}
	return nil
}

// FrameStats counts the work of one Render call — the render-cost ledger
// behind the EXP-1 fps experiments.
type FrameStats struct {
	Submitted  int // triangles submitted
	Culled     int // rejected by frustum or backface tests
	Clipped    int // triangles that needed near-plane clipping
	Rasterized int // triangles actually scanned
	Pixels     int // pixels shaded (depth-test passes)
}

// Instance places a mesh in the world.
type Instance struct {
	Mesh      *Mesh
	Transform mathx.Mat4
}

// Scene is everything one frame draws.
type Scene struct {
	Instances  []Instance
	LightDir   mathx.Vec3 // direction TOWARD the light (world space)
	Ambient    float64    // [0,1]
	Background RGB
}

// PolygonCount returns the total triangle count over all instances.
func (s *Scene) PolygonCount() int {
	n := 0
	for _, inst := range s.Instances {
		n += inst.Mesh.TriangleCount()
	}
	return n
}

// Renderer rasterizes scenes into its framebuffer. Not safe for concurrent
// use; each display LP owns one renderer (as each display PC owned one
// graphics card).
type Renderer struct {
	fb *Framebuffer
}

// NewRenderer builds a renderer with a w×h framebuffer.
func NewRenderer(w, h int) (*Renderer, error) {
	fb, err := NewFramebuffer(w, h)
	if err != nil {
		return nil, err
	}
	return &Renderer{fb: fb}, nil
}

// Framebuffer exposes the render target (for probing and PPM dumps).
func (r *Renderer) Framebuffer() *Framebuffer { return r.fb }

// Render draws the scene from the camera and returns the frame statistics.
func (r *Renderer) Render(scene *Scene, cam Camera) FrameStats {
	var stats FrameStats
	fb := r.fb
	fb.Clear(scene.Background)

	light := scene.LightDir.Normalize()
	if light.LenSq() == 0 {
		light = mathx.V3(0.3, 1, 0.2).Normalize()
	}
	vp := cam.ViewProj()

	for _, inst := range scene.Instances {
		mvp := vp.MulM(inst.Transform)
		mesh := inst.Mesh
		for ti, tri := range mesh.tris {
			stats.Submitted++
			// World-space vertices for lighting.
			w0 := inst.Transform.MulPoint(mesh.verts[tri[0]])
			w1 := inst.Transform.MulPoint(mesh.verts[tri[1]])
			w2 := inst.Transform.MulPoint(mesh.verts[tri[2]])

			// Clip-space positions.
			c0, cw0 := mvp.MulPointW(mesh.verts[tri[0]])
			c1, cw1 := mvp.MulPointW(mesh.verts[tri[1]])
			c2, cw2 := mvp.MulPointW(mesh.verts[tri[2]])
			cv := [3]clipVert{{c0, cw0}, {c1, cw1}, {c2, cw2}}

			// Trivial frustum rejection: all vertices outside one plane.
			if allOutside(cv) {
				stats.Culled++
				continue
			}

			// Near-plane clip (w <= nearEps would break the divide).
			poly, clipped := clipNear(cv[:])
			if len(poly) < 3 {
				stats.Culled++
				continue
			}
			if clipped {
				stats.Clipped++
			}

			// Flat shading from the world-space face normal.
			normal := w1.Sub(w0).Cross(w2.Sub(w0)).Normalize()
			diff := math.Max(0, normal.Dot(light))
			shade := mathx.Clamp(scene.Ambient+(1-scene.Ambient)*diff, 0, 1)
			base := mesh.colors[ti]
			col := RGB{
				R: uint8(float64(base.R) * shade),
				G: uint8(float64(base.G) * shade),
				B: uint8(float64(base.B) * shade),
			}

			// Fan-triangulate the clipped polygon and rasterize.
			for k := 1; k+1 < len(poly); k++ {
				if r.rasterTriangle(poly[0], poly[k], poly[k+1], col, &stats) {
					stats.Rasterized++
				} else {
					stats.Culled++
				}
			}
		}
	}
	return stats
}

type clipVert struct {
	p mathx.Vec3 // clip-space x, y, z (pre-divide)
	w float64
}

// allOutside reports whether all three vertices fall outside the same
// frustum plane (trivial reject).
func allOutside(v [3]clipVert) bool {
	type test func(clipVert) bool
	planes := []test{
		func(c clipVert) bool { return c.p.X > c.w },
		func(c clipVert) bool { return c.p.X < -c.w },
		func(c clipVert) bool { return c.p.Y > c.w },
		func(c clipVert) bool { return c.p.Y < -c.w },
		func(c clipVert) bool { return c.p.Z > c.w },
		func(c clipVert) bool { return c.p.Z < -c.w },
	}
	for _, outside := range planes {
		if outside(v[0]) && outside(v[1]) && outside(v[2]) {
			return true
		}
	}
	return false
}

const nearEps = 1e-5

// clipNear clips the polygon against the w > nearEps half-space
// (Sutherland–Hodgman on the near plane).
func clipNear(in []clipVert) (out []clipVert, clipped bool) {
	inside := func(v clipVert) bool { return v.w > nearEps }
	all := true
	for _, v := range in {
		if !inside(v) {
			all = false
			break
		}
	}
	if all {
		return in, false
	}
	out = make([]clipVert, 0, len(in)+1)
	for i := range in {
		cur, next := in[i], in[(i+1)%len(in)]
		cIn, nIn := inside(cur), inside(next)
		if cIn {
			out = append(out, cur)
		}
		if cIn != nIn {
			t := (nearEps - cur.w) / (next.w - cur.w)
			out = append(out, clipVert{
				p: cur.p.Lerp(next.p, t),
				w: nearEps,
			})
		}
	}
	return out, true
}

// rasterTriangle scan-converts one clip-space triangle; reports whether it
// produced fragments (false = backface or degenerate).
func (r *Renderer) rasterTriangle(a, b, c clipVert, col RGB, stats *FrameStats) bool {
	fb := r.fb
	w, h := float64(fb.W), float64(fb.H)

	// Perspective divide to NDC, then to screen.
	toScreen := func(v clipVert) (x, y, z float64) {
		inv := 1 / v.w
		return (v.p.X*inv + 1) * 0.5 * w, (1 - v.p.Y*inv) * 0.5 * h, v.p.Z * inv
	}
	x0, y0, z0 := toScreen(a)
	x1, y1, z1 := toScreen(b)
	x2, y2, z2 := toScreen(c)

	// Signed area: cull backfaces (counter-clockwise in screen space after
	// the Y flip means the area is negative for front faces).
	area := (x1-x0)*(y2-y0) - (x2-x0)*(y1-y0)
	if area >= -1e-12 { // backface or degenerate
		return false
	}
	invArea := 1 / area

	minX := int(math.Max(0, math.Floor(math.Min(x0, math.Min(x1, x2)))))
	maxX := int(math.Min(w-1, math.Ceil(math.Max(x0, math.Max(x1, x2)))))
	minY := int(math.Max(0, math.Floor(math.Min(y0, math.Min(y1, y2)))))
	maxY := int(math.Min(h-1, math.Ceil(math.Max(y0, math.Max(y1, y2)))))
	if minX > maxX || minY > maxY {
		return false
	}

	for py := minY; py <= maxY; py++ {
		fy := float64(py) + 0.5
		rowBase := py * fb.W
		for px := minX; px <= maxX; px++ {
			fx := float64(px) + 0.5
			// Barycentric coordinates via edge functions.
			w0 := ((x1-fx)*(y2-fy) - (x2-fx)*(y1-fy)) * invArea
			w1 := ((x2-fx)*(y0-fy) - (x0-fx)*(y2-fy)) * invArea
			w2 := 1 - w0 - w1
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			z := w0*z0 + w1*z1 + w2*z2
			idx := rowBase + px
			if z < fb.Depth[idx] {
				fb.Depth[idx] = z
				fb.Color[idx] = col
				stats.Pixels++
			}
		}
	}
	return true
}
