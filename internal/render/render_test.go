package render

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/terrain"
)

func singleTriScene(color RGB) *Scene {
	// A triangle facing +Z placed at z=-5, wound counter-clockwise when
	// viewed from +Z (the camera at origin looking down -Z).
	verts := []mathx.Vec3{
		{X: -1, Y: -1, Z: -5},
		{X: 1, Y: -1, Z: -5},
		{X: 0, Y: 1, Z: -5},
	}
	m, err := NewMesh(verts, [][3]int{{0, 1, 2}}, []RGB{color})
	if err != nil {
		panic(err)
	}
	return &Scene{
		Instances: []Instance{{Mesh: m, Transform: mathx.Identity4()}},
		LightDir:  mathx.V3(0, 0, 1),
		Ambient:   1, // full ambient: color arrives unchanged
	}
}

func frontCamera() Camera {
	c := DefaultCamera()
	c.Eye = mathx.V3(0, 0, 0)
	c.Target = mathx.V3(0, 0, -1)
	c.Aspect = 1
	return c
}

func TestNewMeshValidation(t *testing.T) {
	v := []mathx.Vec3{{}, {X: 1}, {Y: 1}}
	if _, err := NewMesh(nil, [][3]int{{0, 1, 2}}, []RGB{{}}); err == nil {
		t.Error("empty verts accepted")
	}
	if _, err := NewMesh(v, nil, []RGB{{}}); err == nil {
		t.Error("empty tris accepted")
	}
	if _, err := NewMesh(v, [][3]int{{0, 1, 9}}, []RGB{{}}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := NewMesh(v, [][3]int{{0, 1, 2}}, []RGB{{}, {}}); err == nil {
		t.Error("wrong color count accepted")
	}
	m, err := NewMesh(v, [][3]int{{0, 1, 2}, {2, 1, 0}}, []RGB{{R: 9}})
	if err != nil {
		t.Fatalf("single color broadcast failed: %v", err)
	}
	if m.colors[1].R != 9 {
		t.Error("broadcast color missing")
	}
}

func TestNewFramebufferValidation(t *testing.T) {
	if _, err := NewFramebuffer(0, 10); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewRenderer(-1, 5); err == nil {
		t.Error("negative size accepted")
	}
}

func TestRenderSingleTriangle(t *testing.T) {
	r, err := NewRenderer(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	scene := singleTriScene(RGB{R: 255})
	stats := r.Render(scene, frontCamera())

	if stats.Submitted != 1 || stats.Rasterized != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Pixels == 0 {
		t.Fatal("no pixels shaded")
	}
	// The triangle center projects to mid-screen.
	if got := r.Framebuffer().At(50, 55); got.R != 255 || got.G != 0 {
		t.Errorf("center pixel = %+v, want red", got)
	}
	// Outside the triangle stays background.
	if got := r.Framebuffer().At(5, 5); got.R != 0 {
		t.Errorf("corner pixel = %+v, want background", got)
	}
}

func TestBackfaceCulled(t *testing.T) {
	r, err := NewRenderer(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	scene := singleTriScene(RGB{R: 255})
	// Reverse the winding: now it faces away from the camera.
	scene.Instances[0].Mesh.tris[0] = [3]int{2, 1, 0}
	stats := r.Render(scene, frontCamera())
	if stats.Pixels != 0 {
		t.Errorf("backface shaded %d pixels", stats.Pixels)
	}
	if stats.Culled != 1 {
		t.Errorf("stats = %+v, want 1 culled", stats)
	}
}

func TestFrustumCullBehindCamera(t *testing.T) {
	r, err := NewRenderer(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	scene := singleTriScene(RGB{R: 255})
	// Move the triangle behind the camera.
	scene.Instances[0].Transform = mathx.Translate(mathx.V3(0, 0, 20))
	stats := r.Render(scene, frontCamera())
	if stats.Pixels != 0 || stats.Rasterized != 0 {
		t.Errorf("stats = %+v, want everything culled", stats)
	}
}

func TestZBufferOcclusion(t *testing.T) {
	r, err := NewRenderer(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	near := singleTriScene(RGB{R: 255}) // at z=-5
	farTri := singleTriScene(RGB{G: 255})
	farTri.Instances[0].Transform = mathx.Translate(mathx.V3(0, 0, -5)) // at z=-10
	scene := &Scene{
		Instances: []Instance{farTri.Instances[0], near.Instances[0]},
		Ambient:   1,
	}
	r.Render(scene, frontCamera())
	if got := r.Framebuffer().At(50, 55); got.R != 255 || got.G != 0 {
		t.Errorf("center = %+v, want near (red) triangle", got)
	}

	// Draw order must not matter.
	scene.Instances[0], scene.Instances[1] = scene.Instances[1], scene.Instances[0]
	r.Render(scene, frontCamera())
	if got := r.Framebuffer().At(50, 55); got.R != 255 || got.G != 0 {
		t.Errorf("center after reorder = %+v, want red", got)
	}
}

func TestNearPlaneClipping(t *testing.T) {
	// A triangle straddling the camera plane must be clipped, not culled
	// and not crash the projection.
	r, err := NewRenderer(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	verts := []mathx.Vec3{
		{X: -1, Y: -0.5, Z: 2}, // behind the camera
		{X: 1, Y: -0.5, Z: -5}, // in front
		{X: 0, Y: 0.8, Z: -5},  // in front
	}
	m, err := NewMesh(verts, [][3]int{{0, 1, 2}}, []RGB{{B: 255}})
	if err != nil {
		t.Fatal(err)
	}
	scene := &Scene{Instances: []Instance{{Mesh: m, Transform: mathx.Identity4()}}, Ambient: 1}
	stats := r.Render(scene, frontCamera())
	if stats.Clipped != 1 {
		t.Errorf("stats = %+v, want 1 clipped", stats)
	}
	if stats.Pixels == 0 {
		t.Error("clipped triangle produced no pixels")
	}
}

func TestLambertShading(t *testing.T) {
	r, err := NewRenderer(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	scene := singleTriScene(RGB{R: 200})
	scene.Ambient = 0
	scene.LightDir = mathx.V3(0, 0, 1) // head-on: full diffuse
	r.Render(scene, frontCamera())
	headOn := r.Framebuffer().At(32, 36).R

	scene.LightDir = mathx.V3(0, 0, -1) // from behind: zero diffuse
	r.Render(scene, frontCamera())
	backLit := r.Framebuffer().At(32, 36).R

	if headOn < 190 {
		t.Errorf("head-on brightness = %d, want ~200", headOn)
	}
	if backLit != 0 {
		t.Errorf("back-lit brightness = %d, want 0", backLit)
	}
}

func TestBoxAndCylinderRender(t *testing.T) {
	r, err := NewRenderer(128, 128)
	if err != nil {
		t.Fatal(err)
	}
	cam := frontCamera()
	cam.Eye = mathx.V3(3, 3, 3)
	cam.Target = mathx.V3(0, 0, 0)
	scene := &Scene{
		Instances: []Instance{
			{Mesh: Box(1, 1, 1, RGB{R: 255}), Transform: mathx.Identity4()},
			{Mesh: Cylinder(0.5, 2, 10, RGB{G: 255}), Transform: mathx.Translate(mathx.V3(2, 0, 0))},
		},
		LightDir: mathx.V3(1, 1, 1),
		Ambient:  0.4,
	}
	stats := r.Render(scene, cam)
	if stats.Pixels == 0 {
		t.Fatal("nothing rendered")
	}
	// Roughly half the box triangles are backfaces.
	if stats.Rasterized == 0 || stats.Rasterized >= stats.Submitted {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSurroundCamerasCoverPanorama(t *testing.T) {
	eye := mathx.V3(0, 2, 0)
	cams := SurroundCameras(eye, 0, 3, mathx.Rad(40), 4.0/3.0)
	if len(cams) != 3 {
		t.Fatalf("cameras = %d", len(cams))
	}
	// The middle camera looks along -Z; side cameras ±40°.
	mid := cams[1].Target.Sub(cams[1].Eye)
	if math.Abs(mid.X) > 1e-9 || mid.Z >= 0 {
		t.Errorf("middle camera dir = %v", mid)
	}
	left := cams[0].Target.Sub(cams[0].Eye)
	right := cams[2].Target.Sub(cams[2].Eye)
	wantYaw := mathx.Rad(40)
	if got := math.Atan2(left.X, -left.Z); math.Abs(got+wantYaw) > 1e-9 {
		t.Errorf("left yaw = %v, want %v", got, -wantYaw)
	}
	if got := math.Atan2(right.X, -right.Z); math.Abs(got-wantYaw) > 1e-9 {
		t.Errorf("right yaw = %v, want %v", got, wantYaw)
	}
	// All share the eye point.
	for i, c := range cams {
		if c.Eye != eye {
			t.Errorf("camera %d eye = %v", i, c.Eye)
		}
	}

	// A landmark at the seam between middle and right (20° yaw) is seen
	// by both: near the right edge of the middle view and the left edge
	// of the right view.
	landmark := eye.Add(mathx.V3(math.Sin(mathx.Rad(20)), 0, -math.Cos(mathx.Rad(20))).Scale(20))
	probe := func(cam Camera) (float64, bool) {
		clip, w := cam.ViewProj().MulPointW(landmark)
		if w <= 0 {
			return 0, false
		}
		return clip.X / w, math.Abs(clip.X/w) <= 1.02
	}
	xm, okm := probe(cams[1])
	xr, okr := probe(cams[2])
	if !okm || !okr {
		t.Fatalf("landmark not visible in both seam views: %v %v", okm, okr)
	}
	if xm < 0.9 || xr > -0.9 {
		t.Errorf("seam landmark at x=%v (middle), x=%v (right); want near ±1", xm, xr)
	}
}

func TestSurroundCamerasDegenerate(t *testing.T) {
	cams := SurroundCameras(mathx.Vec3{}, 0, 0, mathx.Rad(40), 1)
	if len(cams) != 1 {
		t.Errorf("count 0 → %d cameras, want 1", len(cams))
	}
}

func TestTerrainMesh(t *testing.T) {
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		t.Fatal(err)
	}
	m, err := TerrainMesh(ter, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.TriangleCount() != 2*20*20 {
		t.Errorf("triangles = %d, want 800", m.TriangleCount())
	}
	if _, err := TerrainMesh(ter, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := TerrainMesh(ter, 1e9); err == nil {
		t.Error("absurd step accepted")
	}
}

func TestSceneBuilderPolygonBudget(t *testing.T) {
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		t.Fatal(err)
	}
	const target = 3235 // the paper's scene size
	b, err := NewSceneBuilder(ter, []Obstacle{
		{Pos: mathx.V3(100, 1, 100), Half: mathx.V3(0.2, 1, 2), Color: RGB{R: 200}},
	}, target)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.PolygonCount(); got < target || got > target+50 {
		t.Errorf("polygons = %d, want >= %d (small overshoot ok)", got, target)
	}
}

func TestSceneBuilderFrame(t *testing.T) {
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSceneBuilder(ter, nil, 3235)
	if err != nil {
		t.Fatal(err)
	}
	st := fom.CraneState{
		Position: mathx.V3(100, 0, 100),
		BoomLuff: mathx.Rad(45),
		BoomLen:  15,
		CableLen: 6,
		HookPos:  mathx.V3(100, 5, 90),
		CargoPos: mathx.V3(100, 1, 90),
	}
	scene := b.Frame(st)

	r, err := NewRenderer(160, 120)
	if err != nil {
		t.Fatal(err)
	}
	cams := SurroundCameras(mathx.V3(100, 4, 106), 0, 3, mathx.Rad(40), 4.0/3.0)
	for i, cam := range cams {
		stats := r.Render(scene, cam)
		if stats.Pixels == 0 {
			t.Errorf("camera %d rendered no pixels", i)
		}
		if stats.Submitted != b.PolygonCount() {
			t.Errorf("camera %d submitted %d, want %d", i, stats.Submitted, b.PolygonCount())
		}
	}

	// Moving the crane moves the carrier instance.
	before := b.scene.Instances[b.parts[0].carrier].Transform
	st.Position = mathx.V3(120, 0, 80)
	b.Frame(st)
	after := b.scene.Instances[b.parts[0].carrier].Transform
	if before == after {
		t.Error("carrier transform did not track state")
	}
}

func TestWritePPM(t *testing.T) {
	r, err := NewRenderer(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	r.Render(singleTriScene(RGB{R: 255}), frontCamera())
	var buf bytes.Buffer
	if err := r.Framebuffer().WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "P6\n8 4\n255\n") {
		t.Errorf("header = %q", out[:16])
	}
	if buf.Len() != len("P6\n8 4\n255\n")+8*4*3 {
		t.Errorf("ppm length = %d", buf.Len())
	}
}

func TestRenderDeterministic(t *testing.T) {
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSceneBuilder(ter, nil, 2000)
	if err != nil {
		t.Fatal(err)
	}
	st := fom.CraneState{Position: mathx.V3(100, 0, 100), BoomLuff: 0.5, BoomLen: 12, CableLen: 5, HookPos: mathx.V3(100, 3, 92)}
	cam := DefaultCamera()
	cam.Eye = mathx.V3(100, 5, 110)
	cam.Target = mathx.V3(100, 2, 90)

	render := func() []RGB {
		r, err := NewRenderer(80, 60)
		if err != nil {
			t.Fatal(err)
		}
		r.Render(b.Frame(st), cam)
		return append([]RGB(nil), r.Framebuffer().Color...)
	}
	a := render()
	bb := render()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("pixel %d differs between identical renders", i)
		}
	}
}

func BenchmarkRenderSiteScene(b *testing.B) {
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		b.Fatal(err)
	}
	builder, err := NewSceneBuilder(ter, nil, 3235)
	if err != nil {
		b.Fatal(err)
	}
	st := fom.CraneState{Position: mathx.V3(100, 0, 100), BoomLuff: 0.6, BoomLen: 14, CableLen: 6, HookPos: mathx.V3(100, 4, 90)}
	scene := builder.Frame(st)
	r, err := NewRenderer(640, 480)
	if err != nil {
		b.Fatal(err)
	}
	cam := SurroundCameras(mathx.V3(100, 4, 106), 0, 3, mathx.Rad(40), 4.0/3.0)[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Render(scene, cam)
	}
}
