package collision

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"codsim/internal/mathx"
)

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(nil); err == nil {
		t.Error("empty mesh accepted")
	}
	bad := []Triangle{{A: mathx.V3(math.NaN(), 0, 0)}}
	if _, err := NewMesh(bad); err == nil {
		t.Error("NaN vertex accepted")
	}
}

func TestBoxMeshGeometry(t *testing.T) {
	m := BoxMesh(1, 2, 3)
	if m.TriangleCount() != 12 {
		t.Errorf("box triangles = %d, want 12", m.TriangleCount())
	}
	if !m.min.NearEq(mathx.V3(-1, -2, -3), 1e-12) || !m.max.NearEq(mathx.V3(1, 2, 3), 1e-12) {
		t.Errorf("box bounds = %v..%v", m.min, m.max)
	}
	wantR := math.Sqrt(1 + 4 + 9)
	if math.Abs(m.radius-wantR) > 1e-12 {
		t.Errorf("box radius = %v, want %v", m.radius, wantR)
	}
}

func TestCylinderMeshGeometry(t *testing.T) {
	m := CylinderMesh(2, 5, 12)
	if m.TriangleCount() != 48 {
		t.Errorf("cylinder triangles = %d, want 48", m.TriangleCount())
	}
	if m.max.Y != 5 || m.min.Y != -5 {
		t.Errorf("cylinder Y bounds = %v..%v", m.min.Y, m.max.Y)
	}
	// Degenerate side count clamps to 3.
	if got := CylinderMesh(1, 1, 0).TriangleCount(); got != 12 {
		t.Errorf("clamped cylinder triangles = %d, want 12", got)
	}
}

func TestSegmentTriangle(t *testing.T) {
	tri := Triangle{A: mathx.V3(0, 0, 0), B: mathx.V3(2, 0, 0), C: mathx.V3(0, 2, 0)}
	tests := []struct {
		name   string
		p0, p1 mathx.Vec3
		hit    bool
	}{
		{"through center", mathx.V3(0.5, 0.5, -1), mathx.V3(0.5, 0.5, 1), true},
		{"stops short", mathx.V3(0.5, 0.5, -2), mathx.V3(0.5, 0.5, -1), false},
		{"starts past", mathx.V3(0.5, 0.5, 1), mathx.V3(0.5, 0.5, 2), false},
		{"misses sideways", mathx.V3(5, 5, -1), mathx.V3(5, 5, 1), false},
		{"parallel", mathx.V3(0, 0, 1), mathx.V3(1, 0, 1), false},
		{"touch vertex region", mathx.V3(0.01, 0.01, -1), mathx.V3(0.01, 0.01, 1), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, hit := segmentTriangle(tt.p0, tt.p1, tri)
			if hit != tt.hit {
				t.Fatalf("hit = %v, want %v", hit, tt.hit)
			}
			if hit && math.Abs(p.Z) > 1e-9 {
				t.Errorf("intersection point %v not on triangle plane", p)
			}
		})
	}
}

func TestCheckPairSeparated(t *testing.T) {
	var w World
	a := NewObject("a", BoxMesh(1, 1, 1))
	b := NewObject("b", BoxMesh(1, 1, 1))
	b.SetPose(mathx.V3(10, 0, 0), mathx.QuatIdentity())
	w.Add(a)
	w.Add(b)
	if got := w.FindContacts(); len(got) != 0 {
		t.Errorf("contacts = %v, want none", got)
	}
	st := w.Stats()
	if st.L1Reject != 1 || st.L3Tests != 0 {
		t.Errorf("stats = %+v: expected L1 rejection", st)
	}
}

func TestCheckPairAABBRejects(t *testing.T) {
	// Two long thin diagonal-ish boxes whose spheres overlap but whose
	// AABBs do not: sphere radius spans the long axis.
	var w World
	a := NewObject("a", BoxMesh(10, 0.1, 0.1))
	b := NewObject("b", BoxMesh(10, 0.1, 0.1))
	b.SetPose(mathx.V3(0, 5, 0), mathx.QuatIdentity())
	w.Add(a)
	w.Add(b)
	if got := w.FindContacts(); len(got) != 0 {
		t.Errorf("contacts = %v, want none", got)
	}
	st := w.Stats()
	if st.L2Reject != 1 {
		t.Errorf("stats = %+v: expected L2 rejection", st)
	}
}

func TestCheckPairOverlap(t *testing.T) {
	var w World
	a := NewObject("a", BoxMesh(1, 1, 1))
	b := NewObject("b", BoxMesh(1, 1, 1))
	b.SetPose(mathx.V3(1.5, 0.5, 0), mathx.QuatIdentity())
	w.Add(a)
	w.Add(b)
	got := w.FindContacts()
	if len(got) != 1 {
		t.Fatalf("contacts = %v, want 1", got)
	}
	if got[0].A != "a" || got[0].B != "b" {
		t.Errorf("contact pair = %s,%s", got[0].A, got[0].B)
	}
	// Contact point lies in the overlap region.
	p := got[0].Point
	if p.X < 0.4 || p.X > 1.1 {
		t.Errorf("contact point %v outside overlap band", p)
	}
}

func TestRotatedCollision(t *testing.T) {
	// A thin bar rotated 45° about Y hits a box a straight bar would miss.
	var w World
	bar := NewObject("bar", BoxMesh(4, 0.2, 0.2))
	box := NewObject("box", BoxMesh(0.5, 0.5, 0.5))
	box.SetPose(mathx.V3(2.3, 0, -2.3), mathx.QuatIdentity())
	w.Add(bar)
	w.Add(box)
	if got := w.FindContacts(); len(got) != 0 {
		t.Fatalf("unrotated bar should miss, got %v", got)
	}
	bar.SetPose(mathx.Vec3{}, mathx.QuatAxisAngle(mathx.V3(0, 1, 0), math.Pi/4))
	if got := w.FindContacts(); len(got) != 1 {
		t.Errorf("rotated bar should hit, got %v", got)
	}
}

func TestContainmentNotDetected(t *testing.T) {
	// Full containment has no edge/face crossings — a documented property
	// of the Moore–Wilhelms edge test. The simulator never fully swallows
	// obstacles (bars are longer than the cargo), so this is acceptable;
	// the test pins the behaviour so a change is deliberate.
	var w World
	outer := NewObject("outer", BoxMesh(5, 5, 5))
	inner := NewObject("inner", BoxMesh(0.5, 0.5, 0.5))
	w.Add(outer)
	w.Add(inner)
	if got := w.FindContacts(); len(got) != 0 {
		t.Errorf("containment unexpectedly detected: %v", got)
	}
}

func TestBruteForceMatchesMultiLevel(t *testing.T) {
	// Property: for random poses, brute force and multi-level agree.
	mk := func(seedX, seedZ, yaw float64) (*World, *World) {
		a1 := NewObject("a", BoxMesh(1, 1, 1))
		b1 := NewObject("b", BoxMesh(1.5, 0.3, 0.3))
		a2 := NewObject("a", BoxMesh(1, 1, 1))
		b2 := NewObject("b", BoxMesh(1.5, 0.3, 0.3))
		pose := mathx.V3(seedX, 0, seedZ)
		rot := mathx.QuatAxisAngle(mathx.V3(0, 1, 0), yaw)
		b1.SetPose(pose, rot)
		b2.SetPose(pose, rot)
		var ml, bf World
		bf.BruteForce = true
		ml.Add(a1)
		ml.Add(b1)
		bf.Add(a2)
		bf.Add(b2)
		return &ml, &bf
	}
	f := func(xr, zr, yawr float64) bool {
		x := math.Mod(math.Abs(xr), 6) - 3
		z := math.Mod(math.Abs(zr), 6) - 3
		yaw := math.Mod(yawr, math.Pi)
		if math.IsNaN(x) || math.IsNaN(z) || math.IsNaN(yaw) {
			return true
		}
		ml, bf := mk(x, z, yaw)
		c1 := ml.FindContacts()
		c2 := bf.FindContacts()
		return (len(c1) > 0) == (len(c2) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMultiLevelPrunesWork(t *testing.T) {
	// A field of scattered objects: multi-level must do far fewer
	// primitive tests than brute force.
	build := func(brute bool) *World {
		w := &World{BruteForce: brute}
		for i := 0; i < 40; i++ {
			o := NewObject(fmt.Sprintf("o%d", i), BoxMesh(0.5, 0.5, 0.5))
			o.SetPose(mathx.V3(float64(i%8)*5, 0, float64(i/8)*5), mathx.QuatIdentity())
			w.Add(o)
		}
		return w
	}
	ml := build(false)
	bf := build(true)
	ml.FindContacts()
	bf.FindContacts()
	mlChecks := ml.Stats().TriChecks
	bfChecks := bf.Stats().TriChecks
	if mlChecks*10 > bfChecks {
		t.Errorf("multi-level tri checks %d vs brute %d: pruning ineffective", mlChecks, bfChecks)
	}
}

func TestStatsReset(t *testing.T) {
	var w World
	w.Add(NewObject("a", BoxMesh(1, 1, 1)))
	w.Add(NewObject("b", BoxMesh(1, 1, 1)))
	w.FindContacts()
	if w.Stats().Pairs == 0 {
		t.Fatal("no pairs recorded")
	}
	w.ResetStats()
	if w.Stats().Pairs != 0 {
		t.Error("ResetStats did not clear")
	}
}

func BenchmarkMultiLevelField(b *testing.B) {
	w := &World{}
	for i := 0; i < 60; i++ {
		o := NewObject(fmt.Sprintf("o%d", i), BoxMesh(0.5, 0.5, 0.5))
		o.SetPose(mathx.V3(float64(i%8)*4, 0, float64(i/8)*4), mathx.QuatIdentity())
		w.Add(o)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.FindContacts()
	}
}

func BenchmarkBruteForceField(b *testing.B) {
	w := &World{BruteForce: true}
	for i := 0; i < 60; i++ {
		o := NewObject(fmt.Sprintf("o%d", i), BoxMesh(0.5, 0.5, 0.5))
		o.SetPose(mathx.V3(float64(i%8)*4, 0, float64(i/8)*4), mathx.QuatIdentity())
		w.Add(o)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.FindContacts()
	}
}
