// Package collision implements the multi-level collision detection the
// dynamics module uses to "effectively perceive" collisions (§3.6, citing
// Moore & Wilhelms [10]). A candidate pair descends three levels, each
// cheaper test pruning the next:
//
//	L1: bounding-sphere overlap   — one distance comparison
//	L2: world AABB overlap        — six comparisons
//	L3: exact mesh test           — edge/triangle intersections
//
// A brute-force mode that jumps straight to L3 for every pair exists solely
// as the baseline of the EXP-5 ablation benchmark.
package collision

import (
	"fmt"
	"math"

	"codsim/internal/mathx"
)

// Triangle is one face of a collision mesh, in local coordinates.
type Triangle struct {
	A, B, C mathx.Vec3
}

// Mesh is an immutable triangle soup with a precomputed local bounding
// sphere and box.
type Mesh struct {
	tris   []Triangle
	center mathx.Vec3
	radius float64
	min    mathx.Vec3
	max    mathx.Vec3
}

// NewMesh builds a mesh from triangles (copied).
func NewMesh(tris []Triangle) (*Mesh, error) {
	if len(tris) == 0 {
		return nil, fmt.Errorf("collision: empty mesh")
	}
	m := &Mesh{tris: append([]Triangle(nil), tris...)}
	m.min = mathx.V3(math.Inf(1), math.Inf(1), math.Inf(1))
	m.max = m.min.Neg()
	for _, t := range m.tris {
		for _, v := range []mathx.Vec3{t.A, t.B, t.C} {
			if !v.IsFinite() {
				return nil, fmt.Errorf("collision: non-finite vertex %v", v)
			}
			m.min = m.min.Min(v)
			m.max = m.max.Max(v)
		}
	}
	m.center = m.min.Add(m.max).Scale(0.5)
	for _, t := range m.tris {
		for _, v := range []mathx.Vec3{t.A, t.B, t.C} {
			if r := v.Sub(m.center).Len(); r > m.radius {
				m.radius = r
			}
		}
	}
	return m, nil
}

// Triangles returns the mesh faces (shared slice; do not mutate).
func (m *Mesh) Triangles() []Triangle { return m.tris }

// TriangleCount returns the number of faces.
func (m *Mesh) TriangleCount() int { return len(m.tris) }

// Object is a mesh instance placed in the world. Update its pose with
// SetPose; the world-space bounds refresh lazily.
type Object struct {
	ID   string
	mesh *Mesh

	pos mathx.Vec3
	rot mathx.Quat

	worldDirty  bool
	worldTris   []Triangle
	worldCenter mathx.Vec3
	worldMin    mathx.Vec3
	worldMax    mathx.Vec3
}

// NewObject places mesh at the origin with identity rotation.
func NewObject(id string, mesh *Mesh) *Object {
	return &Object{ID: id, mesh: mesh, rot: mathx.QuatIdentity(), worldDirty: true}
}

// SetPose moves the object to pos with rotation rot.
func (o *Object) SetPose(pos mathx.Vec3, rot mathx.Quat) {
	o.pos = pos
	o.rot = rot
	o.worldDirty = true
}

// Pos returns the object's position.
func (o *Object) Pos() mathx.Vec3 { return o.pos }

// sphere returns the world bounding sphere (center, radius).
func (o *Object) sphere() (mathx.Vec3, float64) {
	return o.pos.Add(o.rot.Rotate(o.mesh.center)), o.mesh.radius
}

// refreshWorld recomputes world triangles and the AABB when stale.
func (o *Object) refreshWorld() {
	if !o.worldDirty {
		return
	}
	if cap(o.worldTris) < len(o.mesh.tris) {
		o.worldTris = make([]Triangle, len(o.mesh.tris))
	}
	o.worldTris = o.worldTris[:len(o.mesh.tris)]
	o.worldMin = mathx.V3(math.Inf(1), math.Inf(1), math.Inf(1))
	o.worldMax = o.worldMin.Neg()
	for i, t := range o.mesh.tris {
		wt := Triangle{
			A: o.pos.Add(o.rot.Rotate(t.A)),
			B: o.pos.Add(o.rot.Rotate(t.B)),
			C: o.pos.Add(o.rot.Rotate(t.C)),
		}
		o.worldTris[i] = wt
		for _, v := range []mathx.Vec3{wt.A, wt.B, wt.C} {
			o.worldMin = o.worldMin.Min(v)
			o.worldMax = o.worldMax.Max(v)
		}
	}
	o.worldCenter = o.worldMin.Add(o.worldMax).Scale(0.5)
	o.worldDirty = false
}

// Contact reports one detected collision between two objects.
type Contact struct {
	A, B  string     // object IDs
	Point mathx.Vec3 // approximate contact point (world)
}

// Stats counts how far pairs descended the level hierarchy, for the EXP-5
// ablation report.
type Stats struct {
	Pairs     int64 // pairs examined
	L1Reject  int64 // rejected by bounding spheres
	L2Reject  int64 // rejected by AABBs
	L3Tests   int64 // exact mesh tests executed
	Contacts  int64 // contacts found
	TriChecks int64 // edge/triangle primitive tests at L3
}

// World owns a set of objects and finds contacts between them.
type World struct {
	objects []*Object
	// BruteForce skips L1/L2 pruning (ablation baseline only).
	BruteForce bool
	stats      Stats
}

// Add registers an object.
func (w *World) Add(o *Object) { w.objects = append(w.objects, o) }

// Objects returns the registered objects (shared slice; do not mutate).
func (w *World) Objects() []*Object { return w.objects }

// Stats returns cumulative detection statistics.
func (w *World) Stats() Stats { return w.stats }

// ResetStats clears the cumulative statistics.
func (w *World) ResetStats() { w.stats = Stats{} }

// FindContacts tests every object pair and returns the contacts found this
// call.
func (w *World) FindContacts() []Contact {
	var out []Contact
	for i := 0; i < len(w.objects); i++ {
		for j := i + 1; j < len(w.objects); j++ {
			if c, hit := w.CheckPair(w.objects[i], w.objects[j]); hit {
				out = append(out, c)
			}
		}
	}
	return out
}

// CheckPair runs the multi-level test on one pair.
func (w *World) CheckPair(a, b *Object) (Contact, bool) {
	w.stats.Pairs++
	if !w.BruteForce {
		// Level 1: bounding spheres.
		ca, ra := a.sphere()
		cbv, rb := b.sphere()
		if ca.Sub(cbv).LenSq() > (ra+rb)*(ra+rb) {
			w.stats.L1Reject++
			return Contact{}, false
		}
		// Level 2: world AABBs.
		a.refreshWorld()
		b.refreshWorld()
		if !aabbOverlap(a.worldMin, a.worldMax, b.worldMin, b.worldMax) {
			w.stats.L2Reject++
			return Contact{}, false
		}
	} else {
		a.refreshWorld()
		b.refreshWorld()
	}
	// Level 3: exact mesh intersection.
	w.stats.L3Tests++
	if p, hit := w.meshIntersect(a, b); hit {
		w.stats.Contacts++
		return Contact{A: a.ID, B: b.ID, Point: p}, true
	}
	return Contact{}, false
}

func aabbOverlap(minA, maxA, minB, maxB mathx.Vec3) bool {
	return minA.X <= maxB.X && maxA.X >= minB.X &&
		minA.Y <= maxB.Y && maxA.Y >= minB.Y &&
		minA.Z <= maxB.Z && maxA.Z >= minB.Z
}

// meshIntersect reports whether any edge of one mesh pierces a triangle of
// the other (the Moore–Wilhelms edge/face test, both directions).
func (w *World) meshIntersect(a, b *Object) (mathx.Vec3, bool) {
	if p, hit := w.edgesVsTris(a.worldTris, b.worldTris); hit {
		return p, true
	}
	return w.edgesVsTris(b.worldTris, a.worldTris)
}

func (w *World) edgesVsTris(from, against []Triangle) (mathx.Vec3, bool) {
	for _, t := range from {
		edges := [3][2]mathx.Vec3{{t.A, t.B}, {t.B, t.C}, {t.C, t.A}}
		for _, e := range edges {
			for _, tb := range against {
				w.stats.TriChecks++
				if p, hit := segmentTriangle(e[0], e[1], tb); hit {
					return p, true
				}
			}
		}
	}
	return mathx.Vec3{}, false
}

// segmentTriangle intersects segment p0→p1 with triangle t
// (Möller–Trumbore, restricted to the segment's parameter range).
func segmentTriangle(p0, p1 mathx.Vec3, t Triangle) (mathx.Vec3, bool) {
	const eps = 1e-12
	dir := p1.Sub(p0)
	e1 := t.B.Sub(t.A)
	e2 := t.C.Sub(t.A)
	h := dir.Cross(e2)
	det := e1.Dot(h)
	if det > -eps && det < eps {
		return mathx.Vec3{}, false // parallel
	}
	inv := 1 / det
	s := p0.Sub(t.A)
	u := s.Dot(h) * inv
	if u < 0 || u > 1 {
		return mathx.Vec3{}, false
	}
	q := s.Cross(e1)
	v := dir.Dot(q) * inv
	if v < 0 || u+v > 1 {
		return mathx.Vec3{}, false
	}
	k := e2.Dot(q) * inv
	if k < 0 || k > 1 {
		return mathx.Vec3{}, false // beyond the segment
	}
	return p0.Add(dir.Scale(k)), true
}
