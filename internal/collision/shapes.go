package collision

import (
	"math"

	"codsim/internal/mathx"
)

// BoxMesh builds an axis-aligned box of the given half-extents centered at
// the local origin (12 triangles). Bars, cargo crates and the carrier body
// all use boxes.
func BoxMesh(hx, hy, hz float64) *Mesh {
	v := [8]mathx.Vec3{
		{X: -hx, Y: -hy, Z: -hz}, {X: hx, Y: -hy, Z: -hz},
		{X: hx, Y: hy, Z: -hz}, {X: -hx, Y: hy, Z: -hz},
		{X: -hx, Y: -hy, Z: hz}, {X: hx, Y: -hy, Z: hz},
		{X: hx, Y: hy, Z: hz}, {X: -hx, Y: hy, Z: hz},
	}
	quads := [6][4]int{
		{0, 1, 2, 3}, // back  (-Z)
		{5, 4, 7, 6}, // front (+Z)
		{4, 0, 3, 7}, // left  (-X)
		{1, 5, 6, 2}, // right (+X)
		{3, 2, 6, 7}, // top   (+Y)
		{4, 5, 1, 0}, // bottom(-Y)
	}
	tris := make([]Triangle, 0, 12)
	for _, q := range quads {
		tris = append(tris,
			Triangle{A: v[q[0]], B: v[q[1]], C: v[q[2]]},
			Triangle{A: v[q[0]], B: v[q[2]], C: v[q[3]]},
		)
	}
	m, err := NewMesh(tris)
	if err != nil {
		// Unreachable: the 12 triangles above are always valid.
		panic(err)
	}
	return m
}

// CylinderMesh builds a Y-axis cylinder of the given radius and half-height
// with `sides` lateral faces (2·sides side triangles + 2·sides cap
// triangles). The cargo drum and hook use low-side cylinders.
func CylinderMesh(radius, halfHeight float64, sides int) *Mesh {
	if sides < 3 {
		sides = 3
	}
	tris := make([]Triangle, 0, 4*sides)
	top := mathx.V3(0, halfHeight, 0)
	bottom := mathx.V3(0, -halfHeight, 0)
	for i := 0; i < sides; i++ {
		a0 := 2 * math.Pi * float64(i) / float64(sides)
		a1 := 2 * math.Pi * float64(i+1) / float64(sides)
		s0, c0 := math.Sincos(a0)
		s1, c1 := math.Sincos(a1)
		p0b := mathx.V3(radius*c0, -halfHeight, radius*s0)
		p1b := mathx.V3(radius*c1, -halfHeight, radius*s1)
		p0t := mathx.V3(radius*c0, halfHeight, radius*s0)
		p1t := mathx.V3(radius*c1, halfHeight, radius*s1)
		tris = append(tris,
			Triangle{A: p0b, B: p1b, C: p1t}, // side lower
			Triangle{A: p0b, B: p1t, C: p0t}, // side upper
			Triangle{A: top, B: p0t, C: p1t},
			Triangle{A: bottom, B: p1b, C: p0b},
		)
	}
	m, err := NewMesh(tris)
	if err != nil {
		panic(err) // unreachable: sides >= 3 always yields triangles
	}
	return m
}
