package motion

import (
	"fmt"
	"math"
	"math/rand"

	"codsim/internal/fom"
	"codsim/internal/mathx"
)

// WashoutConfig tunes the classical washout filter that maps sustained
// vehicle motion onto the platform's tiny workspace.
type WashoutConfig struct {
	// TiltLimit caps the tilt-coordination angle (radians).
	TiltLimit float64
	// TiltRate caps how fast tilt may change (rad/s) so the rotation
	// stays below the vestibular threshold.
	TiltRate float64
	// Spring and Damping pull the translational channels back to center
	// (the "washout" itself): x'' = a_hp − Damping·x' − Spring·x.
	Spring, Damping float64
	// HighPass is the cutoff (1/s) of the onset high-pass filter.
	HighPass float64
	// TranslationLimit caps surge/sway/heave excursions (m).
	TranslationLimit float64
	// VibAmplitude is the peak engine-vibration heave at intensity 1 (m).
	VibAmplitude float64
	// VibHz is the dominant engine vibration frequency.
	VibHz float64
}

// DefaultWashout returns gains tuned for the default geometry.
func DefaultWashout() WashoutConfig {
	return WashoutConfig{
		TiltLimit:        mathx.Rad(9),
		TiltRate:         mathx.Rad(4),
		Spring:           2.2,
		Damping:          3.0,
		HighPass:         0.8,
		TranslationLimit: 0.22,
		VibAmplitude:     0.012,
		VibHz:            11,
	}
}

// State is the controller's output each tick: the commanded pose after
// interpolation, the actuator lengths after rate limiting, and whether any
// actuator saturated this tick.
type State struct {
	Pose      Pose
	Legs      [6]float64
	Saturated bool
}

// Controller is the motion-platform controller LP's core. Not safe for
// concurrent use; it belongs to the motion LP's tick loop.
type Controller struct {
	geo Geometry
	cfg WashoutConfig

	// Washout filter state.
	filtX, filtZ   onset // sway, surge channels (m)
	filtY          onset // heave channel
	tiltP, tiltR   float64
	yawHP, lastYaw float64

	// Pose interpolation (§3.4): commands step at the visual frame rate;
	// the platform blends between them at its own tick rate.
	fromPose  Pose
	toPose    Pose
	interpT   float64
	frameDT   float64 // seconds per visual frame
	vibPhase  float64
	vibGain   float64
	rng       *rand.Rand
	legs      [6]float64
	havePose  bool
	lastFrame uint32
}

// onset is one translational washout channel: a high-passed acceleration
// integrated against a spring-damper return to center.
type onset struct {
	hp  float64 // high-pass filter state (last input)
	pos float64
	vel float64
}

func (o *onset) step(accel, hpCut, spring, damping, limit, dt float64) {
	// First-order high-pass: keep onsets, bleed off sustained input.
	o.hp += (accel - o.hp) * mathx.Clamp(hpCut*dt, 0, 1)
	transient := accel - o.hp
	o.vel += (transient - damping*o.vel - spring*o.pos) * dt
	o.pos += o.vel * dt
	if o.pos > limit {
		o.pos, o.vel = limit, math.Min(o.vel, 0)
	} else if o.pos < -limit {
		o.pos, o.vel = -limit, math.Max(o.vel, 0)
	}
}

// NewController builds a controller. frameHz is the visual frame rate the
// pose interpolation synchronizes to; seed drives the vibration generator.
func NewController(geo Geometry, cfg WashoutConfig, frameHz float64, seed int64) (*Controller, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if frameHz <= 0 {
		return nil, fmt.Errorf("motion: frameHz %v", frameHz)
	}
	legs, err := geo.IK(Pose{})
	if err != nil {
		return nil, err
	}
	return &Controller{
		geo:     geo,
		cfg:     cfg,
		frameDT: 1 / frameHz,
		rng:     rand.New(rand.NewSource(seed)),
		legs:    legs,
	}, nil
}

// Cue feeds one motion cue from the dynamics module. Cues arrive once per
// visual frame; the controller starts a new interpolation segment toward
// the washed-out target pose (§3.4 synchronization).
func (c *Controller) Cue(cue fom.MotionCue, dt float64) {
	cfg := c.cfg

	// Specific force in the cab frame: X right, Y up, Z backward.
	// Remove gravity from the vertical channel.
	ax := cue.SpecificForce.X
	ay := cue.SpecificForce.Y + 9.81
	az := cue.SpecificForce.Z

	c.filtX.step(ax, cfg.HighPass, cfg.Spring, cfg.Damping, cfg.TranslationLimit, dt)
	c.filtY.step(ay, cfg.HighPass, cfg.Spring, cfg.Damping, cfg.TranslationLimit, dt)
	c.filtZ.step(az, cfg.HighPass, cfg.Spring, cfg.Damping, cfg.TranslationLimit, dt)

	// Tilt coordination: sustained horizontal force becomes a slow tilt
	// so gravity impersonates the acceleration.
	wantPitch := mathx.Clamp(math.Asin(mathx.Clamp(-az/9.81, -1, 1)), -cfg.TiltLimit, cfg.TiltLimit)
	wantRoll := mathx.Clamp(math.Asin(mathx.Clamp(ax/9.81, -1, 1)), -cfg.TiltLimit, cfg.TiltLimit)
	maxStep := cfg.TiltRate * dt
	c.tiltP += mathx.Clamp(wantPitch-c.tiltP, -maxStep, maxStep)
	c.tiltR += mathx.Clamp(wantRoll-c.tiltR, -maxStep, maxStep)

	// Yaw: high-passed angular rate, washed back to center.
	c.yawHP += cue.AngularRate.Z*dt - c.yawHP*cfg.HighPass*dt
	yaw := mathx.Clamp(c.yawHP, -mathx.Rad(10), mathx.Rad(10))

	c.vibGain = mathx.Clamp(cue.Vibration, 0, 1)

	target := Pose{
		Sway:  c.filtX.pos,
		Heave: c.filtY.pos,
		Surge: -c.filtZ.pos, // +Z body is backward
		Pitch: c.tiltP,
		Roll:  c.tiltR,
		Yaw:   yaw,
	}
	// Begin a new interpolation segment from the *current* interpolated
	// pose, so pose output stays C⁰ even if cues jump.
	c.fromPose = c.currentPose()
	c.toPose = target
	c.interpT = 0
	c.lastFrame = cue.Frame
	c.havePose = true
}

// currentPose evaluates the interpolation at the current parameter.
func (c *Controller) currentPose() Pose {
	if !c.havePose {
		return Pose{}
	}
	s := mathx.SmoothStep(c.interpT)
	lerp := func(a, b float64) float64 { return mathx.Lerp(a, b, s) }
	return Pose{
		Surge: lerp(c.fromPose.Surge, c.toPose.Surge),
		Sway:  lerp(c.fromPose.Sway, c.toPose.Sway),
		Heave: lerp(c.fromPose.Heave, c.toPose.Heave),
		Roll:  lerp(c.fromPose.Roll, c.toPose.Roll),
		Pitch: lerp(c.fromPose.Pitch, c.toPose.Pitch),
		Yaw:   lerp(c.fromPose.Yaw, c.toPose.Yaw),
	}
}

// Step advances the platform by dt: the pose interpolator moves toward the
// latest cue target over one visual frame interval, engine vibration is
// superimposed, and the actuators track the IK solution under their rate
// limit.
func (c *Controller) Step(dt float64) State {
	if dt <= 0 {
		return State{Pose: c.currentPose(), Legs: c.legs}
	}
	c.interpT = math.Min(1, c.interpT+dt/c.frameDT)
	pose := c.currentPose()

	// Engine vibration: band-limited random up-and-down (§3.4).
	c.vibPhase += dt * c.cfg.VibHz * 2 * math.Pi
	jitter := 0.6 + 0.4*c.rng.Float64()
	pose.Heave += c.cfg.VibAmplitude * c.vibGain * jitter * math.Sin(c.vibPhase)

	legsTarget, _ := c.geo.IK(pose) // saturation handled via clamping below
	st := State{Pose: pose}
	maxStep := c.geo.LegRate * dt
	for i := range c.legs {
		want := mathx.Clamp(legsTarget[i], c.geo.LegMin, c.geo.LegMax)
		if want != legsTarget[i] {
			st.Saturated = true
		}
		delta := want - c.legs[i]
		if delta > maxStep {
			delta = maxStep
			st.Saturated = true
		} else if delta < -maxStep {
			delta = -maxStep
			st.Saturated = true
		}
		c.legs[i] += delta
	}
	st.Legs = c.legs
	return st
}

// Legs returns the current actuator lengths.
func (c *Controller) Legs() [6]float64 { return c.legs }
