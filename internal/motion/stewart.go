// Package motion implements the motion-platform controller of §3.4: the
// Stewart Platform Based Manipulator (ref [9], Stewart 1965) that tilts and
// shakes the mockup cab. The controller turns the dynamics module's motion
// cues into platform poses through a classical washout filter, interpolates
// poses smoothly between visual frames (the paper demands the interpolation
// frequency stay synchronized with the display so the user never sees the
// crane go downhill while feeling the platform uphill), rate-limits the six
// actuator legs, and superimposes the constant engine vibration the paper
// calls out ("a random up-and-down vibration").
package motion

import (
	"fmt"
	"math"

	"codsim/internal/mathx"
)

// Pose is the platform's six degrees of freedom: translations in meters,
// rotations in radians. Axes follow the cab frame: surge +forward,
// sway +right, heave +up.
type Pose struct {
	Surge, Sway, Heave float64
	Roll, Pitch, Yaw   float64
}

// Geometry describes a symmetric 6-6 Stewart platform.
type Geometry struct {
	// BaseRadius and PlatformRadius locate the joint circles.
	BaseRadius, PlatformRadius float64
	// BaseSpread and PlatformSpread are the half-angles (radians) between
	// the paired joints at each of the three stations.
	BaseSpread, PlatformSpread float64
	// HomeHeight is the platform height above the base at the neutral
	// pose.
	HomeHeight float64
	// LegMin and LegMax bound the actuator lengths.
	LegMin, LegMax float64
	// LegRate is the maximum actuator speed (m/s).
	LegRate float64
}

// DefaultGeometry returns a training-simulator scale platform.
func DefaultGeometry() Geometry {
	return Geometry{
		BaseRadius:     1.6,
		PlatformRadius: 1.1,
		BaseSpread:     mathx.Rad(12),
		PlatformSpread: mathx.Rad(48),
		HomeHeight:     1.5,
		LegMin:         1.25,
		LegMax:         2.45,
		LegRate:        0.6,
	}
}

// Validate reports geometry errors, including an unreachable home pose.
func (g Geometry) Validate() error {
	if g.BaseRadius <= 0 || g.PlatformRadius <= 0 {
		return fmt.Errorf("motion: radii %v/%v", g.BaseRadius, g.PlatformRadius)
	}
	if g.LegMin <= 0 || g.LegMax <= g.LegMin {
		return fmt.Errorf("motion: leg range [%v,%v]", g.LegMin, g.LegMax)
	}
	if g.LegRate <= 0 {
		return fmt.Errorf("motion: leg rate %v", g.LegRate)
	}
	legs, err := g.IK(Pose{})
	if err != nil {
		return fmt.Errorf("motion: home pose unreachable: %w", err)
	}
	for i, l := range legs {
		if l < g.LegMin || l > g.LegMax {
			return fmt.Errorf("motion: home leg %d length %v outside [%v,%v]",
				i, l, g.LegMin, g.LegMax)
		}
	}
	return nil
}

// BaseJoints returns the six base joint positions in leg order (base
// frame, Y up). Base joints cluster in pairs around the three stations at
// 0°, 120° and 240°; platform joints cluster around 60°, 180° and 300°,
// and each leg crosses to the *adjacent* platform cluster — the standard
// 6-6 hexapod arrangement, which makes all six legs the same length at the
// neutral pose.
func (g Geometry) BaseJoints() [6]mathx.Vec3 {
	b := g.BaseSpread / 2
	var out [6]mathx.Vec3
	for s := 0; s < 3; s++ {
		station := 2 * math.Pi * float64(s) / 3
		out[2*s] = onCircle(g.BaseRadius, station+b)
		out[2*s+1] = onCircle(g.BaseRadius, station+2*math.Pi/3-b)
	}
	return out
}

// PlatformJoints returns the six platform joint positions in leg order
// (platform frame). PlatformJoints()[i] connects to BaseJoints()[i].
func (g Geometry) PlatformJoints() [6]mathx.Vec3 {
	p := g.PlatformSpread / 2
	sixty := math.Pi / 3
	var out [6]mathx.Vec3
	for s := 0; s < 3; s++ {
		station := 2 * math.Pi * float64(s) / 3
		out[2*s] = onCircle(g.PlatformRadius, station+sixty-p)
		out[2*s+1] = onCircle(g.PlatformRadius, station+sixty+p)
	}
	return out
}

func onCircle(radius, angle float64) mathx.Vec3 {
	sin, cos := math.Sincos(angle)
	return mathx.V3(radius*cos, 0, radius*sin)
}

// ErrOutOfEnvelope reports a pose whose actuator solution violates the leg
// length limits.
type ErrOutOfEnvelope struct {
	Leg    int
	Length float64
}

func (e *ErrOutOfEnvelope) Error() string {
	return fmt.Sprintf("motion: leg %d length %.3f outside envelope", e.Leg, e.Length)
}

// IK solves the inverse kinematics: the six leg lengths realizing the pose.
// It always returns the raw lengths; err is non-nil if any leg violates its
// limits (the caller may still use the clamped values).
func (g Geometry) IK(p Pose) ([6]float64, error) {
	base := g.BaseJoints()
	plat := g.PlatformJoints()
	// Platform rotation and translation. Cab frame: surge is forward
	// (-Z in the render convention), sway right (+X), heave up (+Y).
	rot := mathx.QuatEuler(-p.Yaw, p.Pitch, -p.Roll)
	tr := mathx.V3(p.Sway, g.HomeHeight+p.Heave, -p.Surge)

	var legs [6]float64
	var err error
	for i := 0; i < 6; i++ {
		world := tr.Add(rot.Rotate(plat[i]))
		l := world.Sub(base[i]).Len()
		legs[i] = l
		if err == nil && (l < g.LegMin || l > g.LegMax) {
			err = &ErrOutOfEnvelope{Leg: i, Length: l}
		}
	}
	return legs, err
}
