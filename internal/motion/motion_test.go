package motion

import (
	"errors"
	"math"
	"testing"

	"codsim/internal/fom"
	"codsim/internal/mathx"
)

func TestGeometryValidate(t *testing.T) {
	if err := DefaultGeometry().Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	g := DefaultGeometry()
	g.BaseRadius = 0
	if err := g.Validate(); err == nil {
		t.Error("zero base radius accepted")
	}
	g = DefaultGeometry()
	g.LegMax = g.LegMin
	if err := g.Validate(); err == nil {
		t.Error("empty leg range accepted")
	}
	g = DefaultGeometry()
	g.LegRate = 0
	if err := g.Validate(); err == nil {
		t.Error("zero leg rate accepted")
	}
	g = DefaultGeometry()
	g.HomeHeight = 10 // home unreachable
	if err := g.Validate(); err == nil {
		t.Error("unreachable home accepted")
	}
}

func TestJointLayout(t *testing.T) {
	g := DefaultGeometry()
	base := g.BaseJoints()
	for i, b := range base {
		if math.Abs(math.Hypot(b.X, b.Z)-g.BaseRadius) > 1e-9 {
			t.Errorf("base joint %d radius = %v", i, math.Hypot(b.X, b.Z))
		}
		if b.Y != 0 {
			t.Errorf("base joint %d not planar", i)
		}
	}
	plat := g.PlatformJoints()
	for i, p := range plat {
		if math.Abs(math.Hypot(p.X, p.Z)-g.PlatformRadius) > 1e-9 {
			t.Errorf("platform joint %d radius = %v", i, math.Hypot(p.X, p.Z))
		}
	}
}

func TestIKHomePoseSymmetric(t *testing.T) {
	g := DefaultGeometry()
	legs, err := g.IK(Pose{})
	if err != nil {
		t.Fatalf("home IK: %v", err)
	}
	for i := 1; i < 6; i++ {
		if math.Abs(legs[i]-legs[0]) > 1e-9 {
			t.Errorf("home legs unequal: %v vs %v", legs[i], legs[0])
		}
	}
}

func TestIKHeave(t *testing.T) {
	g := DefaultGeometry()
	home, err := g.IK(Pose{})
	if err != nil {
		t.Fatal(err)
	}
	up, err := g.IK(Pose{Heave: 0.08})
	if err != nil {
		t.Fatalf("heave IK: %v", err)
	}
	for i := range up {
		if up[i] <= home[i] {
			t.Errorf("leg %d did not extend on heave", i)
		}
		if math.Abs(up[i]-up[0]) > 1e-9 {
			t.Errorf("heave legs unequal: %v vs %v", up[i], up[0])
		}
	}
}

func TestIKRollSplitsSides(t *testing.T) {
	g := DefaultGeometry()
	legs, err := g.IK(Pose{Roll: mathx.Rad(4)})
	if err != nil {
		t.Fatalf("roll IK: %v", err)
	}
	home, err := g.IK(Pose{})
	if err != nil {
		t.Fatal(err)
	}
	// Rolling must lengthen some legs and shorten others.
	longer, shorter := 0, 0
	for i := range legs {
		switch {
		case legs[i] > home[i]+1e-9:
			longer++
		case legs[i] < home[i]-1e-9:
			shorter++
		}
	}
	if longer == 0 || shorter == 0 {
		t.Errorf("roll did not split legs: %v", legs)
	}
}

func TestIKOutOfEnvelope(t *testing.T) {
	g := DefaultGeometry()
	_, err := g.IK(Pose{Heave: 5})
	var envErr *ErrOutOfEnvelope
	if !errors.As(err, &envErr) {
		t.Fatalf("err = %v, want ErrOutOfEnvelope", err)
	}
	if envErr.Length < g.LegMax {
		t.Errorf("reported length %v below LegMax", envErr.Length)
	}
}

func TestIKRoundTripPositions(t *testing.T) {
	// The leg vectors must connect base joints to transformed platform
	// joints: verify directly for a mixed pose.
	g := DefaultGeometry()
	p := Pose{Surge: 0.05, Sway: -0.03, Heave: 0.04, Roll: 0.05, Pitch: -0.04, Yaw: 0.06}
	legs, err := g.IK(p)
	if err != nil {
		t.Fatalf("IK: %v", err)
	}
	base := g.BaseJoints()
	plat := g.PlatformJoints()
	rot := mathx.QuatEuler(-p.Yaw, p.Pitch, -p.Roll)
	tr := mathx.V3(p.Sway, g.HomeHeight+p.Heave, -p.Surge)
	for i := 0; i < 6; i++ {
		want := tr.Add(rot.Rotate(plat[i])).Sub(base[i]).Len()
		if math.Abs(want-legs[i]) > 1e-12 {
			t.Errorf("leg %d = %v, want %v", i, legs[i], want)
		}
	}
}

func newController(t *testing.T) *Controller {
	t.Helper()
	c, err := NewController(DefaultGeometry(), DefaultWashout(), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(DefaultGeometry(), DefaultWashout(), 0, 1); err == nil {
		t.Error("zero frameHz accepted")
	}
	bad := DefaultGeometry()
	bad.HomeHeight = 99
	if _, err := NewController(bad, DefaultWashout(), 16, 1); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestWashoutOnsetAndReturn(t *testing.T) {
	c := newController(t)
	const dt = 1.0 / 60
	cue := fom.MotionCue{
		SpecificForce: mathx.V3(0, -9.81, -3), // sustained forward accel (3 m/s²)
	}
	// Feed the same sustained cue for a while; track surge.
	var peak float64
	for i := 0; i < 60*1; i++ {
		c.Cue(cue, dt)
		st := c.Step(dt)
		if st.Pose.Surge > peak {
			peak = st.Pose.Surge
		}
	}
	if peak < 0.005 {
		t.Fatalf("no surge onset: peak = %v", peak)
	}
	// Keep holding the same acceleration: washout must pull surge back.
	var last float64
	for i := 0; i < 60*14; i++ {
		c.Cue(cue, dt)
		last = c.Step(dt).Pose.Surge
	}
	if math.Abs(last) > peak*0.5 {
		t.Errorf("surge %v did not wash out from peak %v", last, peak)
	}
	// Tilt coordination has taken over the sustained cue.
	if tilt := c.tiltP; tilt <= mathx.Rad(1) {
		t.Errorf("tilt coordination = %v, want > 1°", mathx.Deg(tilt))
	}
}

func TestTiltRateLimited(t *testing.T) {
	c := newController(t)
	const dt = 1.0 / 60
	cue := fom.MotionCue{SpecificForce: mathx.V3(0, -9.81, -8)} // hard braking-level accel
	var prev float64
	for i := 0; i < 120; i++ {
		c.Cue(cue, dt)
		c.Step(dt)
		rate := (c.tiltP - prev) / dt
		if rate > DefaultWashout().TiltRate+1e-9 {
			t.Fatalf("tilt rate %v exceeds limit", rate)
		}
		prev = c.tiltP
	}
	if c.tiltP > DefaultWashout().TiltLimit+1e-9 {
		t.Errorf("tilt %v exceeds limit", c.tiltP)
	}
}

func TestLegRateLimit(t *testing.T) {
	c := newController(t)
	const dt = 1.0 / 60
	// Command a violent pose jump.
	c.Cue(fom.MotionCue{SpecificForce: mathx.V3(8, -3, -8)}, dt)
	prev := c.Legs()
	for i := 0; i < 30; i++ {
		st := c.Step(dt)
		for k := range st.Legs {
			if delta := math.Abs(st.Legs[k] - prev[k]); delta > DefaultGeometry().LegRate*dt+1e-9 {
				t.Fatalf("leg %d moved %v in one tick (limit %v)", k, delta, DefaultGeometry().LegRate*dt)
			}
		}
		prev = st.Legs
	}
}

func TestInterpolationContinuity(t *testing.T) {
	// Pose output must be continuous even when cue targets jump: the
	// §3.4 requirement that platform motion stays smooth between frames.
	c := newController(t)
	const dt = 1.0 / 60
	var prev Pose
	first := true
	for frame := 0; frame < 32; frame++ {
		accel := 0.0
		if frame%2 == 0 {
			accel = -6 // alternate hard cue / no cue
		}
		c.Cue(fom.MotionCue{SpecificForce: mathx.V3(0, -9.81, accel), Frame: uint32(frame)}, dt)
		for i := 0; i < 4; i++ { // platform ticks faster than frames arrive
			st := c.Step(dt)
			if !first {
				if math.Abs(st.Pose.Surge-prev.Surge) > 0.05 {
					t.Fatalf("surge jumped %v in one tick", st.Pose.Surge-prev.Surge)
				}
				if math.Abs(st.Pose.Pitch-prev.Pitch) > 0.02 {
					t.Fatalf("pitch jumped %v in one tick", st.Pose.Pitch-prev.Pitch)
				}
			}
			prev = st.Pose
			first = false
		}
	}
}

func TestVibrationScalesWithIntensity(t *testing.T) {
	rms := func(intensity float64) float64 {
		c := newController(t)
		const dt = 1.0 / 120
		var sum float64
		var n int
		for i := 0; i < 1200; i++ {
			c.Cue(fom.MotionCue{SpecificForce: mathx.V3(0, -9.81, 0), Vibration: intensity}, dt)
			st := c.Step(dt)
			sum += st.Pose.Heave * st.Pose.Heave
			n++
		}
		return math.Sqrt(sum / float64(n))
	}
	off := rms(0)
	idle := rms(0.3)
	full := rms(1)
	if idle <= off {
		t.Errorf("vibration rms off=%v idle=%v: no effect", off, idle)
	}
	if full <= idle {
		t.Errorf("vibration rms idle=%v full=%v: not scaling", idle, full)
	}
}

func TestVibrationDeterministicUnderSeed(t *testing.T) {
	run := func() []float64 {
		c, err := NewController(DefaultGeometry(), DefaultWashout(), 16, 42)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < 100; i++ {
			c.Cue(fom.MotionCue{SpecificForce: mathx.V3(0, -9.81, 0), Vibration: 1}, 1.0/60)
			out = append(out, c.Step(1.0/60).Pose.Heave)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vibration not deterministic at step %d", i)
		}
	}
}

func BenchmarkIK(b *testing.B) {
	g := DefaultGeometry()
	p := Pose{Surge: 0.02, Heave: 0.01, Roll: 0.02, Pitch: 0.03}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.IK(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkControllerStep(b *testing.B) {
	c, err := NewController(DefaultGeometry(), DefaultWashout(), 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	cue := fom.MotionCue{SpecificForce: mathx.V3(0.2, -9.7, -1.2), Vibration: 0.4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%4 == 0 {
			c.Cue(cue, 1.0/60)
		}
		c.Step(1.0 / 60)
	}
}
