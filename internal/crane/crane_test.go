package crane

import (
	"math"
	"testing"

	"codsim/internal/fom"
	"codsim/internal/mathx"
)

func safeState() fom.CraneState {
	return fom.CraneState{
		Position:  mathx.V3(0, 0, 0),
		BoomSwing: 0,
		BoomLuff:  mathx.Rad(45),
		BoomLen:   12,
		CableLen:  5,
		HookPos:   mathx.V3(0, 4, -8),
		Stability: 0.9,
		Speed:     2,
	}
}

func TestRatedLoadInterpolation(t *testing.T) {
	s := DefaultSpec()
	if got := s.RatedLoad(1); got != 25000 {
		t.Errorf("below chart = %v, want first rating", got)
	}
	if got := s.RatedLoad(3); got != 25000 {
		t.Errorf("at first row = %v", got)
	}
	// Midpoint of 10 m (7600) and 14 m (4800) = 6200.
	if got := s.RatedLoad(12); math.Abs(got-6200) > 1e-9 {
		t.Errorf("interp = %v, want 6200", got)
	}
	if got := s.RatedLoad(26); got != 1800 {
		t.Errorf("at last row = %v", got)
	}
	if got := s.RatedLoad(40); got != 0 {
		t.Errorf("beyond chart = %v, want 0", got)
	}
	if got := (Spec{}).RatedLoad(5); got != 0 {
		t.Errorf("empty chart = %v", got)
	}
}

func TestRatedLoadMonotone(t *testing.T) {
	s := DefaultSpec()
	prev := math.Inf(1)
	for r := 0.0; r <= 30; r += 0.25 {
		cur := s.RatedLoad(r)
		if cur > prev+1e-9 {
			t.Fatalf("rated load not monotone at r=%v: %v > %v", r, cur, prev)
		}
		prev = cur
	}
}

func TestAlarmsClean(t *testing.T) {
	if a := DefaultSpec().Alarms(safeState()); a != 0 {
		t.Errorf("alarms = %b for a safe state", a)
	}
}

func TestAlarmSwingZone(t *testing.T) {
	s := DefaultSpec()
	st := safeState()
	st.BoomSwing = s.SwingZone + 0.01
	if a := s.Alarms(st); !a.Has(fom.AlarmSwingZone) {
		t.Error("swing zone overshoot not alarmed")
	}
	st.BoomSwing = -s.SwingZone - 0.01
	if a := s.Alarms(st); !a.Has(fom.AlarmSwingZone) {
		t.Error("negative swing overshoot not alarmed")
	}
}

func TestAlarmLuffLimit(t *testing.T) {
	s := DefaultSpec()
	st := safeState()
	st.BoomLuff = s.LuffSafeMax + 0.01
	if !s.Alarms(st).Has(fom.AlarmLuffLimit) {
		t.Error("over-luff not alarmed")
	}
	st.BoomLuff = s.LuffSafeMin - 0.01
	if !s.Alarms(st).Has(fom.AlarmLuffLimit) {
		t.Error("under-luff not alarmed")
	}
}

func TestAlarmOverload(t *testing.T) {
	s := DefaultSpec()
	st := safeState()
	st.CargoHeld = true
	st.HookPos = mathx.V3(0, 3, -18) // 18 m radius → rated 3300 kg
	st.CargoMass = 5000
	if !s.Alarms(st).Has(fom.AlarmOverload) {
		t.Error("overload not alarmed")
	}
	st.CargoMass = 2000
	if s.Alarms(st).Has(fom.AlarmOverload) {
		t.Error("legal load alarmed")
	}
	// Same mass unheld never alarms.
	st.CargoHeld = false
	st.CargoMass = 99999
	if s.Alarms(st).Has(fom.AlarmOverload) {
		t.Error("unheld cargo alarmed")
	}
}

func TestAlarmTipoverAndOverspeed(t *testing.T) {
	s := DefaultSpec()
	st := safeState()
	st.Stability = 0.1
	if !s.Alarms(st).Has(fom.AlarmTipover) {
		t.Error("low stability not alarmed")
	}
	st = safeState()
	st.Speed = s.MaxSpeed + 1
	if !s.Alarms(st).Has(fom.AlarmOverspeed) {
		t.Error("overspeed not alarmed")
	}
	st.Speed = -s.MaxSpeed - 1
	if !s.Alarms(st).Has(fom.AlarmOverspeed) {
		t.Error("reverse overspeed not alarmed")
	}
}

func TestWorkingRadius(t *testing.T) {
	st := safeState()
	st.Position = mathx.V3(10, 0, 10)
	st.HookPos = mathx.V3(13, 7, 14)
	if got := WorkingRadius(st); math.Abs(got-5) > 1e-12 {
		t.Errorf("radius = %v, want 5", got)
	}
}

func TestStatusReport(t *testing.T) {
	s := DefaultSpec()
	st := safeState()
	st.BoomSwing = mathx.Rad(30)
	r := s.StatusReport(st, 88, fom.AlarmCollision)
	if math.Abs(r.SwingDeg-30) > 1e-9 {
		t.Errorf("SwingDeg = %v", r.SwingDeg)
	}
	if math.Abs(r.LuffDeg-45) > 1e-9 {
		t.Errorf("LuffDeg = %v", r.LuffDeg)
	}
	if r.CableLen != 5 || r.BoomLen != 12 {
		t.Errorf("lengths = %v, %v", r.CableLen, r.BoomLen)
	}
	if r.Score != 88 {
		t.Errorf("Score = %v", r.Score)
	}
	if !r.Alarms.Has(fom.AlarmCollision) {
		t.Error("extra alarm dropped")
	}
}
