// Package crane describes the simulated mobile crane as a product: its
// geometry, its load chart, and the safety envelope whose violations light
// the alarm lamps of the instructor's status window (Fig. 5). The dynamics
// module owns the physics; this package owns the *specification* against
// which the operator's conduct is judged — "if the derrick boom overshoots
// the safety zone, the second alarm will be lighted" (§3.3).
package crane

import (
	"math"

	"codsim/internal/fom"
	"codsim/internal/mathx"
)

// Spec is the crane's rated specification.
type Spec struct {
	// SwingZone is the permitted slew range, symmetric about dead ahead
	// (radians). Swinging the boom past ±SwingZone is a misconduct.
	SwingZone float64
	// LuffSafeMin and LuffSafeMax bound the safe luffing band; the
	// physical stops of the dynamics model sit slightly beyond.
	LuffSafeMin, LuffSafeMax float64
	// MaxSpeed is the permitted travel speed (m/s) during the exam.
	MaxSpeed float64
	// StabilityFloor is the minimum acceptable tip-over margin.
	StabilityFloor float64
	// Chart is the load chart: rated load (kg) by working radius (m),
	// in ascending radius order. Loads beyond the last entry are zero.
	Chart []ChartPoint
}

// ChartPoint is one row of the load chart.
type ChartPoint struct {
	Radius float64 // working radius in meters
	Rated  float64 // rated load in kg
}

// DefaultSpec matches the 25-tonne crane of dynamics.DefaultConfig.
func DefaultSpec() Spec {
	return Spec{
		SwingZone:      mathx.Rad(110),
		LuffSafeMin:    mathx.Rad(15),
		LuffSafeMax:    mathx.Rad(78),
		MaxSpeed:       8.4, // ~30 km/h on site
		StabilityFloor: 0.25,
		Chart: []ChartPoint{
			{Radius: 3, Rated: 25000},
			{Radius: 6, Rated: 14000},
			{Radius: 10, Rated: 7600},
			{Radius: 14, Rated: 4800},
			{Radius: 18, Rated: 3300},
			{Radius: 22, Rated: 2400},
			{Radius: 26, Rated: 1800},
		},
	}
}

// RatedLoad returns the chart's rated load at the given working radius,
// interpolating between chart rows. Radii before the first row use the
// first rating; radii past the last row return 0 (no lifting allowed).
func (s Spec) RatedLoad(radius float64) float64 {
	if len(s.Chart) == 0 {
		return 0
	}
	if radius <= s.Chart[0].Radius {
		return s.Chart[0].Rated
	}
	for i := 1; i < len(s.Chart); i++ {
		if radius <= s.Chart[i].Radius {
			lo, hi := s.Chart[i-1], s.Chart[i]
			t := (radius - lo.Radius) / (hi.Radius - lo.Radius)
			return mathx.Lerp(lo.Rated, hi.Rated, t)
		}
	}
	return 0
}

// WorkingRadius computes the horizontal distance from the slew center to
// the hook for a crane state.
func WorkingRadius(st fom.CraneState) float64 {
	return math.Hypot(st.HookPos.X-st.Position.X, st.HookPos.Z-st.Position.Z)
}

// Alarms evaluates the full safety envelope for a crane state and returns
// the alarm lamp bitmask of the status window.
func (s Spec) Alarms(st fom.CraneState) fom.Alarm {
	var a fom.Alarm
	if math.Abs(st.BoomSwing) > s.SwingZone {
		a |= fom.AlarmSwingZone
	}
	if st.BoomLuff < s.LuffSafeMin || st.BoomLuff > s.LuffSafeMax {
		a |= fom.AlarmLuffLimit
	}
	if st.CargoHeld {
		if rated := s.RatedLoad(WorkingRadius(st)); st.CargoMass > rated {
			a |= fom.AlarmOverload
		}
	}
	if st.Stability < s.StabilityFloor {
		a |= fom.AlarmTipover
	}
	if math.Abs(st.Speed) > s.MaxSpeed {
		a |= fom.AlarmOverspeed
	}
	return a
}

// StatusReport digests a crane state plus the live score into the status
// window's payload (Fig. 5): the four dial values, the alarm lamps and the
// score box.
func (s Spec) StatusReport(st fom.CraneState, score float64, extraAlarms fom.Alarm) fom.StatusReport {
	return fom.StatusReport{
		SwingDeg: mathx.Deg(st.BoomSwing),
		LuffDeg:  mathx.Deg(st.BoomLuff),
		CableLen: st.CableLen,
		BoomLen:  st.BoomLen,
		Alarms:   s.Alarms(st) | extraAlarms,
		Score:    score,
	}
}
