package audio

import (
	"bytes"
	"math"
	"testing"

	"codsim/internal/fom"
	"codsim/internal/mathx"
)

func newMixer(t *testing.T) *Mixer {
	t.Helper()
	m, err := NewMixer(SynthesizeAssets(1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func rms(s []float64) float64 {
	var sum float64
	for _, v := range s {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(s)))
}

func TestSynthesizeAssets(t *testing.T) {
	bank := SynthesizeAssets(1)
	wanted := []fom.Sound{
		fom.SoundEngineStart, fom.SoundEngineLoop, fom.SoundEngineStop,
		fom.SoundCollision, fom.SoundAlarm, fom.SoundHoistMotor, fom.SoundBackground,
	}
	for _, s := range wanted {
		clip, ok := bank[s]
		if !ok {
			t.Fatalf("missing sound %d", s)
		}
		if clip.Duration() < 0.3 {
			t.Errorf("%s too short: %v s", clip.Name, clip.Duration())
		}
		if r := rms(clip.Samples); r < 0.01 || r > 1 {
			t.Errorf("%s rms = %v", clip.Name, r)
		}
		for i, v := range clip.Samples {
			if math.Abs(v) > 1.2 {
				t.Fatalf("%s sample %d = %v out of range", clip.Name, i, v)
			}
		}
	}
	// Deterministic under the same seed.
	again := SynthesizeAssets(1)
	if again[fom.SoundCollision].Samples[100] != bank[fom.SoundCollision].Samples[100] {
		t.Error("synthesis not deterministic")
	}
}

func TestNewMixerValidation(t *testing.T) {
	if _, err := NewMixer(nil); err == nil {
		t.Error("empty bank accepted")
	}
}

func TestOneShotPlaysAndRetires(t *testing.T) {
	m := newMixer(t)
	m.Handle(fom.AudioEvent{Sound: fom.SoundCollision, Gain: 1})
	if m.Active() != 1 {
		t.Fatalf("active = %d", m.Active())
	}
	out := make([]float64, SampleRate) // 1 s > 0.6 s clip
	m.Render(out)
	if rms(out) < 0.001 {
		t.Error("one-shot produced silence")
	}
	if m.Active() != 0 {
		t.Errorf("one-shot not retired: active = %d", m.Active())
	}
	// Subsequent render is silent.
	m.Render(out)
	if rms(out) != 0 {
		t.Error("retired voice still audible")
	}
}

func TestLoopContinues(t *testing.T) {
	m := newMixer(t)
	m.Handle(fom.AudioEvent{Sound: fom.SoundEngineLoop, Gain: 1, Loop: true})
	out := make([]float64, SampleRate*3) // 3 s > 1.5 s clip
	m.Render(out)
	if m.Active() != 1 {
		t.Fatalf("loop retired: active = %d", m.Active())
	}
	// The tail (after wrap) still carries signal.
	if rms(out[len(out)-SampleRate/10:]) < 0.01 {
		t.Error("loop went silent after wrap")
	}
	// Stop the loop.
	m.Handle(fom.AudioEvent{Sound: fom.SoundEngineLoop, Stop: true})
	if m.Active() != 0 {
		t.Errorf("loop survived stop: active = %d", m.Active())
	}
}

func TestLoopRestartReplaces(t *testing.T) {
	m := newMixer(t)
	m.Handle(fom.AudioEvent{Sound: fom.SoundEngineLoop, Gain: 0.5, Loop: true})
	m.Handle(fom.AudioEvent{Sound: fom.SoundEngineLoop, Gain: 1, Loop: true})
	if m.Active() != 1 {
		t.Errorf("duplicate loop voices: %d", m.Active())
	}
}

func TestUnknownSoundIgnored(t *testing.T) {
	m := newMixer(t)
	m.Handle(fom.AudioEvent{Sound: fom.Sound(999), Gain: 1})
	if m.Active() != 0 {
		t.Error("unknown sound started a voice")
	}
}

func TestDistanceAttenuation(t *testing.T) {
	level := func(dist float64) float64 {
		m := newMixer(t)
		m.SetListener(mathx.V3(0, 0, 0))
		m.Handle(fom.AudioEvent{
			Sound:    fom.SoundCollision,
			Gain:     1,
			Position: mathx.V3(dist, 0, 0),
		})
		out := make([]float64, SampleRate/5)
		m.Render(out)
		return rms(out)
	}
	near := level(1)
	far := level(60)
	if far >= near/2 {
		t.Errorf("attenuation too weak: near rms %v, far rms %v", near, far)
	}
	// Zero position means non-positional (full volume).
	m := newMixer(t)
	m.Handle(fom.AudioEvent{Sound: fom.SoundCollision, Gain: 1})
	out := make([]float64, SampleRate/5)
	m.Render(out)
	if rms(out) < near*0.9 {
		t.Error("non-positional event attenuated")
	}
}

func TestPolyphonyEviction(t *testing.T) {
	m := newMixer(t)
	for i := 0; i < MaxVoices+5; i++ {
		m.Handle(fom.AudioEvent{Sound: fom.SoundCollision, Gain: float64(i+1) / float64(MaxVoices+5)})
	}
	if m.Active() != MaxVoices {
		t.Errorf("active = %d, want cap %d", m.Active(), MaxVoices)
	}
	if _, dropped := m.Stats(); dropped != 5 {
		t.Errorf("dropped = %d, want 5", dropped)
	}
}

func TestMixClipsSoftly(t *testing.T) {
	m := newMixer(t)
	for i := 0; i < 10; i++ {
		m.Handle(fom.AudioEvent{Sound: fom.SoundAlarm, Gain: 1, Loop: true})
	}
	// Loops of the same id dedupe; add distinct loud sounds instead.
	m.Handle(fom.AudioEvent{Sound: fom.SoundEngineLoop, Gain: 1, Loop: true})
	m.Handle(fom.AudioEvent{Sound: fom.SoundHoistMotor, Gain: 1, Loop: true})
	m.Handle(fom.AudioEvent{Sound: fom.SoundBackground, Gain: 1, Loop: true})
	out := make([]float64, SampleRate/2)
	m.Render(out)
	for i, v := range out {
		if math.Abs(v) > 1 {
			t.Fatalf("sample %d = %v beyond [-1,1]", i, v)
		}
	}
}

func TestWriteWAV(t *testing.T) {
	pcm := make([]float64, 100)
	for i := range pcm {
		pcm[i] = math.Sin(float64(i) / 10)
	}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, pcm); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 44+200 {
		t.Fatalf("wav length = %d, want 244", len(b))
	}
	if string(b[0:4]) != "RIFF" || string(b[8:12]) != "WAVE" || string(b[36:40]) != "data" {
		t.Error("wav chunk markers wrong")
	}
}

func BenchmarkMixerRender(b *testing.B) {
	m, err := NewMixer(SynthesizeAssets(1))
	if err != nil {
		b.Fatal(err)
	}
	m.Handle(fom.AudioEvent{Sound: fom.SoundEngineLoop, Gain: 0.8, Loop: true})
	m.Handle(fom.AudioEvent{Sound: fom.SoundBackground, Gain: 0.4, Loop: true})
	m.Handle(fom.AudioEvent{Sound: fom.SoundHoistMotor, Gain: 0.5, Loop: true})
	out := make([]float64, SampleRate/60) // one visual frame of audio
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Render(out)
	}
}
