// Package audio is the audio module of §3.7, replacing the paper's
// Microsoft DirectSound with a pure-software PCM mixer: it produces the
// static background bed, the looped engine and hoist-motor noise, and the
// dynamic one-shot effects (collision bangs, alarm beeps) triggered by
// AudioEvent messages from the other LPs. Output is mono float64 PCM that
// the examples can export as a WAV file.
package audio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"codsim/internal/fom"
	"codsim/internal/mathx"
)

// SampleRate is the mixer's output rate in samples per second.
const SampleRate = 44100

// Clip is a mono PCM asset.
type Clip struct {
	Name    string
	Samples []float64 // [-1, 1]
}

// Duration returns the clip length in seconds.
func (c *Clip) Duration() float64 { return float64(len(c.Samples)) / SampleRate }

// SynthesizeAssets builds the simulator's sound bank procedurally (no
// sample files ship with the repository). Deterministic under seed.
func SynthesizeAssets(seed int64) map[fom.Sound]*Clip {
	rng := rand.New(rand.NewSource(seed))
	return map[fom.Sound]*Clip{
		fom.SoundEngineStart: engineStart(rng),
		fom.SoundEngineLoop:  engineLoop(rng),
		fom.SoundEngineStop:  engineStop(rng),
		fom.SoundCollision:   collisionBang(rng),
		fom.SoundAlarm:       alarmBeep(),
		fom.SoundHoistMotor:  hoistMotor(rng),
		fom.SoundBackground:  backgroundBed(rng),
	}
}

func samples(seconds float64) []float64 {
	return make([]float64, int(seconds*SampleRate))
}

// engineLoop is a diesel-ish bed: low harmonic stack plus combustion noise.
func engineLoop(rng *rand.Rand) *Clip {
	out := samples(1.5)
	lp := 0.0
	for i := range out {
		t := float64(i) / SampleRate
		v := 0.45*math.Sin(2*math.Pi*38*t) +
			0.28*math.Sin(2*math.Pi*76*t+0.7) +
			0.16*math.Sin(2*math.Pi*114*t+1.9)
		noise := rng.Float64()*2 - 1
		lp += (noise - lp) * 0.12
		out[i] = 0.75*v + 0.25*lp
	}
	fadeLoopSeam(out)
	return &Clip{Name: "engine-loop", Samples: out}
}

func engineStart(rng *rand.Rand) *Clip {
	out := samples(1.2)
	lp := 0.0
	for i := range out {
		t := float64(i) / SampleRate
		f := 12 + 30*t/1.2 // cranking sweep up
		noise := rng.Float64()*2 - 1
		lp += (noise - lp) * 0.2
		env := math.Min(1, t/0.15)
		out[i] = env * (0.5*math.Sin(2*math.Pi*f*t*8) + 0.5*lp)
	}
	return &Clip{Name: "engine-start", Samples: out}
}

func engineStop(rng *rand.Rand) *Clip {
	out := samples(0.9)
	for i := range out {
		t := float64(i) / SampleRate
		f := 38 * (1 - t/1.1)
		env := 1 - t/0.9
		out[i] = env * (0.6*math.Sin(2*math.Pi*f*t*4) + 0.2*(rng.Float64()*2-1))
	}
	return &Clip{Name: "engine-stop", Samples: out}
}

func collisionBang(rng *rand.Rand) *Clip {
	out := samples(0.6)
	lp := 0.0
	for i := range out {
		t := float64(i) / SampleRate
		noise := rng.Float64()*2 - 1
		lp += (noise - lp) * 0.4
		env := math.Exp(-t * 9)
		out[i] = env * (0.7*lp + 0.3*math.Sin(2*math.Pi*130*t)*math.Exp(-t*16))
	}
	return &Clip{Name: "collision", Samples: out}
}

func alarmBeep() *Clip {
	out := samples(1.0)
	for i := range out {
		t := float64(i) / SampleRate
		gate := 0.0
		if math.Mod(t, 0.25) < 0.12 {
			gate = 1
		}
		out[i] = 0.5 * gate * math.Sin(2*math.Pi*880*t)
	}
	return &Clip{Name: "alarm", Samples: out}
}

func hoistMotor(rng *rand.Rand) *Clip {
	out := samples(0.8)
	for i := range out {
		t := float64(i) / SampleRate
		out[i] = 0.35*math.Sin(2*math.Pi*210*t) +
			0.18*math.Sin(2*math.Pi*420*t) +
			0.1*(rng.Float64()*2-1)
	}
	fadeLoopSeam(out)
	return &Clip{Name: "hoist-motor", Samples: out}
}

func backgroundBed(rng *rand.Rand) *Clip {
	out := samples(2.0)
	lp := 0.0
	for i := range out {
		noise := rng.Float64()*2 - 1
		lp += (noise - lp) * 0.02 // deep low-pass: distant site rumble
		out[i] = 0.6 * lp
	}
	fadeLoopSeam(out)
	return &Clip{Name: "background", Samples: out}
}

// fadeLoopSeam crossfades the clip tail into its head so loops do not click.
func fadeLoopSeam(s []float64) {
	n := len(s) / 50
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n)
		s[len(s)-n+i] = s[len(s)-n+i]*(1-t) + s[i]*t
	}
}

// voice is one playing instance of a clip.
type voice struct {
	clip *Clip
	pos  int
	gain float64
	loop bool
	id   fom.Sound
}

// Mixer mixes active voices into PCM buffers. Safe for concurrent use: the
// audio LP renders from its tick loop while CB callbacks inject events.
type Mixer struct {
	mu       sync.Mutex
	bank     map[fom.Sound]*Clip
	voices   []*voice
	listener mathx.Vec3
	started  int64
	dropped  int64
}

// MaxVoices bounds simultaneous polyphony; the quietest surplus voice is
// evicted, like period sound hardware did.
const MaxVoices = 16

// NewMixer builds a mixer over the given sound bank.
func NewMixer(bank map[fom.Sound]*Clip) (*Mixer, error) {
	if len(bank) == 0 {
		return nil, fmt.Errorf("audio: empty sound bank")
	}
	return &Mixer{bank: bank}, nil
}

// SetListener places the listener (the cab) for distance attenuation.
func (m *Mixer) SetListener(pos mathx.Vec3) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listener = pos
}

// Handle processes one AudioEvent: start a loop, stop a loop, or fire a
// one-shot, with gain attenuated by the event's distance to the listener.
func (m *Mixer) Handle(ev fom.AudioEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ev.Stop {
		kept := m.voices[:0]
		for _, v := range m.voices {
			if !(v.id == ev.Sound && v.loop) {
				kept = append(kept, v)
			}
		}
		m.voices = kept
		return
	}
	clip, ok := m.bank[ev.Sound]
	if !ok {
		return
	}
	gain := mathx.Clamp(ev.Gain, 0, 1) * m.attenuation(ev.Position)
	if ev.Loop {
		// A loop restart replaces the existing loop of the same sound.
		for _, v := range m.voices {
			if v.id == ev.Sound && v.loop {
				v.gain = gain
				return
			}
		}
	}
	if len(m.voices) >= MaxVoices {
		m.evictQuietest()
	}
	m.voices = append(m.voices, &voice{clip: clip, gain: gain, loop: ev.Loop, id: ev.Sound})
	m.started++
}

func (m *Mixer) attenuation(src mathx.Vec3) float64 {
	if src == (mathx.Vec3{}) {
		return 1 // non-positional event
	}
	d := src.Dist(m.listener)
	return 1 / (1 + d*d/400) // -6 dB at 20 m
}

func (m *Mixer) evictQuietest() {
	quietest := 0
	for i, v := range m.voices {
		if v.gain < m.voices[quietest].gain {
			quietest = i
		}
	}
	m.voices = append(m.voices[:quietest], m.voices[quietest+1:]...)
	m.dropped++
}

// Active returns the number of playing voices.
func (m *Mixer) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.voices)
}

// Stats returns how many voices were started and evicted.
func (m *Mixer) Stats() (started, dropped int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.started, m.dropped
}

// Render mixes the next len(out) samples into out (overwriting it) and
// retires finished one-shots.
func (m *Mixer) Render(out []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range out {
		out[i] = 0
	}
	kept := m.voices[:0]
	for _, v := range m.voices {
		alive := true
		for i := range out {
			if v.pos >= len(v.clip.Samples) {
				if !v.loop {
					alive = false
					break
				}
				v.pos = 0
			}
			out[i] += v.clip.Samples[v.pos] * v.gain
			v.pos++
		}
		if alive {
			kept = append(kept, v)
		}
	}
	m.voices = kept
	// Soft clip to [-1, 1].
	for i, s := range out {
		out[i] = math.Tanh(s)
	}
}

// WriteWAV writes mono float64 PCM as a 16-bit little-endian WAV stream.
func WriteWAV(w io.Writer, pcm []float64) error {
	dataLen := uint32(len(pcm) * 2)
	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], 36+dataLen)
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16)
	binary.LittleEndian.PutUint16(hdr[20:22], 1) // PCM
	binary.LittleEndian.PutUint16(hdr[22:24], 1) // mono
	binary.LittleEndian.PutUint32(hdr[24:28], SampleRate)
	binary.LittleEndian.PutUint32(hdr[28:32], SampleRate*2)
	binary.LittleEndian.PutUint16(hdr[32:34], 2)
	binary.LittleEndian.PutUint16(hdr[34:36], 16)
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], dataLen)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("audio: wav header: %w", err)
	}
	buf := make([]byte, len(pcm)*2)
	for i, s := range pcm {
		v := int16(mathx.Clamp(s, -1, 1) * 32767)
		binary.LittleEndian.PutUint16(buf[i*2:], uint16(v))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("audio: wav data: %w", err)
	}
	return nil
}
