package timesync

import (
	"fmt"
	"testing"
	"time"

	"codsim/internal/cb"
	"codsim/internal/transport"
	"codsim/internal/wire"
)

func fastCfg() cb.Config {
	return cb.Config{
		BroadcastInterval: 5 * time.Millisecond,
		RefreshInterval:   30 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  80 * time.Millisecond,
	}
}

func TestFederateValidation(t *testing.T) {
	if _, err := NewPublisher(nil, 0.1); err == nil {
		t.Error("nil publication accepted")
	}
	if _, err := NewConsumer(nil); err == nil {
		t.Error("nil subscription accepted")
	}
	lan := transport.NewMemLAN()
	b, err := cb.New(lan, "solo", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	pub, err := b.PublishObjectClass("p", "T")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPublisher(pub, -1); err == nil {
		t.Error("negative lookahead accepted")
	}
}

// TestConservativeDeliveryOverCB runs two publisher LPs on separate nodes
// feeding one conservative consumer: events must come out in global
// timestamp order, and only when both inputs have advanced far enough.
func TestConservativeDeliveryOverCB(t *testing.T) {
	lan := transport.NewMemLAN()
	mk := func(node string) *cb.Backbone {
		b, err := cb.New(lan, node, fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = b.Close() })
		return b
	}
	nodeA := mk("lp-a")
	nodeB := mk("lp-b")
	nodeC := mk("consumer")

	pubA, err := nodeA.PublishObjectClass("a", "Events")
	if err != nil {
		t.Fatal(err)
	}
	pubB, err := nodeB.PublishObjectClass("b", "Events")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := nodeC.SubscribeObjectClass("c", "Events", cb.WithQueue(1024))
	if err != nil {
		t.Fatal(err)
	}
	if !sub.WaitMatched(5 * time.Second) {
		t.Fatal("no channel")
	}
	// Wait until BOTH publishers have channels.
	deadline := time.Now().Add(5 * time.Second)
	for pubA.Channels() == 0 || pubB.Channels() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("channels incomplete")
		}
		time.Sleep(time.Millisecond)
	}

	tpA, err := NewPublisher(pubA, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tpB, err := NewPublisher(pubB, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsumer(sub, InputName("lp-a", "a"), InputName("lp-b", "b"))
	if err != nil {
		t.Fatal(err)
	}

	send := func(p *Publisher, at float64, id uint32) {
		p.Advance(at)
		attrs := wire.AttrSet{}
		attrs.PutUint32(1, id)
		if err := p.Send(attrs); err != nil {
			t.Fatal(err)
		}
	}

	// A sends at t=1 and t=3; B sends at t=2. B then idles to t=10.
	send(tpA, 1, 101)
	send(tpB, 2, 202)
	send(tpA, 3, 103)

	// Give traffic time to arrive, then check holdback: without B's null,
	// safe time is 2, so only events 101 and 202 may release.
	time.Sleep(50 * time.Millisecond)
	evs := cons.Ready()
	var ids []uint32
	for _, e := range evs {
		r := e.Data.(cb.Reflection)
		id, _ := r.Attrs.Uint32(1)
		ids = append(ids, id)
	}
	if len(ids) != 2 || ids[0] != 101 || ids[1] != 202 {
		t.Fatalf("released %v, want [101 202] (holdback of 103 until B advances)", ids)
	}
	if cons.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (event 103 held)", cons.Pending())
	}

	// B idles forward: its null message must release A's t=3 event.
	tpB.Advance(10)
	if err := tpB.Idle(); err != nil {
		t.Fatal(err)
	}
	evs = cons.WaitReady(5 * time.Second)
	if len(evs) != 1 {
		t.Fatalf("released %d events after null, want 1", len(evs))
	}
	if id, _ := evs[0].Data.(cb.Reflection).Attrs.Uint32(1); id != 103 {
		t.Errorf("released id %d, want 103", id)
	}
	if got := cons.SafeTime(); got < 3 {
		t.Errorf("safe time = %v after null at 10.5", got)
	}
}

// TestFederateTimestampOrder floods from two nodes and asserts global
// timestamp order on release.
func TestFederateTimestampOrder(t *testing.T) {
	lan := transport.NewMemLAN()
	mk := func(node string) *cb.Backbone {
		b, err := cb.New(lan, node, fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = b.Close() })
		return b
	}
	n1, n2, nc := mk("n1"), mk("n2"), mk("nc")
	p1, err := n1.PublishObjectClass("p1", "Ev")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := n2.PublishObjectClass("p2", "Ev")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := nc.SubscribeObjectClass("c", "Ev", cb.WithQueue(4096))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p1.Channels() == 0 || p2.Channels() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("channels incomplete")
		}
		time.Sleep(time.Millisecond)
	}

	tp1, err := NewPublisher(p1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tp2, err := NewPublisher(p2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsumer(sub, InputName("n1", "p1"), InputName("n2", "p2"))
	if err != nil {
		t.Fatal(err)
	}

	// Interleave: p1 at even tenths, p2 at odd tenths.
	const n = 100
	for i := 0; i < n; i++ {
		at := float64(i) / 10
		attrs := wire.AttrSet{}
		attrs.PutUint32(1, uint32(i))
		var p *Publisher
		if i%2 == 0 {
			p = tp1
		} else {
			p = tp2
		}
		p.Advance(at)
		if err := p.Send(attrs); err != nil {
			t.Fatal(err)
		}
	}
	// Close out both streams with nulls past the horizon.
	tp1.Advance(100)
	tp2.Advance(100)
	if err := tp1.Idle(); err != nil {
		t.Fatal(err)
	}
	if err := tp2.Idle(); err != nil {
		t.Fatal(err)
	}

	var got []Event
	for len(got) < n {
		evs := cons.WaitReady(5 * time.Second)
		if len(evs) == 0 {
			t.Fatalf("stalled at %d/%d events (safe=%v pending=%d)",
				len(got), n, cons.SafeTime(), cons.Pending())
		}
		got = append(got, evs...)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("out of order at %d: %v < %v", i, got[i].Time, got[i-1].Time)
		}
	}
	if len(got) != n {
		t.Errorf("released %d, want %d", len(got), n)
	}
	_ = fmt.Sprintf("%v", got[0]) // keep fmt imported for debug ease
}
