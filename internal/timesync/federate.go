package timesync

import (
	"fmt"
	"time"

	"codsim/internal/cb"
	"codsim/internal/wire"
)

// Publisher couples a CB publication to the Chandy–Misra discipline: every
// real update is stamped monotonically from the LP's clock, and Idle sends
// the null message that promises downstream LPs a lower time bound.
type Publisher struct {
	reg *Regulator
	pub *cb.Publication
}

// NewPublisher wraps a CB publication with lookahead.
func NewPublisher(pub *cb.Publication, lookahead float64) (*Publisher, error) {
	if pub == nil {
		return nil, fmt.Errorf("timesync: nil publication")
	}
	reg, err := NewRegulator(lookahead)
	if err != nil {
		return nil, err
	}
	return &Publisher{reg: reg, pub: pub}, nil
}

// Advance moves the LP's local clock to t.
func (p *Publisher) Advance(t float64) { p.reg.Advance(t) }

// Now returns the LP's local clock.
func (p *Publisher) Now() float64 { return p.reg.Now() }

// Send publishes a real timestamped update.
func (p *Publisher) Send(attrs wire.AttrSet) error {
	return p.pub.Update(p.reg.StampEvent(), attrs)
}

// Idle publishes a null message carrying now+lookahead, unblocking
// conservative consumers while this LP has nothing to say.
func (p *Publisher) Idle() error {
	return p.pub.SendNull(p.reg.NullTime())
}

// Consumer couples a CB subscription to an InputSet and an EventQueue: it
// pumps reflections (real and null) into the conservative machinery and
// releases events only when they are causally safe.
type Consumer struct {
	sub    *cb.Subscription
	inputs *InputSet
	queue  EventQueue
}

// inputKey names the channel clock for a publisher.
func inputKey(r cb.Reflection) string { return InputName(r.PubNode, r.PubLP) }

// NewConsumer wraps a CB subscription. expected declares the known input
// links ("node/lp") up front — Chandy–Misra needs the topology declared,
// because a link the consumer has never heard from cannot bound the safe
// time: without the declaration one publisher's entire stream can be
// released before the other's first message arrives. Publishers beyond
// the declared set (dynamic join) are admitted lazily at their first
// observed timestamp, which is safe going forward but provides no
// retroactive ordering against events already released.
func NewConsumer(sub *cb.Subscription, expected ...string) (*Consumer, error) {
	if sub == nil {
		return nil, fmt.Errorf("timesync: nil subscription")
	}
	return &Consumer{sub: sub, inputs: NewInputSet(expected...)}, nil
}

// ExpectInput declares one more input link ("node/lp") at time t before
// its first message arrives.
func (c *Consumer) ExpectInput(link string, t float64) {
	c.inputs.AddInput(link, t)
}

// InputName formats the link name used for a publisher: "node/lp".
func InputName(node, lp string) string { return node + "/" + lp }

// Pump drains pending reflections into the queue and channel clocks,
// returning how many reflections were consumed.
func (c *Consumer) Pump() int {
	n := 0
	for {
		r, ok := c.sub.Poll()
		if !ok {
			return n
		}
		n++
		key := inputKey(r)
		if err := c.inputs.Observe(key, r.Time); err != nil {
			// First message from this publisher: admit its link at the
			// observed time.
			c.inputs.AddInput(key, r.Time)
		}
		if !r.Null {
			c.queue.Push(Event{Time: r.Time, Data: r})
		}
	}
}

// SafeTime returns the conservative bound over all known inputs.
func (c *Consumer) SafeTime() float64 { return c.inputs.SafeTime() }

// Ready pumps and returns, in timestamp order, every event that can no
// longer be preceded by an unseen message.
func (c *Consumer) Ready() []Event {
	c.Pump()
	return c.queue.PopUpTo(c.inputs.SafeTime())
}

// WaitReady blocks (polling the mailbox) until at least one event is
// releasable or the timeout elapses.
func (c *Consumer) WaitReady(timeout time.Duration) []Event {
	deadline := time.Now().Add(timeout)
	for {
		if evs := c.Ready(); len(evs) > 0 {
			return evs
		}
		if time.Now().After(deadline) {
			return nil
		}
		// Block on mailbox arrival rather than spinning.
		remain := time.Until(deadline)
		if remain > 5*time.Millisecond {
			remain = 5 * time.Millisecond
		}
		select {
		case <-c.sub.NotifyC():
		case <-time.After(remain):
		}
	}
}

// Pending returns the number of buffered (not yet safe) events.
func (c *Consumer) Pending() int { return c.queue.Len() }
