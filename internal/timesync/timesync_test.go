package timesync

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestInputSetSafeTime(t *testing.T) {
	s := NewInputSet("a", "b", "c")
	if got := s.SafeTime(); got != 0 {
		t.Errorf("initial SafeTime = %v", got)
	}
	if err := s.Observe("a", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe("b", 3); err != nil {
		t.Fatal(err)
	}
	if got := s.SafeTime(); got != 0 { // c still at 0
		t.Errorf("SafeTime = %v, want 0", got)
	}
	if err := s.Observe("c", 7); err != nil {
		t.Fatal(err)
	}
	if got := s.SafeTime(); got != 3 {
		t.Errorf("SafeTime = %v, want 3", got)
	}
}

func TestInputSetRegressionIgnored(t *testing.T) {
	s := NewInputSet("a")
	if err := s.Observe("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe("a", 4); err != nil {
		t.Fatal(err)
	}
	if got := s.SafeTime(); got != 10 {
		t.Errorf("SafeTime after regression = %v, want 10", got)
	}
}

func TestInputSetUnknownLink(t *testing.T) {
	s := NewInputSet("a")
	if err := s.Observe("ghost", 1); !errors.Is(err, ErrUnknownInput) {
		t.Errorf("err = %v, want ErrUnknownInput", err)
	}
}

func TestInputSetDynamicInputs(t *testing.T) {
	s := NewInputSet()
	if got := s.SafeTime(); !math.IsInf(got, 1) {
		t.Errorf("empty SafeTime = %v, want +Inf", got)
	}
	s.AddInput("late", 2)
	if got := s.SafeTime(); got != 2 {
		t.Errorf("SafeTime = %v", got)
	}
	if s.Inputs() != 1 {
		t.Errorf("Inputs = %d", s.Inputs())
	}
	s.RemoveInput("late")
	if got := s.SafeTime(); !math.IsInf(got, 1) {
		t.Errorf("SafeTime after removal = %v", got)
	}
}

func TestRegulator(t *testing.T) {
	if _, err := NewRegulator(-1); err == nil {
		t.Error("negative lookahead accepted")
	}
	r, err := NewRegulator(0.5)
	if err != nil {
		t.Fatal(err)
	}
	r.Advance(2)
	if got := r.Now(); got != 2 {
		t.Errorf("Now = %v", got)
	}
	r.Advance(1) // regression ignored
	if got := r.Now(); got != 2 {
		t.Errorf("Now after regression = %v", got)
	}
	if got := r.StampEvent(); got != 2 {
		t.Errorf("StampEvent = %v", got)
	}
	if got := r.NullTime(); got != 2.5 {
		t.Errorf("NullTime = %v", got)
	}
	// Monotone sends: after promising 2.5, an event at local time 2 must
	// not be stamped earlier than 2.5.
	if got := r.StampEvent(); got != 2.5 {
		t.Errorf("StampEvent after null = %v, want 2.5", got)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	rng := rand.New(rand.NewSource(5))
	var want []float64
	for i := 0; i < 200; i++ {
		ts := rng.Float64() * 100
		want = append(want, ts)
		q.Push(Event{Time: ts, Data: i})
	}
	sort.Float64s(want)
	got := q.PopUpTo(math.Inf(1))
	if len(got) != len(want) {
		t.Fatalf("popped %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Time != want[i] {
			t.Fatalf("event %d time = %v, want %v", i, got[i].Time, want[i])
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after drain", q.Len())
	}
}

func TestEventQueuePopUpTo(t *testing.T) {
	var q EventQueue
	for _, ts := range []float64{5, 1, 3, 2, 4} {
		q.Push(Event{Time: ts})
	}
	got := q.PopUpTo(3)
	if len(got) != 3 || got[0].Time != 1 || got[2].Time != 3 {
		t.Errorf("PopUpTo(3) = %+v", got)
	}
	if q.PeekTime() != 4 {
		t.Errorf("PeekTime = %v", q.PeekTime())
	}
	if got := q.PopUpTo(3.5); len(got) != 0 {
		t.Errorf("PopUpTo(3.5) = %+v, want empty", got)
	}
}

func TestEventQueuePeekEmpty(t *testing.T) {
	var q EventQueue
	if got := q.PeekTime(); !math.IsInf(got, 1) {
		t.Errorf("PeekTime on empty = %v", got)
	}
}

// TestConservativeSimulationNoCausalityViolation runs a miniature two-LP
// federation with a cyclic dependency and verifies (a) every event is
// processed in timestamp order and (b) the federation never deadlocks,
// thanks to null messages with positive lookahead.
func TestConservativeSimulationNoCausalityViolation(t *testing.T) {
	const (
		lookahead = 0.1
		horizon   = 10.0
	)
	type lpState struct {
		reg    *Regulator
		inputs *InputSet
		queue  EventQueue
		proc   []float64 // processed timestamps
	}
	newLP := func(peer string) *lpState {
		reg, err := NewRegulator(lookahead)
		if err != nil {
			t.Fatal(err)
		}
		return &lpState{reg: reg, inputs: NewInputSet(peer)}
	}
	a := newLP("b")
	b := newLP("a")
	rng := rand.New(rand.NewSource(11))

	// Each LP, when processing an event at time t, sends a follow-up event
	// to the other at t+lookahead+delta (respecting its promise).
	a.queue.Push(Event{Time: 0.05})

	step := func(me, other *lpState, myName string) bool {
		safe := me.inputs.SafeTime()
		events := me.queue.PopUpTo(safe)
		progressed := false
		for _, ev := range events {
			if n := len(me.proc); n > 0 && ev.Time < me.proc[n-1] {
				t.Fatalf("%s: causality violation: %v after %v", myName, ev.Time, me.proc[n-1])
			}
			me.proc = append(me.proc, ev.Time)
			me.reg.Advance(ev.Time)
			if ev.Time < horizon {
				// Send a real message to the peer.
				st := me.reg.StampEvent() + lookahead + rng.Float64()*0.2
				other.queue.Push(Event{Time: st})
				if err := other.inputs.Observe(myName, st); err != nil {
					t.Fatal(err)
				}
			}
			progressed = true
		}
		// Idle: promise the future with a null message.
		nt := me.reg.NullTime()
		if err := other.inputs.Observe(myName, nt); err != nil {
			t.Fatal(err)
		}
		me.reg.Advance(me.inputs.SafeTime())
		return progressed
	}

	idleRounds := 0
	for rounds := 0; rounds < 100000; rounds++ {
		p1 := step(a, b, "a")
		p2 := step(b, a, "b")
		if !p1 && !p2 {
			idleRounds++
			if a.queue.Len() == 0 && b.queue.Len() == 0 {
				break // drained: simulation complete
			}
			if idleRounds > 1000 {
				t.Fatalf("deadlock: queues a=%d b=%d, safe a=%v b=%v",
					a.queue.Len(), b.queue.Len(), a.inputs.SafeTime(), b.inputs.SafeTime())
			}
		} else {
			idleRounds = 0
		}
	}
	if len(a.proc)+len(b.proc) < 50 {
		t.Errorf("too little progress: a=%d b=%d events", len(a.proc), len(b.proc))
	}
	// Both LPs advanced past the horizon.
	if a.reg.Now() < horizon && b.reg.Now() < horizon {
		t.Errorf("clocks stalled: a=%v b=%v", a.reg.Now(), b.reg.Now())
	}
}
