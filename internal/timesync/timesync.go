// Package timesync implements the conservative asynchronous time
// synchronization the paper adopts from Chandy & Misra (ref [7]): LPs
// exchange timestamped messages; an LP may only advance to the minimum
// timestamp promised by all of its input channels, and idle publishers send
// *null messages* — a timestamp with no content — so waiting LPs can make
// progress (lookahead) instead of deadlocking.
//
// The package is deliberately small: an InputSet tracking per-channel
// clocks, a Regulator stamping outgoing messages with lookahead, and an
// EventQueue for timestamp-ordered processing. Together they form the
// conservative kernel used by the dynamics↔scenario loop of the simulator.
package timesync

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrUnknownInput reports an Observe for a link that was never added.
var ErrUnknownInput = errors.New("timesync: unknown input link")

// InputSet tracks the conservative clock of each input channel of an LP.
// The LP's safe time is the minimum over all channels: no message with an
// earlier timestamp can still arrive (channels are FIFO, senders stamp
// monotonically).
type InputSet struct {
	mu     sync.Mutex
	clocks map[string]float64
}

// NewInputSet creates an InputSet with the given input link names, all at
// time 0.
func NewInputSet(links ...string) *InputSet {
	s := &InputSet{clocks: make(map[string]float64, len(links))}
	for _, l := range links {
		s.clocks[l] = 0
	}
	return s
}

// AddInput registers a new input link at time t (dynamic join).
func (s *InputSet) AddInput(link string, t float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clocks[link] = t
}

// RemoveInput removes a link (its publisher left the federation).
func (s *InputSet) RemoveInput(link string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.clocks, link)
}

// Observe advances the clock of link to t. Regressions are ignored —
// channel FIFO order means a late observation can only be a duplicate.
func (s *InputSet) Observe(link string, t float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.clocks[link]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownInput, link)
	}
	if t > cur {
		s.clocks[link] = t
	}
	return nil
}

// SafeTime returns the minimum channel clock: the LP may process every
// event with timestamp ≤ SafeTime. With no inputs it returns +Inf (the LP
// is unconstrained).
func (s *InputSet) SafeTime() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.clocks) == 0 {
		return math.Inf(1)
	}
	safe := math.Inf(1)
	for _, t := range s.clocks {
		if t < safe {
			safe = t
		}
	}
	return safe
}

// Inputs returns the number of tracked links.
func (s *InputSet) Inputs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clocks)
}

// Regulator stamps an LP's outgoing messages. Lookahead is the promise that
// the LP will not send anything earlier than now+lookahead, which is what
// lets downstream LPs advance past idle periods (Chandy–Misra null
// messages). Lookahead must be positive for cyclic topologies to progress.
type Regulator struct {
	mu        sync.Mutex
	now       float64
	lookahead float64
	lastSent  float64
}

// NewRegulator creates a regulator at time 0 with the given lookahead.
func NewRegulator(lookahead float64) (*Regulator, error) {
	if lookahead < 0 {
		return nil, fmt.Errorf("timesync: negative lookahead %v", lookahead)
	}
	return &Regulator{lookahead: lookahead}, nil
}

// Advance moves the LP's local clock to t (monotone; regressions ignored).
func (r *Regulator) Advance(t float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t > r.now {
		r.now = t
	}
}

// Now returns the LP's local clock.
func (r *Regulator) Now() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.now
}

// StampEvent returns the timestamp for a real outgoing message sent now.
// Outgoing stamps are forced monotone so FIFO channels never observe a
// regression.
func (r *Regulator) StampEvent() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.now
	if t < r.lastSent {
		t = r.lastSent
	}
	r.lastSent = t
	return t
}

// NullTime returns the timestamp to advertise in a null message: the
// promise now+lookahead. It also keeps the monotone-send invariant.
func (r *Regulator) NullTime() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.now + r.lookahead
	if t < r.lastSent {
		t = r.lastSent
	}
	r.lastSent = t
	return t
}

// Event is one timestamped work item of a conservative LP.
type Event struct {
	Time float64
	Data any
}

// EventQueue is a timestamp-ordered min-heap of events. Not safe for
// concurrent use; it belongs to a single LP loop.
type EventQueue struct {
	h eventHeap
}

// Push inserts an event.
func (q *EventQueue) Push(e Event) { heap.Push(&q.h, e) }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return q.h.Len() }

// PeekTime returns the earliest timestamp, or +Inf when empty.
func (q *EventQueue) PeekTime() float64 {
	if q.h.Len() == 0 {
		return math.Inf(1)
	}
	return q.h[0].Time
}

// PopUpTo removes and returns, in timestamp order, every event with
// Time ≤ safe.
func (q *EventQueue) PopUpTo(safe float64) []Event {
	var out []Event
	for q.h.Len() > 0 && q.h[0].Time <= safe {
		out = append(out, heap.Pop(&q.h).(Event))
	}
	return out
}

type eventHeap []Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].Time < h[j].Time }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
