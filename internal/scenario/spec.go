package scenario

import (
	"fmt"

	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/terrain"
)

// PhaseKind classifies one node of a scenario's phase graph. The engine
// interprets the kind; the FOM's coarse fom.Phase published on the wire is
// derived from it, so existing consumers (status window, audio, displays)
// keep working for any scenario.
type PhaseKind int

// Phase kinds. Values start at 1; 0 is invalid.
const (
	// PhaseDrive: drive the carrier to Target within Radius.
	PhaseDrive PhaseKind = iota + 1
	// PhaseLift: latch and raise the cargo indexed by Cargo.
	PhaseLift
	// PhaseTraverse: carry the held cargo through Waypoints (gate radius
	// Radius); dropping the cargo falls back to the preceding lift.
	PhaseTraverse
	// PhasePlace: set the held cargo down and release it within Radius of
	// Target.
	PhasePlace
)

var phaseKindNames = map[PhaseKind]string{
	PhaseDrive:    "drive",
	PhaseLift:     "lift",
	PhaseTraverse: "traverse",
	PhasePlace:    "place",
}

// String returns the lowercase kind name.
func (k PhaseKind) String() string {
	if s, ok := phaseKindNames[k]; ok {
		return s
	}
	return "unknown"
}

// FOMPhase maps the kind onto the coarse wire-level phase enum.
func (k PhaseKind) FOMPhase() fom.Phase {
	switch k {
	case PhaseDrive:
		return fom.PhaseDriving
	case PhaseLift:
		return fom.PhaseLifting
	case PhaseTraverse:
		return fom.PhaseTraverse
	case PhasePlace:
		return fom.PhaseReturn
	}
	return fom.PhaseIdle
}

// PhaseSpec is one node of the phase graph.
type PhaseSpec struct {
	Name string // short label for logs and reports
	Kind PhaseKind

	// Target and Radius parameterize drive and place phases; Radius is
	// also the gate radius of a traverse.
	Target mathx.Vec3
	Radius float64

	// Waypoints is the trajectory of a traverse phase.
	Waypoints []mathx.Vec3

	// Cargo indexes Spec.Cargos for a lift phase.
	Cargo int

	// Crane indexes Spec.Cranes: the carrier this node belongs to. Each
	// declared crane walks its own sub-graph — the list entries carrying
	// its index — with an independent cursor. The zero value is crane 0,
	// so single-crane scenarios need no wiring.
	Crane int

	// Tandem marks a lift of a multi-hook cargo (Cargo.Hooks >= 2): the
	// node completes only once every needed hook is latched, so the crane
	// that latches first holds and waits for its partners before the
	// shared load leaves the ground.
	Tandem bool

	// Next is the phase index entered when this phase completes. The zero
	// value means "the next phase of the same crane in the list" (so
	// plain linear scenarios need no wiring); Terminal ends this crane's
	// graph — the scenario's pass/fail evaluation runs once every
	// declared crane is done. Explicit jumps to phase 0 are not
	// representable — phase 0 is always an entry node.
	Next int
}

// Terminal is the Next sentinel that ends the scenario after a phase.
const Terminal = -1

// Cargo is one liftable load placed in the world at scenario start.
type Cargo struct {
	Name string
	Pos  mathx.Vec3 // resting position; Y is recomputed from the terrain
	Mass float64    // kg

	// Hooks is how many crane hooks must latch before the load leaves
	// the ground (a long beam needs a crane on each end). 0 means 1; a
	// value >= 2 makes this a tandem load: it may only be lifted through
	// Tandem phase nodes, the load splits evenly between the cables, and
	// the carried position is the mean of the holding hooks.
	Hooks int
}

// HooksNeeded returns the cargo's hook requirement, defaulted to 1.
func (c Cargo) HooksNeeded() int {
	if c.Hooks < 1 {
		return 1
	}
	return c.Hooks
}

// CraneDecl declares one carrier of a multi-crane scenario: where it
// starts and which way it faces. Phase nodes reference cranes by their
// index in Spec.Cranes.
type CraneDecl struct {
	Name     string // label for logs and reports; optional
	Start    mathx.Vec3
	StartYaw float64
}

// Spec is a complete declarative scenario: the engine interprets it, the
// autopilot can fly it, and the cluster loads it — nothing about a
// particular workload is hardcoded anywhere else.
type Spec struct {
	// Name is the library key (kebab-case); Title the human heading.
	Name  string
	Title string

	// Course is the site geometry: start pose, obstruction bars, and the
	// circle zone. Phase targets live in Phases, not here.
	Course Course

	// Cranes declares the scenario's carriers. Empty means the legacy
	// single crane starting at Course.Start/StartYaw — every Spec written
	// before the multi-crane revision keeps working unchanged. With N
	// declarations the federation spawns one dynamics/motion/autopilot
	// participant per crane and each crane walks its own sub-graph of
	// Phases (the nodes carrying its index).
	Cranes []CraneDecl

	// Cargos are the liftable loads placed at scenario start.
	Cargos []Cargo

	// Phases is the phase graph, entered at index 0.
	Phases []PhaseSpec

	// Score is the deduction schedule; the zero value means DefaultScore.
	Score ScoreConfig

	// Wind is the site wind disturbance threaded into the dynamics.
	Wind dynamics.Wind

	// Visibility darkens the displays: 1 (or 0, the zero value) is full
	// daylight, lower values approach night work.
	Visibility float64
}

// CraneCount returns how many carriers the scenario runs: the declared
// count, or 1 for a legacy spec with no Cranes block.
func (s Spec) CraneCount() int {
	if len(s.Cranes) == 0 {
		return 1
	}
	return len(s.Cranes)
}

// CraneDecls resolves the carrier declarations: the explicit Cranes
// block, or the implicit legacy single crane parked at the course start.
func (s Spec) CraneDecls() []CraneDecl {
	if len(s.Cranes) == 0 {
		return []CraneDecl{{Start: s.Course.Start, StartYaw: s.Course.StartYaw}}
	}
	return s.Cranes
}

// Validate reports structural errors in the spec. Every phase-level error
// names the offending phase index and its crane index, so a rejected
// generated or hand-written spec is actionable from the message alone —
// no need to dump the JSON to find the bad node.
//
// The "preceding lift" requirement on traverse and place nodes is checked
// in list order within each crane's sub-graph, deliberately matching the
// drop edge's runtime semantics: fallbackLift scans the phase LIST
// backwards from the active node, not the Next-graph, so a lift that only
// precedes a traverse via Next jumps would still leave the drop edge with
// nowhere to go (a per-tick deduction loop). List order is therefore the
// invariant that makes every reachable drop recoverable, whatever the
// jump structure.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario %q: empty name", s.Title)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %s: no phases", s.Name)
	}
	nCranes := s.CraneCount()
	for ci, c := range s.Cargos {
		if c.Hooks < 0 {
			return fmt.Errorf("scenario %s: cargo %d: hooks %d", s.Name, ci, c.Hooks)
		}
		if c.HooksNeeded() > nCranes {
			return fmt.Errorf("scenario %s: cargo %d needs %d hooks but only %d crane(s) declared",
				s.Name, ci, c.HooksNeeded(), nCranes)
		}
	}
	liftSeen := make([]bool, nCranes)
	owned := make([]int, nCranes)
	tandemLifters := make(map[int]map[int]bool) // cargo index → cranes tandem-lifting it
	for i, p := range s.Phases {
		if p.Crane < 0 || p.Crane >= nCranes {
			return fmt.Errorf("scenario %s: phase %d: crane index %d of %d", s.Name, i, p.Crane, nCranes)
		}
		owned[p.Crane]++
		// at names the phase (and its crane) an error belongs to; every
		// node-level message leads with it.
		at := fmt.Sprintf("phase %d (crane %d)", i, p.Crane)
		if p.Tandem && p.Kind != PhaseLift {
			return fmt.Errorf("scenario %s: %s: tandem on a %s node (lift only)", s.Name, at, p.Kind)
		}
		switch p.Kind {
		case PhaseDrive:
			if p.Radius <= 0 {
				return fmt.Errorf("scenario %s: %s: %s radius %v", s.Name, at, p.Kind, p.Radius)
			}
		case PhasePlace:
			if p.Radius <= 0 {
				return fmt.Errorf("scenario %s: %s: %s radius %v", s.Name, at, p.Kind, p.Radius)
			}
			// The drop edge falls back to the nearest preceding lift of
			// the same crane; without one the engine would deduct every
			// tick forever.
			if !liftSeen[p.Crane] {
				return fmt.Errorf("scenario %s: %s: place with no preceding lift", s.Name, at)
			}
		case PhaseLift:
			if p.Cargo < 0 || p.Cargo >= len(s.Cargos) {
				return fmt.Errorf("scenario %s: %s: cargo index %d of %d", s.Name, at, p.Cargo, len(s.Cargos))
			}
			hooks := s.Cargos[p.Cargo].HooksNeeded()
			switch {
			case p.Tandem && hooks < 2:
				return fmt.Errorf("scenario %s: %s: tandem lift of single-hook cargo %d", s.Name, at, p.Cargo)
			case !p.Tandem && hooks >= 2:
				return fmt.Errorf("scenario %s: %s: cargo %d needs %d hooks — lift it with a tandem node",
					s.Name, at, p.Cargo, hooks)
			case p.Tandem:
				if tandemLifters[p.Cargo] == nil {
					tandemLifters[p.Cargo] = make(map[int]bool)
				}
				tandemLifters[p.Cargo][p.Crane] = true
			}
			liftSeen[p.Crane] = true
		case PhaseTraverse:
			if len(p.Waypoints) == 0 {
				return fmt.Errorf("scenario %s: %s: traverse without waypoints", s.Name, at)
			}
			if p.Radius <= 0 {
				return fmt.Errorf("scenario %s: %s: gate radius %v", s.Name, at, p.Radius)
			}
			if !liftSeen[p.Crane] {
				return fmt.Errorf("scenario %s: %s: traverse with no preceding lift", s.Name, at)
			}
		default:
			return fmt.Errorf("scenario %s: %s: unknown kind %d", s.Name, at, p.Kind)
		}
		if p.Next != 0 && p.Next != Terminal {
			if p.Next <= 0 || p.Next >= len(s.Phases) {
				return fmt.Errorf("scenario %s: phase %d (crane %d): next %d out of graph", s.Name, i, p.Crane, p.Next)
			}
			if s.Phases[p.Next].Crane != p.Crane {
				return fmt.Errorf("scenario %s: phase %d (crane %d): next %d belongs to crane %d",
					s.Name, i, p.Crane, p.Next, s.Phases[p.Next].Crane)
			}
		}
	}
	// A tandem load needs a full complement of lifters: a tandem node
	// whose cargo only one crane ever lifts would wait for a partner that
	// never comes.
	for cargoIdx, lifters := range tandemLifters {
		if need := s.Cargos[cargoIdx].HooksNeeded(); len(lifters) < need {
			return fmt.Errorf("scenario %s: cargo %d needs %d tandem cranes but %d lift it",
				s.Name, cargoIdx, need, len(lifters))
		}
	}
	// Declared cranes must all take part — an idle carrier declaration is
	// almost certainly a mis-indexed phase.
	for c, n := range owned {
		if n == 0 && len(s.Cranes) > 0 {
			return fmt.Errorf("scenario %s: crane %d declares no phases", s.Name, c)
		}
	}
	if s.Visibility < 0 || s.Visibility > 1 {
		return fmt.Errorf("scenario %s: visibility %v", s.Name, s.Visibility)
	}
	return nil
}

// next resolves the successor of phase i: the explicit Next, or the next
// list entry belonging to the same crane, or Terminal when the crane's
// sub-graph ends.
func (s Spec) next(i int) int {
	p := s.Phases[i]
	if p.Next != 0 {
		return p.Next
	}
	for j := i + 1; j < len(s.Phases); j++ {
		if s.Phases[j].Crane == p.Crane {
			return j
		}
	}
	return Terminal
}

// EntryFor returns the first phase node of a crane's sub-graph. ok is
// false when the crane owns no nodes (Validate rejects that for declared
// cranes).
func (s Spec) EntryFor(crane int) (int, bool) {
	for i, p := range s.Phases {
		if p.Crane == crane {
			return i, true
		}
	}
	return 0, false
}

// fallbackLift returns the nearest same-crane lift phase at or before i —
// where a traverse or place returns after the cargo is dropped. ok is
// false when no lift precedes i.
func (s Spec) fallbackLift(i int) (int, bool) {
	for j := i; j >= 0; j-- {
		if s.Phases[j].Kind == PhaseLift && s.Phases[j].Crane == s.Phases[i].Crane {
			return j, true
		}
	}
	return 0, false
}

// score returns the spec's deduction schedule, defaulted.
func (s Spec) score() ScoreConfig {
	if s.Score == (ScoreConfig{}) {
		return DefaultScore()
	}
	return s.Score
}

// Install loads the spec's physical side into the rigs of one site: the
// wind disturbance onto every model and the cargo set into their shared
// world, each cargo resting on the terrain. Every host of a scenario (the
// sim PC, the headless runner, the examples) goes through here so the
// resting-height convention lives in one place. All models must share one
// dynamics.World — build them with dynamics.NewCrane over the same world,
// one per entry of CraneDecls.
func (s Spec) Install(ter *terrain.Map, models ...*dynamics.Model) {
	if len(models) == 0 {
		return
	}
	w := models[0].World()
	w.Reset()
	for _, m := range models {
		m.SetWind(s.Wind)
	}
	for _, c := range s.Cargos {
		pos := c.Pos
		pos.Y = ter.HeightAt(pos.X, pos.Z) + 0.6
		w.AddCargoHooks(pos, c.Mass, c.HooksNeeded())
	}
}

// SpecFromCourse builds the classic linear exam graph — drive, lift,
// traverse, place back in the circle — from course geometry, preserving
// the original hardwired sequence as just another data point in the
// scenario space.
func SpecFromCourse(name, title string, c Course) Spec {
	return Spec{
		Name:   name,
		Title:  title,
		Course: c,
		Cargos: []Cargo{{Name: "cargo", Pos: c.Circle, Mass: c.CargoMass}},
		Phases: []PhaseSpec{
			{Name: "approach", Kind: PhaseDrive, Target: c.DriveTarget, Radius: c.DriveRadius},
			{Name: "lift", Kind: PhaseLift, Cargo: 0},
			{Name: "course", Kind: PhaseTraverse, Waypoints: c.Waypoints, Radius: c.WaypointRadius},
			{Name: "set-down", Kind: PhasePlace, Target: c.Circle, Radius: c.CircleRadius},
		},
	}
}
