package scenario

import (
	"fmt"

	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/terrain"
)

// PhaseKind classifies one node of a scenario's phase graph. The engine
// interprets the kind; the FOM's coarse fom.Phase published on the wire is
// derived from it, so existing consumers (status window, audio, displays)
// keep working for any scenario.
type PhaseKind int

// Phase kinds. Values start at 1; 0 is invalid.
const (
	// PhaseDrive: drive the carrier to Target within Radius.
	PhaseDrive PhaseKind = iota + 1
	// PhaseLift: latch and raise the cargo indexed by Cargo.
	PhaseLift
	// PhaseTraverse: carry the held cargo through Waypoints (gate radius
	// Radius); dropping the cargo falls back to the preceding lift.
	PhaseTraverse
	// PhasePlace: set the held cargo down and release it within Radius of
	// Target.
	PhasePlace
)

var phaseKindNames = map[PhaseKind]string{
	PhaseDrive:    "drive",
	PhaseLift:     "lift",
	PhaseTraverse: "traverse",
	PhasePlace:    "place",
}

// String returns the lowercase kind name.
func (k PhaseKind) String() string {
	if s, ok := phaseKindNames[k]; ok {
		return s
	}
	return "unknown"
}

// FOMPhase maps the kind onto the coarse wire-level phase enum.
func (k PhaseKind) FOMPhase() fom.Phase {
	switch k {
	case PhaseDrive:
		return fom.PhaseDriving
	case PhaseLift:
		return fom.PhaseLifting
	case PhaseTraverse:
		return fom.PhaseTraverse
	case PhasePlace:
		return fom.PhaseReturn
	}
	return fom.PhaseIdle
}

// PhaseSpec is one node of the phase graph.
type PhaseSpec struct {
	Name string // short label for logs and reports
	Kind PhaseKind

	// Target and Radius parameterize drive and place phases; Radius is
	// also the gate radius of a traverse.
	Target mathx.Vec3
	Radius float64

	// Waypoints is the trajectory of a traverse phase.
	Waypoints []mathx.Vec3

	// Cargo indexes Spec.Cargos for a lift phase.
	Cargo int

	// Next is the phase index entered when this phase completes. The zero
	// value means "the next phase in the list" (so plain linear scenarios
	// need no wiring); Terminal ends the scenario with pass/fail
	// evaluation. Explicit jumps to phase 0 are not representable — phase
	// 0 is always the entry node.
	Next int
}

// Terminal is the Next sentinel that ends the scenario after a phase.
const Terminal = -1

// Cargo is one liftable load placed in the world at scenario start.
type Cargo struct {
	Name string
	Pos  mathx.Vec3 // resting position; Y is recomputed from the terrain
	Mass float64    // kg
}

// Spec is a complete declarative scenario: the engine interprets it, the
// autopilot can fly it, and the cluster loads it — nothing about a
// particular workload is hardcoded anywhere else.
type Spec struct {
	// Name is the library key (kebab-case); Title the human heading.
	Name  string
	Title string

	// Course is the site geometry: start pose, obstruction bars, and the
	// circle zone. Phase targets live in Phases, not here.
	Course Course

	// Cargos are the liftable loads placed at scenario start.
	Cargos []Cargo

	// Phases is the phase graph, entered at index 0.
	Phases []PhaseSpec

	// Score is the deduction schedule; the zero value means DefaultScore.
	Score ScoreConfig

	// Wind is the site wind disturbance threaded into the dynamics.
	Wind dynamics.Wind

	// Visibility darkens the displays: 1 (or 0, the zero value) is full
	// daylight, lower values approach night work.
	Visibility float64
}

// Validate reports structural errors in the spec.
//
// The "preceding lift" requirement on traverse and place nodes is checked
// in list order, deliberately matching the drop edge's runtime semantics:
// fallbackLift scans the phase LIST backwards from the active node, not
// the Next-graph, so a lift that only precedes a traverse via Next jumps
// would still leave the drop edge with nowhere to go (a per-tick
// deduction loop). List order is therefore the invariant that makes every
// reachable drop recoverable, whatever the jump structure.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario %q: empty name", s.Title)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %s: no phases", s.Name)
	}
	liftSeen := false
	for i, p := range s.Phases {
		switch p.Kind {
		case PhaseDrive:
			if p.Radius <= 0 {
				return fmt.Errorf("scenario %s: phase %d (%s): radius %v", s.Name, i, p.Kind, p.Radius)
			}
		case PhasePlace:
			if p.Radius <= 0 {
				return fmt.Errorf("scenario %s: phase %d (%s): radius %v", s.Name, i, p.Kind, p.Radius)
			}
			// The drop edge falls back to the nearest preceding lift;
			// without one the engine would deduct every tick forever.
			if !liftSeen {
				return fmt.Errorf("scenario %s: phase %d: place with no preceding lift", s.Name, i)
			}
		case PhaseLift:
			if p.Cargo < 0 || p.Cargo >= len(s.Cargos) {
				return fmt.Errorf("scenario %s: phase %d: cargo index %d of %d", s.Name, i, p.Cargo, len(s.Cargos))
			}
			liftSeen = true
		case PhaseTraverse:
			if len(p.Waypoints) == 0 {
				return fmt.Errorf("scenario %s: phase %d: traverse without waypoints", s.Name, i)
			}
			if p.Radius <= 0 {
				return fmt.Errorf("scenario %s: phase %d: gate radius %v", s.Name, i, p.Radius)
			}
			if !liftSeen {
				return fmt.Errorf("scenario %s: phase %d: traverse with no preceding lift", s.Name, i)
			}
		default:
			return fmt.Errorf("scenario %s: phase %d: unknown kind %d", s.Name, i, p.Kind)
		}
		if p.Next != 0 && p.Next != Terminal && (p.Next <= 0 || p.Next >= len(s.Phases)) {
			return fmt.Errorf("scenario %s: phase %d: next %d out of graph", s.Name, i, p.Next)
		}
	}
	if s.Visibility < 0 || s.Visibility > 1 {
		return fmt.Errorf("scenario %s: visibility %v", s.Name, s.Visibility)
	}
	return nil
}

// next resolves the successor of phase i: the explicit Next, or the
// following list entry, or Terminal past the end.
func (s Spec) next(i int) int {
	p := s.Phases[i]
	if p.Next != 0 {
		return p.Next
	}
	if i+1 >= len(s.Phases) {
		return Terminal
	}
	return i + 1
}

// fallbackLift returns the nearest lift phase at or before i — where a
// traverse or place returns after the cargo is dropped. ok is false when
// no lift precedes i.
func (s Spec) fallbackLift(i int) (int, bool) {
	for j := i; j >= 0; j-- {
		if s.Phases[j].Kind == PhaseLift {
			return j, true
		}
	}
	return 0, false
}

// score returns the spec's deduction schedule, defaulted.
func (s Spec) score() ScoreConfig {
	if s.Score == (ScoreConfig{}) {
		return DefaultScore()
	}
	return s.Score
}

// Install loads the spec's physical side into a dynamics model: the wind
// disturbance and the cargo set, each cargo resting on the terrain. Every
// host of a scenario (the sim PC, the headless runner, the examples) goes
// through here so the resting-height convention lives in one place.
func (s Spec) Install(m *dynamics.Model, ter *terrain.Map) {
	m.SetWind(s.Wind)
	for i, c := range s.Cargos {
		pos := c.Pos
		pos.Y = ter.HeightAt(pos.X, pos.Z) + 0.6
		if i == 0 {
			m.PlaceCargo(pos, c.Mass) // clears any previous site set
		} else {
			m.AddCargo(pos, c.Mass)
		}
	}
}

// SpecFromCourse builds the classic linear exam graph — drive, lift,
// traverse, place back in the circle — from course geometry, preserving
// the original hardwired sequence as just another data point in the
// scenario space.
func SpecFromCourse(name, title string, c Course) Spec {
	return Spec{
		Name:   name,
		Title:  title,
		Course: c,
		Cargos: []Cargo{{Name: "cargo", Pos: c.Circle, Mass: c.CargoMass}},
		Phases: []PhaseSpec{
			{Name: "approach", Kind: PhaseDrive, Target: c.DriveTarget, Radius: c.DriveRadius},
			{Name: "lift", Kind: PhaseLift, Cargo: 0},
			{Name: "course", Kind: PhaseTraverse, Waypoints: c.Waypoints, Radius: c.WaypointRadius},
			{Name: "set-down", Kind: PhasePlace, Target: c.Circle, Radius: c.CircleRadius},
		},
	}
}
