// Package scenario implements the scenario control module of §3.5: it
// manages the state change inside the virtual world and evaluates the
// trainee. The shipped course reproduces the paper's layout (Fig. 8, 9):
// drive the mobile crane from the starting point to the test ground, lift
// the cargo from the white circular zone, carry it along the bar-lined
// trajectory to the far end and back, and set it down again — with score
// deductions whenever the cargo or hook strikes a bar.
package scenario

import (
	"math"

	"codsim/internal/mathx"
	"codsim/internal/terrain"
)

// Bar is one obstruction bar of the exam trajectory (Fig. 9).
type Bar struct {
	Name string
	Pos  mathx.Vec3 // center position
	Half mathx.Vec3 // half extents
	Yaw  float64
}

// Course is the training scenario's geometry.
type Course struct {
	// Start is where the carrier begins; DriveTarget is the test ground
	// entry the trainee must reach (Fig. 8).
	Start       mathx.Vec3
	StartYaw    float64
	DriveTarget mathx.Vec3
	// DriveRadius is how close the carrier must park to the target.
	DriveRadius float64

	// Circle is the white circular zone holding the cargo (Fig. 9).
	Circle       mathx.Vec3
	CircleRadius float64
	CargoMass    float64

	// Waypoints is the trajectory the suspended cargo must follow, out
	// and back; Bars obstruct it.
	Waypoints      []mathx.Vec3
	WaypointRadius float64
	Bars           []Bar

	// ParTime is the expected completion time in seconds; overtime costs
	// score.
	ParTime float64
}

// DefaultCourse builds the shipped course on the default site terrain: the
// start point in the yard's south-west, the test ground circle in the
// north-east, and a four-bar out-and-back trajectory. The whole trajectory
// fits inside the default crane's reach envelope from the parking spot at
// DriveTarget, so the exam is completed with boom work alone, as in Fig. 9.
func DefaultCourse() Course {
	tg := mathx.V3(terrain.TestGroundX, 0, terrain.TestGroundZ)
	circle := tg.Add(mathx.V3(-12, 0, 0))

	// Out-and-back trajectory east of the circle, weaving past the bar
	// ends (or flying over them — collisions, not routes, are scored).
	var wps []mathx.Vec3
	outbound := []mathx.Vec3{
		circle.Add(mathx.V3(1.5, 0, 3.2)),
		circle.Add(mathx.V3(4.5, 0, -3.2)),
		circle.Add(mathx.V3(7.5, 0, 3.2)),
		circle.Add(mathx.V3(10.5, 0, -3.2)),
		circle.Add(mathx.V3(15, 0, 0)), // far turn point
	}
	wps = append(wps, outbound...)
	for i := len(outbound) - 2; i >= 0; i-- { // return leg mirrors it
		wps = append(wps, outbound[i])
	}
	wps = append(wps, circle)

	bars := make([]Bar, 0, 4)
	for i, dx := range []float64{3, 6, 9, 12} {
		bars = append(bars, Bar{
			Name: barName(i),
			Pos:  circle.Add(mathx.V3(dx, 1.2, 0)),
			Half: mathx.V3(0.15, 1.2, 1.5),
			Yaw:  0,
		})
	}

	return Course{
		Start:          mathx.V3(terrain.StartX, 0, terrain.StartZ),
		StartYaw:       math.Pi / 4, // face north-east toward the test ground
		DriveTarget:    circle.Add(mathx.V3(7.5, 0, 10)),
		DriveRadius:    4,
		Circle:         circle,
		CircleRadius:   3,
		CargoMass:      1500,
		Waypoints:      wps,
		WaypointRadius: 2.2,
		Bars:           bars,
		ParTime:        420,
	}
}

func barName(i int) string { return "bar-" + string(rune('A'+i)) }

// AdvancedCourse is a harder variant for licensed operators: six bars at
// tighter spacing, smaller gate radii, heavier cargo and a shorter par
// time. The trajectory still fits the default crane's reach envelope from
// the parking spot.
func AdvancedCourse() Course {
	c := DefaultCourse()
	c.CargoMass = 2600
	c.ParTime = 300
	c.WaypointRadius = 2.0
	c.CircleRadius = 2.5

	c.Bars = c.Bars[:0]
	for i, dx := range []float64{2.5, 5, 7.5, 10, 12.5, 15} {
		c.Bars = append(c.Bars, Bar{
			Name: barName(i),
			Pos:  c.Circle.Add(mathx.V3(dx, 1.5, 0)),
			Half: mathx.V3(0.15, 1.5, 1.8),
			Yaw:  0,
		})
	}
	// A tighter weave with one extra gate on each leg.
	var wps []mathx.Vec3
	outbound := []mathx.Vec3{
		c.Circle.Add(mathx.V3(1.2, 0, 2.8)),
		c.Circle.Add(mathx.V3(3.8, 0, -2.8)),
		c.Circle.Add(mathx.V3(6.2, 0, 2.8)),
		c.Circle.Add(mathx.V3(8.8, 0, -2.8)),
		c.Circle.Add(mathx.V3(11.2, 0, 2.8)),
		c.Circle.Add(mathx.V3(14, 0, 0)),
	}
	wps = append(wps, outbound...)
	for i := len(outbound) - 2; i >= 0; i-- {
		wps = append(wps, outbound[i])
	}
	wps = append(wps, c.Circle)
	c.Waypoints = wps
	return c
}
