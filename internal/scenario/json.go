package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Spec JSON serialization. A scenario file is the JSON encoding of a Spec
// with phase kinds spelled as their lowercase names ("drive", "lift",
// "traverse", "place"), so files read like the phase graph they describe:
//
//	{
//	  "Name": "my-lift",
//	  "Title": "My custom lift",
//	  "Course": { "Start": {"X": ...}, ... },
//	  "Cargos": [ {"Name": "crate", "Pos": {...}, "Mass": 1500} ],
//	  "Phases": [
//	    {"Name": "approach", "Kind": "drive", "Target": {...}, "Radius": 4},
//	    {"Name": "pick",     "Kind": "lift",  "Cargo": 0},
//	    ...
//	  ]
//	}
//
// Every load path validates the spec, so a malformed file fails at load
// time, not mid-federation. This is also the wire format of the dist
// protocol: a coordinator ships each job's Spec to its worker as this
// JSON.

// MarshalJSON encodes the kind as its lowercase name.
func (k PhaseKind) MarshalJSON() ([]byte, error) {
	s, ok := phaseKindNames[k]
	if !ok {
		return nil, fmt.Errorf("scenario: cannot marshal unknown phase kind %d", int(k))
	}
	return json.Marshal(s)
}

// UnmarshalJSON accepts a kind name ("drive") or its numeric value.
func (k *PhaseKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		for kind, name := range phaseKindNames {
			if name == s {
				*k = kind
				return nil
			}
		}
		return fmt.Errorf("scenario: unknown phase kind %q", s)
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("scenario: phase kind must be a name or number, got %s", data)
	}
	if _, ok := phaseKindNames[PhaseKind(n)]; !ok {
		return fmt.Errorf("scenario: unknown phase kind %d", n)
	}
	*k = PhaseKind(n)
	return nil
}

// MarshalSpec encodes a validated spec as indented JSON, suitable both for
// scenario files and for the dist protocol's job payloads.
func MarshalSpec(s Spec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(s, "", "  ")
}

// UnmarshalSpec decodes a spec from JSON and validates it. Unknown fields
// are rejected — a typoed field name in a hand-written scenario file must
// not silently become the zero value.
func UnmarshalSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decode spec: %w", err)
	}
	// One spec per file: trailing data (a second concatenated object, a
	// stray JSONL paste) must fail loudly, not load half the file.
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec %q", s.Name)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads one scenario file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := UnmarshalSpec(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// LoadSpecDir reads every *.json file of a directory as a scenario, in
// filename order, and rejects duplicate scenario names across files.
func LoadSpecDir(dir string) ([]Spec, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("scenario: no *.json files in %s", dir)
	}
	specs := make([]Spec, 0, len(files))
	seen := make(map[string]string, len(files))
	for _, f := range files {
		s, err := LoadSpec(filepath.Join(dir, f))
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[s.Name]; dup {
			return nil, fmt.Errorf("scenario: %s and %s both define %q", prev, f, s.Name)
		}
		seen[s.Name] = f
		specs = append(specs, s)
	}
	return specs, nil
}
