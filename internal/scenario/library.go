package scenario

import (
	"fmt"
	"sort"

	"codsim/internal/dynamics"
	"codsim/internal/mathx"
)

// The shipped scenario library. Every entry is a plain Spec — the engine
// has no knowledge of any of them — and every entry is completable headless
// by the trace autopilot (the library test proves it). Geometry rule of
// thumb: all cargo work targets must keep a horizontal radius of roughly
// 7–15 m from the parking spot so the default crane reaches them with boom
// work alone, as in Fig. 9.

// Classic is the paper's licensing exam (Fig. 8/9) expressed as a Spec.
func Classic() Spec {
	return SpecFromCourse("classic-exam", "Licensing exam", DefaultCourse())
}

// Advanced is the harder licensed-operator variant: six bars, heavier
// cargo, tighter gates.
func Advanced() Spec {
	return SpecFromCourse("advanced-exam", "Advanced licensing exam", AdvancedCourse())
}

// baseCourse returns the shared site frame of the non-exam scenarios: the
// default start pose and test-ground circle with no bars (each scenario
// installs its own) and no legacy waypoint trajectory.
func baseCourse() Course {
	c := DefaultCourse()
	c.Bars = nil
	c.Waypoints = nil
	return c
}

// wallBar builds one obstruction bar named in sequence.
func wallBar(i int, pos, half mathx.Vec3) Bar {
	return Bar{Name: barName(i), Pos: pos, Half: half}
}

// BlindLift hides the cargo behind a three-bar wall between the parking
// spot and the pickup: the operator cannot see the load go down, so the
// carry runs above the wall and lands on a pad off to the side.
func BlindLift() Spec {
	c := baseCourse()
	c.CargoMass = 1800
	c.ParTime = 360
	for i, dz := range []float64{-3, 0, 3} {
		c.Bars = append(c.Bars, wallBar(i,
			c.Circle.Add(mathx.V3(3.5, 1.5, dz)),
			mathx.V3(0.15, 1.5, 1.6)))
	}
	pad := c.Circle.Add(mathx.V3(-3, 0, 5))
	return Spec{
		Name:   "blind-lift",
		Title:  "Blind lift behind the wall",
		Course: c,
		Cargos: []Cargo{{Name: "the hidden crate", Pos: c.Circle, Mass: c.CargoMass}},
		Phases: []PhaseSpec{
			{Name: "the test ground", Kind: PhaseDrive, Target: c.DriveTarget, Radius: c.DriveRadius},
			{Name: "blind pick", Kind: PhaseLift, Cargo: 0},
			{Name: "over the wall", Kind: PhaseTraverse, Radius: 2.4, Waypoints: []mathx.Vec3{
				c.Circle.Add(mathx.V3(0, 0, 2)),
				c.Circle.Add(mathx.V3(-2, 0, 4)),
				pad,
			}},
			{Name: "the laydown pad", Kind: PhasePlace, Target: pad, Radius: 2.4},
		},
	}
}

// HeavyDerate is the load-chart workout: a 4.2 t block that the chart only
// allows at short radius, carried through wide gates kept close to the
// crane. Wander outward and the overload lamp (and its deduction) fires.
func HeavyDerate() Spec {
	c := baseCourse()
	c.CargoMass = 4200
	c.ParTime = 480
	for i, d := range []mathx.Vec3{mathx.V3(4.5, 1.0, 4.5), mathx.V3(7.5, 1.0, -4.5)} {
		c.Bars = append(c.Bars, wallBar(i, c.Circle.Add(d), mathx.V3(0.15, 1.0, 1.4)))
	}
	return Spec{
		Name:   "heavy-derate",
		Title:  "Heavy lift inside the load chart",
		Course: c,
		Cargos: []Cargo{{Name: "the 4.2 t block", Pos: c.Circle, Mass: c.CargoMass}},
		Phases: []PhaseSpec{
			{Name: "the test ground", Kind: PhaseDrive, Target: c.DriveTarget, Radius: c.DriveRadius},
			{Name: "heavy pick", Kind: PhaseLift, Cargo: 0},
			{Name: "short-radius carry", Kind: PhaseTraverse, Radius: 2.8, Waypoints: []mathx.Vec3{
				c.Circle.Add(mathx.V3(3, 0, 3)),
				c.Circle.Add(mathx.V3(6, 0, -3)),
				c.Circle.Add(mathx.V3(9, 0, 0)),
			}},
			{Name: "the circle", Kind: PhasePlace, Target: c.Circle, Radius: 3.5},
		},
	}
}

// WindyLift runs the bar course in a gusting cross-wind: the suspended
// load drifts downwind and keeps swinging, so the operator must lead the
// gates instead of aiming at them.
func WindyLift() Spec {
	c := baseCourse()
	c.CargoMass = 1500
	c.ParTime = 480
	for i, dx := range []float64{3, 6, 9} {
		c.Bars = append(c.Bars, wallBar(i,
			c.Circle.Add(mathx.V3(dx, 1.2, 0)),
			mathx.V3(0.15, 1.2, 1.5)))
	}
	return Spec{
		Name:   "windy-lift",
		Title:  "Windy-day lift",
		Course: c,
		Cargos: []Cargo{{Name: "the swinging crate", Pos: c.Circle, Mass: c.CargoMass}},
		Wind:   dynamics.Wind{Mean: mathx.V3(3.2, 0, 2.4), Gust: 2.8, Period: 7},
		Phases: []PhaseSpec{
			{Name: "the test ground", Kind: PhaseDrive, Target: c.DriveTarget, Radius: c.DriveRadius},
			{Name: "windy pick", Kind: PhaseLift, Cargo: 0},
			{Name: "the gusty gates", Kind: PhaseTraverse, Radius: 2.6, Waypoints: []mathx.Vec3{
				c.Circle.Add(mathx.V3(1.5, 0, 3.2)),
				c.Circle.Add(mathx.V3(4.5, 0, -3.2)),
				c.Circle.Add(mathx.V3(7.5, 0, 3.2)),
				c.Circle.Add(mathx.V3(10.5, 0, 0)),
			}},
			{Name: "the circle", Kind: PhasePlace, Target: c.Circle, Radius: 3.0},
		},
	}
}

// NightPrecision is low-visibility precision placement: set the load on a
// small pad, then bring it back to the circle — a phase graph with two
// lifts and two placements of the same cargo.
func NightPrecision() Spec {
	c := baseCourse()
	c.CargoMass = 1200
	c.ParTime = 540
	for i, d := range []mathx.Vec3{mathx.V3(4.5, 1.2, 3), mathx.V3(7, 1.2, -3)} {
		c.Bars = append(c.Bars, wallBar(i, c.Circle.Add(d), mathx.V3(0.15, 1.2, 1.4)))
	}
	pad := c.Circle.Add(mathx.V3(9, 0, 1))
	return Spec{
		Name:       "night-precision",
		Title:      "Night precision placement",
		Course:     c,
		Visibility: 0.25,
		Cargos:     []Cargo{{Name: "the pallet", Pos: c.Circle, Mass: c.CargoMass}},
		Phases: []PhaseSpec{
			{Name: "the test ground", Kind: PhaseDrive, Target: c.DriveTarget, Radius: c.DriveRadius},
			{Name: "night pick", Kind: PhaseLift, Cargo: 0},
			{Name: "out to the pad", Kind: PhaseTraverse, Radius: 1.7, Waypoints: []mathx.Vec3{
				c.Circle.Add(mathx.V3(3, 0, 2.5)),
				c.Circle.Add(mathx.V3(6, 0, -2.5)),
			}},
			{Name: "the small pad", Kind: PhasePlace, Target: pad, Radius: 1.8},
			{Name: "re-pick", Kind: PhaseLift, Cargo: 0},
			{Name: "back home", Kind: PhaseTraverse, Radius: 1.7, Waypoints: []mathx.Vec3{
				c.Circle.Add(mathx.V3(6, 0, 2.5)),
				c.Circle.Add(mathx.V3(3, 0, -2.5)),
			}},
			{Name: "the circle", Kind: PhasePlace, Target: c.Circle, Radius: 2.0},
		},
	}
}

// TandemBeam is the multi-crane flagship: a 3.6 t beam too long for one
// hook, lifted by two cranes parked either side of it. Each crane drives
// to its spot and latches; the beam only leaves the ground once both
// hooks are on (the tandem gate), then the pair carries it east through
// shared gates and sets it on the laydown pad together.
func TandemBeam() Spec {
	c := baseCourse()
	c.CargoMass = 3600
	c.ParTime = 480
	beam := c.Circle
	parkN := beam.Add(mathx.V3(1.5, 0, 9.5))  // north crane's spot
	parkS := beam.Add(mathx.V3(1.5, 0, -9.5)) // south crane's spot
	pad := beam.Add(mathx.V3(8, 0, 0))
	gates := []mathx.Vec3{
		beam.Add(mathx.V3(3, 0, 0)),
		beam.Add(mathx.V3(6, 0, 0)),
		pad,
	}
	return Spec{
		Name:   "tandem-beam",
		Title:  "Tandem beam lift",
		Course: c,
		Cranes: []CraneDecl{
			{Name: "north", Start: c.Start, StartYaw: c.StartYaw},
			{Name: "south", Start: mathx.V3(140, 0, 30), StartYaw: 0},
		},
		Cargos: []Cargo{{Name: "the long beam", Pos: beam, Mass: c.CargoMass, Hooks: 2}},
		Phases: []PhaseSpec{
			{Name: "north spot", Kind: PhaseDrive, Crane: 0, Target: parkN, Radius: 4},
			{Name: "south spot", Kind: PhaseDrive, Crane: 1, Target: parkS, Radius: 4},
			{Name: "north hook", Kind: PhaseLift, Crane: 0, Cargo: 0, Tandem: true},
			{Name: "south hook", Kind: PhaseLift, Crane: 1, Cargo: 0, Tandem: true},
			{Name: "the shared gates", Kind: PhaseTraverse, Crane: 0, Radius: 3.0, Waypoints: gates},
			{Name: "the shared gates", Kind: PhaseTraverse, Crane: 1, Radius: 3.0, Waypoints: gates},
			{Name: "the laydown pad", Kind: PhasePlace, Crane: 0, Target: pad, Radius: 3.5},
			{Name: "the laydown pad", Kind: PhasePlace, Crane: 1, Target: pad, Radius: 3.5},
		},
	}
}

// TwinYard is the staggered two-crane yard: two independent carriers work
// their own pick in parallel — no shared load, pure federation scale-out.
// The south crane's zone sits twenty meters off the circle, both inside
// the levelled test ground.
func TwinYard() Spec {
	c := baseCourse()
	c.CargoMass = 1500
	c.ParTime = 480
	zoneN := c.Circle
	zoneS := c.Circle.Add(mathx.V3(0, 0, -20))
	padN := zoneN.Add(mathx.V3(9, 0, 2))
	padS := zoneS.Add(mathx.V3(9, 0, -2))
	return Spec{
		Name:   "twin-yard",
		Title:  "Staggered two-crane yard",
		Course: c,
		Cranes: []CraneDecl{
			{Name: "north", Start: c.Start, StartYaw: c.StartYaw},
			{Name: "south", Start: mathx.V3(140, 0, 30), StartYaw: 0},
		},
		Cargos: []Cargo{
			{Name: "the north crate", Pos: zoneN, Mass: c.CargoMass},
			{Name: "the south crate", Pos: zoneS, Mass: c.CargoMass},
		},
		Phases: []PhaseSpec{
			{Name: "north yard", Kind: PhaseDrive, Crane: 0, Target: zoneN.Add(mathx.V3(7.5, 0, 10)), Radius: 4},
			{Name: "south yard", Kind: PhaseDrive, Crane: 1, Target: zoneS.Add(mathx.V3(7.5, 0, -10)), Radius: 4},
			{Name: "north pick", Kind: PhaseLift, Crane: 0, Cargo: 0},
			{Name: "south pick", Kind: PhaseLift, Crane: 1, Cargo: 1},
			{Name: "north run", Kind: PhaseTraverse, Crane: 0, Radius: 2.6, Waypoints: []mathx.Vec3{
				zoneN.Add(mathx.V3(3, 0, 2)),
				zoneN.Add(mathx.V3(6, 0, -2)),
				padN,
			}},
			{Name: "south run", Kind: PhaseTraverse, Crane: 1, Radius: 2.6, Waypoints: []mathx.Vec3{
				zoneS.Add(mathx.V3(3, 0, -2)),
				zoneS.Add(mathx.V3(6, 0, 2)),
				padS,
			}},
			{Name: "north pad", Kind: PhasePlace, Crane: 0, Target: padN, Radius: 2.6},
			{Name: "south pad", Kind: PhasePlace, Crane: 1, Target: padS, Radius: 2.6},
		},
	}
}

// Library returns every shipped scenario, sorted by name.
func Library() []Spec {
	specs := []Spec{
		Classic(),
		Advanced(),
		BlindLift(),
		HeavyDerate(),
		WindyLift(),
		NightPrecision(),
		TandemBeam(),
		TwinYard(),
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// ByName finds a shipped scenario by its library key.
func ByName(name string) (Spec, error) {
	for _, s := range Library() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: unknown scenario %q", name)
}
