// Fuzz targets for the Spec JSON surface. Specs cross a trust boundary —
// the dist protocol ships them between hosts, -specs loads user files,
// and the generator emits them by the thousand — so the decoder and the
// validator must hold for arbitrary bytes, not just well-formed specs.
// The external test package lets the seed corpus draw on both the
// hand-built library and the procedural generator without an import
// cycle.
package scenario_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"codsim/internal/scenario"
	"codsim/internal/scenario/gen"
)

// seedCorpus is every spec the repo can produce today: the shipped
// library plus one generated candidate per archetype-rich seed.
func seedCorpus(f *testing.F) {
	f.Helper()
	for _, s := range scenario.Library() {
		data, err := scenario.MarshalSpec(s)
		if err != nil {
			f.Fatalf("library %s: %v", s.Name, err)
		}
		f.Add(data)
	}
	for k := int64(0); k < 8; k++ {
		s, err := gen.Generate(gen.SubSeed(7, k), gen.DefaultParams())
		if err != nil {
			f.Fatalf("gen candidate %d: %v", k, err)
		}
		data, err := scenario.MarshalSpec(s)
		if err != nil {
			f.Fatalf("gen candidate %d marshal: %v", k, err)
		}
		f.Add(data)
	}
}

// FuzzUnmarshalSpec: arbitrary bytes must never panic the decoder, and
// any accepted spec must re-marshal, re-parse, and re-marshal to the same
// bytes — the dist protocol depends on specs surviving the trip.
func FuzzUnmarshalSpec(f *testing.F) {
	seedCorpus(f)
	f.Add([]byte(`{"Name":"x"}`))
	f.Add([]byte(`{"Name":"x","Phases":[{"Kind":"lift","Cargo":99}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := scenario.UnmarshalSpec(data)
		if err != nil {
			return
		}
		out, err := scenario.MarshalSpec(s)
		if err != nil {
			t.Fatalf("accepted spec %q does not re-marshal: %v", s.Name, err)
		}
		s2, err := scenario.UnmarshalSpec(out)
		if err != nil {
			t.Fatalf("re-marshal of %q does not re-parse: %v", s.Name, err)
		}
		out2, err := scenario.MarshalSpec(s2)
		if err != nil {
			t.Fatalf("round-tripped %q does not re-marshal: %v", s.Name, err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("spec %q round-trip is not a fixed point", s.Name)
		}
	})
}

// FuzzValidate: Validate must never panic, even on structurally wild
// specs the strict decoder would refuse — engine construction and the
// generator both call it on in-memory Specs that never passed through
// UnmarshalSpec's checks.
func FuzzValidate(f *testing.F) {
	seedCorpus(f)
	f.Add([]byte(`{"Phases":[{"Kind":4}]}`))
	f.Add([]byte(`{"Cranes":[{}],"Phases":[{"Kind":"place","Crane":-1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		// The lenient decoder: unknown fields and bad kinds are dropped
		// rather than rejected, reaching Validate with shapes the strict
		// path cannot produce.
		var s scenario.Spec
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		_ = s.Validate() // must not panic
	})
}
