package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestSpecJSONRoundTrip proves every library scenario survives the JSON
// encoding unchanged — the dist protocol ships specs this way, so a lossy
// codec would silently run a different scenario on the worker.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, want := range Library() {
		data, err := MarshalSpec(want)
		if err != nil {
			t.Fatalf("%s: marshal: %v", want.Name, err)
		}
		got, err := UnmarshalSpec(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", want.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip changed the spec:\n got %+v\nwant %+v", want.Name, got, want)
		}
	}
}

// TestSpecJSONKindNames pins the readable phase-kind encoding.
func TestSpecJSONKindNames(t *testing.T) {
	data, err := MarshalSpec(Classic())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"drive"`, `"lift"`, `"traverse"`, `"place"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("encoding missing %s:\n%s", want, data)
		}
	}
}

// TestMultiCraneJSONRoundTrip pins the multi-crane extension through the
// codec: crane declarations, per-node crane indices, tandem markers and
// hook counts must all survive, and a decoded spec must still enforce the
// multi-crane Validate rules.
func TestMultiCraneJSONRoundTrip(t *testing.T) {
	want := TandemBeam()
	data, err := MarshalSpec(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"Cranes"`, `"Tandem": true`, `"Hooks": 2`, `"Crane": 1`} {
		if !strings.Contains(string(data), frag) {
			t.Errorf("encoding missing %s", frag)
		}
	}
	got, err := UnmarshalSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the spec:\n got %+v\nwant %+v", got, want)
	}

	// A tandem spec stripped to a single declared crane must fail at
	// (de)serialization time, not mid-federation — both directions
	// validate.
	s := TandemBeam()
	s.Cranes = s.Cranes[:1]
	if _, err := MarshalSpec(s); err == nil {
		t.Error("MarshalSpec accepted a tandem spec with one crane")
	}
}

func TestUnmarshalSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown kind":  `{"Name":"x","Phases":[{"Kind":"swim","Radius":1}]}`,
		"unknown field": `{"Name":"x","Phasez":[]}`,
		"invalid spec":  `{"Name":"x","Phases":[]}`,
		"bad kind type": `{"Name":"x","Phases":[{"Kind":true}]}`,
		"trailing data": `{"Name":"x","Phases":[{"Kind":"drive","Radius":1}]} {"Name":"y"}`,
	}
	for name, in := range cases {
		if _, err := UnmarshalSpec([]byte(in)); err == nil {
			t.Errorf("%s: UnmarshalSpec accepted %s", name, in)
		}
	}
}

// TestLoadSpecDir writes the library to files and loads it back.
func TestLoadSpecDir(t *testing.T) {
	dir := t.TempDir()
	lib := Library()
	for _, s := range lib {
		data, err := MarshalSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, s.Name+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	specs, err := LoadSpecDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specs, lib) {
		t.Errorf("LoadSpecDir: got %d specs, want the library back", len(specs))
	}

	// A duplicate name across files is a configuration error.
	dup, _ := MarshalSpec(lib[0])
	if err := os.WriteFile(filepath.Join(dir, "zz-dup.json"), dup, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpecDir(dir); err == nil || !strings.Contains(err.Error(), "both define") {
		t.Errorf("duplicate scenario name not rejected: %v", err)
	}

	if _, err := LoadSpecDir(t.TempDir()); err == nil {
		t.Error("empty dir not rejected")
	}
}
