package scenario

import (
	"math"
	"strings"
	"testing"

	"codsim/internal/crane"
	"codsim/internal/fom"
	"codsim/internal/mathx"
)

func newEngine() *Engine {
	return NewEngine(DefaultCourse(), crane.DefaultSpec(), DefaultScore())
}

// stateAt returns a quiet crane state with the carrier at pos and the hook
// and cargo hovering safely above it.
func stateAt(pos mathx.Vec3) fom.CraneState {
	return fom.CraneState{
		Position:  pos,
		BoomLuff:  mathx.Rad(45),
		BoomLen:   12,
		CableLen:  4,
		HookPos:   pos.Add(mathx.V3(0, 8, -8)),
		CargoPos:  pos.Add(mathx.V3(0, 7, -8)),
		Stability: 0.9,
		EngineOn:  true,
	}
}

func TestDefaultCourseGeometry(t *testing.T) {
	c := DefaultCourse()
	if len(c.Bars) != 4 {
		t.Errorf("bars = %d, want 4", len(c.Bars))
	}
	if len(c.Waypoints) < 7 {
		t.Errorf("waypoints = %d, want out-and-back course", len(c.Waypoints))
	}
	// Last waypoint returns to the circle.
	last := c.Waypoints[len(c.Waypoints)-1]
	if last.Dist(c.Circle) > 1e-9 {
		t.Errorf("course does not return to circle: %v", last)
	}
	// Bars sit between the circle and the far turn.
	for _, b := range c.Bars {
		if b.Pos.X <= c.Circle.X || b.Pos.X >= c.Circle.X+15 {
			t.Errorf("bar %s at %v outside trajectory band", b.Name, b.Pos)
		}
	}
	if c.CargoMass <= 0 || c.ParTime <= 0 {
		t.Error("degenerate course parameters")
	}
}

func TestAdvancedCourseGeometry(t *testing.T) {
	c := AdvancedCourse()
	if len(c.Bars) != 6 {
		t.Errorf("bars = %d, want 6", len(c.Bars))
	}
	if c.CargoMass <= DefaultCourse().CargoMass {
		t.Error("advanced course should carry heavier cargo")
	}
	if c.ParTime >= DefaultCourse().ParTime {
		t.Error("advanced course should have tighter par time")
	}
	if c.WaypointRadius >= DefaultCourse().WaypointRadius {
		t.Error("advanced course should have tighter gates")
	}
	last := c.Waypoints[len(c.Waypoints)-1]
	if last.Dist(c.Circle) > 1e-9 {
		t.Errorf("advanced course does not return to circle: %v", last)
	}
	// Every waypoint stays within the default crane's reach from the
	// parking spot (pivot radius 5.6–15.7 m at the working luff).
	for i, wp := range c.Waypoints {
		d := wp.Sub(c.DriveTarget)
		r := mathx.V3(d.X, 0, d.Z).Len()
		if r < 4.5 || r > 15.7 {
			t.Errorf("waypoint %d at radius %.1f outside reach envelope", i, r)
		}
	}
}

func TestPhaseFlowHappyPath(t *testing.T) {
	e := newEngine()
	if e.Phase() != fom.PhaseIdle {
		t.Fatalf("initial phase = %v", e.Phase())
	}
	// Stepping while idle does nothing.
	if ev := e.Step(stateAt(e.course.Start), 0.1); ev != nil {
		t.Errorf("idle events = %v", ev)
	}
	e.Start()
	if e.Phase() != fom.PhaseDriving {
		t.Fatalf("phase after start = %v", e.Phase())
	}

	// Arrive at the test ground.
	ev := e.Step(stateAt(e.course.DriveTarget), 0.1)
	if e.Phase() != fom.PhaseLifting {
		t.Fatalf("phase = %v, want lifting", e.Phase())
	}
	if len(ev) == 0 || ev[len(ev)-1].Kind != EventPhaseChange {
		t.Errorf("events = %v, want phase change", ev)
	}

	// Latch the cargo.
	st := stateAt(e.course.DriveTarget)
	st.CargoHeld = true
	e.Step(st, 0.1)
	if e.Phase() != fom.PhaseTraverse {
		t.Fatalf("phase = %v, want traverse", e.Phase())
	}

	// Fly the cargo high above every waypoint (clear of the bars).
	for _, wp := range e.course.Waypoints {
		st.CargoPos = wp.Add(mathx.V3(0, 6, 0))
		st.HookPos = st.CargoPos.Add(mathx.V3(0, 1, 0))
		e.Step(st, 1)
	}
	if e.Phase() != fom.PhaseReturn {
		t.Fatalf("phase = %v, want return (waypoint %d)", e.Phase(), e.State().Waypoint)
	}

	// Set it down inside the circle and release.
	st.CargoPos = e.course.Circle.Add(mathx.V3(0, 0.5, 0))
	st.CargoHeld = false
	e.Step(st, 0.1)
	if e.Phase() != fom.PhaseComplete {
		t.Fatalf("phase = %v, want complete; msg=%q", e.Phase(), e.State().Message)
	}
	if e.Score() != DefaultScore().Initial {
		t.Errorf("clean run score = %v, want %v", e.Score(), DefaultScore().Initial)
	}
}

func TestBarCollisionDeductsOncePerEpisode(t *testing.T) {
	e := newEngine()
	e.Start()
	st := stateAt(e.course.DriveTarget)
	e.Step(st, 0.1) // → lifting
	st.CargoHeld = true
	e.Step(st, 0.1) // → traverse

	// Drag the cargo straight through bar A for several ticks.
	bar := e.course.Bars[0]
	st.CargoPos = bar.Pos
	st.HookPos = bar.Pos.Add(mathx.V3(0, 1.5, 0))
	before := e.Score()
	var hits int
	for i := 0; i < 10; i++ {
		for _, ev := range e.Step(st, 0.05) {
			if ev.Kind == EventBarCollision {
				hits++
				if ev.Bar != bar.Name {
					t.Errorf("hit bar %q, want %q", ev.Bar, bar.Name)
				}
			}
		}
	}
	if hits != 1 {
		t.Errorf("contact episodes = %d, want 1 (debounced)", hits)
	}
	if got := before - e.Score(); math.Abs(got-DefaultScore().BarHit) > 1e-9 {
		t.Errorf("deduction = %v, want %v", got, DefaultScore().BarHit)
	}
	if e.State().Collisions != 1 {
		t.Errorf("collision count = %d", e.State().Collisions)
	}
	if !e.ExtraAlarms().Has(fom.AlarmCollision) {
		t.Error("collision alarm not latched")
	}

	// Move away, then hit again: a second episode counts.
	st.CargoPos = bar.Pos.Add(mathx.V3(0, 10, 0))
	st.HookPos = st.CargoPos
	e.Step(st, 0.05)
	st.CargoPos = bar.Pos
	st.HookPos = bar.Pos.Add(mathx.V3(0, 1.5, 0))
	for _, ev := range e.Step(st, 0.05) {
		if ev.Kind == EventBarCollision {
			hits++
		}
	}
	if hits != 2 {
		t.Errorf("episodes after re-contact = %d, want 2", hits)
	}
}

func TestCargoDroppedMidCourse(t *testing.T) {
	e := newEngine()
	e.Start()
	st := stateAt(e.course.DriveTarget)
	e.Step(st, 0.1)
	st.CargoHeld = true
	e.Step(st, 0.1)
	if e.Phase() != fom.PhaseTraverse {
		t.Fatal("not in traverse")
	}
	before := e.Score()
	st.CargoHeld = false
	e.Step(st, 0.1)
	if e.Phase() != fom.PhaseLifting {
		t.Errorf("phase = %v, want back to lifting", e.Phase())
	}
	if e.Score() >= before {
		t.Error("dropping cargo cost nothing")
	}
}

func TestSafetyAlarmDeduction(t *testing.T) {
	e := newEngine()
	e.Start()
	st := stateAt(e.course.Start)
	e.Step(st, 0.1)
	before := e.Score()
	// Trip the overspeed alarm.
	st.Speed = crane.DefaultSpec().MaxSpeed + 3
	ev := e.Step(st, 0.1)
	foundAlarm := false
	for _, x := range ev {
		if x.Kind == EventAlarmRaised {
			foundAlarm = true
		}
	}
	if !foundAlarm {
		t.Fatal("no alarm event")
	}
	if got := before - e.Score(); math.Abs(got-DefaultScore().SafetyAlarm) > 1e-9 {
		t.Errorf("deduction = %v", got)
	}
	// Holding the alarm does not deduct again.
	mid := e.Score()
	e.Step(st, 0.1)
	if e.Score() != mid {
		t.Error("sustained alarm deducted repeatedly")
	}
}

func TestOvertimePenaltyAndFail(t *testing.T) {
	cfg := DefaultScore()
	cfg.PassMark = 99.9 // make any overtime fail
	e := NewEngine(DefaultCourse(), crane.DefaultSpec(), cfg)
	e.Start()
	st := stateAt(e.course.DriveTarget)
	e.Step(st, 0.1)
	st.CargoHeld = true
	e.Step(st, 0.1)
	for _, wp := range e.course.Waypoints {
		st.CargoPos = wp.Add(mathx.V3(0, 6, 0))
		st.HookPos = st.CargoPos
		e.Step(st, 200) // very slow trainee: way past par time
	}
	st.CargoPos = e.course.Circle.Add(mathx.V3(0, 0.5, 0))
	st.CargoHeld = false
	e.Step(st, 0.1)
	if e.Phase() != fom.PhaseFailed {
		t.Errorf("phase = %v, want failed (score %v)", e.Phase(), e.Score())
	}
	if e.Score() >= cfg.Initial {
		t.Error("no overtime penalty applied")
	}
}

func TestReset(t *testing.T) {
	e := newEngine()
	e.Start()
	st := stateAt(e.course.DriveTarget)
	st.Speed = 99 // trip alarm, lose points
	e.Step(st, 5)
	if e.Score() == DefaultScore().Initial {
		t.Fatal("setup failed to deduct")
	}
	e.Reset()
	s := e.State()
	if s.Phase != fom.PhaseIdle || s.Score != DefaultScore().Initial ||
		s.Elapsed != 0 || s.Collisions != 0 {
		t.Errorf("after reset: %+v", s)
	}
	if e.ExtraAlarms() != 0 {
		t.Error("alarms survived reset")
	}
}

func TestScoreFloorsAtZero(t *testing.T) {
	cfg := DefaultScore()
	cfg.SafetyAlarm = 1000
	e := NewEngine(DefaultCourse(), crane.DefaultSpec(), cfg)
	e.Start()
	st := stateAt(e.course.Start)
	st.Speed = 99
	e.Step(st, 0.1)
	if e.Score() < 0 {
		t.Errorf("score = %v, want floored at 0", e.Score())
	}
}

func TestStateMessageUpdates(t *testing.T) {
	e := newEngine()
	e.Start()
	e.Step(stateAt(e.course.Start), 0.1)
	if msg := e.State().Message; !strings.Contains(msg, "drive") {
		t.Errorf("driving message = %q", msg)
	}
	if got := e.State().Phase; got != fom.PhaseDriving {
		t.Errorf("phase = %v", got)
	}
}
