package scenario

import (
	"fmt"

	"codsim/internal/collision"
	"codsim/internal/crane"
	"codsim/internal/fom"
	"codsim/internal/mathx"
)

// ScoreConfig sets the exam's deduction schedule.
type ScoreConfig struct {
	Initial       float64 // starting score
	BarHit        float64 // deduction per bar contact episode (and per drop)
	SafetyAlarm   float64 // deduction per new safety-alarm episode
	OvertimePer10 float64 // deduction per 10 s beyond par time
	PassMark      float64 // minimum passing score
}

// DefaultScore returns the shipped schedule.
func DefaultScore() ScoreConfig {
	return ScoreConfig{
		Initial:       100,
		BarHit:        10,
		SafetyAlarm:   4,
		OvertimePer10: 0.5,
		PassMark:      60,
	}
}

// Event is a discrete scenario occurrence, surfaced for the audio module
// and the instructor log.
type Event struct {
	Kind EventKind
	Bar  string  // for EventBarCollision
	At   float64 // scenario elapsed seconds
}

// EventKind enumerates scenario events. Values start at 1; 0 is invalid.
type EventKind int

// Scenario events.
const (
	EventPhaseChange EventKind = iota + 1
	EventBarCollision
	EventAlarmRaised
)

// Engine is the scenario state machine: an interpreter over a declarative
// Spec's phase graph. Not safe for concurrent use; it belongs to the
// scenario LP's tick loop.
type Engine struct {
	spec      Spec
	course    Course // == spec.Course, kept hot for the judge
	craneSpec crane.Spec
	cfg       ScoreConfig

	phase      fom.Phase // coarse published phase
	idx        int       // active phase-graph node while running
	score      float64
	elapsed    float64
	collisions uint32
	waypoint   int // gate index within the active traverse
	message    string

	world    *collision.World
	hookObj  *collision.Object
	cargoObj *collision.Object
	barHit   map[string]bool // per-bar in-contact debounce
	lastAl   fom.Alarm
	alarms   fom.Alarm // latched extra alarms (collision)
}

// NewEngineSpec builds an engine interpreting the scenario spec.
func NewEngineSpec(spec Spec, craneSpec crane.Spec) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec.Score = spec.score()
	e := &Engine{
		spec:      spec,
		course:    spec.Course,
		craneSpec: craneSpec,
		cfg:       spec.Score,
		phase:     fom.PhaseIdle,
		score:     spec.Score.Initial,
		barHit:    make(map[string]bool, len(spec.Course.Bars)),
		world:     &collision.World{},
	}
	for _, b := range spec.Course.Bars {
		obj := collision.NewObject(b.Name, collision.BoxMesh(b.Half.X, b.Half.Y, b.Half.Z))
		obj.SetPose(b.Pos, mathx.QuatAxisAngle(mathx.V3(0, 1, 0), -b.Yaw))
		e.world.Add(obj)
	}
	e.hookObj = collision.NewObject("hook", collision.BoxMesh(0.3, 0.35, 0.3))
	e.cargoObj = collision.NewObject("cargo", collision.BoxMesh(0.9, 0.6, 0.9))
	e.world.Add(e.hookObj)
	e.world.Add(e.cargoObj)
	e.message = "engine off — start the engine and await the scenario"
	return e, nil
}

// NewEngine builds an engine for the classic linear exam over the given
// course geometry. For any other workload, describe it as a Spec and use
// NewEngineSpec.
func NewEngine(course Course, craneSpec crane.Spec, cfg ScoreConfig) *Engine {
	spec := SpecFromCourse("exam", "Licensing exam", course)
	spec.Score = cfg
	e, err := NewEngineSpec(spec, craneSpec)
	if err != nil {
		// SpecFromCourse always yields a structurally valid spec.
		panic(fmt.Sprintf("scenario: %v", err))
	}
	return e
}

// Spec returns the engine's scenario spec.
func (e *Engine) Spec() Spec { return e.spec }

// Course returns the engine's course geometry.
func (e *Engine) Course() Course { return e.course }

// Start begins the scenario (OpStartScenario).
func (e *Engine) Start() {
	if e.phase == fom.PhaseIdle {
		e.enter(0)
	}
}

// Reset returns the engine to the idle state with a fresh score.
func (e *Engine) Reset() {
	e.phase = fom.PhaseIdle
	e.idx = 0
	e.score = e.cfg.Initial
	e.elapsed = 0
	e.collisions = 0
	e.waypoint = 0
	e.alarms = 0
	e.lastAl = 0
	for k := range e.barHit {
		delete(e.barHit, k)
	}
	e.message = "reset — awaiting start"
}

// enter activates phase-graph node i (or ends the scenario on Terminal).
func (e *Engine) enter(i int) {
	if i == Terminal {
		e.finish()
		return
	}
	e.idx = i
	e.waypoint = 0
	ps := e.spec.Phases[i]
	e.phase = ps.Kind.FOMPhase()
	switch ps.Kind {
	case PhaseDrive:
		e.message = fmt.Sprintf("drive to %s", phaseLabel(ps))
	case PhaseLift:
		e.message = fmt.Sprintf("lift %s", e.cargoName(ps.Cargo))
	case PhaseTraverse:
		e.message = fmt.Sprintf("carry the cargo through %s", phaseLabel(ps))
	case PhasePlace:
		e.message = fmt.Sprintf("set the cargo down at %s", phaseLabel(ps))
	}
}

func phaseLabel(ps PhaseSpec) string {
	if ps.Name != "" {
		return ps.Name
	}
	return ps.Kind.String()
}

func (e *Engine) cargoName(i int) string {
	if i >= 0 && i < len(e.spec.Cargos) && e.spec.Cargos[i].Name != "" {
		return e.spec.Cargos[i].Name
	}
	return "the cargo"
}

// finish evaluates the terminal pass/fail verdict.
func (e *Engine) finish() {
	e.applyOvertime()
	if e.score < 0 {
		e.score = 0
	}
	if e.score >= e.cfg.PassMark {
		e.phase = fom.PhaseComplete
		e.message = fmt.Sprintf("%s passed — score %.1f", e.title(), e.score)
	} else {
		e.phase = fom.PhaseFailed
		e.message = fmt.Sprintf("%s failed — score %.1f", e.title(), e.score)
	}
}

func (e *Engine) title() string {
	if e.spec.Title != "" {
		return e.spec.Title
	}
	return "scenario"
}

// Step advances the scenario with the latest crane state and returns the
// events raised. dt is the scenario tick in seconds.
func (e *Engine) Step(st fom.CraneState, dt float64) []Event {
	var events []Event
	if e.phase == fom.PhaseIdle || e.phase == fom.PhaseComplete || e.phase == fom.PhaseFailed {
		return nil
	}
	prevPhase, prevIdx := e.phase, e.idx
	e.elapsed += dt

	// Collision judging runs in every active phase: move the dynamic
	// proxies, find new contact episodes.
	e.hookObj.SetPose(st.HookPos, mathx.QuatIdentity())
	e.cargoObj.SetPose(st.CargoPos, mathx.QuatIdentity())
	events = append(events, e.judgeCollisions(st)...)

	// Safety-alarm deductions on rising edges.
	al := e.craneSpec.Alarms(st)
	if newBits := al &^ e.lastAl; newBits != 0 {
		e.score -= e.cfg.SafetyAlarm
		events = append(events, Event{Kind: EventAlarmRaised, At: e.elapsed})
	}
	e.lastAl = al

	ps := e.spec.Phases[e.idx]
	switch ps.Kind {
	case PhaseDrive:
		d := horizDist(st.Position, ps.Target)
		e.message = fmt.Sprintf("drive to %s (%.0f m to go)", phaseLabel(ps), d)
		if d <= ps.Radius {
			e.enter(e.spec.next(e.idx))
		}
	case PhaseLift:
		switch {
		case st.CargoHeld && (st.CargoID < 0 || st.CargoID == int64(ps.Cargo)):
			// CargoID < 0 means the telemetry cannot identify the load
			// (older builds); accept any latch then.
			e.enter(e.spec.next(e.idx))
		case st.CargoHeld:
			e.message = fmt.Sprintf("that is not %s — set it down and lift %s",
				e.cargoName(int(st.CargoID)), e.cargoName(ps.Cargo))
		}
	case PhaseTraverse:
		if !st.CargoHeld {
			// Dropped mid-course: heavy deduction, back to lifting.
			e.score -= e.cfg.BarHit
			e.fallback()
			break
		}
		wp := ps.Waypoints[e.waypoint]
		d := horizDist(st.CargoPos, wp)
		e.message = fmt.Sprintf("waypoint %d/%d (%.1f m)", e.waypoint+1, len(ps.Waypoints), d)
		if d <= ps.Radius {
			e.waypoint++
			if e.waypoint >= len(ps.Waypoints) {
				e.enter(e.spec.next(e.idx))
			}
		}
	case PhasePlace:
		d := horizDist(st.CargoPos, ps.Target)
		switch {
		case !st.CargoHeld && d <= ps.Radius:
			e.enter(e.spec.next(e.idx))
		case !st.CargoHeld:
			// Released anywhere outside the target: that cargo is on the
			// ground in the wrong place — deduct and re-lift.
			e.score -= e.cfg.BarHit
			e.fallback()
		default:
			e.message = fmt.Sprintf("lower and release the cargo at %s", phaseLabel(ps))
		}
	}

	if e.score < 0 {
		e.score = 0
	}
	if e.phase != prevPhase || (e.running() && e.idx != prevIdx) {
		events = append(events, Event{Kind: EventPhaseChange, At: e.elapsed})
	}
	return events
}

// running reports whether the engine is interpreting a phase node.
func (e *Engine) running() bool {
	return e.phase != fom.PhaseIdle && e.phase != fom.PhaseComplete && e.phase != fom.PhaseFailed
}

// fallback returns to the nearest preceding lift phase after a drop.
func (e *Engine) fallback() {
	if j, ok := e.spec.fallbackLift(e.idx); ok {
		e.enter(j)
		e.message = "cargo dropped — pick it up again"
		return
	}
	e.message = "cargo dropped"
}

// judgeCollisions deducts score once per contact episode per bar.
func (e *Engine) judgeCollisions(fom.CraneState) []Event {
	var events []Event
	inContact := make(map[string]bool, 2)
	for _, obj := range e.world.Objects() {
		if obj == e.hookObj || obj == e.cargoObj {
			continue
		}
		if c, hit := e.world.CheckPair(obj, e.cargoObj); hit {
			inContact[c.A] = true
		}
		if c, hit := e.world.CheckPair(obj, e.hookObj); hit {
			inContact[c.A] = true
		}
	}
	for name := range inContact {
		if !e.barHit[name] {
			e.barHit[name] = true
			e.collisions++
			e.score -= e.cfg.BarHit
			e.alarms |= fom.AlarmCollision
			events = append(events, Event{Kind: EventBarCollision, Bar: name, At: e.elapsed})
		}
	}
	for name := range e.barHit {
		if !inContact[name] {
			delete(e.barHit, name) // episode over; future hits count again
		}
	}
	return events
}

func (e *Engine) applyOvertime() {
	if e.course.ParTime <= 0 {
		return
	}
	if over := e.elapsed - e.course.ParTime; over > 0 {
		e.score -= over / 10 * e.cfg.OvertimePer10
	}
}

func horizDist(a, b mathx.Vec3) float64 {
	dx, dz := a.X-b.X, a.Z-b.Z
	return mathx.V3(dx, 0, dz).Len()
}

// State exports the publishable scenario state.
func (e *Engine) State() fom.ScenarioState {
	return fom.ScenarioState{
		Phase:      e.phase,
		Score:      e.score,
		Elapsed:    e.elapsed,
		Collisions: e.collisions,
		Waypoint:   uint32(e.waypoint),
		Message:    e.message,
		PhaseIndex: uint32(e.idx),
	}
}

// ExtraAlarms returns latched scenario alarms (collision) for the status
// window.
func (e *Engine) ExtraAlarms() fom.Alarm { return e.alarms }

// Phase returns the current coarse phase.
func (e *Engine) Phase() fom.Phase { return e.phase }

// Score returns the current score.
func (e *Engine) Score() float64 { return e.score }
