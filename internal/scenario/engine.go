package scenario

import (
	"fmt"

	"codsim/internal/collision"
	"codsim/internal/crane"
	"codsim/internal/fom"
	"codsim/internal/mathx"
)

// ScoreConfig sets the exam's deduction schedule.
type ScoreConfig struct {
	Initial       float64 // starting score
	BarHit        float64 // deduction per bar contact episode (and per drop)
	SafetyAlarm   float64 // deduction per new safety-alarm episode
	OvertimePer10 float64 // deduction per 10 s beyond par time
	PassMark      float64 // minimum passing score
}

// DefaultScore returns the shipped schedule.
func DefaultScore() ScoreConfig {
	return ScoreConfig{
		Initial:       100,
		BarHit:        10,
		SafetyAlarm:   4,
		OvertimePer10: 0.5,
		PassMark:      60,
	}
}

// Event is a discrete scenario occurrence, surfaced for the audio module
// and the instructor log.
type Event struct {
	Kind  EventKind
	Bar   string  // for EventBarCollision
	At    float64 // scenario elapsed seconds
	Crane int     // crane the event belongs to (0 in single-crane runs)
}

// EventKind enumerates scenario events. Values start at 1; 0 is invalid.
type EventKind int

// Scenario events.
const (
	EventPhaseChange EventKind = iota + 1
	EventBarCollision
	EventAlarmRaised
)

// cursor is one crane's position in its sub-graph of the phase list.
type cursor struct {
	idx      int       // active phase-graph node
	waypoint int       // gate index within an active traverse
	phase    fom.Phase // this crane's coarse phase
	message  string
	done     bool // sub-graph reached Terminal
}

// Engine is the scenario state machine: an interpreter over a declarative
// Spec's phase graph, one cursor per declared crane. Not safe for
// concurrent use; it belongs to the scenario LP's tick loop.
type Engine struct {
	spec      Spec
	course    Course // == spec.Course, kept hot for the judge
	craneSpec crane.Spec
	cfg       ScoreConfig

	phase       fom.Phase // combined coarse phase (the wire-legacy view)
	cursors     []cursor  // one per crane; all must finish to end the run
	score       float64
	elapsed     float64
	collisions  uint32
	alarmEvents uint32 // alarm lamps raised (safety alarms + collisions)
	message     string // combined status text while idle/terminal

	world     *collision.World
	bars      []*collision.Object // static bar objects, indexed like course.Bars
	hookObjs  []*collision.Object // one dynamic proxy pair per crane
	cargoObjs []*collision.Object
	// barHit debounces contact episodes per crane, indexed [crane][bar]:
	// each crane's pass only clears its own entries, so one crane's
	// sustained contact is never ended (and instantly re-deducted) by a
	// contact-free partner.
	barHit [][]bool
	// contact is judgeCollisions' per-call scratch (indexed by bar),
	// reused so the 60 Hz judging loop allocates nothing.
	contact []bool
	lastAl  []fom.Alarm // per-crane alarm debounce
	alarms  fom.Alarm   // latched extra alarms (collision)
	// pending holds events raised outside a crane's own stepping turn —
	// the tandem choreography reset moves PARTNER cursors, whose
	// phase-change would otherwise escape StepAll's per-cursor check.
	pending []Event
	// events is StepAll's reusable result scratch; see StepAll's ownership
	// rule.
	events []Event
	// liveStatus refreshes cursor messages with live distances every tick
	// (instructor console); off, messages change only on phase entry,
	// keeping fmt.Sprintf off the headless hot loop.
	liveStatus bool
	// progress counts cursor advances — phase-graph transitions and
	// traverse waypoints — since Start. The early-exit oracle polls it to
	// detect dry-runs that stopped making headway (see trace).
	progress uint64
}

// NewEngineSpec builds an engine interpreting the scenario spec.
func NewEngineSpec(spec Spec, craneSpec crane.Spec) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec.Score = spec.score()
	n := spec.CraneCount()
	e := &Engine{
		spec:       spec,
		course:     spec.Course,
		craneSpec:  craneSpec,
		cfg:        spec.Score,
		phase:      fom.PhaseIdle,
		cursors:    make([]cursor, n),
		score:      spec.Score.Initial,
		barHit:     make([][]bool, n),
		contact:    make([]bool, len(spec.Course.Bars)),
		lastAl:     make([]fom.Alarm, n),
		world:      &collision.World{},
		liveStatus: true,
	}
	for c := range e.barHit {
		e.barHit[c] = make([]bool, len(spec.Course.Bars))
	}
	for _, b := range spec.Course.Bars {
		obj := collision.NewObject(b.Name, collision.BoxMesh(b.Half.X, b.Half.Y, b.Half.Z))
		obj.SetPose(b.Pos, mathx.QuatAxisAngle(mathx.V3(0, 1, 0), -b.Yaw))
		e.world.Add(obj)
		e.bars = append(e.bars, obj)
	}
	for c := 0; c < n; c++ {
		hook := collision.NewObject(fmt.Sprintf("hook-%d", c), collision.BoxMesh(0.3, 0.35, 0.3))
		cargo := collision.NewObject(fmt.Sprintf("cargo-%d", c), collision.BoxMesh(0.9, 0.6, 0.9))
		e.world.Add(hook)
		e.world.Add(cargo)
		e.hookObjs = append(e.hookObjs, hook)
		e.cargoObjs = append(e.cargoObjs, cargo)
	}
	e.message = "engine off — start the engine and await the scenario"
	for c := range e.cursors {
		e.cursors[c].phase = fom.PhaseIdle
		e.cursors[c].message = e.message
	}
	return e, nil
}

// NewEngine builds an engine for the classic linear exam over the given
// course geometry. For any other workload, describe it as a Spec and use
// NewEngineSpec.
func NewEngine(course Course, craneSpec crane.Spec, cfg ScoreConfig) *Engine {
	spec := SpecFromCourse("exam", "Licensing exam", course)
	spec.Score = cfg
	e, err := NewEngineSpec(spec, craneSpec)
	if err != nil {
		// SpecFromCourse always yields a structurally valid spec.
		panic(fmt.Sprintf("scenario: %v", err))
	}
	return e
}

// Spec returns the engine's scenario spec.
func (e *Engine) Spec() Spec { return e.spec }

// Course returns the engine's course geometry.
func (e *Engine) Course() Course { return e.course }

// Start begins the scenario (OpStartScenario): every crane's cursor
// enters its sub-graph.
func (e *Engine) Start() {
	if e.phase != fom.PhaseIdle {
		return
	}
	for c := range e.cursors {
		if entry, ok := e.spec.EntryFor(c); ok {
			e.enter(c, entry)
		} else {
			e.cursors[c].done = true
			e.cursors[c].phase = fom.PhaseComplete
		}
	}
	e.syncPhase()
}

// Reset returns the engine to the idle state with a fresh score.
func (e *Engine) Reset() {
	e.phase = fom.PhaseIdle
	e.score = e.cfg.Initial
	e.elapsed = 0
	e.collisions = 0
	e.alarmEvents = 0
	e.alarms = 0
	e.pending = e.pending[:0]
	e.progress = 0
	e.message = "reset — awaiting start"
	for c := range e.cursors {
		e.cursors[c] = cursor{phase: fom.PhaseIdle, message: e.message}
		e.lastAl[c] = 0
		for b := range e.barHit[c] {
			e.barHit[c][b] = false
		}
	}
}

// SetLiveStatus controls per-tick status text. On (the default) every
// step reformats cursor messages with live distances for the instructor
// console; off keeps only the phase-entry text, so the 60 Hz stepping
// path formats no strings. Verdicts, scores, events and phase cursors
// are identical either way.
func (e *Engine) SetLiveStatus(on bool) { e.liveStatus = on }

// Progress returns how many cursor advances (phase transitions and
// traverse waypoints, any crane) have happened since Start. A value that
// stops changing means no crane is making headway — the signal the
// early-exit oracle uses to abort hopeless dry-runs.
func (e *Engine) Progress() uint64 { return e.progress }

// enter moves crane c's cursor to phase-graph node i (or retires the
// cursor on Terminal; the scenario ends when every cursor has retired).
func (e *Engine) enter(c, i int) {
	cur := &e.cursors[c]
	e.progress++
	if i == Terminal {
		cur.done = true
		cur.phase = fom.PhaseComplete
		cur.message = "crane done — standing by"
		if e.allDone() {
			e.finish()
		}
		return
	}
	cur.idx = i
	cur.waypoint = 0
	ps := e.spec.Phases[i]
	cur.phase = ps.Kind.FOMPhase()
	switch ps.Kind {
	case PhaseDrive:
		cur.message = fmt.Sprintf("drive to %s", phaseLabel(ps))
	case PhaseLift:
		cur.message = fmt.Sprintf("lift %s", e.cargoName(ps.Cargo))
	case PhaseTraverse:
		cur.message = fmt.Sprintf("carry the cargo through %s", phaseLabel(ps))
	case PhasePlace:
		cur.message = fmt.Sprintf("set the cargo down at %s", phaseLabel(ps))
	}
}

// allDone reports whether every crane's cursor has retired.
func (e *Engine) allDone() bool {
	for c := range e.cursors {
		if !e.cursors[c].done {
			return false
		}
	}
	return true
}

// lead returns the cursor the combined legacy view follows: the first
// crane still working, or the last cursor once everything retired.
func (e *Engine) lead() *cursor {
	for c := range e.cursors {
		if !e.cursors[c].done {
			return &e.cursors[c]
		}
	}
	return &e.cursors[len(e.cursors)-1]
}

// syncPhase recomputes the combined coarse phase from the lead cursor
// while the scenario runs (terminal phases are set by finish).
func (e *Engine) syncPhase() {
	if e.phase == fom.PhaseComplete || e.phase == fom.PhaseFailed {
		return
	}
	e.phase = e.lead().phase
}

func phaseLabel(ps PhaseSpec) string {
	if ps.Name != "" {
		return ps.Name
	}
	return ps.Kind.String()
}

func (e *Engine) cargoName(i int) string {
	if i >= 0 && i < len(e.spec.Cargos) && e.spec.Cargos[i].Name != "" {
		return e.spec.Cargos[i].Name
	}
	return "the cargo"
}

// finish evaluates the terminal pass/fail verdict.
func (e *Engine) finish() {
	e.applyOvertime()
	if e.score < 0 {
		e.score = 0
	}
	if e.score >= e.cfg.PassMark {
		e.phase = fom.PhaseComplete
		e.message = fmt.Sprintf("%s passed — score %.1f", e.title(), e.score)
	} else {
		e.phase = fom.PhaseFailed
		e.message = fmt.Sprintf("%s failed — score %.1f", e.title(), e.score)
	}
}

func (e *Engine) title() string {
	if e.spec.Title != "" {
		return e.spec.Title
	}
	return "scenario"
}

// Step advances a single-crane scenario with the latest crane state and
// returns the events raised; dt is the scenario tick in seconds. It is
// the legacy shim over StepAll — multi-crane scenarios must supply every
// carrier's telemetry.
func (e *Engine) Step(st fom.CraneState, dt float64) []Event {
	return e.StepAll([]fom.CraneState{st}, dt)
}

// StepAll advances the scenario with one CraneState per declared crane,
// indexed by crane (states[c] drives cursor c; extra entries are
// ignored, missing ones freeze that crane's judging for the tick).
//
// The returned slice is the engine's reusable scratch: it is valid until
// the next Step/StepAll call. Callers that retain events across ticks
// must copy them; all in-tree consumers drain the slice immediately.
func (e *Engine) StepAll(states []fom.CraneState, dt float64) []Event {
	if e.phase == fom.PhaseIdle || e.phase == fom.PhaseComplete || e.phase == fom.PhaseFailed {
		return nil
	}
	e.events = e.events[:0]
	prevPhase := e.phase
	e.elapsed += dt

	n := len(e.cursors)
	if len(states) < n {
		n = len(states)
	}

	// Collision judging runs in every active phase: move each crane's
	// dynamic proxies, find new contact episodes.
	for c := 0; c < n; c++ {
		e.hookObjs[c].SetPose(states[c].HookPos, mathx.QuatIdentity())
		e.cargoObjs[c].SetPose(states[c].CargoPos, mathx.QuatIdentity())
		e.judgeCollisions(c)
	}

	// Safety-alarm deductions on rising edges, per crane.
	for c := 0; c < n; c++ {
		al := e.craneSpec.Alarms(states[c])
		if newBits := al &^ e.lastAl[c]; newBits != 0 {
			e.score -= e.cfg.SafetyAlarm
			e.alarmEvents++
			e.events = append(e.events, Event{Kind: EventAlarmRaised, At: e.elapsed, Crane: c})
		}
		e.lastAl[c] = al
	}

	for c := 0; c < n; c++ {
		cur := &e.cursors[c]
		if cur.done {
			continue
		}
		prevIdx := cur.idx
		e.stepCursor(c, states)
		if e.running() && !cur.done && cur.idx != prevIdx {
			e.events = append(e.events, Event{Kind: EventPhaseChange, At: e.elapsed, Crane: c})
		}
	}
	// Transitions raised outside their crane's own turn (choreography
	// resets of partner cursors).
	if len(e.pending) > 0 {
		if e.running() {
			e.events = append(e.events, e.pending...)
		}
		e.pending = e.pending[:0]
	}

	if e.score < 0 {
		e.score = 0
	}
	e.syncPhase()
	if e.phase != prevPhase && (e.phase == fom.PhaseComplete || e.phase == fom.PhaseFailed) {
		e.events = append(e.events, Event{Kind: EventPhaseChange, At: e.elapsed})
	}
	return e.events
}

// stepCursor interprets crane c's active node against the telemetry
// snapshot (the whole slice: tandem gates count partner hooks).
func (e *Engine) stepCursor(c int, states []fom.CraneState) {
	cur := &e.cursors[c]
	st := states[c]
	ps := e.spec.Phases[cur.idx]
	switch ps.Kind {
	case PhaseDrive:
		d := horizDist(st.Position, ps.Target)
		if e.liveStatus {
			cur.message = fmt.Sprintf("drive to %s (%.0f m to go)", phaseLabel(ps), d)
		}
		if d <= ps.Radius {
			e.enter(c, e.spec.next(cur.idx))
		}
	case PhaseLift:
		holdsTarget := st.CargoHeld && (st.CargoID < 0 || st.CargoID == int64(ps.Cargo))
		switch {
		case holdsTarget && ps.Tandem:
			// Tandem gate: the shared load leaves the ground only once
			// every needed hook is latched — count the partners.
			need := e.spec.Cargos[ps.Cargo].HooksNeeded()
			holders := 0
			for _, s := range states {
				if s.CargoHeld && s.CargoID == int64(ps.Cargo) {
					holders++
				}
			}
			if holders >= need {
				e.enter(c, e.spec.next(cur.idx))
			} else if e.liveStatus {
				cur.message = fmt.Sprintf("holding %s — waiting for partner hooks (%d/%d)",
					e.cargoName(ps.Cargo), holders, need)
			}
		case holdsTarget:
			// CargoID < 0 means the telemetry cannot identify the load
			// (older builds); accept any latch then.
			e.enter(c, e.spec.next(cur.idx))
		case st.CargoHeld:
			if e.liveStatus {
				cur.message = fmt.Sprintf("that is not %s — set it down and lift %s",
					e.cargoName(int(st.CargoID)), e.cargoName(ps.Cargo))
			}
		}
	case PhaseTraverse:
		if !st.CargoHeld {
			// Dropped mid-course: heavy deduction, back to lifting.
			e.score -= e.cfg.BarHit
			e.fallback(c)
			break
		}
		wp := ps.Waypoints[cur.waypoint]
		d := horizDist(st.CargoPos, wp)
		if e.liveStatus {
			cur.message = fmt.Sprintf("waypoint %d/%d (%.1f m)", cur.waypoint+1, len(ps.Waypoints), d)
		}
		if d <= ps.Radius {
			cur.waypoint++
			e.progress++
			if cur.waypoint >= len(ps.Waypoints) {
				e.enter(c, e.spec.next(cur.idx))
			}
		}
	case PhasePlace:
		d := horizDist(st.CargoPos, ps.Target)
		switch {
		case !st.CargoHeld && d <= ps.Radius:
			e.enter(c, e.spec.next(cur.idx))
		case !st.CargoHeld:
			// Released anywhere outside the target: that cargo is on the
			// ground in the wrong place — deduct and re-lift.
			e.score -= e.cfg.BarHit
			e.fallback(c)
		default:
			if e.liveStatus {
				cur.message = fmt.Sprintf("lower and release the cargo at %s", phaseLabel(ps))
			}
		}
	}
	if !cur.done {
		cur.phase = e.spec.Phases[cur.idx].Kind.FOMPhase()
	}
}

// running reports whether the engine is interpreting phase nodes.
func (e *Engine) running() bool {
	return e.phase != fom.PhaseIdle && e.phase != fom.PhaseComplete && e.phase != fom.PhaseFailed
}

// fallback returns crane c to its nearest preceding lift phase after a
// drop. When that lift is a tandem gate, the drop broke a shared carry:
// every partner still working the same load is pulled back to its own
// tandem lift node too (choreography reset), so both cursors re-enter the
// lift gate together instead of the partner holding a waypoint far down
// the sequence that the dropper can no longer reach.
func (e *Engine) fallback(c int) {
	j, ok := e.spec.fallbackLift(e.cursors[c].idx)
	if !ok {
		e.cursors[c].message = "cargo dropped"
		return
	}
	e.enter(c, j)
	e.cursors[c].message = "cargo dropped — pick it up again"
	ps := e.spec.Phases[j]
	if !ps.Tandem {
		return
	}
	for p := range e.cursors {
		if p == c || e.cursors[p].done {
			continue
		}
		// The partner is mid-choreography exactly when its own drop
		// fallback is a tandem lift of the same cargo: at the lift gate
		// (waiting or re-latching) or carrying past it. Anyone who
		// already set the load down and moved on has a different
		// fallback lift and keeps its cursor.
		jp, ok := e.spec.fallbackLift(e.cursors[p].idx)
		if !ok {
			continue
		}
		pp := e.spec.Phases[jp]
		if !pp.Tandem || pp.Cargo != ps.Cargo || e.cursors[p].idx == jp {
			continue
		}
		e.enter(p, jp)
		e.cursors[p].message = "partner dropped the load — back to the tandem lift"
		// The partner's cursor moved outside its own stepping turn; queue
		// its phase-change so the event stream (instructor log, audio)
		// still records the jump.
		e.pending = append(e.pending, Event{Kind: EventPhaseChange, At: e.elapsed, Crane: p})
	}
}

// judgeCollisions deducts score once per contact episode per bar per
// crane, testing crane c's hook and cargo proxies against the bars, and
// appends any new-episode events to the engine's event scratch.
func (e *Engine) judgeCollisions(c int) {
	contact := e.contact
	for b := range contact {
		contact[b] = false
	}
	hookObj, cargoObj := e.hookObjs[c], e.cargoObjs[c]
	for b, obj := range e.bars {
		if _, hit := e.world.CheckPair(obj, cargoObj); hit {
			contact[b] = true
			continue
		}
		if _, hit := e.world.CheckPair(obj, hookObj); hit {
			contact[b] = true
		}
	}
	barHit := e.barHit[c]
	for b := range contact {
		switch {
		case contact[b] && !barHit[b]:
			barHit[b] = true
			e.collisions++
			e.score -= e.cfg.BarHit
			e.alarms |= fom.AlarmCollision
			e.alarmEvents++
			e.events = append(e.events, Event{Kind: EventBarCollision, Bar: e.course.Bars[b].Name, At: e.elapsed, Crane: c})
		case !contact[b]:
			barHit[b] = false // episode over; future hits count again
		}
	}
}

func (e *Engine) applyOvertime() {
	if e.course.ParTime <= 0 {
		return
	}
	if over := e.elapsed - e.course.ParTime; over > 0 {
		e.score -= over / 10 * e.cfg.OvertimePer10
	}
}

func horizDist(a, b mathx.Vec3) float64 {
	dx, dz := a.X-b.X, a.Z-b.Z
	return mathx.V3(dx, 0, dz).Len()
}

// State exports the publishable combined scenario state: the legacy
// single-state view every pre-multi-crane consumer reads. While several
// cranes work, it follows the first crane still busy.
func (e *Engine) State() fom.ScenarioState {
	lead := e.lead()
	s := fom.ScenarioState{
		Phase:      e.phase,
		Score:      e.score,
		Elapsed:    e.elapsed,
		Collisions: e.collisions,
		Waypoint:   uint32(lead.waypoint),
		Message:    lead.message,
		PhaseIndex: uint32(lead.idx),
	}
	if e.phase == fom.PhaseIdle || e.phase == fom.PhaseComplete || e.phase == fom.PhaseFailed {
		s.Message = e.message
	}
	return s
}

// StateFor exports crane c's view of the scenario: its cursor's phase,
// node index, waypoint and message over the shared score and clock. The
// scenario LP publishes one of these per declared crane, tagged with
// CraneID.
func (e *Engine) StateFor(c int) fom.ScenarioState {
	cur := &e.cursors[c]
	s := fom.ScenarioState{
		Phase:      cur.phase,
		Score:      e.score,
		Elapsed:    e.elapsed,
		Collisions: e.collisions,
		Waypoint:   uint32(cur.waypoint),
		Message:    cur.message,
		PhaseIndex: uint32(cur.idx),
		CraneID:    int64(c),
	}
	if e.phase == fom.PhaseComplete || e.phase == fom.PhaseFailed {
		// The verdict is collective: once the run ends, every crane's
		// state reports it.
		s.Phase = e.phase
		s.Message = e.message
	}
	return s
}

// States exports every crane's view (see StateFor), indexed by crane.
func (e *Engine) States() []fom.ScenarioState {
	out := make([]fom.ScenarioState, len(e.cursors))
	for c := range out {
		out[c] = e.StateFor(c)
	}
	return out
}

// CraneCount returns how many carriers the engine interprets.
func (e *Engine) CraneCount() int { return len(e.cursors) }

// ExtraAlarms returns latched scenario alarms (collision) for the status
// window.
func (e *Engine) ExtraAlarms() fom.Alarm { return e.alarms }

// AlarmEvents returns how many alarm lamps lit during the run — safety
// alarm episodes plus bar collisions — the misconduct count the batch
// analytics persist per record.
func (e *Engine) AlarmEvents() uint32 { return e.alarmEvents }

// Phase returns the current combined coarse phase.
func (e *Engine) Phase() fom.Phase { return e.phase }

// Score returns the current score.
func (e *Engine) Score() float64 { return e.score }
