package scenario

import (
	"fmt"

	"codsim/internal/collision"
	"codsim/internal/crane"
	"codsim/internal/fom"
	"codsim/internal/mathx"
)

// ScoreConfig sets the exam's deduction schedule.
type ScoreConfig struct {
	Initial       float64 // starting score
	BarHit        float64 // deduction per bar contact episode
	SafetyAlarm   float64 // deduction per new safety-alarm episode
	OvertimePer10 float64 // deduction per 10 s beyond par time
	PassMark      float64 // minimum passing score
}

// DefaultScore returns the shipped schedule.
func DefaultScore() ScoreConfig {
	return ScoreConfig{
		Initial:       100,
		BarHit:        10,
		SafetyAlarm:   4,
		OvertimePer10: 0.5,
		PassMark:      60,
	}
}

// Event is a discrete scenario occurrence, surfaced for the audio module
// and the instructor log.
type Event struct {
	Kind EventKind
	Bar  string  // for EventBarCollision
	At   float64 // scenario elapsed seconds
}

// EventKind enumerates scenario events. Values start at 1; 0 is invalid.
type EventKind int

// Scenario events.
const (
	EventPhaseChange EventKind = iota + 1
	EventBarCollision
	EventAlarmRaised
)

// Engine is the scenario state machine. Not safe for concurrent use; it
// belongs to the scenario LP's tick loop.
type Engine struct {
	course Course
	spec   crane.Spec
	cfg    ScoreConfig

	phase      fom.Phase
	score      float64
	elapsed    float64
	collisions uint32
	waypoint   int
	message    string

	world    *collision.World
	hookObj  *collision.Object
	cargoObj *collision.Object
	barHit   map[string]bool // per-bar in-contact debounce
	lastAl   fom.Alarm
	alarms   fom.Alarm // latched extra alarms (collision)
}

// NewEngine builds an engine for the course.
func NewEngine(course Course, spec crane.Spec, cfg ScoreConfig) *Engine {
	e := &Engine{
		course: course,
		spec:   spec,
		cfg:    cfg,
		phase:  fom.PhaseIdle,
		score:  cfg.Initial,
		barHit: make(map[string]bool, len(course.Bars)),
		world:  &collision.World{},
	}
	for _, b := range course.Bars {
		obj := collision.NewObject(b.Name, collision.BoxMesh(b.Half.X, b.Half.Y, b.Half.Z))
		obj.SetPose(b.Pos, mathx.QuatAxisAngle(mathx.V3(0, 1, 0), -b.Yaw))
		e.world.Add(obj)
	}
	e.hookObj = collision.NewObject("hook", collision.BoxMesh(0.3, 0.35, 0.3))
	e.cargoObj = collision.NewObject("cargo", collision.BoxMesh(0.9, 0.6, 0.9))
	e.world.Add(e.hookObj)
	e.world.Add(e.cargoObj)
	e.message = "engine off — start the engine and drive to the test ground"
	return e
}

// Course returns the engine's course.
func (e *Engine) Course() Course { return e.course }

// Start begins the exam (OpStartScenario).
func (e *Engine) Start() {
	if e.phase == fom.PhaseIdle {
		e.setPhase(fom.PhaseDriving, "drive to the test ground")
	}
}

// Reset returns the engine to the idle state with a fresh score.
func (e *Engine) Reset() {
	e.phase = fom.PhaseIdle
	e.score = e.cfg.Initial
	e.elapsed = 0
	e.collisions = 0
	e.waypoint = 0
	e.alarms = 0
	e.lastAl = 0
	for k := range e.barHit {
		delete(e.barHit, k)
	}
	e.message = "reset — awaiting start"
}

func (e *Engine) setPhase(p fom.Phase, msg string) {
	e.phase = p
	e.message = msg
}

// Step advances the scenario with the latest crane state and returns the
// events raised. dt is the scenario tick in seconds.
func (e *Engine) Step(st fom.CraneState, dt float64) []Event {
	var events []Event
	if e.phase == fom.PhaseIdle || e.phase == fom.PhaseComplete || e.phase == fom.PhaseFailed {
		return nil
	}
	prevPhase := e.phase
	e.elapsed += dt

	// Collision judging runs in every active phase: move the dynamic
	// proxies, find new contact episodes.
	e.hookObj.SetPose(st.HookPos, mathx.QuatIdentity())
	e.cargoObj.SetPose(st.CargoPos, mathx.QuatIdentity())
	events = append(events, e.judgeCollisions(st)...)

	// Safety-alarm deductions on rising edges.
	al := e.spec.Alarms(st)
	if newBits := al &^ e.lastAl; newBits != 0 {
		e.score -= e.cfg.SafetyAlarm
		events = append(events, Event{Kind: EventAlarmRaised, At: e.elapsed})
	}
	e.lastAl = al

	switch e.phase {
	case fom.PhaseDriving:
		d := horizDist(st.Position, e.course.DriveTarget)
		e.message = fmt.Sprintf("drive to the test ground (%.0f m to go)", d)
		if d <= e.course.DriveRadius {
			e.setPhase(fom.PhaseLifting, "lift the cargo from the white circle")
		}
	case fom.PhaseLifting:
		if st.CargoHeld {
			e.waypoint = 0
			e.setPhase(fom.PhaseTraverse, "carry the cargo along the bar course")
		}
	case fom.PhaseTraverse:
		if !st.CargoHeld {
			// Dropped mid-course: heavy deduction, back to lifting.
			e.score -= e.cfg.BarHit
			e.setPhase(fom.PhaseLifting, "cargo dropped — pick it up again")
			break
		}
		wp := e.course.Waypoints[e.waypoint]
		d := horizDist(st.CargoPos, wp)
		e.message = fmt.Sprintf("waypoint %d/%d (%.1f m)", e.waypoint+1, len(e.course.Waypoints), d)
		if d <= e.course.WaypointRadius {
			e.waypoint++
			if e.waypoint >= len(e.course.Waypoints) {
				e.setPhase(fom.PhaseReturn, "set the cargo down in the circle")
			}
		}
	case fom.PhaseReturn:
		inCircle := horizDist(st.CargoPos, e.course.Circle) <= e.course.CircleRadius
		if inCircle && !st.CargoHeld {
			e.applyOvertime()
			if e.score >= e.cfg.PassMark {
				e.setPhase(fom.PhaseComplete, fmt.Sprintf("exam passed — score %.1f", e.score))
			} else {
				e.setPhase(fom.PhaseFailed, fmt.Sprintf("exam failed — score %.1f", e.score))
			}
		} else {
			e.message = "lower and release the cargo inside the circle"
		}
	}

	if e.score < 0 {
		e.score = 0
	}
	if e.phase != prevPhase {
		events = append(events, Event{Kind: EventPhaseChange, At: e.elapsed})
	}
	return events
}

// judgeCollisions deducts score once per contact episode per bar.
func (e *Engine) judgeCollisions(fom.CraneState) []Event {
	var events []Event
	inContact := make(map[string]bool, 2)
	for _, obj := range e.world.Objects() {
		if obj == e.hookObj || obj == e.cargoObj {
			continue
		}
		if c, hit := e.world.CheckPair(obj, e.cargoObj); hit {
			inContact[c.A] = true
		}
		if c, hit := e.world.CheckPair(obj, e.hookObj); hit {
			inContact[c.A] = true
		}
	}
	for name := range inContact {
		if !e.barHit[name] {
			e.barHit[name] = true
			e.collisions++
			e.score -= e.cfg.BarHit
			e.alarms |= fom.AlarmCollision
			events = append(events, Event{Kind: EventBarCollision, Bar: name, At: e.elapsed})
		}
	}
	for name := range e.barHit {
		if !inContact[name] {
			delete(e.barHit, name) // episode over; future hits count again
		}
	}
	return events
}

func (e *Engine) applyOvertime() {
	if over := e.elapsed - e.course.ParTime; over > 0 {
		e.score -= over / 10 * e.cfg.OvertimePer10
	}
}

func horizDist(a, b mathx.Vec3) float64 {
	dx, dz := a.X-b.X, a.Z-b.Z
	return mathx.V3(dx, 0, dz).Len()
}

// State exports the publishable scenario state.
func (e *Engine) State() fom.ScenarioState {
	return fom.ScenarioState{
		Phase:      e.phase,
		Score:      e.score,
		Elapsed:    e.elapsed,
		Collisions: e.collisions,
		Waypoint:   uint32(e.waypoint),
		Message:    e.message,
	}
}

// ExtraAlarms returns latched scenario alarms (collision) for the status
// window.
func (e *Engine) ExtraAlarms() fom.Alarm { return e.alarms }

// Phase returns the current phase.
func (e *Engine) Phase() fom.Phase { return e.phase }

// Score returns the current score.
func (e *Engine) Score() float64 { return e.score }
