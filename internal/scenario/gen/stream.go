package gen

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"codsim/internal/scenario"
)

// MaxConsecutiveRejects bounds how many candidates in a row a Stream will
// sample and discard before concluding the params are pathological (every
// candidate failing its dry-run) rather than unlucky, and erroring out
// instead of spinning forever.
const MaxConsecutiveRejects = 1000

// Stats tallies a Stream's work so campaign reports can show how many
// candidates the oracle vetoed — the acceptance bar is zero uncompletable
// specs *dispatched*, not zero sampled.
type Stats struct {
	Candidates    int64 // specs sampled from the seed stream
	StaticRejects int64 // vetoed by the free reachability pre-check
	OracleRejects int64 // vetoed by the dry-run verdict (live or cached)
	Emitted       int64 // certified specs handed to the caller
	OracleRuns    int64 // live dry-runs actually flown (cache misses)
	CacheHits     int64 // verdicts replayed from the persistent cache
	CacheMisses   int64 // cache consults that had to fly the dry-run
}

// Hooks lets a caller observe stream work for the telemetry plane. gen is
// a declared-deterministic package (codvet bans time.Now here), so the
// wall clock is injected: cmd wiring passes a monotonic-seconds func and
// metric sinks; the zero value disables everything. Candidate and
// CacheResult fire on the merge path in candidate order; OracleWall fires
// once per live dry-run and may be called from certification goroutines
// concurrently, so its sink must be goroutine-safe (obs counters are).
type Hooks struct {
	// Clock returns monotonic seconds; nil disables oracle-wall timing.
	Clock func() float64
	// Candidate receives every sampled candidate's final verdict:
	// "emitted", "static-reject" or "oracle-reject".
	Candidate func(verdict string)
	// CacheResult receives one call per cache consult; true is a hit.
	CacheResult func(hit bool)
	// OracleWall receives each live dry-run's wall-clock seconds.
	OracleWall func(seconds float64)
}

// Stream yields certified scenarios in candidate order. Candidate k's
// spec is Generate(SubSeed(seed, k), params); rejected candidates are
// skipped and sampling continues under the same sub-seed stream, so the
// emitted sequence — and every tally in Stats — is a pure function of
// (seed, params, oracle). Certification dry-runs for a batch of
// candidates execute in parallel, and with Prefetch the next batch
// certifies in background while the caller drains the current one, but
// emission order and tallies never depend on scheduling: every verdict is
// replayed into Stats in candidate order on the caller's goroutine.
//
// Not safe for concurrent use; a campaign owns one Stream and feeds the
// coordinator from it. A Stream with Prefetch enabled must be Closed.
type Stream struct {
	// Oracle certifies candidates; nil means DefaultOracle(params) — the
	// full static-check + expert dry-run. Set StaticOnly for free previews.
	Oracle Oracle
	// Parallel bounds concurrent dry-runs per refill batch; 0 means
	// GOMAXPROCS.
	Parallel int
	// Prefetch certifies the next candidate batch in background while the
	// current one drains, hiding oracle latency behind dispatch. Off, the
	// stream refills synchronously (the original behavior).
	Prefetch bool
	// Cache consults the persistent verdict store before every dry-run
	// and records fresh verdicts into it (unless the cache is ReadOnly);
	// nil disables. The cache must have been opened for this stream's
	// (seed, params) signature.
	Cache *Cache
	// Hooks observes the stream's work; the zero value is silent.
	Hooks Hooks

	seed    int64
	params  Params
	next    int64 // next candidate index to sample
	rejects int   // consecutive rejects since the last emission
	buf     []certified
	stats   Stats

	inflight chan *batchResult  // pending prefetch task, nil if none
	cancel   context.CancelFunc // cancels the pending prefetch task
}

type certified struct {
	spec      scenario.Spec
	candidate int64
}

// candRec is one candidate's outcome inside a certification batch. Batches
// compute in any goroutine; Stats mutate only when recs replay in
// candidate order on the stream's own goroutine.
type candRec struct {
	cand    int64
	spec    scenario.Spec
	static  bool // vetoed by the static pre-check (no dry-run)
	ok      bool // dry-run verdict (live or cached) when !static
	cached  bool // verdict replayed from Cache
	consult bool // cache was consulted for this candidate
	wall    float64
	genErr  error // Generate fault: raised during the sampling replay
	err     error // certification fault (hashing, oracle, cancellation)
}

// batchResult carries one certification batch back to the merge path.
type batchResult struct {
	recs      []candRec
	nextAfter int64 // candidate index sampling stopped at
	err       error // ctx fault during sampling, raised after the recs replay
}

// NewStream starts the certified-scenario stream for a campaign seed.
// Set Oracle/Parallel/Prefetch/Cache before the first Next if the
// defaults don't fit.
func NewStream(seed int64, params Params) *Stream {
	return &Stream{seed: seed, params: params}
}

// Stats returns the tallies so far.
func (s *Stream) Stats() Stats { return s.stats }

// Next returns the stream's next certified scenario and the candidate
// index it was sampled at. It blocks while a refill batch dry-runs; a
// canceled ctx aborts mid-batch. err is terminal: a generator fault, an
// oracle fault, ctx cancellation, or MaxConsecutiveRejects candidates
// vetoed back-to-back.
func (s *Stream) Next(ctx context.Context) (scenario.Spec, int64, error) {
	for len(s.buf) == 0 {
		br, err := s.takeBatch(ctx)
		if err != nil {
			return scenario.Spec{}, 0, err
		}
		merr := s.merge(br)
		if merr == nil && s.Prefetch {
			s.launch(ctx)
		}
		if merr != nil {
			return scenario.Spec{}, 0, merr
		}
	}
	out := s.buf[0]
	s.buf = s.buf[1:]
	s.stats.Emitted++
	return out.spec, out.candidate, nil
}

// Close cancels and drains any in-flight prefetch batch; its verdicts are
// discarded (and, being keyed work, re-derivable). A Stream that never
// enabled Prefetch needs no Close, but Close is always safe.
func (s *Stream) Close() {
	if s.inflight == nil {
		return
	}
	s.cancel()
	<-s.inflight
	s.inflight, s.cancel = nil, nil
}

// takeBatch returns the next certification batch: the in-flight prefetch
// result when one is pending, else a batch certified synchronously.
func (s *Stream) takeBatch(ctx context.Context) (*batchResult, error) {
	if s.inflight != nil {
		select {
		case br := <-s.inflight:
			s.inflight, s.cancel = nil, nil
			return br, nil
		case <-ctx.Done():
			// Leave the task to finish against its own canceled context;
			// Close drains it.
			s.cancel()
			return nil, ctx.Err()
		}
	}
	return s.certifyBatch(ctx, s.next, s.rejects), nil
}

// launch starts certifying the next batch in background. Called only
// after a merge, so s.next and s.rejects are settled — the task samples
// exactly the candidates a synchronous refill would.
func (s *Stream) launch(ctx context.Context) {
	tctx, cancel := context.WithCancel(ctx)
	ch := make(chan *batchResult, 1)
	start, streak := s.next, s.rejects
	go func() {
		ch <- s.certifyBatch(tctx, start, streak)
		cancel()
	}()
	s.inflight, s.cancel = ch, cancel
}

// certifyBatch samples candidates from start until one batch width of
// them pass the static check, consults the cache, and flies the remaining
// dry-runs in parallel. It reads only the stream's immutable fields
// (seed, params, oracle config, cache) — never Stats or the buffer — so
// prefetch tasks can run it while the caller drains emissions. streakIn
// seeds the consecutive-reject guard exactly as the serial path would.
func (s *Stream) certifyBatch(ctx context.Context, start int64, streakIn int) *batchResult {
	oracle := s.Oracle
	if oracle == nil {
		oracle = DefaultOracle(s.params)
	}
	width := s.Parallel
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}

	br := &batchResult{nextAfter: start}
	// Sampling and static checks run serially — both are microseconds —
	// so the record order is candidate order; only the dry-runs fan out.
	streak := streakIn
	pending := 0
	for pending < width {
		if err := ctx.Err(); err != nil {
			br.err = err
			break
		}
		cand := br.nextAfter
		br.nextAfter++
		spec, err := Generate(SubSeed(s.seed, cand), s.params)
		if err != nil {
			br.recs = append(br.recs, candRec{cand: cand, genErr: err})
			break
		}
		if StaticCheck(spec) != nil {
			br.recs = append(br.recs, candRec{cand: cand, static: true})
			if streak++; streak >= MaxConsecutiveRejects {
				break // merge replays the same guard and raises the error
			}
			continue
		}
		rec := candRec{cand: cand, spec: spec}
		if s.Cache != nil {
			hash, err := SpecHash(spec)
			if err != nil {
				rec.err = err
			} else {
				rec.consult = true
				if ok, found := s.Cache.lookup(cand, hash); found {
					rec.cached, rec.ok = true, ok
				}
			}
		}
		br.recs = append(br.recs, rec)
		pending++
	}

	var wg sync.WaitGroup
	for i := range br.recs {
		rec := &br.recs[i]
		if rec.static || rec.cached || rec.err != nil {
			continue
		}
		wg.Add(1)
		go func(rec *candRec) {
			defer wg.Done()
			var began float64
			if s.Hooks.Clock != nil {
				began = s.Hooks.Clock()
			}
			rec.ok, rec.err = oracle(ctx, rec.spec)
			if s.Hooks.Clock != nil {
				rec.wall = s.Hooks.Clock() - began
			}
		}(rec)
	}
	wg.Wait()
	return br
}

// merge replays a batch's records into the stream's tallies and buffer in
// candidate order — the same order, counts and error points the serial
// path produces, no matter which goroutine certified what. Fresh live
// verdicts are persisted to the cache here, on one goroutine, so the
// cache file's line order is deterministic too.
func (s *Stream) merge(br *batchResult) error {
	s.next = br.nextAfter
	// Sampling-phase tallies first, exactly as the serial path counts
	// them: every sampled candidate, static rejects and their streaks.
	for i := range br.recs {
		rec := &br.recs[i]
		s.stats.Candidates++
		if rec.genErr != nil {
			return fmt.Errorf("gen: candidate %d: %w", rec.cand, rec.genErr)
		}
		if rec.static {
			s.stats.StaticRejects++
			s.hookCandidate("static-reject")
			if s.rejects++; s.rejects >= MaxConsecutiveRejects {
				return fmt.Errorf("gen: %d candidates rejected back-to-back — params sample an uncompletable space", s.rejects)
			}
		}
	}
	// Dry-run verdicts second, still in candidate order.
	for i := range br.recs {
		rec := &br.recs[i]
		if rec.static {
			continue
		}
		if rec.consult {
			if rec.cached {
				s.stats.CacheHits++
			} else {
				s.stats.CacheMisses++
			}
			s.hookCache(rec.cached)
		}
		if rec.err != nil {
			return fmt.Errorf("gen: candidate %d oracle: %w", rec.cand, rec.err)
		}
		if !rec.cached {
			s.stats.OracleRuns++
			if s.Hooks.OracleWall != nil && s.Hooks.Clock != nil {
				s.Hooks.OracleWall(rec.wall)
			}
			if s.Cache != nil {
				if err := s.Cache.add(rec.cand, mustSpecHash(rec.spec), rec.ok); err != nil {
					return err
				}
			}
		}
		if !rec.ok {
			s.stats.OracleRejects++
			s.hookCandidate("oracle-reject")
			if s.rejects++; s.rejects >= MaxConsecutiveRejects {
				return fmt.Errorf("gen: %d candidates rejected back-to-back — params sample an uncompletable space", s.rejects)
			}
			continue
		}
		s.rejects = 0
		s.hookCandidate("emitted")
		s.buf = append(s.buf, certified{spec: rec.spec, candidate: rec.cand})
	}
	return br.err
}

// mustSpecHash re-hashes a spec that already round-tripped SpecHash during
// certification; a failure here would have surfaced there.
func mustSpecHash(spec scenario.Spec) uint64 {
	h, err := SpecHash(spec)
	if err != nil {
		panic("gen: SpecHash failed on a spec it already hashed: " + err.Error())
	}
	return h
}

func (s *Stream) hookCandidate(verdict string) {
	if s.Hooks.Candidate != nil {
		s.Hooks.Candidate(verdict)
	}
}

func (s *Stream) hookCache(hit bool) {
	if s.Hooks.CacheResult != nil {
		s.Hooks.CacheResult(hit)
	}
}
