package gen

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"codsim/internal/scenario"
)

// MaxConsecutiveRejects bounds how many candidates in a row a Stream will
// sample and discard before concluding the params are pathological (every
// candidate failing its dry-run) rather than unlucky, and erroring out
// instead of spinning forever.
const MaxConsecutiveRejects = 1000

// Stats tallies a Stream's work so campaign reports can show how many
// candidates the oracle vetoed — the acceptance bar is zero uncompletable
// specs *dispatched*, not zero sampled.
type Stats struct {
	Candidates    int64 // specs sampled from the seed stream
	StaticRejects int64 // vetoed by the free reachability pre-check
	OracleRejects int64 // vetoed by the expert dry-run
	Emitted       int64 // certified specs handed to the caller
}

// Stream yields certified scenarios in candidate order. Candidate k's
// spec is Generate(SubSeed(seed, k), params); rejected candidates are
// skipped and sampling continues under the same sub-seed stream, so the
// emitted sequence — and every tally in Stats — is a pure function of
// (seed, params, oracle). Certification dry-runs for a batch of
// candidates execute in parallel, but emission order never depends on
// which finishes first.
//
// Not safe for concurrent use; a campaign owns one Stream and feeds the
// coordinator from it.
type Stream struct {
	// Oracle certifies candidates; nil means DefaultOracle(params) — the
	// full static-check + expert dry-run. Set StaticOnly for free previews.
	Oracle Oracle
	// Parallel bounds concurrent dry-runs per refill batch; 0 means
	// GOMAXPROCS.
	Parallel int

	seed    int64
	params  Params
	next    int64 // next candidate index to sample
	rejects int   // consecutive rejects since the last emission
	buf     []certified
	stats   Stats
}

type certified struct {
	spec      scenario.Spec
	candidate int64
}

// NewStream starts the certified-scenario stream for a campaign seed.
// Set Oracle/Parallel before the first Next if the defaults don't fit.
func NewStream(seed int64, params Params) *Stream {
	return &Stream{seed: seed, params: params}
}

// Stats returns the tallies so far.
func (s *Stream) Stats() Stats { return s.stats }

// Next returns the stream's next certified scenario and the candidate
// index it was sampled at. It blocks while a refill batch dry-runs; a
// canceled ctx aborts mid-batch. err is terminal: a generator fault, an
// oracle fault, ctx cancellation, or MaxConsecutiveRejects candidates
// vetoed back-to-back.
func (s *Stream) Next(ctx context.Context) (scenario.Spec, int64, error) {
	for len(s.buf) == 0 {
		if err := s.refill(ctx); err != nil {
			return scenario.Spec{}, 0, err
		}
	}
	out := s.buf[0]
	s.buf = s.buf[1:]
	s.stats.Emitted++
	return out.spec, out.candidate, nil
}

// refill samples one batch of candidates, certifies them in parallel, and
// appends the survivors to the buffer in candidate order.
func (s *Stream) refill(ctx context.Context) error {
	oracle := s.Oracle
	if oracle == nil {
		oracle = DefaultOracle(s.params)
	}
	width := s.Parallel
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}

	// Sample and static-check serially — both are microseconds — so the
	// tallies stay in candidate order; only the dry-runs fan out.
	type slot struct {
		spec scenario.Spec
		cand int64
		ok   bool
		err  error
	}
	batch := make([]*slot, 0, width)
	for len(batch) < width {
		if err := ctx.Err(); err != nil {
			return err
		}
		cand := s.next
		s.next++
		s.stats.Candidates++
		spec, err := Generate(SubSeed(s.seed, cand), s.params)
		if err != nil {
			return fmt.Errorf("gen: candidate %d: %w", cand, err)
		}
		if StaticCheck(spec) != nil {
			s.stats.StaticRejects++
			if s.rejects++; s.rejects >= MaxConsecutiveRejects {
				return fmt.Errorf("gen: %d candidates rejected back-to-back — params sample an uncompletable space", s.rejects)
			}
			continue
		}
		batch = append(batch, &slot{spec: spec, cand: cand})
	}

	var wg sync.WaitGroup
	for _, sl := range batch {
		wg.Add(1)
		go func(sl *slot) {
			defer wg.Done()
			sl.ok, sl.err = oracle(ctx, sl.spec)
		}(sl)
	}
	wg.Wait()

	for _, sl := range batch {
		if sl.err != nil {
			return fmt.Errorf("gen: candidate %d oracle: %w", sl.cand, sl.err)
		}
		if !sl.ok {
			s.stats.OracleRejects++
			if s.rejects++; s.rejects >= MaxConsecutiveRejects {
				return fmt.Errorf("gen: %d candidates rejected back-to-back — params sample an uncompletable space", s.rejects)
			}
			continue
		}
		s.rejects = 0
		s.buf = append(s.buf, certified{spec: sl.spec, candidate: sl.cand})
	}
	return nil
}
