package gen

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"codsim/internal/scenario"
)

// vetoOracle is the deterministic stub used across stream tests: veto
// every candidate whose title's rune sum is divisible by three. Cheap,
// spec-derived, scheduling-independent.
func vetoOracle(_ context.Context, spec scenario.Spec) (bool, error) {
	var sum int
	for _, c := range spec.Title {
		sum += int(c)
	}
	return sum%3 != 0, nil
}

// drain pulls n emissions and returns their canonical bytes plus the
// candidate index each was sampled at.
func drain(t *testing.T, s *Stream, n int) []string {
	t.Helper()
	var out []string
	for i := 0; i < n; i++ {
		spec, cand, err := s.Next(context.Background())
		if err != nil {
			t.Fatalf("emit %d: %v", i, err)
		}
		j, err := scenario.MarshalSpec(spec)
		if err != nil {
			t.Fatalf("emit %d marshal: %v", i, err)
		}
		out = append(out, string(j)+"#"+string(rune('0'+cand%10)))
	}
	return out
}

// Prefetch must be invisible: at the same batch width, a synchronous
// stream and a prefetching one emit byte-identical specs at identical
// candidate indices with identical tallies — and even across widths the
// emitted sequence itself never changes, because rejected candidates
// ride the same sub-seed stream. This is the determinism contract that
// lets campaigns turn prefetch on without re-validating a golden file.
func TestStreamPrefetchDeterministic(t *testing.T) {
	const n = 40
	run := func(width int, prefetch bool) ([]string, Stats) {
		s := NewStream(99, DefaultParams())
		s.Oracle = vetoOracle
		s.Parallel = width
		s.Prefetch = prefetch
		defer s.Close()
		return drain(t, s, n), s.Stats()
	}

	sync4, ss := run(4, false)
	pre4, ps := run(4, true)
	for i := range sync4 {
		if sync4[i] != pre4[i] {
			t.Fatalf("emission %d differs: sync vs prefetch at width 4", i)
		}
	}
	if ss != ps {
		t.Fatalf("tallies differ at width 4:\nsync     %+v\nprefetch %+v", ss, ps)
	}
	if ss.OracleRejects == 0 {
		t.Fatal("stub oracle never vetoed — test is vacuous")
	}

	// Width only changes how far past the last emission sampling overran
	// (the Candidates/OracleRuns tail), never what gets emitted where.
	serial1, _ := run(1, false)
	for i := range serial1 {
		if serial1[i] != pre4[i] {
			t.Fatalf("emission %d differs: width 1 vs prefetching width 4", i)
		}
	}
}

// Closing a stream mid-prefetch must not leak or deadlock, and a stream
// that never prefetched tolerates Close too.
func TestStreamCloseMidPrefetch(t *testing.T) {
	s := NewStream(5, DefaultParams())
	s.Oracle = vetoOracle
	s.Prefetch = true
	if _, _, err := s.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent

	NewStream(5, DefaultParams()).Close() // never prefetched
}

// A warm cache must replay every verdict: the second run over the same
// seed+params flies zero live dry-runs and still emits the identical
// sequence. This is the acceptance bar for "re-running a certified
// campaign costs file reads, not sim time".
func TestStreamCacheWarmRerun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.jsonl")
	p := DefaultParams()

	run := func() ([]string, Stats) {
		c, err := OpenCache(path, 42, p)
		if err != nil {
			t.Fatal(err)
		}
		s := NewStream(42, p)
		s.Oracle = vetoOracle
		s.Cache = c
		out := drain(t, s, 15)
		s.Close()
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		return out, s.Stats()
	}

	cold, cs := run()
	if cs.OracleRuns == 0 || cs.CacheHits != 0 {
		t.Fatalf("cold run tallies wrong: %+v", cs)
	}
	warm, ws := run()
	if ws.OracleRuns != 0 {
		t.Fatalf("warm run flew %d live dry-runs, want 0: %+v", ws.OracleRuns, ws)
	}
	if ws.CacheHits != cs.OracleRuns {
		t.Fatalf("warm hits %d != cold live runs %d", ws.CacheHits, cs.OracleRuns)
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("emission %d differs cold vs warm", i)
		}
	}
	if cs.Emitted != ws.Emitted || cs.Candidates != ws.Candidates || cs.OracleRejects != ws.OracleRejects {
		t.Fatalf("verdict-shape tallies differ:\ncold %+v\nwarm %+v", cs, ws)
	}
}

// Corrupt lines (torn writes, hand edits) and entries from other
// campaign signatures must be skipped on load, not fail it — and the
// surviving entries still load.
func TestCacheSkipsCorruptAndForeignLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.jsonl")
	p := DefaultParams()

	c, err := OpenCache(path, 42, p)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(42, p)
	s.Oracle = vetoOracle
	s.Cache = c
	drain(t, s, 5)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	want := s.Stats().OracleRuns

	// Splice garbage between valid lines: a torn half-record, raw noise,
	// and a well-formed line under a different campaign signature.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, []byte(`{"sig":"42-dead`+"\n")...)
	blob = append(blob, []byte("not json at all\n")...)
	blob = append(blob, []byte(`{"sig":"7-00000000","cand":0,"spec":"0000000000000000","ok":true}`+"\n")...)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(path, 42, p)
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	defer c2.Close()
	if got := int64(c2.Len()); got != want {
		t.Fatalf("loaded %d verdicts after corruption, want %d", got, want)
	}
}

// A ReadOnly cache must consult without recording: lazy and preview
// campaigns run a weaker oracle than the strict dry-run, and their
// verdicts must never poison the store strict campaigns trust.
func TestCacheReadOnlyRecordsNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.jsonl")
	p := DefaultParams()

	c, err := OpenCache(path, 42, p)
	if err != nil {
		t.Fatal(err)
	}
	c.ReadOnly = true
	s := NewStream(42, p)
	s.Oracle = vetoOracle
	s.Cache = c
	drain(t, s, 5)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheMisses == 0 || st.CacheHits != 0 {
		t.Fatalf("read-only stream tallies wrong: %+v", st)
	}

	c2, err := OpenCache(path, 42, p)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 0 {
		t.Fatalf("read-only cache recorded %d verdicts, want 0", c2.Len())
	}
}

// Sig must be count-independent (one cache serves 1k and 100k sweeps of
// the same campaign) but params- and seed-sensitive.
func TestSigStable(t *testing.T) {
	p := DefaultParams()
	if Sig(5, p) != Sig(5, p) {
		t.Fatal("sig not stable")
	}
	q := p
	q.WindProb = 0.9
	if Sig(5, p) == Sig(5, q) {
		t.Fatal("sig ignores params")
	}
	if Sig(5, p) == Sig(6, p) {
		t.Fatal("sig ignores seed")
	}
}
