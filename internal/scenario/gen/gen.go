// Package gen procedurally generates training scenarios: seeded,
// deterministic scenario.Specs sampled from the proven envelopes of the
// shipped library, paired with a completability oracle so every spec a
// campaign dispatches is certified runnable. The batch machinery of
// PRs 2–5 can sweep far more content than eight hand-built scenarios
// supply; this package turns one (seed, Params) pair into an unbounded,
// reproducible stream of them.
//
// Three layers:
//
//   - Generate(seed, Params) emits one valid Spec per seed: randomized
//     course geometry (pads, gates and bars sampled inside the crane's
//     reach band on the levelled test ground), cargo sets (mass, site
//     placement, 2-hook tandem beams), wind and visibility regimes, and
//     phase graphs across four archetypes — linear carries, out-and-back
//     shuttles, independent twin yards, and two-crane tandem lifts — all
//     deterministic per seed and validated via Spec.Validate.
//
//   - Verify certifies a candidate: a cheap static reachability check
//     (StaticCheck) rejects obviously impossible geometry before any sim
//     time is spent, then the oracle dry-run (trace.Completable — the
//     expert autopilot, headless, directly coupled) proves the spec is
//     actually passable.
//
//   - Stream yields certified specs in candidate order: candidate k draws
//     its sub-seed from the campaign seed via a splitmix64 stream, and a
//     rejected candidate is simply skipped — resampling continues under
//     the same stream, so the emitted sequence is a pure function of
//     (seed, Params) no matter how many candidates the oracle vetoes.
//
// cmd/codbatch's -campaign mode feeds a Stream straight into the dist
// coordinator's work list; package dist never imports gen.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"codsim/internal/dynamics"
	"codsim/internal/mathx"
	"codsim/internal/scenario"
)

// Params bounds the generator's sampling space. The zero value is NOT
// usable — start from DefaultParams. Every field below participates in
// Key, so two campaigns with different knobs never collide on a sweep
// label.
type Params struct {
	// TwoCraneProb is the chance a candidate declares two cranes (a twin
	// yard or a tandem lift); the rest are single-crane courses.
	TwoCraneProb float64
	// TandemProb is the chance a two-crane candidate shares one 2-hook
	// beam (tandem lift) rather than working independent yards.
	TandemProb float64
	// WindProb is the chance of a wind regime (breeze or gusty).
	WindProb float64
	// NightProb is the chance of low visibility (0.2–0.45).
	NightProb float64
	// MinGates and MaxGates bound the traverse gate count of single-crane
	// courses (twin/tandem courses use shorter runs).
	MinGates, MaxGates int
	// MaxBars bounds how many obstruction bars line the carry (0 allowed).
	MaxBars int
	// MinCargoMass and MaxCargoMass bound single-hook cargo mass in kg;
	// tandem beams draw from [MaxCargoMass, TandemMassCap].
	MinCargoMass, MaxCargoMass float64
	// TandemMassCap caps the shared beam's mass in kg.
	TandemMassCap float64
	// OracleBudget is the dry-run's sim-time budget in seconds; 0 means
	// three par times, floored at 900 — the same rule headless batches use.
	OracleBudget float64
}

// DefaultParams returns the shipped sampling space: mostly single-crane
// courses with occasional twins and tandems, a third of them windy, a
// quarter at night, masses inside the load chart at the sampled radii.
func DefaultParams() Params {
	return Params{
		TwoCraneProb:  0.35,
		TandemProb:    0.5,
		WindProb:      0.35,
		NightProb:     0.25,
		MinGates:      3,
		MaxGates:      6,
		MaxBars:       4,
		MinCargoMass:  1000,
		MaxCargoMass:  2600,
		TandemMassCap: 3800,
		OracleBudget:  0,
	}
}

// Key derives the campaign label for a (seed, count, Params) triple:
// sweeps stored under it are reproducible — the same key always names the
// identical job list — and therefore diffable across code changes.
func Key(seed int64, count int, p Params) string {
	return fmt.Sprintf("campaign-%dx%d-%08x", seed, count, paramsHash(p))
}

// Sig is the count-independent generation signature a verdict cache keys
// on: seed plus the params hash. Candidate k's spec is fully determined by
// it, so cached verdicts are shared between campaigns that differ only in
// count (a 42:100 warm-up seeds the cache for 42:100000).
func Sig(seed int64, p Params) string {
	return fmt.Sprintf("%d-%08x", seed, paramsHash(p))
}

// paramsHash folds every generation-affecting Params field through FNV-1a;
// Oracle/Parallel-style execution knobs must not change the hash, only
// the sampled space may. New Params fields MUST be added here — distinct
// knob settings may never collide on a campaign key or a cache signature.
func paramsHash(p Params) uint32 {
	sig := fmt.Sprintf("%v|%v|%v|%v|%d|%d|%d|%v|%v|%v|%v",
		p.TwoCraneProb, p.TandemProb, p.WindProb, p.NightProb,
		p.MinGates, p.MaxGates, p.MaxBars,
		p.MinCargoMass, p.MaxCargoMass, p.TandemMassCap, p.OracleBudget)
	h := uint64(14695981039346656037)
	for i := 0; i < len(sig); i++ {
		h ^= uint64(sig[i])
		h *= 1099511628211
	}
	return uint32(h ^ h>>32)
}

// SubSeed derives candidate k's generator seed from the campaign seed —
// a splitmix64 step, so neighbouring candidates decorrelate fully while
// the mapping stays a pure function of (seed, k).
func SubSeed(seed, k int64) int64 {
	z := uint64(seed) + uint64(k)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Generate emits one candidate scenario for the seed: deterministic (the
// same seed and params always yield the byte-identical Spec), validated
// via Spec.Validate before return, but NOT yet certified completable —
// that is Verify's job. Spec names carry the archetype ("gen-linear",
// "gen-shuttle", "gen-twin", "gen-tandem") so campaign reports group runs
// into meaningful percentile rows; the seed rides in the Title.
func Generate(seed int64, p Params) (scenario.Spec, error) {
	if p.MinGates < 1 || p.MaxGates < p.MinGates {
		return scenario.Spec{}, fmt.Errorf("gen: gate bounds [%d,%d]", p.MinGates, p.MaxGates)
	}
	if p.MinCargoMass <= 0 || p.MaxCargoMass < p.MinCargoMass {
		return scenario.Spec{}, fmt.Errorf("gen: mass bounds [%v,%v]", p.MinCargoMass, p.MaxCargoMass)
	}
	r := rand.New(rand.NewSource(seed))
	g := &sampler{r: r, p: p}

	two := r.Float64() < p.TwoCraneProb
	tandem := two && r.Float64() < p.TandemProb

	var spec scenario.Spec
	switch {
	case tandem:
		spec = g.tandem()
	case two:
		spec = g.twin()
	case r.Float64() < 0.35:
		spec = g.shuttle()
	default:
		spec = g.linear()
	}
	g.weather(&spec)
	spec.Title = fmt.Sprintf("%s #%x", spec.Title, uint64(seed))
	if err := spec.Validate(); err != nil {
		// A generator bug, not bad luck: every sampling band above is
		// chosen so the assembled graph is structurally valid.
		return scenario.Spec{}, fmt.Errorf("gen: seed %d: %w", seed, err)
	}
	return spec, nil
}

// sampler wraps the candidate's RNG with quantized draws: values round to
// coarse steps so generated files read (and diff) like the hand-written
// library, without costing determinism.
type sampler struct {
	r *rand.Rand
	p Params
}

// in draws uniformly from [lo, hi] quantized to step.
func (g *sampler) in(lo, hi, step float64) float64 {
	v := lo + (hi-lo)*g.r.Float64()
	return math.Round(v/step) * step
}

// count draws an int from [lo, hi].
func (g *sampler) count(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.r.Intn(hi-lo+1)
}

// base returns the shared site frame: the default start pose and
// test-ground circle with no bars and no legacy trajectory (each
// archetype installs its own).
func (g *sampler) base() scenario.Course {
	c := scenario.DefaultCourse()
	c.Bars = nil
	c.Waypoints = nil
	return c
}

// park samples the carrier's parking spot: the classic spot south-east of
// the pickup, jittered inside the band the whole library proves out.
func (g *sampler) park(zone mathx.Vec3) mathx.Vec3 {
	return zone.Add(mathx.V3(g.in(6.5, 9, 0.5), 0, g.in(8.5, 11, 0.5)))
}

// gates samples a zig-zag carry east of the zone: n gates alternating
// across the carry line, each one pulled radially into the reach band
// from the parking spot.
func (g *sampler) gates(zone, park mathx.Vec3, n int, amp float64) []mathx.Vec3 {
	if n < 1 {
		n = 1
	}
	x0 := g.in(1.5, 2.5, 0.5)
	xMax := g.in(9.5, 11.5, 0.5)
	dx := (xMax - x0) / float64(n)
	side := 1.0
	if g.r.Float64() < 0.5 {
		side = -1
	}
	wps := make([]mathx.Vec3, 0, n)
	for i := 0; i < n; i++ {
		x := x0 + dx*float64(i)
		z := side * g.in(amp*0.7, amp, 0.2)
		side = -side
		wps = append(wps, fit(park, zone.Add(mathx.V3(math.Round(x*2)/2, 0, z))))
	}
	return wps
}

// fit radially projects a work point into the carrier's reachable band
// around its parking spot, preserving bearing: the zig-zag shape stays,
// but no sampled gate or pad ever lands where the hook cannot follow.
// The band is narrower than StaticCheck's limits so rounding to the 0.1 m
// grid never pushes a fitted point back out.
func fit(park, wp mathx.Vec3) mathx.Vec3 {
	const lo, hi = 7.0, 14.8
	dx, dz := wp.X-park.X, wp.Z-park.Z
	d := math.Hypot(dx, dz)
	if d >= lo && d <= hi {
		return wp
	}
	t := lo
	if d > hi {
		t = hi
	}
	if d < 1e-9 {
		return mathx.V3(park.X+t, wp.Y, park.Z)
	}
	s := t / d
	return mathx.V3(math.Round((park.X+dx*s)*10)/10, wp.Y, math.Round((park.Z+dz*s)*10)/10)
}

// bars lines the carry with obstruction bars between the zone and the far
// gate: low enough for the autopilot's above-the-bars carry, off the gate
// line so the course is obstructed, not blocked.
func (g *sampler) bars(c *scenario.Course, zone mathx.Vec3, n int) {
	for i := 0; i < n; i++ {
		h := g.in(1.0, 1.5, 0.1)
		c.Bars = append(c.Bars, scenario.Bar{
			Name: fmt.Sprintf("bar-%c", 'A'+i),
			Pos:  zone.Add(mathx.V3(g.in(2.5, 10.5, 0.5), h, 0)),
			Half: mathx.V3(0.15, h, g.in(1.3, 1.8, 0.1)),
		})
	}
}

// weather samples the wind and visibility regimes onto the finished spec.
func (g *sampler) weather(spec *scenario.Spec) {
	if g.r.Float64() < g.p.WindProb {
		speed := g.in(1.5, 3.4, 0.1)
		dir := g.r.Float64() * 2 * math.Pi
		spec.Wind = dynamics.Wind{
			Mean:   mathx.V3(math.Round(speed*math.Cos(dir)*10)/10, 0, math.Round(speed*math.Sin(dir)*10)/10),
			Gust:   g.in(1.0, 2.8, 0.1),
			Period: g.in(5, 9, 0.5),
		}
	}
	if g.r.Float64() < g.p.NightProb {
		spec.Visibility = g.in(0.2, 0.45, 0.05)
	}
}

// linear is the classic-exam archetype: drive in, lift, carry the zig-zag
// gates, set down — on a side pad or back in the circle.
func (g *sampler) linear() scenario.Spec {
	c := g.base()
	mass := g.in(g.p.MinCargoMass, g.p.MaxCargoMass, 10)
	c.CargoMass = mass
	zone := c.Circle
	park := g.park(zone)
	nGates := g.count(g.p.MinGates, g.p.MaxGates)
	wps := g.gates(zone, park, nGates, 3.2)
	g.bars(&c, zone, g.count(0, g.p.MaxBars))
	c.ParTime = g.in(420, 600, 10)

	pad := zone
	padRadius := g.in(2.6, 3.4, 0.2)
	if g.r.Float64() < 0.5 {
		pad = fit(park, zone.Add(mathx.V3(g.in(-3, 2, 0.5), 0, g.in(4, 6, 0.5))))
		padRadius = g.in(2.2, 3.0, 0.2)
		wps = append(wps, pad)
	} else {
		wps = append(wps, zone)
	}
	c.DriveTarget = park
	return scenario.Spec{
		Name:   "gen-linear",
		Title:  "Generated linear carry",
		Course: c,
		Cargos: []scenario.Cargo{{Name: "the crate", Pos: zone, Mass: mass}},
		Phases: []scenario.PhaseSpec{
			{Name: "the test ground", Kind: scenario.PhaseDrive, Target: park, Radius: 4},
			{Name: "pick", Kind: scenario.PhaseLift, Cargo: 0},
			{Name: "the gates", Kind: scenario.PhaseTraverse, Radius: g.in(2.4, 3.0, 0.2), Waypoints: wps},
			{Name: "set-down", Kind: scenario.PhasePlace, Target: pad, Radius: padRadius},
		},
	}
}

// shuttle is the night-precision archetype: carry out to a pad, set down,
// re-pick, carry back to the circle — two lifts and two placements of the
// same cargo.
func (g *sampler) shuttle() scenario.Spec {
	c := g.base()
	mass := g.in(g.p.MinCargoMass, g.p.MaxCargoMass, 10)
	c.CargoMass = mass
	zone := c.Circle
	park := g.park(zone)
	pad := fit(park, zone.Add(mathx.V3(g.in(8, 10, 0.5), 0, g.in(-2, 2, 0.5))))
	out := g.gates(zone, park, g.count(2, 3), 2.8)
	back := make([]mathx.Vec3, 0, len(out))
	for i := len(out) - 1; i >= 0; i-- {
		back = append(back, out[i])
	}
	g.bars(&c, zone, g.count(0, min(2, g.p.MaxBars)))
	c.ParTime = g.in(520, 660, 10)
	c.DriveTarget = park
	gate := g.in(1.7, 2.4, 0.1)
	return scenario.Spec{
		Name:   "gen-shuttle",
		Title:  "Generated shuttle run",
		Course: c,
		Cargos: []scenario.Cargo{{Name: "the pallet", Pos: zone, Mass: mass}},
		Phases: []scenario.PhaseSpec{
			{Name: "the test ground", Kind: scenario.PhaseDrive, Target: park, Radius: 4},
			{Name: "pick", Kind: scenario.PhaseLift, Cargo: 0},
			{Name: "out to the pad", Kind: scenario.PhaseTraverse, Radius: gate, Waypoints: out},
			{Name: "the pad", Kind: scenario.PhasePlace, Target: pad, Radius: g.in(1.8, 2.4, 0.2)},
			{Name: "re-pick", Kind: scenario.PhaseLift, Cargo: 0},
			{Name: "back home", Kind: scenario.PhaseTraverse, Radius: gate, Waypoints: back},
			{Name: "the circle", Kind: scenario.PhasePlace, Target: zone, Radius: g.in(2.0, 2.6, 0.2)},
		},
	}
}

// twin is the twin-yard archetype: two carriers, two independent picks in
// parallel zones twenty-odd meters apart on the levelled ground.
func (g *sampler) twin() scenario.Spec {
	c := g.base()
	mass := g.in(g.p.MinCargoMass, g.p.MaxCargoMass, 10)
	c.CargoMass = mass
	zoneN := c.Circle
	zoneS := c.Circle.Add(mathx.V3(g.in(-2, 2, 0.5), 0, -g.in(18, 22, 0.5)))
	c.ParTime = g.in(440, 560, 10)
	parkN := g.park(zoneN)
	parkS := zoneS.Add(mathx.V3(g.in(6.5, 9, 0.5), 0, -g.in(8.5, 11, 0.5)))
	padN := fit(parkN, zoneN.Add(mathx.V3(g.in(8, 10, 0.5), 0, g.in(1, 3, 0.5))))
	padS := fit(parkS, zoneS.Add(mathx.V3(g.in(8, 10, 0.5), 0, -g.in(1, 3, 0.5))))
	c.DriveTarget = parkN
	gate := g.in(2.4, 2.8, 0.2)
	runN := append(g.gates(zoneN, parkN, g.count(2, 3), 2.2), padN)
	runS := append(g.gates(zoneS, parkS, g.count(2, 3), 2.2), padS)
	return scenario.Spec{
		Name:   "gen-twin",
		Title:  "Generated twin yard",
		Course: c,
		Cranes: []scenario.CraneDecl{
			{Name: "north", Start: c.Start, StartYaw: c.StartYaw},
			{Name: "south", Start: mathx.V3(140, 0, 30), StartYaw: 0},
		},
		Cargos: []scenario.Cargo{
			{Name: "the north crate", Pos: zoneN, Mass: mass},
			{Name: "the south crate", Pos: zoneS, Mass: mass},
		},
		Phases: []scenario.PhaseSpec{
			{Name: "north yard", Kind: scenario.PhaseDrive, Crane: 0, Target: parkN, Radius: 4},
			{Name: "south yard", Kind: scenario.PhaseDrive, Crane: 1, Target: parkS, Radius: 4},
			{Name: "north pick", Kind: scenario.PhaseLift, Crane: 0, Cargo: 0},
			{Name: "south pick", Kind: scenario.PhaseLift, Crane: 1, Cargo: 1},
			{Name: "north run", Kind: scenario.PhaseTraverse, Crane: 0, Radius: gate, Waypoints: runN},
			{Name: "south run", Kind: scenario.PhaseTraverse, Crane: 1, Radius: gate, Waypoints: runS},
			{Name: "north pad", Kind: scenario.PhasePlace, Crane: 0, Target: padN, Radius: gate},
			{Name: "south pad", Kind: scenario.PhasePlace, Crane: 1, Target: padS, Radius: gate},
		},
	}
}

// tandem is the tandem-beam archetype: a 2-hook beam two cranes lift
// together through shared gates onto a shared pad.
func (g *sampler) tandem() scenario.Spec {
	c := g.base()
	mass := g.in(g.p.MaxCargoMass, g.p.TandemMassCap, 50)
	if g.p.TandemMassCap < g.p.MaxCargoMass {
		mass = g.p.MaxCargoMass
	}
	c.CargoMass = mass
	beam := c.Circle
	standoff := g.in(8.5, 10.5, 0.5)
	parkN := beam.Add(mathx.V3(g.in(1, 2, 0.5), 0, standoff))
	parkS := beam.Add(mathx.V3(g.in(1, 2, 0.5), 0, -standoff))
	pad := beam.Add(mathx.V3(g.in(6.5, 9, 0.5), 0, 0))
	nGates := g.count(2, 3)
	gates := make([]mathx.Vec3, 0, nGates+1)
	for i := 0; i < nGates; i++ {
		frac := float64(i+1) / float64(nGates+1)
		gates = append(gates, beam.Add(mathx.V3(math.Round(pad.X-beam.X)*frac, 0, 0)))
	}
	gates = append(gates, pad)
	c.ParTime = g.in(480, 620, 10)
	c.DriveTarget = parkN
	gate := g.in(2.8, 3.2, 0.2)
	padRadius := g.in(3.2, 3.8, 0.2)
	return scenario.Spec{
		Name:   "gen-tandem",
		Title:  "Generated tandem beam",
		Course: c,
		Cranes: []scenario.CraneDecl{
			{Name: "north", Start: c.Start, StartYaw: c.StartYaw},
			{Name: "south", Start: mathx.V3(140, 0, 30), StartYaw: 0},
		},
		Cargos: []scenario.Cargo{{Name: "the long beam", Pos: beam, Mass: mass, Hooks: 2}},
		Phases: []scenario.PhaseSpec{
			{Name: "north spot", Kind: scenario.PhaseDrive, Crane: 0, Target: parkN, Radius: 4},
			{Name: "south spot", Kind: scenario.PhaseDrive, Crane: 1, Target: parkS, Radius: 4},
			{Name: "north hook", Kind: scenario.PhaseLift, Crane: 0, Cargo: 0, Tandem: true},
			{Name: "south hook", Kind: scenario.PhaseLift, Crane: 1, Cargo: 0, Tandem: true},
			{Name: "the shared gates", Kind: scenario.PhaseTraverse, Crane: 0, Radius: gate, Waypoints: gates},
			{Name: "the shared gates", Kind: scenario.PhaseTraverse, Crane: 1, Radius: gate, Waypoints: gates},
			{Name: "the laydown pad", Kind: scenario.PhasePlace, Crane: 0, Target: pad, Radius: padRadius},
			{Name: "the laydown pad", Kind: scenario.PhasePlace, Crane: 1, Target: pad, Radius: padRadius},
		},
	}
}
