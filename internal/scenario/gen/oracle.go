package gen

import (
	"context"
	"fmt"
	"math"

	"codsim/internal/mathx"
	"codsim/internal/scenario"
	"codsim/internal/trace"
)

// Oracle certifies one candidate spec: ok reports whether it is provably
// completable, err carries only genuine faults (a rig that cannot be
// built, a canceled context) — a campaign resamples on !ok and aborts on
// err. Verify is the real oracle; StaticOnly is the free approximation
// for previews and tests that must not spend sim time.
type Oracle func(ctx context.Context, spec scenario.Spec) (ok bool, err error)

// Reach bounds the static check mirrors from the autopilot's working
// geometry: with the boom fully retracted at the steep working luff the
// hook cannot come closer than ~6.6 m to the mast, and the library keeps
// every work target within 15 m of the parking spot so the expert pilot
// never has to out-drive its own boom. Static limits are slightly wider
// than the sampler's bands on purpose — the check guards against
// generator drift and hand-written campaign params, not against the
// shipped defaults.
const (
	minWorkRadius = 6.0
	maxWorkRadius = 15.5
)

// StaticCheck is the reachability pre-check: it rejects geometry that no
// dry-run could rescue — work targets outside the crane's radius band
// from its parking spot, sites off the levelled test ground, bars too
// tall to carry over — without spending any sim time. It never certifies
// a spec (dynamics, wind and scoring still get a say); it only prunes the
// obviously impossible before the expensive dry-run.
func StaticCheck(spec scenario.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	decls := spec.CraneDecls()
	// Each crane's parking spot is its first drive target; a crane that
	// never drives works from its start pose.
	parks := make([]mathx.Vec3, len(decls))
	for c, d := range decls {
		parks[c] = d.Start
	}
	for _, p := range spec.Phases {
		if p.Kind == scenario.PhaseDrive {
			parks[p.Crane] = p.Target
		}
	}
	check := func(crane int, label string, at mathx.Vec3) error {
		d := math.Hypot(at.X-parks[crane].X, at.Z-parks[crane].Z)
		if d < minWorkRadius || d > maxWorkRadius {
			return fmt.Errorf("gen: scenario %s: %s at %.1f m from crane %d's parking spot (reachable band %.1f–%.1f m)",
				spec.Name, label, d, crane, minWorkRadius, maxWorkRadius)
		}
		if !onLevelGround(at) {
			return fmt.Errorf("gen: scenario %s: %s off the levelled test ground", spec.Name, label)
		}
		return nil
	}
	for i, p := range spec.Phases {
		switch p.Kind {
		case scenario.PhaseLift:
			if err := check(p.Crane, fmt.Sprintf("phase %d lift of cargo %d", i, p.Cargo), spec.Cargos[p.Cargo].Pos); err != nil {
				return err
			}
		case scenario.PhasePlace:
			if err := check(p.Crane, fmt.Sprintf("phase %d place target", i), p.Target); err != nil {
				return err
			}
		case scenario.PhaseTraverse:
			for w, wp := range p.Waypoints {
				if err := check(p.Crane, fmt.Sprintf("phase %d gate %d", i, w), wp); err != nil {
					return err
				}
			}
		}
	}
	for _, b := range spec.Course.Bars {
		if top := b.Pos.Y + b.Half.Y; top > 4.0 {
			return fmt.Errorf("gen: scenario %s: bar %s tops out at %.1f m — too tall to carry over", spec.Name, b.Name, top)
		}
	}
	return nil
}

// onLevelGround reports whether a ground-plane point sits inside the
// levelled test-ground circle where generated work must happen (placing
// on a slope defeats the settle detector).
func onLevelGround(at mathx.Vec3) bool {
	const cx, cz, r = 140, 140, 45
	return math.Hypot(at.X-cx, at.Z-cz) <= r-2
}

// Verify is the full completability oracle: the static reachability check
// first (free), then a headless dry-run with the flawless expert
// autopilot (trace.Completable — the same direct-coupled fast path
// sim.RunBatch uses). ok means the expert passed the scenario within
// budget simulated seconds, so a trainee at least *can*; !ok with nil err
// means resample. budget ≤ 0 applies the headless default of three par
// times, floored at 900 s.
func Verify(ctx context.Context, spec scenario.Spec, budget float64) (bool, error) {
	if err := StaticCheck(spec); err != nil {
		return false, nil //nolint:nilerr // static rejection means resample, not abort
	}
	if budget <= 0 {
		budget = 3 * spec.Course.ParTime
		if budget < 900 {
			budget = 900
		}
	}
	_, ok, err := trace.Completable(ctx, spec, budget)
	return ok, err
}

// DefaultOracle adapts Verify into an Oracle with the params' sim-time
// budget baked in.
func DefaultOracle(p Params) Oracle {
	return func(ctx context.Context, spec scenario.Spec) (bool, error) {
		return Verify(ctx, spec, p.OracleBudget)
	}
}

// StaticOnly is the free oracle: the reachability pre-check alone, no
// dry-run. Use it for previews (-campaign -list) and protocol tests where
// certification strength doesn't matter; campaigns that dispatch real
// work want DefaultOracle.
func StaticOnly(_ context.Context, spec scenario.Spec) (bool, error) {
	return StaticCheck(spec) == nil, nil
}
